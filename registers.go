package interleave

import "repro/internal/isa"

// Reg names an architectural register: R0-R31 are the integer registers
// (R0 is hardwired to zero); F0-F31 are the double-precision FP registers.
type Reg = isa.Reg

// Integer registers.
const (
	R0  = isa.R0
	R1  = isa.R1
	R2  = isa.R2
	R3  = isa.R3
	R4  = isa.R4
	R5  = isa.R5
	R6  = isa.R6
	R7  = isa.R7
	R8  = isa.R8
	R9  = isa.R9
	R10 = isa.R10
	R11 = isa.R11
	R12 = isa.R12
	R13 = isa.R13
	R14 = isa.R14
	R15 = isa.R15
	R16 = isa.R16
	R17 = isa.R17
	R18 = isa.R18
	R19 = isa.R19
	R20 = isa.R20
	R21 = isa.R21
	R22 = isa.R22
	R23 = isa.R23
	R24 = isa.R24
	R25 = isa.R25
	R26 = isa.R26
	R27 = isa.R27
	R28 = isa.R28
	R29 = isa.R29
	R30 = isa.R30
	R31 = isa.R31
)

// Floating-point registers.
const (
	F0  = isa.F0
	F1  = isa.F1
	F2  = isa.F2
	F3  = isa.F3
	F4  = isa.F4
	F5  = isa.F5
	F6  = isa.F6
	F7  = isa.F7
	F8  = isa.F8
	F9  = isa.F9
	F10 = isa.F10
	F11 = isa.F11
	F12 = isa.F12
	F13 = isa.F13
	F14 = isa.F14
	F15 = isa.F15
	F16 = isa.F16
	F17 = isa.F17
	F18 = isa.F18
	F19 = isa.F19
	F20 = isa.F20
	F21 = isa.F21
	F22 = isa.F22
	F23 = isa.F23
	F24 = isa.F24
	F25 = isa.F25
	F26 = isa.F26
	F27 = isa.F27
	F28 = isa.F28
	F29 = isa.F29
	F30 = isa.F30
	F31 = isa.F31
)
