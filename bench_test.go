// Benchmarks: one per table and figure of the paper's evaluation, plus
// the ablation studies and raw simulator-speed benchmarks. Each
// table/figure benchmark runs a reduced-size configuration of the
// corresponding experiment and reports its headline quantity as a custom
// metric (gains and speedups as ratios ×1000 for readability in the
// -benchmem output).
//
// Regenerate the paper-scale numbers with: go run ./cmd/experiments
package interleave_test

import (
	"runtime"
	"testing"

	interleave "repro"
	"repro/internal/core"
	"repro/internal/experiments"
)

// BenchmarkFigure2 measures the miss-cost microbenchmark: blocked pays 7
// switch slots per miss, interleaved 2.
func BenchmarkFigure2(b *testing.B) {
	var blocked, inter int64
	for i := 0; i < b.N; i++ {
		bl, in, err := experiments.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		blocked = bl.Stats.Slots[core.SlotSwitch]
		inter = in.Stats.Slots[core.SlotSwitch]
	}
	b.ReportMetric(float64(blocked), "blocked-switch-slots")
	b.ReportMetric(float64(inter), "interleaved-switch-slots")
}

// BenchmarkFigure3 runs the four-thread example timeline.
func BenchmarkFigure3(b *testing.B) {
	var bc, ic int64
	for i := 0; i < b.N; i++ {
		bl, in, err := experiments.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		bc, ic = bl.Cycles, in.Cycles
	}
	b.ReportMetric(float64(bc), "blocked-cycles")
	b.ReportMetric(float64(ic), "interleaved-cycles")
}

// BenchmarkTable4 measures the context-switch costs.
func BenchmarkTable4(b *testing.B) {
	var r *experiments.Table4Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Table4()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.BlockedMiss), "blocked-miss-cost")
	b.ReportMetric(float64(r.InterleavedMiss), "interleaved-miss-cost")
	b.ReportMetric(float64(r.ExplicitSwitch), "switch-cost")
	b.ReportMetric(float64(r.Backoff), "backoff-cost")
}

// benchUni runs the reduced workstation evaluation once per iteration and
// reports the geometric-mean gains (×1000).
func benchUni(b *testing.B, workloads []string) *experiments.UniResult {
	b.Helper()
	cfg := experiments.QuickUniConfig()
	cfg.Workloads = workloads
	var r *experiments.UniResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.RunUniprocessor(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	return r
}

// BenchmarkTable7 runs the workstation evaluation (all seven workloads).
func BenchmarkTable7(b *testing.B) {
	r := benchUni(b, nil)
	b.ReportMetric(1000*r.MeanGain(core.Interleaved, 4), "interleaved4-gain-x1000")
	b.ReportMetric(1000*r.MeanGain(core.Blocked, 4), "blocked4-gain-x1000")
}

// BenchmarkFigure6 produces the blocked-scheme utilization breakdowns.
func BenchmarkFigure6(b *testing.B) {
	r := benchUni(b, []string{"DC", "DT"})
	if c, ok := r.Cell("DC", core.Blocked, 4); ok {
		b.ReportMetric(1000*c.Busy, "dc-blocked4-busy-x1000")
	}
}

// BenchmarkFigure7 produces the interleaved-scheme utilization breakdowns.
func BenchmarkFigure7(b *testing.B) {
	r := benchUni(b, []string{"DC", "DT"})
	if c, ok := r.Cell("DC", core.Interleaved, 4); ok {
		b.ReportMetric(1000*c.Busy, "dc-interleaved4-busy-x1000")
	}
}

// benchUniJ runs the full Table 7 grid at a fixed parallelism level.
func benchUniJ(b *testing.B, j int) {
	b.Helper()
	cfg := experiments.QuickUniConfig()
	cfg.Parallelism = j
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunUniprocessor(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable7Serial vs BenchmarkTable7Parallel compares the experiment
// engine at -j 1 against -j NumCPU over the full Table 7 grid. The results
// are byte-identical (see TestTable7DeterministicAcrossParallelism); on a
// multi-core machine the parallel variant's ns/op is lower by roughly the
// core count, bounded by the largest single cell.
func BenchmarkTable7Serial(b *testing.B)   { benchUniJ(b, 1) }
func BenchmarkTable7Parallel(b *testing.B) { benchUniJ(b, runtime.NumCPU()) }

// benchMP runs the reduced multiprocessor evaluation once per iteration.
func benchMP(b *testing.B, apps []string) *experiments.MPResult {
	b.Helper()
	cfg := experiments.QuickMPConfig()
	cfg.Apps = apps
	var r *experiments.MPResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.RunMultiprocessor(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	return r
}

// BenchmarkTable10 runs the multiprocessor evaluation (all seven apps).
func BenchmarkTable10(b *testing.B) {
	r := benchMP(b, nil)
	b.ReportMetric(1000*r.MeanSpeedup(core.Interleaved, 4), "interleaved4-speedup-x1000")
	b.ReportMetric(1000*r.MeanSpeedup(core.Blocked, 4), "blocked4-speedup-x1000")
}

// benchMPJ runs the full Table 10 grid at a fixed parallelism level.
func benchMPJ(b *testing.B, j int) {
	b.Helper()
	cfg := experiments.QuickMPConfig()
	cfg.Parallelism = j
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunMultiprocessor(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable10Serial vs BenchmarkTable10Parallel: the multiprocessor
// grid at -j 1 against -j NumCPU (byte-identical results either way).
func BenchmarkTable10Serial(b *testing.B)   { benchMPJ(b, 1) }
func BenchmarkTable10Parallel(b *testing.B) { benchMPJ(b, runtime.NumCPU()) }

// BenchmarkFigure8 produces the blocked-scheme MP execution-time breakdown.
func BenchmarkFigure8(b *testing.B) {
	r := benchMP(b, []string{"barnes", "water"})
	if c, ok := r.Cell("barnes", core.Blocked, 4); ok {
		b.ReportMetric(1000*c.Speedup, "barnes-blocked4-speedup-x1000")
	}
}

// BenchmarkFigure9 produces the interleaved-scheme MP breakdown.
func BenchmarkFigure9(b *testing.B) {
	r := benchMP(b, []string{"barnes", "water"})
	if c, ok := r.Cell("barnes", core.Interleaved, 4); ok {
		b.ReportMetric(1000*c.Speedup, "barnes-interleaved4-speedup-x1000")
	}
}

// BenchmarkAblations runs the §6 design-point studies on the DC workload.
func BenchmarkAblations(b *testing.B) {
	cfg := experiments.QuickUniConfig()
	cfg.Workloads = []string{"DC"}
	var r *experiments.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.RunAblations(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range r.Rows {
		_ = row
	}
	b.ReportMetric(1000*r.Rows[0].Mean, "interleaved-gain-x1000")
	b.ReportMetric(1000*r.Rows[2].Mean, "blockedfast-gain-x1000")
}

// BenchmarkSweepIssueWidth runs the §7 superscalar extension sweep.
func BenchmarkSweepIssueWidth(b *testing.B) {
	cfg := experiments.QuickUniConfig()
	var r *experiments.SweepResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.IssueWidthSweep(cfg, "R1")
		if err != nil {
			b.Fatal(err)
		}
	}
	pts := r.Series["interleaved (4 ctx)"]
	b.ReportMetric(1000*pts[len(pts)-1].Gain, "interleaved4-w4-gain-x1000")
}

// BenchmarkSweepSwitchCost runs the §2.2 switch-cost sensitivity sweep.
func BenchmarkSweepSwitchCost(b *testing.B) {
	cfg := experiments.QuickUniConfig()
	var r *experiments.SweepResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.SwitchCostSweep(cfg, "DC")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(1000*r.Series["blocked"][0].Gain, "blocked-cost1-gain-x1000")
}

// BenchmarkSimulatorThroughput measures raw simulation speed: simulated
// cycles per second of one interleaved 4-context processor running a
// compute kernel over the full cache hierarchy.
func BenchmarkSimulatorThroughput(b *testing.B) {
	reg := interleave.Kernels()
	m, err := interleave.NewMachine(interleave.DefaultConfig(interleave.Interleaved, 4))
	if err != nil {
		b.Fatal(err)
	}
	for c := 0; c < 4; c++ {
		k := reg["mxm"]
		p := k.Build(interleave.KernelOptions{
			CodeBase: 0x0100_0000 * uint32(c+1),
			DataBase: 0x4000_0000 + 0x0200_0000*uint32(c),
		})
		m.Load(c, p)
	}
	b.ResetTimer()
	m.Run(int64(b.N))
	b.ReportMetric(float64(b.N), "simulated-cycles")
}

// BenchmarkMPSimulatorThroughput measures multiprocessor lockstep speed.
func BenchmarkMPSimulatorThroughput(b *testing.B) {
	apps := interleave.Apps()
	p := apps["ocean"].Build(interleave.AppOptions{
		CodeBase:   0x0100_0000,
		DataBase:   0x5000_0000,
		NumThreads: 8,
		Steps:      1 << 20, // effectively endless; the bench bounds cycles
	})
	cfg := interleave.DefaultMPConfig(interleave.Single, 1)
	cfg.Processors = 8
	cfg.LimitCycles = int64(b.N)/8 + 1
	b.ResetTimer()
	if _, err := interleave.RunMultiprocessor(p, cfg); err != nil {
		b.Fatal(err)
	}
}
