package experiments

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/workstation"
)

// TestSweepForkedMatchesScratch pins the planner's core guarantee: a
// sweep run with warm-up forking produces results byte-identical to the
// same sweep with every cell simulated from scratch.
func TestSweepForkedMatchesScratch(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := QuickUniConfig()
	for _, tc := range []struct {
		name string
		run  func(UniConfig) (*SweepResult, error)
	}{
		{"switch-cost", func(c UniConfig) (*SweepResult, error) { return SwitchCostSweep(c, "DC") }},
		{"mshr", func(c UniConfig) (*SweepResult, error) { return MSHRSweep(c, "DC") }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			forked, err := tc.run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			scratch := cfg
			scratch.Checkpoint.Disabled = true
			want, err := tc.run(scratch)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(forked, want) {
				t.Errorf("forked sweep diverges from scratch:\n got %+v\nwant %+v", forked, want)
			}
		})
	}
}

// TestSweepCheckpointDir pins the on-disk cache: a sweep persists its
// prefix checkpoints, a second run reuses them, and corrupting every
// cached file degrades cleanly to from-scratch simulation with
// identical results.
func TestSweepCheckpointDir(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := QuickUniConfig()
	cfg.Checkpoint.Dir = t.TempDir()

	want, err := SwitchCostSweep(cfg, "DC")
	if err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(cfg.Checkpoint.Dir, "*.ckpt"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no checkpoint files persisted (err=%v)", err)
	}

	// Second run: warm-ups load from disk instead of re-simulating.
	got, err := SwitchCostSweep(cfg, "DC")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("disk-cached sweep diverges from the run that wrote the cache")
	}

	// Corrupt every cached checkpoint: the typed decode rejection must
	// fall back to scratch, not fail the sweep or change its results.
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x40
		if err := os.WriteFile(f, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err = SwitchCostSweep(cfg, "DC")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("sweep over corrupted checkpoints diverges from the clean run")
	}
}

// TestPrefixKeyGrouping: cells differing only in measurement-time
// overrides share a key; structural differences split it; the codec
// version is part of the key.
func TestPrefixKeyGrouping(t *testing.T) {
	base := workstation.DefaultConfig(core.Blocked, 4)
	a := base
	a.Measure.BlockedFlushCost = 1
	b := base
	b.Measure.BlockedFlushCost = 9
	if prefixKey("DC", a) != prefixKey("DC", b) {
		t.Error("cells differing only in Measure overrides should share a prefix key")
	}
	c := workstation.DefaultConfig(core.Blocked, 2)
	if prefixKey("DC", base) == prefixKey("DC", c) {
		t.Error("different context counts must not share a prefix key")
	}
	if prefixKey("DC", base) == prefixKey("EC", base) {
		t.Error("different workloads must not share a prefix key")
	}
}

// TestFingerprintCheckpointStamp: enabling/disabling forking is part of
// the journal fingerprint, so -resume cannot mix the two regimes.
func TestFingerprintCheckpointStamp(t *testing.T) {
	on := QuickUniConfig()
	off := QuickUniConfig()
	off.Checkpoint.Disabled = true
	fpOn := NewFingerprint(&on, nil, nil)
	fpOff := NewFingerprint(&off, nil, nil)
	if fpOn.Checkpoint == nil {
		t.Fatal("forking-enabled fingerprint missing the checkpoint stamp")
	}
	if fpOff.Checkpoint != nil {
		t.Fatal("forking-disabled fingerprint carries a checkpoint stamp")
	}
	if fpOn.Hash() == fpOff.Hash() {
		t.Error("checkpoint stamp does not change the fingerprint hash")
	}
	// The cache directory is wall-clock plumbing, not config identity.
	dir := on
	dir.Checkpoint.Dir = t.TempDir()
	if NewFingerprint(&dir, nil, nil).Hash() != fpOn.Hash() {
		t.Error("checkpoint directory leaked into the fingerprint hash")
	}
}
