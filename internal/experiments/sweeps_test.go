package experiments

import (
	"strings"
	"testing"
)

func TestSwitchCostSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := QuickUniConfig()
	r, err := SwitchCostSweep(cfg, "DC")
	if err != nil {
		t.Fatal(err)
	}
	pts := r.Series["blocked"]
	if len(pts) != 10 {
		t.Fatalf("blocked points = %d", len(pts))
	}
	// Cheaper switches must not hurt: gain at cost 1 >= gain at cost 10.
	if pts[0].Gain < pts[len(pts)-1].Gain {
		t.Errorf("gain(cost=1) %.3f < gain(cost=10) %.3f", pts[0].Gain, pts[len(pts)-1].Gain)
	}
	// Even a free-ish switch does not reach the interleaved reference
	// (the blocked scheme still exposes short dependency stalls).
	ref := r.Series["interleaved (reference)"][0].Gain
	if pts[0].Gain >= ref {
		t.Errorf("blocked at cost 1 (%.3f) should stay below interleaved (%.3f)", pts[0].Gain, ref)
	}
	if out := FormatSweep(r); !strings.Contains(out, "flush cost") {
		t.Error("sweep formatting broken")
	}
}

func TestContextCountSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := QuickUniConfig()
	r, err := ContextCountSweep(cfg, "DC")
	if err != nil {
		t.Fatal(err)
	}
	ipts := r.Series["interleaved"]
	if len(ipts) != 3 {
		t.Fatalf("interleaved points = %d", len(ipts))
	}
	// More contexts should not reduce interleaved throughput on the
	// memory-bound workload.
	if ipts[1].Gain < ipts[0].Gain*0.9 {
		t.Errorf("4-context gain %.3f collapsed vs 2-context %.3f", ipts[1].Gain, ipts[0].Gain)
	}
}

func TestMSHRSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := QuickUniConfig()
	r, err := MSHRSweep(cfg, "DC")
	if err != nil {
		t.Fatal(err)
	}
	pts := r.Series["interleaved"]
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	// One miss register serializes the contexts' misses; four should be
	// clearly better.
	if pts[2].Gain <= pts[0].Gain {
		t.Errorf("4 MSHRs (%.3f) should beat 1 MSHR (%.3f)", pts[2].Gain, pts[0].Gain)
	}
}

func TestRemoteLatencySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := QuickMPConfig()
	r, err := RemoteLatencySweep(cfg, "ocean")
	if err != nil {
		t.Fatal(err)
	}
	ipts := r.Series["interleaved"]
	if len(ipts) != 4 {
		t.Fatalf("points = %d", len(ipts))
	}
	for i, pt := range ipts {
		bl := r.Series["blocked"][i]
		if pt.Gain < bl.Gain*0.85 {
			t.Errorf("scale %s: interleaved %.3f well below blocked %.3f", pt.Label, pt.Gain, bl.Gain)
		}
	}
}

func TestIssueWidthSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := QuickUniConfig()
	r, err := IssueWidthSweep(cfg, "R1")
	if err != nil {
		t.Fatal(err)
	}
	single := r.Series["single"]
	inter := r.Series["interleaved (4 ctx)"]
	if len(single) != 3 || len(inter) != 3 {
		t.Fatalf("points = %d/%d", len(single), len(inter))
	}
	// The paper's §7 thesis (and the SMT result it prefigures): a lone
	// thread cannot use the extra issue slots as well as multiple
	// contexts can — interleaving's advantage grows with width.
	gapW1 := inter[0].Gain - single[0].Gain
	gapW2 := inter[1].Gain - single[1].Gain
	if gapW2 <= gapW1*0.8 {
		t.Errorf("width-2 gap %.3f should not shrink much below width-1 gap %.3f", gapW2, gapW1)
	}
	// Wider single-context issue must not hurt.
	if single[1].Gain < single[0].Gain*0.95 {
		t.Errorf("dual issue hurt the single context: %.3f vs %.3f", single[1].Gain, single[0].Gain)
	}
}

func TestPrefetchComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := QuickUniConfig()
	cfg.Workloads = []string{"DC"}
	r, err := RunPrefetchComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 4 {
		t.Fatalf("cells = %d", len(r.Cells))
	}
	inter, _ := r.Cell("DC", "interleaved 4 ctx")
	stride, _ := r.Cell("DC", "single + stride prefetch")
	// Both must help a memory-bound workload; the paper's thesis is that
	// multiple contexts tolerate what prefetching cannot always predict.
	if stride.Gain <= 1.0 {
		t.Errorf("stride prefetch gain = %.2f, want > 1 on DC", stride.Gain)
	}
	if inter.Gain <= 1.0 {
		t.Errorf("interleaved gain = %.2f, want > 1 on DC", inter.Gain)
	}
	combined, _ := r.Cell("DC", "interleaved 4 ctx + stride")
	if combined.Gain < inter.Gain*0.9 {
		t.Errorf("combining prefetch hurt interleaving badly: %.2f vs %.2f", combined.Gain, inter.Gain)
	}
	if out := FormatPrefetchComparison(r); !strings.Contains(out, "stride") {
		t.Error("formatting broken")
	}
}

func TestResponseExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := DefaultResponseConfig()
	cfg.Bursts = 12
	r, err := RunResponse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 3 {
		t.Fatalf("cells = %d", len(r.Cells))
	}
	single := r.Cells[0]
	inter := r.Cells[2]
	// The §5.1 claim: the resident foreground context responds far
	// faster than the timeshared single-context machine.
	if inter.Mean*3 > single.Mean {
		t.Errorf("interleaved response %.0f not clearly better than timeshared %.0f",
			inter.Mean, single.Mean)
	}
	if out := FormatResponse(r); !strings.Contains(out, "Interactive response") {
		t.Error("formatting broken")
	}
}
