package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/mp"
	"repro/internal/splash"
	"repro/internal/stats"
	"repro/internal/workstation"
)

// SweepPoint is one configuration of a one-dimensional sensitivity sweep.
type SweepPoint struct {
	X     float64 // the swept parameter's value
	Label string
	Gain  float64 // fairness-normalized gain or speedup vs the sweep's baseline
}

// SweepResult is a named series of sweep points per scheme.
type SweepResult struct {
	Name   string
	XLabel string
	Series map[string][]SweepPoint
}

// SwitchCostSweep varies the blocked scheme's pipeline-flush cost from 1
// to 9 cycles on the given workload at four contexts, with the
// interleaved scheme as a horizontal reference — quantifying §2.2's
// question of whether replicating pipeline registers (a 1-cycle switch)
// closes the gap.
func SwitchCostSweep(cfg UniConfig, workload string) (*SweepResult, error) {
	kernels, err := ResolveWorkload(workload)
	if err != nil {
		return nil, err
	}
	run := func(w workstation.Config) (float64, error) {
		w.OS.SliceCycles = cfg.SliceCycles
		w.WarmupRotations = cfg.WarmupRotations
		w.MeasureRotations = cfg.MeasureRotations
		w.Seed = cfg.Seed
		r, err := workstation.Run(kernels, w)
		if err != nil {
			return 0, err
		}
		return r.FairThroughput, nil
	}

	base, err := run(workstation.DefaultConfig(core.Single, 1))
	if err != nil {
		return nil, err
	}
	res := &SweepResult{
		Name:   fmt.Sprintf("blocked switch cost on %s (4 contexts)", workload),
		XLabel: "flush cost (cycles)",
		Series: map[string][]SweepPoint{},
	}

	for cost := 1; cost <= 9; cost += 2 {
		w := workstation.DefaultConfig(core.Blocked, 4)
		cc := core.DefaultConfig(core.Blocked, 4)
		cc.BlockedFlushCost = cost
		w.Core = &cc
		g, err := run(w)
		if err != nil {
			return nil, err
		}
		res.Series["blocked"] = append(res.Series["blocked"], SweepPoint{
			X: float64(cost), Label: fmt.Sprintf("%d", cost), Gain: g / base,
		})
	}
	gi, err := run(workstation.DefaultConfig(core.Interleaved, 4))
	if err != nil {
		return nil, err
	}
	res.Series["interleaved (reference)"] = []SweepPoint{{X: 7, Label: "7", Gain: gi / base}}
	return res, nil
}

// ContextCountSweep varies the number of hardware contexts from 2 to 8 for
// both schemes on the given workload — the diminishing-returns curve the
// paper's Figures 6-7 trace with their 1/2/4-context bars.
func ContextCountSweep(cfg UniConfig, workload string) (*SweepResult, error) {
	kernels, err := ResolveWorkload(workload)
	if err != nil {
		return nil, err
	}
	run := func(s core.Scheme, n int) (float64, error) {
		w := workstation.DefaultConfig(s, n)
		w.OS.SliceCycles = cfg.SliceCycles
		w.WarmupRotations = cfg.WarmupRotations
		w.MeasureRotations = cfg.MeasureRotations
		w.Seed = cfg.Seed
		r, err := workstation.Run(kernels, w)
		if err != nil {
			return 0, err
		}
		return r.FairThroughput, nil
	}
	base, err := run(core.Single, 1)
	if err != nil {
		return nil, err
	}
	res := &SweepResult{
		Name:   fmt.Sprintf("context count on %s", workload),
		XLabel: "hardware contexts",
		Series: map[string][]SweepPoint{},
	}
	for _, s := range []core.Scheme{core.Blocked, core.Interleaved} {
		for _, n := range []int{2, 4, 8} {
			g, err := run(s, n)
			if err != nil {
				return nil, err
			}
			res.Series[s.String()] = append(res.Series[s.String()], SweepPoint{
				X: float64(n), Label: fmt.Sprintf("%d", n), Gain: g / base,
			})
		}
	}
	return res, nil
}

// RemoteLatencySweep scales the multiprocessor's remote latencies (Table
// 8) by 0.5x to 4x on one application at four contexts, showing how the
// schemes' speedups respond to the latency multiple contexts must hide.
func RemoteLatencySweep(cfg MPConfig, app string) (*SweepResult, error) {
	a, err := splash.Lookup(app)
	if err != nil {
		return nil, err
	}
	run := func(s core.Scheme, n int, scale float64) (int64, error) {
		mcfg := mp.DefaultConfig(s, n)
		mcfg.Processors = cfg.Processors
		mcfg.LimitCycles = cfg.LimitCycles
		mcfg.Coherence.Seed = cfg.Seed
		mcfg.Coherence.RemoteLow = int(float64(mcfg.Coherence.RemoteLow) * scale)
		mcfg.Coherence.RemoteHigh = int(float64(mcfg.Coherence.RemoteHigh) * scale)
		mcfg.Coherence.DirtyLow = int(float64(mcfg.Coherence.DirtyLow) * scale)
		mcfg.Coherence.DirtyHigh = int(float64(mcfg.Coherence.DirtyHigh) * scale)
		p := a.Build(splash.Options{
			CodeBase:     0x0100_0000,
			DataBase:     0x5000_0000,
			Yield:        workstationYield(s),
			AutoTolerate: s != core.Single,
			NumThreads:   cfg.Processors * n,
			Steps:        cfg.Steps,
			Scale:        cfg.Scale,
		})
		r, err := mp.Run(p, mcfg)
		if err != nil {
			return 0, err
		}
		if !r.Completed {
			return 0, fmt.Errorf("experiments: %s at scale %.1f did not complete", app, scale)
		}
		return r.Cycles, nil
	}

	res := &SweepResult{
		Name:   fmt.Sprintf("remote latency scale on %s (4 contexts, %d processors)", app, cfg.Processors),
		XLabel: "remote latency scale",
		Series: map[string][]SweepPoint{},
	}
	for _, scale := range []float64{0.5, 1, 2, 4} {
		base, err := run(core.Single, 1, scale)
		if err != nil {
			return nil, err
		}
		for _, s := range []core.Scheme{core.Blocked, core.Interleaved} {
			c, err := run(s, 4, scale)
			if err != nil {
				return nil, err
			}
			res.Series[s.String()] = append(res.Series[s.String()], SweepPoint{
				X: scale, Label: fmt.Sprintf("%.1fx", scale), Gain: float64(base) / float64(c),
			})
		}
	}
	return res, nil
}

// MSHRSweep varies the lockup-free data cache's miss registers from 1 to
// 8 for the interleaved scheme at four contexts — the memory-level
// parallelism the scheme depends on (§6's lockup-free cache requirement).
func MSHRSweep(cfg UniConfig, workload string) (*SweepResult, error) {
	kernels, err := ResolveWorkload(workload)
	if err != nil {
		return nil, err
	}
	run := func(s core.Scheme, n, mshrs int) (float64, error) {
		w := workstation.DefaultConfig(s, n)
		w.OS.SliceCycles = cfg.SliceCycles
		w.WarmupRotations = cfg.WarmupRotations
		w.MeasureRotations = cfg.MeasureRotations
		w.Seed = cfg.Seed
		w.Cache.MSHRs = mshrs
		r, err := workstation.Run(kernels, w)
		if err != nil {
			return 0, err
		}
		return r.FairThroughput, nil
	}
	base, err := run(core.Single, 1, 4)
	if err != nil {
		return nil, err
	}
	res := &SweepResult{
		Name:   fmt.Sprintf("miss registers on %s (interleaved, 4 contexts)", workload),
		XLabel: "MSHRs",
		Series: map[string][]SweepPoint{},
	}
	for _, m := range []int{1, 2, 4, 8} {
		g, err := run(core.Interleaved, 4, m)
		if err != nil {
			return nil, err
		}
		res.Series["interleaved"] = append(res.Series["interleaved"], SweepPoint{
			X: float64(m), Label: fmt.Sprintf("%d", m), Gain: g / base,
		})
	}
	return res, nil
}

// FormatSweep renders a sweep as a table.
func FormatSweep(r *SweepResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sweep: %s\n\n", r.Name)
	names := make([]string, 0, len(r.Series))
	for n := range r.Series {
		names = append(names, n)
	}
	// Stable order: blocked, interleaved, then others alphabetically.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	t := stats.NewTable(append([]string{r.XLabel}, names...)...)
	// Collect the union of X labels in first-series order.
	var labels []string
	seen := map[string]bool{}
	for _, n := range names {
		for _, pt := range r.Series[n] {
			if !seen[pt.Label] {
				seen[pt.Label] = true
				labels = append(labels, pt.Label)
			}
		}
	}
	for _, lbl := range labels {
		row := []string{lbl}
		for _, n := range names {
			cell := "-"
			for _, pt := range r.Series[n] {
				if pt.Label == lbl {
					cell = stats.Ratio(pt.Gain)
				}
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	b.WriteString(t.String())
	return b.String()
}

// IssueWidthSweep runs the §7 extension: a superscalar version of the
// processor issuing 1, 2 or 4 instructions per cycle, for the
// single-context and four-context interleaved designs. The paper argues
// (and Tullsen's later SMT work confirmed) that multiple contexts are what
// fill the extra issue slots a lone thread cannot.
func IssueWidthSweep(cfg UniConfig, workload string) (*SweepResult, error) {
	kernels, err := ResolveWorkload(workload)
	if err != nil {
		return nil, err
	}
	run := func(s core.Scheme, n, width int) (float64, error) {
		w := workstation.DefaultConfig(s, n)
		w.OS.SliceCycles = cfg.SliceCycles
		w.WarmupRotations = cfg.WarmupRotations
		w.MeasureRotations = cfg.MeasureRotations
		w.Seed = cfg.Seed
		cc := core.DefaultConfig(s, n)
		cc.IssueWidth = width
		w.Core = &cc
		r, err := workstation.Run(kernels, w)
		if err != nil {
			return 0, err
		}
		return r.FairThroughput, nil
	}
	base, err := run(core.Single, 1, 1)
	if err != nil {
		return nil, err
	}
	res := &SweepResult{
		Name:   fmt.Sprintf("issue width on %s (superscalar extension, paper §7)", workload),
		XLabel: "issue width",
		Series: map[string][]SweepPoint{},
	}
	for _, width := range []int{1, 2, 4} {
		g, err := run(core.Single, 1, width)
		if err != nil {
			return nil, err
		}
		res.Series["single"] = append(res.Series["single"], SweepPoint{
			X: float64(width), Label: fmt.Sprintf("%d", width), Gain: g / base,
		})
		gi, err := run(core.Interleaved, 4, width)
		if err != nil {
			return nil, err
		}
		res.Series["interleaved (4 ctx)"] = append(res.Series["interleaved (4 ctx)"], SweepPoint{
			X: float64(width), Label: fmt.Sprintf("%d", width), Gain: gi / base,
		})
	}
	return res, nil
}
