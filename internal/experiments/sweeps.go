package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/mp"
	"repro/internal/splash"
	"repro/internal/stats"
	"repro/internal/workstation"
)

// SweepPoint is one configuration of a one-dimensional sensitivity sweep.
type SweepPoint struct {
	X     float64 // the swept parameter's value
	Label string
	Gain  float64 // fairness-normalized gain or speedup vs the sweep's baseline
}

// SweepResult is a named series of sweep points per scheme.
type SweepResult struct {
	Name   string
	XLabel string
	Series map[string][]SweepPoint
}

// SwitchCostSweep varies the blocked scheme's pipeline-flush cost from 1
// to 9 cycles on the given workload at four contexts, with the
// interleaved scheme as a horizontal reference — quantifying §2.2's
// question of whether replicating pipeline registers (a 1-cycle switch)
// closes the gap.
func SwitchCostSweep(cfg UniConfig, workload string) (*SweepResult, error) {
	return SwitchCostSweepCtx(context.Background(), cfg, workload)
}

// SwitchCostSweepCtx is SwitchCostSweep with cancellation: cancelling ctx
// stops running cells within engine.BlockCycles cycles.
func SwitchCostSweepCtx(ctx context.Context, cfg UniConfig, workload string) (*SweepResult, error) {
	kernels, err := ResolveWorkload(workload)
	if err != nil {
		return nil, err
	}
	// Sweep cells deliberately share cfg.Seed (common random numbers):
	// every point sees the same scheduler-interference stream, so the
	// curve isolates the swept parameter. The cells are still
	// independent simulations and fan out through the pool.
	var configs []workstation.Config
	add := func(w workstation.Config) {
		w.OS.SliceCycles = cfg.SliceCycles
		w.WarmupRotations = cfg.WarmupRotations
		w.MeasureRotations = cfg.MeasureRotations
		w.Seed = cfg.Seed
		configs = append(configs, w)
	}
	add(workstation.DefaultConfig(core.Single, 1))
	// Unit-step resolution: each extra point costs one measure phase, not
	// a full warm-up, because every blocked cell forks from one shared
	// warm-up checkpoint (the sweep ran {1,3,5,7,9} before forking made
	// the denser axis affordable).
	costs := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, cost := range costs {
		// The flush cost is a measurement-time override (not a base-config
		// edit): warm-up runs at the default cost for every point, so all
		// ten cells share one warm-up prefix and fork from one checkpoint.
		w := workstation.DefaultConfig(core.Blocked, 4)
		w.Measure.BlockedFlushCost = cost
		add(w)
	}
	add(workstation.DefaultConfig(core.Interleaved, 4))

	thr, err := sweepThroughputsShared(ctx, cfg, workload, kernels, configs)
	if err != nil {
		return nil, err
	}
	base := thr[0]
	res := &SweepResult{
		Name:   fmt.Sprintf("blocked switch cost on %s (4 contexts)", workload),
		XLabel: "flush cost (cycles)",
		Series: map[string][]SweepPoint{},
	}
	for ci, cost := range costs {
		res.Series["blocked"] = append(res.Series["blocked"], SweepPoint{
			X: float64(cost), Label: fmt.Sprintf("%d", cost), Gain: thr[1+ci] / base,
		})
	}
	res.Series["interleaved (reference)"] = []SweepPoint{{X: 7, Label: "7", Gain: thr[len(thr)-1] / base}}
	return res, nil
}

// sweepThroughputs runs one workstation simulation per config, fanned out
// across the pool, and returns the fairness-normalized throughputs in
// config order.
func sweepThroughputs(ctx context.Context, parallelism int, kernels []apps.Kernel, configs []workstation.Config) ([]float64, error) {
	thr := make([]float64, len(configs))
	err := runCells(ctx, parallelism, len(configs), func(ctx context.Context, i int) error {
		r, err := workstation.RunCtx(ctx, kernels, configs[i])
		if err != nil {
			return err
		}
		thr[i] = r.FairThroughput
		return nil
	})
	if err != nil {
		return nil, err
	}
	return thr, nil
}

// ContextCountSweep varies the number of hardware contexts from 2 to 8 for
// both schemes on the given workload — the diminishing-returns curve the
// paper's Figures 6-7 trace with their 1/2/4-context bars.
func ContextCountSweep(cfg UniConfig, workload string) (*SweepResult, error) {
	return ContextCountSweepCtx(context.Background(), cfg, workload)
}

// ContextCountSweepCtx is ContextCountSweep with cancellation.
func ContextCountSweepCtx(ctx context.Context, cfg UniConfig, workload string) (*SweepResult, error) {
	kernels, err := ResolveWorkload(workload)
	if err != nil {
		return nil, err
	}
	mk := func(s core.Scheme, n int) workstation.Config {
		w := workstation.DefaultConfig(s, n)
		w.OS.SliceCycles = cfg.SliceCycles
		w.WarmupRotations = cfg.WarmupRotations
		w.MeasureRotations = cfg.MeasureRotations
		w.Seed = cfg.Seed
		return w
	}
	schemes := []core.Scheme{core.Blocked, core.Interleaved}
	counts := []int{2, 4, 8}
	configs := []workstation.Config{mk(core.Single, 1)}
	for _, s := range schemes {
		for _, n := range counts {
			configs = append(configs, mk(s, n))
		}
	}
	// The context count is structural — it shapes the warm-up itself —
	// so these cells cannot share a prefix and run from scratch.
	thr, err := sweepThroughputs(ctx, cfg.Parallelism, kernels, configs)
	if err != nil {
		return nil, err
	}
	base := thr[0]
	res := &SweepResult{
		Name:   fmt.Sprintf("context count on %s", workload),
		XLabel: "hardware contexts",
		Series: map[string][]SweepPoint{},
	}
	i := 1
	for _, s := range schemes {
		for _, n := range counts {
			res.Series[s.String()] = append(res.Series[s.String()], SweepPoint{
				X: float64(n), Label: fmt.Sprintf("%d", n), Gain: thr[i] / base,
			})
			i++
		}
	}
	return res, nil
}

// RemoteLatencySweep scales the multiprocessor's remote latencies (Table
// 8) by 0.5x to 4x on one application at four contexts, showing how the
// schemes' speedups respond to the latency multiple contexts must hide.
func RemoteLatencySweep(cfg MPConfig, app string) (*SweepResult, error) {
	return RemoteLatencySweepCtx(context.Background(), cfg, app)
}

// RemoteLatencySweepCtx is RemoteLatencySweep with cancellation:
// cancelling ctx stops running cells within one lockstep block.
func RemoteLatencySweepCtx(ctx context.Context, cfg MPConfig, app string) (*SweepResult, error) {
	a, err := splash.Lookup(app)
	if err != nil {
		return nil, err
	}
	type spec struct {
		scheme   core.Scheme
		contexts int
		scale    float64
	}
	scales := []float64{0.5, 1, 2, 4}
	schemes := []core.Scheme{core.Blocked, core.Interleaved}
	var specs []spec
	for _, scale := range scales {
		specs = append(specs, spec{core.Single, 1, scale})
		for _, s := range schemes {
			specs = append(specs, spec{s, 4, scale})
		}
	}
	// The swept latencies act from cycle zero (the multiprocessor run
	// has no warm-up/measure split), so no prefix is shared: every cell
	// simulates from scratch.
	cycles := make([]int64, len(specs))
	err = runCells(ctx, cfg.Parallelism, len(specs), func(ctx context.Context, i int) error {
		sp := specs[i]
		mcfg := mp.DefaultConfig(sp.scheme, sp.contexts)
		mcfg.Processors = cfg.Processors
		mcfg.LimitCycles = cfg.LimitCycles
		mcfg.Coherence.Seed = cfg.Seed
		mcfg.Coherence.RemoteLow = int(float64(mcfg.Coherence.RemoteLow) * sp.scale)
		mcfg.Coherence.RemoteHigh = int(float64(mcfg.Coherence.RemoteHigh) * sp.scale)
		mcfg.Coherence.DirtyLow = int(float64(mcfg.Coherence.DirtyLow) * sp.scale)
		mcfg.Coherence.DirtyHigh = int(float64(mcfg.Coherence.DirtyHigh) * sp.scale)
		p := a.Build(splash.Options{
			CodeBase:     0x0100_0000,
			DataBase:     0x5000_0000,
			Yield:        workstationYield(sp.scheme),
			AutoTolerate: sp.scheme != core.Single,
			NumThreads:   cfg.Processors * sp.contexts,
			Steps:        cfg.Steps,
			Scale:        cfg.Scale,
		})
		r, err := mp.RunCtx(ctx, p, mcfg)
		if err != nil {
			return err
		}
		if !r.Completed {
			return fmt.Errorf("experiments: %s at scale %.1f did not complete", app, sp.scale)
		}
		cycles[i] = r.Cycles
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &SweepResult{
		Name:   fmt.Sprintf("remote latency scale on %s (4 contexts, %d processors)", app, cfg.Processors),
		XLabel: "remote latency scale",
		Series: map[string][]SweepPoint{},
	}
	for si, scale := range scales {
		base := cycles[si*(1+len(schemes))]
		for j, s := range schemes {
			c := cycles[si*(1+len(schemes))+1+j]
			res.Series[s.String()] = append(res.Series[s.String()], SweepPoint{
				X: scale, Label: fmt.Sprintf("%.1fx", scale), Gain: float64(base) / float64(c),
			})
		}
	}
	return res, nil
}

// MSHRSweep varies the lockup-free data cache's miss registers from 1 to
// 8 for the interleaved scheme at four contexts — the memory-level
// parallelism the scheme depends on (§6's lockup-free cache requirement).
func MSHRSweep(cfg UniConfig, workload string) (*SweepResult, error) {
	return MSHRSweepCtx(context.Background(), cfg, workload)
}

// MSHRSweepCtx is MSHRSweep with cancellation.
func MSHRSweepCtx(ctx context.Context, cfg UniConfig, workload string) (*SweepResult, error) {
	kernels, err := ResolveWorkload(workload)
	if err != nil {
		return nil, err
	}
	mk := func(s core.Scheme, n int) workstation.Config {
		w := workstation.DefaultConfig(s, n)
		w.OS.SliceCycles = cfg.SliceCycles
		w.WarmupRotations = cfg.WarmupRotations
		w.MeasureRotations = cfg.MeasureRotations
		w.Seed = cfg.Seed
		return w
	}
	mshrs := []int{1, 2, 4, 8}
	configs := []workstation.Config{mk(core.Single, 1)}
	for _, m := range mshrs {
		// Warm-up runs with the default miss registers; the swept count
		// takes effect when measurement starts, so the interleaved cells
		// share one warm-up prefix and fork from one checkpoint.
		w := mk(core.Interleaved, 4)
		w.Measure.MSHRs = m
		configs = append(configs, w)
	}
	thr, err := sweepThroughputsShared(ctx, cfg, workload, kernels, configs)
	if err != nil {
		return nil, err
	}
	base := thr[0]
	res := &SweepResult{
		Name:   fmt.Sprintf("miss registers on %s (interleaved, 4 contexts)", workload),
		XLabel: "MSHRs",
		Series: map[string][]SweepPoint{},
	}
	for mi, m := range mshrs {
		res.Series["interleaved"] = append(res.Series["interleaved"], SweepPoint{
			X: float64(m), Label: fmt.Sprintf("%d", m), Gain: thr[1+mi] / base,
		})
	}
	return res, nil
}

// FormatSweep renders a sweep as a table.
func FormatSweep(r *SweepResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sweep: %s\n\n", r.Name)
	names := make([]string, 0, len(r.Series))
	for n := range r.Series {
		names = append(names, n)
	}
	// Stable order: blocked, interleaved, then others alphabetically.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	t := stats.NewTable(append([]string{r.XLabel}, names...)...)
	// Collect the union of X labels in first-series order.
	var labels []string
	seen := map[string]bool{}
	for _, n := range names {
		for _, pt := range r.Series[n] {
			if !seen[pt.Label] {
				seen[pt.Label] = true
				labels = append(labels, pt.Label)
			}
		}
	}
	for _, lbl := range labels {
		row := []string{lbl}
		for _, n := range names {
			cell := "-"
			for _, pt := range r.Series[n] {
				if pt.Label == lbl {
					cell = stats.Ratio(pt.Gain)
				}
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	b.WriteString(t.String())
	return b.String()
}

// IssueWidthSweep runs the §7 extension: a superscalar version of the
// processor issuing 1, 2 or 4 instructions per cycle, for the
// single-context and four-context interleaved designs. The paper argues
// (and Tullsen's later SMT work confirmed) that multiple contexts are what
// fill the extra issue slots a lone thread cannot.
func IssueWidthSweep(cfg UniConfig, workload string) (*SweepResult, error) {
	return IssueWidthSweepCtx(context.Background(), cfg, workload)
}

// IssueWidthSweepCtx is IssueWidthSweep with cancellation.
func IssueWidthSweepCtx(ctx context.Context, cfg UniConfig, workload string) (*SweepResult, error) {
	kernels, err := ResolveWorkload(workload)
	if err != nil {
		return nil, err
	}
	mk := func(s core.Scheme, n, width int) workstation.Config {
		w := workstation.DefaultConfig(s, n)
		w.OS.SliceCycles = cfg.SliceCycles
		w.WarmupRotations = cfg.WarmupRotations
		w.MeasureRotations = cfg.MeasureRotations
		w.Seed = cfg.Seed
		cc := core.DefaultConfig(s, n)
		cc.IssueWidth = width
		w.Core = &cc
		return w
	}
	widths := []int{1, 2, 4}
	configs := []workstation.Config{mk(core.Single, 1, 1)}
	for _, width := range widths {
		configs = append(configs, mk(core.Single, 1, width))
		configs = append(configs, mk(core.Interleaved, 4, width))
	}
	// The issue width changes the slot accounting from cycle zero —
	// warm-up differs per point — so the cells run from scratch.
	thr, err := sweepThroughputs(ctx, cfg.Parallelism, kernels, configs)
	if err != nil {
		return nil, err
	}
	base := thr[0]
	res := &SweepResult{
		Name:   fmt.Sprintf("issue width on %s (superscalar extension, paper §7)", workload),
		XLabel: "issue width",
		Series: map[string][]SweepPoint{},
	}
	for wi, width := range widths {
		res.Series["single"] = append(res.Series["single"], SweepPoint{
			X: float64(width), Label: fmt.Sprintf("%d", width), Gain: thr[1+2*wi] / base,
		})
		res.Series["interleaved (4 ctx)"] = append(res.Series["interleaved (4 ctx)"], SweepPoint{
			X: float64(width), Label: fmt.Sprintf("%d", width), Gain: thr[2+2*wi] / base,
		})
	}
	return res, nil
}
