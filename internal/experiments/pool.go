package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/guard"
)

// The parallel experiment engine. Every experiment in this package is a
// grid of independent simulation cells — one (workload, scheme, contexts)
// or (app, scheme, contexts) configuration per cell — and each cell owns
// a private seeded PRNG, so cells can run on separate OS threads without
// sharing any mutable state. The pool fans cells out across a bounded set
// of workers and collects results by cell index, never by completion
// order, so a parallel run is byte-identical to a serial one. This mirrors
// the paper's own theme: fill idle issue slots (here, idle cores) with
// independent work.

// DefaultParallelism is the worker count used when a config's Parallelism
// field is zero: the scheduler's GOMAXPROCS, i.e. one worker per core the
// runtime will actually use.
func DefaultParallelism() int { return runtime.GOMAXPROCS(0) }

// DeriveSeed deterministically derives the seed of cell i from a config's
// base seed. The derivation depends only on (base, cell) — never on
// execution order or worker identity — so every cell sees the same PRNG
// stream at any parallelism level. Cells are decorrelated by a splitmix64
// finalizer rather than by consecutive integers, which many PRNGs map to
// correlated streams.
func DeriveSeed(base int64, cell int) int64 {
	z := uint64(base) + uint64(cell+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// Pool runs independent experiment cells across a bounded set of workers.
// The zero value is not useful; use NewPool.
type Pool struct {
	workers int
}

// NewPool returns a pool with the given parallelism; values <= 0 select
// DefaultParallelism. A parallelism of 1 runs every task inline on the
// caller's goroutine — exactly the pre-pool serial path.
func NewPool(parallelism int) *Pool {
	if parallelism <= 0 {
		parallelism = DefaultParallelism()
	}
	return &Pool{workers: parallelism}
}

// Workers reports the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// poolError carries the failing cell's index so Run can report the
// lowest-indexed failure — the same error a serial run would hit first —
// regardless of completion order.
type poolError struct {
	index int
	err   error
}

// Run executes task(ctx, i) for every i in [0, n), at most p.workers at a
// time. The task for cell i must write its result into slot i of a
// caller-owned pre-sized slice; Run itself imposes no result type.
//
// The lowest-indexed failure observed — the error a serial run would hit
// first — cancels the context handed to the remaining tasks and is
// returned after all started workers drain; queued cells that have not
// started are skipped. A panicking task
// is recovered and surfaced as that cell's error, so one diverging
// simulation cannot take down the whole experiment run.
func (p *Pool) Run(ctx context.Context, n int, task func(ctx context.Context, i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 0 {
		return ctx.Err()
	}
	call := callRecovered(task)

	if p.workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := call(ctx, i); err != nil {
				// A cell stopped by the caller's cancellation is not a
				// cell failure; report the drain itself.
				if guard.IsCancellation(err) && ctx.Err() != nil {
					return ctx.Err()
				}
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := p.workers
	if workers > n {
		workers = n
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first *poolError
	)
	fail := func(i int, err error) {
		mu.Lock()
		if first == nil || i < first.index {
			first = &poolError{index: i, err: err}
		}
		mu.Unlock()
		cancel()
	}
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					continue // drain without running
				}
				if err := call(ctx, i); err != nil {
					// When the shared context has been canceled (first
					// failure, or an external drain), in-flight cells
					// surface cancellation artifacts. Those must not
					// reach fail(): a canceled low-index cell would
					// otherwise mask the genuine lowest-indexed failure.
					if guard.IsCancellation(err) && ctx.Err() != nil {
						continue
					}
					fail(i, err)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	if first != nil {
		return first.err
	}
	return ctx.Err()
}

// callRecovered wraps a task so a panic becomes that cell's error. A
// panic value that is already an error (e.g. a *guard.SimError thrown by
// a simulator hot path) is wrapped with %w, so errors.As still reaches
// the typed error and its diagnostic through the recovery.
func callRecovered(task func(ctx context.Context, i int) error) func(ctx context.Context, i int) error {
	return func(ctx context.Context, i int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				if cause, ok := r.(error); ok {
					err = fmt.Errorf("experiments: cell %d panicked: %w", i, cause)
				} else {
					err = fmt.Errorf("experiments: cell %d panicked: %v", i, r)
				}
			}
		}()
		return task(ctx, i)
	}
}

// CellError records one failed cell of a RunAll sweep.
type CellError struct {
	Index int
	Err   error
}

// Error renders the failure with its cell index.
func (e CellError) Error() string { return fmt.Sprintf("cell %d: %v", e.Index, e.Err) }

// Unwrap exposes the cause to errors.Is/As.
func (e CellError) Unwrap() error { return e.Err }

// RunAll executes task(ctx, i) for every i in [0, n) like Run, but never
// cancels on failure: every cell runs to its own conclusion and the
// failures come back in ascending cell order. This is the graceful-
// degradation mode the experiment grids use — one diverging or
// deadlocked cell costs that cell, not the whole grid.
func (p *Pool) RunAll(ctx context.Context, n int, task func(ctx context.Context, i int) error) []CellError {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 0 {
		return nil
	}
	call := callRecovered(task)

	var failures []CellError
	if p.workers == 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				break // graceful drain: stop dispatching queued cells
			}
			if err := call(ctx, i); err != nil {
				if guard.IsCancellation(err) && ctx.Err() != nil {
					continue // canceled mid-cell, not a cell failure
				}
				failures = append(failures, CellError{Index: i, Err: err})
			}
		}
		return failures
	}

	workers := p.workers
	if workers > n {
		workers = n
	}
	var (
		wg sync.WaitGroup
		mu sync.Mutex
	)
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					continue // graceful drain: skip queued cells
				}
				if err := call(ctx, i); err != nil {
					if guard.IsCancellation(err) && ctx.Err() != nil {
						continue // canceled mid-cell, not a cell failure
					}
					mu.Lock()
					failures = append(failures, CellError{Index: i, Err: err})
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	sort.Slice(failures, func(a, b int) bool { return failures[a].Index < failures[b].Index })
	return failures
}

// runCells is the package-internal convenience used by every experiment
// driver: fan the n cells of a grid out at the given parallelism and
// return the lowest-indexed error, with results landing in the caller's
// pre-sized, index-addressed slices. The context is handed to each cell
// task so cancellation (first failure or a signal drain) stops running
// simulations in bounded time, not just queued dispatch.
func runCells(ctx context.Context, parallelism, n int, task func(ctx context.Context, i int) error) error {
	return NewPool(parallelism).Run(ctx, n, task)
}

// runCellsAll is runCells without first-failure cancellation: the whole
// grid runs and the per-cell failures come back in cell order.
func runCellsAll(ctx context.Context, parallelism, n int, task func(ctx context.Context, i int) error) []CellError {
	return NewPool(parallelism).RunAll(ctx, n, task)
}
