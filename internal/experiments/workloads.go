// Package experiments contains one driver per table and figure of the
// paper's evaluation (§5), plus the ablation studies called out in
// DESIGN.md. Each driver returns structured results and has a formatter
// that prints the same rows/series the paper reports.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/prog"
	"repro/internal/splash"
)

// WorkloadOrder is the paper's Table 5 row order.
var WorkloadOrder = []string{"IC", "DC", "DT", "FP", "R0", "R1", "SP"}

// workloadTable is paper Table 5: the four applications of each
// uniprocessor workload. The "sp:" prefix selects the uniprocessor build
// of a SPLASH application.
var workloadTable = map[string][]string{
	"IC": {"doduc", "li", "eqntott", "mxm"},
	"DC": {"cfft2d", "gmtry", "tomcatv", "vpenta"},
	"DT": {"btrix", "cholsky", "gmtry", "vpenta"},
	"FP": {"emit", "cholsky", "doduc", "matrix300"},
	"R0": {"emit", "btrix", "cfft2d", "eqntott"},
	"R1": {"mxm", "li", "matrix300", "tomcatv"},
	"SP": {"sp:mp3d", "sp:water", "sp:locus", "sp:barnes"},
}

// spKernel adapts a SPLASH application's single-threaded build to the
// workstation kernel interface. The step count is effectively infinite:
// workstation processes run until preempted.
func spKernel(name string) (apps.Kernel, error) {
	app, err := splash.Lookup(name)
	if err != nil {
		return apps.Kernel{}, err
	}
	return apps.Kernel{
		Name: "sp-" + name,
		Build: func(o apps.Options) *prog.Program {
			return app.Build(splash.Options{
				CodeBase:     o.CodeBase,
				DataBase:     o.DataBase,
				DataSize:     o.DataSize,
				Yield:        o.Yield,
				AutoTolerate: o.AutoTolerate,
				NumThreads:   1,
				Steps:        1 << 30,
				Scale:        o.Scale,
			})
		},
	}, nil
}

// ResolveWorkload returns the kernels of the named Table 5 workload.
func ResolveWorkload(name string) ([]apps.Kernel, error) {
	names, ok := workloadTable[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown workload %q (have %s)",
			name, strings.Join(WorkloadOrder, " "))
	}
	var ks []apps.Kernel
	for _, n := range names {
		if sp, isSP := strings.CutPrefix(n, "sp:"); isSP {
			k, err := spKernel(sp)
			if err != nil {
				return nil, err
			}
			ks = append(ks, k)
			continue
		}
		k, err := apps.Lookup(n)
		if err != nil {
			return nil, err
		}
		ks = append(ks, k)
	}
	return ks, nil
}

// MPAppOrder is the paper's Table 10 column order.
var MPAppOrder = []string{"mp3d", "barnes", "water", "ocean", "locus", "pthor", "cholesky"}
