package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/guard"
	"repro/internal/metrics"
	"repro/internal/mp"
	"repro/internal/prog"
	"repro/internal/splash"
	"repro/internal/stats"
)

// MPConfig parameterizes the multiprocessor experiments (Table 10 and
// Figures 8-9).
type MPConfig struct {
	Processors    int
	Schemes       []core.Scheme
	ContextCounts []int // the paper uses 2, 4 and 8
	Apps          []string
	Steps         int // per-app time steps; 0 selects app defaults
	Scale         int
	LimitCycles   int64
	Seed          int64

	// Parallelism bounds how many simulation cells run concurrently:
	// 0 selects DefaultParallelism (GOMAXPROCS), 1 forces the serial
	// path. Results are byte-identical at every setting.
	Parallelism int

	// CellTimeout bounds each cell's wall-clock time (-cell-timeout). A
	// cell that exceeds it fails with a typed guard.OpDeadline error —
	// after one retry at a doubled budget, the watchdog discipline applied
	// to wall time — and counts against the exit code like any other cell
	// failure. Zero disables the deadline. Excluded from JSON so the
	// timeout choice never enters result fingerprints: it bounds wall
	// clock, not simulated behavior.
	CellTimeout time.Duration `json:"-"`

	// Guard is the per-cell hardening configuration. A non-zero ChaosSeed
	// is decorrelated per cell with DeriveSeed, so every cell perturbs its
	// own private stream.
	Guard guard.Options

	// Obs configures per-cell observability; enabled, every cell carries
	// its sampled counter series and event trace in MPCell.Metrics.
	Obs metrics.Options

	// Journal, when non-nil, records every completed cell durably and
	// replays cells already present (crash-safe resume). Excluded from
	// JSON so results and fingerprints do not depend on journaling.
	Journal *Journal `json:"-"`
}

// DefaultMPConfig reproduces the paper's multiprocessor setup on 8 nodes.
func DefaultMPConfig() MPConfig {
	return MPConfig{
		Processors:    8,
		Schemes:       []core.Scheme{core.Blocked, core.Interleaved},
		ContextCounts: []int{2, 4, 8},
		LimitCycles:   100_000_000,
		Seed:          1,
	}
}

// QuickMPConfig is a reduced configuration for tests and benchmarks. The
// seed is set explicitly (not inherited implicitly, and never the zero
// value) so quick runs are reproducible by construction.
func QuickMPConfig() MPConfig {
	c := DefaultMPConfig()
	c.Processors = 4
	c.ContextCounts = []int{2, 4}
	c.Steps = 1
	c.Seed = 1
	return c
}

// MPCell is one (app, scheme, contexts) measurement.
type MPCell struct {
	App      string
	Scheme   core.Scheme
	Contexts int
	Cycles   int64
	// Speedup is execution time relative to the single-context run of
	// the same app (Table 10).
	Speedup   float64
	Breakdown core.Breakdown
	Completed bool

	// Failed marks a cell whose simulation errored (watchdog trip,
	// invariant violation, cycle-budget exhaustion, panic); Failure is
	// the one-line error and Diagnostic the structured dump when one was
	// attached. The rest of the grid is unaffected (graceful degradation).
	Failed     bool
	Failure    string
	Diagnostic string

	// Retried marks a cell whose first attempt tripped the liveness
	// watchdog and was deterministically re-run at a doubled cycle and
	// watchdog budget; the recorded outcome is the retry's.
	Retried bool `json:",omitempty"`

	// Skipped marks a cell that never completed because the run was
	// interrupted (SIGINT/SIGTERM drain or first-error cancellation).
	// Skipped cells carry no measurement and no failure diagnosis.
	Skipped bool `json:",omitempty"`

	// Metrics is the cell's observability record, nil unless MPConfig.Obs
	// enabled instrumentation.
	Metrics *metrics.CellMetrics `json:",omitempty"`
}

// MPResult holds the full multiprocessor evaluation.
type MPResult struct {
	Cfg   MPConfig
	Cells []MPCell
	// Failures counts failed cells; drivers exit non-zero when any cell
	// failed even though the rest of the grid completed.
	Failures int
	// Skipped counts cells lost to an interrupted (drained) run; they
	// render as SKIP and re-run on a journal resume.
	Skipped int `json:",omitempty"`
}

// Cell returns the measurement for (app, scheme, contexts).
func (r *MPResult) Cell(app string, s core.Scheme, n int) (MPCell, bool) {
	for _, c := range r.Cells {
		if c.App == app && c.Scheme == s && c.Contexts == n {
			return c, true
		}
	}
	return MPCell{}, false
}

// MeanSpeedup is the geometric mean across apps for (scheme, contexts).
func (r *MPResult) MeanSpeedup(s core.Scheme, n int) float64 {
	m, _, _ := r.MeanSpeedupN(s, n)
	return m
}

// MeanSpeedupN additionally reports coverage: used is the number of cells
// that entered the mean, total the number of (s, n) cells in the grid.
// Failed cells and cells without a positive speedup (e.g. a lost
// baseline) are excluded from the mean rather than dragged in as zeros.
func (r *MPResult) MeanSpeedupN(s core.Scheme, n int) (mean float64, used, total int) {
	var xs []float64
	for _, c := range r.Cells {
		if c.Scheme == s && c.Contexts == n {
			total++
			if !c.Failed && !c.Skipped {
				xs = append(xs, c.Speedup)
			}
		}
	}
	mean, skipped := stats.GeoMean(xs)
	return mean, len(xs) - skipped, total
}

// mpSpec addresses one cell of the multiprocessor grid; like uniSpec,
// the index into mpSpecs(cfg) is the cell's identity everywhere.
type mpSpec struct {
	name     string
	app      splash.App
	scheme   core.Scheme
	contexts int
}

// mpSpecs enumerates cfg's grid in its canonical order: per app, the
// single-context baseline first, then schemes × context counts.
func mpSpecs(cfg MPConfig) ([]mpSpec, error) {
	appNames := cfg.Apps
	if appNames == nil {
		appNames = MPAppOrder
	}
	var specs []mpSpec
	for _, name := range appNames {
		app, err := splash.Lookup(name)
		if err != nil {
			return nil, err
		}
		specs = append(specs, mpSpec{name, app, core.Single, 1})
		for _, s := range cfg.Schemes {
			for _, n := range cfg.ContextCounts {
				specs = append(specs, mpSpec{name, app, s, n})
			}
		}
	}
	return specs, nil
}

// MPGridSize returns the number of cells in cfg's multiprocessor grid —
// the valid index range for RunMPCell and AssembleMP.
func MPGridSize(cfg MPConfig) (int, error) {
	specs, err := mpSpecs(cfg)
	if err != nil {
		return 0, err
	}
	return len(specs), nil
}

// RunMPCell simulates one cell of cfg's multiprocessor grid and returns
// its journal/wire record — the single copy of the per-cell policy, as
// RunUniCell is for the workstation grid. A liveness-watchdog trip or
// per-cell deadline is retried once at doubled budgets (cycle limit and
// watchdog window both double); cycle-budget exhaustion is NOT retried —
// the cell already ran to the configured limit. The only non-nil error
// returns are a bad index and a cancellation of ctx itself.
func RunMPCell(ctx context.Context, cfg MPConfig, index int) (*MPCellRecord, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	specs, err := mpSpecs(cfg)
	if err != nil {
		return nil, err
	}
	if index < 0 || index >= len(specs) {
		return nil, fmt.Errorf("experiments: multiprocessor cell %d outside grid [0,%d)", index, len(specs))
	}
	return runMPCellSpec(ctx, cfg, index, specs[index])
}

func runMPCellSpec(ctx context.Context, cfg MPConfig, i int, sp mpSpec) (*MPCellRecord, error) {
	attempt := func(attempt int) (*mp.Result, error) {
		mcfg := mp.DefaultConfig(sp.scheme, sp.contexts)
		mcfg.Processors = cfg.Processors
		mcfg.LimitCycles = cfg.LimitCycles
		mcfg.Coherence.Seed = DeriveSeed(cfg.Seed, i)
		mcfg.Guard = cellGuard(cfg.Guard, i)
		mcfg.Obs = cfg.Obs
		if attempt > 1 {
			// Escalate both budgets: the cycle limit (which also doubles the
			// default LimitCycles/20 watchdog window) and any explicit
			// window from the flags.
			mcfg.LimitCycles = guard.Escalate(mcfg.LimitCycles, attempt-1)
			if mcfg.Guard.WatchdogWindow > 0 {
				mcfg.Guard.WatchdogWindow = guard.Escalate(mcfg.Guard.WatchdogWindow, attempt-1)
			}
		}
		p := sp.app.Build(splash.Options{
			CodeBase:     0x0100_0000,
			DataBase:     0x5000_0000,
			Yield:        workstationYield(sp.scheme),
			AutoTolerate: sp.scheme != core.Single,
			NumThreads:   cfg.Processors * sp.contexts,
			Steps:        cfg.Steps,
			Scale:        cfg.Scale,
		})
		cellCtx, cancel, budget := withCellDeadline(ctx, cfg.CellTimeout, attempt)
		defer cancel()
		r, err := mp.RunCtx(cellCtx, p, mcfg)
		if err != nil {
			return nil, classifyDeadline(ctx, cellCtx, budget, err)
		}
		if !r.Completed {
			err := fmt.Errorf("%s under %v/%d exceeded the cycle limit", sp.name, sp.scheme, sp.contexts)
			if r.Diag != nil {
				// Carry the limit-time machine dump into the cell's
				// Diagnostic so the degraded grid reports where the cell
				// was wedged.
				return nil, guard.NewSimError("experiments.budget", err).At(r.Diag.Cycle).WithDiag(r.Diag)
			}
			return nil, fmt.Errorf("experiments: %w", err)
		}
		return r, nil
	}
	policy := guard.GridRetry()
	retried := false
	var r *mp.Result
	var err error
	for n := 1; ; n++ {
		r, err = attempt(n)
		if err == nil || !guard.IsBudgetTrip(err) || ctx.Err() != nil || !policy.Allowed(n+1) {
			break
		}
		retried = true
	}
	if err != nil {
		if guard.IsCancellation(err) && ctx.Err() != nil {
			return nil, err // drained mid-cell: renders as SKIP, not journaled
		}
		rec := &MPCellRecord{Failed: true, Retried: retried}
		rec.Failure, rec.Diagnostic = failureStrings(err)
		return rec, nil
	}
	return &MPCellRecord{Cycles: r.Cycles, Completed: r.Completed, Stats: r.Stats,
		Threads: r.Threads, MemHash: r.MemHash, ArchHash: r.ArchHash,
		Metrics: r.Metrics, Retried: retried}, nil
}

// AssembleMP folds index-ordered cell records into the evaluation
// result: speedups against each app's single-context baseline, failure
// and skip counts. A nil record renders as SKIP. Assembly is pure; see
// AssembleUni.
func AssembleMP(cfg MPConfig, recs []*MPCellRecord) (*MPResult, error) {
	specs, err := mpSpecs(cfg)
	if err != nil {
		return nil, err
	}
	if len(recs) != len(specs) {
		return nil, fmt.Errorf("experiments: multiprocessor grid has %d cells, got %d records", len(specs), len(recs))
	}
	res := &MPResult{Cfg: cfg}
	var baseCycles int64
	for i, sp := range specs {
		rec := recs[i]
		cell := MPCell{App: sp.name, Scheme: sp.scheme, Contexts: sp.contexts}
		isBase := sp.scheme == core.Single && sp.contexts == 1
		switch {
		case rec == nil:
			// The run was interrupted before this cell completed.
			cell.Skipped = true
			res.Skipped++
			if isBase {
				baseCycles = 0
			}
		case rec.Failed:
			// The cell failed (watchdog, deadline, invariant, cycle budget,
			// panic): record it and keep going. A failed baseline zeroes its
			// app's speedups but costs nothing else.
			cell.Retried = rec.Retried
			cell.Failed = true
			cell.Failure, cell.Diagnostic = rec.Failure, rec.Diagnostic
			res.Failures++
			if isBase {
				baseCycles = 0
			}
		default:
			cell.Retried = rec.Retried
			cell.Cycles = rec.Cycles
			cell.Breakdown = rec.Stats.Breakdown()
			cell.Completed = true
			cell.Metrics = rec.Metrics
			if isBase {
				baseCycles = rec.Cycles
				cell.Speedup = 1
			} else if baseCycles > 0 && rec.Cycles > 0 {
				cell.Speedup = float64(baseCycles) / float64(rec.Cycles)
			}
		}
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}

// RunMultiprocessor runs the full multiprocessor evaluation. Like
// RunUniprocessor, the (app, scheme, contexts) cells are independent
// simulations, so they fan out across cfg.Parallelism workers with
// per-cell derived seeds and index-ordered result collection: output is
// byte-identical at every parallelism level.
func RunMultiprocessor(cfg MPConfig) (*MPResult, error) {
	return RunMultiprocessorCtx(context.Background(), cfg)
}

// RunMultiprocessorCtx is RunMultiprocessor with cancellation and
// journaling: cancelling ctx drains the grid (queued cells never start,
// running cells stop within one lockstep block, both render as SKIP),
// and a cfg.Journal replays completed cells from a previous run and
// records new ones durably. A cell whose first attempt trips the
// liveness watchdog is retried once at a doubled cycle and watchdog
// budget with the same derived seed; cycle-budget exhaustion is NOT
// retried — it already ran to the configured limit.
func RunMultiprocessorCtx(ctx context.Context, cfg MPConfig) (*MPResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	specs, err := mpSpecs(cfg)
	if err != nil {
		return nil, err
	}
	j := cfg.Journal
	recs := make([]*MPCellRecord, len(specs))
	failures := runCellsAll(ctx, cfg.Parallelism, len(specs), func(ctx context.Context, i int) error {
		var rec MPCellRecord
		if j.Replay(GridMultiprocessor, i, &rec) {
			recs[i] = &rec
			return nil
		}
		out, err := runMPCellSpec(ctx, cfg, i, specs[i])
		if err != nil {
			return nil // drained mid-cell: renders as SKIP, not journaled
		}
		recs[i] = out
		j.Record(GridMultiprocessor, i, out)
		return nil
	})
	// Failures escaping the per-cell classification above are panics
	// recovered by the pool; fold them in as failed cells.
	for _, f := range failures {
		rec := &MPCellRecord{Failed: true}
		rec.Failure, rec.Diagnostic = failureStrings(f.Err)
		recs[f.Index] = rec
		j.Record(GridMultiprocessor, f.Index, rec)
	}
	res, err := AssembleMP(cfg, recs)
	if err != nil {
		return nil, err
	}
	if err := j.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

func workstationYield(s core.Scheme) prog.YieldMode {
	switch s {
	case core.Blocked, core.BlockedFast:
		return prog.YieldSwitch
	case core.Interleaved:
		return prog.YieldBackoff
	default:
		return prog.YieldNone
	}
}

// FormatTable10 renders the paper's Table 10: application speedup due to
// multiple contexts.
func FormatTable10(r *MPResult) string {
	var b strings.Builder
	b.WriteString("Table 10: Application speedup due to multiple contexts\n")
	b.WriteString("(execution time relative to the single-context processor)\n\n")
	appNames := r.Cfg.Apps
	if appNames == nil {
		appNames = MPAppOrder
	}
	header := append([]string{"Contexts", "Scheme"}, appNames...)
	header = append(header, "Mean")
	t := stats.NewTable(header...)
	var usedSum, totalSum int
	for _, n := range r.Cfg.ContextCounts {
		for _, s := range []core.Scheme{core.Interleaved, core.Blocked} {
			row := []string{fmt.Sprintf("%d", n), s.String()}
			found := false
			for _, a := range appNames {
				if c, ok := r.Cell(a, s, n); ok {
					switch {
					case c.Skipped:
						row = append(row, "SKIP")
					case c.Failed:
						row = append(row, "FAIL")
					default:
						row = append(row, stats.Ratio(c.Speedup))
					}
					found = true
				} else {
					row = append(row, "-")
				}
			}
			if !found {
				continue
			}
			mean, used, total := r.MeanSpeedupN(s, n)
			usedSum += used
			totalSum += total
			row = append(row, stats.Ratio(mean))
			t.AddRow(row...)
		}
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\nMean: geometric mean over cells with a positive speedup (%d of %d cells).\n", usedSum, totalSum)
	return b.String()
}

// FormatMPFigure renders Figure 8 (blocked) or Figure 9 (interleaved): the
// execution-time breakdown per app, normalized to the single-context time.
func FormatMPFigure(r *MPResult, scheme core.Scheme, figure int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %d: execution time breakdown, %s scheme\n", figure, scheme)
	b.WriteString("(bar length = time relative to 1 context; B=busy s=short stall l=long stall M=memory Y=sync S=switch)\n\n")
	appNames := r.Cfg.Apps
	if appNames == nil {
		appNames = MPAppOrder
	}
	for _, a := range appNames {
		base, ok := r.Cell(a, core.Single, 1)
		if !ok || base.Failed || base.Skipped || base.Cycles == 0 {
			if ok && base.Skipped {
				fmt.Fprintf(&b, "%s: baseline SKIPPED (run interrupted)\n", a)
			} else if ok && base.Failed {
				fmt.Fprintf(&b, "%s: baseline FAILED: %s\n", a, base.Failure)
			}
			continue
		}
		fmt.Fprintf(&b, "%s:\n", a)
		configs := []MPCell{base}
		for _, n := range r.Cfg.ContextCounts {
			if c, ok := r.Cell(a, scheme, n); ok {
				configs = append(configs, c)
			}
		}
		for _, c := range configs {
			if c.Skipped {
				fmt.Fprintf(&b, "  %d ctx SKIPPED (run interrupted)\n", c.Contexts)
				continue
			}
			if c.Failed {
				fmt.Fprintf(&b, "  %d ctx FAILED: %s\n", c.Contexts, c.Failure)
				continue
			}
			rel := float64(c.Cycles) / float64(base.Cycles)
			bd := c.Breakdown
			width := int(rel*40 + 0.5)
			if width < 1 {
				width = 1
			}
			bar := stats.Bar(width,
				[]float64{bd.Busy, bd.InstrShort, bd.InstrLong, bd.DataMem, bd.Sync, bd.Switch},
				[]rune{'B', 's', 'l', 'M', 'Y', 'S'})
			fmt.Fprintf(&b, "  %d ctx |%s| %.2f\n", c.Contexts, bar, rel)
		}
	}
	return b.String()
}
