package experiments

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// A cell that cannot finish inside its wall-clock budget must fail as a
// diagnosed cell (typed deadline, FAIL in the table, non-zero exit), not
// vanish as a SKIP — and the retry discipline matches the watchdog's:
// one re-run at a doubled budget before giving up.
func TestCellTimeoutFailsCell(t *testing.T) {
	cfg := journalTestConfig()
	cfg.CellTimeout = time.Nanosecond // unmeetable: every attempt expires

	rec, err := RunUniCell(context.Background(), cfg, 0)
	if err != nil {
		t.Fatalf("RunUniCell: %v (a deadline is a cell failure, not an error)", err)
	}
	if !rec.Failed {
		t.Fatal("cell beat a 1ns wall-clock budget")
	}
	if !rec.Retried {
		t.Error("deadline trip was not retried at a doubled budget")
	}
	if !strings.Contains(rec.Failure, "wall-clock budget") {
		t.Errorf("failure %q does not name the wall-clock budget", rec.Failure)
	}

	// The whole grid degrades gracefully: failures counted, run completes.
	res, err := RunUniprocessorCtx(context.Background(), cfg)
	if err != nil {
		t.Fatalf("RunUniprocessorCtx: %v", err)
	}
	if res.Failures != len(res.Cells) {
		t.Errorf("%d of %d cells failed; a 1ns budget should fail all", res.Failures, len(res.Cells))
	}
	if res.Skipped != 0 {
		t.Errorf("%d cells skipped; deadlines are failures, not skips", res.Skipped)
	}
}

func TestCellTimeoutFailsMPCell(t *testing.T) {
	cfg := QuickMPConfig()
	cfg.Apps = []string{"ocean"}
	cfg.CellTimeout = time.Nanosecond

	rec, err := RunMPCell(context.Background(), cfg, 0)
	if err != nil {
		t.Fatalf("RunMPCell: %v (a deadline is a cell failure, not an error)", err)
	}
	if !rec.Failed || !rec.Retried {
		t.Fatalf("want failed+retried deadline record, got %+v", rec)
	}
	if !strings.Contains(rec.Failure, "wall-clock budget") {
		t.Errorf("failure %q does not name the wall-clock budget", rec.Failure)
	}
}

// A generous budget must be invisible: identical records to an unbounded
// run, and no trace of the timeout in the JSON (it is wall-clock policy,
// not simulated behavior, so it must not perturb fingerprints).
func TestCellTimeoutGenerousBudgetIsInvisible(t *testing.T) {
	cfg := journalTestConfig()
	ref, err := RunUniCell(context.Background(), cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg.CellTimeout = time.Hour
	got, err := RunUniCell(context.Background(), cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	refJSON, _ := json.Marshal(ref)
	gotJSON, _ := json.Marshal(got)
	if string(refJSON) != string(gotJSON) {
		t.Errorf("a generous cell timeout changed the record:\n%s\nvs\n%s", gotJSON, refJSON)
	}

	noTO := journalTestConfig()
	withTO := journalTestConfig()
	withTO.CellTimeout = time.Hour
	if NewFingerprint(&noTO, nil, nil).Hash() != NewFingerprint(&withTO, nil, nil).Hash() {
		t.Error("CellTimeout leaked into the config fingerprint")
	}
}

// The per-cell helpers must agree with the grid runner cell-for-cell:
// the distributed service runs cells through RunUniCell/RunMPCell and
// assembles with AssembleUni/AssembleMP, and byte-identity with a
// single-process run rests on this equivalence.
func TestCellHelpersMatchGridRunner(t *testing.T) {
	cfg := journalTestConfig()
	ref, err := RunUniprocessorCtx(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	n, err := UniGridSize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(ref.Cells) {
		t.Fatalf("UniGridSize = %d, grid runner produced %d cells", n, len(ref.Cells))
	}
	recs := make([]*UniCellRecord, n)
	for i := range recs {
		if recs[i], err = RunUniCell(context.Background(), cfg, i); err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
	}
	got, err := AssembleUni(cfg, recs)
	if err != nil {
		t.Fatal(err)
	}
	refJSON, _ := json.Marshal(ref)
	gotJSON, _ := json.Marshal(got)
	if string(refJSON) != string(gotJSON) {
		t.Error("cell-by-cell run assembled differently from the grid runner")
	}
	if FormatTable7(got) != FormatTable7(ref) {
		t.Error("cell-by-cell Table 7 differs from the grid runner's")
	}

	if _, err := RunUniCell(context.Background(), cfg, n); err == nil {
		t.Error("out-of-range cell index did not error")
	}
}
