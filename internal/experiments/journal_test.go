package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"repro/internal/faultfs"
)

// journalTestConfig is the small grid the journal tests run: one workload,
// 1 baseline + 2 schemes x 2 counts = 5 cells.
func journalTestConfig() UniConfig {
	cfg := QuickUniConfig()
	cfg.Workloads = []string{"DC"}
	cfg.Parallelism = 2
	return cfg
}

func journalLines(t *testing.T, path string) []string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return strings.Split(strings.TrimRight(string(data), "\n"), "\n")
}

// The tentpole guarantee: a grid resumed from a partial journal is
// byte-identical — table text AND -json bytes — to the uninterrupted run,
// and the journaled cells are replayed, never re-simulated.
func TestJournalResumeByteIdentical(t *testing.T) {
	// Uninterrupted reference, no journal involved at all.
	ref, err := RunUniprocessor(journalTestConfig())
	if err != nil {
		t.Fatal(err)
	}

	// Full journaled run.
	dir := t.TempDir()
	fullPath := filepath.Join(dir, "full.journal")
	cfg := journalTestConfig()
	fp := NewFingerprint(&cfg, nil, nil)
	j, err := CreateJournal(fullPath, fp)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Journal = j
	if _, err := RunUniprocessorCtx(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	total := j.Appended()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if total != len(ref.Cells) {
		t.Fatalf("journaled %d cells, grid has %d", total, len(ref.Cells))
	}

	// Simulate a crash: keep the header plus the first k cell records.
	const k = 2
	lines := journalLines(t, fullPath)
	if len(lines) != 1+total {
		t.Fatalf("journal has %d lines, want %d", len(lines), 1+total)
	}
	partPath := filepath.Join(dir, "part.journal")
	part := strings.Join(lines[:1+k], "\n") + "\n"
	if err := os.WriteFile(partPath, []byte(part), 0o644); err != nil {
		t.Fatal(err)
	}

	// Resume: the k journaled cells replay, only the remainder simulates.
	j2, err := OpenJournal(partPath, fp)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Cells() != k {
		t.Fatalf("opened journal holds %d cells, want %d", j2.Cells(), k)
	}
	rcfg := journalTestConfig()
	rcfg.Journal = j2
	resumed, err := RunUniprocessorCtx(context.Background(), rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Replayed() != k {
		t.Errorf("replayed %d cells, want %d (journaled cells must not re-simulate)", j2.Replayed(), k)
	}
	if j2.Appended() != total-k {
		t.Errorf("appended %d cells on resume, want %d", j2.Appended(), total-k)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	// Byte identity: formatted tables and the JSON encoding both match the
	// uninterrupted run exactly.
	if got, want := FormatTable7(resumed), FormatTable7(ref); got != want {
		t.Errorf("resumed Table 7 differs from uninterrupted run:\n--- resumed ---\n%s\n--- reference ---\n%s", got, want)
	}
	gotJSON, err := json.Marshal(resumed)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Errorf("resumed JSON differs from uninterrupted run:\n--- resumed ---\n%s\n--- reference ---\n%s", gotJSON, wantJSON)
	}

	// The resumed journal file is now complete: a second resume replays
	// everything and simulates nothing.
	j3, err := OpenJournal(partPath, fp)
	if err != nil {
		t.Fatal(err)
	}
	rcfg2 := journalTestConfig()
	rcfg2.Journal = j3
	again, err := RunUniprocessorCtx(context.Background(), rcfg2)
	if err != nil {
		t.Fatal(err)
	}
	if j3.Replayed() != total || j3.Appended() != 0 {
		t.Errorf("complete journal: replayed %d appended %d, want %d/0", j3.Replayed(), j3.Appended(), total)
	}
	j3.Close()
	if FormatTable7(again) != FormatTable7(ref) {
		t.Error("pure-replay run differs from uninterrupted run")
	}
}

// Failed cells are journaled too: a resume must not re-run a
// deterministic failure, and the failure must survive the round trip.
func TestJournalReplaysFailedCells(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grid.journal")
	fp := Fingerprint{Version: JournalVersion, Binary: "test"}
	j, err := CreateJournal(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	j.Record(GridWorkstation, 3, UniCellRecord{Failed: true, Failure: "watchdog: wedged", Retried: true})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	var rec UniCellRecord
	if !j2.Replay(GridWorkstation, 3, &rec) {
		t.Fatal("journaled failed cell did not replay")
	}
	if !rec.Failed || rec.Failure != "watchdog: wedged" || !rec.Retried {
		t.Errorf("failure round trip lost fields: %+v", rec)
	}
	if j2.Replay(GridWorkstation, 0, &rec) {
		t.Error("replay invented a cell that was never journaled")
	}
}

// A crash mid-append leaves a torn tail. Each corruption is either
// tolerated — the intact prefix replays, the torn cell re-runs — or, when
// the header itself is unusable, a hard error.
func TestJournalCorruptionTolerance(t *testing.T) {
	// A known-good journal: header + 3 intact cell records.
	fp := Fingerprint{Version: JournalVersion, Binary: "test"}
	mkLines := func(t *testing.T) []string {
		t.Helper()
		path := filepath.Join(t.TempDir(), "good.journal")
		j, err := CreateJournal(path, fp)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			j.Record(GridWorkstation, i, UniCellRecord{Failed: true, Failure: fmt.Sprintf("cell %d", i)})
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		return journalLines(t, path)
	}

	tests := []struct {
		name    string
		mutate  func(lines []string) string // full file content
		cells   int                         // intact cells expected; -1 = hard error
		errWant string                      // substring of the hard error
	}{
		{
			name: "intact",
			mutate: func(l []string) string {
				return strings.Join(l, "\n") + "\n"
			},
			cells: 3,
		},
		{
			name: "truncated mid-line",
			mutate: func(l []string) string {
				whole := strings.Join(l[:3], "\n") + "\n"
				return whole + l[3][:len(l[3])/2] // last record torn in half
			},
			cells: 2,
		},
		{
			name: "garbage trailing line",
			mutate: func(l []string) string {
				return strings.Join(l, "\n") + "\n{not json at all\n"
			},
			cells: 3,
		},
		{
			name: "unknown record type",
			mutate: func(l []string) string {
				return strings.Join(l, "\n") + "\n" + `{"type":"bogus"}` + "\n"
			},
			cells: 3,
		},
		{
			name: "payload hash mismatch",
			mutate: func(l []string) string {
				torn := `{"type":"cell","hash":"deadbeefdeadbeef","grid":"workstation","index":9,"data":{"failed":true}}`
				return strings.Join(l, "\n") + "\n" + torn + "\n"
			},
			cells: 3,
		},
		{
			name: "header only",
			mutate: func(l []string) string {
				return l[0] + "\n"
			},
			cells: 0,
		},
		{
			name: "empty file",
			mutate: func(l []string) string {
				return ""
			},
			cells:   -1,
			errWant: "no intact header",
		},
		{
			name: "not a journal",
			mutate: func(l []string) string {
				return `{"type":"cell","index":0}` + "\n"
			},
			cells:   -1,
			errWant: "is not a journal",
		},
		{
			name: "wrong format version",
			mutate: func(l []string) string {
				return `{"type":"header","version":99,"hash":"x"}` + "\n"
			},
			cells:   -1,
			errWant: "format version 99",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			lines := mkLines(t)
			path := filepath.Join(t.TempDir(), "mutated.journal")
			if err := os.WriteFile(path, []byte(tc.mutate(lines)), 0o644); err != nil {
				t.Fatal(err)
			}
			j, err := OpenJournal(path, fp)
			if tc.cells < 0 {
				if err == nil {
					j.Close()
					t.Fatalf("OpenJournal tolerated %s", tc.name)
				}
				if !strings.Contains(err.Error(), tc.errWant) {
					t.Errorf("error %q does not mention %q", err, tc.errWant)
				}
				return
			}
			if err != nil {
				t.Fatalf("OpenJournal: %v", err)
			}
			if j.Cells() != tc.cells {
				t.Errorf("intact cells = %d, want %d", j.Cells(), tc.cells)
			}
			// The torn tail is gone and the journal accepts appends on a
			// clean record boundary: append one cell, close, reopen.
			j.Record(GridWorkstation, 40+tc.cells, UniCellRecord{Failed: true, Failure: "appended"})
			if err := j.Err(); err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			j2, err := OpenJournal(path, fp)
			if err != nil {
				t.Fatalf("reopen after append: %v", err)
			}
			defer j2.Close()
			if j2.Cells() != tc.cells+1 {
				t.Errorf("after append: %d cells, want %d", j2.Cells(), tc.cells+1)
			}
		})
	}
}

// Resuming under a different configuration is a hard, typed error:
// replaying results recorded under other parameters would silently
// fabricate data.
func TestJournalFingerprintMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grid.journal")
	cfg := journalTestConfig()
	fp := NewFingerprint(&cfg, nil, []string{"table7"})
	j, err := CreateJournal(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	other := journalTestConfig()
	other.Seed = cfg.Seed + 1
	_, err = OpenJournal(path, NewFingerprint(&other, nil, []string{"table7"}))
	var fe *FingerprintError
	if !errors.As(err, &fe) {
		t.Fatalf("got %v, want *FingerprintError", err)
	}
	if fe.Path != path || fe.Got != fp.Hash() {
		t.Errorf("FingerprintError fields: %+v", fe)
	}

	// Same config at a different parallelism is NOT a mismatch: results
	// are byte-identical at every -j.
	sameJ := journalTestConfig()
	sameJ.Parallelism = 7
	j2, err := OpenJournal(path, NewFingerprint(&sameJ, nil, []string{"table7"}))
	if err != nil {
		t.Fatalf("parallelism changed the fingerprint: %v", err)
	}
	j2.Close()
}

// The fingerprint splits into config identity (hard error) and binary
// identity (refusable by default, overridable): a journal written by a
// different binary under the identical configuration resumes with
// -allow-binary-mismatch and replays verbatim, while a config mismatch
// stays hard even with the override.
func TestJournalBinaryMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grid.journal")
	cfg := journalTestConfig()
	writerFP := NewFingerprint(&cfg, nil, nil)
	writerFP.Binary = "writer-binary"
	j, err := CreateJournal(path, writerFP)
	if err != nil {
		t.Fatal(err)
	}
	j.Record(GridWorkstation, 2, UniCellRecord{Failed: true, Failure: "recorded by writer"})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	readerFP := NewFingerprint(&cfg, nil, nil)
	readerFP.Binary = "reader-binary"

	// Config identity matches — the hash ignores the binary — so the
	// default-mode failure is the typed, overridable binary error.
	if writerFP.Hash() != readerFP.Hash() {
		t.Fatal("binary identity leaked into the config hash")
	}
	_, err = OpenJournal(path, readerFP)
	var be *BinaryMismatchError
	if !errors.As(err, &be) {
		t.Fatalf("got %v, want *BinaryMismatchError", err)
	}
	if be.Got != "writer-binary" || be.Want != "reader-binary" {
		t.Errorf("BinaryMismatchError fields: %+v", be)
	}

	// Allowed: the journal opens, warns, and replays the writer's cells.
	var warned []string
	j2, err := OpenJournalAllow(path, readerFP, true, func(format string, args ...any) {
		warned = append(warned, fmt.Sprintf(format, args...))
	})
	if err != nil {
		t.Fatalf("OpenJournalAllow: %v", err)
	}
	defer j2.Close()
	if len(warned) != 1 || !strings.Contains(warned[0], "writer-binary") {
		t.Errorf("warnings = %q, want one naming the writer binary", warned)
	}
	var rec UniCellRecord
	if !j2.Replay(GridWorkstation, 2, &rec) || rec.Failure != "recorded by writer" {
		t.Errorf("cross-binary replay lost the record: %+v", rec)
	}

	// Same binary: no error, no warning.
	if _, err := OpenJournal(path, writerFP); err != nil {
		t.Errorf("same-binary open failed: %v", err)
	}

	// Config drift stays a hard *FingerprintError even with the override.
	other := journalTestConfig()
	other.Seed++
	otherFP := NewFingerprint(&other, nil, nil)
	otherFP.Binary = "writer-binary"
	_, err = OpenJournalAllow(path, otherFP, true, nil)
	var fe *FingerprintError
	if !errors.As(err, &fe) {
		t.Fatalf("config mismatch with override: got %v, want *FingerprintError", err)
	}
}

// A nil *Journal must be inert everywhere — the no-journal path of every
// grid driver goes through these calls.
func TestNilJournalIsInert(t *testing.T) {
	var j *Journal
	if j.Path() != "" || j.Cells() != 0 || j.Replayed() != 0 || j.Appended() != 0 {
		t.Error("nil journal reports state")
	}
	var rec UniCellRecord
	if j.Replay(GridWorkstation, 0, &rec) {
		t.Error("nil journal replayed a cell")
	}
	j.Record(GridWorkstation, 0, UniCellRecord{})
	j.SetAppendHook(func(int) {})
	if err := j.Err(); err != nil {
		t.Errorf("nil journal has a sticky error: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Errorf("nil journal close: %v", err)
	}
}

// The failed-fsync satellite: a Record whose bytes reach the file but
// whose Sync fails must (a) surface a typed *AppendError, (b) not enter
// the replay map, and (c) leave a journal that — after the crash the
// failed barrier implies — reopens to exactly the pre-append state,
// with the un-durable tail truncated away.
func TestJournalFailedSyncRecoversPreAppendState(t *testing.T) {
	cfg := journalTestConfig()
	fp := NewFingerprint(&cfg, nil, nil)
	mem := faultfs.NewMem()
	const path = "/grid.journal"

	// Header sync is #1; cell records sync at #2, #3, #4. Fail the third
	// cell's barrier.
	inj := faultfs.NewInjector(mem, faultfs.Plan{FailSyncAt: 4}, nil, nil)
	j, err := CreateJournalFS(inj, path, fp)
	if err != nil {
		t.Fatal(err)
	}
	j.Record(GridWorkstation, 0, UniCellRecord{Failed: true, Failure: "cell 0"})
	j.Record(GridWorkstation, 1, UniCellRecord{Failed: true, Failure: "cell 1"})
	if err := j.Err(); err != nil {
		t.Fatalf("clean appends errored: %v", err)
	}
	j.Record(GridWorkstation, 2, UniCellRecord{Failed: true, Failure: "cell 2"})

	var ae *AppendError
	if err := j.Err(); !errors.As(err, &ae) {
		t.Fatalf("Err() = %v, want *AppendError", err)
	}
	if ae.Grid != GridWorkstation || ae.Index != 2 {
		t.Errorf("AppendError names cell %s/%d, want %s/2", ae.Grid, ae.Index, GridWorkstation)
	}
	if !errors.Is(ae, syscall.EIO) {
		t.Errorf("AppendError does not unwrap to the injected EIO: %v", ae)
	}
	if _, ok := j.ReplayRaw(GridWorkstation, 2); ok {
		t.Error("un-durable cell entered the replay map")
	}
	// Sticky: later appends are refused outright.
	j.Record(GridWorkstation, 3, UniCellRecord{Failed: true, Failure: "cell 3"})
	if _, ok := j.ReplayRaw(GridWorkstation, 3); ok {
		t.Error("append after sticky error was accepted")
	}

	// Crash now. The record's bytes may be sitting volatile in the file;
	// the durable image must not contain them.
	img := mem.CrashImage()
	j2, err := OpenJournalAllowFS(img, path, fp, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := j2.Cells(); got != 2 {
		t.Fatalf("recovered %d cells, want the 2 durable ones", got)
	}
	for i := 0; i < 2; i++ {
		var rec UniCellRecord
		if !j2.Replay(GridWorkstation, i, &rec) || rec.Failure != fmt.Sprintf("cell %d", i) {
			t.Errorf("cell %d did not replay intact: %+v", i, rec)
		}
	}
	if _, ok := j2.ReplayRaw(GridWorkstation, 2); ok {
		t.Error("cell with failed sync survived the crash")
	}
	// And the recovered journal appends cleanly where it left off.
	j2.Record(GridWorkstation, 2, UniCellRecord{Failed: true, Failure: "cell 2 rerun"})
	if err := j2.Err(); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
}

// A torn append (short write mid-record) behaves the same way: typed
// sticky error now, pre-append state after reopen.
func TestJournalTornWriteRecovers(t *testing.T) {
	cfg := journalTestConfig()
	fp := NewFingerprint(&cfg, nil, nil)
	mem := faultfs.NewMem()
	const path = "/grid.journal"

	// Header is write #1, cells are #2, #3, ... — tear the second cell's
	// write partway through.
	inj := faultfs.NewInjector(mem, faultfs.Plan{TornWriteAt: 3, TornWriteKeep: 17}, nil, nil)
	j, err := CreateJournalFS(inj, path, fp)
	if err != nil {
		t.Fatal(err)
	}
	j.Record(GridWorkstation, 0, UniCellRecord{Failed: true, Failure: "cell 0"})
	j.Record(GridWorkstation, 1, UniCellRecord{Failed: true, Failure: "cell 1"})
	var ae *AppendError
	if err := j.Err(); !errors.As(err, &ae) || ae.Index != 1 {
		t.Fatalf("Err() = %v, want *AppendError for cell 1", err)
	}

	j2, err := OpenJournalAllowFS(mem, path, fp, false, nil)
	if err != nil {
		t.Fatalf("reopen over the torn tail: %v", err)
	}
	defer j2.Close()
	if got := j2.Cells(); got != 1 {
		t.Fatalf("recovered %d cells, want 1", got)
	}
	j2.Record(GridWorkstation, 1, UniCellRecord{Failed: true, Failure: "cell 1 rerun"})
	if err := j2.Err(); err != nil {
		t.Fatalf("append after torn-tail truncation: %v", err)
	}
	var rec UniCellRecord
	if !j2.Replay(GridWorkstation, 1, &rec) || rec.Failure != "cell 1 rerun" {
		t.Errorf("re-recorded cell = %+v", rec)
	}
}
