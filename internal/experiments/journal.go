package experiments

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"runtime/debug"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/faultfs"
	"repro/internal/metrics"
	"repro/internal/snapshot"
	"repro/internal/workstation"
)

// Exit codes shared by the simulation commands, documented in
// EXPERIMENTS.md. Flag-parse failures exit 2 (the flag package's
// convention); everything else is explicit.
const (
	// ExitSuccess: every selected experiment completed with no failed cell.
	ExitSuccess = 0
	// ExitFailure: at least one cell failed, or any other error.
	ExitFailure = 1
	// ExitUsage: command-line parse error.
	ExitUsage = 2
	// ExitInterrupted: a SIGINT/SIGTERM drain stopped the run; completed
	// cells were flushed (journal, partial tables, -json) and the rest
	// rendered as SKIP.
	ExitInterrupted = 3
	// ExitFingerprintMismatch: -resume was given a journal recorded under
	// a different configuration or binary.
	ExitFingerprintMismatch = 4
)

// JournalVersion is the journal file-format version; OpenJournal refuses
// files written by a different version. Version 2 split the fingerprint
// into config identity (hashed, hard error on mismatch) and binary
// identity (recorded in the header, checked separately, overridable).
const JournalVersion = 2

// Grid names tagging journal cell records, so one journal can hold both
// grids of a cmd/experiments run without index collisions. Exported
// because the distributed experiment service addresses cells by
// (grid, index) across the wire with the same keys.
const (
	GridWorkstation    = "workstation"
	GridMultiprocessor = "multiprocessor"
)

// Fingerprint identifies what a journal was recorded under, in two
// parts with different severities:
//
//   - Config identity (Version, Only, Uni, MP — everything that
//     determines cell results): Hash() covers exactly this. Resuming
//     replays simulation results verbatim, so any config drift is a
//     hard error (*FingerprintError).
//   - Binary identity (Binary): recorded in the header and compared
//     separately. Results are a function of the config, not of which
//     binary ran it — cmd/experiments, cmd/expworker and a rebuilt tree
//     all simulate identically — so a mismatch is refusable-by-default
//     (*BinaryMismatchError) but explicitly overridable
//     (-allow-binary-mismatch; the service coordinator always allows it).
type Fingerprint struct {
	Version int        `json:"version"`
	Binary  string     `json:"binary"`
	Only    []string   `json:"only,omitempty"`
	Uni     *UniConfig `json:"uni,omitempty"`
	MP      *MPConfig  `json:"mp,omitempty"`
	// Checkpoint stamps runs with warm-up forking enabled: a resumed run
	// must agree on both the decision to fork and the snapshot codec
	// speaking for any reused on-disk checkpoints. Forked and
	// from-scratch cells are byte-identical, so this is provenance
	// hygiene, not a correctness requirement — but it keeps one journal
	// from silently mixing the two regimes.
	Checkpoint *CheckpointStamp `json:"checkpoint,omitempty"`
}

// CheckpointStamp records how a run's checkpoints were produced.
type CheckpointStamp struct {
	CodecVersion int `json:"codec_version"`
}

// NewFingerprint builds the fingerprint for a cmd/experiments run over
// the given configs (either may be nil) and -only selection (sorted into
// a canonical order here, so callers need not agree on one). Parallelism
// is zeroed in the copies: results are byte-identical at every -j, so a
// resume at a different worker count is legitimate.
func NewFingerprint(uni *UniConfig, mp *MPConfig, only []string) Fingerprint {
	sortedOnly := append([]string(nil), only...)
	sort.Strings(sortedOnly)
	if len(sortedOnly) == 0 {
		sortedOnly = nil
	}
	fp := Fingerprint{Version: JournalVersion, Binary: binaryVersion(), Only: sortedOnly}
	if uni != nil {
		u := *uni
		u.Parallelism = 0
		u.Journal = nil
		if !u.Checkpoint.Disabled {
			fp.Checkpoint = &CheckpointStamp{CodecVersion: snapshot.Version}
		}
		u.Checkpoint = CheckpointOptions{}
		fp.Uni = &u
	}
	if mp != nil {
		m := *mp
		m.Parallelism = 0
		m.Journal = nil
		fp.MP = &m
	}
	return fp
}

// Hash digests the fingerprint's *config identity*: its canonical JSON
// encoding with the binary identity blanked. Two runs of the same
// configuration hash identically even across binaries — the binary
// comparison is a separate, softer check (see OpenJournalAllow).
func (fp Fingerprint) Hash() string {
	fp.Binary = ""
	data, err := json.Marshal(fp)
	if err != nil {
		// Fingerprint contents are plain config structs; Marshal cannot
		// fail on them. Degrade to a never-matching hash just in case.
		return "unhashable:" + err.Error()
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:12])
}

// binaryVersion identifies the running binary for the fingerprint: the
// main module version plus the VCS revision when the build recorded one.
// Test binaries and `go run` builds without VCS stamping all report
// "(devel)", which is correct — they are rebuilt from the same tree.
func binaryVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	v := bi.Main.Version
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			v += "+" + s.Value
		}
	}
	if v == "" {
		v = "unknown"
	}
	return v
}

// FingerprintError is the hard, diagnosable error OpenJournal returns
// when a journal was recorded under a different configuration or binary;
// cmd/experiments maps it to ExitFingerprintMismatch.
type FingerprintError struct {
	Path string
	Want string // hash of the current run's configuration
	Got  string // hash recorded in the journal header
}

func (e *FingerprintError) Error() string {
	return fmt.Sprintf("journal %s was recorded under a different configuration: header fingerprint %s, this run's %s — resume with the exact flags of the original run, or start a fresh journal with -journal",
		e.Path, e.Got, e.Want)
}

// BinaryMismatchError is returned by OpenJournal when a journal's config
// identity matches but it was written by a different binary (e.g. a
// cmd/expworker journal resumed under cmd/experiments, or a rebuilt
// tree). Results depend only on the configuration, so the caller may
// deliberately proceed with OpenJournalAllow / -allow-binary-mismatch;
// refusing is merely the conservative default.
type BinaryMismatchError struct {
	Path string
	Want string // binary identity of the current run
	Got  string // binary identity recorded in the journal header
}

func (e *BinaryMismatchError) Error() string {
	return fmt.Sprintf("journal %s was written by a different binary (%s; this is %s) under an identical configuration — results replay verbatim; pass -allow-binary-mismatch to resume anyway",
		e.Path, e.Got, e.Want)
}

// journalLine is one JSONL record: a header (first line) or a completed
// cell. Cell data is kept raw so replay can decode straight into the
// grid-specific record type, and Hash guards against torn appends.
type journalLine struct {
	Type    string          `json:"type"`
	Version int             `json:"version,omitempty"`
	Hash    string          `json:"hash,omitempty"`
	Grid    string          `json:"grid,omitempty"`
	Index   int             `json:"index,omitempty"`
	Data    json.RawMessage `json:"data,omitempty"`
}

// UniCellRecord is the journaled outcome of one workstation grid cell —
// everything RunUniprocessorCtx needs to rebuild the cell without
// re-simulating. Failed cells are journaled too (Result nil), so a
// resume does not re-run a deterministic failure. It is also the wire
// form a service worker reports for a workstation cell.
type UniCellRecord struct {
	Result     *workstation.Result `json:"result,omitempty"`
	Failed     bool                `json:"failed,omitempty"`
	Failure    string              `json:"failure,omitempty"`
	Diagnostic string              `json:"diagnostic,omitempty"`
	Retried    bool                `json:"retried,omitempty"`
}

// MPCellRecord is the journaled outcome of one multiprocessor grid cell.
// It mirrors mp.Result minus the functional memory image (megabytes per
// cell, and MPCell only consumes the digest). It is also the wire form
// a service worker reports for a multiprocessor cell.
type MPCellRecord struct {
	Cycles     int64                `json:"cycles,omitempty"`
	Completed  bool                 `json:"completed,omitempty"`
	Stats      core.Stats           `json:"stats"`
	Threads    int                  `json:"threads,omitempty"`
	MemHash    uint64               `json:"memHash,omitempty"`
	ArchHash   uint64               `json:"archHash,omitempty"`
	Metrics    *metrics.CellMetrics `json:"metrics,omitempty"`
	Failed     bool                 `json:"failed,omitempty"`
	Failure    string               `json:"failure,omitempty"`
	Diagnostic string               `json:"diagnostic,omitempty"`
	Retried    bool                 `json:"retried,omitempty"`
}

type journalKey struct {
	grid  string
	index int
}

// Journal is the append-only crash-safety log of a grid run: a header
// fingerprinting the configuration, then one fsynced JSONL record per
// completed cell. Appends come from concurrent cell workers; replay
// is keyed by (grid, index), so the on-disk completion order is
// irrelevant. A nil *Journal is valid everywhere and disables journaling.
type Journal struct {
	mu       sync.Mutex
	f        faultfs.File
	fs       faultfs.FS
	path     string
	cells    map[journalKey]json.RawMessage
	appended int
	replayed int
	writeErr error
	onAppend func(appended int)
}

// AppendError is the typed failure a journal append surfaces through
// Err(): which cell could not be made durable and why. The distinction
// matters to callers — a failed Sync means the record's bytes may be in
// the file but are NOT durable, so the cell must not be acknowledged;
// recovery is reopen-and-truncate (OpenJournal), which restores the
// pre-append state.
type AppendError struct {
	Grid  string
	Index int
	Err   error
}

func (e *AppendError) Error() string {
	return fmt.Sprintf("experiments: journal cell %s/%d: %v", e.Grid, e.Index, e.Err)
}

func (e *AppendError) Unwrap() error { return e.Err }

// CreateJournal starts a fresh journal at path (truncating any previous
// file) and records the fingerprint header.
func CreateJournal(path string, fp Fingerprint) (*Journal, error) {
	return CreateJournalFS(nil, path, fp)
}

// CreateJournalFS is CreateJournal over an explicit filesystem; a nil
// fsys means the real one. Fault-injection harnesses pass a faultfs
// injector to exercise the journal's durability claims.
func CreateJournalFS(fsys faultfs.FS, path string, fp Fingerprint) (*Journal, error) {
	fsys = faultfs.OrOS(fsys)
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("experiments: create journal: %w", err)
	}
	j := &Journal{f: f, fs: fsys, path: path, cells: map[journalKey]json.RawMessage{}}
	fpData, err := json.Marshal(fp)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("experiments: journal fingerprint: %w", err)
	}
	header := journalLine{Type: "header", Version: JournalVersion, Hash: fp.Hash(), Data: fpData}
	if err := j.writeLine(header); err != nil {
		f.Close()
		return nil, fmt.Errorf("experiments: journal header: %w", err)
	}
	return j, nil
}

// OpenJournal opens an existing journal for resuming: it validates the
// header against fp — a config mismatch is a *FingerprintError, a
// binary mismatch a *BinaryMismatchError — loads every intact cell
// record for replay, and positions the file for appending.
//
// Corruption tolerance: a crash mid-append leaves at most one torn tail
// — a truncated line, trailing garbage, or a record whose payload hash
// does not match. Reading stops at the first such record; the cells
// before it replay, the torn cell simply re-runs, and the file is
// truncated back to its last intact record so new appends start on a
// clean line. A missing or corrupt *header* is not tolerated: there is
// nothing safe to resume.
func OpenJournal(path string, fp Fingerprint) (*Journal, error) {
	return OpenJournalAllow(path, fp, false, nil)
}

// OpenJournalAllow is OpenJournal with an explicit binary-identity
// policy: with allowBinaryMismatch set, a journal written by a different
// binary under an identical configuration resumes anyway, reporting the
// drift through warnf (when non-nil) instead of failing. Config
// mismatches remain hard errors in every mode — replayed cells would
// silently disagree with what this run would simulate.
func OpenJournalAllow(path string, fp Fingerprint, allowBinaryMismatch bool, warnf func(format string, args ...any)) (*Journal, error) {
	return OpenJournalAllowFS(nil, path, fp, allowBinaryMismatch, warnf)
}

// OpenJournalAllowFS is OpenJournalAllow over an explicit filesystem; a
// nil fsys means the real one.
func OpenJournalAllowFS(fsys faultfs.FS, path string, fp Fingerprint, allowBinaryMismatch bool, warnf func(format string, args ...any)) (*Journal, error) {
	fsys = faultfs.OrOS(fsys)
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, fmt.Errorf("experiments: open journal: %w", err)
	}
	defer f.Close()

	cells := map[journalKey]json.RawMessage{}
	var validOff int64
	sawHeader := false
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	for sc.Scan() {
		raw := sc.Bytes()
		var line journalLine
		if err := json.Unmarshal(raw, &line); err != nil {
			break // torn or garbage line: everything from here on is lost
		}
		if !sawHeader {
			if line.Type != "header" {
				return nil, fmt.Errorf("experiments: %s is not a journal (first line is %q, want header)", path, line.Type)
			}
			if line.Version != JournalVersion {
				return nil, fmt.Errorf("experiments: journal %s has format version %d, this binary writes %d", path, line.Version, JournalVersion)
			}
			if want := fp.Hash(); line.Hash != want {
				return nil, &FingerprintError{Path: path, Want: want, Got: line.Hash}
			}
			// Config identity matches; check binary identity separately.
			// The header Data carries the full recorded fingerprint, so
			// the writer's binary is recoverable even though the hash
			// deliberately excludes it.
			var hdr Fingerprint
			if err := json.Unmarshal(line.Data, &hdr); err != nil {
				return nil, fmt.Errorf("experiments: journal %s header fingerprint does not decode: %w", path, err)
			}
			if hdr.Binary != fp.Binary {
				if !allowBinaryMismatch {
					return nil, &BinaryMismatchError{Path: path, Want: fp.Binary, Got: hdr.Binary}
				}
				if warnf != nil {
					warnf("journal %s was written by binary %s (this is %s); configuration is identical, results replay verbatim",
						path, hdr.Binary, fp.Binary)
				}
			}
			sawHeader = true
			validOff += int64(len(raw)) + 1
			continue
		}
		if line.Type != "cell" || line.Index < 0 || DataHash(line.Data) != line.Hash {
			break // unknown type or torn payload: treat as incomplete
		}
		cells[journalKey{line.Grid, line.Index}] = line.Data
		validOff += int64(len(raw)) + 1
	}
	if !sawHeader {
		return nil, fmt.Errorf("experiments: journal %s has no intact header; cannot resume from it", path)
	}

	// Drop the torn tail (if any) so appends start on a record boundary,
	// then reopen for appending.
	if err := fsys.Truncate(path, validOff); err != nil {
		return nil, fmt.Errorf("experiments: truncate journal tail: %w", err)
	}
	af, err := fsys.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("experiments: reopen journal: %w", err)
	}
	return &Journal{f: af, fs: fsys, path: path, cells: cells}, nil
}

// DataHash digests a cell record's payload (FNV-1a, hex) so a torn
// append — payload truncated but the line still parsing as JSON — is
// detected and treated as "cell incomplete". Exported because the
// distributed coordinator dedups duplicate cell completions by the same
// hash, so a journaled record and a late re-delivery compare directly.
func DataHash(data []byte) string {
	h := fnv.New64a()
	h.Write(data)
	return hex.EncodeToString(h.Sum(nil))
}

// Path returns the journal's file path.
func (j *Journal) Path() string {
	if j == nil {
		return ""
	}
	return j.path
}

// Cells returns how many intact cell records were loaded for replay.
func (j *Journal) Cells() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.cells)
}

// Replayed returns how many cells were served from the journal instead
// of being re-simulated.
func (j *Journal) Replayed() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.replayed
}

// Appended returns how many cell records this process added.
func (j *Journal) Appended() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appended
}

// SetAppendHook installs fn, called (outside the journal lock) after
// every successful cell append with the running append count. The
// -interrupt-after test harness uses it to raise SIGINT partway through
// a grid; fn must not call back into the journal.
func (j *Journal) SetAppendHook(fn func(appended int)) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.onAppend = fn
	j.mu.Unlock()
}

// Err returns the sticky append error, if any write failed. Grid
// drivers check it once per grid: a journal that cannot record is a
// hard error (silently continuing would fake crash safety).
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.writeErr
}

// Close fsyncs and closes the journal file.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

// ReplayRaw returns the raw journaled payload for (grid, index), if an
// intact record was loaded. The service coordinator uses it to rebuild
// its dedup hashes and completion stream across a restart without a
// decode/re-encode round trip.
func (j *Journal) ReplayRaw(grid string, index int) (json.RawMessage, bool) {
	if j == nil {
		return nil, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	raw, ok := j.cells[journalKey{grid, index}]
	return raw, ok
}

// Replay looks up (grid, index) and decodes it into rec, counting a hit.
func (j *Journal) Replay(grid string, index int, rec any) bool {
	if j == nil {
		return false
	}
	j.mu.Lock()
	raw, ok := j.cells[journalKey{grid, index}]
	j.mu.Unlock()
	if !ok {
		return false
	}
	if err := json.Unmarshal(raw, rec); err != nil {
		return false // undecodable record: re-run the cell
	}
	j.mu.Lock()
	j.replayed++
	j.mu.Unlock()
	return true
}

// Record appends (grid, index, payload) as one fsynced line and keeps
// the in-memory cell map current, so ReplayRaw sees records appended in
// this process as well as ones replayed at open — the service
// coordinator assembles final results from that map. Errors are sticky
// and typed: after the first failed append (a short write OR a failed
// Sync — either way the record is not durably on disk) the journal
// stops accepting records, the cell map is NOT updated, and Err()
// reports an *AppendError identifying the cell.
func (j *Journal) Record(grid string, index int, payload any) {
	if j == nil {
		return
	}
	data, err := json.Marshal(payload)
	if err != nil {
		j.mu.Lock()
		if j.writeErr == nil {
			j.writeErr = &AppendError{Grid: grid, Index: index, Err: err}
		}
		j.mu.Unlock()
		return
	}
	line := journalLine{Type: "cell", Hash: DataHash(data), Grid: grid, Index: index, Data: data}

	j.mu.Lock()
	if j.writeErr != nil || j.f == nil {
		j.mu.Unlock()
		return
	}
	if err := j.writeLineLocked(line); err != nil {
		j.writeErr = &AppendError{Grid: grid, Index: index, Err: err}
		j.mu.Unlock()
		return
	}
	j.cells[journalKey{grid, index}] = data
	j.appended++
	n, hook := j.appended, j.onAppend
	j.mu.Unlock()
	if hook != nil {
		hook(n)
	}
}

func (j *Journal) writeLine(line journalLine) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.writeLineLocked(line)
}

// writeLineLocked appends one record and fsyncs — the fsync-per-record
// policy is what makes a completed cell durable against the very next
// instruction being a crash.
func (j *Journal) writeLineLocked(line journalLine) error {
	data, err := json.Marshal(line)
	if err != nil {
		return err
	}
	if _, err := j.f.Write(append(data, '\n')); err != nil {
		return err
	}
	return j.f.Sync()
}
