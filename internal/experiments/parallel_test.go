package experiments

import (
	"context"
	"reflect"
	"testing"
)

// The engine's core guarantee: the formatted experiment output is
// byte-identical at every parallelism level. Table 7 golden, -j 1 vs -j 8.
func TestTable7DeterministicAcrossParallelism(t *testing.T) {
	serial := QuickUniConfig()
	serial.Parallelism = 1
	rs, err := RunUniprocessor(serial)
	if err != nil {
		t.Fatal(err)
	}
	parallel := QuickUniConfig()
	parallel.Parallelism = 8
	rp, err := RunUniprocessor(parallel)
	if err != nil {
		t.Fatal(err)
	}
	gs, gp := FormatTable7(rs), FormatTable7(rp)
	if gs != gp {
		t.Errorf("Table 7 differs between -j 1 and -j 8:\n--- j=1 ---\n%s\n--- j=8 ---\n%s", gs, gp)
	}
	// The figures render the same cells; they must match too.
	if f6s, f6p := FormatFigure(rs, rs.Cfg.Schemes[0], 6), FormatFigure(rp, rp.Cfg.Schemes[0], 6); f6s != f6p {
		t.Error("Figure 6 differs between -j 1 and -j 8")
	}
}

// Table 10 golden, -j 1 vs -j 8.
func TestTable10DeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	serial := QuickMPConfig()
	serial.Parallelism = 1
	rs, err := RunMultiprocessor(serial)
	if err != nil {
		t.Fatal(err)
	}
	parallel := QuickMPConfig()
	parallel.Parallelism = 8
	rp, err := RunMultiprocessor(parallel)
	if err != nil {
		t.Fatal(err)
	}
	gs, gp := FormatTable10(rs), FormatTable10(rp)
	if gs != gp {
		t.Errorf("Table 10 differs between -j 1 and -j 8:\n--- j=1 ---\n%s\n--- j=8 ---\n%s", gs, gp)
	}
}

// Regression for the explicit-seed fix: two runs with the same seed must
// produce identical UniResult cells, field for field.
func TestSameSeedIdenticalCells(t *testing.T) {
	mk := func() UniConfig {
		cfg := QuickUniConfig()
		cfg.Workloads = []string{"DC", "R1"}
		cfg.Seed = 42
		cfg.Parallelism = 4
		return cfg
	}
	a, err := RunUniprocessor(mk())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunUniprocessor(mk())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Cells, b.Cells) {
		t.Errorf("same seed produced different cells:\n%+v\nvs\n%+v", a.Cells, b.Cells)
	}
}

// Race-detector coverage: drive every experiment kind through the pool at
// once with tiny configurations. Safe in -short; run under
// `go test -race ./internal/experiments/...` (scripts/check.sh does).
func TestAllExperimentKindsUnderRace(t *testing.T) {
	uni := QuickUniConfig()
	uni.Workloads = []string{"DC"}
	uni.SliceCycles = 4_000
	uni.Parallelism = 4

	mpc := QuickMPConfig()
	mpc.Apps = []string{"water"}
	mpc.Processors = 2
	mpc.ContextCounts = []int{2}
	mpc.Parallelism = 4

	rcfg := DefaultResponseConfig()
	rcfg.Bursts = 6
	rcfg.Parallelism = 3

	// The kinds themselves also run concurrently with each other, so the
	// race detector sees pool workers from different experiments
	// overlapping — the worst case the engine must survive.
	kinds := []func() error{
		func() error { _, err := RunUniprocessor(uni); return err },
		func() error { _, err := RunMultiprocessor(mpc); return err },
		func() error { _, err := RunAblations(uni); return err },
		func() error { _, err := RunPrefetchComparison(uni); return err },
		func() error { _, err := RunResponse(rcfg); return err },
		func() error { _, err := SwitchCostSweep(uni, "DC"); return err },
		func() error { _, err := ContextCountSweep(uni, "DC"); return err },
		func() error { _, err := MSHRSweep(uni, "DC"); return err },
		func() error { _, err := IssueWidthSweep(uni, "R1"); return err },
		func() error { _, err := RemoteLatencySweep(mpc, "water"); return err },
	}
	if err := runCells(context.Background(), 4, len(kinds), func(_ context.Context, i int) error { return kinds[i]() }); err != nil {
		t.Fatal(err)
	}
}
