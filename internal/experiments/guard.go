package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/guard"
)

// cellGuard resolves the grid-level hardening options for one cell: a
// non-zero chaos seed is decorrelated per cell with DeriveSeed, so each
// cell perturbs a private stream and results stay independent of
// execution order.
func cellGuard(o guard.Options, cell int) guard.Options {
	if o.ChaosSeed != 0 {
		o.ChaosSeed = DeriveSeed(o.ChaosSeed, cell)
	}
	return o
}

// withCellDeadline applies the per-cell wall-clock budget (-cell-timeout)
// for the given 1-based attempt: the budget doubles per retry, the same
// escalation discipline as the watchdog window. A non-positive timeout
// returns ctx unchanged.
func withCellDeadline(ctx context.Context, timeout time.Duration, attempt int) (context.Context, context.CancelFunc, time.Duration) {
	if timeout <= 0 {
		return ctx, func() {}, 0
	}
	d := time.Duration(guard.Escalate(int64(timeout), attempt-1))
	cctx, cancel := context.WithTimeout(ctx, d)
	return cctx, cancel, d
}

// classifyDeadline reinterprets a cancellation artifact from a cell run:
// if the *cell's* deadline fired while the caller's context was still
// live, the error becomes a typed guard.OpDeadline failure — a diagnosed
// cell FAIL, retried once at a doubled budget and then counted against
// the exit code — rather than a SKIP. A genuine caller cancellation
// (SIGINT drain, first-error cancel) passes through untouched.
func classifyDeadline(parent, cell context.Context, d time.Duration, err error) error {
	if err == nil || d <= 0 || !guard.IsCancellation(err) {
		return err
	}
	if parent.Err() != nil || cell.Err() != context.DeadlineExceeded {
		return err
	}
	de := guard.NewSimError(guard.OpDeadline, fmt.Errorf("cell exceeded its %v wall-clock budget", d))
	if se := guard.AsSimError(err); se != nil {
		de = de.At(se.Cycle)
	}
	return de
}

// failureStrings renders a cell failure: the one-line error, plus the
// structured diagnostic when the error chain carries one (watchdog trips
// and invariant violations do).
func failureStrings(err error) (failure, diagnostic string) {
	if err == nil {
		return "", ""
	}
	failure = err.Error()
	if se := guard.AsSimError(err); se != nil && se.Diag != nil {
		diagnostic = se.Diag.String()
	}
	return failure, diagnostic
}
