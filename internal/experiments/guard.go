package experiments

import "repro/internal/guard"

// cellGuard resolves the grid-level hardening options for one cell: a
// non-zero chaos seed is decorrelated per cell with DeriveSeed, so each
// cell perturbs a private stream and results stay independent of
// execution order.
func cellGuard(o guard.Options, cell int) guard.Options {
	if o.ChaosSeed != 0 {
		o.ChaosSeed = DeriveSeed(o.ChaosSeed, cell)
	}
	return o
}

// failureStrings renders a cell failure: the one-line error, plus the
// structured diagnostic when the error chain carries one (watchdog trips
// and invariant violations do).
func failureStrings(err error) (failure, diagnostic string) {
	if err == nil {
		return "", ""
	}
	failure = err.Error()
	if se := guard.AsSimError(err); se != nil && se.Diag != nil {
		diagnostic = se.Diag.String()
	}
	return failure, diagnostic
}
