package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// Section rendering shared by cmd/experiments and the distributed
// experiment service. Byte-identity between a single-process run and a
// distributed one is a correctness bar (the crash harness diffs the two),
// so the exact bytes each section contributes to stdout live here, in one
// copy, instead of being re-derived by each driver.

// GridSections are the section names backed by the two grids — the
// subset of cmd/experiments' -only vocabulary a distributed job can
// request.
var GridSections = []string{"table7", "fig6", "fig7", "table10", "fig8", "fig9"}

// IsGridSection reports whether name is one of GridSections.
func IsGridSection(name string) bool {
	for _, s := range GridSections {
		if s == name {
			return true
		}
	}
	return false
}

// NeedUni reports whether the selection requires the workstation grid.
func NeedUni(sel func(string) bool) bool {
	return sel("table7") || sel("fig6") || sel("fig7")
}

// NeedMP reports whether the selection requires the multiprocessor grid.
func NeedMP(sel func(string) bool) bool {
	return sel("table10") || sel("fig8") || sel("fig9")
}

// RenderUniSections renders the workstation sections the selection asks
// for, byte-identical to what cmd/experiments prints for them.
func RenderUniSections(sel func(string) bool, uni *UniResult) string {
	var b strings.Builder
	if sel("table7") {
		fmt.Fprintln(&b, FormatTable7(uni))
		fmt.Fprintln(&b)
	}
	if sel("fig6") {
		fmt.Fprintln(&b, FormatFigure(uni, core.Blocked, 6))
	}
	if sel("fig7") {
		fmt.Fprintln(&b, FormatFigure(uni, core.Interleaved, 7))
	}
	return b.String()
}

// RenderMPSections renders the multiprocessor sections the selection
// asks for, byte-identical to what cmd/experiments prints for them.
func RenderMPSections(sel func(string) bool, mpr *MPResult) string {
	var b strings.Builder
	if sel("table10") {
		fmt.Fprintln(&b, FormatTable10(mpr))
		fmt.Fprintln(&b)
	}
	if sel("fig8") {
		fmt.Fprintln(&b, FormatMPFigure(mpr, core.Blocked, 8))
	}
	if sel("fig9") {
		fmt.Fprintln(&b, FormatMPFigure(mpr, core.Interleaved, 9))
	}
	return b.String()
}

// Selection turns an -only style list into the selector the renderers
// take: an empty list selects everything.
func Selection(only []string) func(string) bool {
	if len(only) == 0 {
		return func(string) bool { return true }
	}
	want := map[string]bool{}
	for _, n := range only {
		want[strings.TrimSpace(n)] = true
	}
	return func(name string) bool { return want[name] }
}
