package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/guard"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/workstation"
)

// UniConfig parameterizes the workstation experiments (Table 7 and
// Figures 6-7).
type UniConfig struct {
	// Schemes evaluated against the single-context baseline.
	Schemes []core.Scheme
	// ContextCounts per scheme (the paper uses 2 and 4).
	ContextCounts []int
	// Workloads to run; nil selects all of Table 5.
	Workloads []string

	SliceCycles      int64
	WarmupRotations  int
	MeasureRotations int
	Seed             int64

	// Parallelism bounds how many simulation cells run concurrently:
	// 0 selects DefaultParallelism (GOMAXPROCS), 1 forces the serial
	// path. Results are byte-identical at every setting.
	Parallelism int

	// CellTimeout bounds each cell's wall-clock time (-cell-timeout). A
	// cell that exceeds it fails with a typed guard.OpDeadline error —
	// after one retry at a doubled budget, the watchdog discipline applied
	// to wall time — and counts against the exit code like any other cell
	// failure. Zero disables the deadline. Excluded from JSON so the
	// timeout choice never enters result fingerprints: it bounds wall
	// clock, not simulated behavior.
	CellTimeout time.Duration `json:"-"`

	// Guard is the per-cell hardening configuration. A non-zero ChaosSeed
	// is decorrelated per cell with DeriveSeed, so every cell perturbs its
	// own private stream.
	Guard guard.Options

	// Obs configures per-cell observability; enabled, every cell carries
	// its sampled counter series and event trace in UniCell.Metrics.
	Obs metrics.Options

	// Journal, when non-nil, records every completed cell durably and
	// replays cells already present (crash-safe resume). Excluded from
	// JSON so results and fingerprints do not depend on journaling.
	Journal *Journal `json:"-"`

	// Checkpoint configures warm-up sharing for the sensitivity sweeps:
	// sweeps whose swept parameter is a measurement-time override
	// simulate their shared warm-up prefix once and fork every cell from
	// it. Excluded from JSON because forked and from-scratch runs are
	// byte-identical; the one observable consequence — which codec wrote
	// any on-disk checkpoints — is recorded in Fingerprint.Checkpoint.
	Checkpoint CheckpointOptions `json:"-"`
}

// DefaultUniConfig reproduces the paper's setup (time-scaled).
func DefaultUniConfig() UniConfig {
	return UniConfig{
		Schemes:          []core.Scheme{core.Blocked, core.Interleaved},
		ContextCounts:    []int{2, 4},
		SliceCycles:      60_000,
		WarmupRotations:  1,
		MeasureRotations: 2,
		Seed:             1,
	}
}

// QuickUniConfig is a reduced configuration for tests and benchmarks. The
// seed is set explicitly (not inherited implicitly, and never the zero
// value) so quick runs are reproducible by construction.
func QuickUniConfig() UniConfig {
	c := DefaultUniConfig()
	c.SliceCycles = 8_000
	c.MeasureRotations = 1
	c.Seed = 1
	return c
}

// UniCell is one (workload, scheme, contexts) measurement.
type UniCell struct {
	Workload string
	Scheme   core.Scheme
	Contexts int
	// Busy is the raw processor busy fraction (Figures 6-7); Gain is the
	// fairness-normalized throughput relative to the single-context
	// baseline (Table 7's throughput increase; see
	// workstation.Result.FairThroughput).
	Busy      float64
	Gain      float64
	Breakdown core.Breakdown

	// Failed marks a cell whose simulation errored (watchdog trip,
	// invariant violation, panic); Failure is the one-line error and
	// Diagnostic the structured dump when one was attached. The rest of
	// the grid is unaffected (graceful degradation).
	Failed     bool
	Failure    string
	Diagnostic string

	// Retried marks a cell whose first attempt tripped the liveness
	// watchdog and was deterministically re-run at a doubled window; the
	// recorded outcome (success or failure) is the retry's.
	Retried bool `json:",omitempty"`

	// Skipped marks a cell that never completed because the run was
	// interrupted (SIGINT/SIGTERM drain or first-error cancellation).
	// Skipped cells carry no measurement and no failure diagnosis.
	Skipped bool `json:",omitempty"`

	// Metrics is the cell's observability record, nil unless UniConfig.Obs
	// enabled instrumentation.
	Metrics *metrics.CellMetrics `json:",omitempty"`
}

// UniResult holds every cell of the workstation evaluation, including the
// single-context baselines (Scheme == core.Single, Contexts == 1).
type UniResult struct {
	Cfg   UniConfig
	Cells []UniCell
	// Failures counts failed cells; drivers exit non-zero when any cell
	// failed even though the rest of the grid completed.
	Failures int
	// Skipped counts cells lost to an interrupted (drained) run; they
	// render as SKIP and re-run on a journal resume.
	Skipped int `json:",omitempty"`
}

// Cell returns the measurement for (workload, scheme, contexts).
func (r *UniResult) Cell(w string, s core.Scheme, n int) (UniCell, bool) {
	for _, c := range r.Cells {
		if c.Workload == w && c.Scheme == s && c.Contexts == n {
			return c, true
		}
	}
	return UniCell{}, false
}

// MeanGain returns the geometric-mean throughput gain across workloads for
// (scheme, contexts) — the Mean column of Table 7.
func (r *UniResult) MeanGain(s core.Scheme, n int) float64 {
	m, _, _ := r.MeanGainN(s, n)
	return m
}

// MeanGainN additionally reports coverage: used is the number of cells
// that entered the mean, total the number of (s, n) cells in the grid.
// Failed cells and cells without a positive gain (e.g. a lost baseline)
// are excluded from the mean rather than dragged in as zeros.
func (r *UniResult) MeanGainN(s core.Scheme, n int) (mean float64, used, total int) {
	var gs []float64
	for _, c := range r.Cells {
		if c.Scheme == s && c.Contexts == n {
			total++
			if !c.Failed && !c.Skipped {
				gs = append(gs, c.Gain)
			}
		}
	}
	mean, skipped := stats.GeoMean(gs)
	return mean, len(gs) - skipped, total
}

// uniSpec addresses one cell of the workstation grid: the cell at index
// i of uniSpecs(cfg) is the same (workload, scheme, contexts) simulation
// everywhere — in-process pool, journal replay, and the distributed
// service all key cells by this index.
type uniSpec struct {
	workload string
	kernels  []apps.Kernel
	scheme   core.Scheme
	contexts int
}

// uniSpecs enumerates cfg's grid in its canonical order: per workload,
// the single-context baseline first, then schemes × context counts.
func uniSpecs(cfg UniConfig) ([]uniSpec, error) {
	workloads := cfg.Workloads
	if workloads == nil {
		workloads = WorkloadOrder
	}
	var specs []uniSpec
	for _, w := range workloads {
		kernels, err := ResolveWorkload(w)
		if err != nil {
			return nil, err
		}
		specs = append(specs, uniSpec{w, kernels, core.Single, 1})
		for _, s := range cfg.Schemes {
			for _, n := range cfg.ContextCounts {
				specs = append(specs, uniSpec{w, kernels, s, n})
			}
		}
	}
	return specs, nil
}

// UniGridSize returns the number of cells in cfg's workstation grid —
// the valid index range for RunUniCell and AssembleUni.
func UniGridSize(cfg UniConfig) (int, error) {
	specs, err := uniSpecs(cfg)
	if err != nil {
		return 0, err
	}
	return len(specs), nil
}

// RunUniCell simulates one cell of cfg's workstation grid and returns
// its journal/wire record. It is the single copy of the per-cell policy
// every driver shares — cmd/experiments' pool and the distributed
// service's workers produce byte-identical records because both call
// this: per-index derived seed and chaos stream, one deterministic
// retry at a doubled budget when the first attempt trips the liveness
// watchdog or the per-cell deadline, failures folded into the record.
// The only non-nil error returns are a bad index and a cancellation of
// ctx itself (the cell was drained, not diagnosed).
func RunUniCell(ctx context.Context, cfg UniConfig, index int) (*UniCellRecord, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	specs, err := uniSpecs(cfg)
	if err != nil {
		return nil, err
	}
	if index < 0 || index >= len(specs) {
		return nil, fmt.Errorf("experiments: workstation cell %d outside grid [0,%d)", index, len(specs))
	}
	return runUniCellSpec(ctx, cfg, index, specs[index])
}

func runUniCellSpec(ctx context.Context, cfg UniConfig, i int, sp uniSpec) (*UniCellRecord, error) {
	build := func(attempt int) workstation.Config {
		wcfg := workstation.DefaultConfig(sp.scheme, sp.contexts)
		wcfg.OS.SliceCycles = cfg.SliceCycles
		wcfg.WarmupRotations = cfg.WarmupRotations
		wcfg.MeasureRotations = cfg.MeasureRotations
		wcfg.Seed = DeriveSeed(cfg.Seed, i)
		wcfg.Guard = cellGuard(cfg.Guard, i)
		wcfg.Obs = cfg.Obs
		if attempt > 1 {
			// Escalated re-run: same derived seed, doubled liveness window.
			// A budget trip can mean "slower than the window", not "wedged";
			// doubling separates the two.
			wcfg.Guard.WatchdogWindow = guard.Escalate(wcfg.Guard.WatchdogWindow, attempt-1)
		}
		return wcfg
	}
	run := func(attempt int) (*workstation.Result, error) {
		cellCtx, cancel, budget := withCellDeadline(ctx, cfg.CellTimeout, attempt)
		defer cancel()
		r, err := workstation.RunCtx(cellCtx, sp.kernels, build(attempt))
		return r, classifyDeadline(ctx, cellCtx, budget, err)
	}
	policy := guard.GridRetry()
	retried := false
	var r *workstation.Result
	var err error
	for attempt := 1; ; attempt++ {
		r, err = run(attempt)
		if err == nil || !guard.IsBudgetTrip(err) || ctx.Err() != nil || !policy.Allowed(attempt+1) {
			break
		}
		retried = true
	}
	if err != nil {
		if guard.IsCancellation(err) && ctx.Err() != nil {
			return nil, err // drained mid-cell: renders as SKIP, not journaled
		}
		rec := &UniCellRecord{Failed: true, Retried: retried}
		rec.Failure, rec.Diagnostic = failureStrings(err)
		return rec, nil
	}
	return &UniCellRecord{Result: r, Retried: retried}, nil
}

// AssembleUni folds index-ordered cell records into the evaluation
// result: gains against each workload's single-context baseline, failure
// and skip counts. A nil record is a cell that never completed
// (interrupted, or still unfinished in a distributed run) and renders as
// SKIP. Assembly is pure — the distributed coordinator calls it over
// journal-replayed records and gets the bytes a single-process run
// prints.
func AssembleUni(cfg UniConfig, recs []*UniCellRecord) (*UniResult, error) {
	specs, err := uniSpecs(cfg)
	if err != nil {
		return nil, err
	}
	if len(recs) != len(specs) {
		return nil, fmt.Errorf("experiments: workstation grid has %d cells, got %d records", len(specs), len(recs))
	}
	res := &UniResult{Cfg: cfg}
	var base *workstation.Result
	for i, sp := range specs {
		rec := recs[i]
		cell := UniCell{Workload: sp.workload, Scheme: sp.scheme, Contexts: sp.contexts}
		isBase := sp.scheme == core.Single && sp.contexts == 1
		switch {
		case rec == nil:
			// The run was interrupted before this cell completed.
			cell.Skipped = true
			res.Skipped++
			if isBase {
				base = nil
			}
		case rec.Failed || rec.Result == nil:
			// The cell failed (watchdog, deadline, invariant, panic — or a
			// malformed record with no result): record it and keep going. A
			// failed baseline zeroes its workload's gains but costs nothing
			// else.
			cell.Retried = rec.Retried
			cell.Failed = true
			cell.Failure, cell.Diagnostic = rec.Failure, rec.Diagnostic
			if cell.Failure == "" {
				cell.Failure = "cell record carries no result"
			}
			res.Failures++
			if isBase {
				base = nil
			}
		default:
			r := rec.Result
			cell.Retried = rec.Retried
			cell.Busy = r.Throughput
			cell.Breakdown = r.Stats.Breakdown()
			cell.Metrics = r.Metrics
			if isBase {
				base = r
				cell.Gain = 1
			} else if base != nil && base.FairThroughput > 0 {
				cell.Gain = r.FairThroughput / base.FairThroughput
			}
		}
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}

// RunUniprocessor runs the full workstation evaluation. The cells — one
// (workload, scheme, contexts) simulation each — are independent, so they
// fan out across cfg.Parallelism workers; every cell derives its seed
// from its grid position, and results land in a pre-sized slice indexed
// by cell, so the output is byte-identical at every parallelism level.
func RunUniprocessor(cfg UniConfig) (*UniResult, error) {
	return RunUniprocessorCtx(context.Background(), cfg)
}

// RunUniprocessorCtx is RunUniprocessor with cancellation and journaling:
// cancelling ctx drains the grid (queued cells never start, running cells
// stop within engine.BlockCycles cycles, both render as SKIP), and a
// cfg.Journal replays completed cells from a previous run and records new
// ones durably. A cell whose first attempt trips the liveness watchdog is
// retried once at a doubled window with the same derived seed before
// being declared failed.
func RunUniprocessorCtx(ctx context.Context, cfg UniConfig) (*UniResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	specs, err := uniSpecs(cfg)
	if err != nil {
		return nil, err
	}
	j := cfg.Journal
	recs := make([]*UniCellRecord, len(specs))
	failures := runCellsAll(ctx, cfg.Parallelism, len(specs), func(ctx context.Context, i int) error {
		var rec UniCellRecord
		if j.Replay(GridWorkstation, i, &rec) {
			recs[i] = &rec
			return nil
		}
		out, err := runUniCellSpec(ctx, cfg, i, specs[i])
		if err != nil {
			return nil // drained mid-cell: renders as SKIP, not journaled
		}
		recs[i] = out
		j.Record(GridWorkstation, i, out)
		return nil
	})
	// Failures escaping the per-cell classification above are panics
	// recovered by the pool; fold them in as failed cells.
	for _, f := range failures {
		rec := &UniCellRecord{Failed: true}
		rec.Failure, rec.Diagnostic = failureStrings(f.Err)
		recs[f.Index] = rec
		j.Record(GridWorkstation, f.Index, rec)
	}
	res, err := AssembleUni(cfg, recs)
	if err != nil {
		return nil, err
	}
	if err := j.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// FormatTable7 renders the paper's Table 7: throughput increase with
// multiple contexts, as ratios to the single-context baseline.
func FormatTable7(r *UniResult) string {
	var b strings.Builder
	b.WriteString("Table 7: Increase in application throughput with multiple contexts\n")
	b.WriteString("(ratio to single-context baseline; paper reports e.g. interleaved 1.22/1.50 means)\n\n")
	workloads := r.Cfg.Workloads
	if workloads == nil {
		workloads = WorkloadOrder
	}
	header := append([]string{"Contexts", "Scheme"}, workloads...)
	header = append(header, "Mean")
	t := stats.NewTable(header...)
	var usedSum, totalSum int
	for _, n := range r.Cfg.ContextCounts {
		for _, s := range []core.Scheme{core.Interleaved, core.Blocked} {
			found := false
			row := []string{fmt.Sprintf("%d", n), s.String()}
			for _, w := range workloads {
				if c, ok := r.Cell(w, s, n); ok {
					switch {
					case c.Skipped:
						row = append(row, "SKIP")
					case c.Failed:
						row = append(row, "FAIL")
					default:
						row = append(row, stats.Ratio(c.Gain))
					}
					found = true
				} else {
					row = append(row, "-")
				}
			}
			if !found {
				continue
			}
			mean, used, total := r.MeanGainN(s, n)
			usedSum += used
			totalSum += total
			row = append(row, stats.Ratio(mean))
			t.AddRow(row...)
		}
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\nMean: geometric mean over cells with a positive gain (%d of %d cells).\n", usedSum, totalSum)
	return b.String()
}

// FormatFigure renders Figure 6 (blocked) or Figure 7 (interleaved): the
// processor-utilization breakdown per workload for 1, 2 and 4 contexts,
// as stacked text bars.
func FormatFigure(r *UniResult, scheme core.Scheme, figure int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %d: %s scheme processor utilization\n", figure, scheme)
	b.WriteString("(bar: B=busy i=instr stall I=I-cache D=D-cache/TLB S=switch; number = busy fraction)\n\n")
	workloads := r.Cfg.Workloads
	if workloads == nil {
		workloads = WorkloadOrder
	}
	configs := []struct {
		s core.Scheme
		n int
	}{{core.Single, 1}}
	for _, n := range r.Cfg.ContextCounts {
		configs = append(configs, struct {
			s core.Scheme
			n int
		}{scheme, n})
	}
	for _, w := range workloads {
		fmt.Fprintf(&b, "%s:\n", w)
		for _, cf := range configs {
			c, ok := r.Cell(w, cf.s, cf.n)
			if !ok {
				continue
			}
			if c.Skipped {
				fmt.Fprintf(&b, "  %d ctx SKIPPED (run interrupted)\n", cf.n)
				continue
			}
			if c.Failed {
				fmt.Fprintf(&b, "  %d ctx FAILED: %s\n", cf.n, c.Failure)
				continue
			}
			bd := c.Breakdown
			bar := stats.Bar(50,
				[]float64{bd.Busy + bd.Sync, bd.InstrShort + bd.InstrLong, bd.InstCache, bd.DataMem, bd.Switch},
				[]rune{'B', 'i', 'I', 'D', 'S'})
			fmt.Fprintf(&b, "  %d ctx |%s| %.2f\n", cf.n, bar, c.Busy)
		}
	}
	return b.String()
}
