package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/prog"
	"repro/internal/stats"
	"repro/internal/workstation"
)

// AblationResult reports the design-choice studies DESIGN.md calls out:
// each row is a variant's fairness-normalized throughput gain over the
// single-context baseline on the uniprocessor workloads (the same metric
// as Table 7).
type AblationResult struct {
	Workloads []string
	Rows      []AblationRow
}

// AblationRow is one variant's gains per workload. Used of Total cells
// entered the mean (cells without a positive gain are excluded).
type AblationRow struct {
	Name  string
	Gains []float64
	Mean  float64
	Used  int
	Total int
}

// RunAblations evaluates, at four contexts on the given workloads:
//
//   - interleaved (the proposal)
//   - blocked (the prior art)
//   - blocked-fast (pipeline-register replication: 1-cycle switch, §2.2)
//   - interleaved without the BTB
//   - interleaved without the backoff instruction
//   - fine-grained (HEP-style, §2.1)
func RunAblations(cfg UniConfig) (*AblationResult, error) {
	return RunAblationsCtx(context.Background(), cfg)
}

// RunAblationsCtx is RunAblations with cancellation.
func RunAblationsCtx(ctx context.Context, cfg UniConfig) (*AblationResult, error) {
	workloads := cfg.Workloads
	if workloads == nil {
		workloads = WorkloadOrder
	}
	res := &AblationResult{Workloads: workloads}

	type variant struct {
		name   string
		scheme core.Scheme
		mutate func(*workstation.Config)
	}
	variants := []variant{
		{"interleaved", core.Interleaved, nil},
		{"blocked", core.Blocked, nil},
		{"blocked-fast (1-cycle switch)", core.BlockedFast, nil},
		{"interleaved, no BTB", core.Interleaved, func(w *workstation.Config) {
			c := core.DefaultConfig(core.Interleaved, w.Contexts)
			c.BTBEntries = 0
			w.Core = &c
		}},
		{"interleaved, no backoff", core.Interleaved, func(w *workstation.Config) {
			// The hardware still interleaves, but the code is compiled
			// without latency-tolerance yields.
			none := prog.YieldNone
			w.YieldOverride = &none
		}},
		{"fine-grained (HEP-style)", core.FineGrained, nil},
	}

	// Flatten the (baseline + variant) × workload grid into independent
	// cells and fan them out; gains are assembled afterwards in grid
	// order, so results match the serial path byte for byte.
	type spec struct {
		workload string
		kernels  []apps.Kernel
		variant  int // -1 = single-context baseline
	}
	var specs []spec
	for _, w := range workloads {
		kernels, err := ResolveWorkload(w)
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec{w, kernels, -1})
	}
	for vi := range variants {
		for _, w := range workloads {
			kernels, err := ResolveWorkload(w)
			if err != nil {
				return nil, err
			}
			specs = append(specs, spec{w, kernels, vi})
		}
	}
	runs := make([]*workstation.Result, len(specs))
	err := runCells(ctx, cfg.Parallelism, len(specs), func(ctx context.Context, i int) error {
		sp := specs[i]
		scheme, contexts := core.Single, 1
		if sp.variant >= 0 {
			scheme, contexts = variants[sp.variant].scheme, 4
		}
		wcfg := workstation.DefaultConfig(scheme, contexts)
		wcfg.OS.SliceCycles = cfg.SliceCycles
		wcfg.WarmupRotations = cfg.WarmupRotations
		wcfg.MeasureRotations = cfg.MeasureRotations
		wcfg.Seed = DeriveSeed(cfg.Seed, i)
		if sp.variant >= 0 && variants[sp.variant].mutate != nil {
			variants[sp.variant].mutate(&wcfg)
		}
		r, err := workstation.RunCtx(ctx, sp.kernels, wcfg)
		if err != nil {
			return err
		}
		runs[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}

	base := make(map[string]float64)
	for i, w := range workloads {
		base[w] = runs[i].FairThroughput
	}
	for vi, v := range variants {
		row := AblationRow{Name: v.name}
		for wi, w := range workloads {
			r := runs[len(workloads)*(vi+1)+wi]
			row.Gains = append(row.Gains, r.FairThroughput/base[w])
		}
		var skipped int
		row.Mean, skipped = stats.GeoMean(row.Gains)
		row.Used = len(row.Gains) - skipped
		row.Total = len(row.Gains)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// FormatAblations renders the ablation table.
func FormatAblations(r *AblationResult) string {
	var b strings.Builder
	b.WriteString("Ablations: geometric-mean throughput gain at 4 contexts\n\n")
	header := append([]string{"Variant"}, r.Workloads...)
	header = append(header, "Mean")
	t := stats.NewTable(header...)
	var usedSum, totalSum int
	for _, row := range r.Rows {
		cells := []string{row.Name}
		for _, g := range row.Gains {
			cells = append(cells, stats.Ratio(g))
		}
		cells = append(cells, stats.Ratio(row.Mean))
		t.AddRow(cells...)
		usedSum += row.Used
		totalSum += row.Total
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\nMean: geometric mean over cells with a positive gain (%d of %d cells).\n", usedSum, totalSum)
	return b.String()
}
