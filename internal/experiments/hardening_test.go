package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/guard"
)

// RunAll must never cancel: every cell runs to its own conclusion even
// when earlier cells fail, at every parallelism level.
func TestRunAllNeverCancels(t *testing.T) {
	for _, j := range []int{1, 4} {
		var ran atomic.Int64
		failures := NewPool(j).RunAll(context.Background(), 32, func(_ context.Context, i int) error {
			ran.Add(1)
			if i%8 == 2 {
				return fmt.Errorf("cell %d diverged", i)
			}
			return nil
		})
		if got := ran.Load(); got != 32 {
			t.Fatalf("j=%d: only %d/32 cells ran — RunAll canceled", j, got)
		}
		if len(failures) != 4 {
			t.Fatalf("j=%d: %d failures, want 4", j, len(failures))
		}
		for k, f := range failures {
			if want := k*8 + 2; f.Index != want {
				t.Errorf("j=%d: failure %d has index %d, want %d (ascending cell order)", j, k, f.Index, want)
			}
			if !strings.Contains(f.Error(), "diverged") {
				t.Errorf("j=%d: failure %d = %v", j, k, f)
			}
		}
	}
}

// A panicking cell with a typed *guard.SimError payload must surface that
// error — diagnostic and all — through the pool's recovery, reachable via
// errors.As.
func TestRunAllRecoversSimErrorPanic(t *testing.T) {
	boom := guard.NewSimError("test.op", errors.New("injected")).
		At(42).WithDiag(&guard.Diagnostic{Reason: "injected failure", Cycle: 42})
	failures := NewPool(2).RunAll(context.Background(), 8, func(_ context.Context, i int) error {
		if i == 5 {
			panic(boom)
		}
		return nil
	})
	if len(failures) != 1 || failures[0].Index != 5 {
		t.Fatalf("failures = %v", failures)
	}
	var se *guard.SimError
	if !errors.As(failures[0].Err, &se) {
		t.Fatalf("errors.As cannot reach the SimError through recovery: %v", failures[0].Err)
	}
	if se.Op != "test.op" || se.Diag == nil {
		t.Fatalf("recovered SimError lost state: %+v", se)
	}
	failure, diag := failureStrings(failures[0].Err)
	if !strings.Contains(failure, "injected") || !strings.Contains(diag, "injected failure") {
		t.Fatalf("failureStrings = (%q, %q)", failure, diag)
	}
}

// cellGuard decorrelates the chaos seed per cell and leaves everything
// else (and the zero seed) alone.
func TestCellGuardSeedDerivation(t *testing.T) {
	base := guard.Options{ChaosSeed: 9, CheckInvariants: true}
	a, b := cellGuard(base, 0), cellGuard(base, 1)
	if a.ChaosSeed == b.ChaosSeed || a.ChaosSeed == 9 {
		t.Errorf("cells share a chaos stream: %d %d", a.ChaosSeed, b.ChaosSeed)
	}
	if !a.CheckInvariants {
		t.Error("cellGuard dropped CheckInvariants")
	}
	if off := cellGuard(guard.Options{}, 3); off.ChaosSeed != 0 {
		t.Errorf("chaos off turned into seed %d", off.ChaosSeed)
	}
}

// One cell blowing its cycle budget must cost exactly that cell: the grid
// completes, reports Failures, renders FAIL, and keeps valid geomeans.
func TestGridSurvivesCellBudgetExhaustion(t *testing.T) {
	cfg := MPConfig{
		Processors:    2,
		Schemes:       []core.Scheme{core.Interleaved},
		ContextCounts: []int{2},
		Apps:          []string{"mp3d"},
		Steps:         1,
		LimitCycles:   50_000_000,
		Seed:          1,
		Parallelism:   2,
	}
	full, err := RunMultiprocessor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if full.Failures != 0 || len(full.Cells) != 2 {
		t.Fatalf("calibration run: %+v", full)
	}
	c0, c1 := full.Cells[0].Cycles, full.Cells[1].Cycles
	if c0 == c1 {
		t.Skip("both cells take the same time; cannot split them with a budget")
	}
	slow := 0
	if c1 > c0 {
		slow = 1
	}

	// A budget between the two execution times fails exactly the slow cell.
	if c0 > c1 {
		c0, c1 = c1, c0
	}
	cfg.LimitCycles = (c0 + c1) / 2
	r, err := RunMultiprocessor(cfg)
	if err != nil {
		t.Fatalf("grid aborted instead of degrading: %v", err)
	}
	if r.Failures != 1 {
		t.Fatalf("Failures = %d, want 1", r.Failures)
	}
	for i, c := range r.Cells {
		if i == slow {
			if !c.Failed || c.Completed {
				t.Errorf("slow cell %d: %+v", i, c)
			}
			if !strings.Contains(c.Failure, "exceeded the cycle limit") {
				t.Errorf("slow cell failure = %q", c.Failure)
			}
		} else if c.Failed || !c.Completed {
			t.Errorf("healthy cell %d was dragged down: %+v", i, c)
		}
	}

	// The failed cell renders as FAIL (scheme cell in Table 10, baseline in
	// the figure's per-app header) and never poisons the geomean.
	if r.Cells[slow].Scheme == core.Single {
		fig := FormatMPFigure(r, core.Interleaved, 8)
		if !strings.Contains(fig, "baseline FAILED") {
			t.Errorf("figure does not flag the failed baseline:\n%s", fig)
		}
	} else {
		table := FormatTable10(r)
		if !strings.Contains(table, "FAIL") {
			t.Errorf("Table 10 does not flag the failed cell:\n%s", table)
		}
	}
	if m := r.MeanSpeedup(core.Interleaved, 2); m != m || m < 0 {
		t.Errorf("MeanSpeedup = %v after a failure", m)
	}
}

// Arming every guard at once — watchdog, invariant checks, chaos — must
// not fail any healthy cell of the workstation grid.
func TestGridHealthyUnderGuards(t *testing.T) {
	cfg := QuickUniConfig()
	cfg.Workloads = []string{"R0"}
	cfg.ContextCounts = []int{2}
	cfg.Parallelism = 2
	cfg.Guard = guard.Options{WatchdogWindow: 10_000, CheckInvariants: true, ChaosSeed: 3}
	r, err := RunUniprocessor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Failures != 0 {
		for _, c := range r.Cells {
			if c.Failed {
				t.Errorf("cell %s/%v/%d failed under guards: %s", c.Workload, c.Scheme, c.Contexts, c.Failure)
			}
		}
	}
}
