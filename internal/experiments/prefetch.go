package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workstation"
)

// PrefetchCell is one (workload, variant) measurement of the
// prefetching-vs-multithreading comparison.
type PrefetchCell struct {
	Workload string
	Variant  string
	Gain     float64
	// Issued/Useful report the prefetcher's own accuracy.
	Issued, Useful int64
}

// PrefetchResult compares hardware prefetching against multiple contexts
// — the two transparent latency-tolerance techniques the paper's
// introduction juxtaposes ([17] vs multiple contexts). Variants:
// single-context with next-line and stride prefetchers, the four-context
// interleaved processor without prefetching, and the two combined.
type PrefetchResult struct {
	Workloads []string
	Cells     []PrefetchCell
}

// Cell returns the (workload, variant) measurement.
func (r *PrefetchResult) Cell(w, v string) (PrefetchCell, bool) {
	for _, c := range r.Cells {
		if c.Workload == w && c.Variant == v {
			return c, true
		}
	}
	return PrefetchCell{}, false
}

// RunPrefetchComparison runs the comparison on the given workloads (nil =
// DC and DT, the memory-bound pair).
func RunPrefetchComparison(cfg UniConfig) (*PrefetchResult, error) {
	return RunPrefetchComparisonCtx(context.Background(), cfg)
}

// RunPrefetchComparisonCtx is RunPrefetchComparison with cancellation.
func RunPrefetchComparisonCtx(ctx context.Context, cfg UniConfig) (*PrefetchResult, error) {
	workloads := cfg.Workloads
	if workloads == nil {
		workloads = []string{"DC", "DT"}
	}
	res := &PrefetchResult{Workloads: workloads}

	type variant struct {
		name     string
		scheme   core.Scheme
		contexts int
		mode     cache.PrefetchMode
	}
	variants := []variant{
		{"single + next-line prefetch", core.Single, 1, cache.PrefetchNextLine},
		{"single + stride prefetch", core.Single, 1, cache.PrefetchStride},
		{"interleaved 4 ctx", core.Interleaved, 4, cache.PrefetchOff},
		{"interleaved 4 ctx + stride", core.Interleaved, 4, cache.PrefetchStride},
	}

	// One baseline plus len(variants) cells per workload, fanned out and
	// collected by grid index so parallel runs match serial ones exactly.
	type spec struct {
		workload string
		kernels  []apps.Kernel
		variant  int // -1 = single-context, no-prefetch baseline
	}
	var specs []spec
	for _, w := range workloads {
		kernels, err := ResolveWorkload(w)
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec{w, kernels, -1})
		for vi := range variants {
			specs = append(specs, spec{w, kernels, vi})
		}
	}
	runs := make([]*workstation.Result, len(specs))
	err := runCells(ctx, cfg.Parallelism, len(specs), func(ctx context.Context, i int) error {
		sp := specs[i]
		scheme, contexts, mode := core.Single, 1, cache.PrefetchOff
		if sp.variant >= 0 {
			v := variants[sp.variant]
			scheme, contexts, mode = v.scheme, v.contexts, v.mode
		}
		wc := workstation.DefaultConfig(scheme, contexts)
		wc.OS.SliceCycles = cfg.SliceCycles
		wc.WarmupRotations = cfg.WarmupRotations
		wc.MeasureRotations = cfg.MeasureRotations
		wc.Seed = DeriveSeed(cfg.Seed, i)
		wc.Cache.Prefetch = mode
		r, err := workstation.RunCtx(ctx, sp.kernels, wc)
		if err != nil {
			return err
		}
		runs[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}

	var base *workstation.Result
	for i, sp := range specs {
		if sp.variant < 0 {
			base = runs[i]
			continue
		}
		res.Cells = append(res.Cells, PrefetchCell{
			Workload: sp.workload,
			Variant:  variants[sp.variant].name,
			Gain:     runs[i].Gain(base),
		})
	}
	return res, nil
}

// FormatPrefetchComparison renders the comparison table.
func FormatPrefetchComparison(r *PrefetchResult) string {
	var b strings.Builder
	b.WriteString("Prefetching vs. multiple contexts (fairness-normalized gain over single-context)\n\n")
	header := append([]string{"Variant"}, r.Workloads...)
	t := stats.NewTable(header...)
	var names []string
	seen := map[string]bool{}
	for _, c := range r.Cells {
		if !seen[c.Variant] {
			seen[c.Variant] = true
			names = append(names, c.Variant)
		}
	}
	for _, v := range names {
		row := []string{v}
		for _, w := range r.Workloads {
			if c, ok := r.Cell(w, v); ok {
				row = append(row, stats.Ratio(c.Gain))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	b.WriteString(t.String())
	b.WriteString(fmt.Sprintf("\nPrefetching needs regular reference streams; multiple contexts are the\n" +
		"paper's \"universal\" mechanism and combine with prefetching.\n"))
	return b.String()
}
