package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workstation"
)

// PrefetchCell is one (workload, variant) measurement of the
// prefetching-vs-multithreading comparison.
type PrefetchCell struct {
	Workload string
	Variant  string
	Gain     float64
	// Issued/Useful report the prefetcher's own accuracy.
	Issued, Useful int64
}

// PrefetchResult compares hardware prefetching against multiple contexts
// — the two transparent latency-tolerance techniques the paper's
// introduction juxtaposes ([17] vs multiple contexts). Variants:
// single-context with next-line and stride prefetchers, the four-context
// interleaved processor without prefetching, and the two combined.
type PrefetchResult struct {
	Workloads []string
	Cells     []PrefetchCell
}

// Cell returns the (workload, variant) measurement.
func (r *PrefetchResult) Cell(w, v string) (PrefetchCell, bool) {
	for _, c := range r.Cells {
		if c.Workload == w && c.Variant == v {
			return c, true
		}
	}
	return PrefetchCell{}, false
}

// RunPrefetchComparison runs the comparison on the given workloads (nil =
// DC and DT, the memory-bound pair).
func RunPrefetchComparison(cfg UniConfig) (*PrefetchResult, error) {
	workloads := cfg.Workloads
	if workloads == nil {
		workloads = []string{"DC", "DT"}
	}
	res := &PrefetchResult{Workloads: workloads}

	type variant struct {
		name     string
		scheme   core.Scheme
		contexts int
		mode     cache.PrefetchMode
	}
	variants := []variant{
		{"single + next-line prefetch", core.Single, 1, cache.PrefetchNextLine},
		{"single + stride prefetch", core.Single, 1, cache.PrefetchStride},
		{"interleaved 4 ctx", core.Interleaved, 4, cache.PrefetchOff},
		{"interleaved 4 ctx + stride", core.Interleaved, 4, cache.PrefetchStride},
	}

	for _, w := range workloads {
		kernels, err := ResolveWorkload(w)
		if err != nil {
			return nil, err
		}
		run := func(s core.Scheme, n int, mode cache.PrefetchMode) (*workstation.Result, *cache.Params, error) {
			wc := workstation.DefaultConfig(s, n)
			wc.OS.SliceCycles = cfg.SliceCycles
			wc.WarmupRotations = cfg.WarmupRotations
			wc.MeasureRotations = cfg.MeasureRotations
			wc.Seed = cfg.Seed
			wc.Cache.Prefetch = mode
			r, err := workstation.Run(kernels, wc)
			return r, &wc.Cache, err
		}
		base, _, err := run(core.Single, 1, cache.PrefetchOff)
		if err != nil {
			return nil, err
		}
		for _, v := range variants {
			r, _, err := run(v.scheme, v.contexts, v.mode)
			if err != nil {
				return nil, err
			}
			res.Cells = append(res.Cells, PrefetchCell{
				Workload: w,
				Variant:  v.name,
				Gain:     r.Gain(base),
			})
		}
	}
	return res, nil
}

// FormatPrefetchComparison renders the comparison table.
func FormatPrefetchComparison(r *PrefetchResult) string {
	var b strings.Builder
	b.WriteString("Prefetching vs. multiple contexts (fairness-normalized gain over single-context)\n\n")
	header := append([]string{"Variant"}, r.Workloads...)
	t := stats.NewTable(header...)
	var names []string
	seen := map[string]bool{}
	for _, c := range r.Cells {
		if !seen[c.Variant] {
			seen[c.Variant] = true
			names = append(names, c.Variant)
		}
	}
	for _, v := range names {
		row := []string{v}
		for _, w := range r.Workloads {
			if c, ok := r.Cell(w, v); ok {
				row = append(row, stats.Ratio(c.Gain))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	b.WriteString(t.String())
	b.WriteString(fmt.Sprintf("\nPrefetching needs regular reference streams; multiple contexts are the\n" +
		"paper's \"universal\" mechanism and combine with prefetching.\n"))
	return b.String()
}
