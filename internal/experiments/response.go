package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/apps"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/guard"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/prog"
	"repro/internal/stats"
	"repro/internal/workstation"
)

// The paper's §5.1 closing argument: "many workstations run with one large
// job in the background which is timesharing the processor with ... a
// number of smaller foreground jobs. The response time of the windowing
// system can be improved if it does not require other jobs to be swapped
// before it can run ... the interleaved scheme allows a workstation to be
// built that will appear significantly faster to the user."
//
// This experiment measures exactly that: an interactive foreground thread
// wakes periodically, performs a small burst of work, stamps a completion
// flag and sleeps again, while a memory-intensive batch job runs. On the
// single-context processor the foreground must wait for its OS time
// slice; on a multiple-context processor it is resident in a hardware
// context and responds immediately.

// ResponseConfig parameterizes the interactive-response experiment.
type ResponseConfig struct {
	// BurstInstructions is the size of each interactive burst.
	BurstInstructions int
	// ThinkCycles is the foreground's sleep between bursts.
	ThinkCycles int32
	// SliceCycles is the OS time slice used on the single-context
	// processor (the foreground gets scheduled once per rotation).
	SliceCycles int64
	// Bursts is how many responses to measure.
	Bursts int
	// Background names the batch kernel.
	Background string
	// Parallelism bounds how many designs run concurrently: 0 selects
	// DefaultParallelism (GOMAXPROCS), 1 forces the serial path.
	Parallelism int
}

// DefaultResponseConfig returns a foreground job that wakes every 6000
// cycles for a ~300-instruction burst against a tomcatv background.
func DefaultResponseConfig() ResponseConfig {
	return ResponseConfig{
		BurstInstructions: 300,
		ThinkCycles:       6000,
		SliceCycles:       6000,
		Bursts:            40,
		Background:        "tomcatv",
	}
}

// ResponseCell is one scheme's measured response-time distribution, in
// cycles from wake-up to burst completion.
type ResponseCell struct {
	Name   string
	Mean   float64
	Median int64
	P90    int64
}

// ResponseResult holds the experiment's cells.
type ResponseResult struct {
	Cfg   ResponseConfig
	Cells []ResponseCell
}

const responseFlagAddr = 0x7000_0000

// foregroundProgram builds the interactive thread: sleep, burst, stamp.
func foregroundProgram(cfg ResponseConfig) *prog.Program {
	b := prog.NewBuilder("interactive", 0x0070_0000, responseFlagAddr, 1<<16)
	flag := b.Alloc(64, 64)
	work := b.Alloc(512, 64)
	_ = flag // at responseFlagAddr by construction
	b.SetYield(prog.YieldBackoff)
	b.La(isa.R8, responseFlagAddr)
	b.La(isa.R9, work)
	b.Label("wake")
	// The burst: a dependent compute/memory mix, like event handling.
	for i := 0; i < cfg.BurstInstructions/4; i++ {
		b.Lw(isa.R10, isa.R9, int32(4*(i%64)))
		b.Addi(isa.R10, isa.R10, 1)
		b.Sw(isa.R10, isa.R9, int32(4*(i%64)))
		b.Xor(isa.R11, isa.R11, isa.R10)
	}
	b.Sw(isa.R11, isa.R8, 0) // completion stamp (watched)
	b.Yield(cfg.ThinkCycles) // think time
	b.J("wake")
	return b.MustBuild()
}

// RunResponse measures the foreground's response latency under three
// designs: single-context with OS timesharing, and blocked/interleaved
// processors with the foreground resident in its own context.
func RunResponse(cfg ResponseConfig) (*ResponseResult, error) {
	return RunResponseCtx(context.Background(), cfg)
}

// RunResponseCtx is RunResponse with cancellation: the designs run their
// simulations slice by slice, so cancellation is observed at slice
// granularity (cfg.SliceCycles).
func RunResponseCtx(ctx context.Context, cfg ResponseConfig) (*ResponseResult, error) {
	bg, err := apps.Lookup(cfg.Background)
	if err != nil {
		return nil, err
	}
	res := &ResponseResult{Cfg: cfg}

	type design struct {
		name     string
		scheme   core.Scheme
		contexts int
	}
	designs := []design{
		{"single (OS timeshares)", core.Single, 1},
		{"blocked, 2 contexts", core.Blocked, 2},
		{"interleaved, 2 contexts", core.Interleaved, 2},
	}
	// Each design is a self-contained simulation (own memory, hierarchy,
	// processor), so the three run concurrently; cells[i] keeps the
	// design order stable regardless of completion order.
	cells := make([]ResponseCell, len(designs))
	err = runCells(ctx, cfg.Parallelism, len(designs), func(ctx context.Context, i int) error {
		d := designs[i]
		fg := foregroundProgram(cfg)
		bgProg := bg.Build(apps.Options{
			CodeBase: 0x0100_0000,
			DataBase: 0x4000_0000,
			Yield:    workstation.YieldModeFor(d.scheme),
		})

		fm := mem.New()
		fg.LoadInit(fm)
		bgProg.LoadInit(fm)
		h, err := cache.NewHierarchy(cache.DefaultParams())
		if err != nil {
			return err
		}
		proc, err := core.NewProcessor(core.DefaultConfig(d.scheme, d.contexts), h, fm)
		if err != nil {
			return err
		}

		var stamps []int64
		proc.MemWatch = func(op isa.Op, addr, v uint32, ctx int, now int64) {
			if op == isa.SW && addr == responseFlagAddr {
				stamps = append(stamps, now)
			}
		}

		fgThread := core.NewThread("fg", fg)
		bgThread := core.NewThread("bg", bgProg)

		if d.contexts >= 2 {
			proc.BindThread(0, bgThread)
			proc.BindThread(1, fgThread)
			for len(stamps) < cfg.Bursts+2 {
				if cerr := ctx.Err(); cerr != nil {
					return guard.NewSimError(guard.OpCanceled, cerr).At(proc.Now())
				}
				proc.Run(cfg.SliceCycles)
				if proc.Now() > 1_000_000_000 {
					return fmt.Errorf("experiments: response run did not converge")
				}
			}
		} else {
			// OS timesharing: the foreground gets one slice, the batch
			// job two (its affinity share of a busy machine).
			turn := 0
			for len(stamps) < cfg.Bursts+2 {
				if cerr := ctx.Err(); cerr != nil {
					return guard.NewSimError(guard.OpCanceled, cerr).At(proc.Now())
				}
				if turn%3 == 0 {
					proc.BindThread(0, fgThread)
				} else {
					proc.BindThread(0, bgThread)
				}
				proc.Run(cfg.SliceCycles)
				turn++
				if proc.Now() > 1_000_000_000 {
					return fmt.Errorf("experiments: response run did not converge")
				}
			}
		}

		// Response latency = inter-stamp period minus the think time
		// (the burst starts when the backoff expires).
		var lat []int64
		for i := 1; i < len(stamps); i++ {
			l := stamps[i] - stamps[i-1] - int64(cfg.ThinkCycles)
			if l < 0 {
				l = 0
			}
			lat = append(lat, l)
		}
		if len(lat) == 0 {
			return fmt.Errorf("experiments: no responses measured for %s", d.name)
		}
		sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
		var sum int64
		for _, l := range lat {
			sum += l
		}
		cells[i] = ResponseCell{
			Name:   d.name,
			Mean:   float64(sum) / float64(len(lat)),
			Median: lat[len(lat)/2],
			P90:    lat[len(lat)*9/10],
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Cells = cells
	return res, nil
}

// FormatResponse renders the response-time table.
func FormatResponse(r *ResponseResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Interactive response (§5.1): %d-instruction bursts every %d cycles\n",
		r.Cfg.BurstInstructions, r.Cfg.ThinkCycles)
	fmt.Fprintf(&b, "against a %s background job; latency from wake-up to completion\n\n", r.Cfg.Background)
	t := stats.NewTable("design", "mean (cycles)", "median", "p90")
	for _, c := range r.Cells {
		t.AddRow(c.Name, fmt.Sprintf("%.0f", c.Mean), fmt.Sprint(c.Median), fmt.Sprint(c.P90))
	}
	b.WriteString(t.String())
	return b.String()
}
