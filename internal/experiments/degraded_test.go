package experiments

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
)

// The full degraded-cell reporting path: a grid with exactly one failed
// cell must render FAIL in Table 10, exclude the cell from every
// geometric mean (the GeoMean skip fix — a zero speedup must not crush
// the mean), report the exclusion in the table footer, and still produce
// valid JSON with the cell's Diagnostic attached.
func TestDegradedCellReporting(t *testing.T) {
	cfg := MPConfig{
		Processors:    2,
		Schemes:       []core.Scheme{core.Interleaved},
		ContextCounts: []int{2},
		Apps:          []string{"mp3d"},
		Steps:         1,
		LimitCycles:   50_000_000,
		Seed:          1,
		Parallelism:   2,
	}
	full, err := RunMultiprocessor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if full.Failures != 0 || len(full.Cells) != 2 {
		t.Fatalf("calibration run: %+v", full)
	}
	c0, c1 := full.Cells[0].Cycles, full.Cells[1].Cycles
	if c0 == c1 {
		t.Skip("both cells take the same time; cannot split them with a budget")
	}
	// A budget between the two execution times fails exactly the slow cell.
	lo, hi := c0, c1
	if lo > hi {
		lo, hi = hi, lo
	}
	cfg.LimitCycles = (lo + hi) / 2
	r, err := RunMultiprocessor(cfg)
	if err != nil {
		t.Fatalf("grid aborted instead of degrading: %v", err)
	}
	if r.Failures != 1 {
		t.Fatalf("Failures = %d, want 1", r.Failures)
	}

	var failed *MPCell
	for i := range r.Cells {
		if r.Cells[i].Failed {
			failed = &r.Cells[i]
		}
	}
	if failed == nil {
		t.Fatal("no failed cell recorded despite Failures=1")
	}

	// The failed cell carries the structured limit-time machine dump.
	if failed.Diagnostic == "" {
		t.Error("failed cell has no Diagnostic attached")
	} else if !strings.Contains(failed.Diagnostic, "cycle budget") {
		t.Errorf("Diagnostic does not explain the budget failure:\n%s", failed.Diagnostic)
	}

	// Excluded from every geomean: whichever cell failed, the measured
	// (scheme, contexts) mean must cover fewer cells than the grid holds,
	// and the mean itself must stay positive (not crushed toward zero by
	// a 0.0 speedup).
	mean, used, total := r.MeanSpeedupN(core.Interleaved, 2)
	if used >= total {
		t.Errorf("MeanSpeedupN used=%d total=%d: failed cell entered the mean", used, total)
	}
	if mean <= 0 || mean != mean {
		t.Errorf("mean speedup %v after a failure", mean)
	}

	// Rendered FAIL, and the footer reports the exclusion.
	table := FormatTable10(r)
	if failed.Scheme != core.Single && !strings.Contains(table, "FAIL") {
		t.Errorf("Table 10 does not flag the failed cell:\n%s", table)
	}
	if !strings.Contains(table, "of 1 cells") {
		t.Errorf("Table 10 footer does not report coverage:\n%s", table)
	}

	// The result — Diagnostic and all — survives a JSON round trip.
	blob, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("degraded grid does not marshal: %v", err)
	}
	var back MPResult
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("degraded grid JSON does not parse: %v", err)
	}
	found := false
	for _, c := range back.Cells {
		if c.Failed {
			found = true
			if c.Failure == "" || c.Diagnostic != failed.Diagnostic {
				t.Errorf("JSON round trip lost failure detail: %+v", c)
			}
		}
	}
	if !found {
		t.Error("JSON round trip lost the failed cell")
	}
}
