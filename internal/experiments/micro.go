package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/memsys"
	"repro/internal/metrics"
	"repro/internal/prog"
	"repro/internal/stats"
)

// demoMem is the deterministic memory used by the micro experiments
// (Figures 2-3, Table 4): instruction fetches always hit; a data line
// misses once with a fixed latency and hits afterwards.
type demoMem struct {
	lat     int64
	pending map[uint32]int64
}

func newDemoMem(lat int64) *demoMem {
	return &demoMem{lat: lat, pending: make(map[uint32]int64)}
}

func (f *demoMem) preload(addr uint32) { f.pending[addr>>5] = -1 }

func (f *demoMem) FetchInst(addr uint32, now int64) (int64, bool) { return now, false }

func (f *demoMem) AccessData(addr uint32, write bool, pc uint32, now int64) memsys.DataResult {
	line := addr >> 5
	if fill, ok := f.pending[line]; ok {
		if now >= fill {
			return memsys.DataResult{Hit: true, ReadyAt: now + 3, Class: memsys.HitL1}
		}
		return memsys.DataResult{FillAt: fill, Class: memsys.Memory}
	}
	f.pending[line] = now + f.lat
	return memsys.DataResult{FillAt: now + f.lat, Class: memsys.Memory}
}

// Figure3Threads builds the paper's four example threads: A is two
// instructions, B is three with a two-cycle dependency between the first
// two, C is four and D is six; each ends with a load that misses.
func Figure3Threads(dm *demoMem) []*prog.Program {
	hitAddr := uint32(0x200000)
	dm.preload(hitAddr)
	build := func(name string, f func(b *prog.Builder)) *prog.Program {
		b := prog.NewBuilder(name, 0x1000, 0x100000, 1<<20)
		f(b)
		b.Halt()
		return b.MustBuild()
	}
	a := build("A", func(b *prog.Builder) {
		b.Add(isa.R2, isa.R3, isa.R4)
		b.Lw(isa.R5, isa.R1, 0)
	})
	bb := build("B", func(b *prog.Builder) {
		b.La(isa.R6, hitAddr)
		b.Lw(isa.R2, isa.R6, 0)
		b.Add(isa.R3, isa.R2, isa.R2)
		b.Lw(isa.R5, isa.R1, 64)
	})
	c := build("C", func(b *prog.Builder) {
		for i := 0; i < 3; i++ {
			b.Add(isa.R2, isa.R3, isa.R4)
		}
		b.Lw(isa.R5, isa.R1, 128)
	})
	d := build("D", func(b *prog.Builder) {
		for i := 0; i < 5; i++ {
			b.Add(isa.R2, isa.R3, isa.R4)
		}
		b.Lw(isa.R5, isa.R1, 192)
	})
	return []*prog.Program{a, bb, c, d}
}

// TimelineResult is a recorded micro-experiment run. Trace is the
// structured event record (charge spans and issue events from the
// observability layer) the timeline is rendered from.
type TimelineResult struct {
	Scheme core.Scheme
	Cycles int64
	Trace  *metrics.CellMetrics
	Stats  core.Stats
}

// Figure2 runs the miss-cost microbenchmark (one context takes a miss
// while three others run independent work) under both schemes, recording
// the timelines whose switch overhead is 7 vs 2 cycles in the paper's
// Figure 2.
func Figure2() (blocked, interleaved *TimelineResult, err error) {
	run := func(s core.Scheme) (*TimelineResult, error) {
		dm := newDemoMem(40)
		fm := mem.New()
		p, err := core.NewProcessor(core.DefaultConfig(s, 4), dm, fm)
		if err != nil {
			return nil, err
		}
		res := &TimelineResult{Scheme: s}
		col := metrics.NewCollector(metrics.Options{Events: true}, 1)
		p.AttachMetrics(col.Proc(0))
		mk := func(name string, f func(b *prog.Builder)) *core.Thread {
			b := prog.NewBuilder(name, 0x1000, 0x100000, 1<<20)
			f(b)
			b.Halt()
			return core.NewThread(name, b.MustBuild())
		}
		p.BindThread(0, mk("A", func(b *prog.Builder) {
			b.Lw(isa.R2, isa.R1, 0)
			for i := 0; i < 20; i++ {
				b.Add(isa.R3, isa.R4, isa.R5)
			}
		}))
		for i := 1; i < 4; i++ {
			p.BindThread(i, mk(string(rune('A'+i)), func(b *prog.Builder) {
				for j := 0; j < 60; j++ {
					b.Add(isa.R3, isa.R4, isa.R5)
				}
			}))
		}
		cycles, done := p.RunUntilHalted(10_000)
		if !done {
			return nil, fmt.Errorf("experiments: figure 2 run did not complete")
		}
		res.Cycles = cycles
		res.Stats = p.Stats
		res.Trace = col.Result()
		return res, nil
	}
	if blocked, err = run(core.Blocked); err != nil {
		return nil, nil, err
	}
	if interleaved, err = run(core.Interleaved); err != nil {
		return nil, nil, err
	}
	return blocked, interleaved, nil
}

// Figure3 runs the four example threads under both schemes.
func Figure3() (blocked, interleaved *TimelineResult, err error) {
	run := func(s core.Scheme) (*TimelineResult, error) {
		dm := newDemoMem(20)
		progs := Figure3Threads(dm)
		fm := mem.New()
		p, err := core.NewProcessor(core.DefaultConfig(s, 4), dm, fm)
		if err != nil {
			return nil, err
		}
		res := &TimelineResult{Scheme: s}
		col := metrics.NewCollector(metrics.Options{Events: true}, 1)
		p.AttachMetrics(col.Proc(0))
		for i, pr := range progs {
			p.BindThread(i, core.NewThread(pr.Name, pr))
		}
		cycles, done := p.RunUntilHalted(10_000)
		if !done {
			return nil, fmt.Errorf("experiments: figure 3 run did not complete")
		}
		res.Cycles = cycles
		res.Stats = p.Stats
		res.Trace = col.Result()
		return res, nil
	}
	if blocked, err = run(core.Blocked); err != nil {
		return nil, nil, err
	}
	if interleaved, err = run(core.Interleaved); err != nil {
		return nil, nil, err
	}
	return blocked, interleaved, nil
}

// timelineChar maps a charged slot class (by its metrics name) to the
// timeline marker: * switch overhead, m memory wait, I icache, _ idle,
// . any pipeline stall.
func timelineChar(class string) byte {
	switch class {
	case "switch":
		return '*'
	case "dmem":
		return 'm'
	case "icache":
		return 'I'
	case "idle":
		return '_'
	default:
		return '.'
	}
}

// FormatTimeline renders a Figure 2/3-style issue-slot timeline: one
// letter per cycle naming the issuing context (A-D), or a marker for
// non-issue slots (. stall, * switch overhead, m memory wait, I icache).
// The timeline is reconstructed from the event trace — issue events mark
// single cycles, charge spans paint stall regions — and assumes a
// single-issue pipeline (one slot per cycle), which the micro experiments
// use.
func FormatTimeline(r *TimelineResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s scheme (%d cycles):\n  ", r.Scheme, r.Cycles)
	buf := make([]byte, r.Cycles)
	for i := range buf {
		buf[i] = '.'
	}
	if r.Trace != nil {
		for _, ev := range r.Trace.Events {
			switch ev.Kind {
			case metrics.KindIssue:
				if ev.Cycle < int64(len(buf)) {
					buf[ev.Cycle] = byte('A' + ev.Ctx)
				}
			case metrics.KindCharge:
				ch := timelineChar(ev.Class)
				for c := ev.Cycle; c < ev.Cycle+ev.Span && c < int64(len(buf)); c++ {
					buf[c] = ch
				}
			}
		}
	}
	for i, ch := range buf {
		if i > 0 && i%80 == 0 {
			b.WriteString("\n  ")
		}
		b.WriteByte(ch)
	}
	b.WriteByte('\n')
	return b.String()
}

// Table4Result reports the measured context-switch costs.
type Table4Result struct {
	BlockedMiss     int64 // cycles of switch overhead per data miss
	InterleavedMiss int64 // with four active contexts
	ExplicitSwitch  int64
	Backoff         int64
}

// Table4 measures the switch costs of Table 4 with microbenchmarks: a
// single miss (or explicit yield) surrounded by enough independent work on
// the other contexts.
func Table4() (*Table4Result, error) {
	missCost := func(s core.Scheme) (int64, error) {
		dm := newDemoMem(40)
		fm := mem.New()
		p, err := core.NewProcessor(core.DefaultConfig(s, 4), dm, fm)
		if err != nil {
			return 0, err
		}
		mk := func(name string, f func(b *prog.Builder)) *core.Thread {
			b := prog.NewBuilder(name, 0x1000, 0x100000, 1<<20)
			f(b)
			b.Halt()
			return core.NewThread(name, b.MustBuild())
		}
		p.BindThread(0, mk("misser", func(b *prog.Builder) {
			b.Lw(isa.R2, isa.R1, 0)
			for i := 0; i < 50; i++ {
				b.Add(isa.R3, isa.R4, isa.R5)
			}
		}))
		for i := 1; i < 4; i++ {
			p.BindThread(i, mk("adder", func(b *prog.Builder) {
				for j := 0; j < 200; j++ {
					b.Add(isa.R3, isa.R4, isa.R5)
				}
			}))
		}
		if _, done := p.RunUntilHalted(10_000); !done {
			return 0, fmt.Errorf("experiments: table 4 miss run did not complete")
		}
		return p.Stats.Slots[core.SlotSwitch], nil
	}

	yieldCost := func(s core.Scheme, y prog.YieldMode) (int64, error) {
		fm := mem.New()
		p, err := core.NewProcessor(core.DefaultConfig(s, 2), newDemoMem(1_000_000), fm)
		if err != nil {
			return 0, err
		}
		b := prog.NewBuilder("yielder", 0x1000, 0x100000, 1<<20)
		b.SetYield(y)
		b.Add(isa.R2, isa.R3, isa.R4)
		b.Yield(10)
		b.Add(isa.R2, isa.R3, isa.R4)
		b.Halt()
		p.BindThread(0, core.NewThread("yielder", b.MustBuild()))
		fb := prog.NewBuilder("filler", 0x2000, 0x200000, 1<<20)
		for j := 0; j < 100; j++ {
			fb.Add(isa.R3, isa.R4, isa.R5)
		}
		fb.Halt()
		p.BindThread(1, core.NewThread("filler", fb.MustBuild()))
		if _, done := p.RunUntilHalted(10_000); !done {
			return 0, fmt.Errorf("experiments: table 4 yield run did not complete")
		}
		return p.Stats.Slots[core.SlotSwitch], nil
	}

	var (
		res Table4Result
		err error
	)
	if res.BlockedMiss, err = missCost(core.Blocked); err != nil {
		return nil, err
	}
	if res.InterleavedMiss, err = missCost(core.Interleaved); err != nil {
		return nil, err
	}
	if res.ExplicitSwitch, err = yieldCost(core.Blocked, prog.YieldSwitch); err != nil {
		return nil, err
	}
	if res.Backoff, err = yieldCost(core.Interleaved, prog.YieldBackoff); err != nil {
		return nil, err
	}
	return &res, nil
}

// FormatTable4 renders the measured switch costs alongside the paper's.
func FormatTable4(r *Table4Result) string {
	t := stats.NewTable("Switch cause", "Blocked", "Interleaved", "Paper")
	t.AddRow("Cache miss", fmt.Sprint(r.BlockedMiss), fmt.Sprint(r.InterleavedMiss), "7 / ~ceil(7/N)")
	t.AddRow("Explicit switch", fmt.Sprint(r.ExplicitSwitch), "-", "3")
	t.AddRow("Backoff", "-", fmt.Sprint(r.Backoff), "1")
	return "Table 4: Context switch costs (measured slots of switch overhead)\n\n" + t.String()
}
