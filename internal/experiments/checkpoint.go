package experiments

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/apps"
	"repro/internal/metrics"
	"repro/internal/snapshot"
	"repro/internal/workstation"
)

// This file is the sweep planner's checkpoint side: sensitivity sweeps
// whose swept parameter is a measurement-time override (Config.Measure)
// share one warm-up prefix across all their cells. The planner groups
// cells by a prefix fingerprint (the configuration with the overrides
// removed), simulates each multi-cell group's warm-up once, and forks
// every cell of the group from the cached checkpoint. Sweeps whose
// parameter shapes the warm-up itself (context count, issue width,
// remote latency) cannot share a prefix and keep running from scratch.
//
// Forking is an optimization, never a semantic: a forked cell is
// byte-identical to its from-scratch run (pinned by
// TestSweepForkedMatchesScratch), and any unusable checkpoint — corrupt
// file, stale codec version, foreign fingerprint — falls back to the
// scratch path instead of failing the sweep.

// CheckpointOptions configures warm-up sharing for sweeps.
type CheckpointOptions struct {
	// Disabled turns prefix forking off; every cell then simulates its
	// own warm-up. The default (zero value) shares warm-ups.
	Disabled bool
	// Dir, when non-empty, persists prefix checkpoints as
	// <Dir>/<fingerprint>.ckpt and reuses them across runs. Empty keeps
	// checkpoints in memory for the duration of one sweep.
	Dir string
}

// prefixKey fingerprints the part of a cell's configuration that shapes
// its warm-up: the full workstation config with the measurement-time
// overrides and observability options zeroed, plus the workload and the
// snapshot codec version. Cells with equal keys have byte-identical
// warm-up prefixes; a codec bump changes every key, so stale on-disk
// checkpoints are never even opened under their old names.
func prefixKey(workload string, w workstation.Config) string {
	w.Measure = workstation.MeasureOverrides{}
	w.Obs = metrics.Options{}
	w.Cache.Chaos = nil // run-time state, derived from Guard when nil
	data, err := json.Marshal(struct {
		Codec    int
		Workload string
		Config   workstation.Config
	}{snapshot.Version, workload, w})
	if err != nil {
		return "" // unkeyable config: disables sharing for this cell
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:12])
}

// prefixCache caches encoded prefix checkpoints, in memory and — when a
// directory is configured — on disk.
type prefixCache struct {
	mu  sync.Mutex
	dir string
	mem map[string][]byte
}

func newPrefixCache(dir string) *prefixCache {
	return &prefixCache{dir: dir, mem: map[string][]byte{}}
}

func (pc *prefixCache) path(key string) string {
	return filepath.Join(pc.dir, key+".ckpt")
}

// get returns the cached checkpoint for key, consulting disk on a memory
// miss. Unreadable files report as misses; a readable-but-corrupt file
// is returned as-is and rejected later by ResumeCtx's typed errors.
func (pc *prefixCache) get(key string) []byte {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if b, ok := pc.mem[key]; ok {
		return b
	}
	if pc.dir == "" {
		return nil
	}
	b, err := snapshot.LoadFile(pc.path(key))
	if err != nil {
		return nil
	}
	pc.mem[key] = b
	return b
}

// put stores a checkpoint, writing through to disk best-effort (a failed
// write leaves the in-memory copy serving this run).
func (pc *prefixCache) put(key string, data []byte) {
	pc.mu.Lock()
	pc.mem[key] = data
	pc.mu.Unlock()
	if pc.dir != "" {
		_ = snapshot.SaveFile(pc.path(key), data)
	}
}

// drop forgets a key whose cached bytes proved unusable, so a later run
// can re-checkpoint instead of tripping over the same bad file.
func (pc *prefixCache) drop(key string) {
	pc.mu.Lock()
	delete(pc.mem, key)
	pc.mu.Unlock()
}

// checkpointUnusable reports whether err is one of the typed rejections
// a decoder raises for a checkpoint that cannot be used — corrupt bytes,
// a different codec version, or a foreign fingerprint/shape. These fall
// back to from-scratch simulation; anything else is a real failure.
func checkpointUnusable(err error) bool {
	return errors.Is(err, snapshot.ErrCorrupt) ||
		errors.Is(err, snapshot.ErrVersion) ||
		errors.Is(err, snapshot.ErrMismatch)
}

// sweepThroughputsShared is sweepThroughputs with warm-up sharing: cells
// whose prefix keys collide are forked from one shared warm-up
// checkpoint instead of each simulating its own. Cells that cannot fork
// — observability enabled, singleton groups, unkeyable configs — and
// cells whose checkpoint is rejected with a typed error run from
// scratch. Results are byte-identical to sweepThroughputs either way.
func sweepThroughputsShared(ctx context.Context, cfg UniConfig, workload string, kernels []apps.Kernel, configs []workstation.Config) ([]float64, error) {
	if cfg.Checkpoint.Disabled {
		return sweepThroughputs(ctx, cfg.Parallelism, kernels, configs)
	}

	keys := make([]string, len(configs))
	groups := map[string][]int{}
	for i, w := range configs {
		if w.Obs.Enabled() {
			continue // instrumented cells are not checkpointable
		}
		if k := prefixKey(workload, w); k != "" {
			keys[i] = k
			groups[k] = append(groups[k], i)
		}
	}
	var shared []string
	for k, idxs := range groups {
		if len(idxs) > 1 {
			shared = append(shared, k)
		}
	}
	sort.Strings(shared)

	// Stage 1: one warm-up simulation per multi-cell group (or a cache
	// hit from a previous sweep/run). ckpts is written only here and
	// read-only in stage 2.
	cache := newPrefixCache(cfg.Checkpoint.Dir)
	ckpts := make(map[string][]byte, len(shared))
	var mu sync.Mutex
	err := runCells(ctx, cfg.Parallelism, len(shared), func(ctx context.Context, i int) error {
		k := shared[i]
		data := cache.get(k)
		if data == nil {
			prefix := configs[groups[k][0]]
			prefix.Measure = workstation.MeasureOverrides{}
			var err error
			data, err = workstation.CheckpointWarmupCtx(ctx, kernels, prefix, k)
			if err != nil {
				if errors.Is(err, workstation.ErrNotCheckpointable) {
					return nil // the group's cells fall back to scratch
				}
				return err
			}
			cache.put(k, data)
		}
		mu.Lock()
		ckpts[k] = data
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Stage 2: every cell, forked from its group's checkpoint when one
	// exists, from scratch otherwise.
	thr := make([]float64, len(configs))
	err = runCells(ctx, cfg.Parallelism, len(configs), func(ctx context.Context, i int) error {
		if data := ckpts[keys[i]]; data != nil {
			r, err := workstation.ResumeCtx(ctx, kernels, configs[i], data, keys[i])
			if err == nil {
				thr[i] = r.FairThroughput
				return nil
			}
			if !checkpointUnusable(err) {
				return err
			}
			cache.drop(keys[i]) // bad bytes: scratch this cell instead
		}
		r, err := workstation.RunCtx(ctx, kernels, configs[i])
		if err != nil {
			return err
		}
		thr[i] = r.FairThroughput
		return nil
	})
	if err != nil {
		return nil, err
	}
	return thr, nil
}
