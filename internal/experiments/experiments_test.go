package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestResolveWorkloads(t *testing.T) {
	for _, w := range WorkloadOrder {
		ks, err := ResolveWorkload(w)
		if err != nil {
			t.Fatal(err)
		}
		if len(ks) != 4 {
			t.Errorf("%s has %d kernels, want 4 (Table 5)", w, len(ks))
		}
	}
	if _, err := ResolveWorkload("XX"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestTable4Costs(t *testing.T) {
	r, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	if r.BlockedMiss != 7 {
		t.Errorf("blocked miss cost = %d, want 7", r.BlockedMiss)
	}
	if r.InterleavedMiss != 2 {
		t.Errorf("interleaved miss cost = %d, want 2", r.InterleavedMiss)
	}
	if r.ExplicitSwitch != 3 {
		t.Errorf("explicit switch cost = %d, want 3", r.ExplicitSwitch)
	}
	if r.Backoff != 1 {
		t.Errorf("backoff cost = %d, want 1", r.Backoff)
	}
	out := FormatTable4(r)
	if !strings.Contains(out, "Cache miss") {
		t.Error("Table 4 formatting broken")
	}
}

func TestFigure2And3(t *testing.T) {
	b2, i2, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if b2.Stats.Slots[core.SlotSwitch] != 7 || i2.Stats.Slots[core.SlotSwitch] != 2 {
		t.Errorf("figure 2 switch costs = %d/%d, want 7/2",
			b2.Stats.Slots[core.SlotSwitch], i2.Stats.Slots[core.SlotSwitch])
	}

	b3, i3, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if i3.Cycles >= b3.Cycles {
		t.Errorf("figure 3: interleaved %d cycles must beat blocked %d", i3.Cycles, b3.Cycles)
	}
	tl := FormatTimeline(i3)
	if !strings.Contains(tl, "interleaved") || len(tl) == 0 {
		t.Error("timeline formatting broken")
	}
}

// The headline result: on a quick configuration, the Table 7 shape must
// hold — interleaved means beat blocked means at both context counts, and
// the blocked scheme stays close to flat.
func TestTable7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := QuickUniConfig()
	r, err := RunUniprocessor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 4} {
		im := r.MeanGain(core.Interleaved, n)
		bm := r.MeanGain(core.Blocked, n)
		t.Logf("%d contexts: interleaved mean %.3f, blocked mean %.3f", n, im, bm)
		if im <= bm {
			t.Errorf("%d contexts: interleaved mean %.3f must beat blocked %.3f", n, im, bm)
		}
	}
	i4 := r.MeanGain(core.Interleaved, 4)
	if i4 < 1.15 {
		t.Errorf("interleaved 4-context mean gain = %.3f, want >= 1.15 (paper: 1.50)", i4)
	}
	out := FormatTable7(r)
	if !strings.Contains(out, "interleaved") {
		t.Error("Table 7 formatting broken")
	}
	f6 := FormatFigure(r, core.Blocked, 6)
	f7 := FormatFigure(r, core.Interleaved, 7)
	if !strings.Contains(f6, "Figure 6") || !strings.Contains(f7, "Figure 7") {
		t.Error("figure formatting broken")
	}
}

// Table 10 shape on a small configuration: interleaved beats blocked on
// the mean; cholesky gains essentially nothing.
func TestTable10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := QuickMPConfig()
	r, err := RunMultiprocessor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range cfg.ContextCounts {
		im := r.MeanSpeedup(core.Interleaved, n)
		bm := r.MeanSpeedup(core.Blocked, n)
		t.Logf("%d contexts: interleaved mean %.3f, blocked mean %.3f", n, im, bm)
		if im <= bm {
			t.Errorf("%d contexts: interleaved mean %.3f must beat blocked %.3f", n, im, bm)
		}
	}
	if c, ok := r.Cell("cholesky", core.Interleaved, 4); ok && c.Speedup > 1.3 {
		t.Errorf("cholesky speedup = %.2f, want ~1.0", c.Speedup)
	}
	out := FormatTable10(r)
	if !strings.Contains(out, "mp3d") {
		t.Error("Table 10 formatting broken")
	}
	f8 := FormatMPFigure(r, core.Blocked, 8)
	f9 := FormatMPFigure(r, core.Interleaved, 9)
	if !strings.Contains(f8, "Figure 8") || !strings.Contains(f9, "Figure 9") {
		t.Error("MP figure formatting broken")
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := QuickUniConfig()
	cfg.Workloads = []string{"DC"}
	r, err := RunAblations(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("ablation rows = %d, want 6", len(r.Rows))
	}
	get := func(name string) float64 {
		for _, row := range r.Rows {
			if row.Name == name {
				return row.Mean
			}
		}
		t.Fatalf("missing row %q", name)
		return 0
	}
	inter := get("interleaved")
	blocked := get("blocked")
	bfast := get("blocked-fast (1-cycle switch)")
	if inter <= blocked {
		t.Errorf("interleaved %.3f must beat blocked %.3f", inter, blocked)
	}
	if bfast <= blocked {
		t.Errorf("blocked-fast %.3f should beat blocked %.3f (cheaper switches)", bfast, blocked)
	}
	out := FormatAblations(r)
	if !strings.Contains(out, "fine-grained") {
		t.Error("ablation formatting broken")
	}
}

// TestSeedRobustness: the headline shape (interleaved mean beats blocked
// mean) must hold across seeds, not just the default.
func TestSeedRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for seed := int64(1); seed <= 3; seed++ {
		cfg := QuickUniConfig()
		cfg.Seed = seed
		cfg.Workloads = []string{"DC", "FP"}
		r, err := RunUniprocessor(cfg)
		if err != nil {
			t.Fatal(err)
		}
		im := r.MeanGain(core.Interleaved, 4)
		bm := r.MeanGain(core.Blocked, 4)
		if im <= bm {
			t.Errorf("seed %d: interleaved %.3f <= blocked %.3f", seed, im, bm)
		}
	}
}
