package experiments

import (
	"fmt"
	"testing"
)

func TestFullRun(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	r, err := RunUniprocessor(DefaultUniConfig())
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println(FormatTable7(r))
	m, err := RunMultiprocessor(DefaultMPConfig())
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println(FormatTable10(m))
}
