package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/guard"
)

func TestPoolOrderedResults(t *testing.T) {
	const n = 100
	for _, j := range []int{1, 2, 8, 0} {
		got := make([]int, n)
		err := NewPool(j).Run(context.Background(), n, func(_ context.Context, i int) error {
			got[i] = i * i
			return nil
		})
		if err != nil {
			t.Fatalf("j=%d: %v", j, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("j=%d: slot %d = %d, want %d", j, i, v, i*i)
			}
		}
	}
}

func TestPoolErrorCancelsAndDrains(t *testing.T) {
	boom := errors.New("boom")
	var started atomic.Int64
	err := NewPool(4).Run(context.Background(), 64, func(ctx context.Context, i int) error {
		started.Add(1)
		if i == 3 {
			return fmt.Errorf("cell %d: %w", i, boom)
		}
		// Cells after the failure should see a canceled context once the
		// error lands; just run briefly.
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if got := started.Load(); got == 64 {
		t.Log("all cells started before cancellation (slow machine); cancellation still propagated")
	}
}

func TestPoolSerialReturnsFirstError(t *testing.T) {
	err := NewPool(1).Run(context.Background(), 10, func(_ context.Context, i int) error {
		return fmt.Errorf("cell %d failed", i)
	})
	if err == nil || err.Error() != "cell 0 failed" {
		t.Fatalf("serial pool returned %v, want the first cell's error", err)
	}
}

// The ISSUE's pool property test: injected panics and errors are recovered
// and surfaced as errors, the remaining workers drain, and no goroutines
// leak.
func TestPoolPanicRecoveryAndNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	for trial := 0; trial < 5; trial++ {
		err := NewPool(8).Run(context.Background(), 40, func(_ context.Context, i int) error {
			switch {
			case i%13 == 5:
				panic(fmt.Sprintf("injected panic in cell %d", i))
			case i%17 == 7:
				return fmt.Errorf("injected error in cell %d", i)
			}
			return nil
		})
		if err == nil {
			t.Fatal("injected failures produced no error")
		}
		if !strings.Contains(err.Error(), "panicked") && !strings.Contains(err.Error(), "injected error") {
			t.Fatalf("unexpected error: %v", err)
		}
	}

	// Workers exit once Run returns; give the scheduler a moment before
	// declaring a leak.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: before %d, after %d — pool leaked workers",
				before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// Satellite regression: an external cancel (the SIGINT drain path) must
// return promptly, skip queued cells, and leak no worker goroutines.
func TestPoolExternalCancelDrainsWithoutLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started atomic.Int64
	errCh := make(chan error, 1)
	go func() {
		errCh <- NewPool(4).Run(ctx, 64, func(ctx context.Context, i int) error {
			started.Add(1)
			<-ctx.Done() // a long simulation that only ends when drained
			return guard.NewSimError(guard.OpCanceled, ctx.Err())
		})
	}()
	// Wait until all four workers are inside a cell, then drain.
	deadline := time.Now().Add(5 * time.Second)
	for started.Load() < 4 {
		if time.Now().After(deadline) {
			t.Fatal("workers never entered their cells")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	var err error
	select {
	case err = <-errCh:
	case <-time.After(5 * time.Second):
		t.Fatal("pool did not drain after cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("drained pool returned %v, want context.Canceled", err)
	}
	if got := started.Load(); got >= 64 {
		t.Errorf("%d cells started — queued cells were not skipped on drain", got)
	}

	// No worker goroutines survive the drain.
	leakDeadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(leakDeadline) {
			t.Fatalf("goroutines: before %d, after %d — cancel path leaked workers",
				before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// A canceled low-index cell surfaces a cancellation artifact; it must not
// mask the genuine failure that triggered the cancellation, even when
// that failure has a higher index.
func TestPoolCancelArtifactDoesNotMaskRealFailure(t *testing.T) {
	boom := errors.New("boom")
	err := NewPool(4).Run(context.Background(), 4, func(ctx context.Context, i int) error {
		if i == 3 {
			time.Sleep(10 * time.Millisecond)
			return boom
		}
		<-ctx.Done() // cells 0-2 drain as cancellation artifacts
		return guard.NewSimError(guard.OpCanceled, ctx.Err())
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the real failure (boom), not a cancellation artifact", err)
	}
}

func TestPoolHonorsCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := NewPool(4).Run(ctx, 16, func(_ context.Context, i int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d cells ran under a pre-canceled context", ran.Load())
	}
}

func TestDeriveSeed(t *testing.T) {
	// Deterministic: same (base, cell) always maps to the same seed.
	if DeriveSeed(1, 0) != DeriveSeed(1, 0) {
		t.Fatal("DeriveSeed is not deterministic")
	}
	// Decorrelated: nearby cells and nearby bases must not collide.
	seen := map[int64]string{}
	for base := int64(0); base < 8; base++ {
		for cell := 0; cell < 64; cell++ {
			s := DeriveSeed(base, cell)
			key := fmt.Sprintf("base=%d cell=%d", base, cell)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %s and %s both map to %d", prev, key, s)
			}
			seen[s] = key
			if s == 0 {
				t.Fatalf("%s derived the zero seed", key)
			}
		}
	}
}

func TestQuickConfigsHaveExplicitSeeds(t *testing.T) {
	if s := QuickUniConfig().Seed; s == 0 {
		t.Error("QuickUniConfig has a zero seed")
	}
	if s := QuickMPConfig().Seed; s == 0 {
		t.Error("QuickMPConfig has a zero seed")
	}
}
