package prog

import (
	"strings"
	"testing"
)

// FuzzAssemble: arbitrary input must produce either a program or an
// error — never a panic.
func FuzzAssemble(f *testing.F) {
	f.Add("add r1, r2, r3\nhalt\n")
	f.Add(".alloc A 64\nla r1, A\nlw r2, 0(r1)\nhalt")
	f.Add("loop:\nbgtz r1, loop")
	f.Add(".word A 1")
	f.Add(".alloc A 99999999999")
	f.Add("trap 1\neret")
	f.Add("fadd f1, f2, r3")
	f.Add("lw r1, 99999(r2)")
	f.Add(".region sync\ntas r1, 0(r2)")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble("fuzz", 0x1000, 0x100000, 1<<20, src)
		if err == nil && p == nil {
			t.Fatal("nil program with nil error")
		}
	})
}

func TestListing(t *testing.T) {
	p := MustAssemble("l", 0x1000, 0x100000, 4096, `
	top:
		addi r1, r1, 1
		.region sync
		tas r2, 0(r3)
		.region normal
		bgtz r1, top
		halt
	`)
	out := p.Listing()
	if !strings.Contains(out, "top:") || !strings.Contains(out, "; sync") ||
		!strings.Contains(out, "addi r1, r1, 1") {
		t.Errorf("listing:\n%s", out)
	}
}
