// Package prog provides the program representation and the assembler-like
// Builder used to write the synthetic application kernels. It plays the
// role of the paper's compilation pipeline (MIPS compilers + the Twine
// scheduler): kernels are written as scheduled instruction sequences, and
// the builder's yield mode implements the latency-tolerance pass that
// inserts BACKOFF (interleaved scheme) or SWITCH (blocked scheme)
// instructions after long-latency operations.
package prog

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/isa"
	"repro/internal/mem"
)

// DataInit records one initial memory value of a program.
type DataInit struct {
	Addr   uint32
	Val    uint64
	Double bool // true: 8-byte store, false: 4-byte word store of low bits
}

// Program is a linked, executable program: a flat instruction slice with
// resolved branch targets, a code base address (for the I-cache), and
// initial data contents.
type Program struct {
	Name   string
	Base   uint32 // byte address of instruction 0; instruction i is at Base+4i
	Insts  []isa.Inst
	Labels map[string]int
	Init   []DataInit

	decodeOnce sync.Once
}

// EnsureDecoded fills every instruction's precomputed issue-stage fields
// (isa.Inst.Decode). Build calls it, so linked programs arrive decoded;
// core.NewThread calls it again to cover hand-assembled Programs built as
// struct literals. Safe under concurrent thread creation.
func (p *Program) EnsureDecoded() {
	p.decodeOnce.Do(func() {
		for i := range p.Insts {
			p.Insts[i].Decode()
		}
	})
}

// PCAddr returns the byte address of instruction index idx.
func (p *Program) PCAddr(idx int) uint32 { return p.Base + uint32(idx)*4 }

// LoadInit writes the program's initial data into m.
func (p *Program) LoadInit(m *mem.Memory) {
	for _, d := range p.Init {
		if d.Double {
			m.StoreD(d.Addr, d.Val)
		} else {
			m.StoreW(d.Addr, uint32(d.Val))
		}
	}
}

// CodeBytes returns the size of the program's code in bytes, which
// determines its instruction-cache footprint.
func (p *Program) CodeBytes() int { return len(p.Insts) * 4 }

// YieldMode selects which latency-tolerance instruction the builder emits
// at yield points (paper Table 4). It corresponds to the scheme the
// program is compiled for.
type YieldMode uint8

const (
	// YieldNone emits nothing: single-context compilation.
	YieldNone YieldMode = iota
	// YieldBackoff emits BACKOFF (interleaved scheme, cost 1).
	YieldBackoff
	// YieldSwitch emits SWITCH (blocked scheme, cost 3).
	YieldSwitch
)

// String returns the mode name.
func (m YieldMode) String() string {
	switch m {
	case YieldNone:
		return "none"
	case YieldBackoff:
		return "backoff"
	case YieldSwitch:
		return "switch"
	}
	return "yield(?)"
}

// autoYieldThreshold: operations with result latency at or above this get
// an automatic yield point when auto-tolerance is enabled. FP and integer
// divides qualify; multiplies and FP adds do not.
const autoYieldThreshold = 30

type fixup struct {
	inst  int
	label string
}

// Builder incrementally assembles a Program. Create one with NewBuilder,
// emit instructions through the mnemonic methods, and call Build. Operand
// misuse (e.g. an FP register in an integer slot) panics immediately:
// kernels are static code and should fail loudly at construction time.
type Builder struct {
	name     string
	base     uint32
	insts    []isa.Inst
	labels   map[string]int
	fixups   []fixup
	inits    []DataInit
	region   isa.Region
	yield    YieldMode
	autoTol  bool
	dataNext uint32
	dataEnd  uint32
	syncSeq  int
	err      error
}

// NewBuilder returns a builder for a program named name. Code is placed at
// codeBase; data allocations (Alloc) are carved from
// [dataBase, dataBase+dataSize).
func NewBuilder(name string, codeBase, dataBase, dataSize uint32) *Builder {
	return &Builder{
		name:     name,
		base:     codeBase,
		labels:   make(map[string]int),
		dataNext: dataBase,
		dataEnd:  dataBase + dataSize,
	}
}

// SetYield selects the yield mode for subsequently emitted yield points.
func (b *Builder) SetYield(m YieldMode) { b.yield = m }

// SetAutoTolerate enables/disables automatic yield insertion after
// long-latency instructions (divides). This is the latency-tolerance
// compiler pass from the paper's methodology.
func (b *Builder) SetAutoTolerate(on bool) { b.autoTol = on }

// SetRegion tags subsequently emitted instructions with region r.
func (b *Builder) SetRegion(r isa.Region) { b.region = r }

// Region returns the current region tag.
func (b *Builder) Region() isa.Region { return b.region }

// PC returns the index the next emitted instruction will have.
func (b *Builder) PC() int { return len(b.insts) }

// Alloc reserves size bytes aligned to align from the data arena and
// returns the base address.
func (b *Builder) Alloc(size, align uint32) uint32 {
	if align == 0 {
		align = 8
	}
	addr := (b.dataNext + align - 1) &^ (align - 1)
	if addr+size > b.dataEnd {
		panic(fmt.Sprintf("prog %s: data arena overflow (%d bytes requested)", b.name, size))
	}
	b.dataNext = addr + size
	return addr
}

// InitW records an initial 32-bit word value.
func (b *Builder) InitW(addr, v uint32) {
	b.inits = append(b.inits, DataInit{Addr: addr, Val: uint64(v)})
}

// InitF records an initial float64 value.
func (b *Builder) InitF(addr uint32, f float64) {
	b.inits = append(b.inits, DataInit{Addr: addr, Val: math.Float64bits(f), Double: true})
}

// Label defines a label at the current position.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		panic(fmt.Sprintf("prog %s: duplicate label %q", b.name, name))
	}
	b.labels[name] = len(b.insts)
}

func (b *Builder) emit(i isa.Inst) {
	i.Region = b.region
	b.insts = append(b.insts, i)
	if b.autoTol && i.Op.Timing().Latency >= autoYieldThreshold {
		b.Yield(int32(i.Op.Timing().Latency) - 4)
	}
}

func needInt(r isa.Reg, op string) {
	if !r.Valid() || r.IsFP() {
		panic(fmt.Sprintf("prog: %s needs integer register, got %s", op, r))
	}
}

func needFP(r isa.Reg, op string) {
	if !r.Valid() || !r.IsFP() {
		panic(fmt.Sprintf("prog: %s needs FP register, got %s", op, r))
	}
}

func need16(imm int32, op string) {
	if imm < math.MinInt16 || imm > math.MaxInt16 {
		panic(fmt.Sprintf("prog: %s immediate %d out of 16-bit range (use Li)", op, imm))
	}
}

func (b *Builder) rrr(op isa.Op, rd, rs, rt isa.Reg) {
	needInt(rd, op.String())
	needInt(rs, op.String())
	needInt(rt, op.String())
	b.emit(isa.Inst{Op: op, Rd: rd, Rs: rs, Rt: rt})
}

func (b *Builder) rri(op isa.Op, rd, rs isa.Reg, imm int32) {
	needInt(rd, op.String())
	needInt(rs, op.String())
	need16(imm, op.String())
	b.emit(isa.Inst{Op: op, Rd: rd, Rs: rs, Imm: imm})
}

// Integer ALU.

// Add emits rd = rs + rt.
func (b *Builder) Add(rd, rs, rt isa.Reg) { b.rrr(isa.ADD, rd, rs, rt) }

// Addi emits rd = rs + imm (16-bit immediate).
func (b *Builder) Addi(rd, rs isa.Reg, imm int32) { b.rri(isa.ADDI, rd, rs, imm) }

// Sub emits rd = rs - rt.
func (b *Builder) Sub(rd, rs, rt isa.Reg) { b.rrr(isa.SUB, rd, rs, rt) }

// And emits rd = rs & rt.
func (b *Builder) And(rd, rs, rt isa.Reg) { b.rrr(isa.AND, rd, rs, rt) }

// Andi emits rd = rs & uimm16.
func (b *Builder) Andi(rd, rs isa.Reg, imm int32) { b.rri(isa.ANDI, rd, rs, imm) }

// Or emits rd = rs | rt.
func (b *Builder) Or(rd, rs, rt isa.Reg) { b.rrr(isa.OR, rd, rs, rt) }

// Ori emits rd = rs | uimm16.
func (b *Builder) Ori(rd, rs isa.Reg, imm int32) {
	needInt(rd, "ori")
	needInt(rs, "ori")
	if imm < 0 || imm > 0xFFFF {
		panic("prog: ori immediate out of range")
	}
	b.emit(isa.Inst{Op: isa.ORI, Rd: rd, Rs: rs, Imm: imm})
}

// Xor emits rd = rs ^ rt.
func (b *Builder) Xor(rd, rs, rt isa.Reg) { b.rrr(isa.XOR, rd, rs, rt) }

// Xori emits rd = rs ^ uimm16.
func (b *Builder) Xori(rd, rs isa.Reg, imm int32) { b.rri(isa.XORI, rd, rs, imm) }

// Slt emits rd = (int32(rs) < int32(rt)) ? 1 : 0.
func (b *Builder) Slt(rd, rs, rt isa.Reg) { b.rrr(isa.SLT, rd, rs, rt) }

// Slti emits rd = (int32(rs) < imm) ? 1 : 0.
func (b *Builder) Slti(rd, rs isa.Reg, imm int32) { b.rri(isa.SLTI, rd, rs, imm) }

// Sltu emits rd = (rs < rt) ? 1 : 0 (unsigned).
func (b *Builder) Sltu(rd, rs, rt isa.Reg) { b.rrr(isa.SLTU, rd, rs, rt) }

// Lui emits rd = imm << 16.
func (b *Builder) Lui(rd isa.Reg, imm int32) {
	needInt(rd, "lui")
	if imm < 0 || imm > 0xFFFF {
		panic("prog: lui immediate out of range")
	}
	b.emit(isa.Inst{Op: isa.LUI, Rd: rd, Imm: imm})
}

// Shifts.

// Sll emits rd = rs << imm.
func (b *Builder) Sll(rd, rs isa.Reg, imm int32) { b.rri(isa.SLL, rd, rs, imm) }

// Srl emits rd = rs >> imm (logical).
func (b *Builder) Srl(rd, rs isa.Reg, imm int32) { b.rri(isa.SRL, rd, rs, imm) }

// Sra emits rd = rs >> imm (arithmetic).
func (b *Builder) Sra(rd, rs isa.Reg, imm int32) { b.rri(isa.SRA, rd, rs, imm) }

// Sllv emits rd = rs << (rt & 31).
func (b *Builder) Sllv(rd, rs, rt isa.Reg) { b.rrr(isa.SLLV, rd, rs, rt) }

// Srlv emits rd = rs >> (rt & 31).
func (b *Builder) Srlv(rd, rs, rt isa.Reg) { b.rrr(isa.SRLV, rd, rs, rt) }

// Multiply / divide.

// Mul emits rd = rs * rt (low 32 bits).
func (b *Builder) Mul(rd, rs, rt isa.Reg) { b.rrr(isa.MUL, rd, rs, rt) }

// Div emits rd = int32(rs) / int32(rt). Division by zero yields 0.
func (b *Builder) Div(rd, rs, rt isa.Reg) { b.rrr(isa.DIV, rd, rs, rt) }

// Rem emits rd = int32(rs) % int32(rt). Division by zero yields 0.
func (b *Builder) Rem(rd, rs, rt isa.Reg) { b.rrr(isa.REM, rd, rs, rt) }

// Divu emits rd = rs / rt (unsigned). Division by zero yields 0.
func (b *Builder) Divu(rd, rs, rt isa.Reg) { b.rrr(isa.DIVU, rd, rs, rt) }

// Li loads an arbitrary 32-bit constant, emitting one or two instructions.
func (b *Builder) Li(rd isa.Reg, v uint32) {
	needInt(rd, "li")
	switch {
	case int32(v) >= math.MinInt16 && int32(v) <= math.MaxInt16:
		b.Addi(rd, isa.R0, int32(v))
	case v&0xFFFF == 0:
		b.Lui(rd, int32(v>>16))
	default:
		b.Lui(rd, int32(v>>16))
		b.Ori(rd, rd, int32(v&0xFFFF))
	}
}

// La loads the address addr (an alias of Li for readability).
func (b *Builder) La(rd isa.Reg, addr uint32) { b.Li(rd, addr) }

// Move emits rd = rs (as an OR with R0).
func (b *Builder) Move(rd, rs isa.Reg) { b.rrr(isa.OR, rd, rs, isa.R0) }

// Memory.

// Lw emits rd = mem32[base+off].
func (b *Builder) Lw(rd, base isa.Reg, off int32) {
	needInt(rd, "lw")
	needInt(base, "lw")
	need16(off, "lw")
	b.emit(isa.Inst{Op: isa.LW, Rd: rd, Rs: base, Imm: off})
}

// Sw emits mem32[base+off] = rt.
func (b *Builder) Sw(rt, base isa.Reg, off int32) {
	needInt(rt, "sw")
	needInt(base, "sw")
	need16(off, "sw")
	b.emit(isa.Inst{Op: isa.SW, Rt: rt, Rs: base, Imm: off})
}

// Fld emits fd = mem64[base+off].
func (b *Builder) Fld(fd, base isa.Reg, off int32) {
	needFP(fd, "fld")
	needInt(base, "fld")
	need16(off, "fld")
	b.emit(isa.Inst{Op: isa.FLD, Rd: fd, Rs: base, Imm: off})
}

// Fsd emits mem64[base+off] = ft.
func (b *Builder) Fsd(ft, base isa.Reg, off int32) {
	needFP(ft, "fsd")
	needInt(base, "fsd")
	need16(off, "fsd")
	b.emit(isa.Inst{Op: isa.FSD, Rt: ft, Rs: base, Imm: off})
}

// Tas emits the atomic test-and-set rd = mem32[base+off]; mem32[...] = 1.
func (b *Builder) Tas(rd, base isa.Reg, off int32) {
	needInt(rd, "tas")
	needInt(base, "tas")
	need16(off, "tas")
	b.emit(isa.Inst{Op: isa.TAS, Rd: rd, Rs: base, Imm: off})
}

// Control transfer.

func (b *Builder) branch(op isa.Op, rs, rt isa.Reg, label string) {
	if rs != isa.NoReg {
		needInt(rs, op.String())
	}
	if rt != isa.NoReg {
		needInt(rt, op.String())
	}
	idx := len(b.insts)
	b.emit(isa.Inst{Op: op, Rs: rs, Rt: rt, Target: -1})
	b.fixups = append(b.fixups, fixup{idx, label})
}

// Beq emits: if rs == rt goto label.
func (b *Builder) Beq(rs, rt isa.Reg, label string) { b.branch(isa.BEQ, rs, rt, label) }

// Bne emits: if rs != rt goto label.
func (b *Builder) Bne(rs, rt isa.Reg, label string) { b.branch(isa.BNE, rs, rt, label) }

// Blez emits: if int32(rs) <= 0 goto label.
func (b *Builder) Blez(rs isa.Reg, label string) { b.branch(isa.BLEZ, rs, isa.NoReg, label) }

// Bgtz emits: if int32(rs) > 0 goto label.
func (b *Builder) Bgtz(rs isa.Reg, label string) { b.branch(isa.BGTZ, rs, isa.NoReg, label) }

// J emits an unconditional jump to label.
func (b *Builder) J(label string) { b.branch(isa.J, isa.NoReg, isa.NoReg, label) }

// Jal emits a jump-and-link to label; the return instruction index is
// written to R31.
func (b *Builder) Jal(label string) {
	idx := len(b.insts)
	b.emit(isa.Inst{Op: isa.JAL, Rd: isa.R31, Target: -1})
	b.fixups = append(b.fixups, fixup{idx, label})
}

// Jr emits an indirect jump to the instruction index held in rs.
func (b *Builder) Jr(rs isa.Reg) {
	needInt(rs, "jr")
	b.emit(isa.Inst{Op: isa.JR, Rs: rs})
}

// Floating point.

func (b *Builder) fff(op isa.Op, fd, fs, ft isa.Reg) {
	needFP(fd, op.String())
	needFP(fs, op.String())
	needFP(ft, op.String())
	b.emit(isa.Inst{Op: op, Rd: fd, Rs: fs, Rt: ft})
}

// FAdd emits fd = fs + ft.
func (b *Builder) FAdd(fd, fs, ft isa.Reg) { b.fff(isa.FADD, fd, fs, ft) }

// FSub emits fd = fs - ft.
func (b *Builder) FSub(fd, fs, ft isa.Reg) { b.fff(isa.FSUB, fd, fs, ft) }

// FMul emits fd = fs * ft.
func (b *Builder) FMul(fd, fs, ft isa.Reg) { b.fff(isa.FMUL, fd, fs, ft) }

// FNeg emits fd = -fs.
func (b *Builder) FNeg(fd, fs isa.Reg) {
	needFP(fd, "fneg")
	needFP(fs, "fneg")
	b.emit(isa.Inst{Op: isa.FNEG, Rd: fd, Rs: fs})
}

// FAbs emits fd = |fs|.
func (b *Builder) FAbs(fd, fs isa.Reg) {
	needFP(fd, "fabs")
	needFP(fs, "fabs")
	b.emit(isa.Inst{Op: isa.FABS, Rd: fd, Rs: fs})
}

// FDivS emits the single-precision divide fd = fs / ft (31-cycle).
func (b *Builder) FDivS(fd, fs, ft isa.Reg) { b.fff(isa.FDIVS, fd, fs, ft) }

// FDivD emits the double-precision divide fd = fs / ft (61-cycle).
func (b *Builder) FDivD(fd, fs, ft isa.Reg) { b.fff(isa.FDIVD, fd, fs, ft) }

// FSqrt emits fd = sqrt(fs), modeled with double-divide timing.
func (b *Builder) FSqrt(fd, fs isa.Reg) {
	needFP(fd, "fsqrt")
	needFP(fs, "fsqrt")
	b.emit(isa.Inst{Op: isa.FSQRT, Rd: fd, Rs: fs})
}

// FCmpLt emits rd(int) = (fs < ft) ? 1 : 0.
func (b *Builder) FCmpLt(rd, fs, ft isa.Reg) {
	needInt(rd, "fcmplt")
	needFP(fs, "fcmplt")
	needFP(ft, "fcmplt")
	b.emit(isa.Inst{Op: isa.FCMPLT, Rd: rd, Rs: fs, Rt: ft})
}

// FCmpLe emits rd(int) = (fs <= ft) ? 1 : 0.
func (b *Builder) FCmpLe(rd, fs, ft isa.Reg) {
	needInt(rd, "fcmple")
	needFP(fs, "fcmple")
	needFP(ft, "fcmple")
	b.emit(isa.Inst{Op: isa.FCMPLE, Rd: rd, Rs: fs, Rt: ft})
}

// FCvt emits fd = trunc(fs) as a float64 integral value.
func (b *Builder) FCvt(fd, fs isa.Reg) {
	needFP(fd, "fcvtiw")
	needFP(fs, "fcvtiw")
	b.emit(isa.Inst{Op: isa.FCVTIW, Rd: fd, Rs: fs})
}

// Mtc1 emits fd = float64(int32(rs)).
func (b *Builder) Mtc1(fd, rs isa.Reg) {
	needFP(fd, "mtc1")
	needInt(rs, "mtc1")
	b.emit(isa.Inst{Op: isa.MTC1, Rd: fd, Rs: rs})
}

// Mfc1 emits rd = int32(fs) (truncating).
func (b *Builder) Mfc1(rd, fs isa.Reg) {
	needInt(rd, "mfc1")
	needFP(fs, "mfc1")
	b.emit(isa.Inst{Op: isa.MFC1, Rd: rd, Rs: fs})
}

// Special.

// Nop emits a no-op.
func (b *Builder) Nop() { b.emit(isa.Inst{Op: isa.NOP}) }

// Halt retires the thread.
func (b *Builder) Halt() { b.emit(isa.Inst{Op: isa.HALT}) }

// Trap emits a software exception with the given code: the thread's EPC
// receives the next PC and control enters its trap handler (paper §6).
func (b *Builder) Trap(code int32) { b.emit(isa.Inst{Op: isa.TRAP, Imm: code}) }

// Eret returns from a trap handler to the thread's EPC.
func (b *Builder) Eret() { b.emit(isa.Inst{Op: isa.ERET}) }

// Yield emits a latency-tolerance point: BACKOFF cycles (interleaved
// compilation), SWITCH cycles (blocked compilation), or nothing
// (single-context compilation), per the builder's yield mode.
func (b *Builder) Yield(cycles int32) {
	if cycles <= 0 {
		return
	}
	switch b.yield {
	case YieldBackoff:
		b.insts = append(b.insts, isa.Inst{Op: isa.BACKOFF, Imm: cycles, Region: b.region})
	case YieldSwitch:
		b.insts = append(b.insts, isa.Inst{Op: isa.SWITCH, Imm: cycles, Region: b.region})
	}
}

// Build resolves labels and returns the linked program.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	for _, f := range b.fixups {
		idx, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("prog %s: undefined label %q", b.name, f.label)
		}
		b.insts[f.inst].Target = int32(idx)
	}
	labels := make(map[string]int, len(b.labels))
	for k, v := range b.labels {
		labels[k] = v
	}
	p := &Program{
		Name:   b.name,
		Base:   b.base,
		Insts:  append([]isa.Inst(nil), b.insts...),
		Labels: labels,
		Init:   append([]DataInit(nil), b.inits...),
	}
	p.EnsureDecoded()
	return p, nil
}

// MustBuild is Build that panics on error; kernels use it because their
// labels are static.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// Listing renders the program as annotated assembly: label definitions,
// instruction indexes and disassembly — the inverse of the assembler, for
// debugging and for asmrun's -list flag.
func (p *Program) Listing() string {
	byIndex := make(map[int][]string)
	for name, idx := range p.Labels {
		byIndex[idx] = append(byIndex[idx], name)
	}
	var sb []byte
	for i, in := range p.Insts {
		for _, l := range byIndex[i] {
			sb = append(sb, (l + ":\n")...)
		}
		region := ""
		if in.Region == isa.RegionSync {
			region = "  ; sync"
		}
		sb = append(sb, fmt.Sprintf("%5d  %s%s\n", i, in.String(), region)...)
	}
	return string(sb)
}
