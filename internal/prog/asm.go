package prog

// A small text assembler over Builder, so programs can be written as .s
// files (see cmd/asmrun) as well as through the Go API.
//
// Syntax, one statement per line ('#' or ';' start a comment):
//
//	.alloc  NAME SIZE [ALIGN]     reserve SIZE bytes, define symbol NAME
//	.word   NAME[+OFF] VALUE      initial 32-bit value
//	.double NAME[+OFF] FLOAT      initial float64 value
//	.region sync|normal           tag following instructions
//
//	label:                        define a branch target
//	add   r1, r2, r3              three-register ops
//	addi  r1, r2, -5              immediates (decimal or 0x hex)
//	lw    r2, 8(r3)               loads/stores: disp(base)
//	la    r4, NAME[+OFF]          load a data symbol's address
//	li    r4, 123456              load a 32-bit constant
//	beq   r1, r2, label           branches name labels
//	fadd  f1, f2, f3              FP registers are f0-f31
//	backoff 20                    latency-tolerance instructions
//	halt

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// Assemble parses src and returns the linked program.
func Assemble(name string, codeBase, dataBase, dataSize uint32, src string) (*Program, error) {
	a := &assembler{
		b:       NewBuilder(name, codeBase, dataBase, dataSize),
		symbols: make(map[string]uint32),
	}
	for i, line := range strings.Split(src, "\n") {
		if err := a.line(line); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", name, i+1, err)
		}
	}
	return a.b.Build()
}

// MustAssemble is Assemble that panics on error (for static sources).
func MustAssemble(name string, codeBase, dataBase, dataSize uint32, src string) *Program {
	p, err := Assemble(name, codeBase, dataBase, dataSize, src)
	if err != nil {
		panic(err)
	}
	return p
}

type assembler struct {
	b       *Builder
	symbols map[string]uint32
}

func (a *assembler) line(s string) (err error) {
	defer func() {
		// The Builder panics on misuse (arena overflow, duplicate
		// labels, operand-class errors); surface those as assembly
		// errors with line context instead.
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	if i := strings.IndexAny(s, "#;"); i >= 0 {
		s = s[:i]
	}
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	if strings.HasPrefix(s, ".") {
		return a.directive(s)
	}
	if lbl, ok := strings.CutSuffix(s, ":"); ok && !strings.ContainsAny(lbl, " \t") {
		a.b.Label(strings.TrimSpace(lbl))
		return nil
	}
	return a.instruction(s)
}

func (a *assembler) directive(s string) error {
	f := strings.Fields(s)
	switch f[0] {
	case ".alloc":
		if len(f) < 3 || len(f) > 4 {
			return fmt.Errorf("usage: .alloc NAME SIZE [ALIGN]")
		}
		size, err := parseUint(f[2])
		if err != nil {
			return err
		}
		align := uint32(8)
		if len(f) == 4 {
			if align, err = parseUint(f[3]); err != nil {
				return err
			}
		}
		if _, dup := a.symbols[f[1]]; dup {
			return fmt.Errorf("symbol %q redefined", f[1])
		}
		a.symbols[f[1]] = a.b.Alloc(size, align)
		return nil
	case ".word":
		if len(f) != 3 {
			return fmt.Errorf("usage: .word NAME[+OFF] VALUE")
		}
		addr, err := a.symbolAddr(f[1])
		if err != nil {
			return err
		}
		v, err := parseUint(f[2])
		if err != nil {
			return err
		}
		a.b.InitW(addr, v)
		return nil
	case ".double":
		if len(f) != 3 {
			return fmt.Errorf("usage: .double NAME[+OFF] FLOAT")
		}
		addr, err := a.symbolAddr(f[1])
		if err != nil {
			return err
		}
		v, err := strconv.ParseFloat(f[2], 64)
		if err != nil {
			return err
		}
		a.b.InitF(addr, v)
		return nil
	case ".region":
		if len(f) != 2 {
			return fmt.Errorf("usage: .region sync|normal")
		}
		switch f[1] {
		case "sync":
			a.b.SetRegion(isa.RegionSync)
		case "normal":
			a.b.SetRegion(isa.RegionNormal)
		default:
			return fmt.Errorf("unknown region %q", f[1])
		}
		return nil
	}
	return fmt.Errorf("unknown directive %q", f[0])
}

func (a *assembler) symbolAddr(s string) (uint32, error) {
	name, offStr, hasOff := strings.Cut(s, "+")
	base, ok := a.symbols[name]
	if !ok {
		return 0, fmt.Errorf("undefined symbol %q", name)
	}
	if !hasOff {
		return base, nil
	}
	off, err := parseUint(offStr)
	if err != nil {
		return 0, err
	}
	return base + off, nil
}

func parseUint(s string) (uint32, error) {
	v, err := strconv.ParseUint(s, 0, 32)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	return uint32(v), nil
}

func parseInt(s string) (int32, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		uv, uerr := strconv.ParseUint(s, 0, 32)
		if uerr != nil {
			return 0, fmt.Errorf("bad immediate %q", s)
		}
		return int32(uint32(uv)), nil
	}
	if v < math.MinInt32 || v > math.MaxInt32 {
		return 0, fmt.Errorf("immediate %q out of 32-bit range", s)
	}
	return int32(v), nil
}

func parseReg(s string) (isa.Reg, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if len(s) < 2 {
		return isa.NoReg, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n > 31 {
		return isa.NoReg, fmt.Errorf("bad register %q", s)
	}
	switch s[0] {
	case 'r':
		return isa.Reg(n), nil
	case 'f':
		return isa.Reg(n) + 32, nil
	}
	return isa.NoReg, fmt.Errorf("bad register %q", s)
}

// parseMem parses "disp(base)".
func parseMem(s string) (isa.Reg, int32, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return isa.NoReg, 0, fmt.Errorf("bad memory operand %q (want disp(base))", s)
	}
	disp := int32(0)
	if ds := strings.TrimSpace(s[:open]); ds != "" {
		var err error
		if disp, err = parseInt(ds); err != nil {
			return isa.NoReg, 0, err
		}
	}
	base, err := parseReg(s[open+1 : len(s)-1])
	if err != nil {
		return isa.NoReg, 0, err
	}
	return base, disp, nil
}

func (a *assembler) instruction(s string) error {
	mnem, rest, _ := strings.Cut(s, " ")
	mnem = strings.ToLower(strings.TrimSpace(mnem))
	var ops []string
	if rest = strings.TrimSpace(rest); rest != "" {
		for _, o := range strings.Split(rest, ",") {
			ops = append(ops, strings.TrimSpace(o))
		}
	}
	b := a.b

	need := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("%s needs %d operands, got %d", mnem, n, len(ops))
		}
		return nil
	}
	regs := func(idx ...int) ([]isa.Reg, error) {
		out := make([]isa.Reg, len(idx))
		for i, j := range idx {
			r, err := parseReg(ops[j])
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}

	// Three-register ops.
	rrr := map[string]func(rd, rs, rt isa.Reg){
		"add": b.Add, "sub": b.Sub, "and": b.And, "or": b.Or, "xor": b.Xor,
		"slt": b.Slt, "sltu": b.Sltu, "sllv": b.Sllv, "srlv": b.Srlv,
		"mul": b.Mul, "div": b.Div, "rem": b.Rem, "divu": b.Divu,
		"fadd": b.FAdd, "fsub": b.FSub, "fmul": b.FMul,
		"fdivs": b.FDivS, "fdivd": b.FDivD,
		"fcmplt": b.FCmpLt, "fcmple": b.FCmpLe,
	}
	if f, ok := rrr[mnem]; ok {
		if err := need(3); err != nil {
			return err
		}
		r, err := regs(0, 1, 2)
		if err != nil {
			return err
		}
		f(r[0], r[1], r[2])
		return nil
	}

	// Register-register-immediate ops.
	rri := map[string]func(rd, rs isa.Reg, imm int32){
		"addi": b.Addi, "andi": b.Andi, "ori": b.Ori, "xori": b.Xori,
		"slti": b.Slti, "sll": b.Sll, "srl": b.Srl, "sra": b.Sra,
	}
	if f, ok := rri[mnem]; ok {
		if err := need(3); err != nil {
			return err
		}
		r, err := regs(0, 1)
		if err != nil {
			return err
		}
		imm, err := parseInt(ops[2])
		if err != nil {
			return err
		}
		f(r[0], r[1], imm)
		return nil
	}

	// Two-register ops.
	rr := map[string]func(rd, rs isa.Reg){
		"move": b.Move, "fneg": b.FNeg, "fabs": b.FAbs, "fsqrt": b.FSqrt,
		"fcvt": b.FCvt, "mtc1": b.Mtc1, "mfc1": b.Mfc1,
	}
	if f, ok := rr[mnem]; ok {
		if err := need(2); err != nil {
			return err
		}
		r, err := regs(0, 1)
		if err != nil {
			return err
		}
		f(r[0], r[1])
		return nil
	}

	// Memory ops.
	memOps := map[string]func(r, base isa.Reg, off int32){
		"lw": b.Lw, "sw": b.Sw, "fld": b.Fld, "fsd": b.Fsd, "tas": b.Tas,
	}
	if f, ok := memOps[mnem]; ok {
		if err := need(2); err != nil {
			return err
		}
		r, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		base, disp, err := parseMem(ops[1])
		if err != nil {
			return err
		}
		f(r, base, disp)
		return nil
	}

	// Branches.
	switch mnem {
	case "beq", "bne":
		if err := need(3); err != nil {
			return err
		}
		r, err := regs(0, 1)
		if err != nil {
			return err
		}
		if mnem == "beq" {
			b.Beq(r[0], r[1], ops[2])
		} else {
			b.Bne(r[0], r[1], ops[2])
		}
		return nil
	case "blez", "bgtz":
		if err := need(2); err != nil {
			return err
		}
		r, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		if mnem == "blez" {
			b.Blez(r, ops[1])
		} else {
			b.Bgtz(r, ops[1])
		}
		return nil
	case "j", "jal":
		if err := need(1); err != nil {
			return err
		}
		if mnem == "j" {
			b.J(ops[0])
		} else {
			b.Jal(ops[0])
		}
		return nil
	case "jr":
		if err := need(1); err != nil {
			return err
		}
		r, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		b.Jr(r)
		return nil
	case "li":
		if err := need(2); err != nil {
			return err
		}
		r, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		imm, err := parseInt(ops[1])
		if err != nil {
			return err
		}
		b.Li(r, uint32(imm))
		return nil
	case "la":
		if err := need(2); err != nil {
			return err
		}
		r, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		addr, err := a.symbolAddr(ops[1])
		if err != nil {
			return err
		}
		b.La(r, addr)
		return nil
	case "lui":
		if err := need(2); err != nil {
			return err
		}
		r, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		imm, err := parseInt(ops[1])
		if err != nil {
			return err
		}
		b.Lui(r, imm)
		return nil
	case "backoff", "switch":
		if err := need(1); err != nil {
			return err
		}
		imm, err := parseInt(ops[0])
		if err != nil {
			return err
		}
		// Emit the named instruction directly regardless of yield mode.
		op := isa.BACKOFF
		if mnem == "switch" {
			op = isa.SWITCH
		}
		a.emitRaw(isa.Inst{Op: op, Imm: imm})
		return nil
	case "trap":
		if err := need(1); err != nil {
			return err
		}
		imm, err := parseInt(ops[0])
		if err != nil {
			return err
		}
		b.Trap(imm)
		return nil
	case "eret":
		if err := need(0); err != nil {
			return err
		}
		b.Eret()
		return nil
	case "nop":
		if err := need(0); err != nil {
			return err
		}
		b.Nop()
		return nil
	case "halt":
		if err := need(0); err != nil {
			return err
		}
		b.Halt()
		return nil
	}
	return fmt.Errorf("unknown mnemonic %q", mnem)
}

// emitRaw appends an instruction with the current region tag, bypassing
// the yield-mode indirection (used for explicit backoff/switch mnemonics).
func (a *assembler) emitRaw(in isa.Inst) {
	in.Region = a.b.region
	a.b.insts = append(a.b.insts, in)
}
