package prog_test

// External tests for the sync library (prog_test so they can drive the
// mp and core machines, which import prog). These pin the semantics the
// differential fuzzer's oracle relies on: TAS critical sections provide
// mutual exclusion under every scheme and thread placement, the lock
// word follows a strict acquire/release protocol at the memory level,
// and the sense-reversing barrier separates phases.

import (
	"fmt"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/mp"
	"repro/internal/prog"
)

// lockCounterProgram: every thread increments a shared counter reps
// times inside a TAS critical section, then meets at a barrier and
// halts. Returns the program plus the lock and counter addresses.
func lockCounterProgram(reps int, mode prog.YieldMode) (*prog.Program, uint32, uint32) {
	b := prog.NewBuilder("sync-counter", 0x1000, 0x0020_0000, 1<<20)
	b.SetYield(mode)
	lock := b.AllocLock()
	ctr := b.Alloc(64, 64)
	bar := b.AllocBarrier()

	b.La(isa.R16, lock)
	b.La(isa.R17, ctr)
	b.La(isa.R6, bar)
	b.Li(isa.R7, 0) // barrier sense
	b.Li(isa.R20, uint32(reps))
	b.Label("loop")
	b.LockAcquire(isa.R16, isa.R2)
	b.Lw(isa.R9, isa.R17, 0)
	b.Addi(isa.R9, isa.R9, 1)
	b.Sw(isa.R9, isa.R17, 0)
	b.LockRelease(isa.R16)
	b.Addi(isa.R20, isa.R20, -1)
	b.Bgtz(isa.R20, "loop")
	b.Barrier(isa.R6, isa.R5, isa.R7, isa.R2, isa.R3)
	b.Halt()
	return b.MustBuild(), lock, ctr
}

// TestTASMutualExclusionTable: the locked counter must land exactly on
// threads*reps for every scheme, yield mode, and (procs, contexts)
// placement — any lost update means two contexts were inside the
// critical section at once.
func TestTASMutualExclusionTable(t *testing.T) {
	cases := []struct {
		name     string
		scheme   core.Scheme
		procs    int
		contexts int
		mode     prog.YieldMode
		reps     int
	}{
		{"single/p2c1", core.Single, 2, 1, prog.YieldNone, 20},
		{"blocked/p1c2", core.Blocked, 1, 2, prog.YieldSwitch, 20},
		{"blocked/p2c2", core.Blocked, 2, 2, prog.YieldSwitch, 15},
		{"blocked-fast/p2c2", core.BlockedFast, 2, 2, prog.YieldSwitch, 15},
		{"interleaved/p1c4", core.Interleaved, 1, 4, prog.YieldBackoff, 15},
		{"interleaved/p2c2", core.Interleaved, 2, 2, prog.YieldBackoff, 15},
		{"interleaved/p3c2", core.Interleaved, 3, 2, prog.YieldBackoff, 11},
		{"fine-grained/p2c2", core.FineGrained, 2, 2, prog.YieldBackoff, 15},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, _, ctr := lockCounterProgram(tc.reps, tc.mode)
			cfg := mp.DefaultConfig(tc.scheme, tc.contexts)
			cfg.Processors = tc.procs
			cfg.LimitCycles = 5_000_000
			res, err := mp.Run(p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Completed {
				t.Fatal("did not complete")
			}
			want := uint32(tc.procs * tc.contexts * tc.reps)
			if got := res.Mem.LoadW(ctr); got != want {
				t.Errorf("counter = %d, want %d (mutual exclusion violated)", got, want)
			}
		})
	}
}

// TestTASLockProtocolAudit watches the lock word itself on a
// multi-context core: a TAS that loads 0 is an acquire and must only
// happen while the lock is free, a store of 0 is a release and must only
// happen while it is held, and the totals must balance at exactly one
// acquire per critical-section entry.
func TestTASLockProtocolAudit(t *testing.T) {
	const contexts, reps = 3, 10
	p, lockAddr, _ := lockCounterProgram(reps, prog.YieldBackoff)

	ccfg := core.DefaultConfig(core.Interleaved, contexts)
	h, err := cache.NewHierarchy(cache.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	fm := mem.New()
	p.LoadInit(fm)
	proc, err := core.NewProcessor(ccfg, h, fm)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < contexts; i++ {
		th := core.NewThread(fmt.Sprintf("t%d", i), p)
		th.SetIntReg(mp.TidReg, uint32(i))
		th.SetIntReg(mp.NThreadsReg, uint32(contexts))
		proc.BindThread(i, th)
	}

	held := false
	acquires, releases := 0, 0
	proc.MemWatch = func(op isa.Op, addr, value uint32, ctx int, now int64) {
		if addr != lockAddr {
			return
		}
		switch op {
		case isa.TAS:
			if value == 0 { // loaded free: this context now holds the lock
				if held {
					t.Errorf("cycle %d ctx %d: TAS acquired a lock already held", now, ctx)
				}
				held = true
				acquires++
			}
		case isa.SW:
			if value != 0 {
				t.Errorf("cycle %d ctx %d: non-zero store %d to lock word", now, ctx, value)
				return
			}
			if !held {
				t.Errorf("cycle %d ctx %d: release of a free lock", now, ctx)
			}
			held = false
			releases++
		}
	}

	if _, halted := proc.RunUntilHalted(5_000_000); !halted {
		t.Fatal("did not halt")
	}
	// One acquire per critical-section entry, every acquire released.
	// The barrier shares the same lock-word protocol on its own line, so
	// only the counter lock (audited address) is counted here.
	want := contexts * reps
	if acquires != want || releases != want {
		t.Errorf("acquires=%d releases=%d, want %d each", acquires, releases, want)
	}
	if held {
		t.Error("lock still held at halt")
	}
}

// barrierPhasesProgram: three barrier-separated phases. In each phase
// every thread adds tid+1 to that phase's accumulator under a lock, hits
// the barrier, then checks the accumulator reached the full-sum value —
// which it can only observe if the barrier really held everyone back.
// Mismatches are counted into a per-thread flag word.
func barrierPhasesProgram(threads int) (*prog.Program, uint32, uint32) {
	const phases = 3
	b := prog.NewBuilder("sync-phases", 0x1000, 0x0020_0000, 1<<20)
	b.SetYield(prog.YieldBackoff)
	lock := b.AllocLock()
	bar := b.AllocBarrier()
	accs := b.Alloc(4*phases, 64)
	flags := b.Alloc(4*uint32(threads), 64)

	b.La(isa.R16, lock)
	b.La(isa.R6, bar)
	b.Li(isa.R7, 0)
	b.Addi(isa.R10, isa.R4, 1) // tid+1
	b.La(isa.R11, flags)
	b.Sll(isa.R12, isa.R4, 2)
	b.Add(isa.R11, isa.R11, isa.R12) // &flags[tid]
	b.Li(isa.R13, uint32(threads*(threads+1)/2))
	b.Li(isa.R14, 0) // mismatch count

	for ph := 0; ph < phases; ph++ {
		b.La(isa.R17, accs+4*uint32(ph))
		b.LockAcquire(isa.R16, isa.R2)
		b.Lw(isa.R9, isa.R17, 0)
		b.Add(isa.R9, isa.R9, isa.R10)
		b.Sw(isa.R9, isa.R17, 0)
		b.LockRelease(isa.R16)
		b.Barrier(isa.R6, isa.R5, isa.R7, isa.R2, isa.R3)
		ok := fmt.Sprintf("phase_ok_%d", ph)
		b.Lw(isa.R9, isa.R17, 0)
		b.Beq(isa.R9, isa.R13, ok)
		b.Addi(isa.R14, isa.R14, 1)
		b.Label(ok)
	}
	b.Sw(isa.R14, isa.R11, 0)
	b.Halt()
	return b.MustBuild(), accs, flags
}

// TestBarrierSeparatesPhases runs the phase program on several machine
// shapes: every phase accumulator must hold the exact full sum and no
// thread may have observed a partial one.
func TestBarrierSeparatesPhases(t *testing.T) {
	cases := []struct {
		name     string
		scheme   core.Scheme
		procs    int
		contexts int
	}{
		{"blocked/p2c2", core.Blocked, 2, 2},
		{"interleaved/p1c3", core.Interleaved, 1, 3},
		{"fine-grained/p3c1", core.FineGrained, 3, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			threads := tc.procs * tc.contexts
			p, accs, flags := barrierPhasesProgram(threads)
			cfg := mp.DefaultConfig(tc.scheme, tc.contexts)
			cfg.Processors = tc.procs
			cfg.LimitCycles = 5_000_000
			res, err := mp.Run(p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Completed {
				t.Fatal("did not complete")
			}
			want := uint32(threads * (threads + 1) / 2)
			for ph := 0; ph < 3; ph++ {
				if got := res.Mem.LoadW(accs + 4*uint32(ph)); got != want {
					t.Errorf("phase %d accumulator = %d, want %d", ph, got, want)
				}
			}
			for tid := 0; tid < threads; tid++ {
				if got := res.Mem.LoadW(flags + 4*uint32(tid)); got != 0 {
					t.Errorf("thread %d observed %d partial-sum phases (barrier leaked)", tid, got)
				}
			}
		})
	}
}
