package prog

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

func newTestBuilder() *Builder {
	return NewBuilder("t", 0x1000, 0x10000, 1<<20)
}

func TestLabelsResolve(t *testing.T) {
	b := newTestBuilder()
	b.Label("top")
	b.Addi(isa.R1, isa.R1, 1)
	b.Bne(isa.R1, isa.R2, "top")
	b.J("end")
	b.Nop()
	b.Label("end")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[1].Target != 0 {
		t.Errorf("bne target = %d, want 0", p.Insts[1].Target)
	}
	if p.Insts[2].Target != 4 {
		t.Errorf("j target = %d, want 4", p.Insts[2].Target)
	}
}

func TestUndefinedLabelErrors(t *testing.T) {
	b := newTestBuilder()
	b.J("nowhere")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Errorf("Build() err = %v, want undefined-label error", err)
	}
}

func TestDuplicateLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate label did not panic")
		}
	}()
	b := newTestBuilder()
	b.Label("x")
	b.Label("x")
}

func TestOperandClassChecks(t *testing.T) {
	cases := []func(b *Builder){
		func(b *Builder) { b.Add(isa.F1, isa.R1, isa.R2) },  // FP dest in int op
		func(b *Builder) { b.FAdd(isa.R1, isa.F1, isa.F2) }, // int dest in FP op
		func(b *Builder) { b.Lw(isa.F1, isa.R1, 0) },        // LW into FP reg
		func(b *Builder) { b.Fld(isa.R1, isa.R2, 0) },       // FLD into int reg
		func(b *Builder) { b.Addi(isa.R1, isa.R2, 40000) },  // imm out of range
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: bad operands did not panic", i)
				}
			}()
			f(newTestBuilder())
		}()
	}
}

func TestLiExpansion(t *testing.T) {
	cases := []struct {
		v      uint32
		nInsts int
	}{
		{0, 1},       // addi
		{100, 1},     // addi
		{0x10000, 1}, // lui only
		{0x12345678, 2},
		{0xffffffff, 1}, // sign-extended addi -1
		{0x7fff0001, 2},
	}
	for _, c := range cases {
		b := newTestBuilder()
		b.Li(isa.R1, c.v)
		p := b.MustBuild()
		if len(p.Insts) != c.nInsts {
			t.Errorf("Li(%#x) emitted %d insts, want %d", c.v, len(p.Insts), c.nInsts)
		}
	}
}

func TestAllocAlignmentAndOverflow(t *testing.T) {
	b := NewBuilder("t", 0, 0x1000, 256)
	a := b.Alloc(10, 8)
	if a != 0x1000 {
		t.Errorf("first alloc = %#x", a)
	}
	a2 := b.Alloc(8, 64)
	if a2%64 != 0 || a2 < a+10 {
		t.Errorf("second alloc = %#x, want 64-aligned past first", a2)
	}
	defer func() {
		if recover() == nil {
			t.Error("arena overflow did not panic")
		}
	}()
	b.Alloc(1<<20, 8)
}

func TestYieldModes(t *testing.T) {
	for _, c := range []struct {
		mode YieldMode
		want isa.Op
		n    int
	}{
		{YieldNone, isa.NOP, 0},
		{YieldBackoff, isa.BACKOFF, 1},
		{YieldSwitch, isa.SWITCH, 1},
	} {
		b := newTestBuilder()
		b.SetYield(c.mode)
		b.Yield(20)
		p := b.MustBuild()
		if len(p.Insts) != c.n {
			t.Errorf("mode %v emitted %d insts, want %d", c.mode, len(p.Insts), c.n)
			continue
		}
		if c.n == 1 {
			if p.Insts[0].Op != c.want || p.Insts[0].Imm != 20 {
				t.Errorf("mode %v emitted %v", c.mode, p.Insts[0])
			}
		}
	}
}

func TestAutoTolerateInsertsAfterDivide(t *testing.T) {
	b := newTestBuilder()
	b.SetYield(YieldBackoff)
	b.SetAutoTolerate(true)
	b.FAdd(isa.F1, isa.F2, isa.F3) // latency 5: no yield
	b.FDivD(isa.F1, isa.F2, isa.F3)
	p := b.MustBuild()
	if len(p.Insts) != 3 {
		t.Fatalf("got %d insts, want 3 (fadd, fdivd, backoff)", len(p.Insts))
	}
	if p.Insts[2].Op != isa.BACKOFF {
		t.Errorf("inst 2 = %v, want backoff", p.Insts[2])
	}
	if p.Insts[2].Imm != int32(isa.FDIVD.Timing().Latency-4) {
		t.Errorf("backoff duration = %d", p.Insts[2].Imm)
	}
}

func TestAutoTolerateOffByDefault(t *testing.T) {
	b := newTestBuilder()
	b.SetYield(YieldBackoff)
	b.FDivD(isa.F1, isa.F2, isa.F3)
	if p := b.MustBuild(); len(p.Insts) != 1 {
		t.Errorf("got %d insts, want 1", len(p.Insts))
	}
}

func TestRegionTagging(t *testing.T) {
	b := newTestBuilder()
	b.Add(isa.R1, isa.R2, isa.R3)
	b.SetRegion(isa.RegionSync)
	b.Add(isa.R1, isa.R2, isa.R3)
	b.SetRegion(isa.RegionNormal)
	b.Add(isa.R1, isa.R2, isa.R3)
	p := b.MustBuild()
	want := []isa.Region{isa.RegionNormal, isa.RegionSync, isa.RegionNormal}
	for i, w := range want {
		if p.Insts[i].Region != w {
			t.Errorf("inst %d region = %v, want %v", i, p.Insts[i].Region, w)
		}
	}
}

func TestSyncLibraryRegionsAndLabels(t *testing.T) {
	b := newTestBuilder()
	lock := b.AllocLock()
	bar := b.AllocBarrier()
	if lock%64 != 0 || bar%64 != 0 {
		t.Error("sync objects must be line-aligned")
	}
	b.SetYield(YieldBackoff)
	b.La(isa.R8, lock)
	b.LockAcquire(isa.R8, isa.R9)
	b.LockRelease(isa.R8)
	b.La(isa.R10, bar)
	b.Li(isa.R11, 4)
	b.Barrier(isa.R10, isa.R11, isa.R12, isa.R13, isa.R14)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Everything between the La ops must be sync-tagged except the La/Li
	// themselves.
	var sawSync, sawTas bool
	for _, in := range p.Insts {
		if in.Region == isa.RegionSync {
			sawSync = true
		}
		if in.Op == isa.TAS {
			sawTas = true
			if in.Region != isa.RegionSync {
				t.Error("TAS not tagged sync")
			}
		}
	}
	if !sawSync || !sawTas {
		t.Error("sync library emitted no sync-tagged TAS")
	}
	// Region must be restored after library calls.
	if p.Insts[len(p.Insts)-1].Region != isa.RegionNormal {
		t.Error("region not restored after sync library call")
	}
}

func TestLoadInit(t *testing.T) {
	b := newTestBuilder()
	a := b.Alloc(16, 8)
	b.InitW(a, 42)
	b.InitF(a+8, 3.5)
	p := b.MustBuild()
	m := mem.New()
	p.LoadInit(m)
	if m.LoadW(a) != 42 {
		t.Error("InitW not applied")
	}
	if got := m.LoadD(a + 8); got != 0x400C000000000000 { // bits of 3.5
		t.Errorf("InitF bits = %#x", got)
	}
}

func TestPCAddr(t *testing.T) {
	b := NewBuilder("t", 0x4000, 0x10000, 4096)
	b.Nop()
	b.Nop()
	p := b.MustBuild()
	if p.PCAddr(0) != 0x4000 || p.PCAddr(1) != 0x4004 {
		t.Error("PCAddr wrong")
	}
	if p.CodeBytes() != 8 {
		t.Error("CodeBytes wrong")
	}
}
