package prog

import (
	"fmt"

	"repro/internal/isa"
)

// Synchronization library. Locks and barriers are built from the TAS
// instruction and ordinary loads/stores, exactly as the SPLASH
// applications build them from the machine's primitives. All emitted code
// is tagged RegionSync so the simulator can charge its busy and stall time
// to the synchronization category (Figures 8 and 9 of the paper), and all
// spin loops contain a yield point so waiting contexts release the
// processor to their siblings.

// Memory layout of a barrier allocated by AllocBarrier. Each field lives
// on its own cache line: the spin-read herd on the lock word must not
// steal the line the holder's counter update needs (false sharing turns a
// contended barrier from slow into pathological).
const (
	barrierLockOff  = 0
	barrierCountOff = 64
	barrierSenseOff = 128
	// BarrierBytes is the memory footprint of one barrier.
	BarrierBytes = 192
)

// SpinYieldCycles is how long a spinning context backs off between lock or
// sense probes.
const SpinYieldCycles = 16

// uniq returns a label name unique within this builder. The counter is
// per-Builder (not package-level) so concurrent program builds — the
// experiment engine constructs cells in parallel — share no mutable state
// and every build of the same program emits the same labels.
func (b *Builder) uniq(prefix string) string {
	b.syncSeq++
	return fmt.Sprintf("%s$%d", prefix, b.syncSeq)
}

// AllocLock reserves a cache-line-aligned lock word and returns its
// address. The lock starts free (zero).
func (b *Builder) AllocLock() uint32 {
	return b.Alloc(64, 64) // full line: avoid false sharing
}

// AllocBarrier reserves and zero-initializes a barrier and returns its
// address.
func (b *Builder) AllocBarrier() uint32 {
	return b.Alloc(BarrierBytes, 64)
}

// LockAcquire emits a test-and-test-and-set spin-lock acquire on the lock
// whose address is in addrReg, clobbering tmp. On return the lock is held.
func (b *Builder) LockAcquire(addrReg, tmp isa.Reg) {
	prev := b.region
	b.SetRegion(isa.RegionSync)
	defer b.SetRegion(prev)

	try := b.uniq("lock_try")
	spin := b.uniq("lock_spin")
	got := b.uniq("lock_got")

	b.Label(try)
	b.Tas(tmp, addrReg, 0)
	b.Beq(tmp, isa.R0, got)
	b.Label(spin)
	b.Yield(SpinYieldCycles)
	b.Lw(tmp, addrReg, 0) // test before retrying the expensive TAS
	b.Beq(tmp, isa.R0, try)
	b.J(spin)
	b.Label(got)
}

// LockRelease emits a lock release (store of zero).
func (b *Builder) LockRelease(addrReg isa.Reg) {
	prev := b.region
	b.SetRegion(isa.RegionSync)
	defer b.SetRegion(prev)
	b.Sw(isa.R0, addrReg, 0)
}

// Barrier emits a centralized sense-reversing barrier.
//
//   - baseReg holds the barrier address (from AllocBarrier)
//   - nthreadsReg holds the number of participating threads
//   - senseReg holds the thread's local sense; it must be initialized to 0
//     before first use and is flipped by this code
//   - tmp1, tmp2 are clobbered
func (b *Builder) Barrier(baseReg, nthreadsReg, senseReg, tmp1, tmp2 isa.Reg) {
	prev := b.region
	b.SetRegion(isa.RegionSync)
	defer b.SetRegion(prev)

	spin := b.uniq("bar_spin")
	last := b.uniq("bar_last")
	done := b.uniq("bar_done")

	// Flip local sense: this episode completes when the global sense
	// equals the new local sense.
	b.Xori(senseReg, senseReg, 1)

	// count++ under the barrier's lock.
	b.LockAcquire(baseReg, tmp1)
	b.Lw(tmp1, baseReg, barrierCountOff)
	b.Addi(tmp1, tmp1, 1)
	b.Sw(tmp1, baseReg, barrierCountOff)
	b.LockRelease(baseReg)

	b.Beq(tmp1, nthreadsReg, last)

	// Waiters spin until the global sense flips.
	b.Label(spin)
	b.Lw(tmp2, baseReg, barrierSenseOff)
	b.Beq(tmp2, senseReg, done)
	b.Yield(SpinYieldCycles)
	b.J(spin)

	// The last arriver resets the count and releases everyone.
	b.Label(last)
	b.Sw(isa.R0, baseReg, barrierCountOff)
	b.Sw(senseReg, baseReg, barrierSenseOff)

	b.Label(done)
}
