package prog

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestAssembleBasic(t *testing.T) {
	p, err := Assemble("t", 0x1000, 0x100000, 1<<20, `
		# sum 1..10 into r2, store at A
		.alloc A 64 64
		.word  A+4 99
		li   r1, 10
		li   r2, 0
	loop:
		add  r2, r2, r1
		addi r1, r1, -1
		bgtz r1, loop
		la   r3, A
		sw   r2, 0(r3)
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Init) != 1 || p.Init[0].Val != 99 {
		t.Errorf("init = %+v", p.Init)
	}
	// Branch target resolved to the add.
	var branch *isa.Inst
	for i := range p.Insts {
		if p.Insts[i].Op == isa.BGTZ {
			branch = &p.Insts[i]
		}
	}
	if branch == nil || p.Insts[branch.Target].Op != isa.ADD {
		t.Fatalf("branch target wrong: %+v", branch)
	}
}

func TestAssembleAllForms(t *testing.T) {
	src := `
		.alloc D 128
		.double D 2.5
		.region sync
		tas  r1, 0(r2)
		.region normal
		add r1, r2, r3
		sub r1, r2, r3
		and r1, r2, r3
		or r1, r2, r3
		xor r1, r2, r3
		slt r1, r2, r3
		sltu r1, r2, r3
		mul r1, r2, r3
		div r1, r2, r3
		rem r1, r2, r3
		divu r1, r2, r3
		sllv r1, r2, r3
		srlv r1, r2, r3
		addi r1, r2, 0x10
		andi r1, r2, 7
		ori r1, r2, 7
		xori r1, r2, 7
		slti r1, r2, -3
		sll r1, r2, 3
		srl r1, r2, 3
		sra r1, r2, 3
		lui r1, 0x1234
		move r1, r2
		lw  r1, 4(r2)
		sw  r1, -4(r2)
		fld f1, 8(r2)
		fsd f1, 8(r2)
		fadd f1, f2, f3
		fsub f1, f2, f3
		fmul f1, f2, f3
		fdivs f1, f2, f3
		fdivd f1, f2, f3
		fneg f1, f2
		fabs f1, f2
		fsqrt f1, f2
		fcvt f1, f2
		fcmplt r1, f2, f3
		fcmple r1, f2, f3
		mtc1 f1, r2
		mfc1 r1, f2
		beq r1, r2, end
		bne r1, r2, end
		blez r1, end
		bgtz r1, end
		jal sub1
		j end
	sub1:
		jr r31
	end:
		backoff 16
		switch 16
		nop
		halt
	`
	p, err := Assemble("all", 0x1000, 0x100000, 1<<20, src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[0].Op != isa.TAS || p.Insts[0].Region != isa.RegionSync {
		t.Error("sync region tagging failed")
	}
	if p.Insts[1].Region != isa.RegionNormal {
		t.Error("region restore failed")
	}
	var sawBackoff, sawSwitch bool
	for _, in := range p.Insts {
		if in.Op == isa.BACKOFF {
			sawBackoff = true
		}
		if in.Op == isa.SWITCH {
			sawSwitch = true
		}
	}
	if !sawBackoff || !sawSwitch {
		t.Error("explicit backoff/switch mnemonics not emitted")
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"frobnicate r1, r2", "unknown mnemonic"},
		{"add r1, r2", "needs 3 operands"},
		{"add r1, r2, f3", "integer register"},
		{"lw r1, r2", "memory operand"},
		{"addi r1, r2, 99999", "out of 16-bit range"},
		{"la r1, NOPE", "undefined symbol"},
		{".alloc", "usage"},
		{".alloc A 64\n.alloc A 64", "redefined"},
		{".region purple", "unknown region"},
		{".bogus 1", "unknown directive"},
		{"add r1, r2, r99", "bad register"},
		{"j nowhere\nhalt", "undefined label"},
	}
	for _, c := range cases {
		_, err := Assemble("e", 0x1000, 0x100000, 1<<20, c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("src %q: err = %v, want containing %q", c.src, err, c.want)
		}
	}
}

func TestAssembleLineNumbersInErrors(t *testing.T) {
	_, err := Assemble("e", 0x1000, 0x100000, 1<<20, "nop\nnop\nbadop r1\n")
	if err == nil || !strings.Contains(err.Error(), "e:3:") {
		t.Errorf("err = %v, want line 3", err)
	}
}

// Assembled text and builder-constructed programs must be identical.
func TestAssembleMatchesBuilder(t *testing.T) {
	asm := MustAssemble("x", 0x2000, 0x200000, 4096, `
		li r1, 5
	top:
		addi r2, r2, 3
		addi r1, r1, -1
		bgtz r1, top
		halt
	`)
	b := NewBuilder("x", 0x2000, 0x200000, 4096)
	b.Li(isa.R1, 5)
	b.Label("top")
	b.Addi(isa.R2, isa.R2, 3)
	b.Addi(isa.R1, isa.R1, -1)
	b.Bgtz(isa.R1, "top")
	b.Halt()
	ref := b.MustBuild()

	if len(asm.Insts) != len(ref.Insts) {
		t.Fatalf("lengths differ: %d vs %d", len(asm.Insts), len(ref.Insts))
	}
	for i := range asm.Insts {
		if asm.Insts[i] != ref.Insts[i] {
			t.Errorf("inst %d: %v vs %v", i, asm.Insts[i], ref.Insts[i])
		}
	}
}
