package mp

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/guard"
	"repro/internal/prog"
)

// A canceled context stops the lockstep driver at a block boundary and
// surfaces as a typed guard.canceled SimError.
func TestRunCtxCanceledStopsAtBlockBoundary(t *testing.T) {
	p := counterProgram(25, prog.YieldBackoff)
	cfg := DefaultConfig(core.Interleaved, 2)
	cfg.Processors = 2
	cfg.LimitCycles = 5_000_000

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunCtx(ctx, p, cfg)
	if res != nil || err == nil {
		t.Fatalf("canceled run returned res=%v err=%v", res, err)
	}
	se := guard.AsSimError(err)
	if se == nil || se.Op != guard.OpCanceled {
		t.Fatalf("want a %s SimError, got %v", guard.OpCanceled, err)
	}
	if !guard.IsCancellation(err) || !errors.Is(err, context.Canceled) {
		t.Errorf("cancellation error not recognized by errors.Is: %v", err)
	}
	if se.Cycle > engine.BlockCycles {
		t.Errorf("canceled at cycle %d, want <= one %d-cycle block", se.Cycle, engine.BlockCycles)
	}
}

// An attached but never-canceled context must not perturb the lockstep
// simulation: cycles, stats, and the functional-memory digest all match
// the detached Run path.
func TestRunCtxMatchesRun(t *testing.T) {
	cfg := DefaultConfig(core.Interleaved, 2)
	cfg.Processors = 2
	cfg.LimitCycles = 5_000_000

	ref, err := Run(counterProgram(25, prog.YieldBackoff), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got, err := RunCtx(ctx, counterProgram(25, prog.YieldBackoff), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Completed || !got.Completed {
		t.Fatalf("completed: ref=%v got=%v", ref.Completed, got.Completed)
	}
	if ref.Cycles != got.Cycles || ref.MemHash != got.MemHash || ref.ArchHash != got.ArchHash {
		t.Errorf("cancelable path diverged: cycles %d/%d mem %#x/%#x arch %#x/%#x",
			ref.Cycles, got.Cycles, ref.MemHash, got.MemHash, ref.ArchHash, got.ArchHash)
	}
	if !reflect.DeepEqual(ref.Stats, got.Stats) {
		t.Error("cancelable path changed the stats breakdown")
	}
}
