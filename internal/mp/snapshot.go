package mp

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/engine"
	"repro/internal/prog"
	"repro/internal/snapshot"
)

// This file checkpoints a multiprocessor run at a lockstep block
// boundary (a multiple of engine.BlockCycles) and resumes it in a
// fresh machine. Halt checks, watchdog observations and cancellation
// polls all land on block boundaries, so a resumed run replays them at
// exactly the cycles the uninterrupted run would. Thread-to-context
// bindings are fixed by construction (processor i, context c holds
// thread i·Contexts+c) and are not serialized; the per-processor
// fast-forward caches are derived state, dropped and recomputed at the
// boundary.

// Kind names the multiprocessor snapshot shape in the codec container.
const Kind = "mp"

// sectionRun tags the driver-level block ("MPR1").
const sectionRun = 0x4d505231

// ErrNotCheckpointable marks a configuration whose runs cannot be
// checkpointed: instrumented (Obs-enabled) runs carry sampling cursors
// and event traces, and SwitchWatch-observed runs a switch-event stream,
// that a fork would silently truncate.
var ErrNotCheckpointable = errors.New("mp: instrumented run cannot be checkpointed")

// ErrCompleted reports that the machine halted before reaching the
// requested checkpoint cycle, so there is nothing left to fork.
var ErrCompleted = errors.New("mp: run completed before the checkpoint cycle")

// CheckpointAtCtx simulates blocks [0, atCycle) and returns the machine
// serialized in the codec container, tagged with the caller's prefix
// fingerprint. atCycle must be a block boundary (multiple of 64) below
// the cycle limit.
func CheckpointAtCtx(ctx context.Context, p *prog.Program, cfg Config, atCycle int64, fingerprint string) ([]byte, error) {
	if atCycle < 0 || atCycle%engine.BlockCycles != 0 || atCycle >= cfg.LimitCycles {
		return nil, fmt.Errorf("mp: checkpoint cycle %d is not a block boundary below the %d-cycle limit",
			atCycle, cfg.LimitCycles)
	}
	m, err := newMachine(p, cfg)
	if err != nil {
		return nil, err
	}
	if m.col != nil || cfg.SwitchWatch != nil {
		return nil, ErrNotCheckpointable
	}
	completed, err := m.runBlocks(ctx, 0, atCycle)
	if err != nil {
		return nil, err
	}
	if completed {
		return nil, fmt.Errorf("%w (before cycle %d)", ErrCompleted, atCycle)
	}
	w := snapshot.NewWriter()
	m.saveState(w, atCycle)
	return snapshot.Encode(Kind, fingerprint, w.Bytes()), nil
}

// ResumeCtx restores a checkpoint produced by CheckpointAtCtx into a
// freshly built machine for cfg and runs it to completion, returning the
// same Result the uninterrupted run would.
func ResumeCtx(ctx context.Context, p *prog.Program, cfg Config, data []byte, fingerprint string) (*Result, error) {
	m, err := newMachine(p, cfg)
	if err != nil {
		return nil, err
	}
	if m.col != nil || cfg.SwitchWatch != nil {
		return nil, ErrNotCheckpointable
	}
	rd, err := snapshot.Decode(data, Kind, fingerprint)
	if err != nil {
		return nil, err
	}
	atCycle, err := m.restoreState(rd)
	if err != nil {
		return nil, err
	}
	completed, err := m.runBlocks(ctx, atCycle, cfg.LimitCycles)
	if err != nil {
		return nil, err
	}
	return m.result(completed), nil
}

// saveState serializes the full machine as of block boundary atCycle.
func (m *machine) saveState(w *snapshot.Writer, atCycle int64) {
	w.Section(sectionRun)
	w.I64(atCycle)
	// Shape checks: the resuming machine must have identical geometry.
	w.U8(uint8(m.cfg.Scheme))
	w.Int(m.cfg.Processors)
	w.Int(m.cfg.Contexts)
	w.I64(m.cfg.LimitCycles)

	w.I64(m.eng.NextGuard)
	w.Bool(m.eng.Watchdog != nil)
	if m.eng.Watchdog != nil {
		w.I64(m.eng.Watchdog.Window())
		lastCount, lastProgress, primed := m.eng.Watchdog.ProgressState()
		w.I64(lastCount)
		w.I64(lastProgress)
		w.Bool(primed)
	}

	for _, th := range m.threads {
		th.SaveState(w)
	}
	for _, proc := range m.procs {
		proc.SaveState(w)
	}
	m.fab.SaveState(w)
	m.fm.SaveState(w)
}

// restoreState rebuilds the machine from a payload Reader and returns
// the block boundary to resume at. Threads are already bound by
// newMachine in the fixed tid order, so only contents are restored.
func (m *machine) restoreState(rd *snapshot.Reader) (int64, error) {
	rd.Section(sectionRun)
	atCycle := rd.I64()
	rd.Expect("scheme", int64(rd.U8()), int64(m.cfg.Scheme))
	rd.Expect("processors", int64(rd.Int()), int64(m.cfg.Processors))
	rd.Expect("contexts", int64(rd.Int()), int64(m.cfg.Contexts))
	rd.Expect("cycle limit", rd.I64(), m.cfg.LimitCycles)

	m.eng.NextGuard = rd.I64()
	hadWD := rd.Bool()
	if rd.Err() == nil {
		var inSnap, inMachine int64
		if hadWD {
			inSnap = 1
		}
		if m.eng.Watchdog != nil {
			inMachine = 1
		}
		rd.Expect("watchdog presence", inSnap, inMachine)
	}
	if hadWD && m.eng.Watchdog != nil {
		rd.Expect("watchdog window", rd.I64(), m.eng.Watchdog.Window())
		lastCount := rd.I64()
		lastProgress := rd.I64()
		primed := rd.Bool()
		if rd.Err() == nil {
			m.eng.Watchdog.SetProgressState(lastCount, lastProgress, primed)
		}
	}

	for _, th := range m.threads {
		th.RestoreState(rd)
	}
	for _, proc := range m.procs {
		proc.RestoreState(rd)
	}
	m.fab.RestoreState(rd)
	m.fm.RestoreState(rd)

	if err := snapshot.Finish(rd); err != nil {
		return 0, err
	}
	if atCycle < 0 || atCycle%engine.BlockCycles != 0 || atCycle >= m.cfg.LimitCycles {
		return 0, fmt.Errorf("%w: checkpoint cycle %d is not a block boundary below the %d-cycle limit",
			snapshot.ErrMismatch, atCycle, m.cfg.LimitCycles)
	}
	return atCycle, nil
}
