package mp

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/prog"
)

// Golden lockstep-equivalence tests for the multiprocessor: the
// fast-forwarding driver (all processors jump together to the earliest
// next event) must produce byte-identical results to cycle-by-cycle
// lockstep for every scheme, with the watchdog armed and under chaos
// perturbation. Directory transactions are ordered by (cycle, processor),
// so any divergence here means a skip crossed a coherence event.

// sweepProgram is the memory-stall-heavy SPMD kernel: each thread strides
// through its own 64 KiB slice of a shared array (every load a directory
// miss at this cache size), accumulates a checksum, and stores it.
func sweepProgram(passes int) *prog.Program {
	b := prog.NewBuilder("sweep", 0x1000, 0x4000_0000, 1<<22)
	b.SetYield(prog.YieldBackoff)
	arr := b.Alloc(16*64<<10, 64)
	res := b.Alloc(256, 64)
	b.La(isa.R1, arr)
	b.Sll(isa.R11, isa.R4, 16) // tid * 64 KiB
	b.Add(isa.R1, isa.R1, isa.R11)
	b.Li(isa.R2, uint32(passes))
	b.Li(isa.R7, 0)
	b.Label("pass")
	b.Move(isa.R3, isa.R1)
	b.Li(isa.R5, (64<<10)/64)
	b.Label("loop")
	b.Lw(isa.R6, isa.R3, 0)
	b.Add(isa.R7, isa.R7, isa.R6)
	b.Sw(isa.R7, isa.R3, 32) // dirty the line: coherence ownership traffic
	b.Addi(isa.R3, isa.R3, 64)
	b.Addi(isa.R5, isa.R5, -1)
	b.Bgtz(isa.R5, "loop")
	b.Addi(isa.R2, isa.R2, -1)
	b.Bgtz(isa.R2, "pass")
	b.Sll(isa.R11, isa.R4, 2)
	b.La(isa.R10, res)
	b.Add(isa.R10, isa.R10, isa.R11)
	b.Sw(isa.R7, isa.R10, 0)
	b.Halt()
	return b.MustBuild()
}

// runPair executes cfg twice — fast-forwarding (default) and with
// NoFastForward forced through the core override — and returns both.
func runPair(t *testing.T, p *prog.Program, cfg Config) (ff, off *Result) {
	t.Helper()
	ff, err := Run(p, cfg)
	if err != nil {
		t.Fatalf("fast-forward run: %v", err)
	}
	ccfg := core.DefaultConfig(cfg.Scheme, cfg.Contexts)
	ccfg.NoFastForward = true
	offCfg := cfg
	offCfg.Core = &ccfg
	off, err = Run(p, offCfg)
	if err != nil {
		t.Fatalf("stepped run: %v", err)
	}
	return ff, off
}

func compareResults(t *testing.T, label string, ff, off *Result) {
	t.Helper()
	if ff.Cycles != off.Cycles || ff.Completed != off.Completed {
		t.Errorf("%s: cycles/completed = %d/%v fast-forwarded, %d/%v stepped",
			label, ff.Cycles, ff.Completed, off.Cycles, off.Completed)
	}
	if ff.Stats != off.Stats {
		t.Errorf("%s: aggregate stats diverge\n fast-forwarded: %+v\n stepped:        %+v",
			label, ff.Stats, off.Stats)
	}
	if !reflect.DeepEqual(ff.PerProc, off.PerProc) {
		t.Errorf("%s: per-processor stats diverge", label)
	}
	if ff.MemHash != off.MemHash {
		t.Errorf("%s: memory hash %#x fast-forwarded, %#x stepped", label, ff.MemHash, off.MemHash)
	}
	if ff.ArchHash != off.ArchHash {
		t.Errorf("%s: arch hash %#x fast-forwarded, %#x stepped", label, ff.ArchHash, off.ArchHash)
	}
}

func TestFastForwardEquivalenceMP(t *testing.T) {
	for _, tc := range []struct {
		scheme core.Scheme
		ctx    int
	}{
		{core.Single, 1},
		{core.Blocked, 2},
		{core.BlockedFast, 2},
		{core.Interleaved, 4},
		{core.FineGrained, 2},
	} {
		for _, chaos := range []int64{0, 4242} {
			label := fmt.Sprintf("%v/%dctx/chaos=%d", tc.scheme, tc.ctx, chaos)
			cfg := DefaultConfig(tc.scheme, tc.ctx)
			cfg.Processors = 4
			cfg.LimitCycles = 20_000_000
			cfg.Guard.ChaosSeed = chaos

			ff, off := runPair(t, sweepProgram(2), cfg)
			if !ff.Completed {
				t.Fatalf("%s: sweep did not complete", label)
			}
			compareResults(t, label+"/sweep", ff, off)

			yield := prog.YieldBackoff
			if tc.scheme == core.Blocked || tc.scheme == core.BlockedFast {
				yield = prog.YieldSwitch
			}
			ff, off = runPair(t, counterProgram(10, yield), cfg)
			if !ff.Completed {
				t.Fatalf("%s: counter did not complete", label)
			}
			compareResults(t, label+"/counter", ff, off)
		}
	}
}

// TestFastForwardWatchdogEquivalence: the watchdog observes progress at
// the same cadence either way, so a deadlock must trip it with an
// identical report (same trip cycle, same message) under fast-forward.
func TestFastForwardWatchdogEquivalence(t *testing.T) {
	p := deadlockProgram()
	cfg := DefaultConfig(core.Interleaved, 2)
	cfg.Processors = 2
	cfg.LimitCycles = 10_000_000

	_, ffErr := Run(p, cfg)
	ccfg := core.DefaultConfig(cfg.Scheme, cfg.Contexts)
	ccfg.NoFastForward = true
	offCfg := cfg
	offCfg.Core = &ccfg
	_, offErr := Run(p, offCfg)

	if ffErr == nil || offErr == nil {
		t.Fatalf("deadlock not caught: ff=%v stepped=%v", ffErr, offErr)
	}
	if ffErr.Error() != offErr.Error() {
		t.Errorf("watchdog reports differ:\n fast-forwarded: %v\n stepped:        %v", ffErr, offErr)
	}
}
