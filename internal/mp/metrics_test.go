package mp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
)

// Golden property of MP observability: the lagging-processor fast-forward
// driver and cycle-by-cycle lockstep must produce byte-identical metrics —
// per-processor series sampled mid-block, the cell-scope series sampled at
// block boundaries, and the merged event stream — with chaos on and off.

func marshalMetrics(t *testing.T, m *metrics.CellMetrics) []byte {
	t.Helper()
	if m == nil {
		t.Fatal("run produced no metrics")
	}
	blob, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func TestMetricsGoldenFastForwardMP(t *testing.T) {
	for _, chaos := range []int64{0, 4242} {
		label := fmt.Sprintf("chaos=%d", chaos)
		cfg := DefaultConfig(core.Interleaved, 2)
		cfg.Processors = 4
		cfg.LimitCycles = 20_000_000
		cfg.Guard.ChaosSeed = chaos
		// Not a multiple of the driver block: per-proc samples land at
		// 1000-cycle points inside blocks, the cell series rounds to 1024.
		cfg.Obs = metrics.Options{SampleEvery: 1000, Events: true}

		ff, off := runPair(t, sweepProgram(2), cfg)
		if !ff.Completed {
			t.Fatalf("%s: sweep did not complete", label)
		}
		compareResults(t, label, ff, off)
		ffBlob, offBlob := marshalMetrics(t, ff.Metrics), marshalMetrics(t, off.Metrics)
		if !bytes.Equal(ffBlob, offBlob) {
			t.Errorf("%s: metrics diverge between fast-forwarded and stepped runs\n ff:  %.400s\n off: %.400s",
				label, ffBlob, offBlob)
		}

		m := ff.Metrics
		if len(m.Procs) != cfg.Processors {
			t.Fatalf("%s: %d proc series, want %d", label, len(m.Procs), cfg.Processors)
		}
		if m.Cell == nil || len(m.Cell.Samples) == 0 {
			t.Fatalf("%s: missing cell-scope series", label)
		}
		if m.Cell.Every != 1024 {
			t.Errorf("%s: cell cadence %d, want 1024 (rounded to a driver block)", label, m.Cell.Every)
		}
		byName := map[string]int64{}
		last := m.Cell.Samples[len(m.Cell.Samples)-1]
		for i, n := range m.Cell.Names {
			byName[n] = last.Values[i]
		}
		var invals int64
		for i := 0; i < cfg.Processors; i++ {
			invals += byName[fmt.Sprintf("node%d/invalidations", i)]
		}
		if invals == 0 {
			t.Errorf("%s: sweep dirties shared lines but cell series shows no invalidations", label)
		}
		if chaos != 0 && byName["chaos/draws"] == 0 {
			t.Errorf("%s: chaos enabled but no draws sampled", label)
		}
		var missStarts, missFills int
		for _, ev := range m.Events {
			switch ev.Kind {
			case metrics.KindMissStart:
				missStarts++
			case metrics.KindMissFill:
				missFills++
			}
		}
		if missStarts == 0 || missFills == 0 {
			t.Errorf("%s: expected coherence miss events, got %d starts / %d fills", label, missStarts, missFills)
		}
	}
}

// Attaching the collector must not perturb the simulation: same cycles,
// stats and hashes as an unobserved run.
func TestMetricsDoNotPerturbMP(t *testing.T) {
	cfg := DefaultConfig(core.Blocked, 2)
	cfg.Processors = 4
	cfg.LimitCycles = 20_000_000
	cfg.Guard.ChaosSeed = 7

	plain, err := Run(sweepProgram(1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Obs = metrics.Options{SampleEvery: 512, Events: true}
	observed, err := Run(sweepProgram(1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, "observed-vs-plain", observed, plain)
	if plain.Metrics != nil {
		t.Error("unobserved run carries metrics")
	}
}
