package mp

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/guard"
	"repro/internal/isa"
	"repro/internal/prog"
)

// deadlockProgram: every thread tries to acquire the shared lock and then
// halts WITHOUT releasing it. The first winner halts holding the lock;
// every other thread spins in the acquire loop forever — a textbook
// deadlock that still retires (synchronization) instructions at full rate.
func deadlockProgram() *prog.Program {
	b := prog.NewBuilder("deadlock", 0x1000, 0x4000_0000, 1<<20)
	b.SetYield(prog.YieldBackoff)
	lock := b.AllocLock()
	b.La(isa.R16, lock)
	b.LockAcquire(isa.R16, isa.R2)
	b.Halt()
	return b.MustBuild()
}

// lockSpinRange returns the [start, end) instruction-index range of the
// acquire spin loop (lock_try up to lock_got) in p.
func lockSpinRange(t *testing.T, p *prog.Program) (int, int) {
	t.Helper()
	start, end := -1, -1
	for name, pc := range p.Labels {
		if strings.HasPrefix(name, "lock_try") {
			start = pc
		}
		if strings.HasPrefix(name, "lock_got") {
			end = pc
		}
	}
	if start < 0 || end < 0 || start >= end {
		t.Fatalf("lock labels not found: %v", p.Labels)
	}
	return start, end
}

// The watchdog must catch a deliberately deadlocked SPMD program well
// inside its cycle budget (the acceptance bar is 1/10 of LimitCycles) and
// name the stuck contexts' PCs inside the lock spin loop.
func TestWatchdogCatchesDeadlock(t *testing.T) {
	p := deadlockProgram()
	spinStart, spinEnd := lockSpinRange(t, p)

	const limit = 10_000_000
	cfg := DefaultConfig(core.Interleaved, 2)
	cfg.Processors = 2
	cfg.LimitCycles = limit
	res, err := Run(p, cfg)
	if err == nil {
		t.Fatalf("deadlock completed?! res=%+v", res)
	}
	se := guard.AsSimError(err)
	if se == nil {
		t.Fatalf("error is not a SimError: %v", err)
	}
	if se.Op != "guard.watchdog" {
		t.Fatalf("op = %q, want guard.watchdog", se.Op)
	}
	if se.Cycle <= 0 || se.Cycle >= limit/10 {
		t.Errorf("watchdog tripped at cycle %d, want (0, %d)", se.Cycle, limit/10)
	}
	if se.Diag == nil {
		t.Fatal("no diagnostic attached")
	}

	// One thread halted holding the lock; all others are parked inside the
	// acquire spin loop.
	stuck := se.Diag.StuckContexts()
	if len(stuck) != 3 {
		t.Fatalf("stuck contexts = %d, want 3 (4 threads - 1 lock holder)", len(stuck))
	}
	for _, c := range stuck {
		if c.PC < spinStart || c.PC >= spinEnd {
			t.Errorf("stuck ctx %s at pc=%d, outside the lock spin loop [%d,%d)",
				c.Thread, c.PC, spinStart, spinEnd)
		}
	}

	// The rendered report names the trip, the spinning PCs, and the
	// interconnect state: a pure spin deadlock has no directory
	// transactions in flight, and the report says so explicitly.
	text := se.Diag.String()
	for _, want := range []string{"watchdog", "ctx", "pc=", "spinning on locally cached data"} {
		if !strings.Contains(text, want) {
			t.Errorf("diagnostic missing %q:\n%s", want, text)
		}
	}
}

// Regression for the default-window truncation bug: LimitCycles/20
// truncates to zero for budgets under 20 cycles, which used to silently
// disarm the watchdog. The engine's default policy must clamp to a
// floor, while an explicit disable must still win.
func TestWatchdogDefaultFloorTinyBudget(t *testing.T) {
	cfg := DefaultConfig(core.Interleaved, 2)
	cfg.Processors = 2
	cfg.LimitCycles = 10 // 10/20 == 0 without the floor
	m, err := newMachine(deadlockProgram(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.eng.Watchdog == nil {
		t.Fatal("tiny cycle budget silently disarmed the default watchdog")
	}
	if got := m.eng.Watchdog.Window(); got != engine.MinWatchdogWindow {
		t.Errorf("window = %d, want the %d-cycle floor", got, engine.MinWatchdogWindow)
	}

	cfg.Guard.WatchdogWindow = -1
	m, err = newMachine(deadlockProgram(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.eng.Watchdog != nil {
		t.Error("explicit WatchdogWindow=-1 no longer disables the watchdog")
	}
}

// With the watchdog disabled, a stuck program must still be contained by
// LimitCycles: Run returns Completed=false and no error.
func TestLimitCyclesWithWatchdogOff(t *testing.T) {
	cfg := DefaultConfig(core.Interleaved, 2)
	cfg.Processors = 2
	cfg.LimitCycles = 100_000
	cfg.Guard.WatchdogWindow = -1
	res, err := Run(deadlockProgram(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Error("deadlocked program reported Completed")
	}
}

// Chaos fault injection must be timing-only: across seeds the final shared
// memory is byte-identical to the unperturbed run and the lock-protected
// counter is exact. Registers are NOT compared across seeds — spin-loop
// and barrier scratch registers legitimately depend on arrival order — but
// the same seed must reproduce the identical run, registers and all.
func TestChaosByteIdentityMP(t *testing.T) {
	p := counterProgram(25, prog.YieldBackoff)
	run := func(seed int64) *Result {
		cfg := DefaultConfig(core.Interleaved, 4)
		cfg.Processors = 4
		cfg.LimitCycles = 5_000_000
		cfg.Guard = guard.Options{ChaosSeed: seed}
		res, err := Run(p, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Completed {
			t.Fatalf("seed %d: did not complete", seed)
		}
		return res
	}

	ref := run(0)
	perturbedTiming := false
	for _, seed := range []int64{3, 11, 12345} {
		res := run(seed)
		if res.MemHash != ref.MemHash {
			t.Errorf("seed %d: memory hash %#x != unperturbed %#x — timing leaked into functional state",
				seed, res.MemHash, ref.MemHash)
		}
		if got := res.Mem.LoadW(counterAddr); got != 16*25 {
			t.Errorf("seed %d: counter = %d, want %d", seed, got, 16*25)
		}
		if res.Cycles != ref.Cycles {
			perturbedTiming = true
		}

		// Determinism of the fault injection itself: the same seed twice is
		// the same run, down to every register.
		again := run(seed)
		if again.ArchHash != res.ArchHash || again.Cycles != res.Cycles {
			t.Errorf("seed %d not reproducible: arch %#x/%#x cycles %d/%d",
				seed, res.ArchHash, again.ArchHash, res.Cycles, again.Cycles)
		}
	}
	if !perturbedTiming {
		t.Error("chaos never changed execution time — fault injection is not reaching the fabric")
	}
}

// Invariant checking enabled on a healthy run must pass and not change
// results; on the watchdog error path the SimError chain must expose the
// typed error through errors.As.
func TestInvariantChecksCleanRun(t *testing.T) {
	p := counterProgram(10, prog.YieldBackoff)
	base := DefaultConfig(core.Interleaved, 2)
	base.Processors = 2
	base.LimitCycles = 2_000_000

	plain, err := Run(p, base)
	if err != nil {
		t.Fatal(err)
	}
	checked := base
	checked.Guard = guard.Options{CheckInvariants: true, CheckEvery: 512}
	res, err := Run(p, checked)
	if err != nil {
		t.Fatalf("invariant checking failed a healthy run: %v", err)
	}
	if res.ArchHash != plain.ArchHash || res.Cycles != plain.Cycles {
		t.Error("enabling invariant checks changed simulation results")
	}

	wedged := base
	wedged.LimitCycles = 10_000_000
	_, err = Run(deadlockProgram(), wedged)
	var se *guard.SimError
	if !errors.As(err, &se) {
		t.Fatalf("errors.As failed on %v", err)
	}
}
