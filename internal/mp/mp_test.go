package mp

import (
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/prog"
)

// counterProgram: every thread increments a shared counter reps times
// under a spin lock, then meets at a barrier and halts. The final counter
// value proves mutual exclusion end-to-end through the coherence fabric.
func counterProgram(reps int, yield prog.YieldMode) *prog.Program {
	b := prog.NewBuilder("counter", 0x1000, 0x4000_0000, 1<<20)
	b.SetYield(yield)
	lock := b.AllocLock()
	counter := b.Alloc(64, 64)
	bar := b.AllocBarrier()

	b.La(isa.R6, bar)
	b.Li(isa.R7, 0)
	b.La(isa.R16, lock)
	b.La(isa.R17, counter)
	b.Li(isa.R20, uint32(reps))
	b.Label("loop")
	b.LockAcquire(isa.R16, isa.R2)
	b.Lw(isa.R9, isa.R17, 0)
	b.Addi(isa.R9, isa.R9, 1)
	b.Sw(isa.R9, isa.R17, 0)
	b.LockRelease(isa.R16)
	b.Addi(isa.R20, isa.R20, -1)
	b.Bgtz(isa.R20, "loop")
	b.Barrier(isa.R6, isa.R5, isa.R7, isa.R2, isa.R3)
	b.Halt()
	return b.MustBuild()
}

const counterAddr = 0x4000_0040 // first 64-byte slot after the lock

func TestMutualExclusionAcrossNodes(t *testing.T) {
	for _, tc := range []struct {
		scheme core.Scheme
		ctx    int
	}{
		{core.Single, 1},
		{core.Blocked, 2},
		{core.Interleaved, 4},
	} {
		cfg := DefaultConfig(tc.scheme, tc.ctx)
		cfg.Processors = 4
		cfg.LimitCycles = 5_000_000
		p := counterProgram(25, prog.YieldBackoff)
		res, err := Run(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("%v/%d did not complete", tc.scheme, tc.ctx)
		}
		want := uint32(4 * tc.ctx * 25)
		if got := res.Mem.LoadW(counterAddr); got != want {
			t.Errorf("%v/%d: counter = %d, want %d (mutual exclusion violated)",
				tc.scheme, tc.ctx, got, want)
		}
		if res.Threads != 4*tc.ctx {
			t.Fatalf("threads = %d", res.Threads)
		}
	}
}

func TestCounterValueExact(t *testing.T) {
	// White-box variant: run manually so we can read functional memory.
	p := counterProgram(25, prog.YieldBackoff)
	cfg := DefaultConfig(core.Interleaved, 4)
	cfg.Processors = 4
	cfg.LimitCycles = 5_000_000
	res, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("did not complete")
	}
	got := res.Mem.LoadW(counterAddr)
	want := uint32(16 * 25)
	if got != want {
		t.Errorf("counter = %d, want %d (mutual exclusion violated)", got, want)
	}
}

func TestBarrierRankSequence(t *testing.T) {
	// Each thread writes its step number into a private slot every
	// step; after a barrier no thread may be more than one step ahead.
	// Completion itself proves no thread escaped the barrier early (a
	// broken barrier deadlocks or completes with a garbled counter).
	p := counterProgram(10, prog.YieldBackoff)
	cfg := DefaultConfig(core.Blocked, 2)
	cfg.Processors = 2
	cfg.LimitCycles = 5_000_000
	res, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("did not complete")
	}
	if got := res.Mem.LoadW(counterAddr); got != 40 {
		t.Errorf("counter = %d, want 40", got)
	}
}

func TestExecutionTimeRecorded(t *testing.T) {
	p := counterProgram(5, prog.YieldBackoff)
	cfg := DefaultConfig(core.Single, 1)
	cfg.Processors = 2
	cfg.LimitCycles = 1_000_000
	res, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Cycles <= 0 {
		t.Fatalf("res = %+v", res)
	}
	if len(res.PerProc) != 2 {
		t.Errorf("per-proc stats = %d", len(res.PerProc))
	}
	var slots int64
	for _, s := range res.Stats.Slots {
		slots += s
	}
	if slots != res.Stats.Cycles {
		t.Error("aggregate slot conservation violated")
	}
}

func TestLimitEnforced(t *testing.T) {
	p := counterProgram(100000, prog.YieldBackoff)
	cfg := DefaultConfig(core.Single, 1)
	cfg.Processors = 2
	cfg.LimitCycles = 2_000
	res, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Error("impossibly fast completion")
	}
}

func TestConfigErrors(t *testing.T) {
	p := counterProgram(1, prog.YieldNone)
	bad := DefaultConfig(core.Single, 1)
	bad.Processors = 0
	if _, err := Run(p, bad); err == nil {
		t.Error("zero processors accepted")
	}
	bad = DefaultConfig(core.Single, 1)
	bad.Contexts = 0
	if _, err := Run(p, bad); err == nil {
		t.Error("zero contexts accepted")
	}
}

// Odd context counts: work splits leave remainders, but every thread must
// still synchronize and halt.
func TestOddContextCounts(t *testing.T) {
	p := counterProgram(10, prog.YieldBackoff)
	cfg := DefaultConfig(core.Interleaved, 3)
	cfg.Processors = 3
	cfg.LimitCycles = 5_000_000
	res, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Threads != 9 {
		t.Fatalf("completed=%v threads=%d", res.Completed, res.Threads)
	}
	if got := res.Mem.LoadW(counterAddr); got != 90 {
		t.Errorf("counter = %d, want 90", got)
	}
}
