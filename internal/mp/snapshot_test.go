package mp

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/guard"
	"repro/internal/prog"
	"repro/internal/snapshot"
)

// mpResultEqual compares everything but the pointer-bearing diagnostic
// and memory fields (Mem and ThreadState are compared through their
// hashes, which fold in every word and register).
func mpResultEqual(t *testing.T, got, want *Result) {
	t.Helper()
	if got.Cycles != want.Cycles {
		t.Errorf("Cycles = %d, want %d", got.Cycles, want.Cycles)
	}
	if got.Completed != want.Completed {
		t.Errorf("Completed = %v, want %v", got.Completed, want.Completed)
	}
	if got.MemHash != want.MemHash {
		t.Errorf("MemHash = %#x, want %#x", got.MemHash, want.MemHash)
	}
	if got.ArchHash != want.ArchHash {
		t.Errorf("ArchHash = %#x, want %#x", got.ArchHash, want.ArchHash)
	}
	if got.Stats != want.Stats {
		t.Errorf("aggregate Stats differ:\n got %+v\nwant %+v", got.Stats, want.Stats)
	}
	for i := range want.PerProc {
		if got.PerProc[i] != want.PerProc[i] {
			t.Errorf("proc %d Stats differ", i)
		}
	}
}

// TestMPForkEquivalence: restoring at random lockstep block boundaries
// must reproduce the uninterrupted run exactly — cycles, stats, memory
// and architectural hashes — for every scheme, with and without chaos.
func TestMPForkEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range []struct {
		scheme core.Scheme
		ctxs   int
	}{
		{core.Single, 1},
		{core.Blocked, 2},
		{core.BlockedFast, 2},
		{core.Interleaved, 4},
		{core.FineGrained, 4},
	} {
		for _, chaos := range []bool{false, true} {
			name := tc.scheme.String()
			if chaos {
				name += "/chaos"
			}
			t.Run(name, func(t *testing.T) {
				p := counterProgram(10, prog.YieldBackoff)
				cfg := DefaultConfig(tc.scheme, tc.ctxs)
				cfg.Processors = 4
				cfg.LimitCycles = 5_000_000
				if chaos {
					cfg.Guard = guard.Options{ChaosSeed: 42, ChaosSkew: 2}
				}
				want, err := Run(p, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !want.Completed {
					t.Fatal("reference run did not complete")
				}
				// Boundaries inside the run: the machine completes at
				// want.Cycles, so any earlier block boundary is live.
				blocks := want.Cycles / engine.BlockCycles
				if blocks < 2 {
					t.Skip("run too short to fork")
				}
				for trial := 0; trial < 3; trial++ {
					at := (1 + rng.Int63n(blocks-1)) * engine.BlockCycles
					ckpt, err := CheckpointAtCtx(context.Background(), p, cfg, at, "fp")
					if err != nil {
						t.Fatal(err)
					}
					got, err := ResumeCtx(context.Background(), p, cfg, ckpt, "fp")
					if err != nil {
						t.Fatal(err)
					}
					mpResultEqual(t, got, want)
				}
			})
		}
	}
}

// TestMPCheckpointRejection: typed errors for corrupt bytes, mismatched
// fingerprints, wrong shapes, and unusable checkpoint cycles.
func TestMPCheckpointRejection(t *testing.T) {
	p := counterProgram(10, prog.YieldBackoff)
	cfg := DefaultConfig(core.Interleaved, 2)
	cfg.Processors = 2
	cfg.LimitCycles = 5_000_000
	ckpt, err := CheckpointAtCtx(context.Background(), p, cfg, 10*engine.BlockCycles, "fp")
	if err != nil {
		t.Fatal(err)
	}

	bad := append([]byte(nil), ckpt...)
	bad[len(bad)/3] ^= 0x08
	if _, err := ResumeCtx(context.Background(), p, cfg, bad, "fp"); !errors.Is(err, snapshot.ErrCorrupt) {
		t.Errorf("corrupted: err = %v, want ErrCorrupt", err)
	}
	if _, err := ResumeCtx(context.Background(), p, cfg, ckpt, "other"); !errors.Is(err, snapshot.ErrMismatch) {
		t.Errorf("wrong fingerprint: err = %v, want ErrMismatch", err)
	}
	other := cfg
	other.Scheme = core.Blocked
	if _, err := ResumeCtx(context.Background(), p, other, ckpt, "fp"); !errors.Is(err, snapshot.ErrCorrupt) {
		t.Errorf("wrong scheme: err = %v, want ErrCorrupt (shape check)", err)
	}

	if _, err := CheckpointAtCtx(context.Background(), p, cfg, 63, "fp"); err == nil {
		t.Error("non-boundary checkpoint cycle accepted")
	}
	if _, err := CheckpointAtCtx(context.Background(), p, cfg, cfg.LimitCycles, "fp"); err == nil {
		t.Error("checkpoint at the cycle limit accepted")
	}
	done, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	past := (done.Cycles/engine.BlockCycles + 10) * engine.BlockCycles
	if _, err := CheckpointAtCtx(context.Background(), p, cfg, past, "fp"); !errors.Is(err, ErrCompleted) {
		t.Errorf("checkpoint past completion: err = %v, want ErrCompleted", err)
	}
}

// TestMPObsNotCheckpointable: instrumented and switch-watched runs must
// refuse to checkpoint.
func TestMPObsNotCheckpointable(t *testing.T) {
	p := counterProgram(5, prog.YieldBackoff)
	cfg := DefaultConfig(core.Interleaved, 2)
	cfg.Processors = 2
	cfg.LimitCycles = 1_000_000
	cfg.Obs.SampleEvery = 1024
	if _, err := CheckpointAtCtx(context.Background(), p, cfg, engine.BlockCycles, "fp"); !errors.Is(err, ErrNotCheckpointable) {
		t.Errorf("observed run: err = %v, want ErrNotCheckpointable", err)
	}
	cfg.Obs.SampleEvery = 0
	cfg.SwitchWatch = func(*core.Processor, int, int64) {}
	if _, err := CheckpointAtCtx(context.Background(), p, cfg, engine.BlockCycles, "fp"); !errors.Is(err, ErrNotCheckpointable) {
		t.Errorf("switch-watched run: err = %v, want ErrNotCheckpointable", err)
	}
}
