// Package mp simulates the paper's multiprocessor (§5.2): N nodes, each a
// multiple-context processor with a private coherent data cache, stepped
// in lockstep over the shared directory fabric. Applications are SPMD
// programs whose threads receive their id and thread count in registers.
package mp

import (
	"context"
	"fmt"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/guard"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/prog"
)

// Registers through which SPMD kernels receive their identity.
const (
	// TidReg holds the thread id (0-based).
	TidReg = isa.R4
	// NThreadsReg holds the total thread count.
	NThreadsReg = isa.R5
)

// Config parameterizes a multiprocessor run.
type Config struct {
	Processors int
	Scheme     core.Scheme
	Contexts   int // hardware contexts per processor

	Coherence coherence.Params
	// Core, if non-nil, overrides the derived per-processor core config.
	Core *core.Config

	// LimitCycles bounds the run; exceeded means Result.Completed false.
	LimitCycles int64

	// Guard is the hardening configuration: watchdog, invariant checking,
	// fault injection. The zero value arms the watchdog at the default
	// policy (LimitCycles/20) with everything else off.
	Guard guard.Options

	// Obs configures the observability layer (counter sampling and the
	// structured event trace); the zero value disables it entirely.
	Obs metrics.Options

	// SwitchWatch, if set, observes every context switch on every
	// processor: the processor whose context is switching away, the
	// context index, and the cycle. The lockstep driver steps processors
	// in (cycle, processor index) order, so the callback sequence is
	// deterministic for a given program and config. Used by differential
	// testing to hash architectural state at switch points.
	SwitchWatch func(p *core.Processor, ctx int, now int64)
}

// DefaultConfig returns the paper's 8-node multiprocessor with the given
// scheme and context count.
func DefaultConfig(s core.Scheme, contexts int) Config {
	return Config{
		Processors:  8,
		Scheme:      s,
		Contexts:    contexts,
		Coherence:   coherence.DefaultParams(),
		LimitCycles: 50_000_000,
	}
}

// Result reports a completed run.
type Result struct {
	Cycles    int64 // execution time: the cycle the last thread halted
	Completed bool
	// Diag is the machine-state dump taken at the cycle limit when the run
	// did not complete, so grid drivers can report where an over-budget
	// cell was wedged — not just that it ran long. Nil on completed runs.
	Diag    *guard.Diagnostic
	Stats   core.Stats   // aggregate over processors
	PerProc []core.Stats // per-processor breakdowns
	Threads int
	// Mem is the final shared functional memory, for checking results.
	Mem *mem.Memory
	// MemHash digests the final shared memory alone. For every data-race-
	// free program it is byte-identical across chaos perturbations: timing
	// faults must never leak into memory results. (Apps marked Racy, like
	// mp3d's unsynchronized cell scatter, are exempt by construction.)
	MemHash uint64
	// ArchHash additionally folds in every thread's registers, PC and halt
	// state — the strictest identity. Spin-loop scratch registers (backoff
	// counters, last-observed lock words) are legitimately timing-dependent
	// in lock-based apps, so chaos tests assert ArchHash only on workloads
	// whose final register state is deterministic.
	ArchHash uint64
	// Metrics is the observability record, nil unless Config.Obs enables
	// instrumentation.
	Metrics *metrics.CellMetrics
	// ThreadState exposes the final per-thread architectural state in tid
	// order, for oracles that need finer-grained digests than ArchHash
	// (e.g. register hashes that exclude spin-loop scratch registers).
	ThreadState []*core.Thread
}

// Run executes program p as an SPMD application with Processors×Contexts
// threads. The program's initial data is loaded once into the shared
// functional memory; every thread starts at instruction 0 with TidReg and
// NThreadsReg set.
func Run(p *prog.Program, cfg Config) (*Result, error) {
	return RunCtx(context.Background(), p, cfg)
}

// RunCtx is Run with cooperative cancellation: when ctx can be canceled
// the lockstep driver additionally polls ctx.Done() at its existing
// 64-cycle block boundaries, so a first-error cancel or a SIGINT/SIGTERM
// drain stops the machine within one block instead of after LimitCycles.
// The canceled run returns a guard.OpCanceled SimError wrapping
// ctx.Err(); a background/detached context (Done() == nil) skips the
// poll entirely, leaving the hot loop's cost and the fast-forward
// goldens untouched.
func RunCtx(ctx context.Context, p *prog.Program, cfg Config) (*Result, error) {
	m, err := newMachine(p, cfg)
	if err != nil {
		return nil, err
	}
	completed, err := m.runBlocks(ctx, 0, cfg.LimitCycles)
	if err != nil {
		return nil, err
	}
	return m.result(completed), nil
}

// procRunner is the per-processor driver state: until is the cached
// NextEvent horizon (zero forces a recompute on first touch), (cls, ctx)
// the charge for the processor's current boring region. The caches are
// derived state — at a block boundary every processor is settled to the
// boundary cycle and a recompute yields the identical classification —
// so checkpoints drop them.
type procRunner struct {
	proc  *core.Processor
	until int64
	cls   core.SlotClass
	ctx   int
}

// machine is one fully constructed multiprocessor plus the lockstep
// driver's bookkeeping. RunCtx drives it from cycle 0 to completion; the
// checkpoint entry points (snapshot.go) drive the same block loop in two
// halves.
type machine struct {
	cfg  Config
	ccfg core.Config

	fab     *coherence.Fabric
	fm      *mem.Memory
	procs   []*core.Processor
	threads []*core.Thread

	col *metrics.Collector
	// eng is the shared block-stepping engine (internal/engine): it owns
	// the lockstep block loop — halt checks, watchdog observations,
	// invariant checks, cancellation polls and cell samples at 64-cycle
	// block boundaries — while this driver supplies the per-block
	// advancer and the diagnostic hooks.
	eng *engine.Engine

	runners []procRunner
}

func newMachine(p *prog.Program, cfg Config) (*machine, error) {
	if cfg.Processors < 1 {
		return nil, fmt.Errorf("mp: need at least one processor")
	}
	if cfg.Contexts < 1 {
		return nil, fmt.Errorf("mp: need at least one context per processor")
	}
	ccfg := core.DefaultConfig(cfg.Scheme, cfg.Contexts)
	if cfg.Core != nil {
		ccfg = *cfg.Core
	}
	if cfg.Coherence.Chaos == nil {
		cfg.Coherence.Chaos = cfg.Guard.NewChaos()
	}
	fab, err := coherence.NewFabric(cfg.Coherence, cfg.Processors)
	if err != nil {
		return nil, err
	}

	fm := mem.New()
	p.LoadInit(fm)

	m := &machine{cfg: cfg, ccfg: ccfg, fab: fab, fm: fm}

	nThreads := cfg.Processors * cfg.Contexts
	m.procs = make([]*core.Processor, cfg.Processors)
	m.col = metrics.NewCollector(cfg.Obs, cfg.Processors)
	for i := range m.procs {
		proc, err := core.NewProcessor(ccfg, fab.Node(i), fm)
		if err != nil {
			return nil, err
		}
		proc.ID = i
		m.procs[i] = proc
		if watch := cfg.SwitchWatch; watch != nil {
			self := proc
			proc.SwitchWatch = func(now int64, ctx int) { watch(self, ctx, now) }
		}
		proc.AttachMetrics(m.col.Proc(i))
		fab.Node(i).AttachMetrics(m.col.Proc(i))
		for c := 0; c < cfg.Contexts; c++ {
			tid := i*cfg.Contexts + c
			th := core.NewThread(fmt.Sprintf("%s.t%d", p.Name, tid), p)
			th.SetIntReg(TidReg, uint32(tid))
			th.SetIntReg(NThreadsReg, uint32(nThreads))
			proc.BindThread(c, th)
			m.threads = append(m.threads, th)
		}
	}

	// Hardening: the watchdog defaults to engine.DefaultWatchdogWindow
	// (LimitCycles/20, floored at a minimum window) — a wedged run is
	// reported within 5% of its cycle budget, with a diagnostic, instead
	// of silently burning the remaining 95% and returning
	// Completed=false.
	m.eng = &engine.Engine{
		Halted:     m.allHalted,
		HaltEvery:  engine.BlockCycles,
		Watchdog:   guard.NewWatchdog(cfg.Guard.ResolveWatchdog(engine.DefaultWatchdogWindow(cfg.LimitCycles))),
		Progress:   m.progress,
		GuardEvery: cfg.Guard.CheckCadence(),
		Describe:   m.describe,
		OnCancel: func(now int64) {
			if pm := m.col.Proc(0); pm != nil && pm.Sink != nil {
				pm.Sink.Emit(metrics.Event{Cycle: now, Kind: metrics.KindDrain, Ctx: -1})
			}
		},
	}
	if cfg.Guard.InvariantsOn() {
		for _, proc := range m.procs {
			m.eng.Checkers = append(m.eng.Checkers, proc)
		}
		m.eng.Checkers = append(m.eng.Checkers, m.fab)
	}

	// Cell-scope observability: counters mutated across processors must not
	// be sampled from inside any one processor's timeline — under fast-
	// forward a node's invalidation count at an intermediate cycle depends
	// on how far the OTHER processors have advanced within the block. They
	// are sampled here instead, at block boundaries, where advanceBlock has
	// settled every processor to exactly the same cycle in both run modes.
	// The cadence is the configured period rounded up to a whole block.
	if m.col != nil {
		cellReg := m.col.CellRegistry()
		for i := 0; i < cfg.Processors; i++ {
			cellReg.Register(fmt.Sprintf("node%d/invalidations", i), &fab.Node(i).Stats.Invalidations)
		}
		if ch := cfg.Coherence.Chaos; ch != nil {
			cellReg.Register("chaos/draws", &ch.Draws)
		}
		cellReg.Register("watchdog/arms", &m.eng.Arms)
		cellReg.Register("watchdog/trips", &m.eng.Trips)
		if every := m.col.SampleEvery(); every > 0 {
			cellEvery := (every + engine.BlockCycles - 1) / engine.BlockCycles * engine.BlockCycles
			m.col.SetCellCadence(cellEvery)
			m.eng.Sample = m.col.SampleCell
			m.eng.SampleEvery = cellEvery
		}
	}

	// Per-processor driver state lives in one struct so the hot loop walks
	// a single contiguous slice.
	m.runners = make([]procRunner, len(m.procs))
	for i, proc := range m.procs {
		m.runners[i].proc = proc
	}

	// A single scan per global cycle both classifies and steps, walking
	// processors in index order. The lockstep driver exploits a property
	// of the fast-forward engine's boring regions: a processor's cached
	// NextEvent stays valid while OTHER processors execute, because
	// cross-processor traffic mutates only coherence-node state, which
	// reaches a core exclusively through its own accesses — and a boring
	// processor makes none. So a stalled processor is simply left lagging
	// behind the global clock and caught up with a single bulk charge when
	// its event arrives (or at the block boundary), costing O(1) per stall
	// region instead of O(cycles). Processors due to act are stepped in
	// index order at the global cycle, exactly as in full lockstep. The
	// 64-cycle block structure is kept so halt checks and watchdog
	// observations happen at exactly the same cycles as cycle-by-cycle
	// stepping, making fast-forward ON vs OFF results byte-identical.
	//
	// Stepping processor j before classifying processor i > j is safe on a
	// pull-based memory system (the only kind the fabric is): NextEvent
	// reads purely processor-local state, and cross-processor traffic
	// reaches a core only through its own accesses, so the classification
	// is independent of its position relative to other processors' steps
	// in the same cycle — while the steps themselves retain the lockstep
	// (cycle, processor index) order.
	//
	// The block advancer comes in two copies selected once per run, NOT as
	// one copy with per-skip `if observed` branches: this loop is the
	// hottest code in the multiprocessor simulator, and even a perfectly
	// predicted dispatch branch at the two skip sites costs measurable
	// throughput (it also pressures the inlining of SkipTo, which is
	// budgeted to inline here — see core.SkipTo's contract). The copies
	// must stay structurally identical; the observed one only swaps
	// SkipTo for ObservedSkipTo so skipped regions land in the event
	// trace and counter series. The MP fast-forward golden tests compare
	// the two modes byte-for-byte and catch any drift between the copies.
	runners := m.runners
	advancePlain := func(start, end int64) {
		for now := start; now < end; {
			target := end
			stepped := false
			for i := range runners {
				r := &runners[i]
				if r.until <= now {
					// Settle any lag [proc clock, now) in one skip; the
					// cached (cls, ctx) charge is constant over the whole
					// boring region.
					if r.proc.Now() < now {
						r.proc.SkipTo(now, r.cls, r.ctx)
					}
					r.cls, r.ctx, r.until = r.proc.NextEvent()
					if r.until <= now {
						// Real work this cycle; the stale until forces a
						// fresh classification next cycle.
						r.proc.Step()
						stepped = true
						continue
					}
				}
				if r.until < target {
					target = r.until
				}
			}
			if stepped {
				now++
				continue
			}
			// Everyone is boring until target: jump the clock. The lagging
			// processors are not advanced here — their regions may extend
			// past target, and the catch-up charges the whole span at once.
			now = target
		}
		for i := range runners {
			r := &runners[i]
			if r.proc.Now() < end {
				r.proc.SkipTo(end, r.cls, r.ctx)
			}
		}
	}
	advanceObserved := func(start, end int64) {
		for now := start; now < end; {
			target := end
			stepped := false
			for i := range runners {
				r := &runners[i]
				if r.until <= now {
					if r.proc.Now() < now {
						r.proc.ObservedSkipTo(now, r.cls, r.ctx)
					}
					r.cls, r.ctx, r.until = r.proc.NextEvent()
					if r.until <= now {
						r.proc.Step()
						stepped = true
						continue
					}
				}
				if r.until < target {
					target = r.until
				}
			}
			if stepped {
				now++
				continue
			}
			now = target
		}
		for i := range runners {
			r := &runners[i]
			if r.proc.Now() < end {
				r.proc.ObservedSkipTo(end, r.cls, r.ctx)
			}
		}
	}
	adv := advancePlain
	if m.col != nil {
		adv = advanceObserved
	}
	// Lockstep blocks always run to a full boundary (HaltEvery), so the
	// advancer settles every processor at exactly target in both run
	// modes.
	m.eng.Advance = func(now, target int64) int64 {
		adv(now, target)
		return target
	}
	return m, nil
}

// allHalted reports whether every thread on every processor has halted —
// the engine's per-block halt check.
func (m *machine) allHalted() bool {
	for _, proc := range m.procs {
		if !proc.AllHalted() {
			return false
		}
	}
	return true
}

// progress feeds the engine's watchdog: machine-wide useful issue slots.
func (m *machine) progress() int64 {
	var p int64
	for _, proc := range m.procs {
		p += proc.UsefulProgress()
	}
	return p
}

// runBlocks drives lockstep blocks from cycle start (a block boundary)
// until the machine halts or cycle limit is reached, returning whether
// every thread halted. Cycle indices are absolute, so a run resumed from
// a checkpoint observes the watchdog, samples cells and polls
// cancellation at the exact cycles the uninterrupted run would.
//
// The loop itself is the shared engine: cancellation is observed between
// blocks — one nil test per 64 simulated cycles when detached, never
// inside the advancers — so the hot loop stays branch-free per cycle and
// a canceled cell stops within one block of the cancellation.
func (m *machine) runBlocks(ctx context.Context, start, limit int64) (bool, error) {
	return m.eng.Run(ctx, start, limit)
}

// result assembles the Result after the final block.
func (m *machine) result(completed bool) *Result {
	res := &Result{
		Completed:   completed,
		Threads:     m.cfg.Processors * m.cfg.Contexts,
		Mem:         m.fm,
		ThreadState: m.threads,
	}
	if !completed {
		res.Diag = m.budgetDiagnostic()
	}
	res.MemHash = m.fm.Hash()
	res.ArchHash = res.MemHash
	for _, th := range m.threads {
		res.ArchHash = th.HashArchState(res.ArchHash)
	}
	for _, th := range m.threads {
		if th.HaltedAt+1 > res.Cycles {
			res.Cycles = th.HaltedAt + 1
		}
	}
	for _, proc := range m.procs {
		res.PerProc = append(res.PerProc, proc.Stats)
		res.Stats.Add(&proc.Stats)
	}
	res.Metrics = m.col.Result()
	return res
}

// machineHash digests the whole multiprocessor — every processor's
// per-layer hash plus the shared coherence fabric (caches, directory,
// pending misses) — into one diagnostic digest.
func machineHash(procs []*core.Processor, fab *coherence.Fabric) uint64 {
	layers := make([]uint64, 0, len(procs)+1)
	for _, proc := range procs {
		layers = append(layers, proc.MachineHash())
	}
	layers = append(layers, fab.Hash())
	return guard.MachineHash(layers...)
}

// budgetDiagnostic assembles the same machine-state dump as a watchdog
// trip for a run that exhausted LimitCycles while still making progress.
func (m *machine) budgetDiagnostic() *guard.Diagnostic {
	d := &guard.Diagnostic{
		Reason: fmt.Sprintf("cycle budget: %d cycles elapsed before all threads halted", m.cfg.LimitCycles),
		Cycle:  m.cfg.LimitCycles,
	}
	m.fillDiag(d)
	return d
}

// describe fills the driver-specific fields of the engine's watchdog
// trip report: every processor's per-context position, the directory
// state of the lines with transactions in flight, and the
// deadlock-vs-livelock note.
func (m *machine) describe(d *guard.Diagnostic) {
	m.fillDiag(d)
	if len(d.Lines) == 0 {
		// Distinguishes software deadlock from protocol livelock: spinning
		// on a held lock hits the local cache, so nothing is in flight.
		d.Notes = append(d.Notes,
			"no directory transactions in flight: contexts are spinning on locally cached data (software deadlock), not stuck in the protocol")
	}
}

// fillDiag adds the machine-state dump shared by every mp diagnostic.
func (m *machine) fillDiag(d *guard.Diagnostic) {
	d.Scheme = m.cfg.Scheme.String()
	d.Lines = m.fab.HotLines(16)
	d.MachineHash = machineHash(m.procs, m.fab)
	for _, proc := range m.procs {
		d.Procs = append(d.Procs, proc.Snapshot())
	}
}
