// Package mp simulates the paper's multiprocessor (§5.2): N nodes, each a
// multiple-context processor with a private coherent data cache, stepped
// in lockstep over the shared directory fabric. Applications are SPMD
// programs whose threads receive their id and thread count in registers.
package mp

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/prog"
)

// Registers through which SPMD kernels receive their identity.
const (
	// TidReg holds the thread id (0-based).
	TidReg = isa.R4
	// NThreadsReg holds the total thread count.
	NThreadsReg = isa.R5
)

// Config parameterizes a multiprocessor run.
type Config struct {
	Processors int
	Scheme     core.Scheme
	Contexts   int // hardware contexts per processor

	Coherence coherence.Params
	// Core, if non-nil, overrides the derived per-processor core config.
	Core *core.Config

	// LimitCycles bounds the run; exceeded means Result.Completed false.
	LimitCycles int64
}

// DefaultConfig returns the paper's 8-node multiprocessor with the given
// scheme and context count.
func DefaultConfig(s core.Scheme, contexts int) Config {
	return Config{
		Processors:  8,
		Scheme:      s,
		Contexts:    contexts,
		Coherence:   coherence.DefaultParams(),
		LimitCycles: 50_000_000,
	}
}

// Result reports a completed run.
type Result struct {
	Cycles    int64 // execution time: the cycle the last thread halted
	Completed bool
	Stats     core.Stats   // aggregate over processors
	PerProc   []core.Stats // per-processor breakdowns
	Threads   int
	// Mem is the final shared functional memory, for checking results.
	Mem *mem.Memory
}

// Run executes program p as an SPMD application with Processors×Contexts
// threads. The program's initial data is loaded once into the shared
// functional memory; every thread starts at instruction 0 with TidReg and
// NThreadsReg set.
func Run(p *prog.Program, cfg Config) (*Result, error) {
	if cfg.Processors < 1 {
		return nil, fmt.Errorf("mp: need at least one processor")
	}
	if cfg.Contexts < 1 {
		return nil, fmt.Errorf("mp: need at least one context per processor")
	}
	ccfg := core.DefaultConfig(cfg.Scheme, cfg.Contexts)
	if cfg.Core != nil {
		ccfg = *cfg.Core
	}
	fab, err := coherence.NewFabric(cfg.Coherence, cfg.Processors)
	if err != nil {
		return nil, err
	}

	fm := mem.New()
	p.LoadInit(fm)

	nThreads := cfg.Processors * cfg.Contexts
	procs := make([]*core.Processor, cfg.Processors)
	var threads []*core.Thread
	for i := range procs {
		proc, err := core.NewProcessor(ccfg, fab.Node(i), fm)
		if err != nil {
			return nil, err
		}
		procs[i] = proc
		for c := 0; c < cfg.Contexts; c++ {
			tid := i*cfg.Contexts + c
			th := core.NewThread(fmt.Sprintf("%s.t%d", p.Name, tid), p)
			th.SetIntReg(TidReg, uint32(tid))
			th.SetIntReg(NThreadsReg, uint32(nThreads))
			proc.BindThread(c, th)
			threads = append(threads, th)
		}
	}

	// Lockstep execution until every thread halts.
	const checkEvery = 64
	completed := false
	for cycle := int64(0); cycle < cfg.LimitCycles; cycle += checkEvery {
		for s := 0; s < checkEvery; s++ {
			for _, proc := range procs {
				proc.Step()
			}
		}
		done := true
		for _, proc := range procs {
			if !proc.AllHalted() {
				done = false
				break
			}
		}
		if done {
			completed = true
			break
		}
	}

	res := &Result{Completed: completed, Threads: nThreads, Mem: fm}
	for _, th := range threads {
		if th.HaltedAt+1 > res.Cycles {
			res.Cycles = th.HaltedAt + 1
		}
	}
	for _, proc := range procs {
		res.PerProc = append(res.PerProc, proc.Stats)
		res.Stats.Add(&proc.Stats)
	}
	return res, nil
}
