package apps

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/prog"
)

// Li models the SPEC89 Lisp interpreter: pointer chasing through a heap of
// cons cells plus a large, branchy dispatch body — big instruction
// footprint (IC workload) with small, irregular data.
func Li() Kernel {
	return Kernel{Name: "li", Build: func(o Options) *prog.Program {
		o = o.normalize()
		const nodes = 1024
		const nodeBytes = 16
		b := newBuilder("li", o)
		heap := b.Alloc(nodes*nodeBytes, 64)
		scratch := b.Alloc(4096, 64) // dispatch-phase workspace: never the heap
		// Build a permutation ring: node i -> node (7i+1) mod nodes.
		for i := 0; i < nodes; i++ {
			next := uint32((7*i + 1) % nodes)
			b.InitW(heap+uint32(i*nodeBytes), heap+next*nodeBytes)
			b.InitW(heap+uint32(i*nodeBytes+4), uint32(i*3+1))
		}
		rng := xorshift(0x11C0DE)

		b.Label("forever")
		// Walk phase: chase pointers, mutate values with data-dependent
		// branches (the interpreter's eval loop).
		b.La(isa.R8, heap)
		b.Li(isa.R20, uint32(256*o.Scale))
		b.Label("li_walk")
		b.Lw(isa.R9, isa.R8, 4)
		b.Andi(isa.R10, isa.R9, 1)
		b.Beq(isa.R10, isa.R0, "li_even")
		b.Addi(isa.R9, isa.R9, 3)
		b.J("li_store")
		b.Label("li_even")
		b.Srl(isa.R9, isa.R9, 1)
		b.Addi(isa.R9, isa.R9, 1)
		b.Label("li_store")
		b.Sw(isa.R9, isa.R8, 4)
		b.Lw(isa.R8, isa.R8, 0) // next
		b.Addi(isa.R20, isa.R20, -1)
		b.Bgtz(isa.R20, "li_walk")
		// Dispatch phases: the interpreter's many opcode handlers, as
		// large straight-line integer blocks.
		b.La(isa.R21, scratch)
		for ph := 0; ph < 6; ph++ {
			loop := fmt.Sprintf("li_p%d", ph)
			b.Li(isa.R20, uint32(o.Scale))
			b.Label(loop)
			intBlock(b, &rng, isa.R21, 700)
			b.Addi(isa.R20, isa.R20, -1)
			b.Bgtz(isa.R20, loop)
		}
		b.J("forever")
		return b.MustBuild()
	}}
}

// Eqntott models the SPEC89 truth-table generator: bit-vector logic over
// word arrays with data-dependent comparison branches (hard to predict),
// plus a sizable unrolled comparison body (IC workload member).
func Eqntott() Kernel {
	return Kernel{Name: "eqntott", Build: func(o Options) *prog.Program {
		o = o.normalize()
		const words = 4096
		b := newBuilder("eqntott", o)
		va := b.Alloc(words*4, 64)
		vb := b.Alloc(words*4, 64)
		for i := 0; i < words; i += 4 {
			b.InitW(va+uint32(i*4), uint32(i*2654435761))
			b.InitW(vb+uint32(i*4), uint32(i*40503+77))
		}
		rng := xorshift(0xE9707)

		b.Label("forever")
		b.La(isa.R8, va)
		b.La(isa.R9, vb)
		b.Li(isa.R20, uint32(words/8))
		b.Li(isa.R15, 0) // population counter
		b.Label("eq_cmp")
		for u := 0; u < 8; u++ {
			off := int32(4 * u)
			b.Lw(isa.R10, isa.R8, off)
			b.Lw(isa.R11, isa.R9, off)
			b.Xor(isa.R12, isa.R10, isa.R11)
			b.And(isa.R13, isa.R10, isa.R11)
			b.Or(isa.R14, isa.R12, isa.R13)
			b.Sw(isa.R14, isa.R8, off)
			// Data-dependent branch: count vectors that differ.
			skip := fmt.Sprintf("eq_s%d", u)
			b.Beq(isa.R12, isa.R0, skip)
			b.Addi(isa.R15, isa.R15, 1)
			b.Label(skip)
		}
		b.Addi(isa.R8, isa.R8, 32)
		b.Addi(isa.R9, isa.R9, 32)
		b.Addi(isa.R20, isa.R20, -1)
		b.Bgtz(isa.R20, "eq_cmp")
		// Sorting/canonicalization phases: unrolled integer code.
		b.La(isa.R21, vb)
		for ph := 0; ph < 6; ph++ {
			loop := fmt.Sprintf("eq_p%d", ph)
			b.Li(isa.R20, uint32(o.Scale))
			b.Label(loop)
			intBlock(b, &rng, isa.R21, 800)
			b.Addi(isa.R20, isa.R20, -1)
			b.Bgtz(isa.R20, loop)
		}
		b.J("forever")
		return b.MustBuild()
	}}
}
