package apps

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/prog"
)

// loadFPRegs fills F8..F23 from sixteen initialized doubles at base so FP
// blocks never operate on zeros.
func loadFPRegs(b *prog.Builder, baseReg isa.Reg) {
	for i := 0; i < 16; i++ {
		b.Fld(isa.F8+isa.Reg(i), baseReg, int32(8*i))
	}
}

// Doduc models the SPEC89 Monte-Carlo reactor kernel: a very large live
// code footprint (its defining property — it anchors the IC workload) of
// floating-point phases with a steady diet of double-precision divides.
func Doduc() Kernel {
	return Kernel{Name: "doduc", Build: func(o Options) *prog.Program {
		o = o.normalize()
		b := newBuilder("doduc", o)
		data := b.Alloc(512*8, 64)
		initDoubles(b, data, 512)
		rng := xorshift(0xD0D0C)

		b.La(isa.R21, data)
		loadFPRegs(b, isa.R21)
		b.Label("forever")
		for ph := 0; ph < 10; ph++ {
			loop := fmt.Sprintf("doduc_p%d", ph)
			b.Li(isa.R20, uint32(2*o.Scale))
			b.Addi(isa.R22, isa.R21, int32(ph*256))
			b.Label(loop)
			fpBlock(b, &rng, isa.R22, 600, 40)
			b.Addi(isa.R20, isa.R20, -1)
			b.Bgtz(isa.R20, loop)
		}
		b.J("forever")
		return b.MustBuild()
	}}
}

// Emit models the NASA7 emission kernel: small, cache-resident data but a
// high density of floating-point divides — the archetypal long-instruction-
// latency program (FP workload).
func Emit() Kernel {
	return Kernel{Name: "emit", Build: func(o Options) *prog.Program {
		o = o.normalize()
		b := newBuilder("emit", o)
		data := b.Alloc(256*8, 64)
		initDoubles(b, data, 256)
		rng := xorshift(0xE317)

		b.La(isa.R21, data)
		loadFPRegs(b, isa.R21)
		b.Label("forever")
		b.Li(isa.R20, uint32(16*o.Scale))
		b.Label("emit_loop")
		fpBlock(b, &rng, isa.R21, 120, 24) // a divide every 24 instructions
		b.Addi(isa.R20, isa.R20, -1)
		b.Bgtz(isa.R20, "emit_loop")
		b.J("forever")
		return b.MustBuild()
	}}
}

// Cholsky models the NASA7 Cholesky factorization: triangular loop nest
// over a 96x96 matrix with a square root and a column of divides per
// pivot. Its row stride also crosses pages (DT workload member).
func Cholsky() Kernel {
	return Kernel{Name: "cholsky", Build: func(o Options) *prog.Program {
		o = o.normalize()
		const n = 96
		const rowBytes = n * 8
		b := newBuilder("cholsky", o)
		a := b.Alloc(n*rowBytes, 64)
		// Diagonally dominant initialization keeps pivots positive.
		for i := 0; i < n; i++ {
			b.InitF(a+uint32(i*rowBytes+i*8), float64(n))
			b.InitF(a+uint32(i*rowBytes+((i+1)%n)*8), 0.5)
		}

		b.La(isa.R21, a)
		b.Li(isa.R23, rowBytes)
		b.Label("forever")
		// for k in 0..n-1: pivot = sqrt(A[k][k]); scale column below;
		// rank-1 update of the trailing row (bounded to keep the
		// iteration near slice-sized).
		b.Li(isa.R8, 0) // k
		b.Label("chol_k")
		// &A[k][k]
		b.Mul(isa.R9, isa.R8, isa.R23)
		b.Add(isa.R9, isa.R9, isa.R21)
		b.Sll(isa.R10, isa.R8, 3)
		b.Add(isa.R9, isa.R9, isa.R10)
		b.Fld(isa.F1, isa.R9, 0)
		b.FSqrt(isa.F2, isa.F1)
		b.Fsd(isa.F2, isa.R9, 0)
		// scale the rest of row k: A[k][j] /= pivot
		b.Addi(isa.R11, isa.R8, 1) // j
		b.Move(isa.R12, isa.R9)
		b.Label("chol_scale")
		b.Slti(isa.R13, isa.R11, n)
		b.Beq(isa.R13, isa.R0, "chol_kend")
		b.Addi(isa.R12, isa.R12, 8)
		b.Fld(isa.F3, isa.R12, 0)
		b.FDivD(isa.F4, isa.F3, isa.F2)
		b.Fsd(isa.F4, isa.R12, 0)
		// trailing update of A[j][j] -= A[k][j]^2 (representative touch)
		b.Mul(isa.R14, isa.R11, isa.R23)
		b.Add(isa.R14, isa.R14, isa.R21)
		b.Sll(isa.R15, isa.R11, 3)
		b.Add(isa.R14, isa.R14, isa.R15)
		b.Fld(isa.F5, isa.R14, 0)
		b.FMul(isa.F6, isa.F4, isa.F4)
		b.FSub(isa.F5, isa.F5, isa.F6)
		b.FAbs(isa.F5, isa.F5)
		b.FAdd(isa.F5, isa.F5, isa.F2) // keep positive-definite-ish
		b.Fsd(isa.F5, isa.R14, 0)
		b.Addi(isa.R11, isa.R11, 1)
		b.J("chol_scale")
		b.Label("chol_kend")
		b.Addi(isa.R8, isa.R8, 1)
		b.Slti(isa.R13, isa.R8, n)
		b.Bne(isa.R13, isa.R0, "chol_k")
		b.J("forever")
		return b.MustBuild()
	}}
}

// Matrix300 models the SPEC89 dense matrix-multiply program: streaming
// floating-point over matrices that overflow the primary cache but sit in
// the secondary (FP workload member with memory pressure).
func Matrix300() Kernel {
	return Kernel{Name: "matrix300", Build: func(o Options) *prog.Program {
		o = o.normalize()
		const n = 80
		const rowBytes = n * 8
		b := newBuilder("matrix300", o)
		ma := b.Alloc(n*rowBytes, 64)
		mb := b.Alloc(n*rowBytes, 64)
		mc := b.Alloc(n*rowBytes, 64)
		for i := 0; i < n; i++ { // seed one row+column; rest grows
			b.InitF(ma+uint32(i*rowBytes), 1.25)
			b.InitF(mb+uint32(i*8), 0.75)
		}

		b.La(isa.R21, ma)
		b.La(isa.R22, mb)
		b.La(isa.R23, mc)
		b.Li(isa.R24, rowBytes)
		b.Label("forever")
		b.Li(isa.R8, 0) // i
		b.Label("m3_i")
		b.Mul(isa.R9, isa.R8, isa.R24)
		b.Add(isa.R10, isa.R9, isa.R21) // &A[i][0]
		b.Add(isa.R11, isa.R9, isa.R23) // &C[i][0]
		b.Li(isa.R12, 0)                // j
		b.Label("m3_j")
		b.Sll(isa.R13, isa.R12, 3)
		b.Add(isa.R14, isa.R22, isa.R13) // &B[0][j]
		b.Fld(isa.F1, isa.R11, 0)        // C[i][j] accumulates across outer iters
		b.Li(isa.R15, 0)                 // k (unrolled by 8)
		b.Label("m3_k")
		for u := 0; u < 8; u++ {
			b.Fld(isa.F2, isa.R10, int32(8*u))
			b.Fld(isa.F3, isa.R14, 0)
			b.FMul(isa.F4, isa.F2, isa.F3)
			b.FAdd(isa.F1, isa.F1, isa.F4)
			b.Add(isa.R14, isa.R14, isa.R24)
		}
		b.Addi(isa.R10, isa.R10, 64)
		b.Addi(isa.R15, isa.R15, 8)
		b.Slti(isa.R16, isa.R15, n)
		b.Bne(isa.R16, isa.R0, "m3_k")
		b.Fsd(isa.F1, isa.R11, 0)
		// rewind A row pointer for next j
		b.Mul(isa.R9, isa.R8, isa.R24)
		b.Add(isa.R10, isa.R9, isa.R21)
		b.Addi(isa.R11, isa.R11, 8)
		b.Addi(isa.R12, isa.R12, 1)
		b.Slti(isa.R16, isa.R12, n)
		b.Bne(isa.R16, isa.R0, "m3_j")
		b.Addi(isa.R8, isa.R8, 1)
		b.Slti(isa.R16, isa.R8, n)
		b.Bne(isa.R16, isa.R0, "m3_i")
		b.J("forever")
		return b.MustBuild()
	}}
}
