package apps

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/prog"
)

// Mxm models the NASA7 matrix-multiply kernel. The matrices are small
// enough to live in the primary cache; the distinguishing load is a large
// unrolled code body (several compiler-specialized variants), which is why
// it belongs to the IC workload.
func Mxm() Kernel {
	return Kernel{Name: "mxm", Build: func(o Options) *prog.Program {
		o = o.normalize()
		const n = 32
		const rowBytes = n * 8
		b := newBuilder("mxm", o)
		ma := b.Alloc(n*rowBytes, 64)
		mb := b.Alloc(n*rowBytes, 64)
		mc := b.Alloc(n*rowBytes, 64)
		initDoubles(b, ma, 64)
		initDoubles(b, mb, 64)

		b.La(isa.R21, ma)
		b.La(isa.R22, mb)
		b.La(isa.R23, mc)
		b.Li(isa.R24, rowBytes)
		b.Label("forever")
		// Four specialized variants with different unroll shapes, run in
		// sequence — a multi-versioned compilation's footprint. Each
		// variant uses two accumulators so consecutive FP adds do not
		// serialize (the scheduling the paper's Twine pass performs).
		unrolls := [4]int{8, 16, 32, 32}
		for v := 0; v < 4; v++ {
			iLoop := fmt.Sprintf("mxm_v%d_i", v)
			kLoop := fmt.Sprintf("mxm_v%d_k", v)
			unroll := unrolls[v]
			b.Li(isa.R8, 0) // i
			b.Label(iLoop)
			b.Mul(isa.R9, isa.R8, isa.R24)
			b.Add(isa.R10, isa.R9, isa.R21) // &A[i][0]
			b.Add(isa.R11, isa.R9, isa.R23) // &C[i][0]
			// Fully unrolled j in blocks, dynamic k.
			for j := 0; j < n; j += 4 {
				b.Fld(isa.F1, isa.R11, int32(8*j))
				b.FSub(isa.F5, isa.F5, isa.F5) // second accumulator = 0
				b.Sll(isa.R13, isa.R0, 0)      // k = 0 (clears R13)
				b.Add(isa.R14, isa.R22, isa.R0)
				b.Label(fmt.Sprintf("%s_j%d", kLoop, j))
				for u := 0; u < unroll; u += 2 {
					// Software-pipelined pair: both loads, both
					// multiplies, then the accumulates, so no result is
					// consumed before it forwards.
					b.Fld(isa.F2, isa.R10, int32(8*u))
					b.Fld(isa.F3, isa.R14, int32(8*j))
					b.Fld(isa.F6, isa.R10, int32(8*(u+1)))
					b.Fld(isa.F7, isa.R14, int32(rowBytes+8*j))
					b.FMul(isa.F4, isa.F2, isa.F3)
					b.FMul(isa.F9, isa.F6, isa.F7)
					b.Add(isa.R14, isa.R14, isa.R24)
					b.Add(isa.R14, isa.R14, isa.R24)
					b.FAdd(isa.F1, isa.F1, isa.F4)
					b.FAdd(isa.F5, isa.F5, isa.F9)
				}
				b.Addi(isa.R13, isa.R13, int32(unroll))
				b.Slti(isa.R15, isa.R13, n)
				b.Bne(isa.R15, isa.R0, fmt.Sprintf("%s_j%d", kLoop, j))
				b.FAdd(isa.F1, isa.F1, isa.F5)
				b.Fsd(isa.F1, isa.R11, int32(8*j))
			}
			b.Addi(isa.R8, isa.R8, 1)
			b.Slti(isa.R15, isa.R8, n)
			b.Bne(isa.R15, isa.R0, iLoop)
		}
		b.J("forever")
		return b.MustBuild()
	}}
}

// Tomcatv models the SPEC89 vectorized mesh generator: stencil sweeps over
// several ~74 KB grids whose combined working set overflows the primary
// cache but fits the secondary (DC workload).
func Tomcatv() Kernel {
	return Kernel{Name: "tomcatv", Build: func(o Options) *prog.Program {
		o = o.normalize()
		const n = 96
		const rowBytes = n * 8
		b := newBuilder("tomcatv", o)
		var grids [5]uint32
		for g := range grids {
			grids[g] = b.Alloc(n*rowBytes, 64)
		}
		initDoubles(b, grids[0], 256)
		initDoubles(b, grids[1], 256)

		b.Label("forever")
		for g := 0; g < 4; g++ {
			// sweep grid g+1 = stencil(grid g)
			iLoop := fmt.Sprintf("tc_g%d_i", g)
			jLoop := fmt.Sprintf("tc_g%d_j", g)
			b.La(isa.R8, grids[g])
			b.La(isa.R9, grids[g+1])
			b.Li(isa.R10, n-2) // rows 1..n-2
			b.Label(iLoop)
			b.Li(isa.R11, (n-2)/2)
			b.Label(jLoop)
			for u := 0; u < 2; u++ {
				off := int32(8 + 8*u)
				b.Fld(isa.F1, isa.R8, off-8)
				b.Fld(isa.F2, isa.R8, off+8)
				b.Fld(isa.F3, isa.R8, off-8+rowBytes)
				b.Fld(isa.F4, isa.R8, off+8+rowBytes)
				b.FAdd(isa.F5, isa.F1, isa.F2)
				b.FAdd(isa.F6, isa.F3, isa.F4)
				b.FAdd(isa.F7, isa.F5, isa.F6)
				b.FMul(isa.F7, isa.F7, isa.F8)
				b.Fsd(isa.F7, isa.R9, off)
			}
			b.Addi(isa.R8, isa.R8, 16)
			b.Addi(isa.R9, isa.R9, 16)
			b.Addi(isa.R11, isa.R11, -1)
			b.Bgtz(isa.R11, jLoop)
			b.Addi(isa.R8, isa.R8, 16) // skip row remainder
			b.Addi(isa.R9, isa.R9, 16)
			b.Addi(isa.R10, isa.R10, -1)
			b.Bgtz(isa.R10, iLoop)
		}
		// Relaxation residual with a few divides.
		b.La(isa.R8, grids[0])
		b.Li(isa.R10, 64)
		b.Label("tc_resid")
		b.Fld(isa.F1, isa.R8, 0)
		b.Fld(isa.F2, isa.R8, 8)
		b.FAdd(isa.F3, isa.F1, isa.F2)
		b.FAbs(isa.F3, isa.F3)
		b.FAdd(isa.F3, isa.F3, isa.F8) // keep away from zero
		b.FDivD(isa.F4, isa.F1, isa.F3)
		b.Fsd(isa.F4, isa.R8, 0)
		b.Addi(isa.R8, isa.R8, 64)
		b.Addi(isa.R10, isa.R10, -1)
		b.Bgtz(isa.R10, "tc_resid")
		b.J("forever")
		return b.MustBuild()
	}}
}

// Btrix models the NASA7 block-tridiagonal solver: column-order walks with
// an exactly page-sized stride over a half-megabyte array, which thrashes
// the 64-entry data TLB (DT workload).
func Btrix() Kernel {
	return Kernel{Name: "btrix", Build: func(o Options) *prog.Program {
		o = o.normalize()
		const rows = 128      // pages touched per column walk (> 64 TLB entries)
		const rowBytes = 4096 // one page per row
		const cols = 64       // doubles used per row
		b := newBuilder("btrix", o)
		a := b.Alloc(rows*rowBytes, 4096)
		for i := 0; i < rows; i++ {
			b.InitF(a+uint32(i*rowBytes), 2.0+float64(i%5))
		}

		b.La(isa.R21, a)
		b.Li(isa.R22, rowBytes)
		b.La(isa.R23, a)
		loadFPRegs(b, isa.R23)
		b.Label("forever")
		b.Li(isa.R8, 0) // column
		b.Label("bt_col")
		b.Sll(isa.R9, isa.R8, 3)
		b.Add(isa.R10, isa.R21, isa.R9) // &A[0][col]
		b.Li(isa.R11, rows)
		b.Label("bt_row")
		b.Fld(isa.F1, isa.R10, 0)
		b.FMul(isa.F2, isa.F1, isa.F9)
		b.FAdd(isa.F3, isa.F2, isa.F10)
		b.Fsd(isa.F3, isa.R10, 0)
		b.Add(isa.R10, isa.R10, isa.R22) // next page
		b.Addi(isa.R11, isa.R11, -1)
		b.Bgtz(isa.R11, "bt_row")
		b.Addi(isa.R8, isa.R8, 1)
		b.Slti(isa.R12, isa.R8, cols)
		b.Bne(isa.R12, isa.R0, "bt_col")
		b.J("forever")
		return b.MustBuild()
	}}
}

// Cfft2d models the NASA7 two-dimensional FFT: butterfly passes with
// power-of-two strides over a 256 KB complex grid — primary-cache conflict
// misses that hit in the secondary cache (DC workload).
func Cfft2d() Kernel {
	return Kernel{Name: "cfft2d", Build: func(o Options) *prog.Program {
		o = o.normalize()
		const points = 16384 // complex doubles: 16384*16 = 256 KB
		b := newBuilder("cfft2d", o)
		a := b.Alloc(points*16, 64)
		initDoubles(b, a, 512)

		b.La(isa.R21, a)
		loadFPRegs(b, isa.R21)
		b.Label("forever")
		// log2(points)=14 butterfly passes; each pairs elements stride
		// 2^s apart.
		for s := 4; s <= 13; s++ {
			stride := 1 << uint(s) // in complex elements
			loop := fmt.Sprintf("fft_s%d", s)
			b.La(isa.R8, a)
			b.Li(isa.R9, uint32(stride*16))
			b.Li(isa.R10, uint32(points/(2*stride)))
			b.Label(loop)
			// One butterfly group: (x,y) at R8 and R8+strideBytes.
			b.Add(isa.R11, isa.R8, isa.R9)
			for u := 0; u < 4; u++ {
				off := int32(16 * u)
				b.Fld(isa.F1, isa.R8, off)
				b.Fld(isa.F2, isa.R8, off+8)
				b.Fld(isa.F3, isa.R11, off)
				b.Fld(isa.F4, isa.R11, off+8)
				b.FAdd(isa.F5, isa.F1, isa.F3)
				b.FSub(isa.F6, isa.F1, isa.F3)
				b.FAdd(isa.F7, isa.F2, isa.F4)
				b.FMul(isa.F6, isa.F6, isa.F9) // twiddle
				b.Fsd(isa.F5, isa.R8, off)
				b.Fsd(isa.F7, isa.R8, off+8)
				b.Fsd(isa.F6, isa.R11, off)
			}
			b.Add(isa.R8, isa.R8, isa.R9)
			b.Add(isa.R8, isa.R8, isa.R9) // next group
			b.Addi(isa.R10, isa.R10, -1)
			b.Bgtz(isa.R10, loop)
		}
		b.J("forever")
		return b.MustBuild()
	}}
}

// Gmtry models the NASA7 Gaussian-elimination kernel: row reduction over a
// 200 KB matrix with a divide per pivot row (DC and DT workloads).
func Gmtry() Kernel {
	return Kernel{Name: "gmtry", Build: func(o Options) *prog.Program {
		o = o.normalize()
		const n = 160
		const rowBytes = n * 8
		b := newBuilder("gmtry", o)
		a := b.Alloc(n*rowBytes, 64)
		for i := 0; i < n; i++ {
			b.InitF(a+uint32(i*rowBytes+i*8), float64(n+i))
			b.InitF(a+uint32(i*rowBytes), 1.0)
		}

		b.La(isa.R21, a)
		b.Li(isa.R22, rowBytes)
		b.Label("forever")
		b.Li(isa.R8, 0) // pivot
		b.Label("gm_piv")
		b.Mul(isa.R9, isa.R8, isa.R22)
		b.Add(isa.R9, isa.R9, isa.R21) // pivot row
		b.Sll(isa.R10, isa.R8, 3)
		b.Add(isa.R11, isa.R9, isa.R10) // &A[p][p]
		b.Fld(isa.F1, isa.R11, 0)
		b.FAbs(isa.F1, isa.F1)
		b.FAdd(isa.F1, isa.F1, isa.F1) // keep nonzero
		// eliminate the next 8 rows against the pivot row
		b.Add(isa.R12, isa.R9, isa.R22) // row r
		b.Li(isa.R13, 8)
		b.Label("gm_row")
		b.Add(isa.R14, isa.R12, isa.R10)
		b.Fld(isa.F2, isa.R14, 0)
		b.FDivD(isa.F3, isa.F2, isa.F1) // multiplier
		b.Li(isa.R15, n/8)
		b.Move(isa.R16, isa.R9)
		b.Move(isa.R17, isa.R12)
		b.Label("gm_el")
		for u := 0; u < 8; u++ {
			off := int32(8 * u)
			b.Fld(isa.F4, isa.R16, off)
			b.Fld(isa.F5, isa.R17, off)
			b.FMul(isa.F6, isa.F4, isa.F3)
			b.FSub(isa.F5, isa.F5, isa.F6)
			b.Fsd(isa.F5, isa.R17, off)
		}
		b.Addi(isa.R16, isa.R16, 64)
		b.Addi(isa.R17, isa.R17, 64)
		b.Addi(isa.R15, isa.R15, -1)
		b.Bgtz(isa.R15, "gm_el")
		b.Add(isa.R12, isa.R12, isa.R22)
		b.Addi(isa.R13, isa.R13, -1)
		b.Bgtz(isa.R13, "gm_row")
		b.Addi(isa.R8, isa.R8, 1)
		b.Slti(isa.R18, isa.R8, n-9)
		b.Bne(isa.R18, isa.R0, "gm_piv")
		b.J("forever")
		return b.MustBuild()
	}}
}

// Vpenta models the NASA7 pentadiagonal inverter: simultaneous walks of
// six large arrays with page-crossing strides — the heaviest TLB load in
// the suite (DT workload) with secondary-cache-sized data (DC workload).
func Vpenta() Kernel {
	return Kernel{Name: "vpenta", Build: func(o Options) *prog.Program {
		o = o.normalize()
		const rows = 64
		const rowBytes = 2048 // half-page stride per row
		b := newBuilder("vpenta", o)
		var arr [6]uint32
		for i := range arr {
			arr[i] = b.Alloc(rows*rowBytes, 4096)
			b.InitF(arr[i], 1.5+float64(i))
		}

		b.La(isa.R21, arr[0])
		loadFPRegs(b, isa.R21)
		b.Label("forever")
		for pass := 0; pass < 3; pass++ {
			x, y, z := arr[pass], arr[pass+1], arr[pass+2]
			loop := fmt.Sprintf("vp_p%d", pass)
			b.La(isa.R8, x)
			b.La(isa.R9, y)
			b.La(isa.R10, z)
			b.Li(isa.R11, rowBytes)
			b.Li(isa.R12, rows)
			b.Label(loop)
			for u := 0; u < 4; u++ {
				off := int32(8 * u)
				b.Fld(isa.F1, isa.R8, off)
				b.Fld(isa.F2, isa.R9, off)
				b.FMul(isa.F3, isa.F1, isa.F9)
				b.FAdd(isa.F4, isa.F3, isa.F2)
				b.Fsd(isa.F4, isa.R10, off)
			}
			b.Add(isa.R8, isa.R8, isa.R11) // column walk: page-crossing
			b.Add(isa.R9, isa.R9, isa.R11)
			b.Add(isa.R10, isa.R10, isa.R11)
			b.Addi(isa.R12, isa.R12, -1)
			b.Bgtz(isa.R12, loop)
		}
		b.J("forever")
		return b.MustBuild()
	}}
}
