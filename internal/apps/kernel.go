// Package apps provides the synthetic uniprocessor application suite that
// stands in for the paper's SPEC89 programs (Table 5). Each kernel is a
// real program in the simulated ISA — with genuine register dependencies,
// branches, and memory reference patterns — tuned to reproduce its SPEC
// counterpart's dominant behaviour:
//
//   - doduc, li, eqntott, mxm: large code footprints (the IC workload)
//   - cfft2d, gmtry, tomcatv, vpenta: 128-512 KB working sets whose misses
//     mostly hit in the secondary cache (the DC workload)
//   - btrix, cholsky, gmtry, vpenta: page-crossing strides (the DT workload)
//   - emit, cholsky, doduc, matrix300: floating-point divide density (FP)
//
// The substitution rationale is given in DESIGN.md §3.
package apps

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/prog"
)

// Options parameterize a kernel build.
type Options struct {
	CodeBase uint32
	DataBase uint32
	DataSize uint32 // arena size; 0 selects 32 MiB
	// Yield and AutoTolerate configure the latency-tolerance compilation
	// pass (prog.Builder.SetYield / SetAutoTolerate).
	Yield        prog.YieldMode
	AutoTolerate bool
	// Scale multiplies inner-loop trip counts; 0 means 1.
	Scale int
}

func (o Options) normalize() Options {
	if o.DataSize == 0 {
		o.DataSize = 32 << 20
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
	return o
}

// Kernel is a buildable application.
type Kernel struct {
	Name  string
	Build func(Options) *prog.Program
}

// newBuilder applies the common option plumbing.
func newBuilder(name string, o Options) *prog.Builder {
	b := prog.NewBuilder(name, o.CodeBase, o.DataBase, o.DataSize)
	b.SetYield(o.Yield)
	b.SetAutoTolerate(o.AutoTolerate)
	return b
}

// Registry returns all twelve SPEC89-like kernels by name.
func Registry() map[string]Kernel {
	ks := []Kernel{
		Doduc(), Li(), Eqntott(), Matrix300(), Tomcatv(),
		Btrix(), Cholsky(), Cfft2d(), Emit(), Gmtry(), Mxm(), Vpenta(),
	}
	m := make(map[string]Kernel, len(ks))
	for _, k := range ks {
		m[k.Name] = k
	}
	return m
}

// Lookup returns the kernel named name.
func Lookup(name string) (Kernel, error) {
	k, ok := Registry()[name]
	if !ok {
		return Kernel{}, fmt.Errorf("apps: unknown kernel %q", name)
	}
	return k, nil
}

// ----- code generation helpers -----
//
// The IC-workload programs need tens of kilobytes of live code. These
// helpers emit varied straight-line blocks the way an aggressively unrolled
// and inlined Fortran/C compilation would, with a deterministic per-seed
// shape.

// xorshift is a tiny deterministic PRNG for code shaping (math/rand would
// also be deterministic, but this keeps codegen self-contained and obvious).
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := *x
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = v
	return uint64(v)
}

func (x *xorshift) intn(n int) int { return int(x.next() % uint64(n)) }

// fpBlock emits n straight-line FP instructions operating on the array at
// baseReg (which must hold a pointer to at least 64 doubles), using
// registers F8..F23. divEvery > 0 inserts an FDivD every divEvery
// instructions.
func fpBlock(b *prog.Builder, rng *xorshift, baseReg isa.Reg, n, divEvery int) {
	fr := func(i int) isa.Reg { return isa.F8 + isa.Reg(i%16) }
	for i := 0; i < n; i++ {
		switch {
		case divEvery > 0 && i%divEvery == divEvery-1:
			b.FDivD(fr(rng.intn(16)), fr(rng.intn(16)), fr(rng.intn(16)))
		case i%7 == 3:
			b.Fld(fr(rng.intn(16)), baseReg, int32(8*rng.intn(64)))
		case i%11 == 5:
			b.Fsd(fr(rng.intn(16)), baseReg, int32(8*rng.intn(64)))
		case i%3 == 0:
			b.FMul(fr(rng.intn(16)), fr(rng.intn(16)), fr(rng.intn(16)))
		default:
			b.FAdd(fr(rng.intn(16)), fr(rng.intn(16)), fr(rng.intn(16)))
		}
	}
}

// intBlock emits n straight-line integer instructions over registers
// R8..R19, loading/storing within 64 words of baseReg.
func intBlock(b *prog.Builder, rng *xorshift, baseReg isa.Reg, n int) {
	ir := func(i int) isa.Reg { return isa.R8 + isa.Reg(i%12) }
	for i := 0; i < n; i++ {
		switch {
		case i%9 == 4:
			b.Lw(ir(rng.intn(12)), baseReg, int32(4*rng.intn(64)))
		case i%13 == 7:
			b.Sw(ir(rng.intn(12)), baseReg, int32(4*rng.intn(64)))
		case i%4 == 1:
			b.Xor(ir(rng.intn(12)), ir(rng.intn(12)), ir(rng.intn(12)))
		case i%5 == 2:
			b.Sll(ir(rng.intn(12)), ir(rng.intn(12)), int32(rng.intn(8)))
		default:
			b.Add(ir(rng.intn(12)), ir(rng.intn(12)), ir(rng.intn(12)))
		}
	}
}

// initDoubles seeds count doubles at base with a smooth nonzero pattern so
// FP kernels never divide by zero.
func initDoubles(b *prog.Builder, base uint32, count int) {
	for i := 0; i < count; i++ {
		b.InitF(base+uint32(8*i), 1.0+float64(i%17)*0.25)
	}
}
