package apps

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/prog"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"doduc", "li", "eqntott", "matrix300", "tomcatv",
		"btrix", "cholsky", "cfft2d", "emit", "gmtry", "mxm", "vpenta",
	}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d kernels, want %d", len(reg), len(want))
	}
	for _, n := range want {
		if _, ok := reg[n]; !ok {
			t.Errorf("kernel %q missing", n)
		}
	}
	if _, err := Lookup("doduc"); err != nil {
		t.Error(err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("Lookup of unknown kernel succeeded")
	}
}

// Every kernel must build under every yield mode and execute for a while
// on a real hierarchy without halting, faulting, or starving.
func TestEveryKernelRuns(t *testing.T) {
	for name, k := range Registry() {
		for _, y := range []prog.YieldMode{prog.YieldNone, prog.YieldBackoff, prog.YieldSwitch} {
			p := k.Build(Options{
				CodeBase:     0x0100_0000,
				DataBase:     0x4000_0000,
				Yield:        y,
				AutoTolerate: y != prog.YieldNone,
			})
			if len(p.Insts) == 0 {
				t.Fatalf("%s: empty program", name)
			}
			fm := mem.New()
			p.LoadInit(fm)
			h := cache.MustNewHierarchy(cache.DefaultParams())
			proc := core.MustNewProcessor(core.DefaultConfig(core.Single, 1), h, fm)
			th := core.NewThread(name, p)
			proc.BindThread(0, th)
			proc.Run(30000)
			if th.Halted {
				t.Errorf("%s (%v): kernel halted; kernels must loop forever", name, y)
			}
			if th.Retired < 1000 {
				t.Errorf("%s (%v): retired only %d instructions in 30k cycles", name, y, th.Retired)
			}
		}
	}
}

// The IC-workload members need large live code footprints; the others
// should stay modest.
func TestCodeFootprints(t *testing.T) {
	opt := Options{CodeBase: 0x0100_0000, DataBase: 0x4000_0000}
	big := []string{"doduc", "li", "eqntott", "mxm"}
	for _, n := range big {
		k, _ := Lookup(n)
		p := k.Build(opt)
		if p.CodeBytes() < 12<<10 {
			t.Errorf("%s code = %d bytes; IC members need >= 12 KB", n, p.CodeBytes())
		}
	}
	k, _ := Lookup("vpenta")
	if p := k.Build(opt); p.CodeBytes() > 8<<10 {
		t.Errorf("vpenta code = %d bytes; loop kernels should stay small", p.CodeBytes())
	}
	// Combined IC workload footprint must exceed the 64 KB I-cache.
	total := 0
	for _, n := range big {
		k, _ := Lookup(n)
		total += k.Build(opt).CodeBytes()
	}
	if total < 64<<10 {
		t.Errorf("IC workload code = %d bytes, want > 64 KB to stress the I-cache", total)
	}
}

// Workload-role checks: kernels must land in the stall regime that defines
// their workload membership (DESIGN.md §3).
func TestKernelCharacters(t *testing.T) {
	run := func(name string) (*core.Stats, *cache.Stats) {
		k, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		p := k.Build(Options{CodeBase: 0x0100_0000, DataBase: 0x4000_0000})
		fm := mem.New()
		p.LoadInit(fm)
		h := cache.MustNewHierarchy(cache.DefaultParams())
		proc := core.MustNewProcessor(core.DefaultConfig(core.Single, 1), h, fm)
		proc.BindThread(0, core.NewThread(name, p))
		proc.Run(150000)
		return &proc.Stats, &h.Stats
	}

	// btrix: the TLB must miss heavily.
	_, hs := run("btrix")
	if hs.DataByClass[3] < 500 { // memsys.TLBMiss
		t.Errorf("btrix TLB misses = %d, want heavy TLB pressure", hs.DataByClass[3])
	}

	// emit: long instruction stalls (FP divides) must dominate memory.
	es, _ := run("emit")
	if es.Slots[core.SlotStallLong] < es.Slots[core.SlotDMem] {
		t.Errorf("emit: long stalls %d < dmem %d; divides should dominate",
			es.Slots[core.SlotStallLong], es.Slots[core.SlotDMem])
	}

	// cfft2d: data misses should mostly be L2 hits (DC workload regime).
	_, fs := run("cfft2d")
	if fs.DataByClass[1] == 0 { // memsys.HitL2
		t.Error("cfft2d produced no L2-hit misses")
	}

	// mxm: cache-resident compute; busy fraction should be high.
	ms, _ := run("mxm")
	if ms.BusyFraction() < 0.5 {
		t.Errorf("mxm busy fraction = %.2f, want >= 0.5", ms.BusyFraction())
	}
}
