package metrics

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"reflect"
	"testing"
)

// A bulk charge from a fast-forward skip and the equivalent per-cycle,
// per-slot charges must coalesce into the identical event stream — this is
// the property the FF on/off golden tests lean on.
func TestSinkCoalescesChargesModeIndependently(t *testing.T) {
	const width = 2
	stepped := NewSink(0, 1024)
	for cyc := int64(10); cyc < 20; cyc++ {
		for w := 0; w < width; w++ {
			stepped.Charge(cyc, "dmem", 1, 1)
		}
	}
	stepped.Emit(Event{Cycle: 20, Kind: KindMissFill, Ctx: 1})
	stepped.Charge(20, "dmem", 1, 1)
	stepped.Flush()

	skipped := NewSink(0, 1024)
	skipped.Charge(10, "dmem", 1, 10) // SkipTo(20) bulk charge
	skipped.Emit(Event{Cycle: 20, Kind: KindMissFill, Ctx: 1})
	skipped.Charge(20, "dmem", 1, 1)
	skipped.Flush()

	if !reflect.DeepEqual(stepped.Events(), skipped.Events()) {
		t.Fatalf("stepped %+v\nskipped %+v", stepped.Events(), skipped.Events())
	}
	want := []Event{
		{Cycle: 10, Kind: KindCharge, Ctx: 1, Class: "dmem", Span: 10},
		{Cycle: 20, Kind: KindMissFill, Ctx: 1},
		{Cycle: 20, Kind: KindCharge, Ctx: 1, Class: "dmem", Span: 1},
	}
	if !reflect.DeepEqual(stepped.Events(), want) {
		t.Fatalf("events %+v, want %+v", stepped.Events(), want)
	}
}

// A class or context change must break the span; an emission must flush
// the pending span before itself.
func TestSinkSpanBreaks(t *testing.T) {
	s := NewSink(3, 1024)
	s.Charge(0, "idle", -1, 1)
	s.Charge(1, "idle", -1, 1)
	s.Charge(2, "dmem", 0, 1)  // class change
	s.Charge(3, "dmem", 1, 1)  // ctx change
	s.Charge(10, "dmem", 1, 1) // gap
	s.Flush()
	want := []Event{
		{Cycle: 0, Kind: KindCharge, Proc: 3, Ctx: -1, Class: "idle", Span: 2},
		{Cycle: 2, Kind: KindCharge, Proc: 3, Ctx: 0, Class: "dmem", Span: 1},
		{Cycle: 3, Kind: KindCharge, Proc: 3, Ctx: 1, Class: "dmem", Span: 1},
		{Cycle: 10, Kind: KindCharge, Proc: 3, Ctx: 1, Class: "dmem", Span: 1},
	}
	if !reflect.DeepEqual(s.Events(), want) {
		t.Fatalf("events %+v", s.Events())
	}
}

func TestSinkEventCap(t *testing.T) {
	s := NewSink(0, 2)
	for i := int64(0); i < 5; i++ {
		s.Emit(Event{Cycle: i, Kind: KindIssue})
	}
	if len(s.Events()) != 2 || s.Dropped() != 3 {
		t.Fatalf("events %d dropped %d", len(s.Events()), s.Dropped())
	}
}

func TestSamplerRing(t *testing.T) {
	var c int64
	reg := &Registry{}
	reg.Register("c", &c)
	s := NewSampler(reg, 3)
	for i := int64(1); i <= 5; i++ {
		c = i * 10
		s.SampleAt(i * 100)
	}
	got := s.Samples()
	if len(got) != 3 || s.Dropped() != 2 {
		t.Fatalf("samples %v dropped %d", got, s.Dropped())
	}
	for i, want := range []int64{300, 400, 500} {
		if got[i].Cycle != want || got[i].Values[0] != want/10 {
			t.Fatalf("sample %d = %+v", i, got[i])
		}
	}
}

// The registry reads through pointers at sample time, so samples see the
// owner's current field values without any update-path coupling.
func TestRegistryReadsThroughPointers(t *testing.T) {
	var a, b int64
	reg := &Registry{}
	reg.Register("a", &a)
	reg.Register("b", &b)
	a, b = 7, 9
	if got := reg.read(); got[0] != 7 || got[1] != 9 {
		t.Fatalf("read %v", got)
	}
	if !reflect.DeepEqual(reg.Names(), []string{"a", "b"}) {
		t.Fatalf("names %v", reg.Names())
	}
}

func TestCollectorDisabled(t *testing.T) {
	if c := NewCollector(Options{}, 4); c != nil {
		t.Fatal("zero options built a collector")
	}
	var c *Collector
	if c.Proc(0) != nil || c.Result() != nil || c.SampleEvery() != 0 {
		t.Fatal("nil collector accessors not nil-safe")
	}
	c.SampleCell(100) // must not panic
}

// Result merges per-processor event streams by (cycle, proc) while
// keeping each processor's same-cycle emission order.
func TestCollectorMergesEventStreams(t *testing.T) {
	c := NewCollector(Options{Events: true}, 2)
	c.Proc(1).Sink.Emit(Event{Cycle: 5, Kind: KindMissStart})
	c.Proc(0).Sink.Emit(Event{Cycle: 5, Kind: KindMissStart})
	c.Proc(0).Sink.Emit(Event{Cycle: 5, Kind: KindMissFill})
	c.Proc(1).Sink.Emit(Event{Cycle: 2, Kind: KindIssue})
	m := c.Result()
	var got []struct {
		p int
		k string
	}
	for _, ev := range m.Events {
		got = append(got, struct {
			p int
			k string
		}{ev.Proc, ev.Kind})
	}
	want := []struct {
		p int
		k string
	}{{1, KindIssue}, {0, KindMissStart}, {0, KindMissFill}, {1, KindMissStart}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged order %v", got)
	}
}

func TestWriteJSONLSchema(t *testing.T) {
	c := NewCollector(Options{SampleEvery: 100, Events: true}, 1)
	var n int64
	c.Proc(0).Reg.Register("x", &n)
	n = 4
	c.Proc(0).Sampler.SampleAt(100)
	c.Proc(0).Sink.Charge(0, "idle", -1, 100)
	c.CellRegistry().Register("y", &n)
	c.SampleCell(100)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, c.Result(), "demo"); err != nil {
		t.Fatal(err)
	}
	types := map[string]int{}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		typ, _ := line["type"].(string)
		types[typ]++
	}
	want := map[string]int{"cell": 1, "meta": 1, "series": 2, "sample": 2, "event": 1}
	if !reflect.DeepEqual(types, want) {
		t.Fatalf("line types %v, want %v", types, want)
	}
}

func TestWriteChromeTraceParses(t *testing.T) {
	c := NewCollector(Options{SampleEvery: 10, Events: true}, 1)
	var slots, other int64 = 3, 8
	c.Proc(0).Reg.Register("slots/busy", &slots)
	c.Proc(0).Reg.Register("cache/data-accesses", &other)
	c.Proc(0).Sampler.SampleAt(10)
	c.Proc(0).Sink.Emit(Event{Cycle: 1, Kind: KindIssue, Ctx: 0, Class: "busy"})
	c.Proc(0).Sink.Charge(2, "dmem", 0, 5)
	c.Proc(0).Sink.Emit(Event{Cycle: 7, Kind: KindMissFill, Ctx: 0, Addr: 0x40, Arg: 7})
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, c.Result()); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	phases := map[string]int{}
	for _, ev := range tr.TraceEvents {
		ph, _ := ev["ph"].(string)
		phases[ph]++
	}
	// issue X + charge X, miss-fill i, slots C + cache counter C.
	if phases["X"] != 2 || phases["i"] != 1 || phases["C"] != 2 {
		t.Fatalf("phases %v", phases)
	}
}

func TestFlagsResolution(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.PanicOnError)
	f := BindFlags(fs)
	if err := fs.Parse([]string{"-metrics-out", "m.jsonl"}); err != nil {
		t.Fatal(err)
	}
	o := f.Options()
	if o.SampleEvery != DefaultSampleEvery || o.Events {
		t.Fatalf("options %+v", o)
	}
	fs2 := flag.NewFlagSet("t", flag.PanicOnError)
	f2 := BindFlags(fs2)
	if err := fs2.Parse([]string{"-trace-out", "t.json", "-sample-every", "64"}); err != nil {
		t.Fatal(err)
	}
	if o := f2.Options(); o.SampleEvery != 64 || !o.Events {
		t.Fatalf("options %+v", o)
	}
	if got := SuffixPath("a/b.jsonl", "4ctx"); got != "a/b.4ctx.jsonl" {
		t.Fatalf("SuffixPath = %q", got)
	}
	if got := SuffixPath("plain", "x"); got != "plain.x" {
		t.Fatalf("SuffixPath = %q", got)
	}
}
