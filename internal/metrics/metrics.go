// Package metrics is the simulator's observability layer: a counter
// registry sampled into cycle-keyed time series, plus a structured event
// trace, in the periodic-stat-dump style of gem5-like simulators.
//
// The design constraints come from the fast-forward engine (PR 3):
//
//   - Zero allocation, ~zero cost on the hot path when disabled. Counters
//     are plain *int64 pointers at existing stats fields; the simulator
//     core pays one nil check per cycle when observability is off.
//   - Mode independence. A fast-forwarded run and a cycle-by-cycle run of
//     the same cell must produce byte-identical series and event streams.
//     Samples are keyed to simulated cycles (never to how the simulator
//     reached them), and bulk charges from SkipTo feed the same span
//     coalescer as per-cycle charges, so both modes emit identical
//     charge-span events.
//
// Scope matters for mode independence on the multiprocessor: a counter may
// be registered with a per-processor registry only if it is mutated
// exclusively by that processor's own execution (its slot accounting, its
// cache counters). Counters mutated across processors (directory
// invalidations, the shared chaos draw counter) live in a cell-scope
// registry that the MP driver samples only at lockstep block boundaries,
// where every processor has settled to the same cycle in both modes.
package metrics

import (
	"sort"
)

// Options configures observability for one simulated cell.
type Options struct {
	// SampleEvery is the sampling period in simulated cycles; 0 disables
	// time-series sampling.
	SampleEvery int64
	// Events enables the structured event trace.
	Events bool
	// RingCap caps the number of retained samples per series (ring
	// semantics: oldest samples are dropped first). 0 means DefaultRingCap.
	RingCap int
	// EventCap caps the number of retained events per processor sink
	// (newest events beyond the cap are dropped and counted). 0 means
	// DefaultEventCap.
	EventCap int
}

// Defaults for the ring-buffer capacities.
const (
	DefaultRingCap  = 1 << 13
	DefaultEventCap = 1 << 19
)

// Enabled reports whether the options ask for any instrumentation.
func (o Options) Enabled() bool { return o.SampleEvery > 0 || o.Events }

func (o Options) ringCap() int {
	if o.RingCap > 0 {
		return o.RingCap
	}
	return DefaultRingCap
}

func (o Options) eventCap() int {
	if o.EventCap > 0 {
		return o.EventCap
	}
	return DefaultEventCap
}

// A Registry holds named counters. Registration stores a pointer to the
// owner's existing int64 field, so updating a registered counter is the
// ordinary field increment the simulator already performs — the registry
// only reads through the pointers at sample time.
type Registry struct {
	names []string
	ptrs  []*int64
}

// Register adds a named counter backed by ptr.
func (r *Registry) Register(name string, ptr *int64) {
	r.names = append(r.names, name)
	r.ptrs = append(r.ptrs, ptr)
}

// Names returns the registered counter names in registration order.
func (r *Registry) Names() []string { return r.names }

// read snapshots every counter into a fresh slice.
func (r *Registry) read() []int64 {
	vals := make([]int64, len(r.ptrs))
	for i, p := range r.ptrs {
		vals[i] = *p
	}
	return vals
}

// A Sample is one snapshot of a registry: the counter values after every
// cycle < Cycle has completed.
type Sample struct {
	Cycle  int64   `json:"cycle"`
	Values []int64 `json:"values"`
}

// A Sampler snapshots a registry into a ring-buffered time series.
type Sampler struct {
	reg     *Registry
	cap     int
	start   int // ring head in samples
	samples []Sample
	dropped int64
}

// NewSampler returns a sampler over reg retaining up to ringCap samples.
func NewSampler(reg *Registry, ringCap int) *Sampler {
	if ringCap < 1 {
		ringCap = 1
	}
	return &Sampler{reg: reg, cap: ringCap}
}

// SampleAt records a snapshot keyed to the given cycle. Callers must
// invoke it at exactly the cycles the sampling period dictates; the
// sampler itself has no notion of simulated time.
func (s *Sampler) SampleAt(cycle int64) {
	sm := Sample{Cycle: cycle, Values: s.reg.read()}
	if len(s.samples) < s.cap {
		s.samples = append(s.samples, sm)
		return
	}
	s.samples[s.start] = sm
	s.start = (s.start + 1) % s.cap
	s.dropped++
}

// Samples returns the retained samples in cycle order.
func (s *Sampler) Samples() []Sample {
	if s.start == 0 {
		return s.samples
	}
	out := make([]Sample, 0, len(s.samples))
	out = append(out, s.samples[s.start:]...)
	out = append(out, s.samples[:s.start]...)
	return out
}

// Dropped returns how many old samples the ring discarded.
func (s *Sampler) Dropped() int64 { return s.dropped }

// Event kinds. Stored as the strings the exporters emit; assignments of
// these constants never allocate.
const (
	KindCharge       = "charge"        // a span of issue slots charged to one class
	KindIssue        = "issue"         // an instruction issued (busy / sync-busy slot)
	KindMissStart    = "miss-start"    // a memory access missed; Arg is the scheduled fill cycle
	KindMissFill     = "miss-fill"     // a miss's fill was consumed; Arg is the scheduled fill cycle
	KindCtxSwitch    = "ctx-switch"    // a context switch began (miss, SWITCH or BACKOFF)
	KindSyncRetry    = "sync-retry"    // a coherence request was NAKed and will retry; Arg is the retry cycle
	KindInval        = "inval"         // this processor's write invalidated another node's copy; Arg is the victim node
	KindWatchdogArm  = "watchdog-arm"  // the liveness watchdog saw a window with no useful progress
	KindWatchdogTrip = "watchdog-trip" // the watchdog declared the simulation stalled
	KindDrain        = "drain"         // the run was canceled (first-error cancel or signal drain) at this cycle
)

// An Event is one structured trace record. Class carries a slot-class or
// miss-class name depending on Kind. Ctx is -1 when no hardware context is
// involved.
type Event struct {
	Cycle int64  `json:"cycle"`
	Kind  string `json:"kind"`
	Proc  int    `json:"proc"`
	Ctx   int    `json:"ctx"`
	Class string `json:"class,omitempty"`
	Addr  uint32 `json:"addr,omitempty"`
	PC    uint32 `json:"pc,omitempty"`
	Span  int64  `json:"span,omitempty"`
	Arg   int64  `json:"arg,omitempty"`
}

// A Sink records one processor's event stream. Slot charges pass through a
// span coalescer: contiguous charges of the same (class, context) merge
// into a single KindCharge event, and any other emission flushes the
// pending span first. A fast-forward SkipTo that bulk-charges a region
// therefore produces exactly the event a cycle-by-cycle run of the same
// region produces.
type Sink struct {
	proc    int
	cap     int
	events  []Event
	dropped int64

	pending    Event
	hasPending bool
}

// NewSink returns a sink for processor proc retaining up to eventCap
// events.
func NewSink(proc, eventCap int) *Sink {
	if eventCap < 1 {
		eventCap = 1
	}
	return &Sink{proc: proc, cap: eventCap}
}

// Charge accounts span cycles starting at cycle to (class, ctx). Multiple
// same-cycle calls (one per issue slot on a wide pipeline) collapse into
// the cycle's single charge; contiguous cycles extend the pending span.
func (s *Sink) Charge(cycle int64, class string, ctx int, span int64) {
	if s.hasPending && s.pending.Class == class && s.pending.Ctx == ctx {
		end := s.pending.Cycle + s.pending.Span
		if cycle == end {
			s.pending.Span += span
			return
		}
		if cycle+span <= end {
			// Another issue slot of an already-charged cycle.
			return
		}
	}
	s.flush()
	s.pending = Event{Cycle: cycle, Kind: KindCharge, Proc: s.proc, Ctx: ctx, Class: class, Span: span}
	s.hasPending = true
}

// Emit records a non-charge event, flushing any pending charge span first
// so the stream stays in cycle order.
func (s *Sink) Emit(ev Event) {
	s.flush()
	ev.Proc = s.proc
	s.append(ev)
}

// Flush closes the pending charge span. Call once when the run ends.
func (s *Sink) Flush() { s.flush() }

func (s *Sink) flush() {
	if s.hasPending {
		s.hasPending = false
		s.append(s.pending)
	}
}

func (s *Sink) append(ev Event) {
	if len(s.events) >= s.cap {
		s.dropped++
		return
	}
	s.events = append(s.events, ev)
}

// Events returns the recorded events; call Flush first.
func (s *Sink) Events() []Event { return s.events }

// Dropped returns how many events were discarded once the cap was hit.
func (s *Sink) Dropped() int64 { return s.dropped }

// ProcMetrics bundles one processor's observability hooks: its private
// counter registry, the sampler over it, and its event sink. Sampler and
// Sink are nil when the corresponding Options half is disabled.
type ProcMetrics struct {
	ID      int
	Every   int64 // sampling period; 0 when sampling is off
	Reg     *Registry
	Sampler *Sampler
	Sink    *Sink
}

// A Collector owns the metrics of one simulated cell: per-processor
// ProcMetrics plus the cell-scope registry for counters mutated across
// processors (sampled by the driver only at cycles where all processors
// have settled, so fast-forwarded and stepped runs agree).
type Collector struct {
	opts        Options
	procs       []*ProcMetrics
	cellReg     Registry
	cellSampler *Sampler
	cellEvery   int64
}

// NewCollector builds a collector for procs processors, or returns nil
// when opts enable nothing (callers pass the nil straight through).
func NewCollector(opts Options, procs int) *Collector {
	if !opts.Enabled() {
		return nil
	}
	c := &Collector{opts: opts}
	for i := 0; i < procs; i++ {
		pm := &ProcMetrics{ID: i, Reg: &Registry{}}
		if opts.SampleEvery > 0 {
			pm.Every = opts.SampleEvery
			pm.Sampler = NewSampler(pm.Reg, opts.ringCap())
		}
		if opts.Events {
			pm.Sink = NewSink(i, opts.eventCap())
		}
		c.procs = append(c.procs, pm)
	}
	if opts.SampleEvery > 0 {
		c.cellSampler = NewSampler(&c.cellReg, opts.ringCap())
	}
	return c
}

// Proc returns processor i's hooks (nil-safe on a nil collector).
func (c *Collector) Proc(i int) *ProcMetrics {
	if c == nil {
		return nil
	}
	return c.procs[i]
}

// CellRegistry returns the cell-scope registry (nil on a nil collector).
func (c *Collector) CellRegistry() *Registry {
	if c == nil {
		return nil
	}
	return &c.cellReg
}

// SampleEvery returns the configured sampling period (0 when disabled or
// the collector is nil).
func (c *Collector) SampleEvery() int64 {
	if c == nil {
		return 0
	}
	return c.opts.SampleEvery
}

// SetCellCadence records the period the driver actually samples the cell
// registry at, when settle points force it to round the configured period
// up (the MP driver rounds to its lockstep block size). Nil-safe.
func (c *Collector) SetCellCadence(every int64) {
	if c == nil {
		return
	}
	c.cellEvery = every
}

// SampleCell snapshots the cell-scope registry at the given cycle. The
// driver must call it only at cycles where every processor has settled
// exactly to cycle — on the MP that is a lockstep block boundary.
func (c *Collector) SampleCell(cycle int64) {
	if c == nil || c.cellSampler == nil {
		return
	}
	c.cellSampler.SampleAt(cycle)
}

// Series is one exported time series: the counter names and the sampled
// values. Proc is -1 for the cell-scope series.
type Series struct {
	Proc    int      `json:"proc"`
	Every   int64    `json:"every"`
	Names   []string `json:"names"`
	Samples []Sample `json:"samples"`
	Dropped int64    `json:"dropped_samples,omitempty"`
}

// CellMetrics is the complete, export-ready observability record of one
// simulated cell.
type CellMetrics struct {
	SampleEvery   int64    `json:"sample_every,omitempty"`
	Procs         []Series `json:"procs,omitempty"`
	Cell          *Series  `json:"cell,omitempty"`
	Events        []Event  `json:"events,omitempty"`
	DroppedEvents int64    `json:"dropped_events,omitempty"`
}

// Result flushes every sink and assembles the cell's metrics. Events from
// all processors are merged into a single stream ordered by (cycle, proc);
// each per-processor stream is already cycle-ordered, so a stable sort
// keeps same-cycle events of one processor in emission order.
func (c *Collector) Result() *CellMetrics {
	if c == nil {
		return nil
	}
	m := &CellMetrics{SampleEvery: c.opts.SampleEvery}
	var events []Event
	for _, pm := range c.procs {
		if pm.Sampler != nil {
			m.Procs = append(m.Procs, Series{
				Proc:    pm.ID,
				Every:   pm.Every,
				Names:   pm.Reg.Names(),
				Samples: pm.Sampler.Samples(),
				Dropped: pm.Sampler.Dropped(),
			})
		}
		if pm.Sink != nil {
			pm.Sink.Flush()
			events = append(events, pm.Sink.Events()...)
			m.DroppedEvents += pm.Sink.Dropped()
		}
	}
	if c.cellSampler != nil && len(c.cellReg.Names()) > 0 {
		cellEvery := c.opts.SampleEvery
		if c.cellEvery > 0 {
			cellEvery = c.cellEvery
		}
		m.Cell = &Series{
			Proc:    -1,
			Every:   cellEvery,
			Names:   c.cellReg.Names(),
			Samples: c.cellSampler.Samples(),
			Dropped: c.cellSampler.Dropped(),
		}
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Cycle != events[j].Cycle {
			return events[i].Cycle < events[j].Cycle
		}
		return events[i].Proc < events[j].Proc
	})
	m.Events = events
	return m
}
