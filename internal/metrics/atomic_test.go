package metrics

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"repro/internal/faultfs"
)

func TestWriteFileAtomicReplacesWholeFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "first\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "second\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "second\n" {
		t.Errorf("content = %q, want %q", data, "second\n")
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o644 {
		t.Errorf("mode = %v, want 0644", fi.Mode().Perm())
	}
}

// The satellite guarantee: a writer that dies mid-stream — here, an error
// after partial output, the observable equivalent of a kill between write
// and close — leaves the previous artifact byte-intact and no temp-file
// litter behind.
func TestWriteFileAtomicFailureKeepsOldContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	const old = "precious previous results\n"
	if err := os.WriteFile(path, []byte(old), 0o644); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("writer died mid-stream")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		// Enough output to defeat any buffering before the failure.
		junk := strings.Repeat("partial garbage ", 64*1024)
		if _, err := io.WriteString(w, junk); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the writer's error", err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != old {
		t.Errorf("failed write corrupted the artifact: %q", data)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != filepath.Base(path) {
			t.Errorf("leftover temp file %q after failed write", e.Name())
		}
	}
}

// An unwritable destination directory fails up front without touching
// anything.
func TestWriteFileAtomicBadDirectory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "no-such-dir", "out.json")
	err := WriteFileAtomic(path, func(w io.Writer) error { return nil })
	if err == nil {
		t.Fatal("write into a missing directory succeeded")
	}
}

// The parent-dir-fsync regression: under the faultfs durability model a
// rename is volatile until the directory is fsynced, so the crash image
// must show the NEW artifact (proving WriteFileAtomicFS issues the
// SyncDir) and never a half state.
func TestWriteFileAtomicRenameSurvivesCrash(t *testing.T) {
	m := faultfs.NewMem()
	if err := m.MkdirAll("/out", 0o755); err != nil {
		t.Fatal(err)
	}
	path := "/out/result.json"
	if err := WriteFileAtomicFS(m, path, func(w io.Writer) error {
		_, err := io.WriteString(w, "results v1\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}

	img := m.CrashImage()
	data, err := img.ReadFile(path)
	if err != nil {
		t.Fatalf("crash right after WriteFileAtomic lost the rename: %v", err)
	}
	if string(data) != "results v1\n" {
		t.Errorf("crash image content = %q", data)
	}
	entries, err := img.ReadDir("/out")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("crash image has stray entries: %v", entries)
	}
}

// A failed fsync on the temp file aborts the write: the destination is
// untouched (live and crash views both), and the caller sees the
// injected error.
func TestWriteFileAtomicFailedSyncAborts(t *testing.T) {
	m := faultfs.NewMem()
	if err := m.MkdirAll("/out", 0o755); err != nil {
		t.Fatal(err)
	}
	path := "/out/result.json"
	if err := WriteFileAtomicFS(m, path, func(w io.Writer) error {
		_, err := io.WriteString(w, "good run\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}

	inj := faultfs.NewInjector(m, faultfs.Plan{FailSyncAt: 1}, nil, nil)
	err := WriteFileAtomicFS(inj, path, func(w io.Writer) error {
		_, err := io.WriteString(w, "doomed rewrite\n")
		return err
	})
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("err = %v, want injected EIO", err)
	}
	for name, fsys := range map[string]faultfs.FS{"live": m, "crash image": m.CrashImage()} {
		data, err := fsys.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if string(data) != "good run\n" {
			t.Errorf("%s content after failed sync = %q", name, data)
		}
	}
	entries, err := m.ReadDir("/out")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("temp litter after failed sync: %v", entries)
	}
}
