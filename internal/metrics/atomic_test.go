package metrics

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileAtomicReplacesWholeFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "first\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "second\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "second\n" {
		t.Errorf("content = %q, want %q", data, "second\n")
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o644 {
		t.Errorf("mode = %v, want 0644", fi.Mode().Perm())
	}
}

// The satellite guarantee: a writer that dies mid-stream — here, an error
// after partial output, the observable equivalent of a kill between write
// and close — leaves the previous artifact byte-intact and no temp-file
// litter behind.
func TestWriteFileAtomicFailureKeepsOldContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	const old = "precious previous results\n"
	if err := os.WriteFile(path, []byte(old), 0o644); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("writer died mid-stream")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		// Enough output to defeat any buffering before the failure.
		junk := strings.Repeat("partial garbage ", 64*1024)
		if _, err := io.WriteString(w, junk); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the writer's error", err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != old {
		t.Errorf("failed write corrupted the artifact: %q", data)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != filepath.Base(path) {
			t.Errorf("leftover temp file %q after failed write", e.Name())
		}
	}
}

// An unwritable destination directory fails up front without touching
// anything.
func TestWriteFileAtomicBadDirectory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "no-such-dir", "out.json")
	err := WriteFileAtomic(path, func(w io.Writer) error { return nil })
	if err == nil {
		t.Fatal("write into a missing directory succeeded")
	}
}
