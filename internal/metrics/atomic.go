package metrics

import (
	"bufio"
	"io"
	"path/filepath"

	"repro/internal/faultfs"
)

// WriteFileAtomic writes a result artifact with temp-file + rename
// semantics: write streams into a temporary file in path's directory,
// which is fsynced and renamed over path only after write returns
// successfully. A crash, a failed write, or a kill mid-stream therefore
// never leaves a truncated or half-written file at path — the previous
// contents (if any) stay intact. After the rename the parent directory
// is fsynced as well, so the rename itself (not just the file's bytes)
// survives a crash. Every exporter in this repository (-json,
// -metrics-out, -trace-out, journal snapshots) goes through this
// helper.
func WriteFileAtomic(path string, write func(w io.Writer) error) error {
	return WriteFileAtomicFS(nil, path, write)
}

// WriteFileAtomicFS is WriteFileAtomic over an explicit filesystem; a
// nil fsys means the real one. Fault-injection harnesses pass a faultfs
// injector to exercise the crash-safety claim above.
func WriteFileAtomicFS(fsys faultfs.FS, path string, write func(w io.Writer) error) (err error) {
	fsys = faultfs.OrOS(fsys)
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			fsys.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriter(tmp)
	if err = write(bw); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	// CreateTemp opens 0600; artifacts should be as readable as a plain
	// os.Create file (modulo umask, which rename does not re-apply).
	if err = tmp.Chmod(0o644); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = fsys.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// The rename updated the directory, not the file: without this the
	// new entry can vanish on crash even though the file data is synced.
	return fsys.SyncDir(dir)
}
