package metrics

import (
	"bufio"
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes a result artifact with temp-file + rename
// semantics: write streams into a temporary file in path's directory,
// which is fsynced and renamed over path only after write returns
// successfully. A crash, a failed write, or a kill mid-stream therefore
// never leaves a truncated or half-written file at path — the previous
// contents (if any) stay intact. Every exporter in this repository
// (-json, -metrics-out, -trace-out, journal snapshots) goes through
// this helper.
func WriteFileAtomic(path string, write func(w io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriter(tmp)
	if err = write(bw); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	// CreateTemp opens 0600; artifacts should be as readable as a plain
	// os.Create file (modulo umask, which rename does not re-apply).
	if err = tmp.Chmod(0o644); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
