package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// knownKinds is the closed set of event kinds the exporters emit;
// cmd/obscheck rejects anything else.
var knownKinds = map[string]bool{
	KindCharge:       true,
	KindIssue:        true,
	KindMissStart:    true,
	KindMissFill:     true,
	KindCtxSwitch:    true,
	KindSyncRetry:    true,
	KindInval:        true,
	KindWatchdogArm:  true,
	KindWatchdogTrip: true,
	KindDrain:        true,
}

// ValidateJSONL checks a JSON-lines metrics export against the schema
// documented in export.go: every line is a JSON object of a known type;
// sample lines follow a series line for their (scope, proc) stream and
// carry exactly len(names) values; cycles are non-decreasing within each
// sample stream and within the event stream; event kinds come from the
// closed Kind* set. A "cell" delimiter line resets all stream state.
// It returns the number of lines read alongside the first violation.
func ValidateJSONL(r io.Reader) (lines int, err error) {
	type streamState struct {
		names     int
		lastCycle int64
	}
	streams := map[string]*streamState{}
	var lastEvent int64
	sawMeta := false

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		lines++
		fail := func(format string, args ...any) error {
			return fmt.Errorf("line %d: %s", lines, fmt.Sprintf(format, args...))
		}
		var line struct {
			Type   string   `json:"type"`
			Label  string   `json:"label"`
			Scope  string   `json:"scope"`
			Proc   int      `json:"proc"`
			Every  int64    `json:"every"`
			Names  []string `json:"names"`
			Cycle  int64    `json:"cycle"`
			Values []int64  `json:"values"`
			Kind   string   `json:"kind"`
			Span   int64    `json:"span"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return lines, fail("not a JSON object: %v", err)
		}
		key := fmt.Sprintf("%s/%d", line.Scope, line.Proc)
		switch line.Type {
		case "cell":
			if line.Label == "" {
				return lines, fail("cell delimiter without a label")
			}
			streams = map[string]*streamState{}
			lastEvent = 0
			sawMeta = false
		case "meta":
			sawMeta = true
		case "series":
			if !sawMeta {
				return lines, fail("series before the meta line")
			}
			if line.Scope != "proc" && line.Scope != "cell" {
				return lines, fail("unknown series scope %q", line.Scope)
			}
			if line.Every < 0 {
				return lines, fail("negative sampling period %d", line.Every)
			}
			streams[key] = &streamState{names: len(line.Names)}
		case "sample":
			st := streams[key]
			if st == nil {
				return lines, fail("sample for stream %s before its series line", key)
			}
			if len(line.Values) != st.names {
				return lines, fail("sample for stream %s has %d values, series declared %d names",
					key, len(line.Values), st.names)
			}
			if line.Cycle < st.lastCycle {
				return lines, fail("stream %s cycle went backwards: %d after %d",
					key, line.Cycle, st.lastCycle)
			}
			st.lastCycle = line.Cycle
		case "event":
			if !knownKinds[line.Kind] {
				return lines, fail("unknown event kind %q", line.Kind)
			}
			if line.Cycle < lastEvent {
				return lines, fail("event stream cycle went backwards: %d after %d",
					line.Cycle, lastEvent)
			}
			lastEvent = line.Cycle
			if line.Kind == KindCharge && line.Span < 1 {
				return lines, fail("charge event with span %d", line.Span)
			}
		default:
			return lines, fail("unknown line type %q", line.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return lines, err
	}
	if lines == 0 {
		return 0, fmt.Errorf("empty file")
	}
	return lines, nil
}

// ValidateChromeTrace checks a Chrome trace_event export: the file is one
// JSON object with a traceEvents array whose entries use the phases the
// exporter emits (X with a duration, i, C), with non-negative timestamps.
// It returns the number of trace events alongside the first violation.
func ValidateChromeTrace(r io.Reader) (events int, err error) {
	var tr struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   int64  `json:"ts"`
			Dur  *int64 `json:"dur"`
		} `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&tr); err != nil {
		return 0, fmt.Errorf("not a JSON trace object: %v", err)
	}
	for i, ev := range tr.TraceEvents {
		switch {
		case ev.Name == "":
			return i, fmt.Errorf("traceEvents[%d]: missing name", i)
		case ev.Ts < 0:
			return i, fmt.Errorf("traceEvents[%d]: negative timestamp %d", i, ev.Ts)
		case ev.Ph == "X":
			if ev.Dur == nil || *ev.Dur < 1 {
				return i, fmt.Errorf("traceEvents[%d]: complete event without a positive duration", i)
			}
		case ev.Ph == "i", ev.Ph == "C":
			// instant and counter events carry no duration
		default:
			return i, fmt.Errorf("traceEvents[%d]: unknown phase %q", i, ev.Ph)
		}
	}
	return len(tr.TraceEvents), nil
}
