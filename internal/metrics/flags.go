package metrics

import (
	"flag"
	"io"
	"path/filepath"
	"strings"
)

// Flags carries the observability command-line surface shared by
// cmd/experiments, cmd/uniprog and cmd/mpsim.
type Flags struct {
	MetricsOut  string
	TraceOut    string
	SampleEvery int64
}

// DefaultSampleEvery is the sampling period used when -metrics-out is
// given without an explicit -sample-every.
const DefaultSampleEvery = 4096

// BindFlags registers the observability flags on fs.
func BindFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.MetricsOut, "metrics-out", "", "write sampled metric series (and any recorded events) as JSON-lines to this file")
	fs.StringVar(&f.TraceOut, "trace-out", "", "write the event trace in Chrome trace_event format (Perfetto-loadable) to this file")
	fs.Int64Var(&f.SampleEvery, "sample-every", 0, "sampling period in simulated cycles (default 4096 when -metrics-out is set)")
	return f
}

// Options resolves the flags into simulation options: -trace-out turns on
// the event trace, -metrics-out turns on sampling (defaulting the period),
// and an explicit -sample-every turns on sampling even when the series are
// only consumed through a -json blob.
func (f *Flags) Options() Options {
	o := Options{SampleEvery: f.SampleEvery, Events: f.TraceOut != ""}
	if f.MetricsOut != "" && o.SampleEvery == 0 {
		o.SampleEvery = DefaultSampleEvery
	}
	return o
}

// Write exports m to the configured files. label tags the cell inside the
// JSON-lines output; suffix (when non-empty) is inserted before each file
// extension so multi-cell commands can emit one file per cell. Both files
// are written atomically (temp + rename), so an interrupted run never
// leaves a truncated export behind.
func (f *Flags) Write(m *CellMetrics, label, suffix string) error {
	if m == nil {
		return nil
	}
	if f.MetricsOut != "" {
		err := WriteFileAtomic(SuffixPath(f.MetricsOut, suffix), func(w io.Writer) error {
			return WriteJSONL(w, m, label)
		})
		if err != nil {
			return err
		}
	}
	if f.TraceOut != "" {
		err := WriteFileAtomic(SuffixPath(f.TraceOut, suffix), func(w io.Writer) error {
			return WriteChromeTrace(w, m)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// SuffixPath inserts ".suffix" before path's extension: SuffixPath("a/b.jsonl",
// "4ctx") is "a/b.4ctx.jsonl". An empty suffix returns path unchanged.
func SuffixPath(path, suffix string) string {
	if suffix == "" {
		return path
	}
	ext := filepath.Ext(path)
	return strings.TrimSuffix(path, ext) + "." + suffix + ext
}
