package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// JSON-lines export. Every line is one JSON object with a "type" field:
//
//	{"type":"meta","sample_every":N}
//	{"type":"cell","label":"..."}                      — optional grid-cell delimiter
//	{"type":"series","scope":"proc"|"cell","proc":i,"every":N,"names":[...]}
//	{"type":"sample","scope":"proc"|"cell","proc":i,"cycle":C,"values":[...]}
//	{"type":"event","kind":"...","cycle":C,"proc":i,"ctx":k,...}
//
// Sample lines follow their series line and carry exactly len(names)
// values: the counter readings after every cycle < C completed. Cycles are
// non-decreasing within one (scope, proc) stream and within the event
// stream. cmd/obscheck validates all of this.

type metaLine struct {
	Type        string `json:"type"`
	SampleEvery int64  `json:"sample_every,omitempty"`
}

type cellLine struct {
	Type  string `json:"type"`
	Label string `json:"label"`
}

type seriesLine struct {
	Type  string   `json:"type"`
	Scope string   `json:"scope"`
	Proc  int      `json:"proc"`
	Every int64    `json:"every"`
	Names []string `json:"names"`
}

type sampleLine struct {
	Type   string  `json:"type"`
	Scope  string  `json:"scope"`
	Proc   int     `json:"proc"`
	Cycle  int64   `json:"cycle"`
	Values []int64 `json:"values"`
}

type eventLine struct {
	Type string `json:"type"`
	Event
}

// WriteJSONL writes m as JSON-lines. label, when non-empty, prefixes the
// records with a cell-delimiter line so several cells can share one file.
func WriteJSONL(w io.Writer, m *CellMetrics, label string) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if label != "" {
		if err := enc.Encode(cellLine{Type: "cell", Label: label}); err != nil {
			return err
		}
	}
	if err := enc.Encode(metaLine{Type: "meta", SampleEvery: m.SampleEvery}); err != nil {
		return err
	}
	series := func(scope string, s *Series) error {
		if err := enc.Encode(seriesLine{Type: "series", Scope: scope, Proc: s.Proc, Every: s.Every, Names: s.Names}); err != nil {
			return err
		}
		for _, sm := range s.Samples {
			if err := enc.Encode(sampleLine{Type: "sample", Scope: scope, Proc: s.Proc, Cycle: sm.Cycle, Values: sm.Values}); err != nil {
				return err
			}
		}
		return nil
	}
	for i := range m.Procs {
		if err := series("proc", &m.Procs[i]); err != nil {
			return err
		}
	}
	if m.Cell != nil {
		if err := series("cell", m.Cell); err != nil {
			return err
		}
	}
	for _, ev := range m.Events {
		if err := enc.Encode(eventLine{Type: "event", Event: ev}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Chrome trace_event export: the JSON object format ("traceEvents"),
// loadable directly in Perfetto / chrome://tracing. Simulated cycles are
// mapped onto trace microseconds. Charge spans and issues become complete
// ("X") events on track (pid=proc, tid=ctx); other records become instant
// ("i") events; counter samples become counter ("C") tracks carrying the
// per-class slot counters.

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  *int64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes m in Chrome trace_event format.
func WriteChromeTrace(w io.Writer, m *CellMetrics) error {
	var tr chromeTrace
	tr.DisplayTimeUnit = "ms"
	for _, ev := range m.Events {
		ce := chromeEvent{Ts: ev.Cycle, Pid: ev.Proc, Tid: ev.Ctx}
		switch ev.Kind {
		case KindCharge:
			span := ev.Span
			ce.Ph, ce.Name, ce.Cat, ce.Dur = "X", ev.Class, "slots", &span
		case KindIssue:
			one := int64(1)
			ce.Ph, ce.Name, ce.Cat, ce.Dur = "X", ev.Class, "issue", &one
		default:
			ce.Ph, ce.Name, ce.Cat, ce.S = "i", ev.Kind, "events", "t"
			args := map[string]any{}
			if ev.Class != "" {
				args["class"] = ev.Class
			}
			if ev.Addr != 0 {
				args["addr"] = fmt.Sprintf("%#x", ev.Addr)
			}
			if ev.Arg != 0 {
				args["arg"] = ev.Arg
			}
			if len(args) > 0 {
				ce.Args = args
			}
		}
		tr.TraceEvents = append(tr.TraceEvents, ce)
	}
	for _, s := range m.Procs {
		tr.TraceEvents = append(tr.TraceEvents, counterEvents(&s)...)
	}
	if m.Cell != nil {
		tr.TraceEvents = append(tr.TraceEvents, counterEvents(m.Cell)...)
	}
	enc, err := json.Marshal(&tr)
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	_, err = w.Write(enc)
	return err
}

// counterEvents renders a series' slot-class counters (names beginning
// "slots/") as one stacked counter track, and every other counter as an
// individually named track.
func counterEvents(s *Series) []chromeEvent {
	var out []chromeEvent
	for _, sm := range s.Samples {
		slots := map[string]any{}
		for i, name := range s.Names {
			if i >= len(sm.Values) {
				break
			}
			if rest, ok := strings.CutPrefix(name, "slots/"); ok {
				slots[rest] = sm.Values[i]
				continue
			}
			out = append(out, chromeEvent{
				Name: name, Ph: "C", Ts: sm.Cycle, Pid: s.Proc,
				Args: map[string]any{"value": sm.Values[i]},
			})
		}
		if len(slots) > 0 {
			out = append(out, chromeEvent{Name: "slots", Ph: "C", Ts: sm.Cycle, Pid: s.Proc, Args: slots})
		}
	}
	return out
}
