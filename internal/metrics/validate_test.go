package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func validationCell() *CellMetrics {
	return &CellMetrics{
		SampleEvery: 100,
		Procs: []Series{{
			Proc:  0,
			Every: 100,
			Names: []string{"cycles", "slots/busy"},
			Samples: []Sample{
				{Cycle: 100, Values: []int64{100, 80}},
				{Cycle: 200, Values: []int64{200, 150}},
			},
		}},
		Cell: &Series{
			Proc:    -1,
			Every:   128,
			Names:   []string{"chaos/draws"},
			Samples: []Sample{{Cycle: 128, Values: []int64{3}}},
		},
		Events: []Event{
			{Cycle: 5, Kind: KindCharge, Proc: 0, Ctx: 1, Class: "dmem", Span: 10},
			{Cycle: 20, Kind: KindMissStart, Proc: 0, Ctx: -1, Class: "memory", Addr: 64, Arg: 60},
			{Cycle: 60, Kind: KindMissFill, Proc: 0, Ctx: -1, Addr: 64, Arg: 60},
		},
	}
}

// Everything the exporters emit must pass the validator — including a
// multi-cell concatenation, which is how cmd/experiments writes grids.
func TestValidateJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, validationCell(), "cellA"); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&buf, validationCell(), "cellB"); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateJSONL(&buf)
	if err != nil {
		t.Fatalf("valid export rejected: %v", err)
	}
	// Per cell: delimiter, meta, proc series + 2 samples, cell series +
	// 1 sample, 3 events = 10 lines.
	if want := 2 * 10; n != want {
		t.Errorf("validated %d lines, want %d", n, want)
	}
}

func TestValidateJSONLRejects(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"garbage", "not json\n", "not a JSON object"},
		{"unknown type", `{"type":"mystery"}` + "\n", "unknown line type"},
		{"series before meta", `{"type":"series","scope":"proc","proc":0,"names":["a"]}` + "\n", "before the meta"},
		{"orphan sample", `{"type":"meta"}` + "\n" +
			`{"type":"sample","scope":"proc","proc":0,"cycle":1,"values":[1]}` + "\n", "before its series"},
		{"value count", `{"type":"meta"}` + "\n" +
			`{"type":"series","scope":"proc","proc":0,"names":["a","b"]}` + "\n" +
			`{"type":"sample","scope":"proc","proc":0,"cycle":1,"values":[1]}` + "\n", "values"},
		{"backwards sample", `{"type":"meta"}` + "\n" +
			`{"type":"series","scope":"proc","proc":0,"names":["a"]}` + "\n" +
			`{"type":"sample","scope":"proc","proc":0,"cycle":9,"values":[1]}` + "\n" +
			`{"type":"sample","scope":"proc","proc":0,"cycle":4,"values":[2]}` + "\n", "backwards"},
		{"unknown kind", `{"type":"meta"}` + "\n" +
			`{"type":"event","kind":"teleport","cycle":1}` + "\n", "unknown event kind"},
		{"backwards event", `{"type":"meta"}` + "\n" +
			`{"type":"event","kind":"issue","cycle":9}` + "\n" +
			`{"type":"event","kind":"issue","cycle":4}` + "\n", "backwards"},
		{"spanless charge", `{"type":"meta"}` + "\n" +
			`{"type":"event","kind":"charge","cycle":1}` + "\n", "span"},
		{"unlabeled cell", `{"type":"cell"}` + "\n", "label"},
		{"empty", "", "empty"},
	}
	for _, c := range cases {
		_, err := ValidateJSONL(strings.NewReader(c.in))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestValidateChromeTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, validationCell()); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	if n == 0 {
		t.Error("trace validated zero events")
	}
}

func TestValidateChromeTraceRejects(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"garbage", "nope", "not a JSON trace"},
		{"bad phase", `{"traceEvents":[{"name":"x","ph":"Q","ts":1}]}`, "unknown phase"},
		{"durationless X", `{"traceEvents":[{"name":"x","ph":"X","ts":1}]}`, "duration"},
		{"negative ts", `{"traceEvents":[{"name":"x","ph":"i","ts":-1}]}`, "negative timestamp"},
		{"nameless", `{"traceEvents":[{"ph":"i","ts":1}]}`, "missing name"},
	}
	for _, c := range cases {
		_, err := ValidateChromeTrace(strings.NewReader(c.in))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}
