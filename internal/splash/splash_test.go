package splash

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mp"
	"repro/internal/prog"
)

func buildOpts(threads int) Options {
	return Options{
		CodeBase:     0x0100_0000,
		DataBase:     0x5000_0000,
		Yield:        prog.YieldBackoff,
		AutoTolerate: true,
		NumThreads:   threads,
		Steps:        1,
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"mp3d", "barnes", "water", "ocean", "locus", "pthor", "cholesky"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d apps, want %d", len(reg), len(want))
	}
	for _, n := range want {
		if _, ok := reg[n]; !ok {
			t.Errorf("app %q missing", n)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown app lookup succeeded")
	}
}

// Every app must build and run to completion on a small multiprocessor
// under every scheme, with sync time recorded.
func TestEveryAppCompletes(t *testing.T) {
	for name, app := range Registry() {
		for _, tc := range []struct {
			scheme core.Scheme
			ctx    int
		}{
			{core.Single, 1},
			{core.Blocked, 2},
			{core.Interleaved, 2},
		} {
			cfg := mp.DefaultConfig(tc.scheme, tc.ctx)
			cfg.Processors = 4
			cfg.LimitCycles = 20_000_000
			threads := cfg.Processors * tc.ctx
			p := app.Build(buildOpts(threads))
			res, err := mp.Run(p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Completed {
				t.Fatalf("%s %v/%d did not complete", name, tc.scheme, tc.ctx)
			}
			if res.Stats.Retired == 0 {
				t.Fatalf("%s: nothing retired", name)
			}
			sync := res.Stats.Slots[core.SlotSync] + res.Stats.Slots[core.SlotSyncBusy]
			if sync == 0 {
				t.Errorf("%s (%v): no synchronization time recorded", name, tc.scheme)
			}
		}
	}
}

// Apps must work at one thread too (the SP uniprocessor workload).
func TestSingleThreadBuilds(t *testing.T) {
	for name, app := range Registry() {
		cfg := mp.DefaultConfig(core.Single, 1)
		cfg.Processors = 1
		cfg.LimitCycles = 20_000_000
		p := app.Build(buildOpts(1))
		res, err := mp.Run(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("%s single-thread did not complete", name)
		}
	}
}

// Character checks tied to the paper's descriptions.
func TestAppCharacters(t *testing.T) {
	run := func(name string, procs, ctx int) *mp.Result {
		app, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := mp.DefaultConfig(core.Interleaved, ctx)
		if ctx == 1 {
			cfg = mp.DefaultConfig(core.Single, 1)
		}
		cfg.Processors = procs
		cfg.LimitCycles = 40_000_000
		res, err := mp.Run(app.Build(buildOpts(procs*ctx)), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("%s did not complete", name)
		}
		return res
	}

	// barnes and water: long instruction stalls (divides) must be a major
	// stall component on a single context per node (the paper's "large
	// amounts of instruction latency, mainly due to floating-point
	// divides").
	for _, n := range []string{"barnes", "water"} {
		res := run(n, 4, 1)
		long := res.Stats.Slots[core.SlotStallLong]
		short := res.Stats.Slots[core.SlotStallShort]
		if long*2 < short {
			t.Errorf("%s: long stalls %d vs short %d; divides should be a major component",
				n, long, short)
		}
	}

	// pthor: synchronization-bound.
	res := run("pthor", 4, 1)
	sync := res.Stats.Slots[core.SlotSync] + res.Stats.Slots[core.SlotSyncBusy]
	if frac := float64(sync) / float64(res.Stats.Cycles); frac < 0.10 {
		t.Errorf("pthor sync fraction = %.2f, want >= 0.10", frac)
	}

	// cholesky: adding contexts must NOT speed it up appreciably (the
	// paper's Table 10 shows ~1.0 for all configurations).
	base := run("cholesky", 4, 1)
	multi := run("cholesky", 4, 4)
	speedup := float64(base.Cycles) / float64(multi.Cycles)
	if speedup > 1.3 {
		t.Errorf("cholesky speedup with 4 contexts = %.2f, want ~1.0 (limited parallelism)", speedup)
	}

	// mp3d: communication-bound — remote traffic should dwarf local.
	res = run("mp3d", 4, 1)
	if res.Stats.Slots[core.SlotDMem] == 0 {
		t.Error("mp3d recorded no memory stall time")
	}
}
