// Package splash provides the synthetic parallel application suite that
// stands in for the paper's SPLASH programs (Table 9). Each app is a real
// SPMD program in the simulated ISA — threads receive their id and count
// in registers, partition shared data, synchronize with the TAS-based lock
// and barrier library — and reproduces its SPLASH counterpart's reported
// signature:
//
//   - mp3d: high communication miss rate (scattered writes to shared cells)
//   - barnes, water: heavy double-precision divide density (the two apps
//     the paper singles out for large instruction latency)
//   - ocean: nearest-neighbour grid sharing with per-sweep barriers
//   - locus, pthor: task queues under locks (synchronization-bound)
//   - cholesky: a dominant serial section (the one app the paper reports
//     gaining nothing from multiple contexts)
//
// The substitution rationale is given in DESIGN.md §3.
package splash

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/prog"
)

// Options parameterize an app build.
type Options struct {
	CodeBase uint32
	DataBase uint32
	DataSize uint32 // 0 selects 32 MiB

	Yield        prog.YieldMode
	AutoTolerate bool

	// NumThreads is the SPMD width the program synchronizes across
	// (processors × contexts).
	NumThreads int

	// Steps is the number of outer time steps; 0 selects the app's
	// default. Very large values make the app effectively endless (used
	// for the uniprocessor SP workload).
	Steps int

	// Scale multiplies data sizes; 0 means 1.
	Scale int
}

func (o Options) normalize(defaultSteps int) Options {
	if o.DataSize == 0 {
		o.DataSize = 32 << 20
	}
	if o.NumThreads == 0 {
		o.NumThreads = 1
	}
	if o.Steps == 0 {
		o.Steps = defaultSteps
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
	return o
}

// App is a buildable SPMD application.
type App struct {
	Name  string
	Build func(Options) *prog.Program

	// Racy marks apps with deliberately unsynchronized shared writes
	// (mp3d's cell scatter). Their final memory is scheduling-dependent,
	// so chaos-mode byte-identity checks do not apply to them; for every
	// other app, timing perturbation must leave final memory unchanged.
	Racy bool
}

// Registry returns the seven apps by name.
func Registry() map[string]App {
	as := []App{MP3D(), Barnes(), Water(), Ocean(), Locus(), PTHOR(), Cholesky()}
	m := make(map[string]App, len(as))
	for _, a := range as {
		m[a.Name] = a
	}
	return m
}

// Lookup returns the app named name.
func Lookup(name string) (App, error) {
	a, ok := Registry()[name]
	if !ok {
		return App{}, fmt.Errorf("splash: unknown app %q", name)
	}
	return a, nil
}

// Register conventions shared by all apps (mp.Run fills R4/R5).
const (
	rTid      = isa.R4
	rNThreads = isa.R5
	rBarrier  = isa.R6
	rSense    = isa.R7
	rTmpA     = isa.R2 // sync-library scratch
	rTmpB     = isa.R3
	rStep     = isa.R26
)

// appBuilder wraps prog.Builder with the SPMD prologue and barrier
// conventions.
type appBuilder struct {
	*prog.Builder
	o Options
}

func newApp(name string, o Options) *appBuilder {
	b := prog.NewBuilder(name, o.CodeBase, o.DataBase, o.DataSize)
	b.SetYield(o.Yield)
	b.SetAutoTolerate(o.AutoTolerate)
	return &appBuilder{Builder: b, o: o}
}

// prologue allocates the global barrier and initializes the sync registers.
// Single-threaded builds (the workstation's SP workload) bake the thread
// identity into the program, since only the multiprocessor runner sets the
// identity registers.
func (b *appBuilder) prologue() {
	bar := b.AllocBarrier()
	b.La(rBarrier, bar)
	b.Li(rSense, 0)
	b.Li(rStep, uint32(b.o.Steps))
	if b.o.NumThreads == 1 {
		b.Li(rTid, 0)
		b.Li(rNThreads, 1)
	}
}

// barrier emits a global barrier across all threads.
func (b *appBuilder) barrier() {
	b.Barrier(rBarrier, rNThreads, rSense, rTmpA, rTmpB)
}

// stepLoop brackets fn with the outer time-step loop and the final halt.
func (b *appBuilder) stepLoop(fn func()) {
	b.Label("step_top")
	fn()
	b.Addi(rStep, rStep, -1)
	b.Bgtz(rStep, "step_top")
	b.barrier()
	b.Halt()
}

// myChunk computes this thread's [start, end) element range over total
// elements into startReg/endReg (clobbers tmp). total must be a multiple
// of the largest thread count used.
func (b *appBuilder) myChunk(total int, startReg, endReg, tmp isa.Reg) {
	b.Li(tmp, uint32(total))
	b.Divu(tmp, tmp, rNThreads) // chunk size
	b.Mul(startReg, rTid, tmp)
	b.Add(endReg, startReg, tmp)
}
