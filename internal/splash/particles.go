package splash

import (
	"repro/internal/isa"
	"repro/internal/prog"
)

// MP3D models the SPLASH rarefied-flow simulator: each thread advances its
// particles and scatters their contributions into a shared space-cell
// array written by every thread — the highest communication miss rate in
// the suite.
func MP3D() App {
	return App{Name: "mp3d", Racy: true, Build: func(o Options) *prog.Program {
		o = o.normalize(4)
		const np = 16384
		const nc = 4096
		b := newApp("mp3d", o)
		pos := b.Alloc(np*8, 64)
		vel := b.Alloc(np*8, 64)
		cells := b.Alloc(nc*8, 64)
		for i := 0; i < np; i++ {
			b.InitF(pos+uint32(8*i), float64((i*37)%nc))
			b.InitF(vel+uint32(8*i), 0.5+float64(i%7)*0.25)
		}

		b.prologue()
		b.stepLoop(func() {
			b.myChunk(np, isa.R8, isa.R9, isa.R10)
			// R11 = &pos[start], R12 = &vel[start], R16 = cells
			b.Sll(isa.R10, isa.R8, 3)
			b.La(isa.R11, pos)
			b.Add(isa.R11, isa.R11, isa.R10)
			b.La(isa.R12, vel)
			b.Add(isa.R12, isa.R12, isa.R10)
			b.La(isa.R16, cells)

			b.Label("mp3d_part")
			b.Fld(isa.F1, isa.R11, 0) // x
			b.Fld(isa.F2, isa.R12, 0) // v
			b.FAdd(isa.F1, isa.F1, isa.F2)
			b.Fsd(isa.F1, isa.R11, 0)
			// Scatter into cell int(x) & (nc-1): shared, write-contended.
			b.Mfc1(isa.R13, isa.F1)
			b.Andi(isa.R13, isa.R13, nc-1)
			b.Sll(isa.R13, isa.R13, 3)
			b.Add(isa.R14, isa.R16, isa.R13)
			b.Fld(isa.F3, isa.R14, 0)
			b.FAdd(isa.F3, isa.F3, isa.F2)
			b.Fsd(isa.F3, isa.R14, 0)
			b.Addi(isa.R11, isa.R11, 8)
			b.Addi(isa.R12, isa.R12, 8)
			b.Addi(isa.R8, isa.R8, 1)
			b.Slt(isa.R15, isa.R8, isa.R9)
			b.Bne(isa.R15, isa.R0, "mp3d_part")
			b.barrier()
		})
		return b.MustBuild()
	}}
}

// Barnes models the SPLASH hierarchical N-body code: for every body, a
// walk over gravity cells computing mass/distance² — one double divide per
// cell visited. With Water it carries the suite's largest long-instruction
// latency, the paper's showcase for the interleaved scheme's backoff.
func Barnes() App {
	return App{Name: "barnes", Build: func(o Options) *prog.Program {
		o = o.normalize(2)
		const nb = 2048
		const ncell = 128
		b := newApp("barnes", o)
		bodies := b.Alloc(nb*16, 64) // {x, force} pairs
		cellsA := b.Alloc(ncell*16, 64)
		for i := 0; i < nb; i++ {
			b.InitF(bodies+uint32(16*i), float64(i%61))
		}
		for i := 0; i < ncell; i++ {
			b.InitF(cellsA+uint32(16*i), 4.0+float64(i%9))   // mass
			b.InitF(cellsA+uint32(16*i+8), float64(i%53)*.7) // position
		}
		eps := b.Alloc(16, 8)
		b.InitF(eps, 0.3)
		b.InitF(eps+8, 0.01) // dt

		b.prologue()
		b.La(isa.R20, eps)
		b.Fld(isa.F7, isa.R20, 0)  // eps
		b.Fld(isa.F10, isa.R20, 8) // dt
		b.stepLoop(func() {
			b.myChunk(nb, isa.R8, isa.R9, isa.R10)
			b.Sll(isa.R10, isa.R8, 4)
			b.La(isa.R11, bodies)
			b.Add(isa.R11, isa.R11, isa.R10)
			b.La(isa.R16, cellsA)

			b.Label("bn_body")
			b.Fld(isa.F1, isa.R11, 0)      // x
			b.FSub(isa.F2, isa.F2, isa.F2) // force = 0
			// Tree walk: eight pseudo-random cells.
			b.Li(isa.R17, 13)
			b.Mul(isa.R12, isa.R8, isa.R17) // walk seed
			for c := 0; c < 8; c++ {
				b.Addi(isa.R13, isa.R12, int32(29*c))
				b.Andi(isa.R13, isa.R13, ncell-1)
				b.Sll(isa.R13, isa.R13, 4)
				b.Add(isa.R14, isa.R16, isa.R13)
				b.Fld(isa.F3, isa.R14, 0) // mass
				b.Fld(isa.F4, isa.R14, 8) // cx
				b.FSub(isa.F5, isa.F4, isa.F1)
				b.FMul(isa.F6, isa.F5, isa.F5)
				b.FAdd(isa.F6, isa.F6, isa.F7)
				if c%4 == 0 {
					// Exact mass/dist² for the near cells...
					b.FDivD(isa.F8, isa.F3, isa.F6)
				} else {
					// ...multipole-style approximation for the far ones.
					b.FMul(isa.F8, isa.F3, isa.F7)
					b.FSub(isa.F8, isa.F8, isa.F6)
					b.FAbs(isa.F8, isa.F8)
					b.FMul(isa.F8, isa.F8, isa.F7)
				}
				b.FAdd(isa.F2, isa.F2, isa.F8)
			}
			b.Fsd(isa.F2, isa.R11, 8) // force
			b.FMul(isa.F9, isa.F2, isa.F10)
			b.FAdd(isa.F1, isa.F1, isa.F9)
			b.Fsd(isa.F1, isa.R11, 0)
			b.Addi(isa.R11, isa.R11, 16)
			b.Addi(isa.R8, isa.R8, 1)
			b.Slt(isa.R15, isa.R8, isa.R9)
			b.Bne(isa.R15, isa.R0, "bn_body")
			b.barrier()
		})
		return b.MustBuild()
	}}
}

// Water models the SPLASH molecular-dynamics code: pairwise interactions
// within a neighbourhood window, each pair costing a square root and a
// divide (long instruction latency), with the window crossing partition
// boundaries (moderate sharing).
func Water() App {
	return App{Name: "water", Build: func(o Options) *prog.Program {
		o = o.normalize(2)
		const nm = 4096
		b := newApp("water", o)
		x := b.Alloc(nm*8, 64)
		force := b.Alloc(nm*8, 64)
		for i := 0; i < nm; i++ {
			b.InitF(x+uint32(8*i), float64(i%97)*0.5)
		}
		consts := b.Alloc(16, 8)
		b.InitF(consts, 0.25)  // eps
		b.InitF(consts+8, 1.0) // one

		b.prologue()
		b.La(isa.R20, consts)
		b.Fld(isa.F7, isa.R20, 0)  // eps
		b.Fld(isa.F10, isa.R20, 8) // 1.0
		b.stepLoop(func() {
			b.myChunk(nm, isa.R8, isa.R9, isa.R10)
			b.La(isa.R16, x)
			b.La(isa.R17, force)

			b.Label("wt_mol")
			b.Sll(isa.R10, isa.R8, 3)
			b.Add(isa.R11, isa.R16, isa.R10)
			b.Fld(isa.F1, isa.R11, 0)      // x[i]
			b.FSub(isa.F2, isa.F2, isa.F2) // acc = 0
			// Four neighbours, wrapping: crosses the partition edge.
			for j := 1; j <= 4; j++ {
				b.Addi(isa.R12, isa.R8, int32(j))
				b.Andi(isa.R12, isa.R12, nm-1)
				b.Sll(isa.R12, isa.R12, 3)
				b.Add(isa.R13, isa.R16, isa.R12)
				b.Fld(isa.F3, isa.R13, 0)
				b.FSub(isa.F4, isa.F3, isa.F1)
				b.FMul(isa.F5, isa.F4, isa.F4)
				b.FAdd(isa.F5, isa.F5, isa.F7)
				if j == 1 {
					b.FSqrt(isa.F6, isa.F5)          // r
					b.FDivD(isa.F8, isa.F10, isa.F6) // 1/r
				} else {
					// Truncated series for the longer-range pairs.
					b.FMul(isa.F6, isa.F5, isa.F7)
					b.FSub(isa.F8, isa.F10, isa.F6)
					b.FMul(isa.F8, isa.F8, isa.F8)
					b.FAdd(isa.F8, isa.F8, isa.F7)
				}
				b.FAdd(isa.F2, isa.F2, isa.F8)
			}
			b.Add(isa.R14, isa.R17, isa.R10)
			b.Fld(isa.F9, isa.R14, 0)
			b.FAdd(isa.F9, isa.F9, isa.F2)
			b.Fsd(isa.F9, isa.R14, 0)
			b.Addi(isa.R8, isa.R8, 1)
			b.Slt(isa.R15, isa.R8, isa.R9)
			b.Bne(isa.R15, isa.R0, "wt_mol")
			b.barrier()
		})
		return b.MustBuild()
	}}
}
