package splash

// Functional (value-level) checks of the parallel applications: the
// synchronization protocols must make certain results exact regardless of
// scheme, context count, or timing.

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/mp"
	"repro/internal/prog"
)

// locusGridBase mirrors buildLocus's allocation order: barrier-affecting
// allocations happen inside prologue after these three.
const (
	locusDataBase = 0x5000_0000
	locusQlock    = locusDataBase     // 64-aligned lock line
	locusCounter  = locusQlock + 64   // counter line
	locusGrid     = locusCounter + 64 // 4096 doubles
	locusTasks    = 256
	locusHops     = 36
)

// TestLocusGridSumExact: every task adds exactly 1.0 to each of its hops'
// cells, so the grid total must equal steps × tasks × hops under every
// scheme and context count (FP addition of small integers is exact).
func TestLocusGridSumExact(t *testing.T) {
	for _, tc := range []struct {
		scheme core.Scheme
		ctx    int
		procs  int
	}{
		{core.Single, 1, 4},
		{core.Blocked, 2, 4},
		{core.Interleaved, 4, 4},
	} {
		cfg := mp.DefaultConfig(tc.scheme, tc.ctx)
		cfg.Processors = tc.procs
		cfg.LimitCycles = 50_000_000
		const steps = 2
		p := Locus().Build(Options{
			CodeBase: 0x0100_0000, DataBase: locusDataBase,
			Yield:        prog.YieldBackoff,
			AutoTolerate: true,
			NumThreads:   tc.procs * tc.ctx,
			Steps:        steps,
		})
		res, err := mp.Run(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("%v/%d did not complete", tc.scheme, tc.ctx)
		}
		sum := 0.0
		for i := uint32(0); i < 4096; i++ {
			sum += math.Float64frombits(res.Mem.LoadD(locusGrid + 8*i))
		}
		want := float64(steps * locusTasks * locusHops)
		if sum != want {
			t.Errorf("%v/%d: grid sum = %v, want %v (lost or duplicated tasks)",
				tc.scheme, tc.ctx, sum, want)
		}
	}
}

// TestSingleThreadSchemeEquivalence: with one thread there are no races,
// so the final functional memory must be bit-identical across schemes.
func TestSingleThreadSchemeEquivalence(t *testing.T) {
	run := func(s core.Scheme) map[uint32]uint64 {
		cfg := mp.DefaultConfig(s, 1)
		cfg.Processors = 1
		cfg.LimitCycles = 100_000_000
		p := Water().Build(Options{
			CodeBase: 0x0100_0000, DataBase: 0x5000_0000,
			Yield: prog.YieldBackoff, NumThreads: 1, Steps: 1,
		})
		res, err := mp.Run(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("%v did not complete", s)
		}
		// Snapshot the force array region (second allocation after x).
		snap := make(map[uint32]uint64)
		for a := uint32(0x5000_0000); a < 0x5000_0000+4096*8*2; a += 8 {
			if v := res.Mem.LoadD(a); v != 0 {
				snap[a] = v
			}
		}
		return snap
	}
	ref := run(core.Single)
	if len(ref) == 0 {
		t.Fatal("water produced no output")
	}
	for _, s := range []core.Scheme{core.Blocked, core.Interleaved, core.FineGrained} {
		got := run(s)
		if len(got) != len(ref) {
			t.Fatalf("%v: %d nonzero cells, reference %d", s, len(got), len(ref))
		}
		for a, v := range ref {
			if got[a] != v {
				t.Fatalf("%v: mem[%#x] = %#x, reference %#x", s, a, got[a], v)
			}
		}
	}
}

// TestMutualExclusionAtScale: 64 threads hammer the pthor queue and its
// region locks; completion plus the counter reset protocol reaching every
// step proves the locks serialize at full scale.
func TestMutualExclusionAtScale(t *testing.T) {
	cfg := mp.DefaultConfig(core.Interleaved, 8)
	cfg.Processors = 8
	cfg.LimitCycles = 100_000_000
	p := PTHOR().Build(Options{
		CodeBase: 0x0100_0000, DataBase: 0x5000_0000,
		Yield:        prog.YieldBackoff,
		AutoTolerate: true,
		NumThreads:   64,
		Steps:        2,
	})
	res, err := mp.Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("pthor with 64 threads did not complete")
	}
}
