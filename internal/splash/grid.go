package splash

import (
	"repro/internal/isa"
	"repro/internal/prog"
)

// Ocean models the SPLASH eddy-current simulator: Gauss-Seidel-style
// stencil sweeps over a shared grid partitioned by row blocks. The rows at
// partition boundaries are read by two threads and written by one —
// classic nearest-neighbour communication — and every sweep ends at a
// barrier.
func Ocean() App {
	return App{Name: "ocean", Build: func(o Options) *prog.Program {
		o = o.normalize(4)
		const rows = 256
		const cols = 64
		const rowBytes = cols * 8
		b := newApp("ocean", o)
		grid := b.Alloc(rows*rowBytes, 64)
		for i := 0; i < rows; i++ {
			b.InitF(grid+uint32(i*rowBytes), float64(i%11))
			b.InitF(grid+uint32(i*rowBytes+8*(cols-1)), float64(i%7))
		}
		consts := b.Alloc(8, 8)
		b.InitF(consts, 0.25)

		b.prologue()
		b.La(isa.R20, consts)
		b.Fld(isa.F10, isa.R20, 0) // 0.25
		b.stepLoop(func() {
			for sweep := 0; sweep < 2; sweep++ {
				lbl := "oc_row0"
				inner := "oc_col0"
				if sweep == 1 {
					lbl, inner = "oc_row1", "oc_col1"
				}
				b.myChunk(rows, isa.R8, isa.R9, isa.R10)
				// Clamp away the global boundary rows.
				b.Bne(isa.R8, isa.R0, lbl+"_s")
				b.Addi(isa.R8, isa.R8, 1)
				b.Label(lbl + "_s")
				b.Slti(isa.R10, isa.R9, rows)
				b.Bne(isa.R10, isa.R0, lbl+"_e")
				b.Addi(isa.R9, isa.R9, -1)
				b.Label(lbl + "_e")

				b.Label(lbl)
				b.Slt(isa.R15, isa.R8, isa.R9)
				b.Beq(isa.R15, isa.R0, lbl+"_done")
				// R11 = &grid[r][0]
				b.Li(isa.R12, rowBytes)
				b.Mul(isa.R11, isa.R8, isa.R12)
				b.La(isa.R13, grid)
				b.Add(isa.R11, isa.R11, isa.R13)
				b.Li(isa.R14, (cols-2)/2)
				b.Label(inner)
				for u := 0; u < 2; u++ {
					off := int32(8 + 8*u)
					b.Fld(isa.F1, isa.R11, off-8)
					b.Fld(isa.F2, isa.R11, off+8)
					b.Fld(isa.F3, isa.R11, off-rowBytes)
					b.Fld(isa.F4, isa.R11, off+rowBytes)
					b.FAdd(isa.F5, isa.F1, isa.F2)
					b.FAdd(isa.F6, isa.F3, isa.F4)
					b.FAdd(isa.F5, isa.F5, isa.F6)
					b.FMul(isa.F5, isa.F5, isa.F10)
					b.Fsd(isa.F5, isa.R11, off)
				}
				b.Addi(isa.R11, isa.R11, 16)
				b.Addi(isa.R14, isa.R14, -1)
				b.Bgtz(isa.R14, inner)
				b.Addi(isa.R8, isa.R8, 1)
				b.J(lbl)
				b.Label(lbl + "_done")
				b.barrier()
			}
		})
		return b.MustBuild()
	}}
}

// Locus models the SPLASH wire router: a central work queue of routes,
// each of which walks a shared cost grid, reading and writing scattered
// cells. Lock contention plus write sharing of the grid.
func Locus() App {
	return App{Name: "locus", Build: buildLocus}
}

func buildLocus(o Options) *prog.Program {
	o = o.normalize(3)
	const gridCells = 4096
	const tasks = 256
	b := newApp("locus", o)
	qlock := b.AllocLock()
	counter := b.Alloc(64, 64)
	grid := b.Alloc(gridCells*8, 64)
	consts := b.Alloc(8, 8)
	b.InitF(consts, 1.0)

	b.prologue()
	b.La(isa.R16, qlock)
	b.La(isa.R17, counter)
	b.La(isa.R20, consts)
	b.Fld(isa.F10, isa.R20, 0)
	b.stepLoop(func() {
		b.Label("locus_task")
		b.LockAcquire(isa.R16, isa.R2)
		b.Lw(isa.R9, isa.R17, 0)
		b.Addi(isa.R10, isa.R9, 1)
		b.Sw(isa.R10, isa.R17, 0)
		b.LockRelease(isa.R16)
		b.Slti(isa.R15, isa.R9, tasks)
		b.Beq(isa.R15, isa.R0, "locus_drained")

		b.Li(isa.R11, 97)
		b.Mul(isa.R12, isa.R9, isa.R11)
		b.La(isa.R13, grid)
		for hop := 0; hop < 36; hop++ {
			b.Addi(isa.R14, isa.R12, int32(61*hop))
			b.Andi(isa.R14, isa.R14, gridCells-1)
			b.Sll(isa.R14, isa.R14, 3)
			b.Add(isa.R18, isa.R13, isa.R14)
			b.Fld(isa.F1, isa.R18, 0)
			b.FAdd(isa.F1, isa.F1, isa.F10)
			b.Fsd(isa.F1, isa.R18, 0)
		}
		b.J("locus_task")

		b.Label("locus_drained")
		b.barrier()
		b.Bne(rTid, isa.R0, "locus_skip")
		b.Sw(isa.R0, isa.R17, 0)
		b.Label("locus_skip")
		b.barrier()
	})
	return b.MustBuild()
}

// PTHOR models the SPLASH logic simulator: an event queue under a lock,
// with each event updating net values in a lock-guarded region — the most
// synchronization-intensive app, almost entirely integer.
func PTHOR() App {
	return App{Name: "pthor", Build: buildPTHOR}
}

func buildPTHOR(o Options) *prog.Program {
	o = o.normalize(3)
	const nets = 4096
	const nlocks = 16
	const events = 128
	b := newApp("pthor", o)
	qlock := b.AllocLock()
	counter := b.Alloc(64, 64)
	var regionLocks [nlocks]uint32
	for i := range regionLocks {
		regionLocks[i] = b.AllocLock()
	}
	netsA := b.Alloc(nets*4, 64)
	locksBase := regionLocks[0]

	b.prologue()
	b.La(isa.R16, qlock)
	b.La(isa.R17, counter)
	b.La(isa.R19, netsA)
	b.La(isa.R21, locksBase)
	b.stepLoop(func() {
		b.Label("pthor_evt")
		b.LockAcquire(isa.R16, isa.R2)
		b.Lw(isa.R9, isa.R17, 0)
		b.Addi(isa.R10, isa.R9, 1)
		b.Sw(isa.R10, isa.R17, 0)
		b.LockRelease(isa.R16)
		b.Slti(isa.R15, isa.R9, events)
		b.Beq(isa.R15, isa.R0, "pthor_drained")

		// Lock the region this event's nets live in (locks are allocated
		// contiguously, 64 bytes apart).
		b.Andi(isa.R11, isa.R9, nlocks-1)
		b.Sll(isa.R11, isa.R11, 6)
		b.Add(isa.R11, isa.R21, isa.R11)
		b.LockAcquire(isa.R11, isa.R2)
		// Update twenty-four net values.
		b.Li(isa.R12, 53)
		b.Mul(isa.R13, isa.R9, isa.R12)
		for i := 0; i < 24; i++ {
			b.Addi(isa.R14, isa.R13, int32(17*i))
			b.Andi(isa.R14, isa.R14, nets-1)
			b.Sll(isa.R14, isa.R14, 2)
			b.Add(isa.R18, isa.R19, isa.R14)
			b.Lw(isa.R22, isa.R18, 0)
			b.Xori(isa.R22, isa.R22, 1)
			b.Addi(isa.R22, isa.R22, 2)
			b.Sw(isa.R22, isa.R18, 0)
		}
		b.LockRelease(isa.R11)
		b.J("pthor_evt")

		b.Label("pthor_drained")
		b.barrier()
		b.Bne(rTid, isa.R0, "pthor_skip")
		b.Sw(isa.R0, isa.R17, 0)
		b.Label("pthor_skip")
		b.barrier()
	})
	return b.MustBuild()
}

// Cholesky models the SPLASH sparse Cholesky factorization, whose defining
// property in the paper's results is that it gains nothing from multiple
// contexts: a dominant serial pivot phase (thread 0 only) leaves the other
// threads waiting at barriers.
func Cholesky() App {
	return App{Name: "cholesky", Build: func(o Options) *prog.Program {
		o = o.normalize(2)
		const panels = 12
		const colLen = 512
		b := newApp("cholesky", o)
		col := b.Alloc(colLen*8, 64)
		trail := b.Alloc(8192*8, 64)
		for i := 0; i < colLen; i++ {
			b.InitF(col+uint32(8*i), 2.0+float64(i%13))
		}

		b.prologue()
		b.La(isa.R16, col)
		b.La(isa.R17, trail)
		b.stepLoop(func() {
			b.Li(isa.R24, panels)
			b.Label("ch_panel")

			// Serial pivot: thread 0 factors the panel column (divides).
			b.Bne(rTid, isa.R0, "ch_pivwait")
			b.La(isa.R11, col)
			b.Li(isa.R12, colLen/4)
			b.Fld(isa.F1, isa.R11, 0)
			b.Label("ch_piv")
			for u := 0; u < 4; u++ {
				off := int32(8 * u)
				b.Fld(isa.F2, isa.R11, off)
				b.FMul(isa.F3, isa.F2, isa.F2)
				b.FAdd(isa.F3, isa.F3, isa.F1)
				if u == 3 {
					b.FDivD(isa.F4, isa.F3, isa.F1)
					b.Fsd(isa.F4, isa.R11, off)
				} else {
					b.Fsd(isa.F3, isa.R11, off)
				}
			}
			b.Addi(isa.R11, isa.R11, 32)
			b.Addi(isa.R12, isa.R12, -1)
			b.Bgtz(isa.R12, "ch_piv")
			b.Label("ch_pivwait")
			b.barrier()

			// Small parallel trailing update.
			b.myChunk(1024, isa.R8, isa.R9, isa.R10)
			b.Sll(isa.R10, isa.R8, 3)
			b.Add(isa.R11, isa.R17, isa.R10)
			b.Label("ch_upd")
			b.Fld(isa.F5, isa.R11, 0)
			b.FAdd(isa.F5, isa.F5, isa.F1)
			b.Fsd(isa.F5, isa.R11, 0)
			b.Addi(isa.R11, isa.R11, 8)
			b.Addi(isa.R8, isa.R8, 1)
			b.Slt(isa.R15, isa.R8, isa.R9)
			b.Bne(isa.R15, isa.R0, "ch_upd")
			b.barrier()

			b.Addi(isa.R24, isa.R24, -1)
			b.Bgtz(isa.R24, "ch_panel")
		})
		return b.MustBuild()
	}}
}
