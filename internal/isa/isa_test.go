package isa

import "testing"

func TestRegClassification(t *testing.T) {
	if R0.IsFP() {
		t.Error("R0 classified as FP")
	}
	if !F0.IsFP() {
		t.Error("F0 not classified as FP")
	}
	if F31.IsFP() != true || !F31.Valid() {
		t.Error("F31 misclassified")
	}
	if NoReg.Valid() {
		t.Error("NoReg reported valid")
	}
	if got := F12.String(); got != "f12" {
		t.Errorf("F12.String() = %q, want f12", got)
	}
	if got := R7.String(); got != "r7" {
		t.Errorf("R7.String() = %q, want r7", got)
	}
}

func TestEveryOpHasClassAndName(t *testing.T) {
	for op := Op(0); int(op) < NumOps; op++ {
		if op != NOP && op.Class() == ClassNop {
			t.Errorf("op %v has no class assigned", uint8(op))
		}
		if op.String() == "" {
			t.Errorf("op %v has no name", uint8(op))
		}
	}
}

func TestTable3Timings(t *testing.T) {
	// The intact rows of paper Table 3.
	cases := []struct {
		op            Op
		issue, setLat int
	}{
		{SLL, 1, 2},  // shift: 1 / 2
		{LW, 1, 3},   // load: 1 / 3
		{FADD, 1, 5}, // FP add class: 1 / 5
		{FMUL, 1, 5}, // FP multiply shares the add-class row
		{FDIVD, 61, 61},
		{FDIVS, 31, 31},
		{ADD, 1, 1},
	}
	for _, c := range cases {
		tm := c.op.Timing()
		if tm.Issue != c.issue || tm.Latency != c.setLat {
			t.Errorf("%v timing = %d/%d, want %d/%d", c.op, tm.Issue, tm.Latency, c.issue, c.setLat)
		}
	}
}

func TestInstPredicates(t *testing.T) {
	lw := Inst{Op: LW, Rd: R1, Rs: R2}
	if !lw.IsMem() || lw.IsStore() || lw.IsBranch() {
		t.Error("LW predicates wrong")
	}
	sw := Inst{Op: SW, Rt: R1, Rs: R2}
	if !sw.IsMem() || !sw.IsStore() {
		t.Error("SW predicates wrong")
	}
	tas := Inst{Op: TAS, Rd: R1, Rs: R2}
	if !tas.IsMem() || !tas.IsStore() {
		t.Error("TAS must count as a store for coherence")
	}
	beq := Inst{Op: BEQ, Rs: R1, Rt: R2}
	if !beq.IsBranch() || beq.IsMem() {
		t.Error("BEQ predicates wrong")
	}
	add := Inst{Op: ADD, Rd: R1, Rs: R2, Rt: R3}
	if !add.HasDest() || add.Dest() != R1 {
		t.Error("ADD destination wrong")
	}
	if (&Inst{Op: SW, Rt: R1, Rs: R2}).HasDest() {
		t.Error("SW should have no destination")
	}
}

func TestDisassembly(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: ADD, Rd: R1, Rs: R2, Rt: R3}, "add r1, r2, r3"},
		{Inst{Op: LW, Rd: R4, Rs: R5, Imm: 16}, "lw r4, 16(r5)"},
		{Inst{Op: SW, Rt: R4, Rs: R5, Imm: -8}, "sw r4, -8(r5)"},
		{Inst{Op: BEQ, Rs: R1, Rt: R0, Target: 42}, "beq r1, r0, @42"},
		{Inst{Op: BACKOFF, Imm: 57}, "backoff 57"},
		{Inst{Op: FADD, Rd: F1, Rs: F2, Rt: F3}, "fadd f1, f2, f3"},
		{Inst{Op: HALT}, "halt"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("disasm = %q, want %q", got, c.want)
		}
	}
}

func TestLongLatencyThreshold(t *testing.T) {
	// FP add-class hazards (up to 4 stall cycles) must classify as short;
	// divides as long. This drives the Figure 8/9 split.
	if FADD.Timing().Latency-1 > LongLatencyThreshold {
		t.Error("FP add stall should be classified short")
	}
	if FDIVD.Timing().Latency-1 <= LongLatencyThreshold {
		t.Error("FP divide stall should be classified long")
	}
}

func TestDisassemblyAllOps(t *testing.T) {
	// Every opcode must disassemble to something containing its mnemonic.
	for op := Op(0); int(op) < NumOps; op++ {
		in := Inst{Op: op, Rd: R1, Rs: R2, Rt: R3, Imm: 4, Target: 9}
		s := in.String()
		if s == "" {
			t.Errorf("op %v: empty disassembly", op)
		}
	}
	// Spot-check the special formats.
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: J, Target: 5}, "j @5"},
		{Inst{Op: JAL, Rd: R31, Target: 5}, "jal @5"},
		{Inst{Op: JR, Rs: R31}, "jr r31"},
		{Inst{Op: BLEZ, Rs: R2, Target: 3}, "blez r2, @3"},
		{Inst{Op: LUI, Rd: R4, Imm: 16}, "lui r4, 16"},
		{Inst{Op: SLL, Rd: R4, Rs: R5, Imm: 3}, "sll r4, r5, 3"},
		{Inst{Op: TAS, Rd: R4, Rs: R5, Imm: 0}, "tas r4, 0(r5)"},
		{Inst{Op: SWITCH, Imm: 9}, "switch 9"},
		{Inst{Op: FNEG, Rd: F1, Rs: F2, Rt: NoReg}, "fneg f1, f2"},
		{Inst{Op: NOP}, "nop"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("disasm = %q, want %q", got, c.want)
		}
	}
}

func TestSrcsAllOps(t *testing.T) {
	// Srcs must return valid-or-NoReg registers for every opcode.
	for op := Op(0); int(op) < NumOps; op++ {
		in := Inst{Op: op, Rd: R1, Rs: R2, Rt: R3}
		a, b := in.Srcs()
		for _, r := range []Reg{a, b} {
			if r != NoReg && !r.Valid() {
				t.Errorf("op %v: source %v invalid", op, r)
			}
		}
	}
	// Stores source base and value.
	sw := Inst{Op: SW, Rs: R2, Rt: R3}
	if a, b := sw.Srcs(); a != R2 || b != R3 {
		t.Errorf("SW srcs = %v, %v", a, b)
	}
	// LUI sources nothing.
	lui := Inst{Op: LUI, Rd: R1, Imm: 3}
	if a, b := lui.Srcs(); a != NoReg || b != NoReg {
		t.Errorf("LUI srcs = %v, %v", a, b)
	}
}

func TestTimingTable(t *testing.T) {
	for c := Class(0); int(c) < NumClasses; c++ {
		tm := TimingOf(c)
		if tm.Issue < 1 || tm.Latency < 1 {
			t.Errorf("class %v has degenerate timing %+v", c, tm)
		}
		if c.String() == "" || c.String() == "class(?)" {
			t.Errorf("class %d unnamed", c)
		}
	}
	// Non-pipelined units: divides occupy their unit for the full latency.
	if FDIVD.Timing().Issue != FDIVD.Timing().Latency {
		t.Error("FP divide must be non-pipelined")
	}
	if FDIVD.Timing().Unit != UnitFPDiv || LW.Timing().Unit != UnitMem {
		t.Error("unit assignment wrong")
	}
}

func TestRegionValues(t *testing.T) {
	if RegionNormal == RegionSync {
		t.Error("regions must differ")
	}
	var in Inst
	if in.Region != RegionNormal {
		t.Error("zero-value instruction must be in the normal region")
	}
}
