package isa

// Class groups opcodes by their pipeline timing and functional-unit usage
// (paper Table 3).
type Class uint8

// Instruction classes.
const (
	ClassNop Class = iota
	ClassIntALU
	ClassShift
	ClassIntMul
	ClassIntDiv
	ClassLoad
	ClassStore
	ClassAtomic
	ClassBranch
	ClassFPAdd // FP add/sub/convert/multiply: fully pipelined, latency 5
	ClassFPDivS
	ClassFPDivD
	ClassMove
	ClassSwitch
	ClassBackoff
	ClassHalt

	numClasses
)

// NumClasses is the number of instruction classes.
const NumClasses = int(numClasses)

var classNames = [...]string{
	ClassNop: "nop", ClassIntALU: "int-alu", ClassShift: "shift",
	ClassIntMul: "int-mul", ClassIntDiv: "int-div",
	ClassLoad: "load", ClassStore: "store", ClassAtomic: "atomic",
	ClassBranch: "branch", ClassFPAdd: "fp-add", ClassFPDivS: "fp-div-s",
	ClassFPDivD: "fp-div-d", ClassMove: "move", ClassSwitch: "switch",
	ClassBackoff: "backoff", ClassHalt: "halt",
}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "class(?)"
}

// Unit names a functional unit. Units with Issue > 1 in Timing are
// non-pipelined: a second operation of the same unit stalls until the unit
// frees.
type Unit uint8

// Functional units.
const (
	UnitNone   Unit = iota
	UnitIntALU      // ALU, shifts, branches: fully pipelined
	UnitIntMulDiv
	UnitFPAdd // pipelined FP add/mul/convert
	UnitFPDiv // non-pipelined divider
	UnitMem   // data-cache port

	numUnits
)

// NumUnits is the number of functional units.
const NumUnits = int(numUnits)

// Timing gives an instruction class's issue occupancy and result latency
// (paper Table 3). Issue is the number of cycles the functional unit is
// busy (1 = fully pipelined). Latency is the earliest number of cycles
// after issue at which a dependent instruction can issue without stalling:
// ALU results forward with latency 1, loads have two delay slots (latency
// 3), FP add-class results have latency 5, and the divides are fully
// exposed.
//
// The integer multiply/divide rows of Table 3 are garbled in the source
// text; the values here are R4000-class reconstructions (multiply 4/12,
// divide 35/35) and are documented in DESIGN.md.
type Timing struct {
	Issue   int
	Latency int
	Unit    Unit
}

var timings = [NumClasses]Timing{
	ClassNop:     {1, 1, UnitNone},
	ClassIntALU:  {1, 1, UnitIntALU},
	ClassShift:   {1, 2, UnitIntALU},
	ClassIntMul:  {4, 12, UnitIntMulDiv},
	ClassIntDiv:  {35, 35, UnitIntMulDiv},
	ClassLoad:    {1, 3, UnitMem},
	ClassStore:   {1, 1, UnitMem},
	ClassAtomic:  {1, 3, UnitMem},
	ClassBranch:  {1, 1, UnitIntALU},
	ClassFPAdd:   {1, 5, UnitFPAdd},
	ClassFPDivS:  {31, 31, UnitFPDiv},
	ClassFPDivD:  {61, 61, UnitFPDiv},
	ClassMove:    {1, 2, UnitIntALU},
	ClassSwitch:  {1, 1, UnitNone},
	ClassBackoff: {1, 1, UnitNone},
	ClassHalt:    {1, 1, UnitNone},
}

// TimingOf returns the issue/latency/unit timing for a class.
func TimingOf(c Class) Timing { return timings[c] }

var opClasses = [NumOps]Class{
	NOP:  ClassNop,
	ADD:  ClassIntALU,
	ADDI: ClassIntALU, SUB: ClassIntALU,
	AND: ClassIntALU, ANDI: ClassIntALU, OR: ClassIntALU, ORI: ClassIntALU,
	XOR: ClassIntALU, XORI: ClassIntALU,
	SLT: ClassIntALU, SLTI: ClassIntALU, SLTU: ClassIntALU, LUI: ClassIntALU,
	SLL: ClassShift, SRL: ClassShift, SRA: ClassShift,
	SLLV: ClassShift, SRLV: ClassShift,
	MUL: ClassIntMul, DIV: ClassIntDiv, REM: ClassIntDiv, DIVU: ClassIntDiv,
	LW: ClassLoad, SW: ClassStore, FLD: ClassLoad, FSD: ClassStore,
	TAS: ClassAtomic,
	BEQ: ClassBranch, BNE: ClassBranch, BLEZ: ClassBranch, BGTZ: ClassBranch,
	J: ClassBranch, JAL: ClassBranch, JR: ClassBranch,
	FADD: ClassFPAdd, FSUB: ClassFPAdd, FMUL: ClassFPAdd,
	FNEG: ClassFPAdd, FABS: ClassFPAdd, FCVTIW: ClassFPAdd,
	FCMPLT: ClassFPAdd, FCMPLE: ClassFPAdd,
	FDIVS: ClassFPDivS, FDIVD: ClassFPDivD, FSQRT: ClassFPDivD,
	MTC1: ClassMove, MFC1: ClassMove,
	SWITCH: ClassSwitch, BACKOFF: ClassBackoff,
	TRAP: ClassBranch, ERET: ClassBranch, HALT: ClassHalt,
}

// ClassOf returns the timing class of an opcode.
func ClassOf(op Op) Class { return opClasses[op] }

// Timing returns the issue/latency/unit timing of the opcode.
func (o Op) Timing() Timing { return timings[opClasses[o]] }

// Class returns the timing class of the opcode.
func (o Op) Class() Class { return opClasses[o] }

// LongLatencyThreshold separates "short" pipeline-dependency stalls from
// "long" ones in the multiprocessor breakdowns: the paper labels stalls of
// four or fewer cycles (the maximum FP add-class result hazard) short.
const LongLatencyThreshold = 4
