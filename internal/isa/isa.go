// Package isa defines the instruction-set architecture simulated by this
// repository: a MIPS-II-like, 32-bit RISC instruction set with no branch or
// load delay slots, as modeled in Laudon, Gupta & Horowitz, "Interleaving: A
// Multithreading Technique Targeting Multiprocessors and Workstations"
// (ASPLOS 1994).
//
// The package is purely declarative: it defines registers, opcodes,
// instruction classes and their issue/latency timings (paper Table 3).
// Functional semantics live in the core engine; program construction lives
// in internal/prog.
package isa

import "fmt"

// Reg names an architectural register. Values 0-31 are the integer
// registers (R0 is hardwired to zero); values 32-63 are the floating-point
// registers, modeled as 32 double-precision registers. NoReg marks an
// absent operand.
type Reg uint8

// NoReg marks an unused register operand slot.
const NoReg Reg = 0xFF

// NumRegs is the size of the combined architectural register file
// (32 integer + 32 floating point).
const NumRegs = 64

// Integer registers.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	R16
	R17
	R18
	R19
	R20
	R21
	R22
	R23
	R24
	R25
	R26
	R27
	R28
	R29
	R30
	R31
)

// Floating-point registers.
const (
	F0 Reg = iota + 32
	F1
	F2
	F3
	F4
	F5
	F6
	F7
	F8
	F9
	F10
	F11
	F12
	F13
	F14
	F15
	F16
	F17
	F18
	F19
	F20
	F21
	F22
	F23
	F24
	F25
	F26
	F27
	F28
	F29
	F30
	F31
)

// IsFP reports whether r is a floating-point register.
func (r Reg) IsFP() bool { return r >= 32 && r < 64 }

// Valid reports whether r names an architectural register.
func (r Reg) Valid() bool { return r < NumRegs }

// String returns the assembler name of the register (r4, f12, ...).
func (r Reg) String() string {
	switch {
	case r == NoReg:
		return "-"
	case r.IsFP():
		return fmt.Sprintf("f%d", r-32)
	case r.Valid():
		return fmt.Sprintf("r%d", r)
	default:
		return fmt.Sprintf("reg(%d)", uint8(r))
	}
}

// Op is an operation code.
type Op uint8

// Operation codes. The set is intentionally small: enough to express the
// synthetic SPEC89- and SPLASH-like kernels, the synchronization library,
// and the two latency-tolerance instructions the paper adds (SWITCH for the
// blocked scheme, BACKOFF for the interleaved scheme).
const (
	NOP Op = iota

	// Integer ALU (latency 1).
	ADD  // rd = rs + rt
	ADDI // rd = rs + imm
	SUB  // rd = rs - rt
	AND  // rd = rs & rt
	ANDI // rd = rs & uimm
	OR   // rd = rs | rt
	ORI  // rd = rs | uimm
	XOR  // rd = rs ^ rt
	XORI // rd = rs ^ uimm
	SLT  // rd = (int32(rs) < int32(rt)) ? 1 : 0
	SLTI // rd = (int32(rs) < imm) ? 1 : 0
	SLTU // rd = (rs < rt) ? 1 : 0
	LUI  // rd = imm << 16

	// Shifts (latency 2 per Table 3).
	SLL // rd = rs << (imm&31)
	SRL // rd = rs >> (imm&31) logical
	SRA // rd = rs >> (imm&31) arithmetic
	SLLV
	SRLV

	// Integer multiply / divide (multi-cycle, non-pipelined).
	MUL  // rd = rs * rt (low 32 bits)
	DIV  // rd = int32(rs) / int32(rt)
	REM  // rd = int32(rs) % int32(rt)
	DIVU // rd = rs / rt

	// Memory (integer word and FP double).
	LW  // rd = mem32[rs + imm]
	SW  // mem32[rs + imm] = rt
	FLD // fd = mem64[rs + imm]
	FSD // mem64[rs + imm] = ft

	// Atomic read-modify-write: rd = mem32[rs+imm]; mem32[rs+imm] = 1.
	// Used to build spin locks; requires exclusive ownership of the line,
	// so it is treated as a write by the coherence protocol.
	TAS

	// Control transfer. Branches resolve in EX; a 2048-entry BTB hides
	// the taken-branch penalty when it predicts correctly.
	BEQ  // if rs == rt goto target
	BNE  // if rs != rt goto target
	BLEZ // if int32(rs) <= 0 goto target
	BGTZ // if int32(rs) > 0 goto target
	J    // goto target
	JAL  // rd = return index; goto target
	JR   // goto rs (instruction index held in register)

	// Floating point (double unless noted). Add-class ops have latency 5.
	FADD
	FSUB
	FMUL
	FNEG
	FABS
	FCVTIW // fd = float64(int32(rs int reg? no: converts fs holding bits)) -- see prog builder
	FCMPLT // rd (int) = (fs < ft) ? 1 : 0
	FCMPLE // rd (int) = (fs <= ft) ? 1 : 0
	FDIVS  // single-precision divide: 31-cycle issue and latency
	FDIVD  // double-precision divide: 61-cycle issue and latency
	FSQRT  // modeled with double-divide timing

	// Register-file moves (latency 2).
	MTC1 // fd = float64(int32(rs))  (move+convert int -> fp)
	MFC1 // rd = int32(fs)           (truncating convert fp -> int)

	// Latency-tolerance instructions (paper Table 4).
	SWITCH  // blocked scheme: explicit context switch, unavailable imm cycles
	BACKOFF // interleaved scheme: context unavailable imm cycles

	// Software exception entry and return (paper §6's EPC machinery:
	// each context has its own exception PC register). TRAP saves the
	// next PC in the thread's EPC and jumps to its trap handler; ERET
	// resumes at the EPC.
	TRAP
	ERET

	// HALT retires the thread.
	HALT

	numOps
)

// NumOps is the number of defined opcodes.
const NumOps = int(numOps)

var opNames = [...]string{
	NOP: "nop",
	ADD: "add", ADDI: "addi", SUB: "sub",
	AND: "and", ANDI: "andi", OR: "or", ORI: "ori", XOR: "xor", XORI: "xori",
	SLT: "slt", SLTI: "slti", SLTU: "sltu", LUI: "lui",
	SLL: "sll", SRL: "srl", SRA: "sra", SLLV: "sllv", SRLV: "srlv",
	MUL: "mul", DIV: "div", REM: "rem", DIVU: "divu",
	LW: "lw", SW: "sw", FLD: "fld", FSD: "fsd", TAS: "tas",
	BEQ: "beq", BNE: "bne", BLEZ: "blez", BGTZ: "bgtz",
	J: "j", JAL: "jal", JR: "jr",
	FADD: "fadd", FSUB: "fsub", FMUL: "fmul", FNEG: "fneg", FABS: "fabs",
	FCVTIW: "fcvtiw", FCMPLT: "fcmplt", FCMPLE: "fcmple",
	FDIVS: "fdivs", FDIVD: "fdivd", FSQRT: "fsqrt",
	MTC1: "mtc1", MFC1: "mfc1",
	SWITCH: "switch", BACKOFF: "backoff",
	TRAP: "trap", ERET: "eret", HALT: "halt",
}

// String returns the assembler mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Region tags the code region an instruction belongs to; the simulator uses
// it to attribute stall time, mirroring how the paper separates
// "synchronization" time from compute time in the SPLASH breakdowns.
type Region uint8

const (
	// RegionNormal is ordinary application code.
	RegionNormal Region = iota
	// RegionSync is synchronization-library code (locks, barriers, spin
	// loops); busy and stall slots in this region are charged to the
	// synchronization category.
	RegionSync
)

// Inst is a single decoded instruction. Programs are slices of Inst;
// the program counter is an index into that slice, and the instruction's
// byte address (for the I-cache) is program base + 4*index.
type Inst struct {
	Op     Op
	Rd     Reg   // destination register, NoReg if none
	Rs     Reg   // first source, NoReg if none
	Rt     Reg   // second source, NoReg if none
	Imm    int32 // immediate / displacement / unavailability cycles
	Target int32 // branch/jump target (instruction index), resolved by the linker
	Region Region

	// Decoded fields, filled once by Decode (prog.Builder.Build decodes
	// every program it links). The issue stage reads these instead of
	// re-deriving timing and operands from Op on every slot.
	TM         Timing // == Op.Timing()
	SrcA, SrcB Reg    // == Srcs()
	Dst        Reg    // == Dest()
}

// Decode fills the precomputed issue-stage fields (TM, SrcA/SrcB, Dst)
// from the architectural ones. Idempotent; a zero Inst is NOT decoded —
// its Dst would wrongly read as R0 — so every execution path must go
// through a decoded Program.
func (i *Inst) Decode() {
	i.TM = i.Op.Timing()
	i.SrcA, i.SrcB = i.Srcs()
	i.Dst = i.Dest()
}

var opWritesDest = func() (w [NumOps]bool) {
	for _, op := range []Op{
		ADD, ADDI, SUB, AND, ANDI, OR, ORI, XOR, XORI, SLT, SLTI, SLTU, LUI,
		SLL, SRL, SRA, SLLV, SRLV, MUL, DIV, REM, DIVU,
		LW, FLD, TAS, JAL,
		FADD, FSUB, FMUL, FNEG, FABS, FCVTIW, FCMPLT, FCMPLE,
		FDIVS, FDIVD, FSQRT, MTC1, MFC1,
	} {
		w[op] = true
	}
	return
}()

// Dest returns the destination register, or NoReg for instructions that
// write none (stores, branches other than JAL, NOP, SWITCH, BACKOFF, HALT).
func (i *Inst) Dest() Reg {
	if opWritesDest[i.Op] {
		return i.Rd
	}
	return NoReg
}

// HasDest reports whether the instruction writes a register.
func (i *Inst) HasDest() bool { return opWritesDest[i.Op] }

// Srcs returns the instruction's source registers; unused slots are NoReg.
// Stores source both the base (Rs) and the value (Rt); branches source
// their comparands.
func (i *Inst) Srcs() (a, b Reg) {
	switch i.Op {
	case NOP, J, JAL, LUI, SWITCH, BACKOFF, TRAP, ERET, HALT:
		return NoReg, NoReg
	case ADDI, ANDI, ORI, XORI, SLTI, SLL, SRL, SRA,
		LW, FLD, TAS, BLEZ, BGTZ, JR,
		FNEG, FABS, FCVTIW, FSQRT, MTC1, MFC1:
		return i.Rs, NoReg
	default:
		// Three-operand ALU/FP ops, stores (base+value), BEQ/BNE.
		return i.Rs, i.Rt
	}
}

// IsBranch reports whether the instruction is a conditional branch or jump.
func (i *Inst) IsBranch() bool {
	switch i.Op {
	case BEQ, BNE, BLEZ, BGTZ, J, JAL, JR:
		return true
	}
	return false
}

// IsMem reports whether the instruction accesses data memory.
func (i *Inst) IsMem() bool {
	switch i.Op {
	case LW, SW, FLD, FSD, TAS:
		return true
	}
	return false
}

// IsStore reports whether the instruction writes data memory (TAS counts:
// it requires exclusive ownership).
func (i *Inst) IsStore() bool {
	switch i.Op {
	case SW, FSD, TAS:
		return true
	}
	return false
}

// String disassembles the instruction.
func (i Inst) String() string {
	switch i.Op {
	case NOP, HALT, ERET:
		return i.Op.String()
	case SWITCH, BACKOFF, TRAP:
		return fmt.Sprintf("%s %d", i.Op, i.Imm)
	case J, JAL:
		return fmt.Sprintf("%s @%d", i.Op, i.Target)
	case JR:
		return fmt.Sprintf("jr %s", i.Rs)
	case BEQ, BNE:
		return fmt.Sprintf("%s %s, %s, @%d", i.Op, i.Rs, i.Rt, i.Target)
	case BLEZ, BGTZ:
		return fmt.Sprintf("%s %s, @%d", i.Op, i.Rs, i.Target)
	case LW, FLD, TAS:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Rd, i.Imm, i.Rs)
	case SW, FSD:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Rt, i.Imm, i.Rs)
	case LUI:
		return fmt.Sprintf("lui %s, %d", i.Rd, i.Imm)
	case ADDI, ANDI, ORI, XORI, SLTI, SLL, SRL, SRA:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Rd, i.Rs, i.Imm)
	default:
		if i.Rt == NoReg {
			return fmt.Sprintf("%s %s, %s", i.Op, i.Rd, i.Rs)
		}
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Rd, i.Rs, i.Rt)
	}
}
