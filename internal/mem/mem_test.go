package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZeroValueReadsZero(t *testing.T) {
	m := New()
	if m.LoadW(0x1000) != 0 {
		t.Error("fresh memory word not zero")
	}
	if m.LoadD(0x8000_0008) != 0 {
		t.Error("fresh memory double not zero")
	}
	if m.PageCount() != 0 {
		t.Error("reads should not allocate pages")
	}
}

func TestWordRoundTrip(t *testing.T) {
	m := New()
	m.StoreW(0x100, 0xdeadbeef)
	m.StoreW(0x104, 0x12345678)
	if got := m.LoadW(0x100); got != 0xdeadbeef {
		t.Errorf("LoadW(0x100) = %#x", got)
	}
	if got := m.LoadW(0x104); got != 0x12345678 {
		t.Errorf("LoadW(0x104) = %#x", got)
	}
	// The two words share one 8-byte cell; check the double view.
	if got := m.LoadD(0x100); got != 0x12345678_deadbeef {
		t.Errorf("LoadD(0x100) = %#x", got)
	}
}

func TestDoubleRoundTrip(t *testing.T) {
	m := New()
	old := m.StoreD(0x2000, 0xcafebabe_00112233)
	if old != 0 {
		t.Errorf("old = %#x, want 0", old)
	}
	if got := m.LoadD(0x2000); got != 0xcafebabe_00112233 {
		t.Errorf("LoadD = %#x", got)
	}
	old = m.StoreD(0x2000, 7)
	if old != 0xcafebabe_00112233 {
		t.Errorf("StoreD old = %#x", old)
	}
}

func TestStoreWPreservesNeighbour(t *testing.T) {
	m := New()
	m.StoreD(0x40, 0xffffffff_ffffffff)
	m.StoreW(0x40, 0)
	if got := m.LoadW(0x44); got != 0xffffffff {
		t.Errorf("high word clobbered: %#x", got)
	}
	m.StoreD(0x40, 0xffffffff_ffffffff)
	m.StoreW(0x44, 0)
	if got := m.LoadW(0x40); got != 0xffffffff {
		t.Errorf("low word clobbered: %#x", got)
	}
}

func TestTestAndSet(t *testing.T) {
	m := New()
	if m.TestAndSet(0x500) != 0 {
		t.Error("first TAS should see 0")
	}
	if m.TestAndSet(0x500) != 1 {
		t.Error("second TAS should see 1")
	}
	m.StoreW(0x500, 0)
	if m.TestAndSet(0x500) != 0 {
		t.Error("TAS after release should see 0")
	}
}

func TestUnalignedPanics(t *testing.T) {
	m := New()
	for _, f := range []func(){
		func() { m.LoadW(2) },
		func() { m.StoreW(6, 0) },
		func() { m.LoadD(4) },
		func() { m.StoreD(12, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("unaligned access did not panic")
				}
			}()
			f()
		}()
	}
}

func TestReset(t *testing.T) {
	m := New()
	m.StoreW(0x100, 1)
	m.Reset()
	if m.LoadW(0x100) != 0 || m.PageCount() != 0 {
		t.Error("Reset did not clear memory")
	}
}

// Property: a StoreW followed by LoadW of the same address returns the
// stored value, and an interleaved store elsewhere never disturbs it.
func TestQuickWordConsistency(t *testing.T) {
	m := New()
	f := func(a, b uint32, va, vb uint32) bool {
		a &^= 3
		b &^= 3
		m.StoreW(a, va)
		m.StoreW(b, vb)
		if a == b {
			return m.LoadW(a) == vb
		}
		return m.LoadW(a) == va && m.LoadW(b) == vb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// Property: StoreW returns the previous value (undo-log contract).
func TestQuickStoreReturnsOld(t *testing.T) {
	m := New()
	f := func(a uint32, v1, v2 uint32) bool {
		a &^= 3
		m.StoreW(a, v1)
		return m.StoreW(a, v2) == v1 && m.LoadW(a) == v2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}
