// Package mem implements the functional (value-holding) memory shared by
// the simulated processors. It is a sparse, paged, byte-addressed memory
// supporting aligned 32-bit word and 64-bit double accesses — the two
// access widths of the simulated ISA.
//
// Timing is handled entirely by internal/cache and internal/coherence;
// this package only stores values.
package mem

import (
	"fmt"
	"sort"
)

const (
	// PageShift selects 4 KiB pages — the page size assumed by the data
	// TLB model.
	PageShift = 12
	pageBytes = 1 << PageShift
	pageCells = pageBytes / 8
	cellMask  = pageCells - 1
)

type page [pageCells]uint64

// pageCacheSize is the direct-mapped page-translation cache: simulated
// working sets touch a handful of pages per inner loop, so a small
// power-of-two cache absorbs almost every map lookup.
const (
	pageCacheSize = 64
	pageCacheMask = pageCacheSize - 1
)

type pageCacheEntry struct {
	pn uint32
	p  *page
}

// Memory is a sparse functional memory. The zero value is an empty memory
// ready to use; all bytes read as zero until written. A Memory is not safe
// for concurrent use: even loads update the internal page-lookup caches.
type Memory struct {
	pages map[uint32]*page

	// lastPN/lastPage memoize the most recently touched page (valid when
	// lastPage != nil) and cache backs it up direct-mapped; both skip the
	// map on the sequential and small-working-set accesses that dominate
	// simulated memory traffic.
	lastPN   uint32
	lastPage *page
	cache    [pageCacheSize]pageCacheEntry
}

// New returns an empty memory.
func New() *Memory { return &Memory{pages: make(map[uint32]*page)} }

func (m *Memory) page(addr uint32, create bool) *page {
	pn := addr >> PageShift
	if m.lastPage != nil && m.lastPN == pn {
		return m.lastPage
	}
	if e := &m.cache[pn&pageCacheMask]; e.p != nil && e.pn == pn {
		m.lastPN, m.lastPage = pn, e.p
		return e.p
	}
	p := m.pages[pn]
	if p == nil {
		if !create {
			return nil
		}
		if m.pages == nil {
			m.pages = make(map[uint32]*page)
		}
		p = new(page)
		m.pages[pn] = p
	}
	m.lastPN, m.lastPage = pn, p
	m.cache[pn&pageCacheMask] = pageCacheEntry{pn: pn, p: p}
	return p
}

func checkAlign(addr uint32, align uint32, op string) {
	if addr%align != 0 {
		panic(fmt.Sprintf("mem: unaligned %s at %#x (need %d-byte alignment)", op, addr, align))
	}
}

// LoadW reads the 32-bit word at addr (4-byte aligned).
func (m *Memory) LoadW(addr uint32) uint32 {
	checkAlign(addr, 4, "LoadW")
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	cell := p[(addr>>3)&cellMask]
	if addr&4 != 0 {
		return uint32(cell >> 32)
	}
	return uint32(cell)
}

// StoreW writes the 32-bit word at addr (4-byte aligned) and returns the
// previous value (useful for tests and for atomic read-modify-write).
func (m *Memory) StoreW(addr uint32, v uint32) (old uint32) {
	checkAlign(addr, 4, "StoreW")
	p := m.page(addr, true)
	idx := (addr >> 3) & cellMask
	cell := p[idx]
	if addr&4 != 0 {
		old = uint32(cell >> 32)
		p[idx] = cell&0x0000_0000_ffff_ffff | uint64(v)<<32
	} else {
		old = uint32(cell)
		p[idx] = cell&0xffff_ffff_0000_0000 | uint64(v)
	}
	return old
}

// LoadD reads the 64-bit doubleword at addr (8-byte aligned).
func (m *Memory) LoadD(addr uint32) uint64 {
	checkAlign(addr, 8, "LoadD")
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[(addr>>3)&cellMask]
}

// StoreD writes the 64-bit doubleword at addr (8-byte aligned) and returns
// the previous value.
func (m *Memory) StoreD(addr uint32, v uint64) (old uint64) {
	checkAlign(addr, 8, "StoreD")
	p := m.page(addr, true)
	idx := (addr >> 3) & cellMask
	old = p[idx]
	p[idx] = v
	return old
}

// TestAndSet atomically reads the word at addr and sets it to 1,
// returning the old value. Simulation is single-threaded, so the atomicity
// is with respect to simulated processors, which is exactly what the TAS
// instruction requires.
func (m *Memory) TestAndSet(addr uint32) (old uint32) {
	return m.StoreW(addr, 1)
}

// PageCount reports how many 4 KiB pages have been touched; used by tests
// and by memory-footprint reporting.
func (m *Memory) PageCount() int { return len(m.pages) }

// Hash returns a deterministic FNV-1a digest of the memory *contents*:
// only nonzero cells contribute, keyed by address, so two memories that
// read identically hash identically even if one touched (and zeroed)
// pages the other never allocated. Chaos-mode tests compare these digests
// to assert that timing perturbation never changes architectural state.
//
// Hash allocates its page-number scratch locally so it is safe to call
// concurrently with other Hash calls on the same Memory — cells forked
// from one checkpoint hash their (logically distinct, physically
// restored-from-shared-bytes) memories from pool goroutines.
func (m *Memory) Hash() uint64 {
	pns := make([]uint32, 0, len(m.pages))
	for pn := range m.pages {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	h := uint64(14695981039346656037) // FNV offset basis
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xFF
			h *= 1099511628211 // FNV prime
			v >>= 8
		}
	}
	for _, pn := range pns {
		p := m.pages[pn]
		for i, cell := range p {
			if cell == 0 {
				continue
			}
			mix(uint64(pn)<<16 | uint64(i))
			mix(cell)
		}
	}
	return h
}

// Reset drops all pages, returning the memory to all-zeroes.
func (m *Memory) Reset() {
	m.pages = make(map[uint32]*page)
	m.lastPage = nil
	m.cache = [pageCacheSize]pageCacheEntry{}
}
