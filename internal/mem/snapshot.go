package mem

import (
	"sort"

	"repro/internal/snapshot"
)

// sectionMemory tags the functional-memory block in a snapshot payload.
const sectionMemory = 0x4d454d31 // "MEM1"

// SaveState serializes the memory contents: every touched page, in
// ascending page-number order so identical contents always produce
// identical bytes. The page-lookup memos are derived state and are not
// serialized.
func (m *Memory) SaveState(w *snapshot.Writer) {
	w.Section(sectionMemory)
	pns := make([]uint32, 0, len(m.pages))
	for pn := range m.pages {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	w.U32(uint32(len(pns)))
	for _, pn := range pns {
		w.U32(pn)
		for _, cell := range m.pages[pn] {
			w.U64(cell)
		}
	}
}

// RestoreState replaces the memory contents with the serialized pages,
// dropping anything the memory held before (the restore target is
// normally a freshly built machine, but a reused one restores just as
// correctly).
func (m *Memory) RestoreState(r *snapshot.Reader) {
	r.Section(sectionMemory)
	m.Reset()
	n := r.U32()
	for i := uint32(0); i < n && r.Err() == nil; i++ {
		pn := r.U32()
		p := new(page)
		for c := range p {
			p[c] = r.U64()
		}
		if r.Err() == nil {
			m.pages[pn] = p
		}
	}
}
