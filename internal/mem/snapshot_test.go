package mem

import (
	"sync"
	"testing"

	"repro/internal/snapshot"
)

func TestMemorySnapshotRoundTrip(t *testing.T) {
	m := New()
	m.StoreW(0x1000, 0xdeadbeef)
	m.StoreD(0x2008, 0x0123456789abcdef)
	m.StoreW(0xffff_f000, 7)
	m.StoreW(0x1000+4096*3, 42) // distinct pages

	w := snapshot.NewWriter()
	m.SaveState(w)

	got := New()
	got.StoreW(0x5000, 99) // pre-existing state must be dropped
	r := snapshot.NewReader(w.Bytes())
	got.RestoreState(r)
	if err := snapshot.Finish(r); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got.Hash() != m.Hash() {
		t.Fatal("restored memory hash differs")
	}
	if got.LoadW(0x1000) != 0xdeadbeef || got.LoadD(0x2008) != 0x0123456789abcdef {
		t.Fatal("restored memory contents differ")
	}
	if got.LoadW(0x5000) != 0 {
		t.Fatal("pre-existing state survived restore")
	}

	// Determinism: serializing the restored memory reproduces the bytes.
	w2 := snapshot.NewWriter()
	got.SaveState(w2)
	if string(w2.Bytes()) != string(w.Bytes()) {
		t.Fatal("re-serialized memory differs byte-for-byte")
	}
}

// TestMemoryHashConcurrent exercises the scratch-free Hash under the race
// detector: forked cells hash their memories from pool goroutines, so
// Hash must not share mutable state across calls.
func TestMemoryHashConcurrent(t *testing.T) {
	m := New()
	for i := uint32(0); i < 64; i++ {
		m.StoreD(i*4096+8*(i%17), uint64(i)+1)
	}
	want := m.Hash()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if m.Hash() != want {
					t.Error("concurrent Hash returned a different digest")
					return
				}
			}
		}()
	}
	wg.Wait()
}
