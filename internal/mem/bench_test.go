package mem

import "testing"

// BenchmarkMemAccess measures the functional memory's load path across
// the three locality regimes the page-lookup caches distinguish: a single
// hot page (memo hit), a working set inside the direct-mapped cache, and
// a working set wide enough to fall through to the page map.
func BenchmarkMemAccess(b *testing.B) {
	const word = 4

	bench := func(pages int) func(b *testing.B) {
		return func(b *testing.B) {
			m := New()
			for p := 0; p < pages; p++ {
				m.StoreW(uint32(p)<<PageShift, uint32(p))
			}
			b.ResetTimer()
			var sum uint32
			for i := 0; i < b.N; i++ {
				addr := uint32(i%pages)<<PageShift | uint32(i%(pageBytes/word))*word
				sum += m.LoadW(addr)
			}
			sink = sum
		}
	}

	b.Run("same-page", bench(1))
	b.Run("cached-set-16pages", bench(16))
	b.Run("wide-set-1024pages", bench(1024))

	b.Run("store-load-mix", func(b *testing.B) {
		m := New()
		b.ResetTimer()
		var sum uint32
		for i := 0; i < b.N; i++ {
			addr := uint32(i%64)<<PageShift | uint32(i)%pageBytes &^ 3
			if i&1 == 0 {
				m.StoreW(addr, uint32(i))
			} else {
				sum += m.LoadW(addr)
			}
		}
		sink = sum
	})

	b.Run("hash-64pages", func(b *testing.B) {
		m := New()
		for p := 0; p < 64; p++ {
			m.StoreW(uint32(p)<<PageShift, uint32(p))
		}
		b.ResetTimer()
		var h uint64
		for i := 0; i < b.N; i++ {
			h = m.Hash()
		}
		sink = uint32(h)
	})
}

// sink defeats dead-code elimination of the benchmark loops.
var sink uint32
