// Package snapshot is the versioned, deterministic binary codec for
// machine-state checkpoints. Every simulator layer (mem, core, cache,
// coherence) serializes itself through a Writer and restores through a
// Reader; the container format carries a magic number, a codec version,
// a kind string (which machine shape the snapshot holds), a caller
// fingerprint (the prefix-configuration hash), and a trailing checksum
// over the payload, so a corrupt, truncated, or mismatched file is
// rejected with a typed error instead of deserializing garbage.
//
// The encoding is fixed-width little-endian with explicit section tags
// between layers. Two snapshots of identical machine state are
// byte-identical — StateHash over the serialized form is therefore a
// machine-state hash — and restore is defined only at 64-cycle block
// boundaries (the simulators' shared cancellation/watchdog/metrics
// cadence), which is what makes a forked run position-identical to an
// uninterrupted one by construction.
//
// The package is a near-leaf: it imports only the standard library plus
// internal/faultfs (itself a stdlib-only leaf, threading fault-injected
// filesystems under SaveFile), so every simulation layer can depend on
// it without cycles.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/faultfs"
)

// Version is the codec version. Any change to a layer's serialized
// field set must bump it; Decode rejects other versions with ErrVersion
// so stale checkpoint files fall back to from-scratch simulation rather
// than restoring skewed state.
const Version = 1

// magic identifies a snapshot container ("RPSN", little-endian).
const magic uint32 = 0x4e535052

// Typed failures. Callers distinguish "this file is not a usable
// checkpoint" (fall back to scratch simulation) from real I/O errors.
var (
	// ErrCorrupt marks a container that is structurally broken:
	// bad magic, truncated data, checksum mismatch, or a payload that
	// does not decode against the layer's schema.
	ErrCorrupt = errors.New("snapshot: corrupt")
	// ErrVersion marks a container written by a different codec version.
	ErrVersion = errors.New("snapshot: codec version mismatch")
	// ErrMismatch marks a well-formed container holding a different
	// machine kind or prefix fingerprint than the caller expects.
	ErrMismatch = errors.New("snapshot: wrong snapshot")
)

// fnv1a is the repo-wide hash convention (same constants as
// mem.Memory.Hash and core.Thread.HashArchState).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// StateHash hashes a serialized snapshot (FNV-1a over every byte).
// Because the encoding is deterministic, equal hashes mean equal
// machine state for snapshots of the same kind.
func StateHash(data []byte) uint64 {
	h := uint64(fnvOffset)
	for _, b := range data {
		h = (h ^ uint64(b)) * fnvPrime
	}
	return h
}

// Writer serializes machine state into a growing buffer using
// fixed-width little-endian encoding.
type Writer struct {
	buf []byte
}

// NewWriter returns an empty Writer.
func NewWriter() *Writer { return &Writer{} }

// Bytes returns the raw serialized payload written so far.
func (w *Writer) Bytes() []byte { return w.buf }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// I64 appends an int64 (two's complement, little-endian).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int appends an int as int64.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// String appends a length-prefixed UTF-8 string.
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// Section appends a section tag. Tags delimit each layer's block so a
// drifted encoder/decoder pair fails loudly at the seam instead of
// silently misreading the following fields.
func (w *Writer) Section(tag uint32) { w.U32(tag) }

// Reader deserializes a payload written by Writer. Errors are sticky:
// the first short read or tag mismatch records ErrCorrupt, every later
// call returns zero values, and the caller checks Err once at the end.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps a payload.
func NewReader(data []byte) *Reader { return &Reader{buf: data} }

// Err returns the sticky decode error, nil if every read succeeded.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread payload bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// fail records the sticky error (first failure wins).
func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s at offset %d", ErrCorrupt, fmt.Sprintf(format, args...), r.off)
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.fail("truncated (%d bytes wanted, %d left)", n, len(r.buf)-r.off)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a boolean.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int written by Writer.Int.
func (r *Reader) Int() int { return int(r.I64()) }

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.U32()
	if int64(n) > int64(r.Remaining()) {
		r.fail("string length %d exceeds remaining payload", n)
		return ""
	}
	b := r.take(int(n))
	return string(b)
}

// Section consumes a section tag and verifies it.
func (r *Reader) Section(tag uint32) {
	got := r.U32()
	if r.err == nil && got != tag {
		r.fail("section tag %#x, want %#x", got, tag)
	}
}

// Expect verifies a decoded value against the value the restoring
// machine was constructed with; a mismatch means the snapshot belongs
// to a differently-shaped machine and restore must not proceed.
func (r *Reader) Expect(what string, got, want int64) {
	if r.err == nil && got != want {
		r.fail("%s is %d in snapshot but %d in target machine", what, got, want)
	}
}

// ExpectStr is Expect for string-valued shape fields (thread and scheme
// names).
func (r *Reader) ExpectStr(what, got, want string) {
	if r.err == nil && got != want {
		r.fail("%s is %q in snapshot but %q in target machine", what, got, want)
	}
}

// Container layout (all little-endian):
//
//	u32 magic | u32 version | str kind | str fingerprint |
//	u32 payloadLen | payload | u64 fnv1a(payload)

// Encode wraps a serialized payload in the versioned container.
func Encode(kind, fingerprint string, payload []byte) []byte {
	w := NewWriter()
	w.U32(magic)
	w.U32(Version)
	w.String(kind)
	w.String(fingerprint)
	w.U32(uint32(len(payload)))
	w.buf = append(w.buf, payload...)
	w.U64(StateHash(payload))
	return w.Bytes()
}

// Decode validates a container and returns a Reader over its payload.
// The kind and fingerprint must match what the caller is restoring
// into: kind names the machine shape, fingerprint the prefix
// configuration that produced the checkpoint.
func Decode(data []byte, kind, fingerprint string) (*Reader, error) {
	r := NewReader(data)
	if got := r.U32(); r.err != nil || got != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if got := r.U32(); r.err != nil || got != Version {
		return nil, fmt.Errorf("%w: file has codec version %d, this binary speaks %d", ErrVersion, got, Version)
	}
	gotKind := r.String()
	gotFP := r.String()
	n := r.U32()
	payload := r.take(int(n))
	sum := r.U64()
	if r.err != nil {
		return nil, r.err
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, r.Remaining())
	}
	if StateHash(payload) != sum {
		return nil, fmt.Errorf("%w: payload checksum mismatch", ErrCorrupt)
	}
	if gotKind != kind {
		return nil, fmt.Errorf("%w: snapshot kind %q, want %q", ErrMismatch, gotKind, kind)
	}
	if gotFP != fingerprint {
		return nil, fmt.Errorf("%w: prefix fingerprint %q, want %q", ErrMismatch, gotFP, fingerprint)
	}
	return NewReader(payload), nil
}

// Finish verifies a payload Reader consumed cleanly: no decode error
// and no unread bytes. Every RestoreState chain ends here.
func Finish(r *Reader) error {
	if err := r.Err(); err != nil {
		return err
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("%w: %d unread payload bytes", ErrCorrupt, r.Remaining())
	}
	return nil
}

// SaveFile writes a container to path atomically (temp file in the
// same directory + rename + parent-directory fsync), so a crash
// mid-write never leaves a half-written checkpoint where a later run
// would trip over it.
func SaveFile(path string, data []byte) error {
	return SaveFileFS(nil, path, data)
}

// SaveFileFS is SaveFile over an explicit filesystem; a nil fsys means
// the real one. Fault-injection harnesses pass a faultfs injector to
// exercise the crash-safety claim.
func SaveFileFS(fsys faultfs.FS, path string, data []byte) error {
	fsys = faultfs.OrOS(fsys)
	dir := filepath.Dir(path)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := fsys.CreateTemp(dir, ".snapshot-*")
	if err != nil {
		return err
	}
	defer fsys.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return fsys.SyncDir(dir)
}

// LoadFile reads a container written by SaveFile.
func LoadFile(path string) ([]byte, error) { return os.ReadFile(path) }
