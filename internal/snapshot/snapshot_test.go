package snapshot

import (
	"errors"
	"path/filepath"
	"testing"
)

func TestWriterReaderRoundTrip(t *testing.T) {
	w := NewWriter()
	w.Section(0x11111111)
	w.U8(0xab)
	w.Bool(true)
	w.Bool(false)
	w.U32(0xdeadbeef)
	w.U64(1<<63 | 12345)
	w.I64(-42)
	w.Int(-7)
	w.String("hello")
	w.String("")

	r := NewReader(w.Bytes())
	r.Section(0x11111111)
	if got := r.U8(); got != 0xab {
		t.Errorf("U8 = %#x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := r.U32(); got != 0xdeadbeef {
		t.Errorf("U32 = %#x", got)
	}
	if got := r.U64(); got != 1<<63|12345 {
		t.Errorf("U64 = %#x", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.Int(); got != -7 {
		t.Errorf("Int = %d", got)
	}
	if got := r.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	if got := r.String(); got != "" {
		t.Errorf("empty String = %q", got)
	}
	if err := Finish(r); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestReaderStickyErrors(t *testing.T) {
	r := NewReader([]byte{1, 2})
	if got := r.U64(); got != 0 {
		t.Errorf("truncated U64 = %d, want 0", got)
	}
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Errorf("Err = %v, want ErrCorrupt", r.Err())
	}
	// Every later read stays zero without panicking.
	if r.U32() != 0 || r.String() != "" || r.Bool() {
		t.Error("reads after sticky error must return zero values")
	}

	w := NewWriter()
	w.Section(1)
	r = NewReader(w.Bytes())
	r.Section(2)
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Errorf("section tag mismatch: Err = %v, want ErrCorrupt", r.Err())
	}

	// A declared string length larger than the payload must not allocate
	// or crash.
	w = NewWriter()
	w.U32(1 << 30)
	r = NewReader(w.Bytes())
	if r.String() != "" || !errors.Is(r.Err(), ErrCorrupt) {
		t.Error("oversized string length must fail with ErrCorrupt")
	}

	r = NewReader(nil)
	r.Expect("contexts", 4, 4)
	if r.Err() != nil {
		t.Errorf("Expect on equal values: %v", r.Err())
	}
	r.Expect("contexts", 4, 8)
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Errorf("Expect on unequal values: %v", r.Err())
	}
}

func TestContainerRoundTrip(t *testing.T) {
	w := NewWriter()
	w.U64(777)
	w.String("payload")
	data := Encode("workstation", "fp123", w.Bytes())

	r, err := Decode(data, "workstation", "fp123")
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got := r.U64(); got != 777 {
		t.Errorf("payload U64 = %d", got)
	}
	if got := r.String(); got != "payload" {
		t.Errorf("payload String = %q", got)
	}
	if err := Finish(r); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestDecodeRejections(t *testing.T) {
	w := NewWriter()
	w.U64(1)
	good := Encode("kind", "fp", w.Bytes())

	if _, err := Decode(good, "other", "fp"); !errors.Is(err, ErrMismatch) {
		t.Errorf("wrong kind: %v, want ErrMismatch", err)
	}
	if _, err := Decode(good, "kind", "other"); !errors.Is(err, ErrMismatch) {
		t.Errorf("wrong fingerprint: %v, want ErrMismatch", err)
	}

	// Flip one payload byte: checksum must catch it.
	bad := append([]byte(nil), good...)
	bad[len(bad)-9] ^= 0xff
	if _, err := Decode(bad, "kind", "fp"); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bit flip: %v, want ErrCorrupt", err)
	}

	// Truncation anywhere must be ErrCorrupt, never a panic.
	for n := 0; n < len(good); n++ {
		if _, err := Decode(good[:n], "kind", "fp"); err == nil {
			t.Fatalf("truncation at %d bytes accepted", n)
		}
	}

	// A different version is ErrVersion, so callers can report staleness
	// distinctly from corruption.
	vbad := append([]byte(nil), good...)
	vbad[4] = Version + 1
	if _, err := Decode(vbad, "kind", "fp"); !errors.Is(err, ErrVersion) {
		t.Errorf("version bump: %v, want ErrVersion", err)
	}

	if _, err := Decode([]byte("not a snapshot at all"), "kind", "fp"); !errors.Is(err, ErrCorrupt) {
		t.Errorf("garbage: %v, want ErrCorrupt", err)
	}

	// Trailing garbage after the checksum is corruption too.
	tbad := append(append([]byte(nil), good...), 0)
	if _, err := Decode(tbad, "kind", "fp"); !errors.Is(err, ErrCorrupt) {
		t.Errorf("trailing bytes: %v, want ErrCorrupt", err)
	}
}

func TestStateHashDeterministic(t *testing.T) {
	a := StateHash([]byte{1, 2, 3})
	b := StateHash([]byte{1, 2, 3})
	c := StateHash([]byte{1, 2, 4})
	if a != b {
		t.Error("StateHash not deterministic")
	}
	if a == c {
		t.Error("StateHash collision on adjacent payloads")
	}
	if StateHash(nil) != fnvOffset {
		t.Error("StateHash(nil) must be the FNV offset basis")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "ckpt.snap")
	w := NewWriter()
	w.U64(99)
	data := Encode("k", "f", w.Bytes())
	if err := SaveFile(path, data); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	r, err := Decode(got, "k", "f")
	if err != nil {
		t.Fatalf("Decode after load: %v", err)
	}
	if r.U64() != 99 {
		t.Error("payload changed across save/load")
	}
}
