// Package osmodel implements the paper's operating-system model (§4.3):
// a time-slicing scheduler with processor affinity whose only simulated
// effect is cache interference — at every scheduler invocation it
// displaces cache lines and TLB entries, per Torrellas' measurements of
// IRIX on a Silicon Graphics 4D/340 (paper Table 6).
package osmodel

// Params configures the OS model.
type Params struct {
	// SliceCycles is the scheduler interrupt period. The paper uses
	// 30 ms at 200 MHz = 6 M cycles; the default here is scaled down by
	// 100x (see DESIGN.md §3) so full workloads simulate quickly while
	// slices stay far longer than any miss latency.
	SliceCycles int64

	// AffinitySlices: a scheduled group of applications stays on the
	// processor for AffinitySlices × contexts slices before the next
	// group runs (the paper's affinity mechanism).
	AffinitySlices int
}

// DefaultParams returns the paper's OS model, time-scaled.
func DefaultParams() Params {
	return Params{SliceCycles: 60_000, AffinitySlices: 3}
}

// Interference is the cache damage of one scheduler invocation.
type Interference struct {
	ILines     int // instruction-cache lines displaced
	DLines     int // data-cache lines displaced
	TLBEntries int // TLB entries displaced
}

// InterferenceFor returns the displacement for a scheduler call that
// switched nSwitched processes. The counts reconstruct paper Table 6
// (whose values are garbled in the source text): interference grows
// sublinearly with the number of processes switched, and a zero-switch
// scheduler call still perturbs the caches slightly.
func InterferenceFor(nSwitched int) Interference {
	switch {
	case nSwitched <= 0:
		return Interference{ILines: 16, DLines: 32, TLBEntries: 2}
	case nSwitched == 1:
		return Interference{ILines: 64, DLines: 128, TLBEntries: 8}
	case nSwitched == 2:
		return Interference{ILines: 96, DLines: 192, TLBEntries: 12}
	case nSwitched <= 4:
		return Interference{ILines: 160, DLines: 320, TLBEntries: 20}
	default:
		return Interference{ILines: 224, DLines: 448, TLBEntries: 28}
	}
}
