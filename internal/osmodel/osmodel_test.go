package osmodel

import "testing"

func TestDefaults(t *testing.T) {
	p := DefaultParams()
	if p.SliceCycles <= 0 || p.AffinitySlices != 3 {
		t.Errorf("defaults = %+v", p)
	}
	// The slice must dwarf every stall latency in the system (the paper's
	// 30 ms slice is six million cycles; ours is scaled but must stay
	// >> the 34-cycle memory latency by orders of magnitude).
	if p.SliceCycles < 10_000 {
		t.Errorf("slice %d too short relative to miss latencies", p.SliceCycles)
	}
}

func TestInterferenceMonotone(t *testing.T) {
	prev := Interference{}
	for _, n := range []int{0, 1, 2, 4, 8} {
		got := InterferenceFor(n)
		if got.ILines < prev.ILines || got.DLines < prev.DLines || got.TLBEntries < prev.TLBEntries {
			t.Errorf("interference not monotone at %d processes: %+v after %+v", n, got, prev)
		}
		prev = got
	}
}

func TestInterferenceSublinear(t *testing.T) {
	// Table 6's reconstruction: doubling the processes switched must not
	// double the displaced lines (shared OS text and data dominate).
	one := InterferenceFor(1)
	four := InterferenceFor(4)
	if four.DLines >= 4*one.DLines {
		t.Errorf("interference superlinear: 1 -> %d, 4 -> %d", one.DLines, four.DLines)
	}
}

func TestZeroSwitchStillPerturbs(t *testing.T) {
	// The scheduler itself runs on every interrupt even when it switches
	// nothing (the paper's affinity case with all apps loaded).
	got := InterferenceFor(0)
	if got.ILines == 0 || got.DLines == 0 {
		t.Error("a zero-switch scheduler call must still displace some lines")
	}
}
