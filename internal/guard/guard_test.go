package guard

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestSimErrorRendering(t *testing.T) {
	base := errors.New("boom")
	e := NewSimError("core.execute", base).At(1234).On(2, 1, 42).WithAddr(0x5000_0040)
	s := e.Error()
	for _, want := range []string{"core.execute", "cycle=1234", "proc=2", "ctx=1", "pc=42", "addr=0x50000040", "boom"} {
		if !strings.Contains(s, want) {
			t.Errorf("Error() = %q, missing %q", s, want)
		}
	}
	if !errors.Is(e, base) {
		t.Error("SimError does not unwrap to its cause")
	}
	if AsSimError(fmt.Errorf("wrapped: %w", e)) == nil {
		t.Error("AsSimError failed through a wrapping layer")
	}
	if AsSimError(errors.New("plain")) != nil {
		t.Error("AsSimError invented a SimError")
	}
}

func TestSimErrorOmitsUnsetFields(t *testing.T) {
	e := NewSimError("guard.watchdog", errors.New("stuck"))
	s := e.Error()
	for _, bad := range []string{"cycle=", "proc=", "ctx=", "pc=", "addr="} {
		if strings.Contains(s, bad) {
			t.Errorf("Error() = %q, should omit %q for unset field", s, bad)
		}
	}
}

func TestWatchdogTripsAfterWindow(t *testing.T) {
	w := NewWatchdog(100)
	if w.Observe(0, 5) {
		t.Fatal("tripped on the priming observation")
	}
	// Progress keeps it quiet.
	if w.Observe(90, 6) {
		t.Fatal("tripped despite progress")
	}
	// No progress, but window not yet elapsed since last progress (90).
	if w.Observe(150, 6) {
		t.Fatal("tripped before the window elapsed")
	}
	if !w.Observe(190, 6) {
		t.Fatal("did not trip after the window elapsed")
	}
	if got := w.Stalled(190); got != 100 {
		t.Errorf("Stalled = %d, want 100", got)
	}
}

func TestWatchdogCounterResetIsProgress(t *testing.T) {
	// Stat resets (measurement-window start) shrink the counter; the
	// watchdog must treat any change as progress, not just growth.
	w := NewWatchdog(100)
	w.Observe(0, 1000)
	if w.Observe(99, 0) {
		t.Fatal("tripped on a counter reset")
	}
	if w.Observe(150, 0) {
		t.Fatal("tripped before window elapsed after reset")
	}
}

func TestWatchdogNilSafe(t *testing.T) {
	var w *Watchdog
	if w.Observe(1_000_000, 0) {
		t.Fatal("nil watchdog tripped")
	}
	if NewWatchdog(0) != nil || NewWatchdog(-5) != nil {
		t.Fatal("non-positive window should disable the watchdog")
	}
}

func TestChaosDeterministicPerSeed(t *testing.T) {
	a := NewChaos(7, 24)
	b := NewChaos(7, 24)
	other := NewChaos(8, 24)
	same, differ := true, false
	for i := 0; i < 1000; i++ {
		ja, jb, jo := a.Jitter(), b.Jitter(), other.Jitter()
		if ja != jb {
			same = false
		}
		if ja != jo {
			differ = true
		}
		if ja < 0 || ja > 24 {
			t.Fatalf("jitter %d out of [0,24]", ja)
		}
	}
	if !same {
		t.Error("equal seeds produced different jitter streams")
	}
	if !differ {
		t.Error("different seeds produced identical jitter streams")
	}
}

func TestChaosNilSafe(t *testing.T) {
	var c *Chaos
	if c.Jitter() != 0 || c.Perturb(34) != 34 {
		t.Fatal("nil Chaos must be a no-op")
	}
}

func TestOptionsResolution(t *testing.T) {
	var o Options
	if o.CheckCadence() != DefaultCheckEvery {
		t.Errorf("CheckCadence = %d, want %d", o.CheckCadence(), DefaultCheckEvery)
	}
	if got := o.ResolveWatchdog(500); got != 500 {
		t.Errorf("zero window: ResolveWatchdog = %d, want default 500", got)
	}
	o.WatchdogWindow = -1
	if got := o.ResolveWatchdog(500); got != 0 {
		t.Errorf("negative window: ResolveWatchdog = %d, want disabled 0", got)
	}
	o.WatchdogWindow = 123
	if got := o.ResolveWatchdog(500); got != 123 {
		t.Errorf("explicit window: ResolveWatchdog = %d, want 123", got)
	}
	if o.NewChaos() != nil {
		t.Error("zero seed must not enable chaos")
	}
	o.ChaosSeed = 3
	c := o.NewChaos()
	if c == nil || c.Skew() != DefaultChaosSkew {
		t.Errorf("chaos = %+v, want skew %d", c, DefaultChaosSkew)
	}
}

func TestDiagnosticRendering(t *testing.T) {
	d := &Diagnostic{
		Reason: "watchdog: no useful instruction retired",
		Cycle:  200_000,
		Scheme: "interleaved",
		Window: 50_000,
		Procs: []ProcState{{
			ID:    0,
			Cycle: 200_000,
			Ctxs: []CtxState{
				{Ctx: 0, Thread: "dead.t0", PC: 17, PCAddr: 0x1044, Inst: "LW   r2, 0(r16)", AvailableAt: 200_016, Cause: "sync"},
				{Ctx: 1, Thread: "dead.t1", PC: 30, Halted: true, Retired: 12},
				{Ctx: 2},
			},
			Slots:  map[string]int64{"sync": 1000, "busy": 12},
			Misses: []MissState{{Line: 0x280_0000, Addr: 0x5000_0000, FillAt: 200_040, Exclusive: true}},
		}},
		Lines: []LineState{{Line: 0x280_0000, Addr: 0x5000_0000, Owner: 1, Sharers: 0b10}},
		Notes: []string{"lock word at 0x50000000 reads 1"},
	}
	s := d.String()
	for _, want := range []string{
		"watchdog: no useful instruction retired",
		"scheme interleaved",
		"watchdog window 50000",
		"ctx 0 dead.t0: pc=17",
		"cause=sync",
		"halted",
		"ctx 2: unbound",
		"busy=12 sync=1000",
		"outstanding miss",
		"exclusive",
		"hot lines",
		"owner=1",
		"lock word",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("diagnostic missing %q in:\n%s", want, s)
		}
	}
	stuck := d.StuckContexts()
	if len(stuck) != 1 || stuck[0].PC != 17 {
		t.Errorf("StuckContexts = %+v, want the one live context at pc 17", stuck)
	}
}
