// Package guard is the simulation-hardening layer: typed simulation
// errors, a liveness watchdog, structured diagnostics, invariant-check
// gating, and deterministic fault injection (chaos mode).
//
// The package is a leaf — it imports only the standard library — so every
// simulation layer (core, cache, coherence, mp, workstation, experiments)
// can depend on it without cycles. The simulators produce guard values
// (SimError, Diagnostic, ProcState); guard itself never steps a
// simulation.
package guard

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
)

// Op strings shared by every runner, so grid drivers can classify
// failures (retry a watchdog trip, skip a canceled cell) without string
// matching at each call site.
const (
	// OpWatchdog marks a liveness-watchdog trip.
	OpWatchdog = "guard.watchdog"
	// OpCanceled marks a run stopped by context cancellation (first-error
	// cancel or a SIGINT/SIGTERM drain); the wrapped cause is ctx.Err(),
	// so errors.Is(err, context.Canceled) still holds.
	OpCanceled = "guard.canceled"
	// OpDeadline marks a cell that exceeded its per-cell wall-clock
	// budget (-cell-timeout). Unlike OpCanceled it is a *cell failure*:
	// the grid records FAIL and exits non-zero, exactly as for a
	// watchdog trip.
	OpDeadline = "guard.deadline"
)

// IsWatchdogTrip reports whether err (anywhere in its chain) is a
// SimError raised by the liveness watchdog — the one failure class the
// grids retry at an escalated budget, since a trip can be a workload
// that is merely slower than the window, not wedged.
func IsWatchdogTrip(err error) bool {
	se := AsSimError(err)
	return se != nil && se.Op == OpWatchdog
}

// IsCancellation reports whether err is a context cancellation (or
// deadline) artifact rather than a simulation failure. Canceled cells
// are skipped, not failed: they carry no diagnosis of the simulated
// machine. A per-cell deadline reclassified as OpDeadline is NOT a
// cancellation — it is a diagnosed cell failure.
func IsCancellation(err error) bool {
	if IsDeadline(err) {
		return false
	}
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// IsDeadline reports whether err (anywhere in its chain) is a SimError
// raised by a per-cell wall-clock deadline.
func IsDeadline(err error) bool {
	se := AsSimError(err)
	return se != nil && se.Op == OpDeadline
}

// IsBudgetTrip reports whether err is one of the two escalatable budget
// failures — a liveness-watchdog trip or a per-cell wall-clock deadline.
// These are the failures the grids retry once at a doubled budget: both
// can mean "slower than the window", not "wrong".
func IsBudgetTrip(err error) bool { return IsWatchdogTrip(err) || IsDeadline(err) }

// SimError is a typed simulation failure carrying the machine context a
// bare panic(err) loses: what was happening, at which cycle, on which
// processor/context, at which PC, and — when the failure was detected by
// the watchdog or an invariant checker — a full structured Diagnostic.
//
// Fields that do not apply are negative (Cycle, Proc, Ctx, PC) or zero
// (Addr with HasAddr false), and the renderer omits them.
type SimError struct {
	// Op names the failing operation, e.g. "core.execute" or
	// "guard.watchdog".
	Op    string
	Cycle int64
	Proc  int
	Ctx   int
	PC    int
	// Addr is the memory address involved, when one is (HasAddr).
	Addr    uint32
	HasAddr bool
	// Err is the underlying cause.
	Err error
	// Diag, when non-nil, is the full machine-state dump taken at the
	// failure. Renderers print it separately from Error(), which stays a
	// single line.
	Diag *Diagnostic
}

// NewSimError returns a SimError with every location field unset.
func NewSimError(op string, err error) *SimError {
	return &SimError{Op: op, Cycle: -1, Proc: -1, Ctx: -1, PC: -1, Err: err}
}

// At sets the cycle and returns the error (builder-style).
func (e *SimError) At(cycle int64) *SimError { e.Cycle = cycle; return e }

// On sets processor/context/PC attribution and returns the error.
func (e *SimError) On(proc, ctx, pc int) *SimError {
	e.Proc, e.Ctx, e.PC = proc, ctx, pc
	return e
}

// WithAddr sets the involved memory address and returns the error.
func (e *SimError) WithAddr(addr uint32) *SimError {
	e.Addr, e.HasAddr = addr, true
	return e
}

// WithDiag attaches a diagnostic and returns the error.
func (e *SimError) WithDiag(d *Diagnostic) *SimError { e.Diag = d; return e }

// Error renders a single line: op, location context, cause.
func (e *SimError) Error() string {
	var b strings.Builder
	b.WriteString(e.Op)
	if e.Cycle >= 0 {
		fmt.Fprintf(&b, " cycle=%d", e.Cycle)
	}
	if e.Proc >= 0 {
		fmt.Fprintf(&b, " proc=%d", e.Proc)
	}
	if e.Ctx >= 0 {
		fmt.Fprintf(&b, " ctx=%d", e.Ctx)
	}
	if e.PC >= 0 {
		fmt.Fprintf(&b, " pc=%d", e.PC)
	}
	if e.HasAddr {
		fmt.Fprintf(&b, " addr=%#x", e.Addr)
	}
	if e.Err != nil {
		b.WriteString(": ")
		b.WriteString(e.Err.Error())
	}
	return b.String()
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *SimError) Unwrap() error { return e.Err }

// AsSimError extracts a SimError from an error chain, or nil.
func AsSimError(err error) *SimError {
	var se *SimError
	if errors.As(err, &se) {
		return se
	}
	return nil
}

// envChecksOnce caches the GUARD_CHECKS environment probe: the variable is
// read once per process, so toggling it mid-run has no effect (tests that
// need both settings run in separate processes, as scripts/check.sh does).
var envChecksOnce = sync.OnceValue(func() bool {
	return os.Getenv("GUARD_CHECKS") == "1"
})

// EnvChecks reports whether GUARD_CHECKS=1 is set in the environment —
// the switch scripts/check.sh uses to run the whole test suite with
// invariant checking on.
func EnvChecks() bool { return envChecksOnce() }

// DefaultCheckEvery is the invariant-check and watchdog-poll cadence used
// when Options.CheckEvery is zero.
const DefaultCheckEvery = 4096

// DefaultChaosSkew is the maximum perturbation, in cycles, chaos mode adds
// to each memory or network latency when Options.ChaosSkew is zero.
const DefaultChaosSkew = 24

// Options is the hardening configuration embedded in the simulator
// configs (mp.Config.Guard, workstation.Config.Guard) and set from the
// -watchdog, -check-invariants and -chaos command-line flags.
type Options struct {
	// WatchdogWindow is the liveness window in cycles: if no context
	// machine-wide retires a useful (non-synchronization) instruction
	// for this many cycles, the run is declared live/deadlocked and
	// aborted with a diagnostic. Zero selects the runner's default
	// policy (the multiprocessor uses LimitCycles/20; the workstation
	// leaves it off, since its runs are cycle-bounded by construction);
	// negative disables the watchdog outright.
	WatchdogWindow int64

	// CheckInvariants runs the coherence/cache/pipeline invariant
	// checkers every CheckEvery cycles. Off by default (the checkers
	// walk whole directories); GUARD_CHECKS=1 in the environment turns
	// them on regardless, which is how the test suite enables them.
	CheckInvariants bool

	// CheckEvery is the watchdog-poll and invariant-check cadence in
	// cycles; zero selects DefaultCheckEvery.
	CheckEvery int64

	// ChaosSeed, when non-zero, enables fault injection: memory and
	// network latencies are perturbed by a deterministic PRNG seeded
	// with this value. Timing faults must never change architectural
	// results; tests assert final memory and register state are
	// byte-identical to an unperturbed run.
	ChaosSeed int64

	// ChaosSkew bounds the perturbation added to each latency, in
	// cycles; zero selects DefaultChaosSkew.
	ChaosSkew int64
}

// InvariantsOn resolves the invariant-check switch against the
// GUARD_CHECKS environment gate.
func (o Options) InvariantsOn() bool { return o.CheckInvariants || EnvChecks() }

// CheckCadence resolves CheckEvery against its default.
func (o Options) CheckCadence() int64 {
	if o.CheckEvery > 0 {
		return o.CheckEvery
	}
	return DefaultCheckEvery
}

// ResolveWatchdog resolves WatchdogWindow against a runner's default
// policy: zero maps to def, negative to disabled (0).
func (o Options) ResolveWatchdog(def int64) int64 {
	switch {
	case o.WatchdogWindow > 0:
		return o.WatchdogWindow
	case o.WatchdogWindow < 0:
		return 0
	default:
		return def
	}
}

// NewChaos builds the chaos perturber selected by the options, or nil
// when chaos mode is off.
func (o Options) NewChaos() *Chaos {
	if o.ChaosSeed == 0 {
		return nil
	}
	skew := o.ChaosSkew
	if skew <= 0 {
		skew = DefaultChaosSkew
	}
	return NewChaos(o.ChaosSeed, skew)
}
