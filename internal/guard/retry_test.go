package guard

import (
	"testing"
	"time"
)

func TestRetryAllowed(t *testing.T) {
	cases := []struct {
		name    string
		policy  Retry
		attempt int
		allowed bool
	}{
		{"zero-policy first attempt", Retry{}, 1, true},
		{"zero-policy no retry", Retry{}, 2, false},
		{"negative attempts means one", Retry{Attempts: -3}, 2, false},
		{"grid retry allows second", GridRetry(), 2, true},
		{"grid retry forbids third", GridRetry(), 3, false},
		{"attempt zero never allowed", GridRetry(), 0, false},
		{"five attempts, fifth ok", Retry{Attempts: 5}, 5, true},
		{"five attempts, sixth not", Retry{Attempts: 5}, 6, false},
	}
	for _, c := range cases {
		if got := c.policy.Allowed(c.attempt); got != c.allowed {
			t.Errorf("%s: Allowed(%d) = %v, want %v", c.name, c.attempt, got, c.allowed)
		}
	}
}

func TestRetryDelaySchedule(t *testing.T) {
	cases := []struct {
		name    string
		policy  Retry
		attempt int
		want    time.Duration
	}{
		{"first attempt never waits", Retry{Base: time.Second}, 1, 0},
		{"no base, no delay", Retry{Attempts: 4}, 3, 0},
		{"second attempt waits base", Retry{Base: 100 * time.Millisecond}, 2, 100 * time.Millisecond},
		{"third attempt doubles", Retry{Base: 100 * time.Millisecond}, 3, 200 * time.Millisecond},
		{"fourth attempt doubles again", Retry{Base: 100 * time.Millisecond}, 4, 400 * time.Millisecond},
		{"cap bounds growth", Retry{Base: 100 * time.Millisecond, Cap: 250 * time.Millisecond}, 4, 250 * time.Millisecond},
		{"cap below base clamps", Retry{Base: time.Second, Cap: time.Millisecond}, 2, time.Millisecond},
	}
	for _, c := range cases {
		if got := c.policy.Delay(7, c.attempt); got != c.want {
			t.Errorf("%s: Delay(7, %d) = %v, want %v", c.name, c.attempt, got, c.want)
		}
	}
}

func TestRetryJitterDeterministicAndBounded(t *testing.T) {
	p := Retry{Attempts: 5, Base: 100 * time.Millisecond, Cap: time.Second, Seed: 42}
	for attempt := 2; attempt <= 5; attempt++ {
		for key := uint64(0); key < 50; key++ {
			base := Retry{Attempts: p.Attempts, Base: p.Base, Cap: p.Cap}.Delay(key, attempt)
			d1 := p.Delay(key, attempt)
			d2 := p.Delay(key, attempt)
			if d1 != d2 {
				t.Fatalf("Delay(%d, %d) not deterministic: %v then %v", key, attempt, d1, d2)
			}
			if d1 < base || d1 > base+base/2+1 {
				t.Fatalf("Delay(%d, %d) = %v outside [base, 1.5*base] around %v", key, attempt, d1, base)
			}
		}
	}
	// Different keys must not all share one schedule (jitter decorrelates).
	same := true
	first := p.Delay(0, 2)
	for key := uint64(1); key < 20; key++ {
		if p.Delay(key, 2) != first {
			same = false
			break
		}
	}
	if same {
		t.Error("jitter identical across 20 keys; expected decorrelated delays")
	}
}

func TestEscalate(t *testing.T) {
	cases := []struct {
		v       int64
		attempt int
		want    int64
	}{
		{100, 0, 100},
		{100, 1, 200},
		{100, 3, 800},
		{0, 5, 0},
		{1 << 62, 1, 1 << 62},       // saturates
		{(1 << 62) - 1, 4, 1 << 62}, // saturates mid-way
		{3, 61, 1 << 62},            // deep escalation cannot overflow
	}
	for _, c := range cases {
		if got := Escalate(c.v, c.attempt); got != c.want {
			t.Errorf("Escalate(%d, %d) = %d, want %d", c.v, c.attempt, got, c.want)
		}
	}
}

func TestFaultPlanParseAndAt(t *testing.T) {
	p, err := ParseFaultPlan("die-mid-cell@3,heartbeat-stall@5")
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]FaultKind{1: FaultNone, 3: FaultDieMidCell, 5: FaultHeartbeatStall, 6: FaultNone}
	for n, k := range want {
		if got := p.At(n); got != k {
			t.Errorf("At(%d) = %v, want %v", n, got, k)
		}
	}
	if p.Empty() {
		t.Error("plan with events reports Empty")
	}

	empty, err := ParseFaultPlan("")
	if err != nil || !empty.Empty() {
		t.Errorf("empty plan: %v, Empty=%v", err, empty.Empty())
	}
	var nilPlan *FaultPlan
	if nilPlan.At(1) != FaultNone || !nilPlan.Empty() {
		t.Error("nil plan must be inert")
	}

	for _, bad := range []string{"die-mid-cell", "nope@2", "die-mid-cell@0", "die-mid-cell@x"} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Errorf("ParseFaultPlan(%q) succeeded, want error", bad)
		}
	}
}
