package guard

import (
	"fmt"
	"strconv"
	"strings"
)

// Crash fault plans for the distributed experiment service's chaos
// harness. A FaultPlan scripts *process-level* failures — a worker dying
// mid-cell, dying after computing a result but before acknowledging it,
// or silently stalling its heartbeats — the way the Chaos injector
// scripts latency failures: deterministically, so every schedule the
// harness exercises can be replayed exactly. The service's correctness
// bar under any plan is byte-identity: the distributed run's tables and
// JSON must match a single-process run of the same grid.

// FaultKind classifies one injected process failure.
type FaultKind int

const (
	// FaultNone: execute the cell normally.
	FaultNone FaultKind = iota
	// FaultDieMidCell: the worker dies while the cell is simulating —
	// the lease expires with no result ever produced.
	FaultDieMidCell
	// FaultDieBeforeAck: the worker finishes the simulation but dies
	// before reporting the result — compute is lost, the lease expires,
	// and the cell is redispatched.
	FaultDieBeforeAck
	// FaultHeartbeatStall: the worker stops heartbeating long enough for
	// its leases to expire, but keeps running and reports its result
	// late — exercising the coordinator's duplicate-result dedup.
	FaultHeartbeatStall
)

// String names the fault for logs and flag values.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultDieMidCell:
		return "die-mid-cell"
	case FaultDieBeforeAck:
		return "die-before-ack"
	case FaultHeartbeatStall:
		return "heartbeat-stall"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// FaultEvent schedules one fault: the worker injects Kind on its Nth
// cell execution (1-based, counted across all leases it runs).
type FaultEvent struct {
	AtCell int
	Kind   FaultKind
}

// FaultPlan is a deterministic schedule of injected process failures,
// keyed by the worker's own execution count — not wall-clock — so runs
// replay. The zero value (and a nil plan) injects nothing.
type FaultPlan struct {
	Events []FaultEvent
}

// At returns the fault to inject on the n-th cell execution (1-based),
// or FaultNone. Nil-safe.
func (p *FaultPlan) At(n int) FaultKind {
	if p == nil {
		return FaultNone
	}
	for _, e := range p.Events {
		if e.AtCell == n {
			return e.Kind
		}
	}
	return FaultNone
}

// Empty reports whether the plan injects nothing. Nil-safe.
func (p *FaultPlan) Empty() bool { return p == nil || len(p.Events) == 0 }

// ParseFaultPlan parses the command-line form "kind@N[,kind@N...]",
// e.g. "die-mid-cell@3" or "heartbeat-stall@2,die-before-ack@5". An
// empty string is the empty plan.
func ParseFaultPlan(s string) (*FaultPlan, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return &FaultPlan{}, nil
	}
	kinds := map[string]FaultKind{
		FaultDieMidCell.String():     FaultDieMidCell,
		FaultDieBeforeAck.String():   FaultDieBeforeAck,
		FaultHeartbeatStall.String(): FaultHeartbeatStall,
	}
	var p FaultPlan
	for _, part := range strings.Split(s, ",") {
		kindStr, atStr, ok := strings.Cut(strings.TrimSpace(part), "@")
		if !ok {
			return nil, fmt.Errorf("guard: fault %q: want kind@N", part)
		}
		kind, ok := kinds[kindStr]
		if !ok {
			return nil, fmt.Errorf("guard: unknown fault kind %q (die-mid-cell, die-before-ack, heartbeat-stall)", kindStr)
		}
		n, err := strconv.Atoi(atStr)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("guard: fault %q: bad cell ordinal %q", part, atStr)
		}
		p.Events = append(p.Events, FaultEvent{AtCell: n, Kind: kind})
	}
	return &p, nil
}
