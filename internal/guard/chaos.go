package guard

// Chaos is the fault injector: a deterministic latency perturber. The
// memory systems add Jitter() cycles to each miss or network latency
// they compute, shifting every timing decision in the run while leaving
// functional semantics untouched. Because the functional/timing split is
// sound, a perturbed run must produce byte-identical architectural
// results (final memory, register state) to an unperturbed one — which
// tests assert across seeds. A divergence means timing state has leaked
// into functional state: exactly the class of bug chaos mode exists to
// catch.
//
// The PRNG is a self-contained splitmix64 (not math/rand) so guard stays
// a leaf package and each simulation cell can own a private, seeded
// stream with no shared state.
type Chaos struct {
	state uint64
	seed  int64
	skew  int64

	// Draws counts the perturbations drawn. Exported as a field (not a
	// method) so an observability registry can register its address; the
	// drivers surface it as the "chaos/draws" cell counter.
	Draws int64
}

// NewChaos returns a perturber seeded with seed whose Jitter values lie
// in [0, skew].
func NewChaos(seed, skew int64) *Chaos {
	if skew < 0 {
		skew = 0
	}
	return &Chaos{state: uint64(seed), seed: seed, skew: skew}
}

// Seed returns the seed the perturber was built with.
func (c *Chaos) Seed() int64 { return c.seed }

// Skew returns the maximum jitter in cycles.
func (c *Chaos) Skew() int64 { return c.skew }

// next advances the splitmix64 state.
func (c *Chaos) next() uint64 {
	c.state += 0x9E3779B97F4A7C15
	z := c.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Jitter returns the next perturbation in [0, Skew] cycles. A nil Chaos
// returns 0, so call sites need no mode check.
func (c *Chaos) Jitter() int64 {
	if c == nil || c.skew == 0 {
		return 0
	}
	c.Draws++
	return int64(c.next() % uint64(c.skew+1))
}

// Perturb returns lat plus jitter: the common "stretch this latency"
// call. Nil-safe.
func (c *Chaos) Perturb(lat int64) int64 { return lat + c.Jitter() }

// SnapshotState returns the PRNG position for checkpointing: the raw
// splitmix64 state and the draw count. Seed and skew are configuration,
// not state — a restorer rebuilds the Chaos from its config and resumes
// the stream with RestoreSnapshotState. Nil-safe (returns zeros).
func (c *Chaos) SnapshotState() (state uint64, draws int64) {
	if c == nil {
		return 0, 0
	}
	return c.state, c.Draws
}

// RestoreSnapshotState resumes the perturbation stream at a position
// captured by SnapshotState. Nil-safe (a no-op, matching a run whose
// chaos mode is off).
func (c *Chaos) RestoreSnapshotState(state uint64, draws int64) {
	if c == nil {
		return
	}
	c.state = state
	c.Draws = draws
}
