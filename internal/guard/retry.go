package guard

import "time"

// Retry is the deterministic retry/backoff policy shared by the grid
// runners (the watchdog doubled-budget retry) and the distributed
// experiment service (lease redispatch backoff). Two properties matter:
//
//   - Escalation is exact doubling (Escalate), so a retried simulation is
//     reproducible from (seed, attempt) alone — no wall-clock leaks into
//     the budget a cell runs under.
//   - Delays are capped exponential with splitmix64-seeded jitter
//     (the chaos seeding discipline), so a redispatch schedule replays
//     byte-identically for a given (Seed, key) and never synchronizes
//     retry storms across cells.
type Retry struct {
	// Attempts is the maximum number of attempts, including the first;
	// values <= 0 mean one attempt (no retry).
	Attempts int
	// Base is the delay before the second attempt; attempt n waits
	// Base << (n-2), capped at Cap. A zero Base disables delays (the
	// in-process grid retry re-runs immediately).
	Base time.Duration
	// Cap bounds the exponential growth; zero means "no cap".
	Cap time.Duration
	// Seed selects the jitter stream; zero disables jitter.
	Seed int64
}

// GridRetry is the policy the experiment grids have used since the
// watchdog retry was introduced: one immediate re-run at a doubled
// budget, nothing else.
func GridRetry() Retry { return Retry{Attempts: 2} }

// Allowed reports whether attempt (1-based) is within the policy's
// budget: Allowed(1) is always true, Allowed(Attempts+1) never.
func (r Retry) Allowed(attempt int) bool {
	max := r.Attempts
	if max <= 0 {
		max = 1
	}
	return attempt >= 1 && attempt <= max
}

// Delay returns the backoff to wait before running attempt (1-based;
// the first attempt never waits). The base schedule is Base doubled per
// retry and capped at Cap; jitter adds up to half the computed delay,
// drawn deterministically from splitmix64(Seed, key, attempt) so a
// given (policy, key) sequence replays exactly.
func (r Retry) Delay(key uint64, attempt int) time.Duration {
	if attempt <= 1 || r.Base <= 0 {
		return 0
	}
	d := time.Duration(Escalate(int64(r.Base), attempt-2))
	if r.Cap > 0 && d > r.Cap {
		d = r.Cap
	}
	if r.Seed != 0 && d > 0 {
		span := uint64(d)/2 + 1
		d += time.Duration(mix64(uint64(r.Seed)+key*0x9E3779B97F4A7C15+uint64(attempt)) % span)
	}
	return d
}

// Escalate doubles v attempt times (attempt 0 returns v unchanged),
// saturating instead of overflowing — the budget-escalation rule behind
// the watchdog retry (window × 2) and the cell-timeout retry.
func Escalate(v int64, attempt int) int64 {
	for ; attempt > 0 && v > 0; attempt-- {
		if v >= 1<<61 {
			return 1 << 62
		}
		v <<= 1
	}
	return v
}

// mix64 is the splitmix64 finalizer — the same decorrelation step the
// chaos injector and per-cell seed derivation use.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
