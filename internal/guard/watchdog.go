package guard

import (
	"fmt"
	"sort"
	"strings"
)

// Watchdog detects livelock and deadlock by watching a monotone progress
// counter — the machine-wide count of useful (non-synchronization)
// instructions retired. Spin loops retire synchronization instructions
// forever, so raw retirement is not progress: a deadlocked machine spins
// busily. A machine where *no* context retires a useful instruction for a
// whole window is stuck — a held-and-never-released lock, a garbled
// barrier, a livelocked protocol — long before it burns its LimitCycles
// budget.
//
// The caller polls Observe on its own cadence; the watchdog only compares
// counters, so polling never perturbs simulation timing.
type Watchdog struct {
	window       int64
	lastCount    int64
	lastProgress int64
	primed       bool
}

// NewWatchdog returns a watchdog with the given window in cycles, or nil
// if window <= 0 (disabled); all Watchdog methods are nil-safe.
func NewWatchdog(window int64) *Watchdog {
	if window <= 0 {
		return nil
	}
	return &Watchdog{window: window}
}

// Window returns the configured window (0 for a nil watchdog).
func (w *Watchdog) Window() int64 {
	if w == nil {
		return 0
	}
	return w.window
}

// Observe feeds the watchdog the current cycle and progress counter and
// reports whether the liveness window has elapsed without progress. Any
// change of the counter (including a reset to a smaller value, which
// measurement-window stat resets produce) counts as progress.
func (w *Watchdog) Observe(now, progress int64) (tripped bool) {
	if w == nil {
		return false
	}
	if !w.primed || progress != w.lastCount {
		w.primed = true
		w.lastCount = progress
		w.lastProgress = now
		return false
	}
	return now-w.lastProgress >= w.window
}

// ProgressState returns the watchdog's position for checkpointing: the
// last observed progress counter, the cycle it was observed at, and
// whether the watchdog has been primed. Nil-safe (returns zeros).
func (w *Watchdog) ProgressState() (lastCount, lastProgress int64, primed bool) {
	if w == nil {
		return 0, 0, false
	}
	return w.lastCount, w.lastProgress, w.primed
}

// SetProgressState resumes a watchdog at a position captured by
// ProgressState, so a restored run observes exactly the staleness an
// uninterrupted run would. Nil-safe (a no-op).
func (w *Watchdog) SetProgressState(lastCount, lastProgress int64, primed bool) {
	if w == nil {
		return
	}
	w.lastCount = lastCount
	w.lastProgress = lastProgress
	w.primed = primed
}

// Stalled returns how many cycles have elapsed since the last observed
// progress.
func (w *Watchdog) Stalled(now int64) int64 {
	if w == nil || !w.primed {
		return 0
	}
	return now - w.lastProgress
}

// CtxState is one hardware context's position in a Diagnostic.
type CtxState struct {
	Ctx     int
	Thread  string
	PC      int
	PCAddr  uint32
	Inst    string // disassembly of the instruction at PC
	Halted  bool
	Retired int64
	// AvailableAt/Cause describe why the context is not issuing: it may
	// issue at or after AvailableAt, and idle slots meanwhile are
	// charged to Cause.
	AvailableAt int64
	Cause       string
}

// MissState is one outstanding miss (an occupied MSHR / in-flight
// directory transaction) in a Diagnostic.
type MissState struct {
	Line      uint32
	Addr      uint32
	FillAt    int64
	Exclusive bool
}

// ProcState is one processor's slice of a Diagnostic.
type ProcState struct {
	ID     int
	Cycle  int64
	Ctxs   []CtxState
	Slots  map[string]int64 // nonzero issue-slot breakdown by class name
	Misses []MissState
}

// LineState is the directory state of one hot line (a line with an
// outstanding transaction) in a multiprocessor Diagnostic.
type LineState struct {
	Line    uint32
	Addr    uint32
	Owner   int // exclusive dirty owner, -1 if none
	Sharers uint64
}

// MissReporter is implemented by memory systems that can enumerate their
// outstanding misses for diagnostics (cache.Hierarchy, coherence.Node).
type MissReporter interface {
	OutstandingMisses() []MissState
}

// InvariantChecker is implemented by every simulator layer with internal
// invariants (core.Processor, cache.Hierarchy, coherence.Fabric). A nil
// return means the structure is consistent; violations come back as
// *SimError.
type InvariantChecker interface {
	CheckInvariants() error
}

// Diagnostic is a structured dump of simulator state at a failure: the
// watchdog's trip report, or the context attached to an invariant
// violation. It renders as a multi-line, human-readable block.
type Diagnostic struct {
	Reason string
	Cycle  int64
	Scheme string
	// Window is the watchdog window that elapsed, for watchdog trips.
	Window int64
	Procs  []ProcState
	// Lines is the directory state of hot lines (multiprocessor runs).
	Lines []LineState
	Notes []string
	// MachineHash digests the whole machine's state (memory, cache or
	// coherence state, architectural state) at the moment the diagnostic
	// was taken; zero when the builder did not compute one. Two
	// diagnostics from the "same" failure with different hashes captured
	// genuinely different machines.
	MachineHash uint64
}

// StateHasher is implemented by machine layers that can digest their own
// state (mem.Memory, cache.Hierarchy, coherence.Fabric).
type StateHasher interface {
	Hash() uint64
}

// MachineHash folds per-layer state digests into one machine-state hash
// (FNV-1a over the layer digests, in argument order). Drivers fold their
// layers in a fixed order — functional memory, then the memory system,
// then architectural state — so equal hashes mean equal machines.
func MachineHash(layers ...uint64) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range layers {
		for i := 0; i < 8; i++ {
			h ^= v & 0xFF
			h *= 1099511628211
			v >>= 8
		}
	}
	return h
}

// StuckContexts returns the non-halted contexts across all processors —
// the candidates for "who is wedged" when reading a watchdog report.
func (d *Diagnostic) StuckContexts() []CtxState {
	var out []CtxState
	for _, p := range d.Procs {
		for _, c := range p.Ctxs {
			if !c.Halted && c.Thread != "" {
				out = append(out, c)
			}
		}
	}
	return out
}

// String renders the diagnostic.
func (d *Diagnostic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== simulation diagnostic: %s ===\n", d.Reason)
	fmt.Fprintf(&b, "cycle %d", d.Cycle)
	if d.Scheme != "" {
		fmt.Fprintf(&b, ", scheme %s", d.Scheme)
	}
	if d.Window > 0 {
		fmt.Fprintf(&b, ", watchdog window %d", d.Window)
	}
	if d.MachineHash != 0 {
		fmt.Fprintf(&b, ", machine state %#x", d.MachineHash)
	}
	b.WriteByte('\n')
	for _, p := range d.Procs {
		fmt.Fprintf(&b, "processor %d (cycle %d):\n", p.ID, p.Cycle)
		for _, c := range p.Ctxs {
			if c.Thread == "" {
				fmt.Fprintf(&b, "  ctx %d: unbound\n", c.Ctx)
				continue
			}
			fmt.Fprintf(&b, "  ctx %d %s: pc=%d addr=%#x", c.Ctx, c.Thread, c.PC, c.PCAddr)
			if c.Inst != "" {
				fmt.Fprintf(&b, " inst=%q", c.Inst)
			}
			fmt.Fprintf(&b, " retired=%d", c.Retired)
			if c.Halted {
				b.WriteString(" halted")
			} else if c.AvailableAt > 0 {
				fmt.Fprintf(&b, " avail@%d cause=%s", c.AvailableAt, c.Cause)
			}
			b.WriteByte('\n')
		}
		if len(p.Slots) > 0 {
			names := make([]string, 0, len(p.Slots))
			for n := range p.Slots {
				names = append(names, n)
			}
			sort.Strings(names)
			b.WriteString("  slots:")
			for _, n := range names {
				fmt.Fprintf(&b, " %s=%d", n, p.Slots[n])
			}
			b.WriteByte('\n')
		}
		for _, m := range p.Misses {
			fmt.Fprintf(&b, "  outstanding miss: line=%#x addr=%#x fill@%d", m.Line, m.Addr, m.FillAt)
			if m.Exclusive {
				b.WriteString(" exclusive")
			}
			b.WriteByte('\n')
		}
	}
	if len(d.Lines) > 0 {
		b.WriteString("hot lines (directory state):\n")
		for _, l := range d.Lines {
			fmt.Fprintf(&b, "  line=%#x addr=%#x owner=%d sharers=%#b\n", l.Line, l.Addr, l.Owner, l.Sharers)
		}
	}
	for _, n := range d.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteString("===")
	return b.String()
}
