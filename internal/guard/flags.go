package guard

import "flag"

// BindFlags registers the hardening flags every simulator command exposes
// and returns the Options they populate:
//
//	-watchdog N          liveness window in cycles (0 = runner default, -1 = off)
//	-check-invariants    run the invariant checkers while simulating
//	-chaos SEED          deterministic fault injection with this seed (0 = off)
//	-chaos-skew N        max per-latency perturbation in cycles (0 = default)
func BindFlags(fs *flag.FlagSet) *Options {
	o := &Options{}
	fs.Int64Var(&o.WatchdogWindow, "watchdog", 0,
		"deadlock watchdog window in cycles (0 = runner default, negative = off)")
	fs.BoolVar(&o.CheckInvariants, "check-invariants", false,
		"check coherence/cache/pipeline invariants while simulating")
	fs.Int64Var(&o.ChaosSeed, "chaos", 0,
		"fault-injection seed: deterministically perturb memory/network latencies (0 = off)")
	fs.Int64Var(&o.ChaosSkew, "chaos-skew", 0,
		"max chaos perturbation per latency in cycles (0 = default)")
	return o
}

// Report renders an error for a command-line tool: the one-line message,
// followed by the structured diagnostic when the error chain carries one.
// Commands print this and exit non-zero instead of surfacing a raw panic
// stack.
func Report(err error) string {
	if se := AsSimError(err); se != nil && se.Diag != nil {
		return err.Error() + "\n" + se.Diag.String()
	}
	return err.Error()
}
