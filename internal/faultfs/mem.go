package faultfs

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Mem is an in-memory FS that models durability the way a journaled
// filesystem does, so crash-point directory images are computable:
//
//   - File data written through a handle is volatile until the handle's
//     Sync succeeds; Sync also makes the file's own directory entry
//     durable (the ext4-style behavior the journal relies on).
//   - Entry mutations that touch OTHER names — renames, removes, and
//     creates that are never followed by a file Sync — stay volatile
//     until SyncDir on the parent directory. This is the POSIX rule the
//     atomic-writer satellite is about: rename + file fsync alone does
//     not make the rename durable.
//   - CrashImage materializes the durable view: what a process would
//     find on disk after a crash at this exact point.
//
// Directories themselves are durable on creation (MkdirAll models a
// state directory prepared before the run, not a claim under test).
// A single Mem is safe for concurrent use and can be shared across
// "process restarts" of the component under test.
type Mem struct {
	mu      sync.Mutex
	files   map[string]*memNode // volatile namespace
	durable map[string]*memNode // durable namespace
	dirs    map[string]bool
	tempSeq int
}

// memNode is one file's content: the volatile bytes every reader sees,
// and the durable prefix as of the last successful Sync.
type memNode struct {
	data    []byte
	durable []byte
	synced  bool // a Sync succeeded at least once (dirent durability)
	mode    fs.FileMode
}

// NewMem returns an empty in-memory filesystem with a root directory.
func NewMem() *Mem {
	return &Mem{
		files:   map[string]*memNode{},
		durable: map[string]*memNode{},
		dirs:    map[string]bool{"/": true, ".": true},
	}
}

func memClean(path string) string { return filepath.Clean(path) }

func (m *Mem) lookup(path string) (*memNode, bool) {
	n, ok := m.files[memClean(path)]
	return n, ok
}

// dirExists reports whether path is a known directory.
func (m *Mem) dirExists(path string) bool {
	return m.dirs[memClean(path)]
}

func (m *Mem) MkdirAll(path string, perm fs.FileMode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := memClean(path)
	for {
		m.dirs[p] = true
		parent := filepath.Dir(p)
		if parent == p {
			return nil
		}
		p = parent
	}
}

func (m *Mem) OpenFile(path string, flag int, perm fs.FileMode) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := memClean(path)
	n, ok := m.files[p]
	if flag&os.O_CREATE != 0 {
		if !ok {
			if !m.dirExists(filepath.Dir(p)) {
				return nil, &fs.PathError{Op: "open", Path: path, Err: fs.ErrNotExist}
			}
			n = &memNode{mode: perm}
			m.files[p] = n
		}
	} else if !ok {
		return nil, &fs.PathError{Op: "open", Path: path, Err: fs.ErrNotExist}
	}
	if flag&os.O_TRUNC != 0 {
		n.data = nil
	}
	h := &memHandle{fs: m, node: n, path: p}
	if flag&os.O_APPEND != 0 {
		h.append = true
	}
	if flag&(os.O_WRONLY|os.O_RDWR) == 0 {
		h.readOnly = true
	}
	return h, nil
}

func (m *Mem) CreateTemp(dir, pattern string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := memClean(dir)
	if !m.dirExists(d) {
		return nil, &fs.PathError{Op: "createtemp", Path: dir, Err: fs.ErrNotExist}
	}
	prefix, suffix, _ := strings.Cut(pattern, "*")
	m.tempSeq++
	p := filepath.Join(d, fmt.Sprintf("%s%09d%s", prefix, m.tempSeq, suffix))
	n := &memNode{mode: 0o600}
	m.files[p] = n
	return &memHandle{fs: m, node: n, path: p}, nil
}

func (m *Mem) ReadFile(path string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.lookup(path)
	if !ok {
		return nil, &fs.PathError{Op: "read", Path: path, Err: fs.ErrNotExist}
	}
	return append([]byte(nil), n.data...), nil
}

func (m *Mem) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	op, np := memClean(oldpath), memClean(newpath)
	n, ok := m.files[op]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldpath, Err: fs.ErrNotExist}
	}
	delete(m.files, op)
	m.files[np] = n
	return nil
}

func (m *Mem) Remove(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := memClean(path)
	if _, ok := m.files[p]; !ok {
		return &fs.PathError{Op: "remove", Path: path, Err: fs.ErrNotExist}
	}
	delete(m.files, p)
	return nil
}

func (m *Mem) Truncate(path string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.lookup(path)
	if !ok {
		return &fs.PathError{Op: "truncate", Path: path, Err: fs.ErrNotExist}
	}
	if size < 0 {
		return &fs.PathError{Op: "truncate", Path: path, Err: fs.ErrInvalid}
	}
	for int64(len(n.data)) < size {
		n.data = append(n.data, 0)
	}
	n.data = n.data[:size]
	return nil
}

func (m *Mem) ReadDir(path string) ([]fs.DirEntry, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := memClean(path)
	if !m.dirExists(d) {
		return nil, &fs.PathError{Op: "readdir", Path: path, Err: fs.ErrNotExist}
	}
	var names []string
	for p := range m.files {
		if filepath.Dir(p) == d {
			names = append(names, filepath.Base(p))
		}
	}
	for p := range m.dirs {
		if p != d && filepath.Dir(p) == d {
			names = append(names, filepath.Base(p))
		}
	}
	sort.Strings(names)
	entries := make([]fs.DirEntry, len(names))
	for i, name := range names {
		entries[i] = memDirEntry{name: name, dir: m.dirs[filepath.Join(d, name)]}
	}
	return entries, nil
}

// SyncDir makes every entry mutation in the directory durable: each
// name's durable binding becomes its volatile binding (including
// removals of names that no longer exist). This is the fsync(dirfd)
// the atomic writer issues after its rename.
func (m *Mem) SyncDir(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := memClean(path)
	if !m.dirExists(d) {
		return &fs.PathError{Op: "syncdir", Path: path, Err: fs.ErrNotExist}
	}
	for p := range m.durable {
		if filepath.Dir(p) == d {
			if _, ok := m.files[p]; !ok {
				delete(m.durable, p)
			}
		}
	}
	for p, n := range m.files {
		if filepath.Dir(p) == d {
			m.durable[p] = n
		}
	}
	return nil
}

// CrashImage returns a new Mem holding the durable view: each durable
// directory entry with its node's last-synced content. This is the
// filesystem a restarted process would observe after a crash at this
// point; the original Mem is unchanged and still usable.
func (m *Mem) CrashImage() *Mem {
	m.mu.Lock()
	defer m.mu.Unlock()
	img := NewMem()
	for p := range m.dirs {
		img.dirs[p] = true
	}
	for p, n := range m.durable {
		nn := &memNode{
			data:    append([]byte(nil), n.durable...),
			durable: append([]byte(nil), n.durable...),
			synced:  true,
			mode:    n.mode,
		}
		img.files[memClean(p)] = nn
		img.durable[memClean(p)] = nn
	}
	img.tempSeq = m.tempSeq
	return img
}

// memHandle is an open Mem file. Writers are sequential (the callers
// write streams or append records); readers track their own offset.
type memHandle struct {
	fs       *Mem
	node     *memNode
	path     string
	off      int // read/write position for non-append handles
	append   bool
	readOnly bool
	closed   bool
}

func (h *memHandle) Name() string { return h.path }

func (h *memHandle) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	if h.off >= len(h.node.data) {
		return 0, io.EOF
	}
	n := copy(p, h.node.data[h.off:])
	h.off += n
	return n, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	if h.readOnly {
		return 0, &fs.PathError{Op: "write", Path: h.path, Err: fs.ErrPermission}
	}
	if h.append {
		h.node.data = append(h.node.data, p...)
		return len(p), nil
	}
	for len(h.node.data) < h.off {
		h.node.data = append(h.node.data, 0)
	}
	h.node.data = append(h.node.data[:h.off], p...)
	h.off += len(p)
	return len(p), nil
}

// Sync makes the node's current bytes durable and (first success)
// its own directory entry findable after a crash.
func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return fs.ErrClosed
	}
	h.node.durable = append(h.node.durable[:0], h.node.data...)
	h.node.synced = true
	// The dirent under the file's CURRENT volatile name becomes durable,
	// the fsync(file)-commits-the-inode behavior of journaled
	// filesystems. A rename after this Sync still needs SyncDir.
	if n, ok := h.fs.files[h.path]; ok && n == h.node {
		h.fs.durable[h.path] = h.node
	}
	return nil
}

func (h *memHandle) Chmod(mode fs.FileMode) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.node.mode = mode
	return nil
}

func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return fs.ErrClosed
	}
	h.closed = true
	return nil
}

// memDirEntry is the synthetic fs.DirEntry ReadDir returns.
type memDirEntry struct {
	name string
	dir  bool
}

func (e memDirEntry) Name() string { return e.name }
func (e memDirEntry) IsDir() bool  { return e.dir }
func (e memDirEntry) Type() fs.FileMode {
	if e.dir {
		return fs.ModeDir
	}
	return 0
}
func (e memDirEntry) Info() (fs.FileInfo, error) { return memFileInfo{e}, nil }

type memFileInfo struct{ e memDirEntry }

func (i memFileInfo) Name() string { return i.e.name }
func (i memFileInfo) Size() int64  { return 0 }
func (i memFileInfo) Mode() fs.FileMode {
	return i.e.Type()
}
func (i memFileInfo) ModTime() time.Time { return time.Time{} }
func (i memFileInfo) IsDir() bool        { return i.e.dir }
func (i memFileInfo) Sys() any           { return nil }
