package faultfs

import (
	"fmt"
	"io/fs"
	"sync"
	"syscall"
)

// FaultKind classifies one injected disk failure.
type FaultKind int

const (
	// FaultTornWrite: a Write persists only its first k bytes, then
	// errors — the on-disk effect of a crash (or sector failure) mid
	// write.
	FaultTornWrite FaultKind = iota
	// FaultFailedSync: Sync returns EIO. Data written since the last
	// successful sync has unknown durability (in the Mem model: it is
	// NOT durable).
	FaultFailedSync
	// FaultENOSPC: the device runs out of space after a byte budget.
	// The write crossing the budget is short and returns ENOSPC; every
	// later write fails outright until the injector is rebuilt (the
	// operator freed space before restarting).
	FaultENOSPC
)

// String names the fault for schedules and reports.
func (k FaultKind) String() string {
	switch k {
	case FaultTornWrite:
		return "torn-write"
	case FaultFailedSync:
		return "failed-sync"
	case FaultENOSPC:
		return "enospc"
	default:
		return fmt.Sprintf("diskfault(%d)", int(k))
	}
}

// DiskFaultKinds lists every injectable disk fault class, for coverage
// accounting.
var DiskFaultKinds = []FaultKind{FaultTornWrite, FaultFailedSync, FaultENOSPC}

// Fault describes one injected failure, delivered to the OnFault hook.
type Fault struct {
	Kind    FaultKind
	Path    string
	Ordinal int64 // which write/sync (1-based, per class counter) fired
	Kept    int   // torn write: bytes that did persist
}

// InjectedError wraps the errno-shaped failure an injected fault
// returns, so tests can both errors.Is it against syscall.EIO/ENOSPC
// (like real callers would see) and recognize it as injected.
type InjectedError struct {
	Fault Fault
	Err   error
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faultfs: injected %v on %s (op %d): %v", e.Fault.Kind, e.Fault.Path, e.Fault.Ordinal, e.Err)
}

func (e *InjectedError) Unwrap() error { return e.Err }

// Plan is one deterministic disk-fault schedule: which write/sync
// ordinal each one-shot fault fires on. Ordinals are 1-based counts of
// matching operations seen by the injector (after the path filter);
// zero disables that class. A Plan is pure data — generate it from a
// seed with PlanFromSeed, shrink it by zeroing fields.
type Plan struct {
	// TornWriteAt tears the n-th Write: only TornWriteKeep bytes (mod
	// the write's length) reach the underlying FS, and the write
	// returns EIO.
	TornWriteAt   int64 `json:"tornWriteAt,omitempty"`
	TornWriteKeep int   `json:"tornWriteKeep,omitempty"`
	// FailSyncAt fails the n-th Sync with EIO. The data reached the
	// file, the durability barrier did not.
	FailSyncAt int64 `json:"failSyncAt,omitempty"`
	// ENOSPCAfterBytes is the total write budget in bytes across the
	// whole FS; once crossed, writes fail with ENOSPC.
	ENOSPCAfterBytes int64 `json:"enospcAfterBytes,omitempty"`
}

// Empty reports whether the plan injects nothing.
func (p Plan) Empty() bool {
	return p.TornWriteAt == 0 && p.FailSyncAt == 0 && p.ENOSPCAfterBytes == 0
}

// String renders the plan compactly for reports.
func (p Plan) String() string {
	if p.Empty() {
		return "disk:none"
	}
	s := "disk:"
	if p.TornWriteAt > 0 {
		s += fmt.Sprintf("[torn-write@%d keep %d]", p.TornWriteAt, p.TornWriteKeep)
	}
	if p.FailSyncAt > 0 {
		s += fmt.Sprintf("[failed-sync@%d]", p.FailSyncAt)
	}
	if p.ENOSPCAfterBytes > 0 {
		s += fmt.Sprintf("[enospc after %dB]", p.ENOSPCAfterBytes)
	}
	return s
}

// splitmix64 is the repo-wide seeding PRNG (same constants as
// guard.Chaos and the experiment pool's DeriveSeed).
func splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// PlanFromSeed derives a deterministic disk schedule from a seed: which
// classes are armed and their ordinals/budgets are all pure functions
// of the seed, so the same seed replays the same schedule. classMask
// selects the armed classes (bit i = DiskFaultKinds[i]); pass
// AllDiskFaults for everything.
func PlanFromSeed(seed int64, classMask uint) Plan {
	st := uint64(seed) ^ 0x64697368 // decorrelate from other layers' streams
	var p Plan
	if classMask&(1<<FaultTornWrite) != 0 {
		p.TornWriteAt = int64(splitmix64(&st)%12) + 2
		p.TornWriteKeep = int(splitmix64(&st) % 48)
	}
	if classMask&(1<<FaultFailedSync) != 0 {
		p.FailSyncAt = int64(splitmix64(&st)%10) + 2
	}
	if classMask&(1<<FaultENOSPC) != 0 {
		p.ENOSPCAfterBytes = int64(splitmix64(&st)%4096) + 512
	}
	return p
}

// AllDiskFaults is the classMask arming every disk fault class.
const AllDiskFaults = 1<<FaultTornWrite | 1<<FaultFailedSync | 1<<FaultENOSPC

// Injector wraps an FS and executes a Plan. Operation counters are
// global across the FS (under one mutex), so a plan's ordinals form one
// deterministic schedule per injector lifetime. Faults are one-shot:
// after firing, the class disarms (except ENOSPC, which persists —
// a full disk stays full until the injector is rebuilt).
type Injector struct {
	inner   FS
	plan    Plan
	filter  func(path string) bool
	onFault func(Fault)

	mu       sync.Mutex
	writes   int64
	syncs    int64
	written  int64
	fired    map[FaultKind]int64
	enospcOn bool
}

// NewInjector wraps inner with plan. filter (optional) restricts
// injection to matching paths — counters only advance on matching
// files, so ordinals are stable against unrelated I/O. onFault
// (optional) observes every fired fault.
func NewInjector(inner FS, plan Plan, filter func(path string) bool, onFault func(Fault)) *Injector {
	return &Injector{inner: inner, plan: plan, filter: filter, onFault: onFault,
		fired: map[FaultKind]int64{}}
}

// Fired returns how many faults of each class this injector executed.
func (in *Injector) Fired() map[FaultKind]int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[FaultKind]int64, len(in.fired))
	for k, v := range in.fired {
		out[k] = v
	}
	return out
}

func (in *Injector) match(path string) bool {
	return in.filter == nil || in.filter(path)
}

func (in *Injector) fireLocked(f Fault) {
	in.fired[f.Kind]++
	hook := in.onFault
	if hook != nil {
		// Deliver outside the lock; the hook may inspect the injector.
		in.mu.Unlock()
		hook(f)
		in.mu.Lock()
	}
}

// decideWrite consumes one write ordinal for path and returns the fault
// to execute, if any: kept >= 0 means "tear, persist kept bytes".
func (in *Injector) decideWrite(path string, length int) (fault *InjectedError, kept int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.writes++
	n := in.writes
	if in.plan.TornWriteAt == n && length > 0 {
		kept = in.plan.TornWriteKeep % length
		f := Fault{Kind: FaultTornWrite, Path: path, Ordinal: n, Kept: kept}
		in.fireLocked(f)
		return &InjectedError{Fault: f, Err: syscall.EIO}, kept
	}
	if in.plan.ENOSPCAfterBytes > 0 {
		if in.enospcOn {
			f := Fault{Kind: FaultENOSPC, Path: path, Ordinal: n}
			in.fireLocked(f)
			return &InjectedError{Fault: f, Err: syscall.ENOSPC}, 0
		}
		if in.written+int64(length) > in.plan.ENOSPCAfterBytes {
			kept = int(in.plan.ENOSPCAfterBytes - in.written)
			if kept < 0 {
				kept = 0
			}
			in.enospcOn = true
			in.written = in.plan.ENOSPCAfterBytes
			f := Fault{Kind: FaultENOSPC, Path: path, Ordinal: n, Kept: kept}
			in.fireLocked(f)
			return &InjectedError{Fault: f, Err: syscall.ENOSPC}, kept
		}
	}
	in.written += int64(length)
	return nil, 0
}

func (in *Injector) decideSync(path string) *InjectedError {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.syncs++
	if in.plan.FailSyncAt == in.syncs {
		f := Fault{Kind: FaultFailedSync, Path: path, Ordinal: in.syncs}
		in.fireLocked(f)
		return &InjectedError{Fault: f, Err: syscall.EIO}
	}
	return nil
}

func (in *Injector) OpenFile(path string, flag int, perm fs.FileMode) (File, error) {
	f, err := in.inner.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return in.wrap(f), nil
}

func (in *Injector) CreateTemp(dir, pattern string) (File, error) {
	f, err := in.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return in.wrap(f), nil
}

func (in *Injector) wrap(f File) File {
	if !in.match(f.Name()) {
		return f
	}
	return &injectedFile{inner: f, in: in}
}

func (in *Injector) ReadFile(path string) ([]byte, error)   { return in.inner.ReadFile(path) }
func (in *Injector) Rename(oldpath, newpath string) error   { return in.inner.Rename(oldpath, newpath) }
func (in *Injector) Remove(path string) error               { return in.inner.Remove(path) }
func (in *Injector) Truncate(path string, size int64) error { return in.inner.Truncate(path, size) }
func (in *Injector) MkdirAll(path string, perm fs.FileMode) error {
	return in.inner.MkdirAll(path, perm)
}
func (in *Injector) ReadDir(path string) ([]fs.DirEntry, error) { return in.inner.ReadDir(path) }
func (in *Injector) SyncDir(path string) error                  { return in.inner.SyncDir(path) }

// injectedFile interposes the write/sync fault decisions on one handle.
type injectedFile struct {
	inner File
	in    *Injector
}

func (f *injectedFile) Name() string               { return f.inner.Name() }
func (f *injectedFile) Read(p []byte) (int, error) { return f.inner.Read(p) }

func (f *injectedFile) Write(p []byte) (int, error) {
	fault, kept := f.in.decideWrite(f.inner.Name(), len(p))
	if fault == nil {
		return f.inner.Write(p)
	}
	n := 0
	if kept > 0 {
		n, _ = f.inner.Write(p[:kept])
	}
	return n, fault
}

func (f *injectedFile) Sync() error {
	if fault := f.in.decideSync(f.inner.Name()); fault != nil {
		return fault
	}
	return f.inner.Sync()
}

func (f *injectedFile) Chmod(mode fs.FileMode) error { return f.inner.Chmod(mode) }
func (f *injectedFile) Close() error                 { return f.inner.Close() }
