// Package faultfs is the seeded disk-fault layer under the repository's
// durability claims. Every component that promises crash safety — the
// fsync'd cell journal (internal/experiments), the atomic artifact
// writer (metrics.WriteFileAtomic), the checkpoint codec's SaveFile
// (internal/snapshot) — performs its file I/O through the small FS
// interface here, so a torture harness can interpose deterministic
// failures exactly where production code claims to survive them:
//
//   - torn writes (a Write persists only its first k bytes and errors),
//   - failed Sync (fsync returns EIO; data written since the last
//     successful sync may not be durable),
//   - ENOSPC after a byte budget (the write crossing the budget is
//     short and errors, later writes fail outright),
//   - crash-point directory images (Mem models which bytes and which
//     directory entries are durable; CrashImage materializes the state
//     a machine would reboot into).
//
// Production code uses the OS() passthrough, which adds nothing on top
// of the os package — zero behavior change — except SyncDir, the
// parent-directory fsync that makes renames themselves durable. The
// package is a leaf: it imports only the standard library, so the other
// leaf packages (snapshot, metrics) can depend on it without cycles.
package faultfs

import (
	"io"
	"io/fs"
	"os"
)

// File is the writable/readable handle the durability layers use. It is
// the subset of *os.File they actually call.
type File interface {
	io.Reader
	io.Writer
	// Name returns the path the file was opened or created at.
	Name() string
	// Sync flushes the file's data (and, in the Mem model, makes its
	// directory entry durable — the common journaled-filesystem
	// behavior).
	Sync() error
	// Chmod sets the file mode.
	Chmod(mode fs.FileMode) error
	// Close closes the handle. Close does NOT imply durability.
	Close() error
}

// FS is the filesystem surface the durability layers run on: exactly
// the operations the journal append path, snapshot.SaveFile and
// metrics.WriteFileAtomic perform, no more.
type FS interface {
	// OpenFile opens path with os.OpenFile semantics for the flag
	// combinations the callers use (O_RDONLY; O_CREATE|O_TRUNC|O_WRONLY;
	// O_WRONLY|O_APPEND).
	OpenFile(path string, flag int, perm fs.FileMode) (File, error)
	// CreateTemp creates a new unique file in dir with os.CreateTemp
	// naming semantics.
	CreateTemp(dir, pattern string) (File, error)
	// ReadFile reads the whole file.
	ReadFile(path string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath. Durability of the
	// rename itself requires SyncDir on the parent directory.
	Rename(oldpath, newpath string) error
	// Remove deletes path.
	Remove(path string) error
	// Truncate cuts path to size bytes.
	Truncate(path string, size int64) error
	// MkdirAll creates path and parents.
	MkdirAll(path string, perm fs.FileMode) error
	// ReadDir lists a directory.
	ReadDir(path string) ([]fs.DirEntry, error)
	// SyncDir fsyncs a directory, making entry mutations (creates,
	// renames, removes) in it durable.
	SyncDir(path string) error
}

// osFS is the production passthrough.
type osFS struct{}

// OS returns the passthrough FS over the real filesystem. Every
// FS-accepting entry point treats a nil FS as OS(), so production call
// sites need no mode check.
func OS() FS { return osFS{} }

// OrOS returns fsys, or the OS passthrough when fsys is nil.
func OrOS(fsys FS) FS {
	if fsys == nil {
		return osFS{}
	}
	return fsys
}

func (osFS) OpenFile(path string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) ReadFile(path string) ([]byte, error)   { return os.ReadFile(path) }
func (osFS) Rename(oldpath, newpath string) error   { return os.Rename(oldpath, newpath) }
func (osFS) Remove(path string) error               { return os.Remove(path) }
func (osFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }
func (osFS) MkdirAll(path string, perm fs.FileMode) error {
	return os.MkdirAll(path, perm)
}
func (osFS) ReadDir(path string) ([]fs.DirEntry, error) { return os.ReadDir(path) }

// SyncDir fsyncs the directory so entry mutations in it survive a
// crash. POSIX requires this for renames and creates to be durable;
// file-level fsync alone does not cover the dirent.
func (osFS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
