package faultfs

import (
	"errors"
	"io/fs"
	"os"
	"reflect"
	"syscall"
	"testing"
)

// write is a test helper: create path on fsys with content, optionally
// syncing the file.
func write(t *testing.T, fsys FS, path, content string, sync bool) {
	t.Helper()
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(content)); err != nil {
		t.Fatal(err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func readFile(t *testing.T, fsys FS, path string) string {
	t.Helper()
	data, err := fsys.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// The Mem durability model: unsynced data does not survive a crash,
// synced data does, and a file Sync makes the file's own dirent
// durable.
func TestMemCrashImageDropsUnsyncedData(t *testing.T) {
	m := NewMem()
	if err := m.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	write(t, m, "/d/synced", "durable", true)
	write(t, m, "/d/unsynced", "volatile", false)

	// Append past the synced prefix without syncing.
	f, err := m.OpenFile("/d/synced", os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(" tail")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if got := readFile(t, m, "/d/synced"); got != "durable tail" {
		t.Fatalf("live view = %q, want %q", got, "durable tail")
	}

	img := m.CrashImage()
	if got := readFile(t, img, "/d/synced"); got != "durable" {
		t.Errorf("crash image kept unsynced tail: %q", got)
	}
	if _, err := img.ReadFile("/d/unsynced"); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("never-synced file survived the crash: %v", err)
	}
	// The original is untouched.
	if got := readFile(t, m, "/d/synced"); got != "durable tail" {
		t.Errorf("CrashImage mutated the live fs: %q", got)
	}
}

// Rename durability: without SyncDir the crash image shows the
// pre-rename state; with it, the rename survives. This is the model the
// WriteFileAtomic satellite fix is proved against.
func TestMemRenameNeedsSyncDir(t *testing.T) {
	m := NewMem()
	if err := m.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	write(t, m, "/d/tmp1", "payload", true)

	if err := m.Rename("/d/tmp1", "/d/final"); err != nil {
		t.Fatal(err)
	}
	img := m.CrashImage()
	if _, err := img.ReadFile("/d/final"); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("rename became durable without SyncDir: %v", err)
	}
	if got := readFile(t, img, "/d/tmp1"); got != "payload" {
		t.Errorf("pre-rename name lost from crash image: %q", got)
	}

	if err := m.SyncDir("/d"); err != nil {
		t.Fatal(err)
	}
	img2 := m.CrashImage()
	if got := readFile(t, img2, "/d/final"); got != "payload" {
		t.Errorf("rename + SyncDir not durable: %q", got)
	}
	if _, err := img2.ReadFile("/d/tmp1"); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("old name survived SyncDir: %v", err)
	}
}

// Truncate + append mirrors the journal's torn-tail recovery; the
// crash image tracks the synced state through it.
func TestMemTruncateAndAppend(t *testing.T) {
	m := NewMem()
	write(t, m, "/j", "aaaa\nbbbb\ngarb", true)
	if err := m.Truncate("/j", 10); err != nil {
		t.Fatal(err)
	}
	f, err := m.OpenFile("/j", os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("cccc\n")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	want := "aaaa\nbbbb\ncccc\n"
	if got := readFile(t, m, "/j"); got != want {
		t.Errorf("live = %q, want %q", got, want)
	}
	if got := readFile(t, m.CrashImage(), "/j"); got != want {
		t.Errorf("crash image = %q, want %q", got, want)
	}
}

func TestMemReadDir(t *testing.T) {
	m := NewMem()
	if err := m.MkdirAll("/s/sub", 0o755); err != nil {
		t.Fatal(err)
	}
	write(t, m, "/s/b.json", "x", true)
	write(t, m, "/s/a.json", "y", false)
	entries, err := m.ReadDir("/s")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if want := []string{"a.json", "b.json", "sub"}; !reflect.DeepEqual(names, want) {
		t.Errorf("ReadDir = %v, want %v", names, want)
	}
}

// The injector executes its plan exactly: the scheduled ordinal tears,
// fails, or runs dry, and everything else passes through.
func TestInjectorTornWrite(t *testing.T) {
	m := NewMem()
	inj := NewInjector(m, Plan{TornWriteAt: 2, TornWriteKeep: 3}, nil, nil)
	f, err := inj.OpenFile("/f", os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("first|")); err != nil {
		t.Fatalf("write 1 faulted early: %v", err)
	}
	n, err := f.Write([]byte("second"))
	if n != 3 {
		t.Errorf("torn write persisted %d bytes, want 3", n)
	}
	var ie *InjectedError
	if !errors.As(err, &ie) || !errors.Is(err, syscall.EIO) {
		t.Fatalf("torn write error = %v, want injected EIO", err)
	}
	if ie.Fault.Kind != FaultTornWrite {
		t.Errorf("fault kind = %v", ie.Fault.Kind)
	}
	if got := readFile(t, m, "/f"); got != "first|sec" {
		t.Errorf("file after torn write = %q, want %q", got, "first|sec")
	}
	// One-shot: the next write is clean.
	if _, err := f.Write([]byte("!")); err != nil {
		t.Errorf("write after torn write faulted again: %v", err)
	}
	if got := inj.Fired()[FaultTornWrite]; got != 1 {
		t.Errorf("fired[torn-write] = %d, want 1", got)
	}
}

func TestInjectorFailedSyncKeepsDataVolatile(t *testing.T) {
	m := NewMem()
	var seen []Fault
	inj := NewInjector(m, Plan{FailSyncAt: 2}, nil, func(f Fault) { seen = append(seen, f) })
	f, err := inj.OpenFile("/f", os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("one"))
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 1 faulted early: %v", err)
	}
	f.Write([]byte("two"))
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("sync 2 = %v, want injected EIO", err)
	}
	// The failed barrier means "two" is not durable.
	if got := readFile(t, m.CrashImage(), "/f"); got != "one" {
		t.Errorf("crash image after failed sync = %q, want %q", got, "one")
	}
	if len(seen) != 1 || seen[0].Kind != FaultFailedSync {
		t.Errorf("OnFault saw %v", seen)
	}
}

func TestInjectorENOSPCPersists(t *testing.T) {
	m := NewMem()
	inj := NewInjector(m, Plan{ENOSPCAfterBytes: 10}, nil, nil)
	f, err := inj.OpenFile("/f", os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("12345678")); err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abcdef"))
	if n != 2 || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("budget-crossing write = (%d, %v), want (2, ENOSPC)", n, err)
	}
	// The disk stays full.
	if _, err := f.Write([]byte("x")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("post-ENOSPC write = %v, want ENOSPC", err)
	}
	if got := readFile(t, m, "/f"); got != "12345678ab" {
		t.Errorf("file = %q, want %q", got, "12345678ab")
	}
	if got := inj.Fired()[FaultENOSPC]; got != 2 {
		t.Errorf("fired[enospc] = %d, want 2", got)
	}
}

// The path filter keeps unrelated I/O out of the ordinal counters.
func TestInjectorPathFilter(t *testing.T) {
	m := NewMem()
	inj := NewInjector(m, Plan{TornWriteAt: 1, TornWriteKeep: 0},
		func(p string) bool { return p == "/target" }, nil)
	write(t, inj, "/noise", "unrelated", true) // not counted, not faulted
	f, err := inj.OpenFile("/target", os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hit")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("first matching write = %v, want injected EIO", err)
	}
	if got := readFile(t, m, "/noise"); got != "unrelated" {
		t.Errorf("filtered path was faulted: %q", got)
	}
}

// Same seed, same schedule: PlanFromSeed is a pure function, and two
// injectors with the same plan fire identically on the same op stream.
func TestPlanFromSeedDeterministic(t *testing.T) {
	for seed := int64(1); seed < 50; seed++ {
		a := PlanFromSeed(seed, AllDiskFaults)
		b := PlanFromSeed(seed, AllDiskFaults)
		if a != b {
			t.Fatalf("seed %d: plans differ: %+v vs %+v", seed, a, b)
		}
		if a.TornWriteAt == 0 || a.FailSyncAt == 0 || a.ENOSPCAfterBytes == 0 {
			t.Fatalf("seed %d: full mask left a class unarmed: %+v", seed, a)
		}
	}
	if PlanFromSeed(7, 0) != (Plan{}) {
		t.Error("empty mask armed something")
	}
	one := PlanFromSeed(7, 1<<FaultFailedSync)
	if one.TornWriteAt != 0 || one.ENOSPCAfterBytes != 0 || one.FailSyncAt == 0 {
		t.Errorf("single-class mask produced %+v", one)
	}
}

// The OS passthrough really passes through, including SyncDir on a real
// directory.
func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	fsys := OS()
	if err := fsys.MkdirAll(dir+"/sub", 0o755); err != nil {
		t.Fatal(err)
	}
	write(t, fsys, dir+"/sub/f", "hello", true)
	if err := fsys.Rename(dir+"/sub/f", dir+"/sub/g"); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir(dir + "/sub"); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, fsys, dir+"/sub/g"); got != "hello" {
		t.Errorf("content = %q", got)
	}
	entries, err := fsys.ReadDir(dir + "/sub")
	if err != nil || len(entries) != 1 || entries[0].Name() != "g" {
		t.Errorf("ReadDir = %v, %v", entries, err)
	}
	if err := fsys.Truncate(dir+"/sub/g", 2); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, fsys, dir+"/sub/g"); got != "he" {
		t.Errorf("truncated content = %q", got)
	}
	if OrOS(nil) == nil || OrOS(fsys) != fsys {
		t.Error("OrOS defaulting broken")
	}
}
