package workstation

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/guard"
	"repro/internal/snapshot"
)

// forkConfig is a small but non-trivial run: two rotations of warm-up so
// the prefix does real work, chaos optionally enabled.
func forkConfig(s core.Scheme, n int, chaos bool) Config {
	cfg := DefaultConfig(s, n)
	cfg.OS.SliceCycles = 5_000
	cfg.WarmupRotations = 1
	cfg.MeasureRotations = 1
	if chaos {
		cfg.Guard = guard.Options{ChaosSeed: 99, ChaosSkew: 3}
	}
	return cfg
}

// TestForkEquivalence is the golden fork-vs-scratch check: for every
// scheme, with and without chaos, a run forked from a warm-up checkpoint
// must produce a Result deep-equal to the uninterrupted run.
func TestForkEquivalence(t *testing.T) {
	ks := testWorkload(t, "cfft2d", "gmtry", "tomcatv", "vpenta")
	cases := []struct {
		scheme core.Scheme
		ctxs   int
	}{
		{core.Single, 1},
		{core.Blocked, 4},
		{core.BlockedFast, 4},
		{core.Interleaved, 4},
		{core.FineGrained, 4},
	}
	for _, tc := range cases {
		for _, chaos := range []bool{false, true} {
			name := tc.scheme.String()
			if chaos {
				name += "/chaos"
			}
			t.Run(name, func(t *testing.T) {
				cfg := forkConfig(tc.scheme, tc.ctxs, chaos)
				want, err := Run(ks, cfg)
				if err != nil {
					t.Fatal(err)
				}
				ckpt, err := CheckpointWarmupCtx(context.Background(), ks, cfg, "fp")
				if err != nil {
					t.Fatal(err)
				}
				got, err := ResumeCtx(context.Background(), ks, cfg, ckpt, "fp")
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("forked result differs from scratch:\n got %+v\nwant %+v", got, want)
				}
			})
		}
	}
}

// TestForkEquivalenceWithOverrides pins the sweep-forking contract: a
// cell that overrides a parameter at the measure boundary produces the
// same Result whether it simulates its own warm-up or forks from a
// checkpoint taken under the shared prefix configuration, and the
// override actually changes the outcome relative to the baseline.
func TestForkEquivalenceWithOverrides(t *testing.T) {
	ks := testWorkload(t, "cfft2d", "gmtry", "tomcatv", "vpenta")

	prefix := forkConfig(core.Blocked, 4, false)
	ckpt, err := CheckpointWarmupCtx(context.Background(), ks, prefix, "fp")
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(ks, prefix)
	if err != nil {
		t.Fatal(err)
	}

	changed := false
	for _, cost := range []int{1, 9} {
		cell := prefix
		cell.Measure.BlockedFlushCost = cost
		want, err := Run(ks, cell)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ResumeCtx(context.Background(), ks, cell, ckpt, "fp")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("cost=%d: forked result differs from scratch:\n got %+v\nwant %+v", cost, got, want)
		}
		if !reflect.DeepEqual(want.Stats, base.Stats) {
			changed = true
		}
	}
	if !changed {
		t.Error("flush-cost override had no effect on any cell — override is not being applied")
	}

	cellM := prefix
	cellM.Measure.MSHRs = 1
	want, err := Run(ks, cellM)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ResumeCtx(context.Background(), ks, cellM, ckpt, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("MSHR override: forked result differs from scratch")
	}
	if reflect.DeepEqual(want.Stats, base.Stats) {
		t.Error("MSHR override had no effect — override is not being applied")
	}
}

// TestCheckpointAtRandomBoundaries is the slice-boundary property test:
// Save → Restore → run the rest must equal the uninterrupted run at any
// slice boundary, not just the warm-up boundary.
func TestCheckpointAtRandomBoundaries(t *testing.T) {
	ks := testWorkload(t, "cfft2d", "gmtry", "tomcatv", "vpenta")
	rng := rand.New(rand.NewSource(7))
	for _, scheme := range []core.Scheme{core.Blocked, core.Interleaved} {
		cfg := forkConfig(scheme, 4, true)
		want, err := Run(ks, cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := newRunner(ks, cfg)
		if err != nil {
			t.Fatal(err)
		}
		total := r.totalSlices
		for trial := 0; trial < 3; trial++ {
			at := rng.Intn(total + 1)
			ckpt, err := CheckpointAtCtx(context.Background(), ks, cfg, at, "fp")
			if err != nil {
				t.Fatal(err)
			}
			got, err := ResumeCtx(context.Background(), ks, cfg, ckpt, "fp")
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%v: restore at slice %d/%d diverges from uninterrupted run", scheme, at, total)
			}
		}
	}
}

// TestCheckpointRejection exercises the typed-error surface: corrupted
// bytes, wrong fingerprint, and wrong machine shape must all be rejected
// before any state is trusted.
func TestCheckpointRejection(t *testing.T) {
	ks := testWorkload(t, "cfft2d", "gmtry", "tomcatv", "vpenta")
	cfg := forkConfig(core.Blocked, 4, false)
	ckpt, err := CheckpointWarmupCtx(context.Background(), ks, cfg, "fp")
	if err != nil {
		t.Fatal(err)
	}

	bad := append([]byte(nil), ckpt...)
	bad[len(bad)/2] ^= 0x40
	if _, err := ResumeCtx(context.Background(), ks, cfg, bad, "fp"); !errors.Is(err, snapshot.ErrCorrupt) {
		t.Errorf("corrupted checkpoint: err = %v, want ErrCorrupt", err)
	}

	if _, err := ResumeCtx(context.Background(), ks, cfg, ckpt, "other"); !errors.Is(err, snapshot.ErrMismatch) {
		t.Errorf("wrong fingerprint: err = %v, want ErrMismatch", err)
	}

	other := forkConfig(core.Interleaved, 4, false)
	if _, err := ResumeCtx(context.Background(), ks, other, ckpt, "fp"); !errors.Is(err, snapshot.ErrCorrupt) {
		t.Errorf("wrong scheme: err = %v, want ErrCorrupt (shape check)", err)
	}

	if _, err := ResumeCtx(context.Background(), ks, cfg, ckpt[:len(ckpt)-3], "fp"); !errors.Is(err, snapshot.ErrCorrupt) {
		t.Errorf("truncated checkpoint: err = %v, want ErrCorrupt", err)
	}
}

// TestObsRunsNotCheckpointable: instrumented runs must refuse to
// checkpoint rather than silently truncating their metric series.
func TestObsRunsNotCheckpointable(t *testing.T) {
	ks := testWorkload(t, "cfft2d", "gmtry", "tomcatv", "vpenta")
	cfg := forkConfig(core.Blocked, 4, false)
	cfg.Obs.SampleEvery = 1024
	if _, err := CheckpointWarmupCtx(context.Background(), ks, cfg, "fp"); !errors.Is(err, ErrNotCheckpointable) {
		t.Errorf("CheckpointWarmupCtx on observed run: err = %v, want ErrNotCheckpointable", err)
	}
}
