package workstation

// Tests of the OS scheduling machinery: affinity grouping, interference
// effects, and the fairness metric itself.

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/osmodel"
	"repro/internal/prog"
)

// spinKernel is a trivial compute kernel used to isolate scheduler
// behaviour from application behaviour.
func spinKernel(name string) apps.Kernel {
	return apps.Kernel{Name: name, Build: func(o apps.Options) *prog.Program {
		b := prog.NewBuilder(name, o.CodeBase, o.DataBase, 1<<16)
		b.Label("forever")
		for i := 0; i < 16; i++ {
			b.Addi(2, 2, 1)
		}
		b.J("forever")
		return b.MustBuild()
	}}
}

func TestAffinityGivesEqualShares(t *testing.T) {
	// Four identical compute kernels on one context: the affinity
	// scheduler must give each the same number of slices, so retirement
	// is (nearly) equal.
	ks := []apps.Kernel{spinKernel("a"), spinKernel("b"), spinKernel("c"), spinKernel("d")}
	cfg := DefaultConfig(core.Single, 1)
	cfg.OS.SliceCycles = 5_000
	cfg.MeasureRotations = 2
	res, err := Run(ks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	min, max := res.Apps[0].Retired, res.Apps[0].Retired
	for _, a := range res.Apps {
		if a.Retired < min {
			min = a.Retired
		}
		if a.Retired > max {
			max = a.Retired
		}
	}
	if min == 0 || float64(max-min)/float64(max) > 0.05 {
		t.Errorf("unequal shares: min %d, max %d", min, max)
	}
}

func TestFairMetricEqualsRawForIdenticalApps(t *testing.T) {
	// With identical apps there is no runlength bias, so the fair metric
	// must be close to the raw aggregate IPC.
	ks := []apps.Kernel{spinKernel("a"), spinKernel("b")}
	cfg := DefaultConfig(core.Interleaved, 2)
	cfg.OS.SliceCycles = 5_000
	res, err := Run(ks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var retired int64
	for _, a := range res.Apps {
		retired += a.Retired
	}
	rawIPC := float64(retired) / float64(res.Stats.Cycles)
	if diff := res.FairThroughput - rawIPC; diff > 0.05 || diff < -0.05 {
		t.Errorf("fair %.3f vs raw %.3f diverge for identical apps", res.FairThroughput, rawIPC)
	}
}

func TestInterferenceCostsThroughput(t *testing.T) {
	// The same workload with a much more aggressive scheduler (tiny
	// slices -> frequent interference) must lose throughput.
	k, err := apps.Lookup("mxm")
	if err != nil {
		t.Fatal(err)
	}
	ks := []apps.Kernel{k, k, k, k}
	calm := DefaultConfig(core.Single, 1)
	calm.OS.SliceCycles = 20_000
	calmRes, err := Run(ks, calm)
	if err != nil {
		t.Fatal(err)
	}
	frantic := DefaultConfig(core.Single, 1)
	frantic.OS.SliceCycles = 1_000 // 20x the scheduler invocations
	franticRes, err := Run(ks, frantic)
	if err != nil {
		t.Fatal(err)
	}
	if franticRes.FairThroughput >= calmRes.FairThroughput {
		t.Errorf("frantic scheduling (%.3f) should cost throughput vs calm (%.3f)",
			franticRes.FairThroughput, calmRes.FairThroughput)
	}
}

func TestGainHelper(t *testing.T) {
	a := &Result{FairThroughput: 0.6}
	b := &Result{FairThroughput: 0.3}
	if g := a.Gain(b); g != 2.0 {
		t.Errorf("gain = %v", g)
	}
	if g := a.Gain(nil); g != 0 {
		t.Errorf("gain vs nil = %v", g)
	}
	if g := a.Gain(&Result{}); g != 0 {
		t.Errorf("gain vs zero = %v", g)
	}
}

func TestOSParamsPlumbed(t *testing.T) {
	// A custom affinity multiplier changes the group period; just verify
	// the run accepts and uses non-default OS params without error.
	ks := []apps.Kernel{spinKernel("a"), spinKernel("b")}
	cfg := DefaultConfig(core.Blocked, 2)
	cfg.OS = osmodel.Params{SliceCycles: 2_000, AffinitySlices: 1}
	if _, err := Run(ks, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMoreContextsThanApps(t *testing.T) {
	// Two applications on a four-context processor: two contexts stay
	// unbound and their slots are charged to idle, not to a crash.
	ks := []apps.Kernel{spinKernel("a"), spinKernel("b")}
	cfg := DefaultConfig(core.Interleaved, 4)
	cfg.OS.SliceCycles = 4_000
	res, err := Run(ks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FairThroughput <= 0 {
		t.Error("no progress with spare contexts")
	}
}

func TestSingleApplication(t *testing.T) {
	ks := []apps.Kernel{spinKernel("solo")}
	cfg := DefaultConfig(core.Single, 1)
	cfg.OS.SliceCycles = 4_000
	res, err := Run(ks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Apps[0].Retired == 0 {
		t.Error("solo app made no progress")
	}
}
