// Package workstation simulates the paper's uniprocessor environment
// (§4-5.1): one multiple-context processor with the Table 1/2 cache
// hierarchy, running a multiprogrammed workload of four applications under
// the time-slicing, affinity-scheduling OS model. It produces the
// utilization breakdowns of Figures 6-7 and the throughput numbers of
// Table 7.
package workstation

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/apps"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/guard"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/osmodel"
	"repro/internal/prog"
)

// Config parameterizes one workstation run.
type Config struct {
	Scheme   core.Scheme
	Contexts int

	OS    osmodel.Params
	Cache cache.Params
	// Core, if non-zero, overrides the derived core configuration.
	Core *core.Config
	// YieldOverride, if non-nil, overrides the latency-tolerance
	// compilation mode derived from the scheme (used by ablations, e.g.
	// running the interleaved pipeline on code without backoffs).
	YieldOverride *prog.YieldMode

	// WarmupRotations and MeasureRotations are in full scheduler
	// rotations (every application runs AffinitySlices slices per
	// rotation). The paper warms one slice per application and measures
	// 36 slices; the defaults here are 1 and 1 (12 slices with four
	// applications), scaled with the slice length.
	WarmupRotations  int
	MeasureRotations int

	// AppScale is passed to kernels as their work multiplier.
	AppScale int

	Seed int64

	// Guard is the hardening configuration. The workstation's watchdog
	// default is off — a run is a fixed number of slices, so it cannot
	// hang — but an explicit window catches workloads that stop retiring
	// useful work (all applications wedged on sync or trap loops).
	Guard guard.Options

	// Obs configures the observability layer (counter sampling and the
	// structured event trace); the zero value disables it entirely.
	Obs metrics.Options
}

// DefaultConfig returns the paper's workstation with the given scheme and
// context count.
func DefaultConfig(s core.Scheme, contexts int) Config {
	return Config{
		Scheme:           s,
		Contexts:         contexts,
		OS:               osmodel.DefaultParams(),
		Cache:            cache.DefaultParams(),
		WarmupRotations:  1,
		MeasureRotations: 1,
		Seed:             1,
	}
}

// YieldModeFor maps a scheme to the latency-tolerance instruction its
// compilation uses.
func YieldModeFor(s core.Scheme) prog.YieldMode {
	switch s {
	case core.Blocked, core.BlockedFast:
		return prog.YieldSwitch
	case core.Interleaved:
		return prog.YieldBackoff
	default:
		return prog.YieldNone
	}
}

// AppResult reports one application's progress over the measured window.
type AppResult struct {
	Name    string
	Retired int64
	Devoted int64 // processor cycles attributed to the application
}

// Result is the outcome of a workstation run.
type Result struct {
	Stats core.Stats
	Apps  []AppResult
	// Throughput is the raw processor busy fraction over the measured
	// window — the quantity atop the bars of Figures 6 and 7.
	Throughput float64
	// FairThroughput is the fairness-normalized aggregate instruction
	// rate. The paper observes that both schemes skew processor cycles
	// toward applications with longer runlengths and therefore assumes
	// OS feedback scheduling that "evens out the amount of processor
	// cycles devoted to each application", normalizing "to the case
	// where each application out of n is given 1/n of the processor"
	// (§5.1). With every cycle attributed to the application that used
	// or caused it (core.Thread.Devoted), giving each application C/n
	// cycles yields
	//
	//	(1/n) · Σᵢ retiredᵢ/devotedᵢ
	//
	// instructions per cycle, which is what Table 7's throughput ratios
	// are computed from.
	FairThroughput float64
	// Metrics is the observability record, nil unless Config.Obs enables
	// instrumentation.
	Metrics *metrics.CellMetrics
}

// Gain returns this run's fairness-normalized throughput relative to a
// baseline run (Table 7's metric).
func (r *Result) Gain(base *Result) float64 {
	if base == nil || base.FairThroughput <= 0 {
		return 0
	}
	return r.FairThroughput / base.FairThroughput
}

// Run simulates the kernels as a multiprogrammed workload under cfg.
func Run(kernels []apps.Kernel, cfg Config) (*Result, error) {
	return RunCtx(context.Background(), kernels, cfg)
}

// RunCtx is Run with cooperative cancellation: when ctx can be canceled
// the slice driver additionally polls ctx.Done() every
// core.CancelCheckEvery (64) cycles, so a first-error cancel or a
// SIGINT/SIGTERM drain stops the simulation within one block instead of
// after the remaining slices. The canceled run returns a
// guard.OpCanceled SimError wrapping ctx.Err(); a background/detached
// context (Done() == nil) takes exactly the pre-cancellation code path,
// keeping the fast-forward goldens byte-identical.
func RunCtx(ctx context.Context, kernels []apps.Kernel, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(kernels) == 0 {
		return nil, fmt.Errorf("workstation: empty workload")
	}
	if cfg.Contexts < 1 {
		return nil, fmt.Errorf("workstation: need at least one context")
	}
	ccfg := core.DefaultConfig(cfg.Scheme, cfg.Contexts)
	if cfg.Core != nil {
		ccfg = *cfg.Core
	}

	if cfg.Cache.Chaos == nil {
		cfg.Cache.Chaos = cfg.Guard.NewChaos()
	}
	fm := mem.New()
	h, err := cache.NewHierarchy(cfg.Cache)
	if err != nil {
		return nil, err
	}
	proc, err := core.NewProcessor(ccfg, h, fm)
	if err != nil {
		return nil, err
	}

	// Observability: on a single processor every counter is proc-scope.
	// The watchdog and chaos counters mutate only at guard-chunk and slice
	// boundaries, which fall at identical cycles whether the core steps or
	// fast-forwards, so sampling them from the processor's timeline is
	// mode-independent.
	col := metrics.NewCollector(cfg.Obs, 1)
	var wdArms, wdTrips int64
	if pm := col.Proc(0); pm != nil {
		proc.AttachMetrics(pm)
		h.AttachMetrics(pm)
		pm.Reg.Register("watchdog/arms", &wdArms)
		pm.Reg.Register("watchdog/trips", &wdTrips)
		if ch := cfg.Cache.Chaos; ch != nil {
			pm.Reg.Register("chaos/draws", &ch.Draws)
		}
	}

	// Build one process per kernel, each in its own code and data region
	// (regions collide in the caches — that is the point).
	yield := YieldModeFor(cfg.Scheme)
	if cfg.YieldOverride != nil {
		yield = *cfg.YieldOverride
	}
	threads := make([]*core.Thread, len(kernels))
	for i, k := range kernels {
		// Bases are staggered within the 64 KB cache-index range so the
		// processes do not all alias to the same direct-mapped sets (as
		// real loaders stagger them); they still conflict where their
		// footprints overlap.
		p := k.Build(apps.Options{
			CodeBase:     0x0100_0000*uint32(i+1) + 0x4800*uint32(i),
			DataBase:     0x4000_0000 + 0x0200_0000*uint32(i) + 0x3800*uint32(i),
			Yield:        yield,
			AutoTolerate: yield != prog.YieldNone,
			Scale:        cfg.AppScale,
		})
		p.LoadInit(fm)
		threads[i] = core.NewThread(fmt.Sprintf("%s.%d", k.Name, i), p)
	}

	// Scheduling groups of |contexts| applications.
	var groups [][]*core.Thread
	for i := 0; i < len(threads); i += cfg.Contexts {
		end := i + cfg.Contexts
		if end > len(threads) {
			end = len(threads)
		}
		groups = append(groups, threads[i:end])
	}
	groupPeriod := cfg.OS.AffinitySlices * cfg.Contexts // slices per group
	rotation := len(groups) * groupPeriod               // slices per full rotation

	rng := rand.New(rand.NewSource(cfg.Seed))
	bind := func(g []*core.Thread) {
		for c := 0; c < cfg.Contexts; c++ {
			if c < len(g) {
				proc.BindThread(c, g[c])
			} else {
				proc.BindThread(c, nil)
			}
		}
	}

	// Cancellation: advance() is proc.Run with a ctx poll between
	// 64-cycle blocks. With a detached context (done == nil — what Run
	// passes) it is a single proc.Run call, the exact pre-cancellation
	// path; chunked runs are cycle-exact (pinned by the fast-forward
	// goldens), so an attached-but-never-canceled context changes nothing
	// but the call pattern.
	done := ctx.Done()
	canceled := func() error {
		if pm := col.Proc(0); pm != nil && pm.Sink != nil {
			pm.Sink.Emit(metrics.Event{Cycle: proc.Now(), Kind: metrics.KindDrain, Ctx: -1})
		}
		return guard.NewSimError(guard.OpCanceled, ctx.Err()).At(proc.Now())
	}
	advance := func(n int64) error {
		if done == nil {
			proc.Run(n)
			return nil
		}
		for n > 0 {
			b := int64(core.CancelCheckEvery)
			if b > n {
				b = n
			}
			proc.Run(b)
			n -= b
			select {
			case <-done:
				return canceled()
			default:
			}
		}
		return nil
	}

	// Hardening: stepping a slice in guard-cadence chunks is timing-
	// identical to one Run call (Run(n) is n Step calls), so polling the
	// watchdog and invariant checkers between chunks never perturbs
	// results.
	wd := guard.NewWatchdog(cfg.Guard.ResolveWatchdog(0))
	checks := cfg.Guard.InvariantsOn()
	cadence := cfg.Guard.CheckCadence()
	runSlice := func() error {
		if wd == nil && !checks {
			return advance(int64(cfg.OS.SliceCycles))
		}
		for remaining := int64(cfg.OS.SliceCycles); remaining > 0; {
			chunk := cadence
			if chunk > remaining {
				chunk = remaining
			}
			if err := advance(chunk); err != nil {
				return err
			}
			remaining -= chunk
			if wd != nil {
				wdArms++
			}
			if wd.Observe(proc.Now(), proc.UsefulProgress()) {
				wdTrips++
				d := &guard.Diagnostic{
					Reason: fmt.Sprintf("watchdog: no useful instruction retired in %d cycles", wd.Stalled(proc.Now())),
					Cycle:  proc.Now(),
					Scheme: cfg.Scheme.String(),
					Window: wd.Window(),
					Procs:  []guard.ProcState{proc.Snapshot()},
				}
				return guard.NewSimError(guard.OpWatchdog,
					fmt.Errorf("workload wedged: no useful instruction retired in %d cycles", wd.Stalled(proc.Now()))).
					At(proc.Now()).WithDiag(d)
			}
			if checks {
				if err := proc.CheckInvariants(); err != nil {
					return err
				}
				if err := h.CheckInvariants(); err != nil {
					return err
				}
			}
		}
		return nil
	}

	measureStart := make([]int64, len(threads))
	devotedStart := make([]int64, len(threads))
	totalSlices := (cfg.WarmupRotations + cfg.MeasureRotations) * rotation
	warmupSlices := cfg.WarmupRotations * rotation
	for slice := 0; slice < totalSlices; slice++ {
		// Scheduler invocation at every slice boundary; process switches
		// only at group boundaries (affinity).
		switched := 0
		if slice%groupPeriod == 0 {
			g := groups[(slice/groupPeriod)%len(groups)]
			if len(groups) > 1 || slice == 0 {
				bind(g)
				if len(groups) > 1 {
					switched = cfg.Contexts
				}
			}
		}
		inter := osmodel.InterferenceFor(switched)
		h.DrainFills(proc.Now())
		h.SchedulerInterference(inter.ILines, inter.DLines, inter.TLBEntries, rng)

		if slice == warmupSlices {
			proc.Stats = core.Stats{}
			for i, th := range threads {
				measureStart[i] = th.Retired
				devotedStart[i] = th.Devoted
			}
		}
		if err := runSlice(); err != nil {
			return nil, err
		}
	}

	res := &Result{Stats: proc.Stats}
	res.Throughput = proc.Stats.BusyFraction()
	// Devoted counts issue slots; convert per-slot efficiency back to
	// instructions per cycle for superscalar configurations.
	width := 1.0
	if ccfg.IssueWidth > 1 {
		width = float64(ccfg.IssueWidth)
	}
	var effSum float64
	for i, th := range threads {
		retired := th.Retired - measureStart[i]
		devoted := th.Devoted - devotedStart[i]
		res.Apps = append(res.Apps, AppResult{Name: th.Name, Retired: retired, Devoted: devoted})
		if devoted > 0 {
			effSum += float64(retired) / float64(devoted) * width
		}
	}
	res.FairThroughput = effSum / float64(len(threads))
	res.Metrics = col.Result()
	return res, nil
}
