// Package workstation simulates the paper's uniprocessor environment
// (§4-5.1): one multiple-context processor with the Table 1/2 cache
// hierarchy, running a multiprogrammed workload of four applications under
// the time-slicing, affinity-scheduling OS model. It produces the
// utilization breakdowns of Figures 6-7 and the throughput numbers of
// Table 7.
package workstation

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/apps"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/guard"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/osmodel"
	"repro/internal/prog"
)

// MeasureOverrides replace individual machine parameters at the instant
// measurement starts (the warm-up/measure boundary). Sensitivity sweeps
// that vary a parameter with no effect on what warm-up should look like
// set it here instead of in the base configuration: every cell of the
// sweep then shares an identical warm-up prefix, which the checkpointing
// planner simulates once and forks per cell. The override is applied at
// the same loop position in from-scratch and forked runs, so the two are
// byte-identical by construction.
type MeasureOverrides struct {
	// BlockedFlushCost, if positive, replaces the blocked scheme's
	// context-switch flush cost when measurement starts (the switch-cost
	// sensitivity sweep).
	BlockedFlushCost int
	// MSHRs, if positive, replaces the hierarchy's outstanding-miss
	// register count when measurement starts (the MSHR sweep).
	MSHRs int
}

// Config parameterizes one workstation run.
type Config struct {
	Scheme   core.Scheme
	Contexts int

	OS    osmodel.Params
	Cache cache.Params
	// Core, if non-zero, overrides the derived core configuration.
	Core *core.Config
	// YieldOverride, if non-nil, overrides the latency-tolerance
	// compilation mode derived from the scheme (used by ablations, e.g.
	// running the interleaved pipeline on code without backoffs).
	YieldOverride *prog.YieldMode

	// WarmupRotations and MeasureRotations are in full scheduler
	// rotations (every application runs AffinitySlices slices per
	// rotation). The paper warms one slice per application and measures
	// 36 slices; the defaults here are 1 and 1 (12 slices with four
	// applications), scaled with the slice length.
	WarmupRotations  int
	MeasureRotations int

	// Measure holds parameter overrides applied when measurement starts;
	// the zero value applies none. See MeasureOverrides.
	Measure MeasureOverrides

	// AppScale is passed to kernels as their work multiplier.
	AppScale int

	Seed int64

	// Guard is the hardening configuration. The workstation's watchdog
	// default is off — a run is a fixed number of slices, so it cannot
	// hang — but an explicit window catches workloads that stop retiring
	// useful work (all applications wedged on sync or trap loops).
	Guard guard.Options

	// Obs configures the observability layer (counter sampling and the
	// structured event trace); the zero value disables it entirely.
	Obs metrics.Options
}

// DefaultConfig returns the paper's workstation with the given scheme and
// context count.
func DefaultConfig(s core.Scheme, contexts int) Config {
	return Config{
		Scheme:           s,
		Contexts:         contexts,
		OS:               osmodel.DefaultParams(),
		Cache:            cache.DefaultParams(),
		WarmupRotations:  1,
		MeasureRotations: 1,
		Seed:             1,
	}
}

// YieldModeFor maps a scheme to the latency-tolerance instruction its
// compilation uses.
func YieldModeFor(s core.Scheme) prog.YieldMode {
	switch s {
	case core.Blocked, core.BlockedFast:
		return prog.YieldSwitch
	case core.Interleaved:
		return prog.YieldBackoff
	default:
		return prog.YieldNone
	}
}

// AppResult reports one application's progress over the measured window.
type AppResult struct {
	Name    string
	Retired int64
	Devoted int64 // processor cycles attributed to the application
}

// Result is the outcome of a workstation run.
type Result struct {
	Stats core.Stats
	Apps  []AppResult
	// Throughput is the raw processor busy fraction over the measured
	// window — the quantity atop the bars of Figures 6 and 7.
	Throughput float64
	// FairThroughput is the fairness-normalized aggregate instruction
	// rate. The paper observes that both schemes skew processor cycles
	// toward applications with longer runlengths and therefore assumes
	// OS feedback scheduling that "evens out the amount of processor
	// cycles devoted to each application", normalizing "to the case
	// where each application out of n is given 1/n of the processor"
	// (§5.1). With every cycle attributed to the application that used
	// or caused it (core.Thread.Devoted), giving each application C/n
	// cycles yields
	//
	//	(1/n) · Σᵢ retiredᵢ/devotedᵢ
	//
	// instructions per cycle, which is what Table 7's throughput ratios
	// are computed from.
	FairThroughput float64
	// Metrics is the observability record, nil unless Config.Obs enables
	// instrumentation.
	Metrics *metrics.CellMetrics
}

// Gain returns this run's fairness-normalized throughput relative to a
// baseline run (Table 7's metric).
func (r *Result) Gain(base *Result) float64 {
	if base == nil || base.FairThroughput <= 0 {
		return 0
	}
	return r.FairThroughput / base.FairThroughput
}

// Run simulates the kernels as a multiprogrammed workload under cfg.
func Run(kernels []apps.Kernel, cfg Config) (*Result, error) {
	return RunCtx(context.Background(), kernels, cfg)
}

// RunCtx is Run with cooperative cancellation: when ctx can be canceled
// the slice driver additionally polls ctx.Done() every
// engine.BlockCycles (64) cycles, so a first-error cancel or a
// SIGINT/SIGTERM drain stops the simulation within one block instead of
// after the remaining slices. The canceled run returns a
// guard.OpCanceled SimError wrapping ctx.Err(); a background/detached
// context (Done() == nil) takes exactly the pre-cancellation code path,
// keeping the fast-forward goldens byte-identical.
func RunCtx(ctx context.Context, kernels []apps.Kernel, cfg Config) (*Result, error) {
	r, err := newRunner(kernels, cfg)
	if err != nil {
		return nil, err
	}
	if err := r.runSlices(ctx, 0, r.totalSlices); err != nil {
		return nil, err
	}
	return r.result(), nil
}

// runner is one fully constructed workstation machine plus the slice
// driver's bookkeeping. RunCtx drives it from slice 0 to the end; the
// checkpoint entry points (snapshot.go) drive the same loop in two
// halves, pausing at a slice boundary to serialize or restore, so a
// forked run replays the measure phase through the identical code path.
type runner struct {
	cfg  Config
	ccfg core.Config

	fm   *mem.Memory
	h    *cache.Hierarchy
	proc *core.Processor

	col          *metrics.Collector
	eng          *engine.Engine
	threads      []*core.Thread
	groups       [][]*core.Thread
	groupPeriod  int // slices per group
	rotation     int // slices per full rotation
	totalSlices  int
	warmupSlices int
	rng          *rand.Rand
	rngSrc       *countingSource
	measureStart []int64
	devotedStart []int64
}

func newRunner(kernels []apps.Kernel, cfg Config) (*runner, error) {
	if len(kernels) == 0 {
		return nil, fmt.Errorf("workstation: empty workload")
	}
	if cfg.Contexts < 1 {
		return nil, fmt.Errorf("workstation: need at least one context")
	}
	ccfg := core.DefaultConfig(cfg.Scheme, cfg.Contexts)
	if cfg.Core != nil {
		ccfg = *cfg.Core
	}

	if cfg.Cache.Chaos == nil {
		cfg.Cache.Chaos = cfg.Guard.NewChaos()
	}
	fm := mem.New()
	h, err := cache.NewHierarchy(cfg.Cache)
	if err != nil {
		return nil, err
	}
	proc, err := core.NewProcessor(ccfg, h, fm)
	if err != nil {
		return nil, err
	}

	r := &runner{cfg: cfg, ccfg: ccfg, fm: fm, h: h, proc: proc}

	// The block-stepping engine drives every slice: proc.Run over the
	// coalesced span (a single call per slice when detached and
	// unguarded), the watchdog and invariant checkers at guard-cadence
	// boundaries, the cancellation poll every engine.BlockCycles. The
	// workstation machine cannot halt — a run is a fixed number of
	// slices — so Halted stays nil, and guard cadences restart at each
	// slice boundary via GuardAtEnd, which keeps slice boundaries valid
	// snapshot points.
	r.eng = &engine.Engine{
		Advance: func(now, target int64) int64 {
			proc.Run(target - now)
			return target
		},
		Watchdog:   guard.NewWatchdog(cfg.Guard.ResolveWatchdog(0)),
		Progress:   proc.UsefulProgress,
		GuardEvery: cfg.Guard.CheckCadence(),
		GuardAtEnd: true,
		Describe: func(d *guard.Diagnostic) {
			d.Scheme = cfg.Scheme.String()
			d.Procs = []guard.ProcState{proc.Snapshot()}
			d.MachineHash = proc.MachineHash()
		},
		OnCancel: func(now int64) {
			if pm := r.col.Proc(0); pm != nil && pm.Sink != nil {
				pm.Sink.Emit(metrics.Event{Cycle: now, Kind: metrics.KindDrain, Ctx: -1})
			}
		},
	}
	if cfg.Guard.InvariantsOn() {
		r.eng.Checkers = []guard.InvariantChecker{proc, h}
	}

	// Observability: on a single processor every counter is proc-scope.
	// The watchdog and chaos counters mutate only at guard-chunk and slice
	// boundaries, which fall at identical cycles whether the core steps or
	// fast-forwards, so sampling them from the processor's timeline is
	// mode-independent.
	r.col = metrics.NewCollector(cfg.Obs, 1)
	if pm := r.col.Proc(0); pm != nil {
		proc.AttachMetrics(pm)
		h.AttachMetrics(pm)
		pm.Reg.Register("watchdog/arms", &r.eng.Arms)
		pm.Reg.Register("watchdog/trips", &r.eng.Trips)
		if ch := cfg.Cache.Chaos; ch != nil {
			pm.Reg.Register("chaos/draws", &ch.Draws)
		}
	}

	// Build one process per kernel, each in its own code and data region
	// (regions collide in the caches — that is the point).
	yield := YieldModeFor(cfg.Scheme)
	if cfg.YieldOverride != nil {
		yield = *cfg.YieldOverride
	}
	r.threads = make([]*core.Thread, len(kernels))
	for i, k := range kernels {
		// Bases are staggered within the 64 KB cache-index range so the
		// processes do not all alias to the same direct-mapped sets (as
		// real loaders stagger them); they still conflict where their
		// footprints overlap.
		p := k.Build(apps.Options{
			CodeBase:     0x0100_0000*uint32(i+1) + 0x4800*uint32(i),
			DataBase:     0x4000_0000 + 0x0200_0000*uint32(i) + 0x3800*uint32(i),
			Yield:        yield,
			AutoTolerate: yield != prog.YieldNone,
			Scale:        cfg.AppScale,
		})
		p.LoadInit(fm)
		r.threads[i] = core.NewThread(fmt.Sprintf("%s.%d", k.Name, i), p)
	}

	// Scheduling groups of |contexts| applications.
	for i := 0; i < len(r.threads); i += cfg.Contexts {
		end := i + cfg.Contexts
		if end > len(r.threads) {
			end = len(r.threads)
		}
		r.groups = append(r.groups, r.threads[i:end])
	}
	r.groupPeriod = cfg.OS.AffinitySlices * cfg.Contexts
	r.rotation = len(r.groups) * r.groupPeriod
	r.totalSlices = (cfg.WarmupRotations + cfg.MeasureRotations) * r.rotation
	r.warmupSlices = cfg.WarmupRotations * r.rotation

	// The scheduler-interference stream draws through a counting source
	// so a checkpoint records the stream position; the wrapper forwards
	// the raw Int63 values untouched and the stream is unchanged.
	r.rngSrc = &countingSource{src: rand.NewSource(cfg.Seed).(rand.Source64)}
	r.rng = rand.New(r.rngSrc)

	r.measureStart = make([]int64, len(r.threads))
	r.devotedStart = make([]int64, len(r.threads))
	return r, nil
}

// bind places a scheduling group onto the processor's context slots.
func (r *runner) bind(g []*core.Thread) {
	for c := 0; c < r.cfg.Contexts; c++ {
		if c < len(g) {
			r.proc.BindThread(c, g[c])
		} else {
			r.proc.BindThread(c, nil)
		}
	}
}

// runSlices drives slices [from, to). Slice indices are absolute, so a
// resumed run entering at the checkpoint slice executes the exact
// scheduler binds, interference draws, and measure-boundary actions the
// uninterrupted run would.
func (r *runner) runSlices(ctx context.Context, from, to int) error {
	cfg := r.cfg
	proc, h := r.proc, r.h

	// Each slice is one engine span: proc.Run over coalesced chunks (a
	// single call when detached and unguarded — the exact
	// pre-cancellation path), the watchdog and invariant checkers at
	// guard-cadence boundaries, a ctx poll every engine.BlockCycles.
	// Chunked runs are cycle-exact (Run(n) is n Step calls, pinned by
	// the fast-forward goldens), so neither hardening nor an
	// attached-but-never-canceled context perturbs results.
	runSlice := func() error {
		start := proc.Now()
		_, err := r.eng.Run(ctx, start, start+int64(cfg.OS.SliceCycles))
		return err
	}

	for slice := from; slice < to; slice++ {
		// Scheduler invocation at every slice boundary; process switches
		// only at group boundaries (affinity).
		switched := 0
		if slice%r.groupPeriod == 0 {
			g := r.groups[(slice/r.groupPeriod)%len(r.groups)]
			if len(r.groups) > 1 || slice == 0 {
				r.bind(g)
				if len(r.groups) > 1 {
					switched = cfg.Contexts
				}
			}
		}
		inter := osmodel.InterferenceFor(switched)
		h.DrainFills(proc.Now())
		h.SchedulerInterference(inter.ILines, inter.DLines, inter.TLBEntries, r.rng)

		if slice == r.warmupSlices {
			// Measurement starts here: apply the measure-phase parameter
			// overrides, then zero the issue-slot accounting. Forked runs
			// enter the loop at exactly this slice, so scratch and forked
			// cells apply the overrides at the same instant.
			if v := cfg.Measure.BlockedFlushCost; v > 0 {
				proc.Cfg.BlockedFlushCost = v
			}
			if v := cfg.Measure.MSHRs; v > 0 {
				h.P.MSHRs = v
			}
			proc.Stats = core.Stats{}
			for i, th := range r.threads {
				r.measureStart[i] = th.Retired
				r.devotedStart[i] = th.Devoted
			}
		}
		if err := runSlice(); err != nil {
			return err
		}
	}
	return nil
}

// result assembles the Result after the final slice.
func (r *runner) result() *Result {
	res := &Result{Stats: r.proc.Stats}
	res.Throughput = r.proc.Stats.BusyFraction()
	// Devoted counts issue slots; convert per-slot efficiency back to
	// instructions per cycle for superscalar configurations.
	width := 1.0
	if r.ccfg.IssueWidth > 1 {
		width = float64(r.ccfg.IssueWidth)
	}
	var effSum float64
	for i, th := range r.threads {
		retired := th.Retired - r.measureStart[i]
		devoted := th.Devoted - r.devotedStart[i]
		res.Apps = append(res.Apps, AppResult{Name: th.Name, Retired: retired, Devoted: devoted})
		if devoted > 0 {
			effSum += float64(retired) / float64(devoted) * width
		}
	}
	res.FairThroughput = effSum / float64(len(r.threads))
	res.Metrics = r.col.Result()
	return res
}
