package workstation

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// The workstation runner goes through Processor.Run in slice-sized
// chunks, with scheduler interference and fill-draining at slice
// boundaries — exactly the environment in which a fast-forward skip must
// stop at a slice boundary and leave the hierarchy in the same state as
// cycle-by-cycle stepping. Full-result identity pins that.
func TestFastForwardEquivalenceWorkstation(t *testing.T) {
	ks := testWorkload(t, "cfft2d", "gmtry", "tomcatv", "vpenta") // DC workload

	for _, tc := range []struct {
		scheme core.Scheme
		ctx    int
	}{
		{core.Single, 1},
		{core.Blocked, 2},
		{core.Interleaved, 4},
	} {
		label := fmt.Sprintf("%v/%dctx", tc.scheme, tc.ctx)
		cfg := quickConfig(tc.scheme, tc.ctx)
		ff, err := Run(ks, cfg)
		if err != nil {
			t.Fatalf("%s fast-forward: %v", label, err)
		}
		ccfg := core.DefaultConfig(tc.scheme, tc.ctx)
		ccfg.NoFastForward = true
		offCfg := cfg
		offCfg.Core = &ccfg
		off, err := Run(ks, offCfg)
		if err != nil {
			t.Fatalf("%s stepped: %v", label, err)
		}
		if ff.Stats != off.Stats {
			t.Errorf("%s: stats diverge\n fast-forwarded: %+v\n stepped:        %+v",
				label, ff.Stats, off.Stats)
		}
		if ff.FairThroughput != off.FairThroughput {
			t.Errorf("%s: fair throughput %v fast-forwarded, %v stepped",
				label, ff.FairThroughput, off.FairThroughput)
		}
		if ff.Throughput != off.Throughput {
			t.Errorf("%s: throughput %v fast-forwarded, %v stepped",
				label, ff.Throughput, off.Throughput)
		}
	}
}
