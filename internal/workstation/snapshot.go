package workstation

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/apps"
	"repro/internal/snapshot"

	"context"
)

// This file checkpoints a workstation run at a slice boundary and
// resumes it in a fresh process or a forked sweep cell. Slice boundaries
// are the workstation's snapshot points: every intra-slice cadence
// (64-cycle cancellation blocks, guard chunks) restarts at each slice,
// so a run restored at a boundary replays the exact block structure of
// an uninterrupted run. The serialized state is the machine (memory,
// hierarchy, processor, threads) plus the driver's own bookkeeping: the
// scheduler-interference PRNG position, watchdog progress, context
// bindings, and the measure-window baselines.

// Kind names the workstation snapshot shape in the codec container.
const Kind = "workstation"

// sectionRun tags the driver-level block ("WSR1").
const sectionRun = 0x57535231

// ErrNotCheckpointable marks a configuration whose runs cannot be
// checkpointed: instrumented (Obs-enabled) runs carry sampling cursors
// and event traces that a fork would silently truncate, so callers must
// fall back to from-scratch simulation.
var ErrNotCheckpointable = errors.New("workstation: instrumented run cannot be checkpointed")

// countingSource wraps a rand.Source64 and counts raw draws, forwarding
// values untouched. A checkpoint records the draw count; restore
// repositions a fresh same-seeded source by discarding that many draws.
type countingSource struct {
	src   rand.Source64
	draws int64
}

func (c *countingSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.draws++
	return c.src.Uint64()
}

func (c *countingSource) Seed(seed int64) { c.src.Seed(seed) }

// CheckpointWarmupCtx simulates the warm-up prefix (every slice before
// the measure boundary) and returns the machine serialized in the codec
// container, tagged with the caller's prefix fingerprint. The sweep
// planner calls this once per cell group and forks every cell of the
// group from the returned bytes via ResumeCtx.
func CheckpointWarmupCtx(ctx context.Context, kernels []apps.Kernel, cfg Config, fingerprint string) ([]byte, error) {
	r, err := newRunner(kernels, cfg)
	if err != nil {
		return nil, err
	}
	return r.checkpointAt(ctx, r.warmupSlices, fingerprint)
}

// CheckpointAtCtx simulates slices [0, atSlice) and returns the
// serialized machine. It generalizes CheckpointWarmupCtx to arbitrary
// slice boundaries for the snapshot property tests.
func CheckpointAtCtx(ctx context.Context, kernels []apps.Kernel, cfg Config, atSlice int, fingerprint string) ([]byte, error) {
	r, err := newRunner(kernels, cfg)
	if err != nil {
		return nil, err
	}
	if atSlice < 0 || atSlice > r.totalSlices {
		return nil, fmt.Errorf("workstation: checkpoint slice %d outside run of %d slices", atSlice, r.totalSlices)
	}
	return r.checkpointAt(ctx, atSlice, fingerprint)
}

func (r *runner) checkpointAt(ctx context.Context, atSlice int, fingerprint string) ([]byte, error) {
	if r.col.Proc(0) != nil {
		return nil, ErrNotCheckpointable
	}
	if err := r.runSlices(ctx, 0, atSlice); err != nil {
		return nil, err
	}
	w := snapshot.NewWriter()
	r.saveState(w, atSlice)
	return snapshot.Encode(Kind, fingerprint, w.Bytes()), nil
}

// ResumeCtx restores a checkpoint produced by CheckpointWarmupCtx /
// CheckpointAtCtx into a freshly built machine for cfg and runs the
// remaining slices, returning the same Result the uninterrupted run
// would. cfg must describe the same machine shape the checkpoint was
// taken under — same scheme, contexts, slice geometry, workload — which
// the caller asserts by passing the fingerprint the checkpoint was
// written with (Decode rejects others with snapshot.ErrMismatch) and the
// decoder double-checks structurally. Only MeasureOverrides may differ
// between the checkpointing and resuming configurations: they apply at
// the measure boundary, inside the resumed half of the loop.
func ResumeCtx(ctx context.Context, kernels []apps.Kernel, cfg Config, data []byte, fingerprint string) (*Result, error) {
	r, err := newRunner(kernels, cfg)
	if err != nil {
		return nil, err
	}
	if r.col.Proc(0) != nil {
		return nil, ErrNotCheckpointable
	}
	rd, err := snapshot.Decode(data, Kind, fingerprint)
	if err != nil {
		return nil, err
	}
	atSlice, err := r.restoreState(rd)
	if err != nil {
		return nil, err
	}
	if err := r.runSlices(ctx, atSlice, r.totalSlices); err != nil {
		return nil, err
	}
	return r.result(), nil
}

// saveState serializes the full run state as of the top of slice
// atSlice (before that slice's scheduler invocation).
func (r *runner) saveState(w *snapshot.Writer, atSlice int) {
	w.Section(sectionRun)
	w.Int(atSlice)
	// Shape checks: the resuming runner must have identical slice
	// geometry or every absolute slice index computation diverges.
	w.U8(uint8(r.cfg.Scheme))
	w.Int(r.cfg.Contexts)
	w.I64(r.cfg.OS.SliceCycles)
	w.Int(r.groupPeriod)
	w.Int(r.rotation)
	w.Int(r.warmupSlices)
	w.Int(len(r.threads))

	w.I64(r.rngSrc.draws)

	w.Bool(r.eng.Watchdog != nil)
	if r.eng.Watchdog != nil {
		w.I64(r.eng.Watchdog.Window())
		lastCount, lastProgress, primed := r.eng.Watchdog.ProgressState()
		w.I64(lastCount)
		w.I64(lastProgress)
		w.Bool(primed)
	}

	for i := range r.threads {
		w.I64(r.measureStart[i])
		w.I64(r.devotedStart[i])
	}
	for _, th := range r.threads {
		th.SaveState(w)
	}
	// Context bindings as thread indices (-1 = empty slot). The binding
	// is state, not config: with one scheduling group the loop binds only
	// at slice 0, so a resumed run cannot rebuild it from the slice index.
	for c := 0; c < r.cfg.Contexts; c++ {
		idx := -1
		if th := r.proc.ThreadAt(c); th != nil {
			for i, cand := range r.threads {
				if cand == th {
					idx = i
					break
				}
			}
		}
		w.Int(idx)
	}
	r.proc.SaveState(w)
	r.h.SaveState(w)
	r.fm.SaveState(w)
}

// restoreState rebuilds the run state from a payload Reader and returns
// the slice index to resume at. Order matters: threads restore first,
// then bindings (BindThread resets per-context availability), then the
// processor (which overwrites exactly those fields).
func (r *runner) restoreState(rd *snapshot.Reader) (int, error) {
	rd.Section(sectionRun)
	atSlice := rd.Int()
	rd.Expect("scheme", int64(rd.U8()), int64(r.cfg.Scheme))
	rd.Expect("contexts", int64(rd.Int()), int64(r.cfg.Contexts))
	rd.Expect("slice cycles", rd.I64(), r.cfg.OS.SliceCycles)
	rd.Expect("group period", int64(rd.Int()), int64(r.groupPeriod))
	rd.Expect("rotation", int64(rd.Int()), int64(r.rotation))
	rd.Expect("warm-up slices", int64(rd.Int()), int64(r.warmupSlices))
	rd.Expect("thread count", int64(rd.Int()), int64(len(r.threads)))

	draws := rd.I64()
	if rd.Err() == nil {
		rd.Expect("rng draws already taken", r.rngSrc.draws, 0)
		for i := int64(0); i < draws && rd.Err() == nil; i++ {
			r.rngSrc.src.Int63()
		}
		r.rngSrc.draws = draws
	}

	hadWD := rd.Bool()
	if rd.Err() == nil {
		var inSnap, inMachine int64
		if hadWD {
			inSnap = 1
		}
		if r.eng.Watchdog != nil {
			inMachine = 1
		}
		rd.Expect("watchdog presence", inSnap, inMachine)
	}
	if hadWD && r.eng.Watchdog != nil {
		rd.Expect("watchdog window", rd.I64(), r.eng.Watchdog.Window())
		lastCount := rd.I64()
		lastProgress := rd.I64()
		primed := rd.Bool()
		if rd.Err() == nil {
			r.eng.Watchdog.SetProgressState(lastCount, lastProgress, primed)
		}
	}

	for i := range r.threads {
		r.measureStart[i] = rd.I64()
		r.devotedStart[i] = rd.I64()
	}
	for _, th := range r.threads {
		th.RestoreState(rd)
	}
	for c := 0; c < r.cfg.Contexts; c++ {
		idx := rd.Int()
		if rd.Err() != nil {
			break
		}
		if idx < -1 || idx >= len(r.threads) {
			rd.Expect("bound thread index", int64(idx), -1)
			break
		}
		if idx >= 0 {
			r.proc.BindThread(c, r.threads[idx])
		} else {
			r.proc.BindThread(c, nil)
		}
	}
	r.proc.RestoreState(rd)
	r.h.RestoreState(rd)
	r.fm.RestoreState(rd)

	if err := snapshot.Finish(rd); err != nil {
		return 0, err
	}
	if atSlice < 0 || atSlice > r.totalSlices {
		return 0, fmt.Errorf("%w: checkpoint slice %d outside run of %d slices",
			snapshot.ErrMismatch, atSlice, r.totalSlices)
	}
	return atSlice, nil
}
