package workstation

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
)

// Golden property of workstation observability: a fast-forwarded run and a
// cycle-by-cycle run produce byte-identical series and event traces, even
// across slice boundaries (scheduler interference, stat reset at the end
// of warmup) and with chaos perturbation on.
func TestMetricsGoldenFastForwardWorkstation(t *testing.T) {
	ks := testWorkload(t, "cfft2d", "gmtry", "tomcatv", "vpenta")

	for _, tc := range []struct {
		scheme core.Scheme
		ctx    int
		chaos  int64
	}{
		{core.Blocked, 2, 0},
		{core.Interleaved, 4, 0},
		{core.Interleaved, 4, 31},
	} {
		label := fmt.Sprintf("%v/%dctx/chaos=%d", tc.scheme, tc.ctx, tc.chaos)
		cfg := quickConfig(tc.scheme, tc.ctx)
		cfg.Guard.ChaosSeed = tc.chaos
		cfg.Obs = metrics.Options{SampleEvery: 777, Events: true}

		ff, err := Run(ks, cfg)
		if err != nil {
			t.Fatalf("%s fast-forward: %v", label, err)
		}
		ccfg := core.DefaultConfig(tc.scheme, tc.ctx)
		ccfg.NoFastForward = true
		offCfg := cfg
		offCfg.Core = &ccfg
		off, err := Run(ks, offCfg)
		if err != nil {
			t.Fatalf("%s stepped: %v", label, err)
		}
		if ff.Stats != off.Stats {
			t.Errorf("%s: stats diverge", label)
		}
		if ff.Metrics == nil || off.Metrics == nil {
			t.Fatalf("%s: missing metrics", label)
		}
		ffBlob, err := json.Marshal(ff.Metrics)
		if err != nil {
			t.Fatal(err)
		}
		offBlob, err := json.Marshal(off.Metrics)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ffBlob, offBlob) {
			t.Errorf("%s: metrics diverge between fast-forwarded and stepped runs\n ff:  %.400s\n off: %.400s",
				label, ffBlob, offBlob)
		}
		if len(ff.Metrics.Procs) != 1 || len(ff.Metrics.Procs[0].Samples) == 0 || len(ff.Metrics.Events) == 0 {
			t.Errorf("%s: empty metrics", label)
		}
	}
}

// The mid-run stats reset at the warmup/measure boundary overwrites the
// Stats struct in place; the registered pointers must keep reading the
// live fields, so a post-reset sample shows counters that restarted.
func TestMetricsSurviveWarmupReset(t *testing.T) {
	ks := testWorkload(t, "cfft2d", "gmtry", "tomcatv", "vpenta")
	cfg := quickConfig(core.Interleaved, 4)
	cfg.Obs = metrics.Options{SampleEvery: 777}
	res, err := Run(ks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Metrics.Procs[0]
	idx := -1
	for i, n := range s.Names {
		if n == "cycles" {
			idx = i
		}
	}
	if idx < 0 {
		t.Fatal("no cycles counter")
	}
	drops := 0
	var prev int64
	for _, sm := range s.Samples {
		if sm.Values[idx] < prev {
			drops++
		}
		prev = sm.Values[idx]
	}
	if drops != 1 {
		t.Errorf("cycles counter dropped %d times across samples, want exactly 1 (the warmup reset)", drops)
	}
}
