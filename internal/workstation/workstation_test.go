package workstation

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
)

func testWorkload(t *testing.T, names ...string) []apps.Kernel {
	t.Helper()
	var ks []apps.Kernel
	for _, n := range names {
		k, err := apps.Lookup(n)
		if err != nil {
			t.Fatal(err)
		}
		ks = append(ks, k)
	}
	return ks
}

func quickConfig(s core.Scheme, n int) Config {
	cfg := DefaultConfig(s, n)
	cfg.OS.SliceCycles = 10_000
	return cfg
}

func TestRunProducesBreakdown(t *testing.T) {
	ks := testWorkload(t, "cfft2d", "gmtry", "tomcatv", "vpenta") // DC workload
	res, err := Run(ks, quickConfig(core.Single, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 || res.Throughput >= 1 {
		t.Errorf("throughput = %v, want in (0,1)", res.Throughput)
	}
	var total int64
	for _, s := range res.Stats.Slots {
		total += s
	}
	if total != res.Stats.Cycles {
		t.Errorf("slot conservation violated: %d != %d", total, res.Stats.Cycles)
	}
	if len(res.Apps) != 4 {
		t.Fatalf("apps = %d", len(res.Apps))
	}
	for _, a := range res.Apps {
		if a.Retired <= 0 {
			t.Errorf("app %s made no progress", a.Name)
		}
	}
}

// The paper's headline workstation result: on a memory-bound workload the
// interleaved scheme gains clearly with four contexts, while the blocked
// scheme gains little (Table 7: DC +65% vs +23%).
func TestInterleavedBeatsBlockedOnDC(t *testing.T) {
	ks := testWorkload(t, "cfft2d", "gmtry", "tomcatv", "vpenta")

	single, err := Run(ks, quickConfig(core.Single, 1))
	if err != nil {
		t.Fatal(err)
	}
	inter, err := Run(ks, quickConfig(core.Interleaved, 4))
	if err != nil {
		t.Fatal(err)
	}
	blocked, err := Run(ks, quickConfig(core.Blocked, 4))
	if err != nil {
		t.Fatal(err)
	}

	iGain := inter.Throughput / single.Throughput
	bGain := blocked.Throughput / single.Throughput
	t.Logf("DC gains: interleaved %.3f, blocked %.3f (single busy %.3f)",
		iGain, bGain, single.Throughput)
	if iGain <= bGain {
		t.Errorf("interleaved gain %.3f must exceed blocked gain %.3f", iGain, bGain)
	}
	if iGain < 1.1 {
		t.Errorf("interleaved gain %.3f too small for a memory-bound workload", iGain)
	}
}

func TestSchemeDeterminism(t *testing.T) {
	ks := testWorkload(t, "emit", "btrix", "cfft2d", "eqntott") // R0
	r1, err := Run(ks, quickConfig(core.Interleaved, 2))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(ks, quickConfig(core.Interleaved, 2))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats != r2.Stats {
		t.Error("workstation run not deterministic")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, quickConfig(core.Single, 1)); err == nil {
		t.Error("empty workload accepted")
	}
	ks := testWorkload(t, "emit")
	bad := quickConfig(core.Single, 1)
	bad.Contexts = 0
	if _, err := Run(ks, bad); err == nil {
		t.Error("zero contexts accepted")
	}
}

func TestYieldModeFor(t *testing.T) {
	if YieldModeFor(core.Blocked).String() != "switch" ||
		YieldModeFor(core.Interleaved).String() != "backoff" ||
		YieldModeFor(core.Single).String() != "none" {
		t.Error("yield mapping wrong")
	}
}
