package workstation

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/guard"
)

// A canceled context drains the slice driver promptly and surfaces as a
// typed guard.canceled SimError.
func TestRunCtxCanceledStopsPromptly(t *testing.T) {
	ks := testWorkload(t, "cfft2d", "gmtry")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunCtx(ctx, ks, quickConfig(core.Interleaved, 2))
	if res != nil || err == nil {
		t.Fatalf("canceled run returned res=%v err=%v", res, err)
	}
	se := guard.AsSimError(err)
	if se == nil || se.Op != guard.OpCanceled {
		t.Fatalf("want a %s SimError, got %v", guard.OpCanceled, err)
	}
	if !guard.IsCancellation(err) || !errors.Is(err, context.Canceled) {
		t.Errorf("cancellation error not recognized by errors.Is: %v", err)
	}
	// The drain lands within one cancel-check block of the start.
	if se.Cycle > engine.BlockCycles {
		t.Errorf("canceled at cycle %d, want <= %d", se.Cycle, engine.BlockCycles)
	}
}

// An attached but never-canceled context must not perturb the
// simulation: the full Result — stats, per-app progress, throughput —
// is identical to the detached Run path.
func TestRunCtxMatchesRun(t *testing.T) {
	ks := testWorkload(t, "cfft2d", "gmtry", "tomcatv", "vpenta")
	ref, err := Run(ks, quickConfig(core.Interleaved, 2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got, err := RunCtx(ctx, ks, quickConfig(core.Interleaved, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Errorf("cancelable path changed results:\n%+v\nvs\n%+v", ref, got)
	}
}
