package coherence

import (
	"sort"

	"repro/internal/snapshot"
)

// This file serializes the multiprocessor memory system for
// checkpoint/restore, and provides the directory/timing Hash built on
// the same canonical encoding. Restore targets a fabric freshly built
// from the same Params and node count; the latency PRNG resumes by
// replaying its recorded raw-draw count from the same seed, and the
// chaos stream (when enabled) restores its position directly.

// Section tags for the coherence layer.
const (
	sectionFabric = 0x46414231 // "FAB1"
	sectionNode   = 0x4e4f4431 // "NOD1"
)

func (n *Node) saveState(w *snapshot.Writer) {
	w.Section(sectionNode)
	w.Int(n.id)
	n.cache.SaveState(w)
	// pending is serialized in request order — the slice order carries
	// protocol meaning (fill service and expiry scan it in order).
	w.U32(uint32(len(n.pending)))
	for _, pf := range n.pending {
		w.U32(pf.line)
		w.Bool(pf.exclusive)
		w.I64(pf.fill)
	}
	w.I64(n.Stats.Accesses)
	for _, v := range n.Stats.ByClass {
		w.I64(v)
	}
	w.I64(n.Stats.Invalidations)
	w.I64(n.Stats.Upgrades)
	w.I64(n.Stats.Deferred)
}

func (n *Node) restoreState(r *snapshot.Reader) {
	r.Section(sectionNode)
	r.Expect("node id", int64(r.Int()), int64(n.id))
	n.cache.RestoreState(r)
	cnt := r.U32()
	n.pending = n.pending[:0]
	for i := uint32(0); i < cnt && r.Err() == nil; i++ {
		n.pending = append(n.pending, pendingFill{
			line:      r.U32(),
			exclusive: r.Bool(),
			fill:      r.I64(),
		})
	}
	n.Stats.Accesses = r.I64()
	for i := range n.Stats.ByClass {
		n.Stats.ByClass[i] = r.I64()
	}
	n.Stats.Invalidations = r.I64()
	n.Stats.Upgrades = r.I64()
	n.Stats.Deferred = r.I64()
}

// SaveState serializes the fabric: every node (cache, miss registers,
// stats), the directory radix pages in ascending page order, the
// latency PRNG's draw count, and the chaos stream position. The
// page-lookup memos are derived state and are not serialized.
func (f *Fabric) SaveState(w *snapshot.Writer) {
	w.Section(sectionFabric)
	w.Int(len(f.nodes))
	w.Int(f.P.LineSize)
	w.Int(f.P.CacheSize)
	w.I64(f.P.Seed)

	for _, n := range f.nodes {
		n.saveState(w)
	}

	pageNos := make([]uint32, 0, len(f.dir))
	for no := range f.dir {
		pageNos = append(pageNos, no)
	}
	sort.Slice(pageNos, func(i, j int) bool { return pageNos[i] < pageNos[j] })
	w.U32(uint32(len(pageNos)))
	for _, no := range pageNos {
		w.U32(no)
		pg := f.dir[no]
		for i := range pg {
			w.U32(uint32(int32(pg[i].owner)))
			w.U64(pg[i].sharers)
		}
	}

	w.I64(f.rngSrc.draws)

	w.Bool(f.P.Chaos != nil)
	if f.P.Chaos != nil {
		w.I64(f.P.Chaos.Seed())
		w.I64(f.P.Chaos.Skew())
		state, draws := f.P.Chaos.SnapshotState()
		w.U64(state)
		w.I64(draws)
	}
}

// RestoreState overwrites the fabric's state from a snapshot. The
// fabric must have been built with the same Params and node count; the
// PRNG is repositioned by discarding the recorded number of raw draws
// from its fresh same-seeded source.
func (f *Fabric) RestoreState(r *snapshot.Reader) {
	r.Section(sectionFabric)
	r.Expect("node count", int64(r.Int()), int64(len(f.nodes)))
	r.Expect("line size", int64(r.Int()), int64(f.P.LineSize))
	r.Expect("cache size", int64(r.Int()), int64(f.P.CacheSize))
	r.Expect("latency seed", r.I64(), f.P.Seed)

	for _, n := range f.nodes {
		n.restoreState(r)
	}

	f.dir = make(map[uint32]*dirPage)
	f.lastPage = nil
	f.pageCache = [64]struct {
		no uint32
		pg *dirPage
	}{}
	cnt := r.U32()
	for i := uint32(0); i < cnt && r.Err() == nil; i++ {
		no := r.U32()
		pg := new(dirPage)
		for j := range pg {
			pg[j].owner = int(int32(r.U32()))
			pg[j].sharers = r.U64()
		}
		if r.Err() == nil {
			f.dir[no] = pg
		}
	}

	draws := r.I64()
	if r.Err() == nil && draws >= 0 {
		// Reposition the PRNG: a fresh fabric's source has drawn nothing,
		// so discard exactly the snapshot's draw count. (A reused fabric
		// that already drew more cannot rewind — shape-check it.)
		r.Expect("rng draws already taken", f.rngSrc.draws, 0)
		for i := int64(0); i < draws && r.Err() == nil; i++ {
			f.rngSrc.src.Int63()
		}
		f.rngSrc.draws = draws
	}

	hadChaos := r.Bool()
	if r.Err() == nil {
		inSnap, inMachine := int64(0), int64(0)
		if hadChaos {
			inSnap = 1
		}
		if f.P.Chaos != nil {
			inMachine = 1
		}
		r.Expect("chaos presence", inSnap, inMachine)
	}
	if hadChaos && f.P.Chaos != nil {
		r.Expect("chaos seed", r.I64(), f.P.Chaos.Seed())
		r.Expect("chaos skew", r.I64(), f.P.Chaos.Skew())
		state := r.U64()
		cdraws := r.I64()
		if r.Err() == nil {
			f.P.Chaos.RestoreSnapshotState(state, cdraws)
		}
	}
}

// Hash returns a deterministic digest of the fabric's complete state —
// directory pages, node caches, miss registers, PRNG position, stats.
// It is the serialized snapshot's StateHash, so two fabrics hash equal
// exactly when their checkpoints would be byte-identical.
func (f *Fabric) Hash() uint64 {
	w := snapshot.NewWriter()
	f.SaveState(w)
	return snapshot.StateHash(w.Bytes())
}
