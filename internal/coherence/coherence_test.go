package coherence

import (
	"testing"

	"repro/internal/memsys"
)

func newFab(t *testing.T, nodes int) *Fabric {
	t.Helper()
	f, err := NewFabric(DefaultParams(), nodes)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// settle replays an access until it hits, as the core does.
func settle(n *Node, addr uint32, write bool, now int64) int64 {
	for i := 0; i < 64; i++ {
		r := n.AccessData(addr, write, 0, now)
		if r.Hit {
			return now + 1
		}
		if r.FillAt > now {
			now = r.FillAt
		} else {
			now++
		}
	}
	panic("settle: access never hit")
}

func TestMissClassification(t *testing.T) {
	f := newFab(t, 4)
	p := f.P

	// Line 0 is homed at node 0: local for node 0, remote for node 1.
	addr := uint32(0)
	r := f.Node(0).AccessData(addr, false, 0, 0)
	if r.Hit || r.Class != memsys.LocalMem {
		t.Fatalf("node0 cold access = %+v, want local miss", r)
	}
	if d := r.FillAt; d < int64(p.LocalLow) || d > int64(p.LocalHigh) {
		t.Errorf("local latency %d outside [%d,%d]", d, p.LocalLow, p.LocalHigh)
	}

	// Same line from node 1: remote memory (node 0 only has it shared).
	r = f.Node(1).AccessData(addr, false, 0, 0)
	if r.Class != memsys.RemoteMem {
		t.Fatalf("node1 class = %v, want remote", r.Class)
	}
	if d := r.FillAt; d < int64(p.RemoteLow) || d > int64(p.RemoteHigh) {
		t.Errorf("remote latency %d outside [%d,%d]", d, p.RemoteLow, p.RemoteHigh)
	}
}

func TestDirtyRemoteClass(t *testing.T) {
	f := newFab(t, 4)
	now := settle(f.Node(2), 0x100, true, 0) // node 2 owns dirty
	r := f.Node(1).AccessData(0x100, false, 0, now)
	if r.Class != memsys.RemoteCache {
		t.Fatalf("read of remotely-dirty line class = %v, want remote-cache", r.Class)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	f := newFab(t, 4)
	now := int64(0)
	// All four nodes read line 0x200.
	for i := 0; i < 4; i++ {
		now = settle(f.Node(i), 0x200, false, now)
	}
	for i := 0; i < 4; i++ {
		if !f.Node(i).cache.Present(0x200) {
			t.Fatalf("node %d lost its shared copy", i)
		}
	}
	// Node 3 writes: everyone else must be invalidated.
	now = settle(f.Node(3), 0x200, true, now)
	for i := 0; i < 3; i++ {
		if f.Node(i).cache.Present(0x200) {
			t.Errorf("node %d still has a copy after invalidation", i)
		}
		if f.Node(i).Stats.Invalidations == 0 {
			t.Errorf("node %d did not record its invalidation", i)
		}
	}
	if msg := f.DirectoryInvariants(); msg != "" {
		t.Error(msg)
	}
}

func TestWriteAfterSharedIsUpgrade(t *testing.T) {
	f := newFab(t, 2)
	n := f.Node(0)
	now := settle(n, 0x300, false, 0) // shared copy
	r := n.AccessData(0x300, true, 0, now)
	if r.Hit {
		t.Fatal("upgrade must not be a free hit")
	}
	if n.Stats.Upgrades != 1 {
		t.Errorf("upgrades = %d, want 1", n.Stats.Upgrades)
	}
	now = settle(n, 0x300, true, now)
	if !n.cache.Dirty(0x300) {
		t.Error("line not dirty after upgrade completes")
	}
}

func TestOwnershipPingPong(t *testing.T) {
	// Two nodes alternately writing one line: every round trips through
	// the remote-cache path and both must always make progress.
	f := newFab(t, 2)
	now := int64(0)
	for round := 0; round < 10; round++ {
		now = settle(f.Node(round%2), 0x400, true, now)
		if msg := f.DirectoryInvariants(); msg != "" {
			t.Fatalf("round %d: %s", round, msg)
		}
	}
	a := f.Node(0).Stats.ByClass[memsys.RemoteCache] + f.Node(1).Stats.ByClass[memsys.RemoteCache]
	if a < 8 {
		t.Errorf("remote-cache transfers = %d, want >= 8", a)
	}
}

func TestInFlightInvalidation(t *testing.T) {
	// Node 0 has a read miss in flight when node 1 writes the line: the
	// stale fill must not be installed; node 0's replay re-requests.
	f := newFab(t, 2)
	r0 := f.Node(0).AccessData(0x500, false, 0, 0)
	if r0.Hit {
		t.Fatal("expected miss")
	}
	settle(f.Node(1), 0x500, true, 1)
	// Node 0 replays at its (now cancelled) fill time.
	r := f.Node(0).AccessData(0x500, false, 0, r0.FillAt)
	if r.Hit {
		t.Fatal("stale in-flight fill served after invalidation")
	}
	if r.Class != memsys.RemoteCache {
		t.Errorf("re-request class = %v, want remote-cache", r.Class)
	}
}

func TestEvictionUpdatesDirectory(t *testing.T) {
	f := newFab(t, 2)
	n := f.Node(0)
	now := settle(n, 0x600, true, 0)
	// Fill a conflicting line (same set: cache size apart).
	conflict := uint32(0x600) + uint32(f.P.CacheSize)
	now = settle(n, conflict, false, now)
	if n.cache.Present(0x600) {
		t.Fatal("victim still resident")
	}
	// The directory must no longer consider node 0 the owner: node 1's
	// read should be a plain memory access, not a cache transfer.
	r := f.Node(1).AccessData(0x600, false, 0, now)
	if r.Class == memsys.RemoteCache {
		t.Error("directory still records evicted owner")
	}
	if msg := f.DirectoryInvariants(); msg != "" {
		t.Error(msg)
	}
}

func TestFabricValidation(t *testing.T) {
	if _, err := NewFabric(DefaultParams(), 0); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := NewFabric(DefaultParams(), 65); err == nil {
		t.Error("65 nodes accepted (sharer bitmask is 64-wide)")
	}
	bad := DefaultParams()
	bad.LocalLow = 50
	bad.LocalHigh = 10
	if _, err := NewFabric(bad, 2); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestIdealInstCache(t *testing.T) {
	f := newFab(t, 2)
	ready, miss := f.Node(0).FetchInst(0x123400, 77)
	if miss || ready != 77 {
		t.Error("MP instruction cache must be ideal")
	}
}
