// Package coherence implements the multiprocessor memory system of paper
// §5.2: per-node single-level lockup-free data caches kept coherent by a
// distributed, directory-based write-invalidate protocol in the style of
// Stanford DASH, with an ideal instruction cache and a contentionless
// interconnect whose latencies are drawn from the uniform distributions of
// Table 8.
//
// The protocol is simulated at atomic-transaction granularity: directory
// state changes (invalidations, ownership transfer) apply at request time;
// only the data transfer latency is modeled, which is the fidelity the
// paper's evaluation uses (cache contention dominates; network and memory
// are contentionless).
package coherence

import (
	"fmt"
	"math"
	"math/rand"
	"slices"

	"repro/internal/cache"
	"repro/internal/guard"
	"repro/internal/memsys"
	"repro/internal/metrics"
)

// Params configures the fabric. The paper's Table 8 ranges are garbled in
// the source text; the defaults are DASH-era reconstructions documented in
// DESIGN.md §3.
type Params struct {
	LineSize      int
	CacheSize     int
	LoadUseCycles int

	LocalLow, LocalHigh   int // reply from local memory
	RemoteLow, RemoteHigh int // reply from remote memory
	DirtyLow, DirtyHigh   int // reply from remote cache (dirty)

	Seed int64

	// Chaos, when non-nil, perturbs every reply latency by a seeded
	// deterministic jitter (guard fault-injection mode). Timing-only:
	// architectural results must not change.
	Chaos *guard.Chaos
}

// DefaultParams returns the paper's multiprocessor node configuration.
func DefaultParams() Params {
	return Params{
		LineSize:      32,
		CacheSize:     64 << 10,
		LoadUseCycles: 3,
		LocalLow:      20, LocalHigh: 40,
		RemoteLow: 70, RemoteHigh: 110,
		DirtyLow: 90, DirtyHigh: 130,
		Seed: 1,
	}
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	switch {
	case p.LineSize <= 0 || p.LineSize&(p.LineSize-1) != 0:
		return fmt.Errorf("coherence: bad line size %d", p.LineSize)
	case p.CacheSize%p.LineSize != 0:
		return fmt.Errorf("coherence: cache size not a line multiple")
	case p.LocalLow > p.LocalHigh || p.RemoteLow > p.RemoteHigh || p.DirtyLow > p.DirtyHigh:
		return fmt.Errorf("coherence: inverted latency range")
	}
	return nil
}

// dirEntry is the directory state of one line: at most one dirty owner, or
// any number of sharers.
type dirEntry struct {
	owner   int    // exclusive dirty owner, -1 if none
	sharers uint64 // bitmask of nodes with (possibly in-flight) shared copies
}

// The directory is a two-level radix: a map of fixed-size pages, each
// covering a contiguous run of lines, fronted by a last-page memo and a
// small direct-mapped page cache (the same layout internal/mem uses for
// data pages). Every data access consults the directory several times
// (rights check, transition, victim bookkeeping); streaming workloads made
// the per-line map lookups the hottest fabric operation, and replays land
// on the just-missed line, so the memo absorbs most of them.
const (
	dirPageShift = 11 // 2048 lines per page
	dirPageLines = 1 << dirPageShift
	dirPageMask  = dirPageLines - 1
)

type dirPage [dirPageLines]dirEntry

type pendingFill struct {
	line      uint32
	exclusive bool
	fill      int64
}

// fillHoldCycles mirrors internal/cache: a completed fill is held for its
// faulting access so replays are guaranteed to hit (forward progress), and
// installed unilaterally if abandoned.
const fillHoldCycles = 256

// Stats counts per-node access outcomes.
type Stats struct {
	Accesses      int64
	ByClass       [memsys.NumMissClasses]int64
	Invalidations int64 // invalidations this node received
	Upgrades      int64 // write hits on shared lines needing ownership
	Deferred      int64 // requests NAKed while an exclusive was in flight
}

// Node is one processor's view of the fabric; it implements memsys.System.
type Node struct {
	fab   *Fabric
	id    int
	cache *cache.Cache
	// pending holds this node's in-flight fills (its miss registers), in
	// request order. It is a slice, not a map: it has at most a handful of
	// entries, every access scans it (fill service, merge, and each miss
	// probes every other node's set for transaction serialization), and a
	// linear scan of a tiny slice beats map hashing while giving
	// deterministic iteration for free.
	pending []pendingFill
	Stats   Stats
	obsSink *metrics.Sink
}

// AttachMetrics registers the counters this node mutates through its own
// execution with m's registry and installs its event sink. Stats.
// Invalidations is deliberately absent: other nodes increment it, so at a
// sample point its value depends on how far those nodes have advanced —
// which fast-forwarding reorders within a block. Cross-node counters
// belong in a cell-scope registry sampled where all processors settle
// (internal/mp does this at guard-check boundaries).
func (n *Node) AttachMetrics(m *metrics.ProcMetrics) {
	if m == nil {
		return
	}
	n.obsSink = m.Sink
	reg := m.Reg
	reg.Register("coh/accesses", &n.Stats.Accesses)
	for c := 0; c < memsys.NumMissClasses; c++ {
		reg.Register("coh/"+memsys.MissClass(c).String(), &n.Stats.ByClass[c])
	}
	reg.Register("coh/upgrades", &n.Stats.Upgrades)
	reg.Register("coh/deferred", &n.Stats.Deferred)
}

// countingSource wraps the latency PRNG's source and counts raw draws,
// which is what makes the stream checkpointable: math/rand exposes no
// internal state, but replaying the recorded number of raw draws from a
// fresh same-seeded source lands the stream at the identical position.
// The wrapped source produces exactly the values the bare source would,
// so existing golden results are unchanged.
type countingSource struct {
	src   rand.Source64
	draws int64
}

func (s *countingSource) Int63() int64 { s.draws++; return s.src.Int63() }

func (s *countingSource) Uint64() uint64 { s.draws++; return s.src.Uint64() }

func (s *countingSource) Seed(seed int64) { s.src.Seed(seed); s.draws = 0 }

// Fabric is the shared directory and interconnect for all nodes.
type Fabric struct {
	P      Params
	nodes  []*Node
	dir    map[uint32]*dirPage
	rng    *rand.Rand
	rngSrc *countingSource

	lastPageNo uint32
	lastPage   *dirPage
	pageCache  [64]struct {
		no uint32
		pg *dirPage
	}
}

// NewFabric builds a fabric with n nodes.
func NewFabric(p Params, n int) (*Fabric, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if n < 1 || n > 64 {
		return nil, fmt.Errorf("coherence: node count %d out of range [1,64]", n)
	}
	src := &countingSource{src: rand.NewSource(p.Seed).(rand.Source64)}
	f := &Fabric{
		P:      p,
		dir:    make(map[uint32]*dirPage),
		rng:    rand.New(src),
		rngSrc: src,
	}
	for i := 0; i < n; i++ {
		f.nodes = append(f.nodes, &Node{
			fab:   f,
			id:    i,
			cache: cache.NewCache(p.CacheSize, p.LineSize),
		})
	}
	return f, nil
}

// MustNewFabric is NewFabric that panics on error.
func MustNewFabric(p Params, n int) *Fabric {
	f, err := NewFabric(p, n)
	if err != nil {
		panic(fmt.Errorf("coherence: MustNewFabric(%d nodes): %w", n, err))
	}
	return f
}

// Nodes returns the number of nodes.
func (f *Fabric) Nodes() int { return len(f.nodes) }

// Node returns node i's memory system.
func (f *Fabric) Node(i int) *Node { return f.nodes[i] }

// home gives the line's home node: lines are interleaved round-robin, the
// uniform distribution of shared data across node memories.
func (f *Fabric) home(line uint32) int { return int(line) % len(f.nodes) }

// page returns the directory page covering line, or nil if no line in it
// has ever been touched. The last-page memo catches miss/replay pairs and
// loop-local accesses; the direct-mapped cache catches alternation between
// a few hot regions; the map is the slow path.
func (f *Fabric) page(line uint32) *dirPage {
	no := line >> dirPageShift
	if f.lastPage != nil && f.lastPageNo == no {
		return f.lastPage
	}
	slot := &f.pageCache[no&uint32(len(f.pageCache)-1)]
	pg := slot.pg
	if pg == nil || slot.no != no {
		pg = f.dir[no]
		if pg == nil {
			return nil
		}
		slot.no, slot.pg = no, pg
	}
	f.lastPageNo, f.lastPage = no, pg
	return pg
}

// entry returns line's directory entry, allocating its page on first touch
// (fresh entries have no owner and no sharers).
func (f *Fabric) entry(line uint32) *dirEntry {
	pg := f.page(line)
	if pg == nil {
		pg = new(dirPage)
		for i := range pg {
			pg[i].owner = -1
		}
		no := line >> dirPageShift
		f.dir[no] = pg
		f.lastPageNo, f.lastPage = no, pg
	}
	return &pg[line&dirPageMask]
}

// peekEntry returns line's directory entry without allocating, or nil if
// the line's page has never been touched (equivalent to an entry with no
// owner and no sharers).
func (f *Fabric) peekEntry(line uint32) *dirEntry {
	pg := f.page(line)
	if pg == nil {
		return nil
	}
	return &pg[line&dirPageMask]
}

func (f *Fabric) uniform(lo, hi int) int64 {
	if hi <= lo {
		return int64(lo)
	}
	return int64(lo + f.rng.Intn(hi-lo+1))
}

// latency returns the reply latency for the given class.
func (f *Fabric) latency(c memsys.MissClass) int64 {
	switch c {
	case memsys.LocalMem:
		return f.P.Chaos.Perturb(f.uniform(f.P.LocalLow, f.P.LocalHigh))
	case memsys.RemoteMem:
		return f.P.Chaos.Perturb(f.uniform(f.P.RemoteLow, f.P.RemoteHigh))
	case memsys.RemoteCache:
		return f.P.Chaos.Perturb(f.uniform(f.P.DirtyLow, f.P.DirtyHigh))
	}
	return 1
}

// lineAddr converts a line number back to a byte address.
func (f *Fabric) lineAddr(line uint32) uint32 {
	ls := uint32(f.P.LineSize)
	return line * ls
}

// evicted is called by a node when installing a line displaced victim.
func (f *Fabric) evicted(n int, victimLine uint32) {
	e := f.peekEntry(victimLine)
	if e == nil {
		return
	}
	if e.owner == n {
		e.owner = -1 // writeback to home (contentionless: occupancy-free)
	}
	e.sharers &^= 1 << uint(n)
}

// FetchInst implements memsys.InstMemory: the multiprocessor study models
// the instruction cache as ideal (§5.2).
func (n *Node) FetchInst(addr uint32, now int64) (int64, bool) { return now, false }

// InstFetchIsIdeal implements memsys.IdealInstFetch: FetchInst above is
// pure, so the core may fast-forward interlock stalls across it.
func (n *Node) InstFetchIsIdeal() bool { return true }

// findPending returns the index of line in n.pending, or -1.
func (n *Node) findPending(line uint32) int {
	for i := range n.pending {
		if n.pending[i].line == line {
			return i
		}
	}
	return -1
}

// removePending deletes entry i, preserving request order.
func (n *Node) removePending(i int) {
	n.pending = append(n.pending[:i], n.pending[i+1:]...)
}

// AccessData implements memsys.DataMemory with MSI directory coherence.
func (n *Node) AccessData(addr uint32, write bool, pc uint32, now int64) memsys.DataResult {
	n.Stats.Accesses++
	f := n.fab
	line := addr / uint32(f.P.LineSize)

	// Expire abandoned fills, in ascending line order: installs evict
	// conflicting victims, so the processing order must not depend on
	// request arrival order.
	if len(n.pending) > 0 {
		var expired []uint32
		for i := range n.pending {
			if n.pending[i].fill+fillHoldCycles <= now {
				expired = append(expired, n.pending[i].line)
			}
		}
		if len(expired) > 0 {
			slices.Sort(expired)
			for _, l := range expired {
				i := n.findPending(l)
				n.install(l, n.pending[i].exclusive)
				n.removePending(i)
			}
		}
	}

	// Completed fill for this line: serve the replay from the miss
	// register and install.
	if i := n.findPending(line); i >= 0 && n.pending[i].fill <= now {
		exclusive := n.pending[i].exclusive
		if n.obsSink != nil {
			n.obsSink.Emit(metrics.Event{
				Cycle: now, Kind: metrics.KindMissFill, Ctx: -1,
				Addr: n.fab.lineAddr(line), Arg: n.pending[i].fill,
			})
		}
		n.removePending(i)
		// The request may have been invalidated while in flight (another
		// node wrote the line): if so, the replay must re-request.
		if n.hasRight(line, write) {
			n.install(line, exclusive)
		}
	}

	if n.cache.Present(addr) {
		if write {
			if e := f.entry(line); e.owner != n.id {
				// Upgrade: shared -> modified. Ownership transfers at
				// request time; the invalidation-acknowledgement latency
				// makes the context wait like a miss.
				n.Stats.Upgrades++
				return n.miss(line, addr, write, pc, now)
			}
			n.cache.MarkDirty(addr)
		}
		n.Stats.ByClass[memsys.HitL1]++
		return memsys.DataResult{Hit: true, ReadyAt: now + int64(f.P.LoadUseCycles), Class: memsys.HitL1}
	}

	if i := n.findPending(line); i >= 0 {
		// Still in flight: merge.
		return memsys.DataResult{FillAt: n.pending[i].fill, Class: memsys.MSHRFull}
	}

	return n.miss(line, addr, write, pc, now)
}

// hasRight reports whether node n's copy of line is good for the access:
// reads need the line not to be dirty elsewhere; writes need ownership.
func (n *Node) hasRight(line uint32, write bool) bool {
	e := n.fab.peekEntry(line)
	if e == nil {
		return !write
	}
	if write {
		return e.owner == n.id
	}
	return e.owner == n.id || e.owner == -1
}

// miss performs a directory transaction and returns the miss result.
func (n *Node) miss(line, addr uint32, write bool, pc uint32, now int64) memsys.DataResult {
	f := n.fab

	// Transaction serialization: while another node has an exclusive
	// request in flight for this line, the directory defers new requests
	// (DASH NAKs and retries them). Without this, a contended lock's
	// release could be stolen before its replay ever completes.
	for i, other := range f.nodes {
		if i == n.id {
			continue
		}
		if j := other.findPending(line); j >= 0 && other.pending[j].exclusive {
			pf := other.pending[j]
			// Retry well after the transaction should complete, with a
			// per-node stagger: aggressive retries turn contended lines
			// into a flush storm on blocked processors.
			n.Stats.Deferred++
			retry := pf.fill + int64(32+5*n.id)
			if min := now + int64(32+5*n.id); retry < min {
				retry = min
			}
			if n.obsSink != nil {
				n.obsSink.Emit(metrics.Event{
					Cycle: now, Kind: metrics.KindSyncRetry, Ctx: -1,
					Addr: addr, PC: pc, Arg: retry,
				})
			}
			return memsys.DataResult{FillAt: retry, Class: memsys.RemoteCache}
		}
	}

	e := f.entry(line)

	// Classify by where the data comes from.
	var class memsys.MissClass
	switch {
	case e.owner >= 0 && e.owner != n.id:
		class = memsys.RemoteCache // dirty in another cache
	case f.home(line) == n.id:
		class = memsys.LocalMem
	default:
		class = memsys.RemoteMem
	}

	// Directory transition at request time.
	if write {
		// Invalidate every other copy, resident or in flight.
		for i, other := range f.nodes {
			if i == n.id {
				continue
			}
			if e.owner == i || e.sharers&(1<<uint(i)) != 0 {
				other.cache.Invalidate(f.lineAddr(line))
				if j := other.findPending(line); j >= 0 {
					other.removePending(j)
				}
				other.Stats.Invalidations++
				// Attributed to the causing node's stream (its execution
				// reaches this point identically in both run modes); the
				// victim rides in Arg.
				if n.obsSink != nil {
					n.obsSink.Emit(metrics.Event{
						Cycle: now, Kind: metrics.KindInval, Ctx: -1,
						Addr: f.lineAddr(line), Arg: int64(i),
					})
				}
			}
		}
		e.owner = n.id
		e.sharers = 1 << uint(n.id)
	} else {
		if e.owner >= 0 && e.owner != n.id {
			// Downgrade the dirty owner to shared; data is written back.
			e.sharers |= 1 << uint(e.owner)
			e.owner = -1
		}
		e.sharers |= 1 << uint(n.id)
	}

	fill := now + f.latency(class)
	if j := n.findPending(line); j >= 0 {
		// Upgrade issued while a request for the line was in flight:
		// replace the miss-register entry rather than duplicating it.
		n.pending[j] = pendingFill{line: line, fill: fill, exclusive: write}
	} else {
		n.pending = append(n.pending, pendingFill{line: line, fill: fill, exclusive: write})
	}
	n.Stats.ByClass[class]++
	if n.obsSink != nil {
		n.obsSink.Emit(metrics.Event{
			Cycle: now, Kind: metrics.KindMissStart, Ctx: -1,
			Class: class.String(), Addr: addr, PC: pc, Arg: fill,
		})
	}
	return memsys.DataResult{FillAt: fill, Class: class}
}

// NextCompletion implements memsys.Completer: the earliest of this node's
// in-flight fills completing strictly after now, or math.MaxInt64 when
// none are outstanding.
func (n *Node) NextCompletion(now int64) int64 {
	next := int64(math.MaxInt64)
	for i := range n.pending {
		if pf := &n.pending[i]; pf.fill > now && pf.fill < next {
			next = pf.fill
		}
	}
	return next
}

// PullBasedTiming implements memsys.Completer: directory state, sharer
// sets, pending fills (this node's and the cross-node exclusive-pending
// probes) and chaos draws all change only inside AccessData calls, so the
// lockstep driver may jump every processor across an access-free region
// in one step. Cross-processor ordering is unaffected: a skip only
// happens when every processor is access-free, and the (cycle, processor)
// transaction order resumes identically at the region's end.
func (n *Node) PullBasedTiming() bool { return true }

// install places a line in the node's cache, handling the victim's
// directory state.
func (n *Node) install(line uint32, exclusive bool) {
	addr := n.fab.lineAddr(line)
	victim, _, had := n.cache.Fill(addr, exclusive)
	if had {
		n.fab.evicted(n.id, victim)
	}
}

// DirectoryInvariants checks protocol invariants for tests: a line with a
// dirty owner has that owner as its only possible resident writer, and
// every resident cache copy is recorded in the directory. It returns an
// error description or "" if clean.
func (f *Fabric) DirectoryInvariants() string {
	for pageNo, pg := range f.dir {
		for idx := range pg {
			e := &pg[idx]
			line := pageNo<<dirPageShift | uint32(idx)
			owners := 0
			for i := range f.nodes {
				if e.owner == i {
					owners++
				}
			}
			if e.owner >= 0 && owners != 1 {
				return fmt.Sprintf("line %#x: owner %d not a node", line, e.owner)
			}
			if e.owner >= 0 && e.sharers&^(1<<uint(e.owner)) != 0 {
				return fmt.Sprintf("line %#x: dirty owner %d with sharers %b", line, e.owner, e.sharers)
			}
			for i, node := range f.nodes {
				if node.cache.Present(f.lineAddr(line)) {
					if e.owner != i && e.sharers&(1<<uint(i)) == 0 {
						return fmt.Sprintf("line %#x: node %d resident but not in directory", line, i)
					}
				}
			}
		}
	}
	return ""
}

var _ memsys.System = (*Node)(nil)

var _ memsys.Completer = (*Node)(nil)
