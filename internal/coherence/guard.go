package coherence

import (
	"errors"
	"fmt"
	"slices"

	"repro/internal/guard"
)

// This file is the fabric's side of the simulation-hardening layer:
// protocol invariant checking (single-owner, directory consistency,
// transaction serialization) and hot-line / outstanding-miss reporting
// for watchdog diagnostics.

// CheckInvariants verifies the directory protocol:
//
//   - DirectoryInvariants: a dirty owner excludes other sharers, and
//     every resident copy is recorded in the directory;
//   - at most one node has an exclusive request in flight per line
//     (transaction serialization), and that node is the recorded owner —
//     ownership transfers at request time.
//
// Violations come back as *guard.SimError.
func (f *Fabric) CheckInvariants() error {
	if s := f.DirectoryInvariants(); s != "" {
		return guard.NewSimError("coherence.invariant", errors.New(s))
	}
	exclusive := make(map[uint32]int)
	for _, n := range f.nodes {
		for i := range n.pending {
			pf := &n.pending[i]
			if !pf.exclusive {
				continue
			}
			line := pf.line
			if prev, ok := exclusive[line]; ok {
				return guard.NewSimError("coherence.invariant",
					fmt.Errorf("line %#x: exclusive requests in flight from nodes %d and %d", line, prev, n.id)).
					WithAddr(f.lineAddr(line))
			}
			exclusive[line] = n.id
			owner := -1
			if e := f.peekEntry(line); e != nil {
				owner = e.owner
			}
			if owner != n.id {
				return guard.NewSimError("coherence.invariant",
					fmt.Errorf("line %#x: node %d fetching exclusive but directory owner is %d", line, n.id, owner)).
					WithAddr(f.lineAddr(line))
			}
		}
	}
	return nil
}

// HotLines reports the directory state of every line with an outstanding
// transaction, in ascending line order, up to max entries (unlimited when
// max <= 0). These are the lines a wedged machine is fighting over, so
// watchdog diagnostics include them.
func (f *Fabric) HotLines(max int) []guard.LineState {
	var lines []uint32
	for _, n := range f.nodes {
		for i := range n.pending {
			lines = append(lines, n.pending[i].line)
		}
	}
	slices.Sort(lines)
	lines = slices.Compact(lines)
	if max > 0 && len(lines) > max {
		lines = lines[:max]
	}
	out := make([]guard.LineState, 0, len(lines))
	for _, line := range lines {
		ls := guard.LineState{Line: line, Addr: f.lineAddr(line), Owner: -1}
		if e := f.peekEntry(line); e != nil {
			ls.Owner = e.owner
			ls.Sharers = e.sharers
		}
		out = append(out, ls)
	}
	return out
}

// OutstandingMisses reports node n's in-flight directory transactions, in
// ascending line order, for watchdog diagnostics.
func (n *Node) OutstandingMisses() []guard.MissState {
	sorted := slices.Clone(n.pending)
	slices.SortFunc(sorted, func(a, b pendingFill) int {
		return int(int64(a.line) - int64(b.line))
	})
	out := make([]guard.MissState, 0, len(sorted))
	for _, pf := range sorted {
		out = append(out, guard.MissState{
			Line:      pf.line,
			Addr:      n.fab.lineAddr(pf.line),
			FillAt:    pf.fill,
			Exclusive: pf.exclusive,
		})
	}
	return out
}

// CheckInvariants on a node delegates to its fabric, so a node standing
// in as a processor's memory system is checkable through the same
// interface as the workstation hierarchy.
func (n *Node) CheckInvariants() error { return n.fab.CheckInvariants() }

var (
	_ guard.InvariantChecker = (*Fabric)(nil)
	_ guard.InvariantChecker = (*Node)(nil)
	_ guard.MissReporter     = (*Node)(nil)
)
