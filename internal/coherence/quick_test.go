package coherence

import (
	"math/rand"
	"testing"

	"repro/internal/memsys"
)

// TestQuickRandomTraffic fires random reads and writes from random nodes,
// settling each access, and checks the directory invariants continuously:
// single dirty owner, dirty owner has no co-sharers, every resident copy
// recorded.
func TestQuickRandomTraffic(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		f := MustNewFabric(DefaultParams(), 4)
		now := int64(0)
		for op := 0; op < 2000; op++ {
			n := f.Node(rng.Intn(4))
			addr := uint32(rng.Intn(64)) * 32 // 64 contended lines
			write := rng.Intn(3) == 0
			now = settle(n, addr, write, now)
			if op%100 == 0 {
				if msg := f.DirectoryInvariants(); msg != "" {
					t.Fatalf("trial %d op %d: %s", trial, op, msg)
				}
			}
		}
		if msg := f.DirectoryInvariants(); msg != "" {
			t.Fatalf("trial %d final: %s", trial, msg)
		}
	}
}

// TestWriteSerializationOrder: two nodes writing the same line through
// settle() always end with exactly one owner, and a subsequent read from a
// third node sees a consistent class.
func TestWriteSerializationOrder(t *testing.T) {
	f := newFab(t, 4)
	now := int64(0)
	for i := 0; i < 50; i++ {
		now = settle(f.Node(i%2), 0x40, true, now)
	}
	e := f.peekEntry(0x40 / uint32(f.P.LineSize))
	if e == nil || e.owner < 0 {
		t.Fatal("no owner after write storm")
	}
	r := f.Node(3).AccessData(0x40, false, 0, now)
	if r.Hit {
		t.Fatal("third node cannot hit cold")
	}
	if r.Class != memsys.RemoteCache {
		t.Errorf("class = %v, want remote-cache (dirty elsewhere)", r.Class)
	}
}

// TestDeferredRequestEventuallySucceeds: a request NAKed behind an
// in-flight exclusive completes after bounded retries.
func TestDeferredRequestEventuallySucceeds(t *testing.T) {
	f := newFab(t, 2)
	// Node 0 launches an exclusive request (in flight).
	r0 := f.Node(0).AccessData(0x80, true, 0, 0)
	if r0.Hit {
		t.Fatal("expected miss")
	}
	// Node 1's request is deferred while node 0's is in flight.
	r1 := f.Node(1).AccessData(0x80, true, 0, 1)
	if r1.Hit {
		t.Fatal("expected defer")
	}
	if f.Node(1).Stats.Deferred != 1 {
		t.Errorf("deferred = %d", f.Node(1).Stats.Deferred)
	}
	// Node 0 completes; node 1 settles within a handful of retries.
	now := settle(f.Node(0), 0x80, true, 0)
	now = settle(f.Node(1), 0x80, true, now)
	if !f.Node(1).cache.Dirty(0x80) {
		t.Error("node 1 never obtained ownership")
	}
	_ = now
}

// TestStatsAccounting: classes accumulate consistently.
func TestStatsAccounting(t *testing.T) {
	f := newFab(t, 2)
	n := f.Node(0)
	now := settle(n, 0x100, false, 0)
	settle(n, 0x100, false, now) // hit
	if n.Stats.Accesses < 3 {    // miss + replay + hit
		t.Errorf("accesses = %d", n.Stats.Accesses)
	}
	if n.Stats.ByClass[memsys.HitL1] == 0 {
		t.Error("no hits recorded")
	}
	var missSum int64
	for c := memsys.LocalMem; c <= memsys.RemoteCache; c++ {
		missSum += n.Stats.ByClass[c]
	}
	if missSum == 0 {
		t.Error("no miss classes recorded")
	}
}
