package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/cache"
	"repro/internal/guard"
	"repro/internal/mem"
	"repro/internal/metrics"

	"repro/internal/isa"
)

// Golden property of the observability layer: a fast-forwarded run and a
// cycle-by-cycle run of the same cell produce byte-identical sampled
// series and event traces, and attaching metrics must not perturb the
// simulation itself.

func runObservedStallCell(t *testing.T, scheme Scheme, nctx int, noFF bool, chaosSeed int64) ([]byte, ffOutcome) {
	t.Helper()
	params := cache.DefaultParams()
	if chaosSeed != 0 {
		params.Chaos = guard.Options{ChaosSeed: chaosSeed}.NewChaos()
	}
	h := cache.MustNewHierarchy(params)
	fm := mem.New()
	pr := stallProg(t)
	pr.LoadInit(fm)
	cfg := DefaultConfig(scheme, nctx)
	cfg.NoFastForward = noFF
	p := MustNewProcessor(cfg, h, fm)
	col := metrics.NewCollector(metrics.Options{SampleEvery: 512, Events: true}, 1)
	p.AttachMetrics(col.Proc(0))
	h.AttachMetrics(col.Proc(0))
	var threads []*Thread
	for i := 0; i < nctx; i++ {
		th := NewThread(fmt.Sprintf("t%d", i), pr)
		th.SetIntReg(isa.R4, uint32(i))
		p.BindThread(i, th)
		threads = append(threads, th)
	}
	cycles, halted := p.RunUntilHalted(10_000_000)
	if !halted {
		t.Fatalf("%v/%d noFF=%v: did not halt", scheme, nctx, noFF)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("%v/%d noFF=%v: %v", scheme, nctx, noFF, err)
	}
	blob, err := json.Marshal(col.Result())
	if err != nil {
		t.Fatal(err)
	}
	out := ffOutcome{cycles: cycles, halted: halted, stats: p.Stats, memHash: fm.Hash(), cacheStats: h.Stats}
	out.archHash = out.memHash
	for _, th := range threads {
		out.archHash = th.HashArchState(out.archHash)
	}
	return blob, out
}

func TestMetricsGoldenFastForwardUni(t *testing.T) {
	for _, scheme := range []Scheme{Blocked, Interleaved} {
		for _, chaos := range []int64{0, 99} {
			label := fmt.Sprintf("%v/chaos=%d", scheme, chaos)
			ffBlob, ff := runObservedStallCell(t, scheme, 4, false, chaos)
			offBlob, off := runObservedStallCell(t, scheme, 4, true, chaos)
			compareOutcomes(t, label, ff, off)
			if !bytes.Equal(ffBlob, offBlob) {
				t.Errorf("%s: metrics diverge between fast-forwarded and stepped runs\n ff:  %.400s\n off: %.400s",
					label, ffBlob, offBlob)
			}
			var m metrics.CellMetrics
			if err := json.Unmarshal(ffBlob, &m); err != nil {
				t.Fatal(err)
			}
			if len(m.Procs) != 1 || len(m.Procs[0].Samples) == 0 || len(m.Events) == 0 {
				t.Errorf("%s: empty metrics: %d series, %d events", label, len(m.Procs), len(m.Events))
			}
		}
	}
}

// Attaching a (disabled-sampling, disabled-events would be nil) metrics
// collector must leave the simulation results bit-identical to an
// uninstrumented run: the registry only reads existing counters.
func TestMetricsDoNotPerturbSimulation(t *testing.T) {
	_, observed := runObservedStallCell(t, Interleaved, 4, false, 7)
	plain := runStallCell(t, Interleaved, 4, false, 7, 10_000_000)
	compareOutcomes(t, "observed-vs-plain", observed, plain)
}

// The charge-span events and issue events of one processor must tile its
// cycles exactly: expanding every span and adding the per-cycle issues
// reproduces TotalSlots.
func TestMetricsEventsTileAllSlots(t *testing.T) {
	blob, out := runObservedStallCell(t, Blocked, 2, false, 0)
	var m metrics.CellMetrics
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatal(err)
	}
	if m.DroppedEvents > 0 {
		t.Skipf("event cap hit (%d dropped); tiling not checkable", m.DroppedEvents)
	}
	var slots int64
	for _, ev := range m.Events {
		switch ev.Kind {
		case metrics.KindCharge:
			slots += ev.Span
		case metrics.KindIssue:
			slots++
		}
	}
	if total := out.stats.TotalSlots(); slots != total {
		t.Errorf("events cover %d slots, stats account %d", slots, total)
	}
}

// Per-context slot counters must sum to the processor-wide class counters
// for every class that is always attributed to a context (busy slots are;
// idle slots may have ctx -1).
func TestMetricsCtxSlotsConsistent(t *testing.T) {
	blob, out := runObservedStallCell(t, Interleaved, 4, false, 0)
	var m metrics.CellMetrics
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatal(err)
	}
	s := m.Procs[0]
	last := s.Samples[len(s.Samples)-1].Values
	byName := map[string]int64{}
	for i, n := range s.Names {
		byName[n] = last[i]
	}
	var ctxBusy int64
	for k := 0; k < 4; k++ {
		ctxBusy += byName[fmt.Sprintf("ctx%d/busy", k)]
	}
	if busy := byName["slots/busy"]; ctxBusy > busy || busy > out.stats.Slots[SlotBusy] {
		t.Errorf("ctx busy %d, class busy %d, final stats busy %d", ctxBusy, busy, out.stats.Slots[SlotBusy])
	}
	if byName["cycles"] == 0 || byName["cache/data-accesses"] == 0 {
		t.Errorf("expected non-zero cycles and cache counters, got %v", byName)
	}
}
