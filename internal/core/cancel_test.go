package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/engine"
	"repro/internal/guard"
	"repro/internal/mem"
)

// A canceled context stops a guarded run within one engine.BlockCycles
// block and surfaces as a typed guard.canceled SimError that errors.Is
// recognizes as context cancellation.
func TestRunGuardedCtxCancelsWithinOneBlock(t *testing.T) {
	fm := mem.New()
	p := MustNewProcessor(DefaultConfig(Single, 1), perfectMem{}, fm)
	p.BindThread(0, NewThread("spin", spinProgram(t)))

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran, done, err := p.RunGuardedCtx(ctx, 10_000_000, guard.Options{})
	if done {
		t.Error("canceled run reported completed")
	}
	if err == nil {
		t.Fatal("canceled run returned no error")
	}
	se := guard.AsSimError(err)
	if se == nil || se.Op != guard.OpCanceled {
		t.Fatalf("want a %s SimError, got %v", guard.OpCanceled, err)
	}
	if !guard.IsCancellation(err) || !errors.Is(err, context.Canceled) {
		t.Errorf("cancellation error not recognized by errors.Is: %v", err)
	}
	if ran > engine.BlockCycles {
		t.Errorf("ran %d cycles after cancellation, want <= %d (one block)", ran, engine.BlockCycles)
	}
	if se.Cycle != ran {
		t.Errorf("error cycle %d != cycles run %d", se.Cycle, ran)
	}
}

// An attached but never-canceled context must be invisible: same cycle
// count, same completion, same architectural results as the detached
// RunGuarded path — the chunked cancelable loop is cycle-exact.
func TestRunGuardedCtxMatchesDetachedRun(t *testing.T) {
	build := func() (*Processor, *Thread) {
		fm := mem.New()
		p := MustNewProcessor(DefaultConfig(Interleaved, 2), newFakeMem(40), fm)
		th := NewThread("sum", sumProgram(t, 500, 0x100000))
		p.BindThread(0, th)
		return p, th
	}
	p1, th1 := build()
	c1, done1, err1 := p1.RunGuarded(1_000_000, guard.Options{})
	if err1 != nil {
		t.Fatal(err1)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p2, th2 := build()
	c2, done2, err2 := p2.RunGuardedCtx(ctx, 1_000_000, guard.Options{})
	if err2 != nil {
		t.Fatal(err2)
	}
	if c1 != c2 || done1 != done2 {
		t.Fatalf("cancelable path diverged: (%d,%v) vs (%d,%v)", c1, done1, c2, done2)
	}
	if th1.HashArchState(0) != th2.HashArchState(0) {
		t.Error("cancelable path changed architectural results")
	}
}
