package core

import (
	"fmt"
	"math"

	"repro/internal/metrics"
)

// Observability integration. The processor registers its counters with a
// per-processor metrics registry and feeds the event sink from the same
// three places that mutate slot accounting: count, busySlot and SkipTo.
// The fast-forward engine stays enabled under instrumentation — unlike the
// Trace hook, which observes individual cycles and therefore forces
// stepping — because every hook is defined so a bulk-charged region
// produces exactly the samples and events of a stepped one:
//
//   - Samples are keyed to cycles (a sample at cycle S reads the counters
//     after every cycle < S completed). Step samples when it crosses a
//     sample point; SkipTo splits its bulk charge at sample points.
//   - Charges flow through the sink's span coalescer, so per-cycle and
//     bulk charges of one stall region emit the identical span event.
//   - All other events originate in cycles that perform memory accesses
//     or issue instructions — never-skippable cycles that both modes step.

// AttachMetrics registers this processor's counters with m and installs
// its sampler and event sink. Call before running; nil is a no-op.
func (p *Processor) AttachMetrics(m *metrics.ProcMetrics) {
	if m == nil {
		return
	}
	p.obs = m
	p.obsSink = m.Sink
	if m.Sampler != nil {
		p.sampleEvery = m.Every
		p.nextSample = (p.cycle/m.Every + 1) * m.Every
	}
	reg := m.Reg
	reg.Register("cycles", &p.Stats.Cycles)
	reg.Register("retired", &p.Stats.Retired)
	for c := 0; c < NumSlotClasses; c++ {
		reg.Register("slots/"+slotNames[c], &p.Stats.Slots[c])
	}
	reg.Register("branches", &p.Stats.Branches)
	reg.Register("mispredicts", &p.Stats.Mispredicts)
	reg.Register("switches/miss", &p.Stats.MissSwitches)
	reg.Register("switches/explicit", &p.Stats.ExplicitSwitches)
	reg.Register("switches/backoff", &p.Stats.Backoffs)
	p.ctxSlots = make([]int64, len(p.ctxs)*NumSlotClasses)
	for k := range p.ctxs {
		for c := 0; c < NumSlotClasses; c++ {
			reg.Register(fmt.Sprintf("ctx%d/%s", k, slotNames[c]), &p.ctxSlots[k*NumSlotClasses+c])
		}
	}
}

// obsCount observes one charged issue slot (count's slow half).
func (p *Processor) obsCount(now int64, cls SlotClass, ctx int) {
	if ctx >= 0 {
		p.ctxSlots[ctx*NumSlotClasses+int(cls)]++
	}
	if p.obsSink != nil {
		p.obsSink.Charge(now, slotNames[cls], ctx, 1)
	}
}

// obsIssue observes one issued instruction (busySlot's slow half).
func (p *Processor) obsIssue(now int64, cls SlotClass, c *hwContext, th *Thread) {
	p.ctxSlots[c.idx*NumSlotClasses+int(cls)]++
	if p.obsSink != nil {
		p.obsSink.Emit(metrics.Event{
			Cycle: now, Kind: metrics.KindIssue, Ctx: c.idx,
			Class: slotNames[cls], PC: th.pcAddr(th.PC),
		})
	}
}

// obsCtxSwitch records a context becoming unavailable (miss switch,
// SWITCH or BACKOFF): cause is the slot class charged while it waits, wake
// the cycle it becomes available again. Callers guard on p.obsSink.
func (p *Processor) obsCtxSwitch(now int64, ctx int, cause SlotClass, wake int64) {
	p.obsSink.Emit(metrics.Event{
		Cycle: now, Kind: metrics.KindCtxSwitch, Ctx: ctx,
		Class: slotNames[cause], Arg: wake,
	})
}

// obsSampleTick fires the sampler at every sample point the clock has
// crossed (Step's slow half; the fast path is one compare against
// nextSample, which is MaxInt64 whenever sampling is off).
func (p *Processor) obsSampleTick() {
	for p.cycle >= p.nextSample {
		p.obs.Sampler.SampleAt(p.nextSample)
		p.nextSample += p.sampleEvery
	}
}

// Observed reports whether the processor is attached to a metrics
// collector. Fast-forward drivers dispatch on it: SkipTo when false,
// ObservedSkipTo when true.
func (p *Processor) Observed() bool { return p.obs != nil }

// ObservedSkipTo is SkipTo under observability. It is a separate method
// (rather than a branch inside SkipTo) so the uninstrumented SkipTo stays
// within the inlining budget of the fast-forward loops.
func (p *Processor) ObservedSkipTo(target int64, cls SlotClass, ctx int) {
	if target <= p.cycle {
		return
	}
	width := int64(p.Cfg.IssueWidth)
	if width < 1 {
		width = 1
	}
	p.obsSkip(target, cls, ctx, width)
}

// obsSkip is SkipTo under observability: the whole region becomes one
// coalesced charge-span event, and the counter charge is split at sample
// points so each sample reads exactly the values a stepped run shows at
// that cycle.
func (p *Processor) obsSkip(target int64, cls SlotClass, ctx int, width int64) {
	var th *Thread
	if ctx >= 0 {
		th = p.ctxs[ctx].thread
	}
	if p.obsSink != nil {
		p.obsSink.Charge(p.cycle, slotNames[cls], ctx, target-p.cycle)
	}
	for p.nextSample <= target {
		p.obsBulkCharge(p.nextSample-p.cycle, cls, ctx, th, width)
		p.obs.Sampler.SampleAt(p.nextSample)
		p.nextSample += p.sampleEvery
	}
	p.obsBulkCharge(target-p.cycle, cls, ctx, th, width)
}

func (p *Processor) obsBulkCharge(n int64, cls SlotClass, ctx int, th *Thread, width int64) {
	if n <= 0 {
		return
	}
	p.cycle += n
	p.Stats.Cycles += n
	p.Stats.Slots[cls] += n * width
	if th != nil {
		th.Devoted += n * width
	}
	if ctx >= 0 {
		p.ctxSlots[ctx*NumSlotClasses+int(cls)] += n * width
	}
}

// noSample is nextSample's value while sampling is disabled.
const noSample = int64(math.MaxInt64)
