package core

// BTB is the 2048-entry direct-mapped branch target buffer of paper §4.1.
// A correctly predicted branch costs zero cycles; a mispredicted branch
// pays a three-cycle redirect (the condition is evaluated in EX).
//
// Prediction policy: a resident entry predicts taken-to-target; a missing
// entry predicts fall-through. Taken branches install or update their
// entry; a not-taken branch that hit in the BTB evicts its entry.
type BTB struct {
	mask    uint32
	tags    []uint32
	targets []int32
	valid   []bool
}

// NewBTB returns a BTB with entries slots (a power of two).
func NewBTB(entries int) *BTB {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("core: BTB entries must be a positive power of two")
	}
	return &BTB{
		mask:    uint32(entries - 1),
		tags:    make([]uint32, entries),
		targets: make([]int32, entries),
		valid:   make([]bool, entries),
	}
}

func (b *BTB) slot(pcAddr uint32) uint32 { return (pcAddr >> 2) & b.mask }

// Lookup returns the predicted target instruction index for the branch at
// pcAddr and whether the BTB hit.
func (b *BTB) Lookup(pcAddr uint32) (target int32, hit bool) {
	s := b.slot(pcAddr)
	if b.valid[s] && b.tags[s] == pcAddr {
		return b.targets[s], true
	}
	return 0, false
}

// Record updates the BTB after a branch resolves: taken branches install
// their target; not-taken branches evict a stale entry.
func (b *BTB) Record(pcAddr uint32, taken bool, target int32) {
	s := b.slot(pcAddr)
	if taken {
		b.tags[s] = pcAddr
		b.targets[s] = target
		b.valid[s] = true
		return
	}
	if b.valid[s] && b.tags[s] == pcAddr {
		b.valid[s] = false
	}
}
