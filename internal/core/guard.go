package core

import (
	"context"
	"fmt"

	"repro/internal/engine"
	"repro/internal/guard"
)

// This file is the processor's side of the simulation-hardening layer
// (internal/guard): state snapshots for structured diagnostics, pipeline
// invariant checking, and a guarded run loop with a liveness watchdog.

// HashArchState folds the thread's architectural state — registers, PC,
// and halt status — into a running FNV-1a digest h (seed with
// guard-style callers' mem.Memory Hash, or the FNV offset basis).
// Chaos-mode tests combine these with the memory digest to assert that
// timing perturbation never changes architectural results.
func (t *Thread) HashArchState(h uint64) uint64 {
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xFF
			h *= 1099511628211 // FNV prime
			v >>= 8
		}
	}
	mix(uint64(uint32(t.PC)))
	if t.Halted {
		mix(1)
	} else {
		mix(0)
	}
	for _, r := range t.Regs {
		mix(r)
	}
	return h
}

// MachineHash digests every machine layer reachable from the processor
// into one diagnostic hash: functional memory, the memory system when it
// can hash itself (cache.Hierarchy implements guard.StateHasher; a
// multiprocessor's shared coherence state hashes once at the fabric
// level instead, see mp.machineHash), and each bound thread's
// architectural state. The fuzzer's fork oracle and the
// snapshot-equivalence tests compare these across machines; diagnostics
// record them so two reports of the "same" failure can be told apart.
func (p *Processor) MachineHash() uint64 {
	layers := []uint64{p.FMem.Hash()}
	if hs, ok := p.Mem.(guard.StateHasher); ok {
		layers = append(layers, hs.Hash())
	}
	h := guard.MachineHash(layers...)
	for _, c := range p.ctxs {
		if c.thread != nil {
			h = c.thread.HashArchState(h)
		}
	}
	return h
}

// UsefulProgress is the watchdog's progress counter: issue slots spent on
// useful (non-synchronization) instructions. Spin-wait code retires
// synchronization instructions forever, so a deadlocked machine still
// "retires" — but it stops retiring useful work, which is what this
// counter tracks.
func (p *Processor) UsefulProgress() int64 { return p.Stats.Slots[SlotBusy] }

// Snapshot captures the processor's architectural position for a
// diagnostic: per-context thread, PC, current instruction, availability
// and cause, the nonzero slot breakdown, and — when the memory system can
// report them — its outstanding misses.
func (p *Processor) Snapshot() guard.ProcState {
	ps := guard.ProcState{ID: p.ID, Cycle: p.cycle, Slots: map[string]int64{}}
	for cls, n := range p.Stats.Slots {
		if n != 0 {
			ps.Slots[SlotClass(cls).String()] = n
		}
	}
	for _, c := range p.ctxs {
		cs := guard.CtxState{Ctx: c.idx}
		if th := c.thread; th != nil {
			cs.Thread = th.Name
			cs.PC = th.PC
			cs.Halted = th.Halted
			cs.Retired = th.Retired
			cs.AvailableAt = c.availableAt
			cs.Cause = c.availCause.String()
			if th.PC >= 0 && th.PC < len(th.Prog.Insts) {
				cs.PCAddr = th.Prog.PCAddr(th.PC)
				cs.Inst = th.Prog.Insts[th.PC].String()
			}
		}
		ps.Ctxs = append(ps.Ctxs, cs)
	}
	if mr, ok := p.Mem.(guard.MissReporter); ok {
		ps.Misses = mr.OutstandingMisses()
	}
	return ps
}

// CheckInvariants verifies the pipeline's interlock bookkeeping:
//
//   - every issue slot is accounted to exactly one class (the slot sum
//     equals cycles × issue width);
//   - the blocked-scheme current context, round-robin pointer and forced
//     fetch target are in range;
//   - every bound thread's PC addresses a real instruction;
//   - the zero register never acquires a scoreboard dependency;
//   - a halted thread is never the blocked scheme's current context.
//
// Violations come back as *guard.SimError with a full snapshot attached.
func (p *Processor) CheckInvariants() error {
	fail := func(ctx, pc int, format string, args ...any) error {
		return guard.NewSimError("core.invariant", fmt.Errorf(format, args...)).
			At(p.cycle).On(p.ID, ctx, pc).
			WithDiag(&guard.Diagnostic{
				Reason:      "pipeline invariant violation",
				Cycle:       p.cycle,
				Scheme:      p.Cfg.Scheme.String(),
				Procs:       []guard.ProcState{p.Snapshot()},
				MachineHash: p.MachineHash(),
			})
	}
	width := int64(p.Cfg.IssueWidth)
	if width < 1 {
		width = 1
	}
	if got, want := p.Stats.TotalSlots(), p.Stats.Cycles*width; got != want {
		return fail(-1, -1, "slot accounting: %d slots for %d cycles × width %d (want %d)",
			got, p.Stats.Cycles, width, want)
	}
	n := len(p.ctxs)
	if p.cur < -1 || p.cur >= n {
		return fail(-1, -1, "blocked current context %d out of range [-1,%d)", p.cur, n)
	}
	if p.rr < -1 || p.rr >= n {
		return fail(-1, -1, "round-robin pointer %d out of range [-1,%d)", p.rr, n)
	}
	if p.forceNext < -1 || p.forceNext >= n {
		return fail(-1, -1, "forced fetch context %d out of range [-1,%d)", p.forceNext, n)
	}
	for _, c := range p.ctxs {
		th := c.thread
		if th == nil {
			continue
		}
		if th.PC < 0 || th.PC >= len(th.Prog.Insts) {
			return fail(c.idx, th.PC, "thread %s PC %d outside program %s [0,%d)",
				th.Name, th.PC, th.Prog.Name, len(th.Prog.Insts))
		}
		if th.regReady[0] != 0 {
			return fail(c.idx, th.PC, "thread %s: scoreboard dependency on R0", th.Name)
		}
		if th.Halted && p.cur == c.idx {
			return fail(c.idx, th.PC, "halted thread %s is the blocked scheme's current context", th.Name)
		}
	}
	return nil
}

// RunGuarded is the hardened uniprocessor runner: it steps until every
// bound thread halts or limit cycles elapse (returning the cycles run and
// whether everything halted, like RunUntilHalted), while polling the
// liveness watchdog and — when enabled — the pipeline and memory-system
// invariant checkers every opts.CheckEvery cycles. A watchdog trip or an
// invariant violation returns a *guard.SimError carrying a structured
// diagnostic. opts.WatchdogWindow zero leaves the watchdog off: a
// cycle-bounded uniprocessor run cannot hang, so the watchdog is an
// opt-in early-abort for stuck programs.
func (p *Processor) RunGuarded(limit int64, opts guard.Options) (int64, bool, error) {
	return p.RunGuardedCtx(context.Background(), limit, opts)
}

// RunGuardedCtx is RunGuarded with cooperative cancellation: when ctx
// can be canceled, the run additionally polls ctx.Done() every
// engine.BlockCycles cycles and returns a guard.OpCanceled SimError
// (wrapping ctx.Err(), so errors.Is sees context.Canceled) within one
// block of the cancellation. A background/detached context leaves the
// single-RunUntilHalted-per-chunk path untouched.
//
// The loop itself lives in internal/engine: this method only supplies
// the uniprocessor's Advance closure and diagnostic hooks, so guard
// boundaries, cancellation latency, and the watchdog report are defined
// in one place for every driver.
func (p *Processor) RunGuardedCtx(ctx context.Context, limit int64, opts guard.Options) (int64, bool, error) {
	var checkers []guard.InvariantChecker
	if opts.InvariantsOn() {
		checkers = append(checkers, p)
		if ic, ok := p.Mem.(guard.InvariantChecker); ok {
			checkers = append(checkers, ic)
		}
	}
	start := p.cycle
	eng := &engine.Engine{
		// RunUntilHalted, not Run: the chunked loop must stop on the
		// exact halt cycle, or guarded runs would overshoot to the next
		// chunk boundary and report inflated cycle counts.
		Advance: func(now, target int64) int64 {
			p.RunUntilHalted(target - now)
			return p.cycle
		},
		Halted:     p.AllHalted,
		Watchdog:   guard.NewWatchdog(opts.ResolveWatchdog(0)),
		Progress:   p.UsefulProgress,
		Checkers:   checkers,
		GuardEvery: opts.CheckCadence(),
		GuardAtEnd: true,
		// The hook indirects through the field so a hook may disarm
		// itself mid-run (checkpoint captures do).
		BlockEnd: func(now int64) {
			if p.BlockHook != nil {
				p.BlockHook(now)
			}
		},
		Describe: func(d *guard.Diagnostic) {
			d.Scheme = p.Cfg.Scheme.String()
			d.Procs = []guard.ProcState{p.Snapshot()}
			d.MachineHash = p.MachineHash()
		},
	}
	halted, err := eng.Run(ctx, start, start+limit)
	return p.cycle - start, halted, err
}

var _ guard.InvariantChecker = (*Processor)(nil)
