package core

// Tests of the §6 exception machinery: TRAP saves the per-context EPC and
// enters the handler; ERET resumes. Each hardware context's thread has its
// own EPC, mirroring the paper's replicated exception-PC registers.

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/prog"
)

// trapProgram: main increments R2, traps, continues; the handler
// increments R3 and returns.
func trapProgram(t *testing.T) *prog.Program {
	return buildProg(t, "trap", func(b *prog.Builder) {
		b.Li(isa.R2, 0)
		b.Li(isa.R3, 0)
		b.Addi(isa.R2, isa.R2, 1)
		b.Trap(42)
		b.Addi(isa.R2, isa.R2, 1)
		b.Trap(43)
		b.Addi(isa.R2, isa.R2, 1)
		b.Halt()
		b.Label("handler")
		b.Addi(isa.R3, isa.R3, 10)
		b.Eret()
	})
}

func TestTrapAndReturn(t *testing.T) {
	fm := mem.New()
	p := MustNewProcessor(DefaultConfig(Single, 1), perfectMem{}, fm)
	th := NewThread("trap", trapProgram(t))
	th.SetTrapHandler("handler")
	p.BindThread(0, th)
	if _, done := p.RunUntilHalted(10_000); !done {
		t.Fatal("did not halt")
	}
	if th.IntReg(isa.R2) != 3 {
		t.Errorf("R2 = %d, want 3 (main path resumed after each trap)", th.IntReg(isa.R2))
	}
	if th.IntReg(isa.R3) != 20 {
		t.Errorf("R3 = %d, want 20 (handler ran twice)", th.IntReg(isa.R3))
	}
	if th.TrapCode != 43 {
		t.Errorf("trap code = %d, want 43 (last trap)", th.TrapCode)
	}
}

func TestTrapWithoutHandlerHalts(t *testing.T) {
	fm := mem.New()
	p := MustNewProcessor(DefaultConfig(Single, 1), perfectMem{}, fm)
	pr := buildProg(t, "t", func(b *prog.Builder) {
		b.Addi(isa.R2, isa.R2, 1)
		b.Trap(7)
		b.Addi(isa.R2, isa.R2, 1) // unreachable
		b.Halt()
	})
	th := NewThread("t", pr)
	p.BindThread(0, th)
	if _, done := p.RunUntilHalted(1_000); !done {
		t.Fatal("did not halt")
	}
	if th.IntReg(isa.R2) != 1 {
		t.Errorf("R2 = %d; unhandled trap must stop the thread", th.IntReg(isa.R2))
	}
	if th.TrapCode != 7 {
		t.Errorf("trap code = %d", th.TrapCode)
	}
}

// Per-context EPCs: two interleaved contexts trapping simultaneously must
// not clobber each other's resume points (§6.2's replicated EPC).
func TestPerContextEPC(t *testing.T) {
	fm := mem.New()
	p := MustNewProcessor(DefaultConfig(Interleaved, 2), perfectMem{}, fm)
	for c := 0; c < 2; c++ {
		th := NewThread("t", trapProgram(t))
		th.SetTrapHandler("handler")
		p.BindThread(c, th)
	}
	if _, done := p.RunUntilHalted(10_000); !done {
		t.Fatal("did not halt")
	}
	for c := 0; c < 2; c++ {
		th := p.ThreadAt(c)
		if th.IntReg(isa.R2) != 3 || th.IntReg(isa.R3) != 20 {
			t.Errorf("ctx %d: R2=%d R3=%d, want 3/20", c, th.IntReg(isa.R2), th.IntReg(isa.R3))
		}
	}
}

func TestSetTrapHandlerUnknownLabel(t *testing.T) {
	th := NewThread("t", trapProgram(t))
	defer func() {
		if recover() == nil {
			t.Error("unknown handler label did not panic")
		}
	}()
	th.SetTrapHandler("nope")
}

func TestTrapRedirectCostsPipelineRefill(t *testing.T) {
	// The trap's control transfer pays the unpredicted-branch redirect.
	fm := mem.New()
	p := MustNewProcessor(DefaultConfig(Single, 1), perfectMem{}, fm)
	th := NewThread("trap", trapProgram(t))
	th.SetTrapHandler("handler")
	p.BindThread(0, th)
	cycles, _ := p.RunUntilHalted(10_000)
	// 9 main+handler instructions + 4 redirects (2 traps + 2 erets) x 3.
	if cycles < 9+4*3 {
		t.Errorf("cycles = %d; traps should pay the redirect penalty", cycles)
	}
}
