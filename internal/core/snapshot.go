package core

import (
	"repro/internal/snapshot"
)

// This file serializes the processor layer for checkpoint/restore.
//
// The contract: restore targets a freshly constructed machine of the
// identical shape — same Config, same programs, threads rebuilt and
// bound to the same context slots by the driver — and a snapshot is
// taken only at a 64-cycle block boundary (between blocks of
// runCancelable / the MP lockstep loop), so the watchdog, cancellation
// and metrics cadences of a restored run are position-identical to an
// uninterrupted one by construction. Derived state is never serialized:
// a thread's decoded-instruction cache comes from its program, the
// processor's completer/idealIF probes from its memory system, and the
// dependency-region memo is dropped (it only short-circuits the Step
// immediately after the NextEvent that computed it, and no Step follows
// a restore without a fresh NextEvent).
//
// Observability state (metrics cursors, event traces) is deliberately
// not serialized: drivers fall back to from-scratch simulation for
// instrumented runs, which Processor.SaveState enforces by panicking —
// forking an observed run silently would truncate its series.

// Section tags for the core layer.
const (
	sectionThread    = 0x54485231 // "THR1"
	sectionProcessor = 0x50524f31 // "PRO1"
	sectionBTB       = 0x42544231 // "BTB1"
)

// SaveState serializes the thread's architectural and accounting state.
// The program itself is not serialized — the restoring driver rebuilds
// threads from the same programs — but the name is, as a shape check.
func (t *Thread) SaveState(w *snapshot.Writer) {
	w.Section(sectionThread)
	w.String(t.Name)
	w.Int(t.PC)
	for _, v := range t.Regs {
		w.U64(v)
	}
	w.Bool(t.Halted)
	w.I64(t.HaltedAt)
	w.Int(t.EPC)
	w.Int(t.TrapHandler)
	w.U32(uint32(t.TrapCode))
	w.I64(t.Retired)
	w.I64(t.Devoted)
	for _, v := range t.regReady {
		w.I64(v)
	}
	for _, v := range t.regStall {
		w.U8(uint8(v))
	}
}

// RestoreState overwrites the thread's mutable state from a snapshot.
// The thread must have been built from the same program (NewThread with
// the same name); decode fails if the name differs.
func (t *Thread) RestoreState(r *snapshot.Reader) {
	r.Section(sectionThread)
	r.ExpectStr("thread name", r.String(), t.Name)
	t.PC = r.Int()
	for i := range t.Regs {
		t.Regs[i] = r.U64()
	}
	t.Halted = r.Bool()
	t.HaltedAt = r.I64()
	t.EPC = r.Int()
	t.TrapHandler = r.Int()
	t.TrapCode = int32(r.U32())
	t.Retired = r.I64()
	t.Devoted = r.I64()
	for i := range t.regReady {
		t.regReady[i] = r.I64()
	}
	for i := range t.regStall {
		t.regStall[i] = SlotClass(r.U8())
	}
}

// saveState serializes the BTB arrays.
func (b *BTB) saveState(w *snapshot.Writer) {
	w.Section(sectionBTB)
	w.U32(b.mask)
	for _, v := range b.tags {
		w.U32(v)
	}
	for _, v := range b.targets {
		w.U32(uint32(v))
	}
	for _, v := range b.valid {
		w.Bool(v)
	}
}

// restoreState overwrites the BTB arrays; geometry must match.
func (b *BTB) restoreState(r *snapshot.Reader) {
	r.Section(sectionBTB)
	r.Expect("BTB mask", int64(r.U32()), int64(b.mask))
	for i := range b.tags {
		b.tags[i] = r.U32()
	}
	for i := range b.targets {
		b.targets[i] = int32(r.U32())
	}
	for i := range b.valid {
		b.valid[i] = r.Bool()
	}
}

// SaveState serializes the processor's pipeline and accounting state:
// clock, context-selection pointers, stall frontiers, functional-unit
// reservations, per-context availability (including the miss-shadow and
// redirect windows and the replay discipline), the BTB, and Stats.
// Thread contents and bindings are the driver's to serialize — the
// driver owns the thread list and knows which thread sits in which
// context slot.
func (p *Processor) SaveState(w *snapshot.Writer) {
	if p.Observed() {
		panic("core: SaveState on an observed processor (drivers must fall back to scratch simulation)")
	}
	w.Section(sectionProcessor)
	// Shape checks: a snapshot must only restore into a processor whose
	// timing-relevant configuration is identical.
	w.U8(uint8(p.Cfg.Scheme))
	w.Int(len(p.ctxs))
	w.Int(p.Cfg.IssueWidth)
	w.Int(p.Cfg.PipelineDepth)

	w.I64(p.cycle)
	w.Int(p.rr)
	w.Int(p.cur)
	w.Int(p.forceNext)
	w.I64(p.ifetchUntil)
	w.Int(p.ifetchCtx)
	w.I64(p.shadowUntil)
	w.Int(p.shadowCtx)
	w.I64(p.stallUntil)
	w.Int(p.stallCtx)
	w.U8(uint8(p.stallCause))
	for _, v := range p.fuFree {
		w.I64(v)
	}
	for _, c := range p.ctxs {
		w.I64(c.availableAt)
		w.U8(uint8(c.availCause))
		w.I64(c.shadowUntil)
		w.I64(c.redirectUntil)
		w.Int(c.replayPC)
	}
	w.Bool(p.btb != nil)
	if p.btb != nil {
		p.btb.saveState(w)
	}
	p.Stats.saveState(w)
}

// RestoreState overwrites the processor's state from a snapshot. The
// driver must already have bound the same threads to the same context
// slots (BindThread resets per-context availability, which this restore
// then overwrites), and must restore thread contents separately.
func (p *Processor) RestoreState(r *snapshot.Reader) {
	r.Section(sectionProcessor)
	r.Expect("scheme", int64(r.U8()), int64(p.Cfg.Scheme))
	r.Expect("contexts", int64(r.Int()), int64(len(p.ctxs)))
	r.Expect("issue width", int64(r.Int()), int64(p.Cfg.IssueWidth))
	r.Expect("pipeline depth", int64(r.Int()), int64(p.Cfg.PipelineDepth))

	p.cycle = r.I64()
	p.rr = r.Int()
	p.cur = r.Int()
	p.forceNext = r.Int()
	p.ifetchUntil = r.I64()
	p.ifetchCtx = r.Int()
	p.shadowUntil = r.I64()
	p.shadowCtx = r.Int()
	p.stallUntil = r.I64()
	p.stallCtx = r.Int()
	p.stallCause = SlotClass(r.U8())
	for i := range p.fuFree {
		p.fuFree[i] = r.I64()
	}
	for _, c := range p.ctxs {
		c.availableAt = r.I64()
		c.availCause = SlotClass(r.U8())
		c.shadowUntil = r.I64()
		c.redirectUntil = r.I64()
		c.replayPC = r.Int()
	}
	hadBTB := r.Bool()
	if r.Err() == nil {
		r.Expect("BTB presence", b2i(hadBTB), b2i(p.btb != nil))
	}
	if hadBTB && p.btb != nil {
		p.btb.restoreState(r)
	}
	p.Stats.restoreState(r)
	// Drop the dependency-region memo: it is only valid for the Step
	// immediately following the NextEvent that computed it.
	p.depTh = nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// saveState serializes the issue-slot accounting.
func (s *Stats) saveState(w *snapshot.Writer) {
	w.I64(s.Cycles)
	for _, v := range s.Slots {
		w.I64(v)
	}
	w.I64(s.Retired)
	w.I64(s.Branches)
	w.I64(s.Mispredicts)
	w.I64(s.MissSwitches)
	w.I64(s.ExplicitSwitches)
	w.I64(s.Backoffs)
}

func (s *Stats) restoreState(r *snapshot.Reader) {
	s.Cycles = r.I64()
	for i := range s.Slots {
		s.Slots[i] = r.I64()
	}
	s.Retired = r.I64()
	s.Branches = r.I64()
	s.Mispredicts = r.I64()
	s.MissSwitches = r.I64()
	s.ExplicitSwitches = r.I64()
	s.Backoffs = r.I64()
}
