package core

// Scheme-specific behavioural tests beyond the cross-check: blocked
// selection discipline, rebinding mid-miss (the OS swap case), backoff
// cause attribution, and the fine-grained scheme's memory behaviour.

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/prog"
)

// TestBlockedRunsToMiss: the blocked scheme must not rotate contexts
// between misses — context 0's instructions run contiguously.
func TestBlockedRunsToMiss(t *testing.T) {
	fm := mem.New()
	p := MustNewProcessor(DefaultConfig(Blocked, 2), perfectMem{}, fm)
	var order []int
	p.Trace = func(ev TraceEvent) {
		if ev.Class == SlotBusy {
			order = append(order, ev.Ctx)
		}
	}
	for i := 0; i < 2; i++ {
		pr := buildProg(t, "w", func(b *prog.Builder) {
			for j := 0; j < 50; j++ {
				b.Add(isa.R2, isa.R3, isa.R4)
			}
			b.Halt()
		})
		p.BindThread(i, NewThread("w", pr))
	}
	if _, done := p.RunUntilHalted(10_000); !done {
		t.Fatal("did not finish")
	}
	// With no misses at all, context 0 must run to completion before
	// context 1 issues anything.
	switches := 0
	for i := 1; i < len(order); i++ {
		if order[i] != order[i-1] {
			switches++
		}
	}
	if switches != 1 {
		t.Errorf("blocked scheme switched %d times with no misses, want 1 (at halt)", switches)
	}
}

// TestInterleavedAlternates: with two compute-bound contexts the
// interleaved scheme alternates every cycle.
func TestInterleavedAlternates(t *testing.T) {
	fm := mem.New()
	p := MustNewProcessor(DefaultConfig(Interleaved, 2), perfectMem{}, fm)
	var order []int
	p.Trace = func(ev TraceEvent) {
		if ev.Class == SlotBusy {
			order = append(order, ev.Ctx)
		}
	}
	for i := 0; i < 2; i++ {
		pr := buildProg(t, "w", func(b *prog.Builder) {
			for j := 0; j < 30; j++ {
				b.Add(isa.R2, isa.R3, isa.R4)
			}
			b.Halt()
		})
		p.BindThread(i, NewThread("w", pr))
	}
	if _, done := p.RunUntilHalted(10_000); !done {
		t.Fatal("did not finish")
	}
	same := 0
	for i := 1; i < len(order)-2; i++ { // tail after one halts alternation stops
		if order[i] == order[i-1] {
			same++
		}
	}
	if same > 2 {
		t.Errorf("interleaved scheme repeated a context %d times while both ran", same)
	}
}

// TestRebindMidMiss: the OS can swap a thread out while its context waits
// on a fill; the new thread must start cleanly and the old one must be
// resumable later with correct semantics.
func TestRebindMidMiss(t *testing.T) {
	fm := mem.New()
	fake := newFakeMem(200)
	p := MustNewProcessor(DefaultConfig(Interleaved, 2), fake, fm)

	misser := buildProg(t, "m", func(b *prog.Builder) {
		b.Lw(isa.R2, isa.R1, 0) // long miss
		b.Addi(isa.R3, isa.R2, 1)
		b.Halt()
	})
	filler := buildProg(t, "f", func(b *prog.Builder) {
		for j := 0; j < 20; j++ {
			b.Addi(isa.R2, isa.R2, 1)
		}
		b.Halt()
	})

	thM := NewThread("m", misser)
	p.BindThread(0, thM)
	p.Run(10) // the miss is outstanding now

	// OS swaps the waiting thread out for a filler.
	thF := NewThread("f", filler)
	p.BindThread(0, thF)
	if _, done := p.RunUntilHalted(1_000); !done {
		t.Fatal("filler did not finish")
	}
	if thF.IntReg(isa.R2) != 20 {
		t.Errorf("filler R2 = %d", thF.IntReg(isa.R2))
	}

	// Swap the misser back: it replays its load and completes.
	fm.StoreW(0, 77)
	p.BindThread(0, thM)
	if _, done := p.RunUntilHalted(2_000); !done {
		t.Fatal("misser did not finish after rebind")
	}
	if thM.IntReg(isa.R2) != 77 || thM.IntReg(isa.R3) != 78 {
		t.Errorf("misser registers = %d, %d", thM.IntReg(isa.R2), thM.IntReg(isa.R3))
	}
}

// TestBackoffCauseAttribution: idle time during a backoff in sync code is
// charged to synchronization; after a divide, to long instruction stall.
func TestBackoffCauseAttribution(t *testing.T) {
	run := func(sync bool) *Stats {
		fm := mem.New()
		p := MustNewProcessor(DefaultConfig(Interleaved, 2), perfectMem{}, fm)
		pr := buildProg(t, "y", func(b *prog.Builder) {
			b.SetYield(prog.YieldBackoff)
			if sync {
				b.SetRegion(isa.RegionSync)
			}
			b.Yield(50)
			b.SetRegion(isa.RegionNormal)
			b.Halt()
		})
		p.BindThread(0, NewThread("y", pr))
		// No second thread: the backoff's idle window is exposed.
		if _, done := p.RunUntilHalted(1_000); !done {
			t.Fatal("did not finish")
		}
		return &p.Stats
	}
	s := run(true)
	if s.Slots[SlotSync] < 40 {
		t.Errorf("sync backoff idle charged %d sync slots, want ~50", s.Slots[SlotSync])
	}
	s = run(false)
	if s.Slots[SlotStallLong] < 40 {
		t.Errorf("compute backoff idle charged %d long-stall slots, want ~50", s.Slots[SlotStallLong])
	}
}

// TestFineGrainedIgnoresCache: the fine-grained scheme pays the fixed
// memory latency even when the timing memory would hit.
func TestFineGrainedIgnoresCache(t *testing.T) {
	fm := mem.New()
	cfg := DefaultConfig(FineGrained, 2)
	p := MustNewProcessor(cfg, perfectMem{}, fm)
	pr := buildProg(t, "lseq", func(b *prog.Builder) {
		for i := 0; i < 10; i++ {
			b.Lw(isa.R2, isa.R1, int32(4*i))
			b.Add(isa.R3, isa.R2, isa.R2) // dependent: exposes the latency
		}
		b.Halt()
	})
	p.BindThread(0, NewThread("lseq", pr))
	cycles, done := p.RunUntilHalted(10_000)
	if !done {
		t.Fatal("did not finish")
	}
	if cycles < 10*int64(cfg.FineGrainedMemLatency) {
		t.Errorf("fine-grained took %d cycles; must pay ~%d per load",
			cycles, cfg.FineGrainedMemLatency)
	}
}

// TestWAWStall: a long-latency write followed by a short write to the same
// register must not complete out of order (the scoreboard stalls).
func TestWAWStall(t *testing.T) {
	fm := mem.New()
	pr := buildProg(t, "waw", func(b *prog.Builder) {
		a := b.Alloc(16, 8)
		b.InitF(a, 8.0)
		b.InitF(a+8, 2.0)
		b.La(isa.R1, a)
		b.Fld(isa.F1, isa.R1, 0)
		b.Fld(isa.F2, isa.R1, 8)
		b.FDivD(isa.F3, isa.F1, isa.F2) // F3 = 4.0, ready in 61 cycles
		b.FAdd(isa.F3, isa.F1, isa.F2)  // WAW on F3: F3 = 10.0
		b.Fsd(isa.F3, isa.R1, 0)
		b.Halt()
	})
	pr.LoadInit(fm)
	p := MustNewProcessor(DefaultConfig(Single, 1), perfectMem{}, fm)
	p.BindThread(0, NewThread("waw", pr))
	if _, done := p.RunUntilHalted(10_000); !done {
		t.Fatal("did not finish")
	}
	if got := fm.LoadD(uint32(pr.Init[0].Addr)); got != 0x4024000000000000 { // 10.0
		t.Errorf("WAW result bits = %#x, want 10.0", got)
	}
}

// TestJalJr exercises call/return through the link register.
func TestJalJr(t *testing.T) {
	fm := mem.New()
	pr := buildProg(t, "call", func(b *prog.Builder) {
		b.Li(isa.R2, 0)
		b.Jal("fn")
		b.Jal("fn")
		b.Halt()
		b.Label("fn")
		b.Addi(isa.R2, isa.R2, 5)
		b.Jr(isa.R31)
	})
	p := MustNewProcessor(DefaultConfig(Single, 1), perfectMem{}, fm)
	th := NewThread("call", pr)
	p.BindThread(0, th)
	if _, done := p.RunUntilHalted(10_000); !done {
		t.Fatal("did not finish")
	}
	if th.IntReg(isa.R2) != 10 {
		t.Errorf("R2 = %d, want 10 (two calls)", th.IntReg(isa.R2))
	}
}

// TestDevotedCyclesConserved: per-thread attributed cycles sum to the
// cycles the processor actually spent (when all slots have an owner).
func TestDevotedCyclesConserved(t *testing.T) {
	fm := mem.New()
	p := MustNewProcessor(DefaultConfig(Interleaved, 2), newFakeMem(30), fm)
	var ths []*Thread
	for i := 0; i < 2; i++ {
		th := NewThread("s", sumProgram(t, 300, uint32(0x100000+64*i)))
		ths = append(ths, th)
		p.BindThread(i, th)
	}
	if _, done := p.RunUntilHalted(100_000); !done {
		t.Fatal("did not finish")
	}
	var devoted int64
	for _, th := range ths {
		devoted += th.Devoted
	}
	// All cycles belong to someone except the trailing idle after both
	// halt (RunUntilHalted stops at the check granularity).
	if devoted < p.Stats.Cycles-int64(p.Stats.Slots[SlotIdle])-2 || devoted > p.Stats.Cycles {
		t.Errorf("devoted sum = %d, cycles = %d, idle = %d",
			devoted, p.Stats.Cycles, p.Stats.Slots[SlotIdle])
	}
}
