// Package core implements the paper's contribution: a cycle-accurate,
// issue-slot model of a multiple-context processor pipeline supporting the
// single-context, blocked, interleaved and fine-grained context-selection
// schemes.
//
// One instruction issue slot exists per cycle. Every cycle is accounted to
// exactly one slot class, which is how the paper's utilization breakdowns
// (Figures 6-9) are produced: busy, instruction stall (short/long),
// instruction-cache stall, data-memory stall, synchronization, and
// context-switch overhead.
package core

// SlotClass says how one issue slot (cycle) was spent.
type SlotClass uint8

// Slot classes.
const (
	// SlotBusy: a useful application instruction issued.
	SlotBusy SlotClass = iota
	// SlotSyncBusy: an instruction from synchronization-library code
	// issued (charged to the synchronization category in the MP
	// breakdowns).
	SlotSyncBusy
	// SlotStallShort: pipeline dependency or FU conflict of at most
	// four cycles (paper's "short" instruction stall).
	SlotStallShort
	// SlotStallLong: longer pipeline dependency (divides etc.).
	SlotStallLong
	// SlotICache: stalled on an instruction-cache miss (blocking I-cache).
	SlotICache
	// SlotDMem: stalled with all contexts waiting on data memory or the
	// TLB ("Data Cache/TLB" in Figures 6-7, "Memory" in Figures 8-9).
	SlotDMem
	// SlotSync: stalled on synchronization (spin-wait backoff or a miss
	// inside sync code).
	SlotSync
	// SlotSwitch: context-switch overhead — squashed or shadowed slots
	// of a miss, or the cost of an explicit switch/backoff instruction.
	SlotSwitch
	// SlotIdle: no runnable thread bound to any context.
	SlotIdle

	// NumSlotClasses is the number of slot classes.
	NumSlotClasses = iota
)

var slotNames = [NumSlotClasses]string{
	"busy", "sync-busy", "stall-short", "stall-long",
	"icache", "dmem", "sync", "switch", "idle",
}

func (c SlotClass) String() string {
	if int(c) < len(slotNames) {
		return slotNames[c]
	}
	return "slot(?)"
}

// Stats accumulates per-processor accounting.
type Stats struct {
	Cycles  int64
	Slots   [NumSlotClasses]int64
	Retired int64 // useful instructions completed (including sync code)

	Branches    int64
	Mispredicts int64

	MissSwitches     int64 // context unavailability events due to data misses
	ExplicitSwitches int64 // SWITCH instructions executed
	Backoffs         int64 // BACKOFF instructions executed
}

// TotalSlots is the number of issue slots accounted (equal to Cycles on
// the paper's single-issue processor; Cycles × width with superscalar
// issue).
func (s *Stats) TotalSlots() int64 {
	var total int64
	for _, v := range s.Slots {
		total += v
	}
	return total
}

// BusyFraction is the fraction of issue slots spent on useful instructions
// (the number printed atop the bars in Figures 6 and 7).
func (s *Stats) BusyFraction() float64 {
	total := s.TotalSlots()
	if total == 0 {
		return 0
	}
	return float64(s.Slots[SlotBusy]+s.Slots[SlotSyncBusy]) / float64(total)
}

// Fraction returns the share of issue slots in class c.
func (s *Stats) Fraction(c SlotClass) float64 {
	total := s.TotalSlots()
	if total == 0 {
		return 0
	}
	return float64(s.Slots[c]) / float64(total)
}

// IPC is retired instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Retired) / float64(s.Cycles)
}

// Add accumulates o into s.
func (s *Stats) Add(o *Stats) {
	s.Cycles += o.Cycles
	for i := range s.Slots {
		s.Slots[i] += o.Slots[i]
	}
	s.Retired += o.Retired
	s.Branches += o.Branches
	s.Mispredicts += o.Mispredicts
	s.MissSwitches += o.MissSwitches
	s.ExplicitSwitches += o.ExplicitSwitches
	s.Backoffs += o.Backoffs
}

// Breakdown maps the fine-grained slot classes onto the paper's reporting
// categories.
type Breakdown struct {
	Busy       float64 // useful issue
	InstrShort float64 // short pipeline-dependency stalls
	InstrLong  float64 // long pipeline-dependency stalls
	InstCache  float64 // I-cache stalls (uniprocessor figures)
	DataMem    float64 // data cache / TLB / memory stalls
	Sync       float64 // synchronization (MP figures)
	Switch     float64 // context-switch overhead
	Idle       float64 // unbound contexts
}

// Breakdown computes the category fractions.
func (s *Stats) Breakdown() Breakdown {
	return Breakdown{
		Busy:       s.Fraction(SlotBusy),
		InstrShort: s.Fraction(SlotStallShort),
		InstrLong:  s.Fraction(SlotStallLong),
		InstCache:  s.Fraction(SlotICache),
		DataMem:    s.Fraction(SlotDMem),
		Sync:       s.Fraction(SlotSync) + s.Fraction(SlotSyncBusy),
		Switch:     s.Fraction(SlotSwitch),
		Idle:       s.Fraction(SlotIdle),
	}
}
