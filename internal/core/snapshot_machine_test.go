package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/guard"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/snapshot"
)

// These tests pin the core-layer snapshot property: Save → Restore into
// a fresh machine → run N blocks is byte-identical to the uninterrupted
// run, at arbitrary 64-cycle block boundaries, for every scheme, with
// fast-forward on or off and chaos on or off. The machine here is the
// bare uniprocessor (processor + hierarchy + functional memory); the
// workstation and mp packages test their drivers' own checkpoints.

type uniMachine struct {
	proc    *Processor
	h       *cache.Hierarchy
	fm      *mem.Memory
	threads []*Thread
}

func buildStallMachine(t *testing.T, scheme Scheme, nctx int, noFF bool, chaosSeed int64) *uniMachine {
	t.Helper()
	params := cache.DefaultParams()
	if chaosSeed != 0 {
		params.Chaos = guard.Options{ChaosSeed: chaosSeed}.NewChaos()
	}
	h := cache.MustNewHierarchy(params)
	fm := mem.New()
	pr := stallProg(t)
	pr.LoadInit(fm)
	cfg := DefaultConfig(scheme, nctx)
	cfg.NoFastForward = noFF
	p := MustNewProcessor(cfg, h, fm)
	m := &uniMachine{proc: p, h: h, fm: fm}
	for i := 0; i < nctx; i++ {
		th := NewThread(fmt.Sprintf("t%d", i), pr)
		th.SetIntReg(isa.R4, uint32(i))
		p.BindThread(i, th)
		m.threads = append(m.threads, th)
	}
	return m
}

func (m *uniMachine) save() []byte {
	w := snapshot.NewWriter()
	for _, th := range m.threads {
		th.SaveState(w)
	}
	m.proc.SaveState(w)
	m.h.SaveState(w)
	m.fm.SaveState(w)
	return w.Bytes()
}

func (m *uniMachine) restore(t *testing.T, data []byte) {
	t.Helper()
	r := snapshot.NewReader(data)
	for _, th := range m.threads {
		th.RestoreState(r)
	}
	m.proc.RestoreState(r)
	m.h.RestoreState(r)
	m.fm.RestoreState(r)
	if err := snapshot.Finish(r); err != nil {
		t.Fatalf("restore: %v", err)
	}
}

func (m *uniMachine) outcome() ffOutcome {
	out := ffOutcome{
		cycles:     m.proc.Now(),
		halted:     m.proc.AllHalted(),
		stats:      m.proc.Stats,
		memHash:    m.fm.Hash(),
		cacheStats: m.h.Stats,
	}
	out.archHash = out.memHash
	for _, th := range m.threads {
		out.archHash = th.HashArchState(out.archHash)
	}
	return out
}

const uniRunLimit = 10_000_000

func TestSnapshotRestoreAtBlockBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, scheme := range []Scheme{Single, Blocked, BlockedFast, Interleaved, FineGrained} {
		nctx := 4
		if scheme == Single {
			nctx = 1
		}
		for _, noFF := range []bool{false, true} {
			for _, chaosSeed := range []int64{0, 77} {
				name := fmt.Sprintf("%v/noFF=%v/chaos=%d", scheme, noFF, chaosSeed)
				t.Run(name, func(t *testing.T) {
					ref := buildStallMachine(t, scheme, nctx, noFF, chaosSeed)
					if _, halted, err := ref.proc.RunGuardedCtx(nil, uniRunLimit, guard.Options{}); err != nil || !halted {
						t.Fatalf("reference run: halted=%v err=%v", halted, err)
					}
					want := ref.outcome()

					at := 64 * (1 + rng.Int63n(want.cycles/64-1))
					a := buildStallMachine(t, scheme, nctx, noFF, chaosSeed)
					if _, halted, err := a.proc.RunGuardedCtx(nil, at, guard.Options{}); err != nil || halted {
						t.Fatalf("prefix run to %d: halted=%v err=%v", at, halted, err)
					}
					ckpt := a.save()

					b := buildStallMachine(t, scheme, nctx, noFF, chaosSeed)
					b.restore(t, ckpt)
					// Restore fidelity: re-serializing the restored machine
					// must reproduce the checkpoint byte-for-byte, and the
					// layer hashes must agree with the source machine.
					if !bytes.Equal(b.save(), ckpt) {
						t.Fatal("restored machine re-serializes differently")
					}
					if b.h.Hash() != a.h.Hash() {
						t.Fatal("hierarchy hash differs after restore")
					}
					if b.proc.MachineHash() != a.proc.MachineHash() {
						t.Fatal("machine hash differs after restore")
					}

					for _, m := range []*uniMachine{a, b} {
						if _, halted, err := m.proc.RunGuardedCtx(nil, uniRunLimit, guard.Options{}); err != nil || !halted {
							t.Fatalf("continuation: halted=%v err=%v", halted, err)
						}
					}
					if got := a.outcome(); got != want {
						t.Errorf("interrupted run diverges from uninterrupted at boundary %d:\n got %+v\nwant %+v", at, got, want)
					}
					if got := b.outcome(); got != want {
						t.Errorf("restored run diverges from uninterrupted at boundary %d:\n got %+v\nwant %+v", at, got, want)
					}
				})
			}
		}
	}
}

// TestBlockHookCheckpoint drives the per-block hook: a checkpoint
// captured from inside RunGuardedCtx (between guard chunks) restores
// into a run indistinguishable from the uninterrupted one.
func TestBlockHookCheckpoint(t *testing.T) {
	ref := buildStallMachine(t, Interleaved, 4, false, 5)
	if _, halted, err := ref.proc.RunGuardedCtx(nil, uniRunLimit, guard.Options{}); err != nil || !halted {
		t.Fatalf("reference run: halted=%v err=%v", halted, err)
	}
	want := ref.outcome()

	a := buildStallMachine(t, Interleaved, 4, false, 5)
	var ckpt []byte
	var capturedAt int64
	a.proc.BlockHook = func(now int64) {
		if ckpt == nil && now >= 4096 && !a.proc.AllHalted() {
			capturedAt = now
			a.proc.BlockHook = nil // one capture is enough
			ckpt = a.save()
		}
	}
	if _, halted, err := a.proc.RunGuardedCtx(nil, uniRunLimit, guard.Options{}); err != nil || !halted {
		t.Fatalf("hooked run: halted=%v err=%v", halted, err)
	}
	if ckpt == nil {
		t.Fatal("hook never captured a checkpoint")
	}
	if capturedAt%64 != 0 {
		t.Fatalf("hook fired off the block grid: cycle %d", capturedAt)
	}
	if got := a.outcome(); got != want {
		t.Errorf("hooked run diverges from uninterrupted run")
	}

	b := buildStallMachine(t, Interleaved, 4, false, 5)
	b.restore(t, ckpt)
	if b.proc.Now() != capturedAt {
		t.Fatalf("restored clock = %d, want %d", b.proc.Now(), capturedAt)
	}
	if _, halted, err := b.proc.RunGuardedCtx(nil, uniRunLimit, guard.Options{}); err != nil || !halted {
		t.Fatalf("restored run: halted=%v err=%v", halted, err)
	}
	if got := b.outcome(); got != want {
		t.Errorf("run restored from the block hook diverges from the uninterrupted run")
	}
}
