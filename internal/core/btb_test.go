package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBTBBasic(t *testing.T) {
	b := NewBTB(16)
	if _, hit := b.Lookup(0x1000); hit {
		t.Error("fresh BTB should miss")
	}
	b.Record(0x1000, true, 42)
	if tgt, hit := b.Lookup(0x1000); !hit || tgt != 42 {
		t.Errorf("lookup = %d,%v", tgt, hit)
	}
	// Not-taken resolution evicts the entry.
	b.Record(0x1000, false, 0)
	if _, hit := b.Lookup(0x1000); hit {
		t.Error("not-taken branch should evict its entry")
	}
}

func TestBTBConflict(t *testing.T) {
	b := NewBTB(16)
	// PCs 16 instructions apart share a slot.
	b.Record(0x1000, true, 1)
	b.Record(0x1000+16*4, true, 2)
	if _, hit := b.Lookup(0x1000); hit {
		t.Error("conflicting entry should have displaced the first")
	}
	if tgt, hit := b.Lookup(0x1000 + 16*4); !hit || tgt != 2 {
		t.Error("second entry lost")
	}
}

func TestBTBTagDisambiguation(t *testing.T) {
	// A hit must verify the full PC, not just the index.
	b := NewBTB(16)
	b.Record(0x1000, true, 7)
	if _, hit := b.Lookup(0x1000 + 16*4); hit {
		t.Error("aliasing PC must not hit another branch's entry")
	}
}

func TestBTBBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two BTB accepted")
		}
	}()
	NewBTB(12)
}

// Property: after recording a taken branch, looking up the same PC hits
// with the recorded target (no interference from non-conflicting records).
func TestQuickBTBRecall(t *testing.T) {
	b := NewBTB(2048)
	f := func(pc uint32, target int32, otherPC uint32) bool {
		pc &^= 3
		otherPC &^= 3
		b.Record(pc, true, target)
		if (otherPC>>2)&2047 != (pc>>2)&2047 {
			b.Record(otherPC, true, target+1)
		}
		got, hit := b.Lookup(pc)
		return hit && got == target
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Error(err)
	}
}
