package core

import "testing"

func TestStatsFractions(t *testing.T) {
	s := Stats{Cycles: 100}
	s.Slots[SlotBusy] = 50
	s.Slots[SlotSyncBusy] = 10
	s.Slots[SlotStallShort] = 15
	s.Slots[SlotStallLong] = 5
	s.Slots[SlotDMem] = 10
	s.Slots[SlotSwitch] = 10
	if got := s.BusyFraction(); got != 0.6 {
		t.Errorf("busy fraction = %v, want 0.6", got)
	}
	if got := s.Fraction(SlotSwitch); got != 0.1 {
		t.Errorf("switch fraction = %v", got)
	}
	bd := s.Breakdown()
	if bd.Busy != 0.5 || bd.Sync != 0.1 || bd.InstrShort != 0.15 {
		t.Errorf("breakdown = %+v", bd)
	}
	// The breakdown must partition.
	sum := bd.Busy + bd.InstrShort + bd.InstrLong + bd.InstCache + bd.DataMem + bd.Sync + bd.Switch + bd.Idle
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("breakdown sums to %v", sum)
	}
}

func TestStatsZeroCycles(t *testing.T) {
	var s Stats
	if s.BusyFraction() != 0 || s.IPC() != 0 || s.Fraction(SlotBusy) != 0 {
		t.Error("zero-cycle stats must report zero rates")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Cycles: 10, Retired: 5, Branches: 2, Mispredicts: 1, MissSwitches: 3}
	a.Slots[SlotBusy] = 5
	b := Stats{Cycles: 20, Retired: 8, Branches: 4, Backoffs: 2, ExplicitSwitches: 1}
	b.Slots[SlotBusy] = 8
	a.Add(&b)
	if a.Cycles != 30 || a.Retired != 13 || a.Slots[SlotBusy] != 13 ||
		a.Branches != 6 || a.Mispredicts != 1 || a.MissSwitches != 3 ||
		a.Backoffs != 2 || a.ExplicitSwitches != 1 {
		t.Errorf("Add result wrong: %+v", a)
	}
}

func TestSlotClassNames(t *testing.T) {
	for c := SlotClass(0); int(c) < NumSlotClasses; c++ {
		if c.String() == "" || c.String() == "slot(?)" {
			t.Errorf("slot class %d unnamed", c)
		}
	}
}

func TestSchemeNames(t *testing.T) {
	for s := Scheme(0); int(s) < NumSchemes; s++ {
		if s.String() == "" || s.String() == "scheme(?)" {
			t.Errorf("scheme %d unnamed", s)
		}
	}
	if Scheme(200).String() != "scheme(?)" {
		t.Error("out-of-range scheme name")
	}
}
