package core

import (
	"math"

	"repro/internal/isa"
)

// This file is the event-driven stall fast-forward engine. The paper's
// grids simulate tens of millions of cycles per cell, and most of those
// cycles do nothing but charge an issue slot to a stall class while every
// context waits on a memory fill. Stepping such cycles one at a time is
// O(cycles); this engine recognizes them, computes the next cycle at
// which anything can change ("the next event"), and bulk-advances the
// clock in O(1), charging the skipped slots to exactly the class and
// context issueSlot would have picked one cycle at a time.
//
// Why this is exact and not approximate:
//
//   - The memory systems (cache.Hierarchy, coherence.Node) are pull-based:
//     fills install, NAK retries resolve, TLB holds expire and chaos
//     latency draws happen inside AccessData/FetchInst calls. A cycle in
//     which no context can issue performs no such call, so skipping it
//     leaves the memory system bit-identical.
//   - A skippable ("boring") cycle's issueSlot reduces to a single
//     count(now, cls, ctx) whose (cls, ctx) is constant across the whole
//     region: the stall frontiers carry their own cause/context, and
//     idleCause depends only on availableAt/availCause fields that no
//     boring cycle mutates.
//   - Any cycle in which a context is selectable is NOT boring — even if
//     the instruction would immediately stall on a dependency or a busy
//     functional unit — because issueSlot then calls FetchInst (which
//     counts the fetch) and mutates the round-robin pointer. Those cycles
//     run through Step as before; fuFree therefore never needs to appear
//     in the event computation.
//
// The equivalence tests (fastforward_test.go, mp/fastforward_test.go)
// assert Stats / memory-hash / arch-hash identity against NoFastForward
// runs for every scheme, uni and MP, with watchdog and chaos enabled.

// NextEvent classifies the processor's current cycle. If the returned
// until is <= Now(), the cycle may do real work and must be executed with
// Step. Otherwise every cycle in [Now(), until) is provably a pure stat
// charge of (cls, ctx) — SkipTo(until, cls, ctx) advances past them in
// O(1). until may be math.MaxInt64 when nothing will ever wake the
// processor (all threads halted or unbound); callers bound it by their
// cycle budget.
func (p *Processor) NextEvent() (cls SlotClass, ctx int, until int64) {
	now := p.cycle
	if p.Cfg.NoFastForward || p.Trace != nil {
		// Tracing observes every cycle individually, so nothing is boring.
		return SlotIdle, -1, now
	}
	// Processor-wide stall frontiers, in issueSlot's precedence order.
	// Each region charges its own cause/context; a later frontier may
	// start inside an earlier one, so only the nearest end is skippable.
	switch {
	case now < p.ifetchUntil:
		return SlotICache, p.ifetchCtx, p.boundEvent(p.ifetchUntil)
	case now < p.shadowUntil:
		return SlotSwitch, p.shadowCtx, p.boundEvent(p.shadowUntil)
	case now < p.stallUntil:
		return p.stallCause, p.stallCtx, p.boundEvent(p.stallUntil)
	}
	// Selection phase. A pending forced fetch makes the very next cycle
	// interesting (selectContext consumes it).
	if p.forceNext >= 0 {
		return SlotIdle, -1, now
	}
	// Monopolizing schemes over a pure instruction fetch: while the single
	// context (Single) or the committed current context (Blocked) is
	// available, selectContext returns it without touching rr/cur, the
	// ideal I-cache makes the re-fetch of its stalled instruction free and
	// stateless, and depStall/fuFree read only state nothing can mutate
	// while this context monopolizes the pipeline. Its interlock and
	// functional-unit stalls are therefore skippable regions — on the MP's
	// dependency-bound kernels these are the majority of all slots.
	scheme := p.Cfg.Scheme
	if p.idealIF && (scheme == Single || ((scheme == Blocked || scheme == BlockedFast) && p.cur >= 0)) {
		c := p.ctxs[0]
		if scheme != Single {
			c = p.ctxs[p.cur]
		}
		if c.runnable() && c.availableAt <= now {
			return p.interlockRegion(c, now)
		}
		if scheme != Single {
			// The monopoly just broke (current context became unavailable
			// or halted): the next selectContext mutates rr/cur. Step it.
			return SlotIdle, -1, now
		}
	} else if p.cur >= 0 {
		// Blocked-scheme current context over a counting I-cache: every
		// cycle re-fetches (and re-counts), so nothing is skippable.
		return SlotIdle, -1, now
	}
	shadowSelects := scheme == Interleaved || scheme == FineGrained
	wake := int64(math.MaxInt64)
	for _, c := range p.ctxs {
		if !c.runnable() {
			continue
		}
		if c.availableAt <= now || (shadowSelects && c.shadowUntil > now) {
			return SlotIdle, -1, now
		}
		if c.availableAt < wake {
			wake = c.availableAt
		}
	}
	// No context selectable before wake: idle region. idleCause reads only
	// availableAt/availCause, which nothing mutates until then.
	cls, ctx = p.idleCause()
	return cls, ctx, p.boundEvent(wake)
}

// interlockRegion classifies the cycle of a monopolizing, available
// context c over an ideal instruction fetch, mirroring issueSlot's
// post-selection cascade exactly: per-context shadow, fetch redirect,
// dependency interlock (depRegion, whose sub-region boundaries are the
// hazard-clear cycles), then a functional-unit conflict — which splits
// into a long-stall and a short-stall piece at the LongLatencyThreshold
// crossing, because stallClass recharges by remaining length each cycle.
// until == now means the instruction really issues this cycle.
func (p *Processor) interlockRegion(c *hwContext, now int64) (cls SlotClass, ctx int, until int64) {
	if now < c.shadowUntil {
		return SlotSwitch, c.idx, p.boundEvent(c.shadowUntil)
	}
	if now < c.redirectUntil {
		return SlotStallShort, c.idx, p.boundEvent(c.redirectUntil)
	}
	th := c.thread
	in := &th.insts[th.PC]
	dcls, duntil := depRegion(th, in, now)
	p.depTh, p.depPC, p.depCycle, p.depCls, p.depUntil = th, th.PC, now, dcls, duntil
	if duntil > now {
		return dcls, c.idx, p.boundEvent(duntil)
	}
	if tm := in.TM; tm.Unit != isa.UnitNone && p.fuFree[tm.Unit] > now {
		free := p.fuFree[tm.Unit]
		if in.Region == isa.RegionSync {
			return SlotSync, c.idx, p.boundEvent(free)
		}
		if b := free - int64(isa.LongLatencyThreshold); now < b {
			return SlotStallLong, c.idx, p.boundEvent(b)
		}
		return SlotStallShort, c.idx, p.boundEvent(free)
	}
	return SlotIdle, -1, now
}

// boundEvent caps a skip target by the memory system's earliest in-flight
// completion when the system has not declared pull-based timing
// (memsys.Completer.PullBasedTiming). For pull-based systems — both real
// ones here — completions matter to the core only through
// availableAt/regReady values fixed when the stall began, so the cap
// would merely chop long skips into completion-sized pieces: on a
// multiprocessor saturating its miss registers, the inter-fill gap across
// all nodes is a few cycles, and capping there forfeits nearly the whole
// win. The conservative path stays for any future memory system with
// push-based machinery (and is pinned by its own equivalence test).
func (p *Processor) boundEvent(until int64) int64 {
	if p.capCompletions {
		if e := p.completer.NextCompletion(p.cycle); e > p.cycle && e < until {
			until = e
		}
	}
	return until
}

// SkipTo bulk-advances the clock from Now() to target, charging every
// skipped issue slot to (cls, ctx) — the charge NextEvent reported for
// the region. Calling it with a (target, cls, ctx) not obtained from
// NextEvent breaks cycle accounting.
//
// SkipTo is deliberately branch-free with respect to observability so
// the fast-forward loops can inline it: when Observed() is true, callers
// must route skips through ObservedSkipTo instead (metrics.go), or the
// skipped region never reaches the event trace and counter series. The
// golden fast-forward-identity tests catch a missed dispatch.
func (p *Processor) SkipTo(target int64, cls SlotClass, ctx int) {
	n := target - p.cycle
	if n <= 0 {
		return
	}
	width := int64(p.Cfg.IssueWidth)
	if width < 1 {
		width = 1
	}
	p.cycle = target
	p.Stats.Cycles += n
	p.Stats.Slots[cls] += n * width
	if ctx >= 0 {
		if th := p.ctxs[ctx].thread; th != nil {
			th.Devoted += n * width
		}
	}
}
