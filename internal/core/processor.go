package core

import (
	"fmt"
	"math"

	"repro/internal/guard"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/memsys"
	"repro/internal/metrics"
)

// Scheme selects the context-multiplexing policy (paper §2-3).
type Scheme uint8

// Schemes.
const (
	// Single is the single-context baseline: one thread, lockup-free
	// data cache, stalls exposed through the scoreboard.
	Single Scheme = iota
	// Blocked runs one context until a cache miss, then flushes the
	// pipeline (switch cost = pipeline depth) and switches (§2.2).
	Blocked
	// BlockedFast is the pipeline-register-replication variant of the
	// blocked scheme with a one-cycle switch (§2.2's "brute force"
	// design point, used for ablation).
	BlockedFast
	// Interleaved issues round-robin from all available contexts each
	// cycle and squashes only the faulting context's instructions on a
	// miss (§3, the paper's proposal).
	Interleaved
	// FineGrained is the HEP-style baseline (§2.1): cycle-by-cycle
	// switching, but no data cache (every reference pays memory
	// latency) and one instruction per context in the pipeline.
	FineGrained

	// NumSchemes is the number of schemes.
	NumSchemes = iota
)

var schemeNames = [NumSchemes]string{"single", "blocked", "blocked-fast", "interleaved", "fine-grained"}

func (s Scheme) String() string {
	if int(s) < len(schemeNames) {
		return schemeNames[s]
	}
	return "scheme(?)"
}

// Config parameterizes a processor.
type Config struct {
	Scheme   Scheme
	Contexts int

	// PipelineDepth is the integer pipeline depth (7: IF1 IF2 RF EX DF1
	// DF2 WB). A data miss is detected in WB, so the miss shadow — the
	// slots wasted between a miss issuing and being detected — spans
	// PipelineDepth slots.
	PipelineDepth int

	// MispredictPenalty is the fetch-redirect cost of a mispredicted
	// branch (3: resolution in EX).
	MispredictPenalty int

	// ExplicitSwitchCost is the blocked scheme's SWITCH instruction cost
	// (3, Table 4). The interleaved BACKOFF costs its own slot (1).
	ExplicitSwitchCost int

	// BTBEntries sizes the branch target buffer (2048). Zero disables
	// branch prediction (every taken branch pays the redirect).
	BTBEntries int

	// BlockedFlushCost, when positive, overrides the blocked scheme's
	// miss-switch cost (normally the pipeline depth; 1 for BlockedFast).
	// Used by the switch-cost sensitivity sweep.
	BlockedFlushCost int

	// IssueWidth is the number of issue slots per cycle (default 1, the
	// paper's processor). Values above 1 model the paper's §7 discussion
	// of combining multiple contexts with superscalar issue: each cycle
	// up to IssueWidth instructions issue, round-robin across available
	// contexts (and back-to-back from one context when it is alone and
	// its instructions are independent).
	IssueWidth int

	// FineGrainedMemLatency is the fixed memory latency of the
	// fine-grained scheme, which supports no data cache.
	FineGrainedMemLatency int

	// NoFastForward disables the event-driven stall fast-forward
	// (fastforward.go) and steps every cycle individually. The results
	// are identical either way — the equivalence tests assert it — so
	// this exists for those tests and for benchmarking the skip engine
	// itself.
	NoFastForward bool
}

// DefaultConfig returns the paper's processor with the given scheme and
// context count.
func DefaultConfig(s Scheme, contexts int) Config {
	return Config{
		Scheme:                s,
		Contexts:              contexts,
		PipelineDepth:         7,
		MispredictPenalty:     3,
		ExplicitSwitchCost:    3,
		BTBEntries:            2048,
		FineGrainedMemLatency: 34,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Contexts < 1:
		return fmt.Errorf("core: need at least one context")
	case c.Scheme == Single && c.Contexts != 1:
		return fmt.Errorf("core: single scheme requires exactly one context")
	case int(c.Scheme) >= NumSchemes:
		return fmt.Errorf("core: unknown scheme %d", c.Scheme)
	case c.PipelineDepth < 2:
		return fmt.Errorf("core: pipeline depth too small")
	case c.BTBEntries != 0 && c.BTBEntries&(c.BTBEntries-1) != 0:
		return fmt.Errorf("core: BTB entries must be zero or a power of two")
	case c.IssueWidth < 0 || c.IssueWidth > 8:
		return fmt.Errorf("core: issue width %d out of range [0,8]", c.IssueWidth)
	}
	return nil
}

// hwContext is one hardware context (replicated PC/EPC/register state per
// paper §6; here: a binding slot for a Thread plus availability state).
type hwContext struct {
	idx    int
	thread *Thread

	// availableAt: the context may issue at or after this cycle.
	availableAt int64
	// availCause: what idle slots are charged to while unavailable.
	availCause SlotClass
	// shadowUntil: miss-shadow window; the context's issue slots before
	// this cycle are charged to context-switch overhead (interleaved
	// selective squash).
	shadowUntil int64
	// redirectUntil: fetch redirect after a mispredicted branch; the
	// context cannot issue before this cycle.
	redirectUntil int64
	// replayPC, when >= 0, is the PC of a memory instruction whose miss
	// already flushed this context. If its replay misses again (the line
	// was NAKed or stolen), the context just re-sleeps: the MSHR retries
	// in hardware; the pipeline holds nothing of this context to flush.
	replayPC int
}

func (c *hwContext) runnable() bool {
	return c.thread != nil && !c.thread.Halted
}

// TraceEvent describes how one cycle was spent; the pipeview tool renders
// sequences of these as Figure 2/3-style timelines.
type TraceEvent struct {
	Cycle int64
	Ctx   int // issuing context, -1 if none
	Class SlotClass
	PC    int
	Inst  string // disassembly, set only for issued instructions
}

// Processor is one multiple-context processor pipeline.
type Processor struct {
	Cfg  Config
	Mem  memsys.System // timing memory system
	FMem *mem.Memory   // functional memory (shared across MP nodes)

	// ID is the processor's index in a multiprocessor (0 on a
	// workstation); it only attributes diagnostics and errors.
	ID int

	ctxs []*hwContext
	btb  *BTB

	cycle int64
	rr    int // interleaved round-robin pointer
	cur   int // blocked current context, -1 if none
	// forceNext makes the named context issue first after a blocking
	// I-cache miss resolves: the stalled fetch completes before any other
	// context can conflict-evict the just-filled line.
	forceNext int

	// Processor-wide stall frontiers, each with the context that caused
	// it (for per-thread cycle attribution).
	ifetchUntil int64 // blocking I-cache miss
	ifetchCtx   int
	shadowUntil int64 // blocked-scheme flush / explicit switch cost
	shadowCtx   int
	stallUntil  int64 // single-context structural stall (TLB refill etc.)
	stallCtx    int
	stallCause  SlotClass

	fuFree [isa.NumUnits]int64

	// completer is Mem's memsys.Completer view when it has one, resolved
	// once at construction. capCompletions records whether the memory
	// system declined to declare pull-based timing, in which case the
	// fast-forward engine conservatively bounds every skip by the earliest
	// in-flight completion.
	completer      memsys.Completer
	capCompletions bool

	// idealIF records that Mem's instruction fetch is pure (the MP's
	// ideal I-cache), which lets the fast-forward engine skip dependency
	// and functional-unit stall regions on monopolizing schemes.
	idealIF bool

	// Memo of the last depRegion classification, so the Step immediately
	// following the NextEvent that computed it does not redo the hazard
	// walk. Valid only for (depTh, depPC) at cycle depCycle; execute
	// clears depTh because issuing writes the scoreboard.
	depTh    *Thread
	depPC    int
	depCycle int64
	depCls   SlotClass
	depUntil int64

	Stats Stats
	Trace func(TraceEvent) // optional per-cycle hook
	// MemWatch, if set, observes every retired word-width memory
	// operation (functional value flow); used by tests to audit
	// synchronization protocols.
	MemWatch func(op isa.Op, addr, value uint32, ctx int, now int64)
	// SwitchWatch, if set, observes every context-switch decision
	// (explicit SWITCH/BACKOFF and miss-induced switches) with the cycle
	// it was taken and the context switching away. Differential testing
	// hashes architectural state here; the hook fires at the same cycles
	// with fast-forward on or off, so chains are comparable across modes.
	SwitchWatch func(now int64, ctx int)
	// BlockHook, if set, is invoked by RunGuardedCtx between guard
	// chunks (multiples of the 64-cycle block) with the current cycle.
	// Chunk boundaries are the single-processor driver's snapshot
	// points: the machine is settled identically there whether the chunk
	// stepped or fast-forwarded, so state captured by the hook restores
	// position-identically. The hook must not advance the processor.
	BlockHook func(now int64)

	// Observability (metrics.go). obs is nil when disabled, which keeps
	// the hot path to one nil check; nextSample is MaxInt64 whenever
	// sampling is off so Step pays a single always-false compare. The
	// block sits at the end of the struct so the uninstrumented layout —
	// which fields share a cache line on the stepping and fast-forward
	// hot paths — is unchanged from the pre-observability processor.
	obs         *metrics.ProcMetrics
	obsSink     *metrics.Sink
	ctxSlots    []int64 // per-context slot-class counters, Contexts × NumSlotClasses
	nextSample  int64
	sampleEvery int64
}

// NewProcessor builds a processor with config cfg over the given timing and
// functional memories.
func NewProcessor(cfg Config, m memsys.System, fm *mem.Memory) (*Processor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// rr starts at -1 so the first round-robin pick is context 0.
	p := &Processor{Cfg: cfg, Mem: m, FMem: fm, cur: -1, rr: -1, forceNext: -1, nextSample: noSample}
	if c, ok := m.(memsys.Completer); ok {
		p.completer = c
		p.capCompletions = !c.PullBasedTiming()
	}
	if f, ok := m.(memsys.IdealInstFetch); ok {
		p.idealIF = f.InstFetchIsIdeal()
	}
	for i := 0; i < cfg.Contexts; i++ {
		p.ctxs = append(p.ctxs, &hwContext{idx: i, replayPC: -1})
	}
	if cfg.BTBEntries > 0 {
		p.btb = NewBTB(cfg.BTBEntries)
	}
	return p, nil
}

// MustNewProcessor is NewProcessor that panics on config errors.
func MustNewProcessor(cfg Config, m memsys.System, fm *mem.Memory) *Processor {
	p, err := NewProcessor(cfg, m, fm)
	if err != nil {
		panic(fmt.Errorf("core: MustNewProcessor(%v, %d contexts): %w", cfg.Scheme, cfg.Contexts, err))
	}
	return p
}

// Now returns the current cycle.
func (p *Processor) Now() int64 { return p.cycle }

// Contexts returns the number of hardware contexts.
func (p *Processor) Contexts() int { return len(p.ctxs) }

// BindThread loads thread th into context idx (nil unbinds). Any pending
// availability state of the context is discarded; an in-flight miss keeps
// filling the cache but no longer blocks the context.
func (p *Processor) BindThread(idx int, th *Thread) {
	c := p.ctxs[idx]
	c.thread = th
	c.availableAt = p.cycle
	c.shadowUntil = 0
	c.redirectUntil = 0
	c.replayPC = -1
	if p.cur == idx {
		p.cur = -1
	}
}

// ThreadAt returns the thread bound to context idx, or nil.
func (p *Processor) ThreadAt(idx int) *Thread { return p.ctxs[idx].thread }

// AllHalted reports whether every bound thread has halted (and at least
// one thread is bound).
func (p *Processor) AllHalted() bool {
	bound := false
	for _, c := range p.ctxs {
		if c.thread != nil {
			bound = true
			if !c.thread.Halted {
				return false
			}
		}
	}
	return bound
}

func (p *Processor) count(now int64, cls SlotClass, ctx int) {
	p.Stats.Slots[cls]++
	if ctx >= 0 {
		if th := p.ctxs[ctx].thread; th != nil {
			th.Devoted++
		}
	}
	if p.obs != nil {
		p.obsCount(now, cls, ctx)
	}
	if p.Trace != nil {
		p.Trace(TraceEvent{Cycle: now, Ctx: ctx, Class: cls})
	}
}

// Run advances the processor n cycles, fast-forwarding through stall
// regions (fastforward.go) unless Cfg.NoFastForward or a Trace hook
// forces cycle-by-cycle stepping.
func (p *Processor) Run(n int64) {
	end := p.cycle + n
	for p.cycle < end {
		cls, ctx, until := p.NextEvent()
		if until <= p.cycle {
			p.Step()
			continue
		}
		if until > end {
			until = end
		}
		if p.obs != nil {
			p.ObservedSkipTo(until, cls, ctx)
		} else {
			p.SkipTo(until, cls, ctx)
		}
	}
}

// RunUntilHalted advances until all bound threads halt, up to limit
// cycles, fast-forwarding through stall regions. It returns the cycles
// executed and whether everything halted. Halt status cannot change
// inside a skipped region (nothing retires there), so checking it per
// region is equivalent to the per-cycle check.
func (p *Processor) RunUntilHalted(limit int64) (int64, bool) {
	start := p.cycle
	end := start + limit
	for p.cycle < end {
		if p.AllHalted() {
			return p.cycle - start, true
		}
		cls, ctx, until := p.NextEvent()
		if until <= p.cycle {
			p.Step()
			continue
		}
		if until > end {
			until = end
		}
		if p.obs != nil {
			p.ObservedSkipTo(until, cls, ctx)
		} else {
			p.SkipTo(until, cls, ctx)
		}
	}
	return p.cycle - start, p.AllHalted()
}

// Step advances the processor one cycle: one issue slot on the paper's
// processor, IssueWidth slots on the superscalar extension.
func (p *Processor) Step() {
	now := p.cycle
	p.cycle++
	p.Stats.Cycles++
	width := p.Cfg.IssueWidth
	if width < 1 {
		width = 1
	}
	for w := 0; w < width; w++ {
		p.issueSlot(now)
	}
	if p.cycle >= p.nextSample {
		p.obsSampleTick()
	}
}

// issueSlot spends one issue slot at cycle now.
func (p *Processor) issueSlot(now int64) {
	// Processor-wide stalls take precedence: the blocking I-cache, the
	// blocked scheme's pipeline flush, and single-context structural
	// stalls.
	switch {
	case now < p.ifetchUntil:
		p.count(now, SlotICache, p.ifetchCtx)
		return
	case now < p.shadowUntil:
		p.count(now, SlotSwitch, p.shadowCtx)
		return
	case now < p.stallUntil:
		p.count(now, p.stallCause, p.stallCtx)
		return
	}

	c := p.selectContext(now)
	if c == nil {
		cls, ctx := p.idleCause()
		p.count(now, cls, ctx)
		return
	}

	// Interleaved miss shadow: this context's slots between a miss
	// issuing and its detection in WB are squashed work.
	if now < c.shadowUntil {
		p.count(now, SlotSwitch, c.idx)
		return
	}
	// Fetch redirect after a mispredicted branch.
	if now < c.redirectUntil {
		p.count(now, SlotStallShort, c.idx)
		return
	}

	th := c.thread
	in := &th.insts[th.PC]

	// Instruction fetch. The I-cache is blocking: a miss stalls the
	// whole processor regardless of scheme (paper §4.1).
	if ready, miss := p.Mem.FetchInst(th.pcAddr(th.PC), now); miss {
		p.ifetchUntil = ready
		p.ifetchCtx = c.idx
		p.forceNext = c.idx // the stalled fetch completes first
		p.count(now, SlotICache, c.idx)
		return
	}

	// Scoreboard: source and destination (WAW) dependencies.
	if cls, stalled := p.depStall(th, in, now); stalled {
		p.count(now, cls, c.idx)
		return
	}

	// Functional-unit conflict (non-pipelined units).
	tm := in.TM
	if tm.Unit != isa.UnitNone && p.fuFree[tm.Unit] > now {
		p.count(now, stallClass(int(p.fuFree[tm.Unit]-now), in.Region), c.idx)
		return
	}

	p.execute(c, th, in, now)
}

// selectContext picks the issuing context for this cycle.
func (p *Processor) selectContext(now int64) *hwContext {
	if p.forceNext >= 0 {
		c := p.ctxs[p.forceNext]
		p.forceNext = -1
		if c.runnable() && c.availableAt <= now {
			p.rr = c.idx
			return c
		}
	}
	switch p.Cfg.Scheme {
	case Single:
		c := p.ctxs[0]
		if c.runnable() && c.availableAt <= now {
			return c
		}
		return nil

	case Blocked, BlockedFast:
		if p.cur >= 0 {
			c := p.ctxs[p.cur]
			if c.runnable() && c.availableAt <= now {
				return c
			}
			p.cur = -1
		}
		// Pick the next available context round-robin.
		for i, j := 0, p.rr+1; i < len(p.ctxs); i, j = i+1, j+1 {
			if j >= len(p.ctxs) {
				j = 0
			}
			c := p.ctxs[j]
			if c.runnable() && c.availableAt <= now {
				p.rr = c.idx
				p.cur = c.idx
				return c
			}
		}
		return nil

	case Interleaved, FineGrained:
		// Strict round-robin across available contexts. A context inside
		// its miss shadow still takes its slot (the slot is charged to
		// switch overhead by the caller).
		for i, j := 0, p.rr+1; i < len(p.ctxs); i, j = i+1, j+1 {
			if j >= len(p.ctxs) {
				j = 0
			}
			c := p.ctxs[j]
			if !c.runnable() {
				continue
			}
			if c.availableAt <= now || c.shadowUntil > now {
				p.rr = c.idx
				return c
			}
		}
		return nil
	}
	return nil
}

// idleCause decides what to charge a cycle with no selectable context:
// the unavailability cause of the context that will wake soonest.
func (p *Processor) idleCause() (SlotClass, int) {
	best := int64(math.MaxInt64)
	cls := SlotIdle
	ctx := -1
	for _, c := range p.ctxs {
		if c.runnable() && c.availableAt < best {
			best = c.availableAt
			cls = c.availCause
			ctx = c.idx
		}
	}
	return cls, ctx
}

// depStall checks source and WAW dependencies; on a stall it returns the
// class to charge. It reuses the classification NextEvent memoized this
// cycle when one is valid: depRegion is a pure function of the scoreboard,
// which nothing touches between the classification and the issue slot.
func (p *Processor) depStall(th *Thread, in *isa.Inst, now int64) (SlotClass, bool) {
	if p.depTh == th && p.depCycle == now && p.depPC == th.PC {
		return p.depCls, p.depUntil > now
	}
	cls, until := depRegion(th, in, now)
	return cls, until > now
}

// depRegion computes the current dependency-stall sub-region of in at
// cycle now: the class every cycle in [now, until) charges, with
// until <= now meaning no dependency stalls the instruction. The charged
// class is that of the hazard with the latest writeback, so it can change
// when an earlier hazard clears mid-stall; until is therefore the nearest
// hazard-clear cycle, not the end of the whole stall — callers re-evaluate
// there. Nothing on this thread executes while it is stalled, so regReady
// and regStall are constant over the region and the per-cycle depStall
// answer is provably (cls) for every cycle in it.
// The operand checks are unrolled and compare against isa.NumRegs (the
// regReady array length) so the bounds checks vanish: this runs once per
// NextEvent classification and once per issued instruction, which makes it
// one of the hottest leaves in the whole simulator.
func depRegion(th *Thread, in *isa.Inst, now int64) (cls SlotClass, until int64) {
	worst := int64(0)
	cls = SlotStallShort
	until = int64(math.MaxInt64)
	active := false
	if r := in.SrcA; r < isa.NumRegs && r != isa.R0 {
		if rdy := th.regReady[r]; rdy > now {
			active = true
			worst = rdy
			cls = th.regStall[r]
			until = rdy
		}
	}
	if r := in.SrcB; r < isa.NumRegs && r != isa.R0 {
		if rdy := th.regReady[r]; rdy > now {
			active = true
			if rdy > worst {
				worst = rdy
				cls = th.regStall[r]
			}
			if rdy < until {
				until = rdy
			}
		}
	}
	// WAW: in-order writeback — a write may issue only if it completes
	// no earlier than the previous write to the same register.
	if d := in.Dst; d < isa.NumRegs && d != isa.R0 {
		if need := th.regReady[d] - int64(in.TM.Latency); need > now {
			active = true
			if th.regReady[d] > worst {
				cls = th.regStall[d]
			}
			if need < until {
				until = need
			}
		}
	}
	if !active {
		return 0, now
	}
	if in.Region == isa.RegionSync {
		cls = SlotSync
	}
	return cls, until
}

// stallClass classifies a pipeline stall by its remaining length and the
// region of the stalled instruction.
func stallClass(remaining int, region isa.Region) SlotClass {
	if region == isa.RegionSync {
		return SlotSync
	}
	if remaining > isa.LongLatencyThreshold {
		return SlotStallLong
	}
	return SlotStallShort
}

// producerClass gives the slot class charged to stalls on the result of an
// instruction that completed normally.
func producerClass(in *isa.Inst) SlotClass {
	if in.Region == isa.RegionSync {
		return SlotSync
	}
	if in.TM.Latency-1 > isa.LongLatencyThreshold {
		return SlotStallLong
	}
	return SlotStallShort
}

// missSlot maps a miss class and region to the slot class charged while a
// context waits for the fill.
func missSlot(mc memsys.MissClass, region isa.Region) SlotClass {
	if region == isa.RegionSync {
		return SlotSync
	}
	return SlotDMem
}

func (p *Processor) busySlot(now int64, c *hwContext, th *Thread, in *isa.Inst) {
	c.replayPC = -1
	cls := SlotBusy
	if in.Region == isa.RegionSync {
		cls = SlotSyncBusy
	}
	p.Stats.Slots[cls]++
	th.Devoted++
	th.Retired++
	p.Stats.Retired++
	if p.obs != nil {
		p.obsIssue(now, cls, c, th)
	}
	if p.Trace != nil {
		p.Trace(TraceEvent{Cycle: now, Ctx: c.idx, Class: cls, PC: th.PC, Inst: in.String()})
	}
}

// execute issues instruction in from context c at cycle now: functional
// semantics plus timing bookkeeping.
func (p *Processor) execute(c *hwContext, th *Thread, in *isa.Inst, now int64) {
	p.depTh = nil // issuing writes the scoreboard: drop the depRegion memo
	tm := in.TM
	if tm.Unit != isa.UnitNone && tm.Issue > 1 {
		p.fuFree[tm.Unit] = now + int64(tm.Issue)
	}

	switch in.Op {
	case isa.NOP:
		// fallthrough to retire

	case isa.ADD, isa.ADDI, isa.SUB, isa.AND, isa.ANDI, isa.OR, isa.ORI,
		isa.XOR, isa.XORI, isa.SLT, isa.SLTI, isa.SLTU, isa.LUI,
		isa.SLL, isa.SRL, isa.SRA, isa.SLLV, isa.SRLV,
		isa.MUL, isa.DIV, isa.REM, isa.DIVU:
		v := evalInt(in, th)
		th.writeInt(in.Rd, v)
		th.setReady(in.Rd, now+int64(tm.Latency), producerClass(in))

	case isa.FADD, isa.FSUB, isa.FMUL, isa.FNEG, isa.FABS, isa.FCVTIW,
		isa.FDIVS, isa.FDIVD, isa.FSQRT:
		v := evalFP(in, th)
		th.writeFP(in.Rd, v)
		th.setReady(in.Rd, now+int64(tm.Latency), producerClass(in))

	case isa.FCMPLT:
		v := uint32(0)
		if th.readFP(in.Rs) < th.readFP(in.Rt) {
			v = 1
		}
		th.writeInt(in.Rd, v)
		th.setReady(in.Rd, now+int64(tm.Latency), producerClass(in))

	case isa.FCMPLE:
		v := uint32(0)
		if th.readFP(in.Rs) <= th.readFP(in.Rt) {
			v = 1
		}
		th.writeInt(in.Rd, v)
		th.setReady(in.Rd, now+int64(tm.Latency), producerClass(in))

	case isa.MTC1:
		th.writeFP(in.Rd, float64(int32(th.readInt(in.Rs))))
		th.setReady(in.Rd, now+int64(tm.Latency), producerClass(in))

	case isa.MFC1:
		th.writeInt(in.Rd, uint32(int32(th.readFP(in.Rs))))
		th.setReady(in.Rd, now+int64(tm.Latency), producerClass(in))

	case isa.LW, isa.SW, isa.FLD, isa.FSD, isa.TAS:
		if done := p.executeMem(c, th, in, now); !done {
			return // slot already accounted by the miss path
		}

	case isa.BEQ, isa.BNE, isa.BLEZ, isa.BGTZ, isa.J, isa.JAL, isa.JR:
		p.executeBranch(c, th, in, now)
		p.busySlot(now, c, th, in)
		return // PC already updated

	case isa.SWITCH:
		// Explicit switch (blocked scheme, Table 4: cost 3). The switch
		// decision is made at decode, so the flush is short.
		p.Stats.ExplicitSwitches++
		th.PC++
		c.availableAt = now + int64(in.Imm)
		c.availCause = yieldCause(in.Region)
		p.shadowUntil = now + int64(p.Cfg.ExplicitSwitchCost)
		p.shadowCtx = c.idx
		p.cur = -1
		if p.obsSink != nil {
			p.obsCtxSwitch(now, c.idx, c.availCause, c.availableAt)
		}
		if p.SwitchWatch != nil {
			p.SwitchWatch(now, c.idx)
		}
		p.count(now, SlotSwitch, c.idx)
		return

	case isa.BACKOFF:
		// Interleaved backoff (Table 4: cost 1 — this slot).
		p.Stats.Backoffs++
		th.PC++
		c.availableAt = now + int64(in.Imm)
		c.availCause = yieldCause(in.Region)
		if p.obsSink != nil {
			p.obsCtxSwitch(now, c.idx, c.availCause, c.availableAt)
		}
		if p.SwitchWatch != nil {
			p.SwitchWatch(now, c.idx)
		}
		p.count(now, SlotSwitch, c.idx)
		return

	case isa.TRAP:
		// Software exception (§6): save the resume PC in this context's
		// EPC and redirect to the handler, paying the pipeline refill
		// like an unpredicted control transfer.
		th.TrapCode = in.Imm
		if th.TrapHandler < 0 {
			th.Halted = true
			th.HaltedAt = now
			p.busySlot(now, c, th, in)
			if p.cur == c.idx {
				p.cur = -1
			}
			return
		}
		th.EPC = th.PC + 1
		th.PC = th.TrapHandler
		c.redirectUntil = now + 1 + int64(p.Cfg.MispredictPenalty)
		p.busySlot(now, c, th, in)
		return

	case isa.ERET:
		th.PC = th.EPC
		c.redirectUntil = now + 1 + int64(p.Cfg.MispredictPenalty)
		p.busySlot(now, c, th, in)
		return

	case isa.HALT:
		th.Halted = true
		th.HaltedAt = now
		p.busySlot(now, c, th, in)
		if p.cur == c.idx {
			p.cur = -1
		}
		return

	default:
		panic(guard.NewSimError("core.execute", fmt.Errorf("unimplemented op %v", in.Op)).
			At(now).On(p.ID, c.idx, th.PC))
	}

	th.PC++
	p.busySlot(now, c, th, in)

	// Fine-grained pipelines hold one instruction per context: the next
	// issue waits a full pipeline depth.
	if p.Cfg.Scheme == FineGrained {
		if c.availableAt < now+int64(p.Cfg.PipelineDepth) {
			c.availableAt = now + int64(p.Cfg.PipelineDepth)
			c.availCause = SlotStallShort
		}
	}
}

// yieldCause is what to charge idle time caused by an explicit
// switch/backoff: sync code yields charge to synchronization, compute
// yields (after divides) to long instruction stall.
func yieldCause(r isa.Region) SlotClass {
	if r == isa.RegionSync {
		return SlotSync
	}
	return SlotStallLong
}

// executeMem handles loads, stores and atomics. It returns true if the
// instruction completed (hit) and the caller should retire it; on a miss
// it performs all scheme-specific bookkeeping and accounting itself.
func (p *Processor) executeMem(c *hwContext, th *Thread, in *isa.Inst, now int64) bool {
	addr := uint32(int64(th.readInt(in.Rs)) + int64(in.Imm))

	// The fine-grained scheme has no data cache: every reference is a
	// fixed-latency memory access with zero switch cost (§2.1).
	if p.Cfg.Scheme == FineGrained {
		p.memFunctional(th, in, c.idx, now)
		fill := now + int64(p.Cfg.FineGrainedMemLatency)
		if d := in.Dst; d != isa.NoReg {
			th.setReady(d, fill, missSlot(memsys.Memory, in.Region))
		}
		c.availableAt = fill
		c.availCause = missSlot(memsys.Memory, in.Region)
		th.PC++
		p.busySlot(now, c, th, in)
		return false
	}

	res := p.Mem.AccessData(addr, in.IsStore(), th.pcAddr(th.PC), now)
	if res.Hit {
		p.memFunctional(th, in, c.idx, now)
		if d := in.Dst; d != isa.NoReg {
			th.setReady(d, res.ReadyAt, producerClass(in))
		}
		return true
	}

	// Miss. The faulting instruction is not executed: the context's PC
	// stays here and the access replays when the line (or TLB entry)
	// arrives, which also gives the replayed load post-coherence data on
	// a multiprocessor.
	cause := missSlot(res.Class, in.Region)

	// A TLB miss is a software refill: the handler runs on the processor
	// itself, so no scheme can overlap it — the pipe blocks until the
	// entry is installed, then the access replays.
	if res.Class == memsys.TLBMiss {
		p.stallUntil = res.FillAt
		p.stallCause = cause
		p.stallCtx = c.idx
		p.count(now, cause, c.idx)
		return false
	}

	// A replayed access that misses again (NAKed at the directory or the
	// line was stolen): the context was never restarted, so there is
	// nothing to flush — it re-sleeps at the cost of this slot only.
	if c.replayPC == th.PC && p.Cfg.Scheme != Single {
		c.availableAt = maxI64(res.FillAt, now+1)
		c.availCause = cause
		p.count(now, cause, c.idx)
		return false
	}
	c.replayPC = th.PC

	switch p.Cfg.Scheme {
	case Single:
		if res.Class == memsys.MSHRFull {
			// Structural: the access itself could not start. Stall the
			// pipe and replay.
			p.stallUntil = res.FillAt
			p.stallCause = cause
			p.stallCtx = c.idx
			p.count(now, cause, c.idx)
			return false
		}
		// Lockup-free: execute under the miss; consumers wait for the
		// fill through the scoreboard.
		p.memFunctional(th, in, c.idx, now)
		if d := in.Dst; d != isa.NoReg {
			th.setReady(d, res.FillAt, cause)
		}
		th.PC++
		p.busySlot(now, c, th, in)
		return false

	case Blocked, BlockedFast:
		// Flush the pipeline: the miss is detected in WB, so the whole
		// window from the faulting issue to detection is lost (7 slots),
		// or a single slot for the replicated-pipeline variant.
		p.Stats.MissSwitches++
		depth := int64(p.Cfg.PipelineDepth)
		if p.Cfg.Scheme == BlockedFast {
			depth = 1
		}
		if p.Cfg.BlockedFlushCost > 0 {
			depth = int64(p.Cfg.BlockedFlushCost)
		}
		p.shadowUntil = now + depth
		p.shadowCtx = c.idx
		c.availableAt = maxI64(res.FillAt, now+depth)
		c.availCause = cause
		p.cur = -1
		if p.obsSink != nil {
			p.obsCtxSwitch(now, c.idx, cause, c.availableAt)
		}
		if p.SwitchWatch != nil {
			p.SwitchWatch(now, c.idx)
		}
		p.count(now, SlotSwitch, c.idx)
		return false

	case Interleaved:
		// Selective squash: only this context's slots inside the
		// detection window are lost; other contexts keep issuing.
		p.Stats.MissSwitches++
		depth := int64(p.Cfg.PipelineDepth)
		c.shadowUntil = now + depth
		c.availableAt = maxI64(res.FillAt, now+depth)
		c.availCause = cause
		if p.obsSink != nil {
			p.obsCtxSwitch(now, c.idx, cause, c.availableAt)
		}
		if p.SwitchWatch != nil {
			p.SwitchWatch(now, c.idx)
		}
		p.count(now, SlotSwitch, c.idx)
		return false
	}
	panic(guard.NewSimError("core.executeMem", fmt.Errorf("unreachable miss scheme %v", p.Cfg.Scheme)).
		At(now).On(p.ID, c.idx, th.PC).WithAddr(addr))
}

// memFunctional applies the functional semantics of a memory instruction.
func (p *Processor) memFunctional(th *Thread, in *isa.Inst, ctx int, now int64) {
	addr := uint32(int64(th.readInt(in.Rs)) + int64(in.Imm))
	switch in.Op {
	case isa.LW:
		v := p.FMem.LoadW(addr)
		th.writeInt(in.Rd, v)
		if p.MemWatch != nil {
			p.MemWatch(in.Op, addr, v, ctx, now)
		}
	case isa.SW:
		v := th.readInt(in.Rt)
		p.FMem.StoreW(addr, v)
		if p.MemWatch != nil {
			p.MemWatch(in.Op, addr, v, ctx, now)
		}
	case isa.FLD:
		th.Regs[in.Rd] = p.FMem.LoadD(addr)
	case isa.FSD:
		p.FMem.StoreD(addr, th.Regs[in.Rt])
	case isa.TAS:
		v := p.FMem.TestAndSet(addr)
		th.writeInt(in.Rd, v)
		if p.MemWatch != nil {
			p.MemWatch(in.Op, addr, v, ctx, now)
		}
	}
}

// executeBranch resolves a control transfer, consults the BTB, and charges
// the fetch redirect on a misprediction.
func (p *Processor) executeBranch(c *hwContext, th *Thread, in *isa.Inst, now int64) {
	p.Stats.Branches++
	taken := true
	next := int(in.Target)
	switch in.Op {
	case isa.BEQ:
		taken = th.readInt(in.Rs) == th.readInt(in.Rt)
	case isa.BNE:
		taken = th.readInt(in.Rs) != th.readInt(in.Rt)
	case isa.BLEZ:
		taken = int32(th.readInt(in.Rs)) <= 0
	case isa.BGTZ:
		taken = int32(th.readInt(in.Rs)) > 0
	case isa.J:
	case isa.JAL:
		th.writeInt(in.Rd, uint32(th.PC+1))
		th.setReady(in.Rd, now+1, SlotStallShort)
	case isa.JR:
		next = int(th.readInt(in.Rs))
	}
	if !taken {
		next = th.PC + 1
	}

	pcAddr := th.pcAddr(th.PC)
	predicted := th.PC + 1 // fall-through on BTB miss
	btbHit := false
	if p.btb != nil {
		if t, hit := p.btb.Lookup(pcAddr); hit {
			predicted = int(t)
			btbHit = true
		}
	}
	if predicted != next {
		p.Stats.Mispredicts++
		penalty := int64(p.Cfg.MispredictPenalty)
		if (in.Op == isa.J || in.Op == isa.JAL) && !btbHit {
			// Unconditional direct jumps resolve at decode: one bubble.
			penalty = 1
		}
		c.redirectUntil = now + 1 + penalty
	}
	if p.btb != nil {
		p.btb.Record(pcAddr, taken || in.Op == isa.J || in.Op == isa.JAL || in.Op == isa.JR, int32(next))
	}
	th.PC = next
}

func evalInt(in *isa.Inst, th *Thread) uint32 {
	s := th.readInt(in.Rs)
	t := th.readInt(in.Rt)
	imm := uint32(in.Imm)
	switch in.Op {
	case isa.ADD:
		return s + t
	case isa.ADDI:
		return s + imm // imm sign-extended via int32 conversion on build
	case isa.SUB:
		return s - t
	case isa.AND:
		return s & t
	case isa.ANDI:
		return s & (imm & 0xFFFF)
	case isa.OR:
		return s | t
	case isa.ORI:
		return s | (imm & 0xFFFF)
	case isa.XOR:
		return s ^ t
	case isa.XORI:
		return s ^ (imm & 0xFFFF)
	case isa.SLT:
		if int32(s) < int32(t) {
			return 1
		}
		return 0
	case isa.SLTI:
		if int32(s) < in.Imm {
			return 1
		}
		return 0
	case isa.SLTU:
		if s < t {
			return 1
		}
		return 0
	case isa.LUI:
		return imm << 16
	case isa.SLL:
		return s << (imm & 31)
	case isa.SRL:
		return s >> (imm & 31)
	case isa.SRA:
		return uint32(int32(s) >> (imm & 31))
	case isa.SLLV:
		return s << (t & 31)
	case isa.SRLV:
		return s >> (t & 31)
	case isa.MUL:
		return s * t
	case isa.DIV:
		if t == 0 {
			return 0
		}
		return uint32(int32(s) / int32(t))
	case isa.REM:
		if t == 0 {
			return 0
		}
		return uint32(int32(s) % int32(t))
	case isa.DIVU:
		if t == 0 {
			return 0
		}
		return s / t
	}
	panic("core: evalInt on non-integer op")
}

func evalFP(in *isa.Inst, th *Thread) float64 {
	s := th.readFP(in.Rs)
	t := th.readFP(in.Rt)
	switch in.Op {
	case isa.FADD:
		return s + t
	case isa.FSUB:
		return s - t
	case isa.FMUL:
		return s * t
	case isa.FNEG:
		return -s
	case isa.FABS:
		return math.Abs(s)
	case isa.FCVTIW:
		return math.Trunc(s)
	case isa.FDIVS, isa.FDIVD:
		return s / t
	case isa.FSQRT:
		return math.Sqrt(s)
	}
	panic("core: evalFP on non-FP op")
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
