package core

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/memsys"
	"repro/internal/prog"
)

// fakeMem is a trivial timing memory for core tests: instruction fetches
// always hit; a data line misses once with a fixed latency and hits
// afterwards. Preloaded lines always hit.
type fakeMem struct {
	lat     int64
	pending map[uint32]int64
}

func newFakeMem(lat int64) *fakeMem {
	return &fakeMem{lat: lat, pending: make(map[uint32]int64)}
}

func (f *fakeMem) preload(addr uint32) { f.pending[addr>>5] = -1 }

func (f *fakeMem) FetchInst(addr uint32, now int64) (int64, bool) { return now, false }

func (f *fakeMem) AccessData(addr uint32, write bool, pc uint32, now int64) memsys.DataResult {
	line := addr >> 5
	if fill, ok := f.pending[line]; ok {
		if now >= fill {
			return memsys.DataResult{Hit: true, ReadyAt: now + 3, Class: memsys.HitL1}
		}
		return memsys.DataResult{FillAt: fill, Class: memsys.Memory}
	}
	f.pending[line] = now + f.lat
	return memsys.DataResult{FillAt: now + f.lat, Class: memsys.Memory}
}

// perfectMem hits on everything.
type perfectMem struct{}

func (perfectMem) FetchInst(addr uint32, now int64) (int64, bool) { return now, false }
func (perfectMem) AccessData(addr uint32, write bool, pc uint32, now int64) memsys.DataResult {
	return memsys.DataResult{Hit: true, ReadyAt: now + 3, Class: memsys.HitL1}
}

func buildProg(t *testing.T, name string, f func(b *prog.Builder)) *prog.Program {
	t.Helper()
	b := prog.NewBuilder(name, 0x1000, 0x100000, 1<<20)
	f(b)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// sumProgram computes sum of 1..n into R2 and stores it at addr.
func sumProgram(t *testing.T, n int32, addr uint32) *prog.Program {
	return buildProg(t, "sum", func(b *prog.Builder) {
		b.Li(isa.R1, uint32(n)) // counter
		b.Li(isa.R2, 0)         // acc
		b.La(isa.R3, addr)
		b.Label("loop")
		b.Add(isa.R2, isa.R2, isa.R1)
		b.Addi(isa.R1, isa.R1, -1)
		b.Bgtz(isa.R1, "loop")
		b.Sw(isa.R2, isa.R3, 0)
		b.Halt()
	})
}

func TestSingleContextFunctional(t *testing.T) {
	fm := mem.New()
	p := MustNewProcessor(DefaultConfig(Single, 1), perfectMem{}, fm)
	th := NewThread("sum", sumProgram(t, 10, 0x100000))
	p.BindThread(0, th)
	cycles, done := p.RunUntilHalted(100000)
	if !done {
		t.Fatal("program did not halt")
	}
	if got := fm.LoadW(0x100000); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
	if th.IntReg(isa.R2) != 55 {
		t.Errorf("R2 = %d, want 55", th.IntReg(isa.R2))
	}
	if cycles == 0 || p.Stats.Retired == 0 {
		t.Error("no work recorded")
	}
	// Slot accounting must cover every cycle exactly once.
	var total int64
	for _, s := range p.Stats.Slots {
		total += s
	}
	if total != p.Stats.Cycles {
		t.Errorf("slots sum to %d, cycles = %d", total, p.Stats.Cycles)
	}
}

func TestFPFunctional(t *testing.T) {
	fm := mem.New()
	pr := buildProg(t, "fp", func(b *prog.Builder) {
		a := b.Alloc(32, 8)
		b.InitF(a, 21.0)
		b.InitF(a+8, 2.0)
		b.La(isa.R1, a)
		b.Fld(isa.F1, isa.R1, 0)
		b.Fld(isa.F2, isa.R1, 8)
		b.FMul(isa.F3, isa.F1, isa.F2)  // 42
		b.FDivD(isa.F4, isa.F3, isa.F2) // 21
		b.FAdd(isa.F5, isa.F4, isa.F4)  // 42
		b.Fsd(isa.F5, isa.R1, 16)
		b.Halt()
	})
	pr.LoadInit(fm)
	p := MustNewProcessor(DefaultConfig(Single, 1), perfectMem{}, fm)
	th := NewThread("fp", pr)
	p.BindThread(0, th)
	if _, done := p.RunUntilHalted(10000); !done {
		t.Fatal("did not halt")
	}
	base := uint32(pr.Init[0].Addr)
	if got := fm.LoadD(base + 16); got != 0x4045000000000000 { // 42.0
		t.Errorf("result bits = %#x, want 42.0", got)
	}
	// The divide's 61-cycle latency must show up as long stalls.
	if p.Stats.Slots[SlotStallLong] < 30 {
		t.Errorf("long stalls = %d, expected the FDIV latency exposed", p.Stats.Slots[SlotStallLong])
	}
}

func TestLoadUseLatency(t *testing.T) {
	// lw followed immediately by a dependent add: two delay slots.
	fm := mem.New()
	pr := buildProg(t, "lu", func(b *prog.Builder) {
		b.La(isa.R1, 0x100000)
		b.Lw(isa.R2, isa.R1, 0)
		b.Add(isa.R3, isa.R2, isa.R2)
		b.Halt()
	})
	fake := newFakeMem(50)
	fake.preload(0x100000)
	p := MustNewProcessor(DefaultConfig(Single, 1), fake, fm)
	p.BindThread(0, NewThread("lu", pr))
	if _, done := p.RunUntilHalted(1000); !done {
		t.Fatal("did not halt")
	}
	if got := p.Stats.Slots[SlotStallShort]; got != 2 {
		t.Errorf("load-use stall = %d slots, want 2", got)
	}
}

func TestSingleContextLockupFree(t *testing.T) {
	// A load miss under the single-context scheme must not stall
	// independent following instructions.
	fm := mem.New()
	pr := buildProg(t, "lf", func(b *prog.Builder) {
		b.La(isa.R1, 0x100000)
		b.Lw(isa.R2, isa.R1, 0) // misses, 50 cycles
		for i := 0; i < 10; i++ {
			b.Add(isa.R3, isa.R4, isa.R5) // independent
		}
		b.Add(isa.R6, isa.R2, isa.R2) // dependent: waits for the fill
		b.Halt()
	})
	p := MustNewProcessor(DefaultConfig(Single, 1), newFakeMem(50), fm)
	p.BindThread(0, NewThread("lf", pr))
	cycles, done := p.RunUntilHalted(1000)
	if !done {
		t.Fatal("did not halt")
	}
	// Load issues ~cycle 2; fill at ~52; dependent add at ~52; halt ~53.
	if cycles > 60 {
		t.Errorf("took %d cycles; independent work did not overlap the miss", cycles)
	}
	if p.Stats.Slots[SlotDMem] < 30 {
		t.Errorf("dmem stalls = %d, want the exposed fill wait", p.Stats.Slots[SlotDMem])
	}
	if p.Stats.Slots[SlotSwitch] != 0 {
		t.Error("single context should never pay switch cost")
	}
}

func TestBranchPredictionLoop(t *testing.T) {
	// A hot loop: the BTB should learn the back edge, so mispredicts stay
	// around 2 (first encounter + final fall-through).
	fm := mem.New()
	p := MustNewProcessor(DefaultConfig(Single, 1), perfectMem{}, fm)
	p.BindThread(0, NewThread("sum", sumProgram(t, 100, 0x100000)))
	if _, done := p.RunUntilHalted(10000); !done {
		t.Fatal("did not halt")
	}
	if p.Stats.Branches < 100 {
		t.Fatalf("branches = %d", p.Stats.Branches)
	}
	if p.Stats.Mispredicts > 4 {
		t.Errorf("mispredicts = %d, want <= 4 with a warm BTB", p.Stats.Mispredicts)
	}
}

func TestNoBTBPaysTakenPenalty(t *testing.T) {
	fm := mem.New()
	cfg := DefaultConfig(Single, 1)
	cfg.BTBEntries = 0
	p := MustNewProcessor(cfg, perfectMem{}, fm)
	p.BindThread(0, NewThread("sum", sumProgram(t, 100, 0x100000)))
	cyclesNoBTB, done := p.RunUntilHalted(100000)
	if !done {
		t.Fatal("did not halt")
	}

	fm2 := mem.New()
	p2 := MustNewProcessor(DefaultConfig(Single, 1), perfectMem{}, fm2)
	p2.BindThread(0, NewThread("sum", sumProgram(t, 100, 0x100000)))
	cyclesBTB, _ := p2.RunUntilHalted(100000)

	if cyclesNoBTB <= cyclesBTB {
		t.Errorf("BTB off (%d cycles) should be slower than on (%d)", cyclesNoBTB, cyclesBTB)
	}
}

// Figure 2: with four active contexts, a data miss costs the blocked
// scheme 7 cycles of switch overhead (full flush) but the interleaved
// scheme only ~2 (selective squash of the faulting context's slots).
func TestFigure2SwitchCost(t *testing.T) {
	mkThreads := func(t *testing.T) []*prog.Program {
		var ps []*prog.Program
		// Context 0 misses immediately; the rest run long add chains.
		ps = append(ps, buildProg(t, "misser", func(b *prog.Builder) {
			b.La(isa.R1, 0x100000)
			b.Lw(isa.R2, isa.R1, 0) // miss
			for i := 0; i < 50; i++ {
				b.Add(isa.R3, isa.R4, isa.R5)
			}
			b.Halt()
		}))
		for i := 0; i < 3; i++ {
			ps = append(ps, buildProg(t, "adder", func(b *prog.Builder) {
				for j := 0; j < 200; j++ {
					b.Add(isa.R3, isa.R4, isa.R5)
				}
				b.Halt()
			}))
		}
		return ps
	}

	run := func(s Scheme) *Stats {
		fm := mem.New()
		p := MustNewProcessor(DefaultConfig(s, 4), newFakeMem(40), fm)
		for i, pr := range mkThreads(t) {
			p.BindThread(i, NewThread(pr.Name, pr))
		}
		if _, done := p.RunUntilHalted(5000); !done {
			t.Fatalf("%v did not finish", s)
		}
		return &p.Stats
	}

	blocked := run(Blocked)
	inter := run(Interleaved)

	if got := blocked.Slots[SlotSwitch]; got != 7 {
		t.Errorf("blocked switch slots = %d, want 7 (pipeline depth)", got)
	}
	if got := inter.Slots[SlotSwitch]; got != 2 {
		t.Errorf("interleaved switch slots = %d, want 2 (ceil(7/4))", got)
	}
}

// Figure 3: the four-thread example. Threads A (2 insns), B (3 insns with a
// two-cycle dependency), C (4 insns) and D (6 insns), each ending in a
// cache miss. The interleaved scheme must finish all four well before the
// blocked scheme and hide B's pipeline dependency completely.
func TestFigure3Timeline(t *testing.T) {
	build := func(t *testing.T, fake *fakeMem) []*prog.Program {
		hitAddr := uint32(0x200000)
		fake.preload(hitAddr)
		a := buildProg(t, "A", func(b *prog.Builder) {
			b.Add(isa.R2, isa.R3, isa.R4)
			b.Lw(isa.R5, isa.R1, 0) // R1=0 -> address 0: miss
			b.Halt()
		})
		bb := buildProg(t, "B", func(b *prog.Builder) {
			b.La(isa.R6, hitAddr)
			b.Lw(isa.R2, isa.R6, 0)       // hit: latency 3
			b.Add(isa.R3, isa.R2, isa.R2) // 2-cycle dependency when adjacent
			b.Lw(isa.R5, isa.R1, 64)      // miss
			b.Halt()
		})
		c := buildProg(t, "C", func(b *prog.Builder) {
			for i := 0; i < 3; i++ {
				b.Add(isa.R2, isa.R3, isa.R4)
			}
			b.Lw(isa.R5, isa.R1, 128) // miss
			b.Halt()
		})
		d := buildProg(t, "D", func(b *prog.Builder) {
			for i := 0; i < 5; i++ {
				b.Add(isa.R2, isa.R3, isa.R4)
			}
			b.Lw(isa.R5, isa.R1, 192) // miss
			b.Halt()
		})
		return []*prog.Program{a, bb, c, d}
	}

	run := func(s Scheme) (int64, *Stats) {
		fake := newFakeMem(20)
		fm := mem.New()
		p := MustNewProcessor(DefaultConfig(s, 4), fake, fm)
		for i, pr := range build(t, fake) {
			p.BindThread(i, NewThread(pr.Name, pr))
		}
		cycles, done := p.RunUntilHalted(2000)
		if !done {
			t.Fatalf("%v did not finish", s)
		}
		return cycles, &p.Stats
	}

	bCycles, bStats := run(Blocked)
	iCycles, iStats := run(Interleaved)

	if iCycles >= bCycles {
		t.Errorf("interleaved (%d cycles) must beat blocked (%d)", iCycles, bCycles)
	}
	// Four misses: blocked pays 7 each.
	if got := bStats.Slots[SlotSwitch]; got != 28 {
		t.Errorf("blocked switch slots = %d, want 28", got)
	}
	if got := iStats.Slots[SlotSwitch]; got >= 28 || got < 4 {
		t.Errorf("interleaved switch slots = %d, want within [4, 28)", got)
	}
	// B's two-cycle dependency is hidden by interleaving but exposed in
	// the blocked schedule.
	if bStats.Slots[SlotStallShort] < 2 {
		t.Errorf("blocked short stalls = %d, want >= 2", bStats.Slots[SlotStallShort])
	}
	if iStats.Slots[SlotStallShort] != 0 {
		t.Errorf("interleaved short stalls = %d, want 0 (dependency hidden)", iStats.Slots[SlotStallShort])
	}
}

// Table 4: the explicit switch costs 3 cycles, the backoff 1.
func TestTable4ExplicitCosts(t *testing.T) {
	run := func(op func(b *prog.Builder)) *Stats {
		fm := mem.New()
		pr := buildProg(t, "y", func(b *prog.Builder) {
			b.Add(isa.R2, isa.R3, isa.R4)
			op(b)
			b.Add(isa.R2, isa.R3, isa.R4)
			b.Halt()
		})
		scheme := Interleaved
		if pr.Insts[1].Op == isa.SWITCH {
			scheme = Blocked
		}
		p := MustNewProcessor(DefaultConfig(scheme, 2), perfectMem{}, fm)
		p.BindThread(0, NewThread("y", pr))
		// Second context: enough adds to soak up the yield window.
		filler := buildProg(t, "filler", func(b *prog.Builder) {
			for i := 0; i < 100; i++ {
				b.Add(isa.R2, isa.R3, isa.R4)
			}
			b.Halt()
		})
		p.BindThread(1, NewThread("filler", filler))
		if _, done := p.RunUntilHalted(2000); !done {
			t.Fatal("did not finish")
		}
		return &p.Stats
	}

	sw := run(func(b *prog.Builder) {
		b.SetYield(prog.YieldSwitch)
		b.Yield(10)
	})
	if got := sw.Slots[SlotSwitch]; got != 3 {
		t.Errorf("explicit switch cost = %d slots, want 3", got)
	}
	bo := run(func(b *prog.Builder) {
		b.SetYield(prog.YieldBackoff)
		b.Yield(10)
	})
	if got := bo.Slots[SlotSwitch]; got != 1 {
		t.Errorf("backoff cost = %d slots, want 1", got)
	}
}

func TestBlockedFastSwitchCost(t *testing.T) {
	fm := mem.New()
	pr := buildProg(t, "m", func(b *prog.Builder) {
		b.Lw(isa.R2, isa.R1, 0)
		b.Halt()
	})
	filler := buildProg(t, "filler", func(b *prog.Builder) {
		for i := 0; i < 100; i++ {
			b.Add(isa.R2, isa.R3, isa.R4)
		}
		b.Halt()
	})
	p := MustNewProcessor(DefaultConfig(BlockedFast, 2), newFakeMem(40), fm)
	p.BindThread(0, NewThread("m", pr))
	p.BindThread(1, NewThread("filler", filler))
	if _, done := p.RunUntilHalted(2000); !done {
		t.Fatal("did not finish")
	}
	if got := p.Stats.Slots[SlotSwitch]; got != 1 {
		t.Errorf("blocked-fast switch cost = %d, want 1", got)
	}
}

func TestFineGrainedSingleThreadSlow(t *testing.T) {
	// Fine-grained: one instruction per context in the pipe, so a single
	// thread runs at 1/depth throughput — the paper's core criticism.
	fm := mem.New()
	pr := buildProg(t, "chain", func(b *prog.Builder) {
		for i := 0; i < 50; i++ {
			b.Add(isa.R2, isa.R3, isa.R4)
		}
		b.Halt()
	})
	p := MustNewProcessor(DefaultConfig(FineGrained, 4), perfectMem{}, fm)
	p.BindThread(0, NewThread("chain", pr))
	cycles, done := p.RunUntilHalted(10000)
	if !done {
		t.Fatal("did not finish")
	}
	if cycles < 50*7 {
		t.Errorf("fine-grained single thread took %d cycles, want >= %d", cycles, 50*7)
	}
}

func TestInterleavedSingleThreadFullSpeed(t *testing.T) {
	// The paper's key workstation requirement: one thread on the
	// interleaved processor runs as fast as on the single-context one.
	mk := func() *prog.Program {
		return buildProg(t, "chain", func(b *prog.Builder) {
			for i := 0; i < 200; i++ {
				b.Add(isa.R2, isa.R3, isa.R4)
			}
			b.Halt()
		})
	}
	run := func(s Scheme, n int) int64 {
		fm := mem.New()
		p := MustNewProcessor(DefaultConfig(s, n), perfectMem{}, fm)
		p.BindThread(0, NewThread("chain", mk()))
		cycles, done := p.RunUntilHalted(10000)
		if !done {
			t.Fatal("did not finish")
		}
		return cycles
	}
	single := run(Single, 1)
	inter := run(Interleaved, 4)
	if inter != single {
		t.Errorf("interleaved single-thread = %d cycles, single-context = %d; must match", inter, single)
	}
}

func TestRoundRobinFairness(t *testing.T) {
	// Four identical compute threads on an interleaved processor retire
	// at (nearly) identical rates.
	fm := mem.New()
	p := MustNewProcessor(DefaultConfig(Interleaved, 4), perfectMem{}, fm)
	var ths []*Thread
	for i := 0; i < 4; i++ {
		pr := buildProg(t, "w", func(b *prog.Builder) {
			b.Label("top")
			b.Addi(isa.R2, isa.R2, 1)
			b.Slti(isa.R3, isa.R2, 1000)
			b.Bne(isa.R3, isa.R0, "top")
			b.Halt()
		})
		th := NewThread("w", pr)
		ths = append(ths, th)
		p.BindThread(i, th)
	}
	if _, done := p.RunUntilHalted(100000); !done {
		t.Fatal("did not finish")
	}
	for _, th := range ths[1:] {
		if th.Retired != ths[0].Retired {
			t.Errorf("unfair retirement: %d vs %d", th.Retired, ths[0].Retired)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, Stats) {
		fm := mem.New()
		fake := newFakeMem(25)
		p := MustNewProcessor(DefaultConfig(Interleaved, 4), fake, fm)
		for i := 0; i < 4; i++ {
			p.BindThread(i, NewThread("s", sumProgram(t, 500, uint32(0x100000+64*i))))
		}
		cycles, done := p.RunUntilHalted(1000000)
		if !done {
			t.Fatal("did not finish")
		}
		return cycles, p.Stats
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 || s1 != s2 {
		t.Error("simulation is not deterministic")
	}
}

func TestSlotConservation(t *testing.T) {
	// Every cycle is accounted to exactly one slot class under every
	// scheme.
	for _, s := range []Scheme{Single, Blocked, BlockedFast, Interleaved, FineGrained} {
		n := 1
		if s != Single {
			n = 4
		}
		fm := mem.New()
		p := MustNewProcessor(DefaultConfig(s, n), newFakeMem(30), fm)
		for i := 0; i < n; i++ {
			p.BindThread(i, NewThread("s", sumProgram(t, 200, uint32(0x100000+64*i))))
		}
		p.Run(5000)
		var total int64
		for _, v := range p.Stats.Slots {
			total += v
		}
		if total != p.Stats.Cycles {
			t.Errorf("%v: slots %d != cycles %d", s, total, p.Stats.Cycles)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(Interleaved, 4).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig(Single, 2)
	if bad.Validate() == nil {
		t.Error("single with 2 contexts accepted")
	}
	bad = DefaultConfig(Interleaved, 0)
	if bad.Validate() == nil {
		t.Error("zero contexts accepted")
	}
	bad = DefaultConfig(Interleaved, 2)
	bad.BTBEntries = 100
	if bad.Validate() == nil {
		t.Error("non-power-of-two BTB accepted")
	}
}
