package core

import (
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/guard"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/prog"
)

// storeWalkProgram writes then re-reads a buffer far larger than the L1,
// accumulating into R2 — enough memory traffic that chaos perturbation of
// L2/memory/TLB latencies actually lands on the critical path.
func storeWalkProgram(t *testing.T, words int, base uint32) *prog.Program {
	return buildProg(t, "storewalk", func(b *prog.Builder) {
		b.Li(isa.R1, uint32(words))
		b.La(isa.R3, base)
		b.Li(isa.R2, 0)
		b.Label("wr")
		b.Sw(isa.R1, isa.R3, 0)
		b.Addi(isa.R3, isa.R3, 64)
		b.Addi(isa.R1, isa.R1, -1)
		b.Bgtz(isa.R1, "wr")
		b.Li(isa.R1, uint32(words))
		b.La(isa.R3, base)
		b.Label("rd")
		b.Lw(isa.R4, isa.R3, 0)
		b.Add(isa.R2, isa.R2, isa.R4)
		b.Addi(isa.R3, isa.R3, 64)
		b.Addi(isa.R1, isa.R1, -1)
		b.Bgtz(isa.R1, "rd")
		b.Sw(isa.R2, isa.R3, 0)
		b.Halt()
	})
}

// spinProgram loops forever on a synchronization-region load — the shape
// of a spin-wait whose release never comes. It retires sync instructions
// at full rate but never a useful one.
func spinProgram(t *testing.T) *prog.Program {
	return buildProg(t, "spin", func(b *prog.Builder) {
		b.La(isa.R3, 0x100000)
		b.SetRegion(isa.RegionSync)
		b.Label("spin")
		b.Lw(isa.R2, isa.R3, 0)
		b.J("spin")
	})
}

// Chaos on a uniprocessor must be invisible to architectural state: a
// single thread's instruction stream is data-dependent only, so across
// seeds the final memory AND every register must match the unperturbed
// run, while execution time moves.
func TestChaosByteIdentityUniprocessor(t *testing.T) {
	const base = 0x200000
	run := func(seed int64) (uint64, int64) {
		params := cache.DefaultParams()
		params.Chaos = guard.Options{ChaosSeed: seed}.NewChaos()
		h := cache.MustNewHierarchy(params)
		fm := mem.New()
		p := MustNewProcessor(DefaultConfig(Interleaved, 2), h, fm)
		th := NewThread("walk", storeWalkProgram(t, 4096, base))
		p.BindThread(0, th)
		cycles, done, err := p.RunGuarded(50_000_000, guard.Options{ChaosSeed: seed})
		if err != nil || !done {
			t.Fatalf("seed %d: done=%v err=%v", seed, done, err)
		}
		return th.HashArchState(fm.Hash()), cycles
	}

	refHash, refCycles := run(0)
	perturbed := false
	for _, seed := range []int64{5, 77, 900001} {
		hash, cycles := run(seed)
		if hash != refHash {
			t.Errorf("seed %d: architectural hash %#x != unperturbed %#x", seed, hash, refHash)
		}
		if cycles != refCycles {
			perturbed = true
		}
	}
	if !perturbed {
		t.Error("chaos never changed execution time — perturbation is not reaching the hierarchy")
	}
}

// RunGuarded must behave exactly like the unguarded runner on the happy
// path: same completion, same cycle count, same results — with invariant
// checking on.
func TestRunGuardedMatchesRunUntilHalted(t *testing.T) {
	build := func() (*Processor, *Thread) {
		fm := mem.New()
		p := MustNewProcessor(DefaultConfig(Interleaved, 2), newFakeMem(40), fm)
		th := NewThread("sum", sumProgram(t, 500, 0x100000))
		p.BindThread(0, th)
		return p, th
	}
	p1, th1 := build()
	c1, done1 := p1.RunUntilHalted(1_000_000)
	p2, th2 := build()
	c2, done2, err := p2.RunGuarded(1_000_000, guard.Options{CheckInvariants: true, CheckEvery: 128})
	if err != nil {
		t.Fatal(err)
	}
	if !done1 || !done2 || c1 != c2 {
		t.Fatalf("guarded run diverged: (%d,%v) vs (%d,%v)", c1, done1, c2, done2)
	}
	if th1.HashArchState(0) != th2.HashArchState(0) {
		t.Error("guarded run changed architectural results")
	}
}

// A cycle budget that runs out mid-program is not an error: RunGuarded
// reports completed=false and exactly the budgeted cycles.
func TestRunGuardedLimitExceeded(t *testing.T) {
	fm := mem.New()
	p := MustNewProcessor(DefaultConfig(Single, 1), perfectMem{}, fm)
	p.BindThread(0, NewThread("spin", spinProgram(t)))
	ran, done, err := p.RunGuarded(10_000, guard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if done {
		t.Error("endless spin reported completed")
	}
	if ran < 10_000 {
		t.Errorf("ran %d cycles, want the full 10000 budget", ran)
	}
}

// With a window configured, the uniprocessor watchdog catches the spin
// well before the budget and the diagnostic names the spinning PC.
func TestRunGuardedWatchdogTripsOnSpin(t *testing.T) {
	sp := spinProgram(t)
	spin, ok := sp.Labels["spin"]
	if !ok {
		t.Fatal("no spin label")
	}
	fm := mem.New()
	p := MustNewProcessor(DefaultConfig(Interleaved, 2), perfectMem{}, fm)
	p.BindThread(0, NewThread("spin", sp))
	const limit = 1_000_000
	ran, done, err := p.RunGuarded(limit, guard.Options{WatchdogWindow: 20_000})
	if done || err == nil {
		t.Fatalf("ran=%d done=%v err=%v", ran, done, err)
	}
	se := guard.AsSimError(err)
	if se == nil || se.Op != "guard.watchdog" {
		t.Fatalf("want a guard.watchdog SimError, got %v", err)
	}
	if se.Cycle >= limit/10 {
		t.Errorf("tripped at %d, want < %d", se.Cycle, limit/10)
	}
	if se.Diag == nil {
		t.Fatal("no diagnostic")
	}
	stuck := se.Diag.StuckContexts()
	if len(stuck) != 1 {
		t.Fatalf("stuck contexts = %d, want 1", len(stuck))
	}
	// The stuck PC is inside the two-instruction spin loop.
	if pc := stuck[0].PC; pc < spin || pc > spin+1 {
		t.Errorf("stuck pc = %d, want in [%d,%d]", pc, spin, spin+1)
	}
	if !strings.Contains(se.Diag.String(), "no useful instruction retired") {
		t.Errorf("diagnostic: %s", se.Diag)
	}
}

// CheckInvariants on a live, healthy processor returns nil at every point
// we can poll it; a corrupted scoreboard is reported as a typed SimError.
func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	fm := mem.New()
	p := MustNewProcessor(DefaultConfig(Interleaved, 2), perfectMem{}, fm)
	th := NewThread("sum", sumProgram(t, 50, 0x100000))
	p.BindThread(0, th)
	for i := 0; i < 5; i++ {
		p.Run(100)
		if err := p.CheckInvariants(); err != nil {
			t.Fatalf("healthy processor failed invariants: %v", err)
		}
	}
	// Corrupt the scoreboard: R0 must never carry a dependency.
	th.regReady[0] = p.Now() + 100
	err := p.CheckInvariants()
	se := guard.AsSimError(err)
	if se == nil || se.Op != "core.invariant" {
		t.Fatalf("want core.invariant SimError, got %v", err)
	}
	if se.Diag == nil {
		t.Error("invariant violation carries no diagnostic")
	}
	th.regReady[0] = 0
}
