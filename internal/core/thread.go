package core

import (
	"math"

	"repro/internal/isa"
	"repro/internal/prog"
)

// Thread is a software thread: architectural register state plus a program
// position. Hardware contexts are loaded with threads; the workstation OS
// model swaps threads across contexts at time slices, and the
// multiprocessor binds one thread per context for an application's
// lifetime.
type Thread struct {
	Name string
	Prog *prog.Program
	PC   int
	// Regs holds the 64 architectural registers: integer registers store
	// their 32-bit value zero-extended; FP registers store
	// math.Float64bits of their value.
	Regs   [isa.NumRegs]uint64
	Halted bool
	// HaltedAt is the cycle the HALT instruction retired.
	HaltedAt int64

	// Exception state (paper §6: each context replicates an EPC). EPC
	// holds the resume point of the last trap; TrapHandler is the
	// instruction index control enters on TRAP (set with SetTrapHandler;
	// -1, the default from NewThread, makes TRAP halt the thread).
	EPC         int
	TrapHandler int
	// TrapCode is the immediate of the most recent TRAP.
	TrapCode int32

	// Retired counts useful instructions completed by this thread.
	Retired int64
	// Devoted counts processor cycles attributed to this thread: its
	// issue slots, its stalls, the switch overhead and idle time it
	// caused. The workstation's fairness normalization (paper §5.1)
	// divides Retired by Devoted to get the rate the application would
	// sustain if the OS gave it exactly 1/n of the processor.
	Devoted int64

	// Scoreboard: absolute cycle at which each register's value is
	// available for forwarding, and the slot class a stall on it should
	// be charged to.
	regReady [isa.NumRegs]int64
	regStall [isa.NumRegs]SlotClass

	// insts and codeBase cache Prog.Insts and Prog.Base: the issue stage
	// touches both every slot, and going through the Prog pointer costs
	// an extra dependent load each time.
	insts    []isa.Inst
	codeBase uint32
}

// NewThread returns a thread at the entry of p with zeroed registers and
// no trap handler.
func NewThread(name string, p *prog.Program) *Thread {
	p.EnsureDecoded()
	return &Thread{Name: name, Prog: p, TrapHandler: -1, insts: p.Insts, codeBase: p.Base}
}

// pcAddr is the byte address of instruction index idx (== Prog.PCAddr).
func (t *Thread) pcAddr(idx int) uint32 { return t.codeBase + uint32(idx)*4 }

// SetTrapHandler installs the trap handler at the named label of the
// thread's program; it panics if the label does not exist.
func (t *Thread) SetTrapHandler(label string) {
	idx, ok := t.Prog.Labels[label]
	if !ok {
		panic("core: no label " + label + " in " + t.Prog.Name)
	}
	t.TrapHandler = idx
}

// SetIntReg initializes an integer register (used to pass thread id and
// thread count to SPMD kernels).
func (t *Thread) SetIntReg(r isa.Reg, v uint32) {
	if r.IsFP() || !r.Valid() {
		panic("core: SetIntReg needs an integer register")
	}
	if r != isa.R0 {
		t.Regs[r] = uint64(v)
	}
}

// IntReg reads an integer register.
func (t *Thread) IntReg(r isa.Reg) uint32 {
	return uint32(t.Regs[r])
}

// FPReg reads a floating-point register.
func (t *Thread) FPReg(r isa.Reg) float64 {
	return math.Float64frombits(t.Regs[r])
}

// SetFPReg initializes a floating-point register.
func (t *Thread) SetFPReg(r isa.Reg, v float64) {
	if !r.IsFP() {
		panic("core: SetFPReg needs an FP register")
	}
	t.Regs[r] = math.Float64bits(v)
}

func (t *Thread) readInt(r isa.Reg) uint32 { return uint32(t.Regs[r]) }

func (t *Thread) writeInt(r isa.Reg, v uint32) {
	if r != isa.R0 {
		t.Regs[r] = uint64(v)
	}
}

func (t *Thread) readFP(r isa.Reg) float64 { return math.Float64frombits(t.Regs[r]) }

func (t *Thread) writeFP(r isa.Reg, v float64) { t.Regs[r] = math.Float64bits(v) }

// setReady records the forwarding time and stall class of a register write.
func (t *Thread) setReady(r isa.Reg, readyAt int64, cls SlotClass) {
	if r == isa.R0 || r == isa.NoReg {
		return
	}
	t.regReady[r] = readyAt
	t.regStall[r] = cls
}

// Done reports whether the thread has halted.
func (t *Thread) Done() bool { return t.Halted }
