package core

// Timing-vs-functional cross-check: an independent reference interpreter
// executes the same programs the timing simulator runs, and the final
// architectural state (registers + memory) must match exactly, for every
// scheme and under randomized cache behaviour. This is the strongest
// correctness property the engine has: no timing decision (miss replay,
// squash, switch, backoff, redirect) may ever change program semantics.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/memsys"
	"repro/internal/prog"
)

// refState is the reference interpreter: a deliberately simple, separate
// implementation of the ISA semantics (no shared code with the engine's
// evaluators beyond the isa package's declarative tables).
type refState struct {
	regs [isa.NumRegs]uint64
	mem  map[uint32]uint64 // 8-byte cells
	pc   int
}

func newRefState() *refState { return &refState{mem: make(map[uint32]uint64)} }

func (r *refState) ri(reg isa.Reg) uint32 { return uint32(r.regs[reg]) }

func (r *refState) wi(reg isa.Reg, v uint32) {
	if reg != isa.R0 {
		r.regs[reg] = uint64(v)
	}
}

func (r *refState) rf(reg isa.Reg) float64 { return math.Float64frombits(r.regs[reg]) }

func (r *refState) wf(reg isa.Reg, v float64) { r.regs[reg] = math.Float64bits(v) }

func (r *refState) loadW(addr uint32) uint32 {
	cell := r.mem[addr&^7]
	if addr&4 != 0 {
		return uint32(cell >> 32)
	}
	return uint32(cell)
}

func (r *refState) storeW(addr uint32, v uint32) {
	key := addr &^ 7
	cell := r.mem[key]
	if addr&4 != 0 {
		cell = cell&0xffff_ffff | uint64(v)<<32
	} else {
		cell = cell&^uint64(0xffff_ffff) | uint64(v)
	}
	r.mem[key] = cell
}

// run interprets p until HALT or maxSteps.
func (r *refState) run(t *testing.T, p *prog.Program, maxSteps int) {
	t.Helper()
	for step := 0; step < maxSteps; step++ {
		in := p.Insts[r.pc]
		next := r.pc + 1
		var s, tt uint32
		if in.Rs.Valid() {
			s = r.ri(in.Rs)
		}
		if in.Rt.Valid() {
			tt = r.ri(in.Rt)
		}
		switch in.Op {
		case isa.NOP, isa.BACKOFF, isa.SWITCH:
		case isa.ADD:
			r.wi(in.Rd, s+tt)
		case isa.ADDI:
			r.wi(in.Rd, s+uint32(in.Imm))
		case isa.SUB:
			r.wi(in.Rd, s-tt)
		case isa.AND:
			r.wi(in.Rd, s&tt)
		case isa.ANDI:
			r.wi(in.Rd, s&uint32(in.Imm)&0xFFFF)
		case isa.OR:
			r.wi(in.Rd, s|tt)
		case isa.ORI:
			r.wi(in.Rd, s|uint32(in.Imm)&0xFFFF)
		case isa.XOR:
			r.wi(in.Rd, s^tt)
		case isa.XORI:
			r.wi(in.Rd, s^uint32(in.Imm)&0xFFFF)
		case isa.SLT:
			r.wi(in.Rd, b2u(int32(s) < int32(tt)))
		case isa.SLTI:
			r.wi(in.Rd, b2u(int32(s) < in.Imm))
		case isa.SLTU:
			r.wi(in.Rd, b2u(s < tt))
		case isa.LUI:
			r.wi(in.Rd, uint32(in.Imm)<<16)
		case isa.SLL:
			r.wi(in.Rd, s<<(uint32(in.Imm)&31))
		case isa.SRL:
			r.wi(in.Rd, s>>(uint32(in.Imm)&31))
		case isa.SRA:
			r.wi(in.Rd, uint32(int32(s)>>(uint32(in.Imm)&31)))
		case isa.SLLV:
			r.wi(in.Rd, s<<(tt&31))
		case isa.SRLV:
			r.wi(in.Rd, s>>(tt&31))
		case isa.MUL:
			r.wi(in.Rd, s*tt)
		case isa.DIV:
			if tt == 0 {
				r.wi(in.Rd, 0)
			} else {
				r.wi(in.Rd, uint32(int32(s)/int32(tt)))
			}
		case isa.REM:
			if tt == 0 {
				r.wi(in.Rd, 0)
			} else {
				r.wi(in.Rd, uint32(int32(s)%int32(tt)))
			}
		case isa.DIVU:
			if tt == 0 {
				r.wi(in.Rd, 0)
			} else {
				r.wi(in.Rd, s/tt)
			}
		case isa.LW:
			r.wi(in.Rd, r.loadW(s+uint32(in.Imm)))
		case isa.SW:
			r.storeW(s+uint32(in.Imm), tt)
		case isa.FLD:
			r.regs[in.Rd] = r.mem[(s+uint32(in.Imm))&^7]
		case isa.FSD:
			r.mem[(s+uint32(in.Imm))&^7] = r.regs[in.Rt]
		case isa.TAS:
			addr := s + uint32(in.Imm)
			r.wi(in.Rd, r.loadW(addr))
			r.storeW(addr, 1)
		case isa.BEQ:
			if s == tt {
				next = int(in.Target)
			}
		case isa.BNE:
			if s != tt {
				next = int(in.Target)
			}
		case isa.BLEZ:
			if int32(s) <= 0 {
				next = int(in.Target)
			}
		case isa.BGTZ:
			if int32(s) > 0 {
				next = int(in.Target)
			}
		case isa.J:
			next = int(in.Target)
		case isa.JAL:
			r.wi(in.Rd, uint32(r.pc+1))
			next = int(in.Target)
		case isa.JR:
			next = int(s)
		case isa.FADD:
			r.wf(in.Rd, r.rf(in.Rs)+r.rf(in.Rt))
		case isa.FSUB:
			r.wf(in.Rd, r.rf(in.Rs)-r.rf(in.Rt))
		case isa.FMUL:
			r.wf(in.Rd, r.rf(in.Rs)*r.rf(in.Rt))
		case isa.FNEG:
			r.wf(in.Rd, -r.rf(in.Rs))
		case isa.FABS:
			r.wf(in.Rd, math.Abs(r.rf(in.Rs)))
		case isa.FCVTIW:
			r.wf(in.Rd, math.Trunc(r.rf(in.Rs)))
		case isa.FCMPLT:
			r.wi(in.Rd, b2u(r.rf(in.Rs) < r.rf(in.Rt)))
		case isa.FCMPLE:
			r.wi(in.Rd, b2u(r.rf(in.Rs) <= r.rf(in.Rt)))
		case isa.FDIVS, isa.FDIVD:
			r.wf(in.Rd, r.rf(in.Rs)/r.rf(in.Rt))
		case isa.FSQRT:
			r.wf(in.Rd, math.Sqrt(r.rf(in.Rs)))
		case isa.MTC1:
			r.wf(in.Rd, float64(int32(s)))
		case isa.MFC1:
			r.wi(in.Rd, uint32(int32(r.rf(in.Rs))))
		case isa.HALT:
			return // final state reached
		default:
			t.Fatalf("reference interpreter: unhandled op %v", in.Op)
		}
		r.pc = next
	}
	t.Fatal("reference interpreter: did not halt")
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// chaosMem is a timing memory with randomized hit/miss behaviour and
// latencies: it exercises every miss path of the engine without affecting
// functional semantics. Lines eventually become cached so replays hit.
type chaosMem struct {
	rng     *rand.Rand
	pending map[uint32]int64
	pIMiss  int // percent of I-fetch misses
	pDMiss  int // percent of first-touch data misses
}

func newChaosMem(seed int64, pI, pD int) *chaosMem {
	return &chaosMem{rng: rand.New(rand.NewSource(seed)), pending: make(map[uint32]int64), pIMiss: pI, pDMiss: pD}
}

func (c *chaosMem) FetchInst(addr uint32, now int64) (int64, bool) {
	if c.rng.Intn(100) < c.pIMiss {
		return now + int64(3+c.rng.Intn(40)), true
	}
	return now, false
}

func (c *chaosMem) AccessData(addr uint32, write bool, pc uint32, now int64) memsys.DataResult {
	line := addr >> 5
	if fill, ok := c.pending[line]; ok {
		if now >= fill {
			// Randomly evict a cached line to force an occasional re-miss.
			if c.rng.Intn(100) < 3 {
				delete(c.pending, line)
			} else {
				return memsys.DataResult{Hit: true, ReadyAt: now + 3, Class: memsys.HitL1}
			}
		} else {
			return memsys.DataResult{FillAt: fill, Class: memsys.MSHRFull}
		}
	}
	if c.rng.Intn(100) < c.pDMiss {
		fill := now + int64(5+c.rng.Intn(60))
		c.pending[line] = fill
		return memsys.DataResult{FillAt: fill, Class: memsys.Memory}
	}
	c.pending[line] = now
	return memsys.DataResult{Hit: true, ReadyAt: now + 3, Class: memsys.HitL1}
}

// randomProgram builds a halting program with random arithmetic, memory
// traffic within a private arena, data-dependent branches and short
// loops.
func randomProgram(rng *rand.Rand, name string, codeBase, dataBase uint32) *prog.Program {
	b := prog.NewBuilder(name, codeBase, dataBase, 1<<20)
	arena := b.Alloc(4096, 64)
	for i := 0; i < 16; i++ {
		b.InitW(arena+uint32(4*i), rng.Uint32())
		b.InitF(arena+2048+uint32(8*i), 1+rng.Float64()*16)
	}
	ir := func() isa.Reg { return isa.R8 + isa.Reg(rng.Intn(10)) } // R8..R17
	fr := func() isa.Reg { return isa.F8 + isa.Reg(rng.Intn(8)) }
	b.La(isa.R20, arena)                 // word arena
	b.Addi(isa.R21, isa.R20, 2048)       // double arena
	b.Li(isa.R18, uint32(2+rng.Intn(4))) // outer loop counter
	b.Label("top")
	n := 10 + rng.Intn(40)
	for i := 0; i < n; i++ {
		switch rng.Intn(28) {
		case 0:
			b.Add(ir(), ir(), ir())
		case 1:
			b.Sub(ir(), ir(), ir())
		case 2:
			b.Xor(ir(), ir(), ir())
		case 3:
			b.Addi(ir(), ir(), int32(rng.Intn(2000)-1000))
		case 4:
			b.Sll(ir(), ir(), int32(rng.Intn(8)))
		case 5:
			b.Mul(ir(), ir(), ir())
		case 6:
			b.Lw(ir(), isa.R20, int32(4*rng.Intn(64)))
		case 7:
			b.Sw(ir(), isa.R20, int32(4*rng.Intn(64)))
		case 8:
			b.Fld(fr(), isa.R21, int32(8*rng.Intn(16)))
		case 9:
			b.FAdd(fr(), fr(), fr())
		case 10:
			b.FMul(fr(), fr(), fr())
		case 11:
			// Data-dependent forward skip.
			lbl := labelName(rng)
			b.Andi(isa.R19, ir(), 1)
			b.Beq(isa.R19, isa.R0, lbl)
			b.Addi(ir(), ir(), 1)
			b.Label(lbl)
		case 12:
			b.And(ir(), ir(), ir())
		case 13:
			b.Or(ir(), ir(), ir())
		case 14:
			b.Slt(ir(), ir(), ir())
		case 15:
			b.Sltu(ir(), ir(), ir())
		case 16:
			b.Sra(ir(), ir(), int32(rng.Intn(8)))
		case 17:
			b.Srl(ir(), ir(), int32(rng.Intn(8)))
		case 18:
			b.Sllv(ir(), ir(), ir())
		case 19:
			b.Div(ir(), ir(), ir())
		case 20:
			b.Rem(ir(), ir(), ir())
		case 21:
			b.Divu(ir(), ir(), ir())
		case 22:
			b.FSub(fr(), fr(), fr())
		case 23:
			b.FNeg(fr(), fr())
		case 24:
			b.FAbs(fr(), fr())
		case 25:
			b.FCmpLe(ir(), fr(), fr())
		case 26:
			b.Mtc1(fr(), ir())
		case 27:
			// FDIV on |values| kept > 0 by FAbs+1: NaN/Inf equality in
			// the comparison would still match bit-for-bit, but keep the
			// stream numerically tame.
			b.FDivS(fr(), fr(), fr())
		}
	}
	b.Fsd(isa.F8+isa.Reg(rng.Intn(8)), isa.R21, int32(8*rng.Intn(16)))
	b.Mfc1(isa.R19, isa.F8+isa.Reg(rng.Intn(8)))
	b.Sw(isa.R19, isa.R20, 4)
	b.Addi(isa.R18, isa.R18, -1)
	b.Bgtz(isa.R18, "top")
	b.Halt()
	return b.MustBuild()
}

var labelSeq int

func labelName(rng *rand.Rand) string {
	labelSeq++
	return "skip" + string(rune('a'+labelSeq%26)) + string(rune('a'+(labelSeq/26)%26)) + string(rune('a'+(labelSeq/676)%26))
}

// TestTimingMatchesReference cross-checks every scheme against the
// reference interpreter on randomized programs over chaotic memory.
func TestTimingMatchesReference(t *testing.T) {
	schemes := []struct {
		s Scheme
		n int
	}{
		{Single, 1}, {Blocked, 2}, {Blocked, 4}, {BlockedFast, 2},
		{Interleaved, 2}, {Interleaved, 4}, {FineGrained, 4},
	}
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		nProgs := 1 + rng.Intn(4)
		var progs []*prog.Program
		for i := 0; i < nProgs; i++ {
			progs = append(progs, randomProgram(rng,
				"rnd", uint32(0x1000+i*0x40000), uint32(0x4000_0000+i*0x100000)))
		}

		// Reference run of every program.
		refs := make([]*refState, len(progs))
		refMems := make([]map[uint32]uint64, len(progs))
		for i, p := range progs {
			r := newRefState()
			for _, d := range p.Init {
				if d.Double {
					r.mem[d.Addr&^7] = d.Val
				} else {
					r.storeW(d.Addr, uint32(d.Val))
				}
			}
			r.run(t, p, 1_000_000)
			refs[i] = r
			refMems[i] = r.mem
		}

		for _, sc := range schemes {
			if sc.n > len(progs) {
				continue
			}
			fm := mem.New()
			cm := newChaosMem(int64(trial*100+int(sc.s)), 10, 40)
			p := MustNewProcessor(DefaultConfig(sc.s, sc.n), cm, fm)
			var ths []*Thread
			for i := 0; i < sc.n; i++ {
				progs[i].LoadInit(fm)
				th := NewThread("t", progs[i])
				ths = append(ths, th)
				p.BindThread(i, th)
			}
			if _, done := p.RunUntilHalted(3_000_000); !done {
				t.Fatalf("trial %d %v/%d: did not halt", trial, sc.s, sc.n)
			}
			for i, th := range ths {
				for r := isa.Reg(0); r < isa.NumRegs; r++ {
					if th.Regs[r] != refs[i].regs[r] {
						t.Fatalf("trial %d %v/%d prog %d: %v = %#x, reference %#x",
							trial, sc.s, sc.n, i, r, th.Regs[r], refs[i].regs[r])
					}
				}
				for addr, want := range refMems[i] {
					if got := fm.LoadD(addr); got != want {
						t.Fatalf("trial %d %v/%d prog %d: mem[%#x] = %#x, reference %#x",
							trial, sc.s, sc.n, i, addr, got, want)
					}
				}
			}
		}
	}
}
