package core
