package core

import (
	"fmt"
	"testing"

	"repro/internal/cache"
	"repro/internal/guard"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/prog"
)

// These tests pin the fast-forward engine's contract: for every scheme,
// a run with stall fast-forward enabled (the default) must be
// indistinguishable — same cycle count, same Stats, same slot breakdown,
// byte-identical memory and architectural state, same cache statistics —
// from the same run stepped one cycle at a time (Cfg.NoFastForward).

// stallProg builds a deliberately stall-heavy kernel: two strided sweeps
// over a 128 KiB per-thread region (L1 misses on the first pass, TLB
// pressure across threads), an integer divide per pass (35-cycle
// non-pipelined stall), and a per-thread checksum store. R4 carries the
// thread id, like the MP convention.
func stallProg(t testing.TB) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("ff-stall", 0x1000, 0x10_0000, 1<<22)
	arr := b.Alloc(4*128<<10, 64)
	res := b.Alloc(64, 64)
	b.La(isa.R1, arr)
	b.Sll(isa.R11, isa.R4, 17) // tid * 128 KiB
	b.Add(isa.R1, isa.R1, isa.R11)
	b.Li(isa.R2, 2) // passes
	b.Li(isa.R9, 7) // divisor
	b.Li(isa.R7, 0) // checksum
	b.Label("pass")
	b.Move(isa.R3, isa.R1)
	b.Li(isa.R5, (128<<10)/64) // 64-byte strides per pass
	b.Label("loop")
	b.Lw(isa.R6, isa.R3, 0)
	b.Add(isa.R7, isa.R7, isa.R6)
	b.Addi(isa.R3, isa.R3, 64)
	b.Addi(isa.R5, isa.R5, -1)
	b.Bgtz(isa.R5, "loop")
	b.Div(isa.R8, isa.R7, isa.R9)
	b.Add(isa.R7, isa.R7, isa.R8)
	b.Addi(isa.R2, isa.R2, -1)
	b.Bgtz(isa.R2, "pass")
	b.Sll(isa.R11, isa.R4, 2)
	b.La(isa.R10, res)
	b.Add(isa.R10, isa.R10, isa.R11)
	b.Sw(isa.R7, isa.R10, 0)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

type ffOutcome struct {
	cycles     int64
	halted     bool
	stats      Stats
	memHash    uint64
	archHash   uint64
	cacheStats cache.Stats
}

// runStallCell executes stallProg on a real cache hierarchy and returns
// everything the equivalence check compares.
func runStallCell(t *testing.T, scheme Scheme, nctx int, noFF bool, chaosSeed int64, limit int64) ffOutcome {
	t.Helper()
	params := cache.DefaultParams()
	if chaosSeed != 0 {
		params.Chaos = guard.Options{ChaosSeed: chaosSeed}.NewChaos()
	}
	h := cache.MustNewHierarchy(params)
	fm := mem.New()
	pr := stallProg(t)
	pr.LoadInit(fm)
	cfg := DefaultConfig(scheme, nctx)
	cfg.NoFastForward = noFF
	p := MustNewProcessor(cfg, h, fm)
	var threads []*Thread
	for i := 0; i < nctx; i++ {
		th := NewThread(fmt.Sprintf("t%d", i), pr)
		th.SetIntReg(isa.R4, uint32(i))
		p.BindThread(i, th)
		threads = append(threads, th)
	}
	cycles, halted := p.RunUntilHalted(limit)
	out := ffOutcome{
		cycles:     cycles,
		halted:     halted,
		stats:      p.Stats,
		memHash:    fm.Hash(),
		cacheStats: h.Stats,
	}
	out.archHash = out.memHash
	for _, th := range threads {
		out.archHash = th.HashArchState(out.archHash)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("%v/%d noFF=%v: %v", scheme, nctx, noFF, err)
	}
	return out
}

func compareOutcomes(t *testing.T, label string, ff, off ffOutcome) {
	t.Helper()
	if ff.cycles != off.cycles || ff.halted != off.halted {
		t.Errorf("%s: cycles/halted = %d/%v fast-forwarded, %d/%v stepped",
			label, ff.cycles, ff.halted, off.cycles, off.halted)
	}
	if ff.stats != off.stats {
		t.Errorf("%s: stats diverge\n fast-forwarded: %+v\n stepped:        %+v", label, ff.stats, off.stats)
	}
	if ff.memHash != off.memHash {
		t.Errorf("%s: memory hash %#x fast-forwarded, %#x stepped", label, ff.memHash, off.memHash)
	}
	if ff.archHash != off.archHash {
		t.Errorf("%s: arch hash %#x fast-forwarded, %#x stepped", label, ff.archHash, off.archHash)
	}
	if ff.cacheStats != off.cacheStats {
		t.Errorf("%s: cache stats diverge\n fast-forwarded: %+v\n stepped:        %+v",
			label, ff.cacheStats, off.cacheStats)
	}
}

// TestFastForwardEquivalenceUni asserts FF ON == FF OFF for every scheme
// and context count on the workstation hierarchy, with and without chaos
// perturbation.
func TestFastForwardEquivalenceUni(t *testing.T) {
	const limit = 10_000_000
	for _, scheme := range []Scheme{Single, Blocked, BlockedFast, Interleaved, FineGrained} {
		counts := []int{1, 4}
		if scheme == Single {
			counts = []int{1}
		}
		for _, nctx := range counts {
			for _, chaos := range []int64{0, 12345} {
				label := fmt.Sprintf("%v/%dctx/chaos=%d", scheme, nctx, chaos)
				ff := runStallCell(t, scheme, nctx, false, chaos, limit)
				off := runStallCell(t, scheme, nctx, true, chaos, limit)
				if !ff.halted {
					t.Fatalf("%s: did not halt within %d cycles", label, limit)
				}
				compareOutcomes(t, label, ff, off)
			}
		}
	}
}

// pushTimingMem wraps a memory system and retracts its pull-based-timing
// declaration, forcing the engine down the conservative path that caps
// every skip at NextCompletion. The cap must be invisible in results —
// only in how many jumps a region takes — and this pins that.
type pushTimingMem struct {
	*cache.Hierarchy
}

func (pushTimingMem) PullBasedTiming() bool { return false }

// TestFastForwardCappedEquivalence asserts FF ON == FF OFF when the
// memory system does not declare pull-based timing (the capCompletions
// path, unused by the real systems but load-bearing for any future
// push-based one).
func TestFastForwardCappedEquivalence(t *testing.T) {
	run := func(noFF bool) ffOutcome {
		h := cache.MustNewHierarchy(cache.DefaultParams())
		fm := mem.New()
		pr := stallProg(t)
		pr.LoadInit(fm)
		cfg := DefaultConfig(Blocked, 4)
		cfg.NoFastForward = noFF
		p := MustNewProcessor(cfg, pushTimingMem{h}, fm)
		var threads []*Thread
		for i := 0; i < 4; i++ {
			th := NewThread(fmt.Sprintf("t%d", i), pr)
			th.SetIntReg(isa.R4, uint32(i))
			p.BindThread(i, th)
			threads = append(threads, th)
		}
		cycles, halted := p.RunUntilHalted(10_000_000)
		out := ffOutcome{cycles: cycles, halted: halted, stats: p.Stats, memHash: fm.Hash(), cacheStats: h.Stats}
		out.archHash = out.memHash
		for _, th := range threads {
			out.archHash = th.HashArchState(out.archHash)
		}
		return out
	}
	ff := run(false)
	off := run(true)
	if !ff.halted {
		t.Fatal("capped run did not halt")
	}
	compareOutcomes(t, "capped/blocked/4ctx", ff, off)
}

// TestFastForwardRunChunks asserts that Run in arbitrary chunk sizes —
// which cut skip regions at awkward boundaries — accumulates exactly the
// same stats fast-forwarded as stepped cycle by cycle. (The final chunk
// runs past the halt and charges idle either way, so the comparison is
// chunked-vs-chunked, not chunked-vs-RunUntilHalted.)
func TestFastForwardRunChunks(t *testing.T) {
	run := func(noFF bool) (Stats, uint64) {
		h := cache.MustNewHierarchy(cache.DefaultParams())
		fm := mem.New()
		pr := stallProg(t)
		pr.LoadInit(fm)
		cfg := DefaultConfig(Interleaved, 4)
		cfg.NoFastForward = noFF
		p := MustNewProcessor(cfg, h, fm)
		for i := 0; i < 4; i++ {
			th := NewThread(fmt.Sprintf("t%d", i), pr)
			th.SetIntReg(isa.R4, uint32(i))
			p.BindThread(i, th)
		}
		for !p.AllHalted() {
			p.Run(97) // prime-sized chunks to land mid-region
		}
		return p.Stats, fm.Hash()
	}
	ffStats, ffHash := run(false)
	offStats, offHash := run(true)
	if ffStats != offStats {
		t.Errorf("chunked Run stats diverge\n fast-forwarded: %+v\n stepped:        %+v", ffStats, offStats)
	}
	if ffHash != offHash {
		t.Errorf("chunked Run memory hash %#x fast-forwarded, %#x stepped", ffHash, offHash)
	}
}

// TestRunUntilHaltedLimits sweeps RunUntilHalted's limit across every
// cycle of a short fine-grained run — the scheme whose fixed 34-cycle
// memory sleeps make nearly every cycle part of a skippable region — and
// checks that stopping mid-skip charges exactly `limit` cycles with the
// same breakdown as cycle-by-cycle stepping. Also covers limit 0 and
// entry with every thread already halted.
func TestRunUntilHaltedLimits(t *testing.T) {
	build := func(noFF bool) (*Processor, *mem.Memory) {
		fm := mem.New()
		pr := sumProgram(t, 6, 0x100000)
		pr.LoadInit(fm)
		cfg := DefaultConfig(FineGrained, 1)
		cfg.NoFastForward = noFF
		p := MustNewProcessor(cfg, perfectMem{}, fm)
		p.BindThread(0, NewThread("t0", pr))
		return p, fm
	}

	ref, _ := build(true)
	total, done := ref.RunUntilHalted(1 << 20)
	if !done {
		t.Fatal("reference run did not halt")
	}

	for limit := int64(0); limit <= total+3; limit++ {
		pOff, _ := build(true)
		pFF, _ := build(false)
		cOff, dOff := pOff.RunUntilHalted(limit)
		cFF, dFF := pFF.RunUntilHalted(limit)
		if cOff != cFF || dOff != dFF {
			t.Fatalf("limit %d: stepped ran %d (halted=%v), fast-forwarded ran %d (halted=%v)",
				limit, cOff, dOff, cFF, dFF)
		}
		if pOff.Stats != pFF.Stats {
			t.Fatalf("limit %d: stats diverge\n stepped:        %+v\n fast-forwarded: %+v",
				limit, pOff.Stats, pFF.Stats)
		}
		if limit < total && cFF != limit {
			t.Fatalf("limit %d: ran %d cycles, want exactly the limit", limit, cFF)
		}
	}

	// Already-halted entry: a second call must run zero cycles.
	p, _ := build(false)
	p.RunUntilHalted(1 << 20)
	if c, done := p.RunUntilHalted(1000); c != 0 || !done {
		t.Errorf("already-halted entry ran %d cycles (halted=%v), want 0/true", c, done)
	}
	// Limit 0 never advances the clock, halted or not.
	q, _ := build(false)
	if c, done := q.RunUntilHalted(0); c != 0 || done {
		t.Errorf("limit 0 ran %d cycles (halted=%v), want 0/false", c, done)
	}
}

// BenchmarkStepFastForward measures raw simulation speed on the
// stall-heavy cell with the fast-forward engine on (default) and off,
// reporting simulated cycles per wall-clock second; the on/off ratio is
// the engine's speedup on that cell. Two cells: interleaved over the
// workstation hierarchy, whose short L2-hit stalls leave little to skip
// (the ratio bounds the engine's bookkeeping overhead near 1.0), and
// fine-grained, whose fixed full-latency memory sleeps are exactly the
// regions the engine elides. The multiprocessor grid, where remote
// latencies make whole schemes skippable, is measured by cmd/bench.
func BenchmarkStepFastForward(b *testing.B) {
	for _, cell := range []struct {
		scheme Scheme
		nctx   int
	}{
		{Interleaved, 4},
		{FineGrained, 4},
	} {
		for _, bc := range []struct {
			name string
			noFF bool
		}{
			{"fast-forward", false},
			{"stepped", true},
		} {
			b.Run(fmt.Sprintf("%v/%s", cell.scheme, bc.name), func(b *testing.B) {
				var total int64
				for i := 0; i < b.N; i++ {
					h := cache.MustNewHierarchy(cache.DefaultParams())
					fm := mem.New()
					pr := stallProg(b)
					pr.LoadInit(fm)
					cfg := DefaultConfig(cell.scheme, cell.nctx)
					cfg.NoFastForward = bc.noFF
					p := MustNewProcessor(cfg, h, fm)
					for c := 0; c < cell.nctx; c++ {
						th := NewThread(fmt.Sprintf("t%d", c), pr)
						th.SetIntReg(isa.R4, uint32(c))
						p.BindThread(c, th)
					}
					cycles, halted := p.RunUntilHalted(50_000_000)
					if !halted {
						b.Fatal("did not halt")
					}
					total += cycles
				}
				b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "sim-cycles/sec")
			})
		}
	}
}

// TestFastForwardTraceDisablesSkips: a Trace hook must see every cycle,
// so the engine must refuse to skip while one is installed.
func TestFastForwardTraceDisablesSkips(t *testing.T) {
	fm := mem.New()
	pr := sumProgram(t, 4, 0x100000)
	p := MustNewProcessor(DefaultConfig(FineGrained, 1), perfectMem{}, fm)
	p.BindThread(0, NewThread("t0", pr))
	var events int64
	p.Trace = func(TraceEvent) { events++ }
	cycles, done := p.RunUntilHalted(1 << 20)
	if !done {
		t.Fatal("did not halt")
	}
	if events != cycles {
		t.Errorf("trace saw %d events over %d cycles; fast-forward must be off under tracing", events, cycles)
	}
}
