// Package fuzz is the cross-scheme differential interleaving fuzzer: a
// seeded generator of race-free SPMD programs, an orchestration layer
// that runs each program under systematically varied context orderings
// on every machine model, an oracle that hashes architectural state at
// context switches and at halt, and a shrinking pass that minimizes
// failing program/seed pairs into replayable reproducers.
//
// The safety claim under test is the paper's: the multiplexing policy —
// Blocked, Interleaved, or any switch schedule in between — must not
// change architectural semantics, only timing. Generated programs are
// data-race-free by construction (shared accumulators are only touched
// inside TAS critical sections; cross-phase reads are separated by
// sense-reversing barriers; accumulator updates are commutative), so
// their final memory must be byte-identical across every ordering,
// scheme, machine, fast-forward mode, and chaos perturbation.
package fuzz

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/prog"
)

// Program address-space constants shared by generation, replay, and the
// .s reproducer renderer (the rendered source re-assembles to the exact
// same instruction stream only because these are fixed).
const (
	CodeBase = 0x1000
	DataBase = 0x0010_0000
	DataSize = 1 << 20
)

// Register discipline. Generated programs keep ordering-independence by
// construction: every register a thread branches on or stores to memory
// holds a value that depends only on (tid, nthreads, program constants,
// barrier-separated accumulator reads) — never on how contexts were
// multiplexed. The two "dirty" registers used by spin loops (whose final
// values legitimately depend on timing) are quarantined and excluded
// from the clean digest.
const (
	regPriv  = isa.R6  // base of this thread's private arena (tid-strided)
	regBar   = isa.R7  // barrier base
	regSense = isa.R8  // barrier sense (starts 0)
	regAddr  = isa.R9  // address scratch, deterministic
	regCtr   = isa.R18 // loop counter
	regAddr2 = isa.R19 // second scratch, deterministic
	regTmp1  = isa.R24 // dirty: lock/barrier spin scratch
	regTmp2  = isa.R25 // dirty: critical-section RMW scratch
)

// cleanInts / cleanFPs are the pools generated compute ops draw from;
// their final values are ordering-independent.
var cleanInts = [...]isa.Reg{isa.R10, isa.R11, isa.R12, isa.R13, isa.R14, isa.R15, isa.R16, isa.R17}
var cleanFPs = [...]isa.Reg{isa.F8, isa.F9, isa.F10, isa.F11, isa.F12, isa.F13}

// DirtyRegs are the registers whose final values are legitimately
// timing-dependent (spin-loop scratch); the clean digest skips them.
var DirtyRegs = map[isa.Reg]bool{regTmp1: true, regTmp2: true}

// Private-arena geometry: each thread owns privStride bytes, addressed
// as privSlots 8-byte slots. Items use slots 0..privItemSlots-1; the
// epilogue dumps the clean register pools into the remaining slots so
// final memory captures the computed results.
const (
	privStride    = 256 // must stay 1<<privShift
	privShift     = 8
	privSlots     = privStride / 8
	privItemSlots = 24
)

// Item kinds — the generator grammar. Each item expands to a short,
// self-contained instruction sequence; see emitter.item.
const (
	KALU    = "alu"     // N integer ops on the clean pool, seeded by V
	KFP     = "fp"      // N floating-point ops on the clean FP pool
	KDiv    = "div"     // a long-latency op (div/rem/fdiv/fsqrt) + auto-yield
	KLoad   = "load"    // load from a read-only word (B=0) or private slot (B=1)
	KStore  = "store"   // store a clean int register to private slot A
	KStoreF = "storef"  // store a clean FP register to private slot A
	KBranch = "branch"  // data-dependent forward branch over N clean ops
	KLoop   = "loop"    // N-iteration counted loop; B>=0 adds a locked RMW on acc B
	KCrit   = "crit"    // .region sync critical section: N locked RMWs on acc B
	KRead   = "readacc" // read acc A (not updated this phase) into the clean pool
)

// Item is one grammar production. Field meaning depends on Kind (see the
// kind constants); unused fields are zero. Items are concrete — all
// indices resolved — so a Spec replays identically with no rng involved.
type Item struct {
	Kind string `json:"k"`
	A    int    `json:"a,omitempty"`
	B    int    `json:"b,omitempty"`
	N    int    `json:"n,omitempty"`
	V    uint64 `json:"v,omitempty"`
}

// Spec is a complete generated program: the JSON-serializable source of
// truth for replay. After shrinking, a Spec is no longer derivable from
// its seed, so reproducers persist the whole structure.
type Spec struct {
	Seed    int64     `json:"seed"`
	Threads int       `json:"threads"`
	NAccs   int       `json:"naccs"`
	NLocks  int       `json:"nlocks"`
	ROW     []uint32  `json:"ro_words"`
	ROD     []float64 `json:"ro_doubles"`
	AccInit []uint32  `json:"acc_init"`
	// AccOps fixes each accumulator's update operator ("add" or "xor")
	// for its whole lifetime. Updates to one accumulator must commute
	// pairwise — all-ADD or all-XOR does, but a mix like (a+v)^w depends
	// on lock-acquisition order, which would make final memory
	// schedule-dependent even with perfect locking.
	AccOps []string `json:"acc_ops"`
	// AccLock fixes which lock guards each accumulator. Every update to
	// one accumulator must go through the same lock: two critical
	// sections holding different locks can interleave their
	// load-modify-store sequences on a shared accumulator, losing
	// updates — a data race even when the operators commute.
	AccLock []int `json:"acc_lock"`
	// Mut names a deliberate semantics-breaking mutation applied after
	// build ("" = none). Used to prove the oracle catches scheme bugs.
	Mut    string   `json:"mut,omitempty"`
	Phases [][]Item `json:"phases"`
}

// MutTASPlain is the test-only injected bug: every TAS in a sync region
// is demoted to a plain LW, so locks no longer close and critical
// sections race. The oracle must observe lost updates as divergence.
const MutTASPlain = "tas-plain"

// sm is splitmix64: the only rng the fuzzer uses, so generated programs
// are stable across Go releases (unlike math/rand's default source).
type sm struct{ s uint64 }

func newSM(seed uint64) *sm { return &sm{s: seed} }

func (x *sm) next() uint64 {
	x.s += 0x9E3779B97F4A7C15
	z := x.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (x *sm) intn(n int) int { return int(x.next() % uint64(n)) }

func (x *sm) u32() uint32 { return uint32(x.next()) }

// f64 returns a finite float in roughly [-500, 500).
func (x *sm) f64() float64 { return float64(x.next()>>11)/(1<<53)*1000 - 500 }

// Generate derives a complete Spec from (seed, threads). The same pair
// always yields the same Spec; per-program seeds in a sweep come from
// experiments.DeriveSeed so neighbouring programs are decorrelated.
func Generate(seed int64, threads int) *Spec {
	r := newSM(uint64(seed) ^ 0xD1F7_0A55_5EED_F00D)
	s := &Spec{Seed: seed, Threads: threads}
	s.NAccs = 2 + r.intn(4)
	s.NLocks = 1 + r.intn(3)
	s.ROW = make([]uint32, 4+r.intn(5))
	for i := range s.ROW {
		s.ROW[i] = r.u32()
	}
	s.ROD = make([]float64, 3+r.intn(4))
	for i := range s.ROD {
		s.ROD[i] = r.f64()
	}
	s.AccInit = make([]uint32, s.NAccs)
	for i := range s.AccInit {
		s.AccInit[i] = uint32(r.intn(1000))
	}
	s.AccOps = make([]string, s.NAccs)
	for i := range s.AccOps {
		if r.intn(2) == 0 {
			s.AccOps[i] = "add"
		} else {
			s.AccOps[i] = "xor"
		}
	}
	s.AccLock = make([]int, s.NAccs)
	for i := range s.AccLock {
		s.AccLock[i] = r.intn(s.NLocks)
	}

	nPhases := 1 + r.intn(3)
	hasCrit := false
	var firstWritable []int
	for p := 0; p < nPhases; p++ {
		// Partition accumulators for this phase: crit/loop items update
		// only "writable" accs, readacc items read only the others, so a
		// phase never reads an acc it races on. At least one of each
		// side when possible.
		var writable, readable []int
		for a := 0; a < s.NAccs; a++ {
			if r.intn(2) == 0 {
				writable = append(writable, a)
			} else {
				readable = append(readable, a)
			}
		}
		if len(writable) == 0 {
			writable = append(writable, readable[len(readable)-1])
			readable = readable[:len(readable)-1]
		}
		if p == 0 {
			firstWritable = writable
		}
		nItems := 3 + r.intn(6)
		items := make([]Item, 0, nItems)
		for k := 0; k < nItems; k++ {
			it := s.genItem(r, p, writable, readable)
			if it.Kind == KCrit || (it.Kind == KLoop && it.B >= 0) {
				hasCrit = true
			}
			items = append(items, it)
		}
		s.Phases = append(s.Phases, items)
	}
	// Every program exercises the sync path at least once: the fuzzer's
	// reason to exist is the .region sync/TAS machinery.
	if !hasCrit {
		acc := firstWritable[r.intn(len(firstWritable))]
		s.Phases[0] = append(s.Phases[0], Item{
			Kind: KCrit,
			A:    s.AccLock[acc],
			B:    acc,
			N:    1 + r.intn(2),
			V:    r.next(),
		})
	}
	return s
}

func (s *Spec) genItem(r *sm, phase int, writable, readable []int) Item {
	for {
		switch r.intn(10) {
		case 0, 1:
			return Item{Kind: KALU, N: 1 + r.intn(6), V: r.next()}
		case 2:
			return Item{Kind: KFP, N: 1 + r.intn(4), V: r.next()}
		case 3:
			if r.intn(2) == 0 {
				return Item{Kind: KLoad, A: r.intn(len(s.ROW)), B: 0, V: r.next()}
			}
			return Item{Kind: KLoad, A: r.intn(privItemSlots), B: 1, V: r.next()}
		case 4:
			if r.intn(3) == 0 {
				return Item{Kind: KStoreF, A: r.intn(privItemSlots), V: r.next()}
			}
			return Item{Kind: KStore, A: r.intn(privItemSlots), V: r.next()}
		case 5:
			return Item{Kind: KBranch, N: 1 + r.intn(3), V: r.next()}
		case 6:
			it := Item{Kind: KLoop, N: 1 + r.intn(6), B: -1, V: r.next()}
			if r.intn(2) == 0 {
				it.B = writable[r.intn(len(writable))]
				it.A = s.AccLock[it.B]
			}
			return it
		case 7:
			acc := writable[r.intn(len(writable))]
			return Item{
				Kind: KCrit,
				A:    s.AccLock[acc],
				B:    acc,
				N:    1 + r.intn(3),
				V:    r.next(),
			}
		case 8:
			if len(readable) == 0 {
				continue // no safely-readable acc this phase; redraw
			}
			return Item{
				Kind: KRead,
				A:    readable[r.intn(len(readable))],
				B:    r.intn(privItemSlots),
				V:    r.next(),
			}
		case 9:
			return Item{Kind: KDiv, V: r.next()}
		}
	}
}

// Validate checks structural bounds and the race-freedom invariant: a
// readacc item must not name an accumulator updated in its own phase
// (same-phase read/update pairs would be racy, making "divergence" a
// generator artifact rather than a simulator bug). Replay and the
// native fuzz targets run this before building.
func (s *Spec) Validate() error {
	if s.Threads < 1 || s.Threads > 8 {
		return fmt.Errorf("fuzz: threads %d out of range [1,8]", s.Threads)
	}
	if s.NAccs < 1 || s.NAccs > 16 {
		return fmt.Errorf("fuzz: naccs %d out of range [1,16]", s.NAccs)
	}
	if s.NLocks < 1 || s.NLocks > 8 {
		return fmt.Errorf("fuzz: nlocks %d out of range [1,8]", s.NLocks)
	}
	if len(s.ROW) < 1 || len(s.ROW) > 64 || len(s.ROD) > 64 {
		return fmt.Errorf("fuzz: read-only pools out of range")
	}
	if len(s.AccInit) != s.NAccs {
		return fmt.Errorf("fuzz: acc_init has %d entries, want %d", len(s.AccInit), s.NAccs)
	}
	if len(s.AccOps) != s.NAccs {
		return fmt.Errorf("fuzz: acc_ops has %d entries, want %d", len(s.AccOps), s.NAccs)
	}
	for i, op := range s.AccOps {
		if op != "add" && op != "xor" {
			return fmt.Errorf("fuzz: acc_ops[%d] = %q, want add or xor", i, op)
		}
	}
	if len(s.AccLock) != s.NAccs {
		return fmt.Errorf("fuzz: acc_lock has %d entries, want %d", len(s.AccLock), s.NAccs)
	}
	for i, l := range s.AccLock {
		if l < 0 || l >= s.NLocks {
			return fmt.Errorf("fuzz: acc_lock[%d] = %d out of range [0,%d)", i, l, s.NLocks)
		}
	}
	if s.Mut != "" && s.Mut != MutTASPlain {
		return fmt.Errorf("fuzz: unknown mutation %q", s.Mut)
	}
	if len(s.Phases) < 1 || len(s.Phases) > 8 {
		return fmt.Errorf("fuzz: %d phases out of range [1,8]", len(s.Phases))
	}
	for pi, items := range s.Phases {
		if len(items) > 64 {
			return fmt.Errorf("fuzz: phase %d has %d items (max 64)", pi, len(items))
		}
		updated := map[int]bool{}
		for _, it := range items {
			if it.Kind == KCrit || (it.Kind == KLoop && it.B >= 0) {
				updated[it.B] = true
			}
		}
		for ii, it := range items {
			if err := s.validateItem(it, updated); err != nil {
				return fmt.Errorf("fuzz: phase %d item %d: %w", pi, ii, err)
			}
		}
	}
	return nil
}

func (s *Spec) validateItem(it Item, updated map[int]bool) error {
	slotOK := func(n int) bool { return n >= 0 && n < privItemSlots }
	switch it.Kind {
	case KALU:
		if it.N < 1 || it.N > 16 {
			return fmt.Errorf("alu count %d", it.N)
		}
	case KFP:
		if it.N < 1 || it.N > 16 {
			return fmt.Errorf("fp count %d", it.N)
		}
	case KDiv:
	case KLoad:
		switch it.B {
		case 0:
			if it.A < 0 || it.A >= len(s.ROW) {
				return fmt.Errorf("load ro index %d", it.A)
			}
		case 1:
			if !slotOK(it.A) {
				return fmt.Errorf("load slot %d", it.A)
			}
		default:
			return fmt.Errorf("load variant %d", it.B)
		}
	case KStore, KStoreF:
		if !slotOK(it.A) {
			return fmt.Errorf("store slot %d", it.A)
		}
	case KBranch:
		if it.N < 1 || it.N > 8 {
			return fmt.Errorf("branch body %d", it.N)
		}
	case KLoop:
		if it.N < 1 || it.N > 32 {
			return fmt.Errorf("loop count %d", it.N)
		}
		if it.B >= s.NAccs {
			return fmt.Errorf("loop acc %d", it.B)
		}
		if it.B >= 0 && it.A != s.AccLock[it.B] {
			return fmt.Errorf("loop updates acc %d under lock %d, want its assigned lock %d (cross-lock updates race)",
				it.B, it.A, s.AccLock[it.B])
		}
	case KCrit:
		if it.N < 1 || it.N > 8 {
			return fmt.Errorf("crit reps %d", it.N)
		}
		if it.B < 0 || it.B >= s.NAccs {
			return fmt.Errorf("crit acc %d", it.B)
		}
		if it.A != s.AccLock[it.B] {
			return fmt.Errorf("crit updates acc %d under lock %d, want its assigned lock %d (cross-lock updates race)",
				it.B, it.A, s.AccLock[it.B])
		}
	case KRead:
		if it.A < 0 || it.A >= s.NAccs {
			return fmt.Errorf("readacc index %d", it.A)
		}
		if !slotOK(it.B) {
			return fmt.Errorf("readacc slot %d", it.B)
		}
		if updated[it.A] {
			return fmt.Errorf("readacc %d races with a same-phase update", it.A)
		}
	default:
		return fmt.Errorf("unknown kind %q", it.Kind)
	}
	return nil
}

// Name is the program name used in builds, reproducer directories, and
// reports.
func (s *Spec) Name() string { return fmt.Sprintf("fuzz-%016x", uint64(s.Seed)) }

// Items counts grammar productions across all phases (shrinking reports
// before/after sizes in these units).
func (s *Spec) Items() int {
	n := 0
	for _, ph := range s.Phases {
		n += len(ph)
	}
	return n
}

// Clone deep-copies the spec (the shrinker mutates candidates freely).
func (s *Spec) Clone() *Spec {
	c := *s
	c.ROW = append([]uint32(nil), s.ROW...)
	c.ROD = append([]float64(nil), s.ROD...)
	c.AccInit = append([]uint32(nil), s.AccInit...)
	c.AccOps = append([]string(nil), s.AccOps...)
	c.AccLock = append([]int(nil), s.AccLock...)
	c.Phases = make([][]Item, len(s.Phases))
	for i, ph := range s.Phases {
		c.Phases[i] = append([]Item(nil), ph...)
	}
	return &c
}

// layout is the data-arena map for one build. Allocation order is fixed
// so addresses are a pure function of the Spec — the .s renderer depends
// on this to reproduce the exact same absolute addresses.
type layout struct {
	priv  uint32 // Threads × privStride, 64-aligned
	bar   uint32
	row   uint32 // len(ROW) words
	rod   uint32 // len(ROD) doubles
	acc   uint32 // NAccs words, 64-aligned
	locks []uint32
}

func allocLayout(b *prog.Builder, s *Spec) layout {
	var lay layout
	lay.priv = b.Alloc(uint32(s.Threads)*privStride, 64)
	lay.bar = b.AllocBarrier()
	lay.row = b.Alloc(uint32(len(s.ROW))*4, 8)
	lay.rod = b.Alloc(uint32(len(s.ROD))*8, 8)
	lay.acc = b.Alloc(uint32(s.NAccs)*4, 64)
	for i := 0; i < s.NLocks; i++ {
		lay.locks = append(lay.locks, b.AllocLock())
	}
	return lay
}

func (l *layout) accAddr(i int) uint32 { return l.acc + 4*uint32(i) }
func (l *layout) rowAddr(i int) uint32 { return l.row + 4*uint32(i) }
func (l *layout) rodAddr(i int) uint32 { return l.rod + 8*uint32(i) }

// BuildProgram expands the spec into a linked program compiled for the
// given yield mode. The instruction stream is identical across modes
// except for the BACKOFF/SWITCH yield points, so final memory must match
// across modes too (yields never touch registers or memory).
func BuildProgram(s *Spec, mode prog.YieldMode) (*prog.Program, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	b := prog.NewBuilder(s.Name(), CodeBase, DataBase, DataSize)
	b.SetYield(mode)
	b.SetAutoTolerate(true)
	lay := allocLayout(b, s)
	for i, v := range s.ROW {
		b.InitW(lay.rowAddr(i), v)
	}
	for i, f := range s.ROD {
		b.InitF(lay.rodAddr(i), f)
	}
	for i, v := range s.AccInit {
		b.InitW(lay.accAddr(i), v)
	}

	g := &emitter{b: b, s: s, lay: lay}
	g.prologue()
	for pi, items := range s.Phases {
		if pi > 0 {
			g.barrier()
		}
		for _, it := range items {
			g.item(it)
		}
	}
	g.epilogue()
	p, err := b.Build()
	if err != nil {
		return nil, err
	}
	if s.Mut != "" {
		if err := applyMutation(p, s.Mut); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// applyMutation injects a deliberate scheme bug after build (the Builder
// API cannot express broken sync, by design). Mutated instructions are
// re-decoded so the pipeline's hazard metadata matches the new opcode.
func applyMutation(p *prog.Program, mut string) error {
	switch mut {
	case MutTASPlain:
		hit := false
		for i := range p.Insts {
			if p.Insts[i].Op == isa.TAS {
				p.Insts[i].Op = isa.LW
				p.Insts[i].Decode()
				hit = true
			}
		}
		if !hit {
			return fmt.Errorf("fuzz: mutation %q found no TAS to break", mut)
		}
		return nil
	}
	return fmt.Errorf("fuzz: unknown mutation %q", mut)
}

// emitter expands items through the Builder.
type emitter struct {
	b    *prog.Builder
	s    *Spec
	lay  layout
	nlab int
}

func (g *emitter) label() string {
	g.nlab++
	return fmt.Sprintf("L%d", g.nlab)
}

func (g *emitter) prologue() {
	b := g.b
	// regPriv = private arena base + tid*privStride.
	b.La(regPriv, g.lay.priv)
	b.Sll(regAddr2, isa.R4, privShift)
	b.Add(regPriv, regPriv, regAddr2)
	if len(g.s.Phases) > 1 {
		b.La(regBar, g.lay.bar) // regSense starts 0 (registers reset to 0)
	}
	// Clean integer pool: tid-derived and constant seeds.
	r := newSM(uint64(g.s.Seed) ^ 0xC0DE_5EED)
	b.Addi(cleanInts[0], isa.R4, 1) // tid+1 (nonzero per-thread value)
	b.Move(cleanInts[1], isa.R5)    // nthreads
	for i := 2; i < 6; i++ {
		b.Li(cleanInts[i], r.u32())
	}
	b.Mul(cleanInts[6], cleanInts[0], cleanInts[2])
	b.Xor(cleanInts[7], cleanInts[3], cleanInts[4])
	// Clean FP pool: converted ints plus read-only doubles.
	b.Mtc1(cleanFPs[0], cleanInts[0])
	b.La(regAddr, g.lay.rod)
	for i := 0; i < 3; i++ {
		if i < len(g.s.ROD) {
			b.Fld(cleanFPs[1+i], regAddr, int32(8*i))
		} else {
			b.Mtc1(cleanFPs[1+i], cleanInts[2+i])
		}
	}
	b.Mtc1(cleanFPs[4], cleanInts[5])
	b.FAdd(cleanFPs[5], cleanFPs[0], cleanFPs[4])
}

// epilogue dumps the clean pools into the private arena (so register
// results show up in the final-memory digest) and halts.
func (g *emitter) epilogue() {
	b := g.b
	for i := 0; i < 6; i++ {
		b.Sw(cleanInts[i], regPriv, int32(privItemSlots*8+4*i))
	}
	for i := 0; i < 5; i++ {
		b.Fsd(cleanFPs[i], regPriv, int32(privItemSlots*8+24+8*i))
	}
	b.Halt()
}

func (g *emitter) barrier() {
	b := g.b
	b.Barrier(regBar, isa.R5, regSense, regTmp1, regTmp2)
}

func (g *emitter) item(it Item) {
	b := g.b
	r := newSM(it.V ^ 0x17EA_D00D)
	switch it.Kind {
	case KALU:
		for i := 0; i < it.N; i++ {
			g.aluOp(r)
		}
	case KFP:
		for i := 0; i < it.N; i++ {
			g.fpOp(r)
		}
	case KDiv:
		d := cleanInts[r.intn(len(cleanInts))]
		a := cleanInts[r.intn(len(cleanInts))]
		c := cleanInts[r.intn(len(cleanInts))]
		switch r.intn(6) {
		case 0:
			b.Div(d, a, c)
		case 1:
			b.Rem(d, a, c)
		case 2:
			b.Divu(d, a, c)
		case 3:
			b.FDivS(g.fp(r), g.fp(r), g.fp(r))
		case 4:
			b.FDivD(g.fp(r), g.fp(r), g.fp(r))
		case 5:
			b.FSqrt(g.fp(r), g.fp(r))
		}
	case KLoad:
		d := cleanInts[r.intn(len(cleanInts))]
		if it.B == 0 {
			b.La(regAddr, g.lay.rowAddr(it.A))
			b.Lw(d, regAddr, 0)
		} else {
			b.Lw(d, regPriv, int32(8*it.A))
		}
	case KStore:
		b.Sw(cleanInts[r.intn(len(cleanInts))], regPriv, int32(8*it.A))
	case KStoreF:
		b.Fsd(g.fp(r), regPriv, int32(8*it.A))
	case KBranch:
		mask := []int32{1, 3, 7}[r.intn(3)]
		skip := g.label()
		b.Andi(regAddr2, cleanInts[r.intn(len(cleanInts))], mask)
		if r.intn(2) == 0 {
			b.Beq(regAddr2, isa.R0, skip)
		} else {
			b.Bne(regAddr2, isa.R0, skip)
		}
		for i := 0; i < it.N; i++ {
			g.aluOp(r)
		}
		b.Label(skip)
	case KLoop:
		top := g.label()
		b.Li(regCtr, uint32(it.N))
		b.Label(top)
		body := 1 + r.intn(3)
		for i := 0; i < body; i++ {
			switch r.intn(3) {
			case 0:
				g.aluOp(r)
			case 1:
				b.Sw(cleanInts[r.intn(len(cleanInts))], regPriv, int32(8*r.intn(privItemSlots)))
			case 2:
				b.Lw(cleanInts[r.intn(len(cleanInts))], regPriv, int32(8*r.intn(privItemSlots)))
			}
		}
		if it.B >= 0 {
			g.critRMW(it.A, it.B, 1, r)
		}
		b.Addi(regCtr, regCtr, -1)
		b.Bgtz(regCtr, top)
	case KCrit:
		g.critRMW(it.A, it.B, it.N, r)
	case KRead:
		d := cleanInts[r.intn(len(cleanInts))]
		b.La(regAddr, g.lay.accAddr(it.A))
		b.Lw(d, regAddr, 0)
		b.Sw(d, regPriv, int32(8*it.B))
	}
	// Occasional explicit latency-tolerance point between items, so
	// blocked-scheme builds get switch opportunities in compute code.
	if r.intn(3) == 0 {
		b.Yield(int32(4 + r.intn(12)))
	}
}

// critRMW emits one critical section: acquire lock, apply n
// read-modify-writes to accumulator acc, release. Every update to a
// given accumulator — across all items, phases, and threads — uses that
// accumulator's single AccOps operator, so the updates commute pairwise
// and the final value is independent of the order threads win the lock.
// (Mixing operators on one accumulator would break this: (a+v)^w
// depends on acquisition order even with perfect locking.)
func (g *emitter) critRMW(lock, acc, n int, r *sm) {
	b := g.b
	b.La(regAddr, g.lay.locks[lock])
	b.LockAcquire(regAddr, regTmp1)
	b.La(regAddr2, g.lay.accAddr(acc))
	for j := 0; j < n; j++ {
		src := cleanInts[r.intn(len(cleanInts))]
		b.Lw(regTmp2, regAddr2, 0)
		if g.s.AccOps[acc] == "add" {
			b.Add(regTmp2, regTmp2, src)
		} else {
			b.Xor(regTmp2, regTmp2, src)
		}
		b.Sw(regTmp2, regAddr2, 0)
	}
	b.LockRelease(regAddr)
}

func (g *emitter) fp(r *sm) isa.Reg { return cleanFPs[r.intn(len(cleanFPs))] }

func (g *emitter) aluOp(r *sm) {
	b := g.b
	d := cleanInts[r.intn(len(cleanInts))]
	a := cleanInts[r.intn(len(cleanInts))]
	c := cleanInts[r.intn(len(cleanInts))]
	switch r.intn(10) {
	case 0:
		b.Add(d, a, c)
	case 1:
		b.Sub(d, a, c)
	case 2:
		b.Xor(d, a, c)
	case 3:
		b.And(d, a, c)
	case 4:
		b.Or(d, a, c)
	case 5:
		b.Sltu(d, a, c)
	case 6:
		b.Mul(d, a, c)
	case 7:
		b.Addi(d, a, int32(r.intn(255)-127))
	case 8:
		b.Xori(d, a, int32(r.intn(0x7FFF)))
	case 9:
		b.Srl(d, a, int32(r.intn(31)))
	}
}

func (g *emitter) fpOp(r *sm) {
	b := g.b
	d, a, c := g.fp(r), g.fp(r), g.fp(r)
	switch r.intn(7) {
	case 0:
		b.FAdd(d, a, c)
	case 1:
		b.FSub(d, a, c)
	case 2:
		b.FMul(d, a, c)
	case 3:
		b.FNeg(d, a)
	case 4:
		b.FAbs(d, a)
	case 5:
		b.FCvt(d, a)
	case 6:
		b.Mtc1(d, cleanInts[r.intn(len(cleanInts))])
	}
}
