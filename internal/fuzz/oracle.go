package fuzz

// The equivalence oracle. Three comparison tiers, strongest applicable
// wins:
//
//  1. Final memory (MemHash) must match across EVERY cell of a program —
//     orderings, schemes, machines, fast-forward, chaos. Generated
//     programs are race-free, so the multiplexing policy must not leak
//     into memory results.
//  2. Clean architectural state (CleanHash: PC, halt, registers minus
//     the spin scratch) must match across cells sharing a compilation
//     (yield mode): identical instruction streams must compute identical
//     clean registers regardless of schedule.
//  3. Strict groups — cells identical except fast-forward — must agree
//     on everything: cycle count, switch count, the switch-point hash
//     chain, and the full-register ArchHash. The first chain index that
//     disagrees localizes the divergence to a specific context switch.

import "fmt"

// Divergence is one oracle violation.
type Divergence struct {
	Cell string `json:"cell"`
	Ref  string `json:"ref"`  // the cell compared against
	Kind string `json:"kind"` // "mem", "clean", "strict"
	Want uint64 `json:"want"`
	Got  uint64 `json:"got"`
	// FirstSwitch is the index of the first context switch whose state
	// hash disagrees within a strict group; -1 when not applicable
	// (cross-ordering comparisons have incomparable chains).
	FirstSwitch int    `json:"first_switch"`
	Detail      string `json:"detail,omitempty"`
}

func (d Divergence) String() string {
	s := fmt.Sprintf("%s: %s vs %s: want %016x got %016x", d.Kind, d.Cell, d.Ref, d.Want, d.Got)
	if d.FirstSwitch >= 0 {
		s += fmt.Sprintf(" (first divergent switch %d)", d.FirstSwitch)
	}
	if d.Detail != "" {
		s += " " + d.Detail
	}
	return s
}

// Check compares all cell results of one program. cells[i] corresponds
// to results[i]; errored or skipped cells (nil results) are excluded
// from comparisons — they are reported separately as cell errors.
// Divergences are emitted in deterministic cell order.
func Check(cells []Cell, results []*CellResult) []Divergence {
	var divs []Divergence
	ok := func(i int) bool { return results[i] != nil && results[i].Err == "" }

	// Tier 1: global final-memory equivalence against the first healthy
	// cell (the plan puts func/rr first).
	ref := -1
	for i := range results {
		if ok(i) {
			ref = i
			break
		}
	}
	if ref < 0 {
		return nil
	}
	for i := ref + 1; i < len(results); i++ {
		if !ok(i) {
			continue
		}
		if results[i].MemHash != results[ref].MemHash {
			divs = append(divs, Divergence{
				Cell: results[i].Key, Ref: results[ref].Key, Kind: "mem",
				Want: results[ref].MemHash, Got: results[i].MemHash, FirstSwitch: -1,
			})
		}
	}

	// Tier 2: clean-state equivalence within each compilation mode.
	cleanRef := map[int]int{} // yield mode -> reference cell index
	for i := range results {
		if !ok(i) {
			continue
		}
		mode := int(results[i].Yield)
		j, seen := cleanRef[mode]
		if !seen {
			cleanRef[mode] = i
			continue
		}
		if results[i].CleanHash != results[j].CleanHash {
			divs = append(divs, Divergence{
				Cell: results[i].Key, Ref: results[j].Key, Kind: "clean",
				Want: results[j].CleanHash, Got: results[i].CleanHash, FirstSwitch: -1,
			})
		}
	}

	// Tier 3: strict fast-forward pairs.
	strictRef := map[string]int{}
	for i := range results {
		if !ok(i) {
			continue
		}
		g := cells[i].GroupKey()
		j, seen := strictRef[g]
		if !seen {
			strictRef[g] = i
			continue
		}
		a, b := results[j], results[i]
		if a.Cycles != b.Cycles || a.Switches != b.Switches || a.ArchHash != b.ArchHash || firstChainDiff(a.Chain, b.Chain) >= 0 {
			divs = append(divs, Divergence{
				Cell: b.Key, Ref: a.Key, Kind: "strict",
				Want: a.ArchHash, Got: b.ArchHash,
				FirstSwitch: firstChainDiff(a.Chain, b.Chain),
				Detail: fmt.Sprintf("(cycles %d vs %d, switches %d vs %d)",
					a.Cycles, b.Cycles, a.Switches, b.Switches),
			})
		}
	}
	return divs
}

// firstChainDiff returns the first index where the two switch-hash
// chains disagree, or -1 if one is a prefix of the other (equal-length
// equal chains included).
func firstChainDiff(a, b []uint64) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return -1
}
