package fuzz

// Native go-fuzz targets. `go test` runs only the seeded cases below
// (fast, deterministic); `go test -fuzz=FuzzGenerate ./internal/fuzz`
// explores the seed space coverage-guided. Both targets treat the seed
// as the input domain: every generated Spec must validate, build, and —
// for the differential target — agree across the quick cell grid.

import (
	"context"
	"testing"

	"repro/internal/experiments"
	"repro/internal/prog"
)

// FuzzGenerate: generation and compilation must never fail, and the
// functional executor must run every generated program to completion.
func FuzzGenerate(f *testing.F) {
	f.Add(int64(20260808), uint8(2))
	f.Add(int64(-1), uint8(0))
	f.Add(int64(831031019729586977), uint8(1))
	f.Add(int64(7077030997560528552), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, tb uint8) {
		threads := 1 + int(tb%4)
		s := Generate(seed, threads)
		if err := s.Validate(); err != nil {
			t.Fatalf("generated spec invalid: %v", err)
		}
		for _, mode := range []prog.YieldMode{prog.YieldNone, prog.YieldSwitch, prog.YieldBackoff} {
			if _, err := BuildProgram(s, mode); err != nil {
				t.Fatalf("mode %d: %v", mode, err)
			}
		}
		p, err := BuildProgram(s, prog.YieldBackoff)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := funcRun(context.Background(), p, threads, Ordering{Kind: "rr"}, 3_000_000, &recorder{}); err != nil {
			t.Fatalf("functional run: %v", err)
		}
	})
}

// FuzzDifferential: the full oracle on the quick grid — any divergence
// between orderings, schemes, or machines on a generated (race-free)
// program is a bug in either a scheme or the generator.
func FuzzDifferential(f *testing.F) {
	for i := 0; i < 4; i++ {
		f.Add(experiments.DeriveSeed(20260808, i), uint8(i))
	}
	f.Fuzz(func(t *testing.T, seed int64, tb uint8) {
		threads := 2 + int(tb%3)
		s := Generate(seed, threads)
		pool := experiments.NewPool(2)
		cells, results, err := RunProgram(context.Background(), s, true, Limits{}, pool)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range results {
			if r != nil && r.Err != "" {
				t.Fatalf("cell error: %s: %s", r.Key, r.Err)
			}
		}
		if divs := Check(cells, results); len(divs) != 0 {
			for _, d := range divs {
				t.Errorf("divergence: %s", d)
			}
		}
	})
}
