package fuzz

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
	"repro/internal/prog"
)

// TestFuzzSmoke is the tier-1 entry point: a tiny fixed-seed sweep on the
// quick grid must come back clean. Any divergence here means a scheme
// broke architectural semantics (or the generator lost race-freedom) and
// should block the build.
func TestFuzzSmoke(t *testing.T) {
	rep, err := Sweep(context.Background(), SweepConfig{
		Programs:    2,
		BaseSeed:    20260808,
		Parallelism: 2,
		Quick:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		var buf bytes.Buffer
		rep.Render(&buf)
		t.Fatalf("smoke sweep not clean:\n%s", buf.String())
	}
	if rep.TotalCells == 0 || len(rep.Programs) != 2 {
		t.Fatalf("report shape: cells=%d programs=%d", rep.TotalCells, len(rep.Programs))
	}
}

// TestGenerateAlwaysValid: Generate must produce a Validate-clean spec
// that builds under every yield mode, for a spread of seeds and thread
// counts.
func TestGenerateAlwaysValid(t *testing.T) {
	for i := 0; i < 40; i++ {
		seed := experiments.DeriveSeed(7, i)
		threads := 1 + i%4
		s := Generate(seed, threads)
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d T=%d: %v", seed, threads, err)
		}
		for _, mode := range []prog.YieldMode{prog.YieldNone, prog.YieldSwitch, prog.YieldBackoff} {
			if _, err := BuildProgram(s, mode); err != nil {
				t.Fatalf("seed %d T=%d mode %d: %v", seed, threads, mode, err)
			}
		}
	}
}

// TestValidateRejectsRaces: the validator must refuse the spec shapes
// that would make generated programs schedule-dependent — the exact bug
// classes the fuzzer itself surfaced during bring-up.
func TestValidateRejectsRaces(t *testing.T) {
	base := func() *Spec {
		return &Spec{
			Seed: 1, Threads: 2, NAccs: 2, NLocks: 2,
			ROW: []uint32{1}, AccInit: []uint32{0, 0},
			AccOps: []string{"add", "xor"}, AccLock: []int{0, 1},
			Phases: [][]Item{{{Kind: KCrit, A: 0, B: 0, N: 1}}},
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("base spec invalid: %v", err)
	}

	s := base()
	s.Phases[0] = append(s.Phases[0], Item{Kind: KCrit, A: 1, B: 0, N: 1})
	if err := s.Validate(); err == nil {
		t.Error("cross-lock update of one accumulator accepted (lost-update race)")
	}

	s = base()
	s.Phases[0][0] = Item{Kind: KLoop, A: 1, B: 0, N: 2}
	if err := s.Validate(); err == nil {
		t.Error("loop RMW under the wrong lock accepted")
	}

	s = base()
	s.AccOps = []string{"add", "sub"}
	if err := s.Validate(); err == nil {
		t.Error("non-commutative accumulator operator accepted")
	}

	s = base()
	s.AccOps = s.AccOps[:1]
	if err := s.Validate(); err == nil {
		t.Error("short acc_ops accepted")
	}

	s = base()
	s.AccLock = []int{0, 5}
	if err := s.Validate(); err == nil {
		t.Error("out-of-range acc_lock accepted")
	}

	s = base()
	s.Phases[0] = append(s.Phases[0], Item{Kind: KRead, A: 0, B: 0})
	if err := s.Validate(); err == nil {
		t.Error("same-phase read/update of one accumulator accepted")
	}
}

// TestSweepDeterministicAcrossParallelism is the grid-scale acceptance
// check: a >=500-cell fixed-seed sweep must render byte-identically at
// -j 1 and -j 8 (results are keyed by cell index, never by completion
// order).
func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	programs := 12
	if testing.Short() {
		programs = 4
	}
	render := func(par int) (string, *SweepReport) {
		rep, err := Sweep(context.Background(), SweepConfig{
			Programs:    programs,
			BaseSeed:    20260808,
			Parallelism: par,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		rep.Render(&buf)
		return buf.String(), rep
	}
	serial, rep1 := render(1)
	parallel, rep8 := render(8)
	if serial != parallel {
		t.Fatalf("report differs between -j1 and -j8:\n--- j1 ---\n%s\n--- j8 ---\n%s", serial, parallel)
	}
	if !rep1.Clean() {
		t.Fatalf("seed sweep not clean:\n%s", serial)
	}
	if !testing.Short() && rep8.TotalCells < 500 {
		t.Fatalf("grid too small for the acceptance sweep: %d cells, want >= 500", rep8.TotalCells)
	}
}

// TestInjectedSchemeBugCaught proves the oracle end to end: demote every
// TAS to a plain load (so locks and the barrier stop closing), and the
// sweep must flag the program, shrink it, and write a reproducer that
// still fails on replay.
func TestInjectedSchemeBugCaught(t *testing.T) {
	corpus := t.TempDir()
	lim := Limits{MaxCycles: 1_500_000, MaxSteps: 1_000_000}
	rep, err := Sweep(context.Background(), SweepConfig{
		Programs:     1,
		BaseSeed:     20260808,
		Threads:      2,
		Parallelism:  4,
		Quick:        true,
		CorpusDir:    corpus,
		Limits:       lim,
		Mut:          MutTASPlain,
		ShrinkBudget: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("broken TAS not detected")
	}
	pr := rep.Programs[0]
	if pr.Repro == "" {
		t.Fatal("no reproducer written")
	}
	if pr.ShrunkItems > pr.OrigItems {
		t.Fatalf("shrink grew the spec: %d -> %d items", pr.OrigItems, pr.ShrunkItems)
	}
	if _, err := os.Stat(filepath.Join(pr.Repro, "repro.s")); err != nil {
		t.Fatalf("reproducer assembly missing: %v", err)
	}

	// The minimized reproducer must still fail when replayed cold.
	loaded, err := LoadReproducer(pr.Repro)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Spec.Mut != MutTASPlain {
		t.Fatalf("reproducer lost its mutation: %q", loaded.Spec.Mut)
	}
	pool := experiments.NewPool(4)
	cells, results, err := RunProgram(context.Background(), loaded.Spec, true, lim, pool)
	if err != nil {
		t.Fatal(err)
	}
	errs := 0
	for _, r := range results {
		if r != nil && r.Err != "" {
			errs++
		}
	}
	if divs := Check(cells, results); len(divs) == 0 && errs == 0 {
		t.Fatal("minimized reproducer replays clean")
	}
}

// TestReproducerAsmRoundTrip: the rendered .s source must re-assemble to
// the exact instruction stream and data image of the original build, so
// a reproducer can be replayed through the assembler path without the
// fuzzer in the loop.
func TestReproducerAsmRoundTrip(t *testing.T) {
	for i := 0; i < 8; i++ {
		seed := experiments.DeriveSeed(991, i)
		s := Generate(seed, 1+i%4)
		if i%3 == 0 {
			s.Mut = MutTASPlain
		}
		want, err := BuildProgram(s, prog.YieldBackoff)
		if err != nil {
			t.Fatal(err)
		}
		src, err := RenderAsm(s, prog.YieldBackoff)
		if err != nil {
			t.Fatal(err)
		}
		got, err := prog.Assemble(s.Name(), CodeBase, DataBase, DataSize, src)
		if err != nil {
			t.Fatalf("seed %d: re-assemble: %v", seed, err)
		}
		if len(got.Insts) != len(want.Insts) {
			t.Fatalf("seed %d: %d insts, want %d", seed, len(got.Insts), len(want.Insts))
		}
		for j := range want.Insts {
			w, g := want.Insts[j], got.Insts[j]
			if g.Op != w.Op || g.Rd != w.Rd || g.Rs != w.Rs || g.Rt != w.Rt ||
				g.Imm != w.Imm || g.Target != w.Target || g.Region != w.Region {
				t.Fatalf("seed %d inst %d: got %+v, want %+v", seed, j, g, w)
			}
		}
		if len(got.Init) != len(want.Init) {
			t.Fatalf("seed %d: %d init entries, want %d", seed, len(got.Init), len(want.Init))
		}
		wantInit := map[uint32]uint64{}
		for _, d := range want.Init {
			wantInit[d.Addr] = d.Val
		}
		for _, d := range got.Init {
			if wantInit[d.Addr] != d.Val {
				t.Fatalf("seed %d: init at %#x = %#x, want %#x", seed, d.Addr, d.Val, wantInit[d.Addr])
			}
		}
	}
}

// TestCheckedInCorpusStillFails: every reproducer under testdata/corpus
// captures a known-bad program (injected scheme bug); each must keep
// failing on replay, or the corpus has gone stale.
func TestCheckedInCorpusStillFails(t *testing.T) {
	entries, err := os.ReadDir(filepath.Join("testdata", "corpus"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("empty corpus")
	}
	pool := experiments.NewPool(4)
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		t.Run(e.Name(), func(t *testing.T) {
			rep, err := LoadReproducer(filepath.Join("testdata", "corpus", e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			lim := Limits{MaxCycles: 1_500_000, MaxSteps: 1_000_000}
			cells, results, err := RunProgram(context.Background(), rep.Spec, true, lim, pool)
			if err != nil {
				t.Fatal(err)
			}
			errs := 0
			for _, r := range results {
				if r != nil && r.Err != "" {
					errs++
				}
			}
			if divs := Check(cells, results); len(divs) == 0 && errs == 0 {
				t.Fatal("checked-in reproducer replays clean")
			}
		})
	}
}

// TestReplayMatchesSweep: a clean program's reproducer-style replay path
// (RunProgram + Check on a loaded spec) agrees with the sweep path.
func TestReplayMatchesSweep(t *testing.T) {
	dir := t.TempDir()
	s := Generate(experiments.DeriveSeed(20260808, 0), 2)
	sub, err := WriteReproducer(dir, s, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadReproducer(sub)
	if err != nil {
		t.Fatal(err)
	}
	pool := experiments.NewPool(2)
	cells, results, err := RunProgram(context.Background(), loaded.Spec, true, Limits{}, pool)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r != nil && r.Err != "" {
			t.Fatalf("cell error on clean program: %s: %s", r.Key, r.Err)
		}
	}
	if divs := Check(cells, results); len(divs) != 0 {
		t.Fatalf("clean program diverged on replay: %v", divs)
	}
}
