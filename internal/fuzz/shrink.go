package fuzz

// Shrinking: minimize a failing spec while it keeps failing the oracle.
// Classic ddmin-style chunk removal over grammar items, then scalar
// reductions (loop counts, thread count), then structural cleanup
// (trailing empty phases). Every candidate is validated and re-run
// through the full predicate, so a shrunk reproducer is guaranteed to
// still fail — and because specs are concrete item lists (not seeds),
// the minimized program replays byte-identically.

import (
	"context"

	"repro/internal/experiments"
	"repro/internal/guard"
)

// defaultShrinkBudget bounds oracle evaluations per shrink. Each
// evaluation runs a full cell grid, so the budget is the knob trading
// shrink quality for time.
const defaultShrinkBudget = 150

// Shrink minimizes spec under the predicate "the oracle still reports a
// divergence or cell error on the same plan". Returns the smallest
// failing spec found (possibly the original). Only cancellation returns
// an error.
func Shrink(ctx context.Context, spec *Spec, quick bool, lim Limits, pool *experiments.Pool, budget int) (*Spec, error) {
	if budget <= 0 {
		budget = defaultShrinkBudget
	}
	evals := 0
	var lastErr error
	fails := func(s *Spec) bool {
		if lastErr != nil || evals >= budget || s.Validate() != nil {
			return false
		}
		evals++
		cells, results, err := RunProgram(ctx, s, quick, lim, pool)
		if err != nil {
			// Cancellation aborts the shrink; any other program-level
			// error (e.g. a mutation with nothing left to mutate after a
			// removal) just marks the candidate infeasible.
			if guard.IsCancellation(err) || ctx.Err() != nil {
				lastErr = err
			}
			return false
		}
		for _, r := range results {
			if r != nil && r.Err != "" {
				return true
			}
		}
		return len(Check(cells, results)) > 0
	}

	cur := spec.Clone()
	if !fails(cur) {
		// The caller's failure did not reproduce (or was canceled):
		// return the original unshrunk.
		return spec.Clone(), lastErr
	}

	// Pass 1: ddmin-lite over the flat item list, chunk sizes n/2 … 1.
	type coord struct{ phase, idx int }
	flatten := func(s *Spec) []coord {
		var cs []coord
		for p, items := range s.Phases {
			for i := range items {
				cs = append(cs, coord{p, i})
			}
		}
		return cs
	}
	without := func(s *Spec, drop map[coord]bool) *Spec {
		c := s.Clone()
		for p := range c.Phases {
			var kept []Item
			for i, it := range c.Phases[p] {
				if !drop[coord{p, i}] {
					kept = append(kept, it)
				}
			}
			c.Phases[p] = kept
		}
		return c
	}
	for chunk := len(flatten(cur)) / 2; chunk >= 1; chunk /= 2 {
		for start := 0; ; {
			coords := flatten(cur)
			if start >= len(coords) {
				break
			}
			drop := map[coord]bool{}
			for i := start; i < start+chunk && i < len(coords); i++ {
				drop[coords[i]] = true
			}
			if cand := without(cur, drop); fails(cand) {
				cur = cand // indices shifted; retry same start
			} else {
				start += chunk
			}
			if lastErr != nil {
				return cur, lastErr
			}
		}
	}

	// Pass 2: scalar reduction — shrink every N toward 1.
	for p := range cur.Phases {
		for i := range cur.Phases[p] {
			for cur.Phases[p][i].N > 1 {
				cand := cur.Clone()
				cand.Phases[p][i].N /= 2
				if !fails(cand) {
					break
				}
				cur = cand
			}
			if lastErr != nil {
				return cur, lastErr
			}
		}
	}

	// Pass 3: drop trailing empty phases (each costs a barrier).
	for len(cur.Phases) > 1 && len(cur.Phases[len(cur.Phases)-1]) == 0 {
		cand := cur.Clone()
		cand.Phases = cand.Phases[:len(cand.Phases)-1]
		if !fails(cand) {
			break
		}
		cur = cand
	}

	// Pass 4: fewer threads.
	for cur.Threads > 2 {
		cand := cur.Clone()
		cand.Threads--
		if !fails(cand) {
			break
		}
		cur = cand
	}
	return cur, lastErr
}
