package fuzz

// The sweep driver: generate programs from a base seed, fan each
// program's cell grid through the experiment pool, check the oracle,
// shrink failures into reproducers, and render a deterministic report
// (byte-identical at any parallelism level — results are collected by
// cell index, and program reports are emitted in program order).

import (
	"context"
	"fmt"
	"io"
	"sort"

	"repro/internal/experiments"
	"repro/internal/guard"
)

// SweepConfig parameterizes a differential sweep.
type SweepConfig struct {
	Programs    int    `json:"programs"`
	BaseSeed    int64  `json:"base_seed"`
	Threads     int    `json:"threads,omitempty"` // 0: vary 2..4 per program
	Parallelism int    `json:"-"`
	Quick       bool   `json:"quick,omitempty"`
	CorpusDir   string `json:"-"` // "" disables reproducer writing
	Limits      Limits `json:"-"`
	// Mut applies a deliberate scheme-breaking mutation to every
	// generated program (test-only; proves the oracle catches bugs).
	Mut string `json:"mut,omitempty"`
	// ShrinkBudget bounds oracle evaluations per shrink (0: default).
	ShrinkBudget int `json:"-"`
}

// ProgramReport is the per-program outcome.
type ProgramReport struct {
	Index       int          `json:"index"`
	Seed        int64        `json:"seed"`
	Threads     int          `json:"threads"`
	Cells       int          `json:"cells"`
	CellErrors  []string     `json:"cell_errors,omitempty"`
	Divergences []Divergence `json:"divergences,omitempty"`
	// Shrinking outcome, present only when the program failed and a
	// corpus directory was configured.
	Repro       string `json:"repro,omitempty"`
	OrigItems   int    `json:"orig_items,omitempty"`
	ShrunkItems int    `json:"shrunk_items,omitempty"`
}

// SweepReport is the full sweep outcome.
type SweepReport struct {
	Config      SweepConfig     `json:"config"`
	Programs    []ProgramReport `json:"programs"`
	TotalCells  int             `json:"total_cells"`
	Divergences int             `json:"divergences"`
	CellErrors  int             `json:"cell_errors"`
	Interrupted bool            `json:"interrupted,omitempty"`
}

// Clean reports whether the sweep found nothing.
func (r *SweepReport) Clean() bool { return r.Divergences == 0 && r.CellErrors == 0 }

// threadsFor picks the thread count of program i: fixed when configured,
// else cycling 2, 3, 4 so every sweep covers odd and even splits.
func (c SweepConfig) threadsFor(i int) int {
	if c.Threads > 0 {
		return c.Threads
	}
	return 2 + i%3
}

// RunProgram runs one spec's full cell grid through the pool and checks
// the oracle. Cell errors become report entries; only cancellation and
// spec-level build failures return an error.
func RunProgram(ctx context.Context, s *Spec, quick bool, lim Limits, pool *experiments.Pool) ([]Cell, []*CellResult, error) {
	cells := PlanCells(s, quick)
	results := make([]*CellResult, len(cells))
	err := pool.Run(ctx, len(cells), func(ctx context.Context, i int) error {
		res, err := RunCell(ctx, s, cells[i], lim)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return cells, results, nil
}

// Sweep runs the full differential sweep. On cancellation it returns the
// report of the programs completed so far with Interrupted set, plus the
// cancellation error.
func Sweep(ctx context.Context, cfg SweepConfig) (*SweepReport, error) {
	pool := experiments.NewPool(cfg.Parallelism)
	rep := &SweepReport{Config: cfg}
	for i := 0; i < cfg.Programs; i++ {
		if ctx.Err() != nil {
			rep.Interrupted = true
			return rep, ctx.Err()
		}
		seed := experiments.DeriveSeed(cfg.BaseSeed, i)
		spec := Generate(seed, cfg.threadsFor(i))
		spec.Mut = cfg.Mut
		pr := ProgramReport{Index: i, Seed: seed, Threads: spec.Threads}
		cells, results, err := RunProgram(ctx, spec, cfg.Quick, cfg.Limits, pool)
		if err != nil {
			if guard.IsCancellation(err) || ctx.Err() != nil {
				rep.Interrupted = true
				return rep, err
			}
			return rep, err
		}
		pr.Cells = len(cells)
		rep.TotalCells += len(cells)
		for _, res := range results {
			if res != nil && res.Err != "" {
				pr.CellErrors = append(pr.CellErrors, res.Key+": "+res.Err)
			}
		}
		pr.Divergences = Check(cells, results)
		rep.Divergences += len(pr.Divergences)
		rep.CellErrors += len(pr.CellErrors)

		if (len(pr.Divergences) > 0 || len(pr.CellErrors) > 0) && cfg.CorpusDir != "" {
			min, err := Shrink(ctx, spec, cfg.Quick, cfg.Limits, pool, cfg.ShrinkBudget)
			if err != nil {
				if guard.IsCancellation(err) || ctx.Err() != nil {
					rep.Interrupted = true
					rep.Programs = append(rep.Programs, pr)
					return rep, err
				}
				return rep, err
			}
			pr.OrigItems = spec.Items()
			pr.ShrunkItems = min.Items()
			dir, werr := WriteReproducer(cfg.CorpusDir, min, pr.Divergences, pr.CellErrors)
			if werr != nil {
				return rep, werr
			}
			pr.Repro = dir
		}
		rep.Programs = append(rep.Programs, pr)
	}
	return rep, nil
}

// Render writes the human-readable sweep report. Output is fully
// deterministic: program order, cell-index-ordered divergences, and
// sorted error lists.
func (r *SweepReport) Render(w io.Writer) {
	fmt.Fprintf(w, "differential sweep: %d programs, %d cells, base seed %d\n",
		len(r.Programs), r.TotalCells, r.Config.BaseSeed)
	if r.Config.Mut != "" {
		fmt.Fprintf(w, "injected mutation: %s\n", r.Config.Mut)
	}
	for _, pr := range r.Programs {
		status := "ok"
		if len(pr.Divergences) > 0 || len(pr.CellErrors) > 0 {
			status = "FAIL"
		}
		fmt.Fprintf(w, "  [%3d] seed %-20d T=%d cells=%-3d %s\n", pr.Index, pr.Seed, pr.Threads, pr.Cells, status)
		errs := append([]string(nil), pr.CellErrors...)
		sort.Strings(errs)
		for _, e := range errs {
			fmt.Fprintf(w, "        error: %s\n", e)
		}
		for _, d := range pr.Divergences {
			fmt.Fprintf(w, "        divergence: %s\n", d)
		}
		if pr.Repro != "" {
			fmt.Fprintf(w, "        reproducer: %s (%d -> %d items)\n", pr.Repro, pr.OrigItems, pr.ShrunkItems)
		}
	}
	if r.Interrupted {
		fmt.Fprintf(w, "interrupted: %d/%d programs completed\n", len(r.Programs), r.Config.Programs)
		return
	}
	if r.Clean() {
		fmt.Fprintf(w, "clean sweep: %d cells, all orderings/schemes/machines agree\n", r.TotalCells)
	} else {
		fmt.Fprintf(w, "FAIL: %d divergences, %d cell errors\n", r.Divergences, r.CellErrors)
	}
}
