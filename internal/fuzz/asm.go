package fuzz

// Reproducer rendering and I/O. A reproducer directory holds:
//
//	repro.json — the full Spec (the replay source of truth) plus the
//	             divergences that condemned it
//	repro.s    — the interleaved-mode build rendered as assembler
//	             source, byte-exactly re-assemblable to the same
//	             instruction stream (verified by round-trip test), so a
//	             failing program can be inspected and replayed through
//	             cmd/asmrun without the fuzzer in the loop
//
// Rendering depends on the fixed CodeBase/DataBase layout: generated
// instructions address data absolutely (via lui/ori), so the .s file
// reserves one arena symbol at the data base and re-creates every
// initial value at its original offset.

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/isa"
	"repro/internal/prog"
)

// ReproVersion guards the reproducer JSON schema.
const ReproVersion = 1

// Reproducer is the persisted failing case.
type Reproducer struct {
	Version     int          `json:"version"`
	Spec        *Spec        `json:"spec"`
	Divergences []Divergence `json:"divergences,omitempty"`
	CellErrors  []string     `json:"cell_errors,omitempty"`
}

// WriteReproducer persists a minimized failing spec under dir (one
// subdirectory per program name) and returns the subdirectory path.
func WriteReproducer(dir string, s *Spec, divs []Divergence, cellErrs []string) (string, error) {
	sub := filepath.Join(dir, s.Name())
	if err := os.MkdirAll(sub, 0o755); err != nil {
		return "", err
	}
	rep := &Reproducer{Version: ReproVersion, Spec: s, Divergences: divs, CellErrors: cellErrs}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(filepath.Join(sub, "repro.json"), append(blob, '\n'), 0o644); err != nil {
		return "", err
	}
	src, err := RenderAsm(s, prog.YieldBackoff)
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(filepath.Join(sub, "repro.s"), []byte(src), 0o644); err != nil {
		return "", err
	}
	return sub, nil
}

// LoadReproducer reads a reproducer from a directory (containing
// repro.json) or directly from a JSON file.
func LoadReproducer(path string) (*Reproducer, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if st.IsDir() {
		path = filepath.Join(path, "repro.json")
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Reproducer
	if err := json.Unmarshal(blob, &rep); err != nil {
		return nil, fmt.Errorf("fuzz: %s: %w", path, err)
	}
	if rep.Version != ReproVersion {
		return nil, fmt.Errorf("fuzz: %s: reproducer version %d, want %d", path, rep.Version, ReproVersion)
	}
	if rep.Spec == nil {
		return nil, fmt.Errorf("fuzz: %s: no spec", path)
	}
	if err := rep.Spec.Validate(); err != nil {
		return nil, fmt.Errorf("fuzz: %s: %w", path, err)
	}
	return &rep, nil
}

// RenderAsm renders the spec's build for the given yield mode as
// assembler source accepted by prog.Assemble with the same code/data
// bases. Yield instructions are rendered as explicit backoff/switch
// mnemonics (which bypass the assembler's yield-mode indirection), so
// the round trip is instruction-exact.
func RenderAsm(s *Spec, mode prog.YieldMode) (string, error) {
	p, err := BuildProgram(s, mode)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# interleavefuzz reproducer %s\n", s.Name())
	fmt.Fprintf(&b, "# seed %d, threads %d, yield mode %d\n", s.Seed, s.Threads, mode)
	if s.Mut != "" {
		fmt.Fprintf(&b, "# injected mutation: %s\n", s.Mut)
	}
	fmt.Fprintf(&b, "# assemble with code base %#x, data base %#x, arena %d bytes\n", CodeBase, DataBase, DataSize)
	fmt.Fprintf(&b, "# SPMD: r4 = thread id, r5 = thread count\n")
	fmt.Fprintf(&b, ".alloc D %d 64\n", DataSize)
	for _, d := range p.Init {
		off := d.Addr - DataBase
		if d.Double {
			fmt.Fprintf(&b, ".double D+%d %s\n", off,
				strconv.FormatFloat(math.Float64frombits(d.Val), 'g', -1, 64))
		} else {
			fmt.Fprintf(&b, ".word D+%d %#x\n", off, uint32(d.Val))
		}
	}

	targets := map[int]bool{}
	for _, in := range p.Insts {
		switch in.Op {
		case isa.BEQ, isa.BNE, isa.BLEZ, isa.BGTZ, isa.J, isa.JAL:
			targets[int(in.Target)] = true
		}
	}
	region := isa.RegionNormal
	for i, in := range p.Insts {
		if targets[i] {
			fmt.Fprintf(&b, "L%d:\n", i)
		}
		if in.Region != region {
			region = in.Region
			if region == isa.RegionSync {
				b.WriteString(".region sync\n")
			} else {
				b.WriteString(".region normal\n")
			}
		}
		stmt, err := renderInst(in)
		if err != nil {
			return "", fmt.Errorf("fuzz: render inst %d: %w", i, err)
		}
		b.WriteString("\t" + stmt + "\n")
	}
	return b.String(), nil
}

func regName(r isa.Reg) string {
	if r.IsFP() {
		return fmt.Sprintf("f%d", int(r)-32)
	}
	return fmt.Sprintf("r%d", int(r))
}

func renderInst(in isa.Inst) (string, error) {
	rrr := func(m string) string {
		return fmt.Sprintf("%s %s, %s, %s", m, regName(in.Rd), regName(in.Rs), regName(in.Rt))
	}
	rri := func(m string) string {
		return fmt.Sprintf("%s %s, %s, %d", m, regName(in.Rd), regName(in.Rs), in.Imm)
	}
	rr := func(m string) string {
		return fmt.Sprintf("%s %s, %s", m, regName(in.Rd), regName(in.Rs))
	}
	load := func(m string) string {
		return fmt.Sprintf("%s %s, %d(%s)", m, regName(in.Rd), in.Imm, regName(in.Rs))
	}
	store := func(m string) string {
		return fmt.Sprintf("%s %s, %d(%s)", m, regName(in.Rt), in.Imm, regName(in.Rs))
	}
	br2 := func(m string) string {
		return fmt.Sprintf("%s %s, %s, L%d", m, regName(in.Rs), regName(in.Rt), in.Target)
	}
	br1 := func(m string) string {
		return fmt.Sprintf("%s %s, L%d", m, regName(in.Rs), in.Target)
	}
	switch in.Op {
	case isa.NOP:
		return "nop", nil
	case isa.HALT:
		return "halt", nil
	case isa.ERET:
		return "eret", nil
	case isa.TRAP:
		return fmt.Sprintf("trap %d", in.Imm), nil
	case isa.BACKOFF:
		return fmt.Sprintf("backoff %d", in.Imm), nil
	case isa.SWITCH:
		return fmt.Sprintf("switch %d", in.Imm), nil
	case isa.ADD:
		return rrr("add"), nil
	case isa.SUB:
		return rrr("sub"), nil
	case isa.AND:
		return rrr("and"), nil
	case isa.OR:
		return rrr("or"), nil
	case isa.XOR:
		return rrr("xor"), nil
	case isa.SLT:
		return rrr("slt"), nil
	case isa.SLTU:
		return rrr("sltu"), nil
	case isa.SLLV:
		return rrr("sllv"), nil
	case isa.SRLV:
		return rrr("srlv"), nil
	case isa.MUL:
		return rrr("mul"), nil
	case isa.DIV:
		return rrr("div"), nil
	case isa.REM:
		return rrr("rem"), nil
	case isa.DIVU:
		return rrr("divu"), nil
	case isa.ADDI:
		return rri("addi"), nil
	case isa.ANDI:
		return rri("andi"), nil
	case isa.ORI:
		return rri("ori"), nil
	case isa.XORI:
		return rri("xori"), nil
	case isa.SLTI:
		return rri("slti"), nil
	case isa.SLL:
		return rri("sll"), nil
	case isa.SRL:
		return rri("srl"), nil
	case isa.SRA:
		return rri("sra"), nil
	case isa.LUI:
		return fmt.Sprintf("lui %s, %d", regName(in.Rd), in.Imm), nil
	case isa.LW:
		return load("lw"), nil
	case isa.FLD:
		return load("fld"), nil
	case isa.TAS:
		return load("tas"), nil
	case isa.SW:
		return store("sw"), nil
	case isa.FSD:
		return store("fsd"), nil
	case isa.BEQ:
		return br2("beq"), nil
	case isa.BNE:
		return br2("bne"), nil
	case isa.BLEZ:
		return br1("blez"), nil
	case isa.BGTZ:
		return br1("bgtz"), nil
	case isa.J:
		return fmt.Sprintf("j L%d", in.Target), nil
	case isa.JAL:
		return fmt.Sprintf("jal L%d", in.Target), nil
	case isa.JR:
		return fmt.Sprintf("jr %s", regName(in.Rs)), nil
	case isa.FADD:
		return rrr("fadd"), nil
	case isa.FSUB:
		return rrr("fsub"), nil
	case isa.FMUL:
		return rrr("fmul"), nil
	case isa.FDIVS:
		return rrr("fdivs"), nil
	case isa.FDIVD:
		return rrr("fdivd"), nil
	case isa.FCMPLT:
		return rrr("fcmplt"), nil
	case isa.FCMPLE:
		return rrr("fcmple"), nil
	case isa.FNEG:
		return rr("fneg"), nil
	case isa.FABS:
		return rr("fabs"), nil
	case isa.FSQRT:
		return rr("fsqrt"), nil
	case isa.FCVTIW:
		return rr("fcvt"), nil
	case isa.MTC1:
		return rr("mtc1"), nil
	case isa.MFC1:
		return rr("mfc1"), nil
	}
	return "", fmt.Errorf("no assembler syntax for op %v", in.Op)
}
