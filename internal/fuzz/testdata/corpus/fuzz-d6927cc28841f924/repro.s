# interleavefuzz reproducer fuzz-d6927cc28841f924
# seed -2985186428041692892, threads 2, yield mode 1
# injected mutation: tas-plain
# assemble with code base 0x1000, data base 0x100000, arena 1048576 bytes
# SPMD: r4 = thread id, r5 = thread count
.alloc D 1048576 64
.word D+704 0xd2d86e25
.word D+708 0xd156bab2
.word D+712 0xa320785c
.word D+716 0xcb78d037
.word D+720 0x965638fd
.word D+724 0xb494afb0
.word D+728 0x2f3e670d
.double D+736 324.2606418836448
.double D+744 -37.22474396715194
.double D+752 -61.29623527976315
.word D+768 0x250
.word D+772 0x133
.word D+776 0x174
.word D+780 0x314
	lui r6, 16
	sll r19, r4, 8
	add r6, r6, r19
	addi r10, r4, 1
	or r11, r5, r0
	lui r12, 1492
	ori r12, r12, 30383
	lui r13, 2024
	ori r13, r13, 38644
	lui r14, 46891
	ori r14, r14, 62281
	lui r15, 48968
	ori r15, r15, 43768
	mul r16, r10, r12
	xor r17, r13, r14
	mtc1 f8, r10
	lui r9, 16
	ori r9, r9, 736
	fld f9, 0(r9)
	fld f10, 8(r9)
	fld f11, 16(r9)
	mtc1 f12, r15
	fadd f13, f8, f12
	lui r9, 16
	ori r9, r9, 832
L25:
.region sync
	lw r24, 0(r9)
	beq r24, r0, L31
L27:
	backoff 16
	lw r24, 0(r9)
	beq r24, r0, L25
	j L27
L31:
.region normal
	lui r19, 16
	ori r19, r19, 768
	lw r25, 0(r19)
	xor r25, r25, r16
	sw r25, 0(r19)
.region sync
	sw r0, 0(r9)
.region normal
	sw r10, 192(r6)
	sw r11, 196(r6)
	sw r12, 200(r6)
	sw r13, 204(r6)
	sw r14, 208(r6)
	sw r15, 212(r6)
	fsd f8, 216(r6)
	fsd f9, 224(r6)
	fsd f10, 232(r6)
	fsd f11, 240(r6)
	fsd f12, 248(r6)
	halt
