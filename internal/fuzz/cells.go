package fuzz

// Cell planning and execution: one generated program fans out into a
// grid of (machine, ordering/scheme, fast-forward, chaos) cells, each of
// which produces a digest record the oracle compares.

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/guard"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/mp"
	"repro/internal/osmodel"
	"repro/internal/prog"
	"repro/internal/snapshot"
	"repro/internal/workstation"
)

// Limits bounds a single cell. The zero value selects defaults generous
// enough for every generated program (normal runs finish in tens of
// thousands of cycles; the bound exists to convert deadlock into a
// reported cell error instead of a hang).
type Limits struct {
	MaxCycles int64 // timing machines
	MaxSteps  int64 // functional executor
}

func (l Limits) withDefaults() Limits {
	if l.MaxCycles <= 0 {
		l.MaxCycles = 12_000_000
	}
	if l.MaxSteps <= 0 {
		l.MaxSteps = 3_000_000
	}
	return l
}

// Cell names one execution of a generated program.
type Cell struct {
	Machine  string      // "func", "uni", "ws", "mp"
	Ordering Ordering    // functional executor only
	Scheme   core.Scheme // timing machines only
	Procs    int         // mp only
	Contexts int         // contexts per processor (timing machines)
	FF       bool        // fast-forward engine on
	Chaos    int64       // chaos latency-injection seed, 0 = off
	// Restore forks the run through the snapshot codec: the machine is
	// serialized at a derived 64-cycle block boundary, restored into a
	// freshly built twin, and finished there. The switch recorder spans
	// both phases, so the oracle compares the forked cell's full digest
	// — cycles, switch chain, arch hash — strictly against its unforked
	// sibling ("uni" machine only).
	Restore bool
}

// Key is the cell's stable identity, used in reports and divergence
// records.
func (c Cell) Key() string {
	switch c.Machine {
	case "func":
		return "func/" + c.Ordering.String()
	case "mp":
		return fmt.Sprintf("mp/p%dc%d/%s/%s%s%s", c.Procs, c.Contexts, c.Scheme, ffTag(c.FF), chaosTag(c.Chaos), restoreTag(c.Restore))
	default:
		return fmt.Sprintf("%s/%s/%s%s%s", c.Machine, c.Scheme, ffTag(c.FF), chaosTag(c.Chaos), restoreTag(c.Restore))
	}
}

// GroupKey identifies the strict-comparison group: cells differing only
// in fast-forward mode or a snapshot fork are the same machine at the
// same cycle-level schedule, so their cycle counts, switch chains, and
// full register hashes must all match exactly.
func (c Cell) GroupKey() string {
	c.FF = false
	c.Restore = false
	return c.Key()
}

func ffTag(ff bool) string {
	if ff {
		return "ff"
	}
	return "noff"
}

func chaosTag(seed int64) string {
	if seed != 0 {
		return "/chaos"
	}
	return ""
}

func restoreTag(restore bool) string {
	if restore {
		return "/restore"
	}
	return ""
}

// yieldMode is the compilation mode for the cell's machine: the
// functional executor uses the interleaved (backoff) build.
func (c Cell) yieldMode() prog.YieldMode {
	if c.Machine == "func" {
		return prog.YieldBackoff
	}
	return workstation.YieldModeFor(c.Scheme)
}

// CellResult is the digest record a cell produces.
type CellResult struct {
	Key   string         `json:"key"`
	Yield prog.YieldMode `json:"yield"`
	// MemHash digests final memory — must match across every cell of the
	// program.
	MemHash uint64 `json:"mem_hash"`
	// CleanHash digests final PC/halt/registers excluding the dirty spin
	// scratch — must match across cells sharing a build (yield mode).
	CleanHash uint64 `json:"clean_hash"`
	// ArchHash is the full-state digest (memory + every register) — must
	// match within a strict (fast-forward on/off) group.
	ArchHash uint64 `json:"arch_hash"`
	// Cycles is the cell's cycle count (instruction steps for the
	// functional executor).
	Cycles int64 `json:"cycles"`
	// Switches counts context switches; Chain holds the state hash taken
	// at each of the first maxChain switches.
	Switches int64    `json:"switches"`
	Chain    []uint64 `json:"-"`
	Err      string   `json:"err,omitempty"`
}

// maxChain bounds the per-cell switch-hash chain; switches beyond it are
// still counted. Spin-heavy schedules can switch millions of times;
// chains exist to localize divergence, not to archive every switch.
const maxChain = 2048

const fnvOffset = 14695981039346656037

func mixU64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xFF
		h *= 1099511628211
		v >>= 8
	}
	return h
}

// recorder accumulates the switch-point hash chain for one cell.
type recorder struct {
	chain    []uint64
	switches int64
}

// observe hashes memory plus the switching-away thread's architectural
// state at a context-switch point.
func (r *recorder) observe(m *mem.Memory, th *core.Thread, proc, ctx int, now int64) {
	r.switches++
	if len(r.chain) >= maxChain {
		return
	}
	h := mixU64(fnvOffset, uint64(now))
	h = mixU64(h, uint64(proc)<<32|uint64(uint32(ctx)))
	h = mixU64(h, m.Hash())
	r.chain = append(r.chain, th.HashArchState(h))
}

// cleanHash digests the ordering-independent architectural state: PC,
// halt flag, and every register except the quarantined spin scratch.
func cleanHash(ths []*core.Thread) uint64 {
	h := uint64(fnvOffset)
	for _, th := range ths {
		h = mixU64(h, uint64(uint32(th.PC)))
		if th.Halted {
			h = mixU64(h, 1)
		} else {
			h = mixU64(h, 0)
		}
		for r, v := range th.Regs {
			if DirtyRegs[isa.Reg(r)] {
				continue
			}
			h = mixU64(h, v)
		}
	}
	return h
}

func archHash(memHash uint64, ths []*core.Thread) uint64 {
	h := memHash
	for _, th := range ths {
		h = th.HashArchState(h)
	}
	return h
}

// PlanCells lays out the cell grid for one spec. The first cell is
// always func/rr — the oracle's reference. quick selects a ~10-cell
// subset for smoke tests, native fuzz targets, and shrinking.
func PlanCells(s *Spec, quick bool) []Cell {
	T := s.Threads
	var cells []Cell
	seqOK := len(s.Phases) == 1 || T == 1

	// Functional orderings.
	cells = append(cells, Cell{Machine: "func", Ordering: Ordering{Kind: "rr"}})
	if seqOK {
		cells = append(cells, Cell{Machine: "func", Ordering: Ordering{Kind: "seq"}})
	}
	cells = append(cells, Cell{Machine: "func", Ordering: Ordering{Kind: "every", X: 2}})
	if !quick {
		cells = append(cells,
			Cell{Machine: "func", Ordering: Ordering{Kind: "every", X: 7}},
			Cell{Machine: "func", Ordering: Ordering{Kind: "every", X: 16}},
		)
	}
	cells = append(cells, Cell{Machine: "func", Ordering: Ordering{Kind: "rand", Seed: 1}})
	if !quick {
		cells = append(cells, Cell{Machine: "func", Ordering: Ordering{Kind: "rand", Seed: 2}})
	}

	chaosSeed := func(k int) int64 {
		seed := experiments.DeriveSeed(s.Seed, 0x7a05+k)
		if seed == 0 {
			seed = 1
		}
		return seed
	}

	// Uniprocessor (bare core + cache hierarchy), all schemes, FF on/off.
	uniSchemes := schemesFor(T)
	if quick {
		uniSchemes = []core.Scheme{core.Blocked, core.Interleaved}
		if T == 1 {
			uniSchemes = []core.Scheme{core.Single, core.Interleaved}
		}
	}
	for _, sch := range uniSchemes {
		for _, ff := range []bool{true, false} {
			cells = append(cells, Cell{Machine: "uni", Scheme: sch, Contexts: T, FF: ff})
		}
	}
	// Snapshot-codec crosscheck: forked twins of existing uni cells,
	// serialized and restored at a seed-derived block boundary. Their
	// digests land in the same strict groups as the unforked cells, so
	// the oracle compares them cycle-for-cycle and hash-for-hash.
	cells = append(cells,
		Cell{Machine: "uni", Scheme: uniSchemes[0], Contexts: T, FF: true, Restore: true},
		Cell{Machine: "uni", Scheme: core.Interleaved, Contexts: T, FF: true, Restore: true},
	)
	if !quick {
		// Chaos latency injection: timing perturbed, semantics must not be.
		cells = append(cells,
			Cell{Machine: "uni", Scheme: core.Interleaved, Contexts: T, FF: true, Chaos: chaosSeed(0)},
			Cell{Machine: "uni", Scheme: uniSchemes[0], Contexts: T, FF: true, Chaos: chaosSeed(1)},
		)
		// Forked twins with fast-forward off and under chaos: the codec
		// must round-trip the slow path and perturbed latencies too.
		cells = append(cells,
			Cell{Machine: "uni", Scheme: core.Interleaved, Contexts: T, FF: false, Restore: true},
			Cell{Machine: "uni", Scheme: core.Interleaved, Contexts: T, FF: true, Chaos: chaosSeed(0), Restore: true},
		)

		// Workstation environment: OS scheduler interference at slice
		// boundaries on top of the uniprocessor machine.
		for _, sch := range uniSchemes {
			for _, ff := range []bool{true, false} {
				cells = append(cells, Cell{Machine: "ws", Scheme: sch, Contexts: T, FF: ff})
			}
		}
	}

	// Multiprocessor: every (procs × contexts) factorization of T.
	facts := factorizations(T)
	if quick {
		facts = facts[len(facts)-1:]
	}
	for fi, f := range facts {
		mpSchemes := schemesFor(f.c)
		if quick {
			mpSchemes = []core.Scheme{core.Interleaved}
		}
		for _, sch := range mpSchemes {
			for _, ff := range []bool{true, false} {
				cells = append(cells, Cell{Machine: "mp", Scheme: sch, Procs: f.p, Contexts: f.c, FF: ff})
			}
		}
		if !quick {
			cells = append(cells, Cell{
				Machine: "mp", Scheme: mpSchemes[len(mpSchemes)-1],
				Procs: f.p, Contexts: f.c, FF: true, Chaos: chaosSeed(2 + fi),
			})
		}
	}
	return cells
}

func schemesFor(contexts int) []core.Scheme {
	if contexts == 1 {
		return []core.Scheme{core.Single, core.Blocked, core.BlockedFast, core.Interleaved, core.FineGrained}
	}
	return []core.Scheme{core.Blocked, core.BlockedFast, core.Interleaved, core.FineGrained}
}

type fact struct{ p, c int }

// factorizations lists (procs, contexts) splits of T threads: all on one
// processor, a balanced split when possible, and one context everywhere.
func factorizations(T int) []fact {
	facts := []fact{{1, T}}
	for p := 2; p < T; p++ {
		if T%p == 0 {
			facts = append(facts, fact{p, T / p})
		}
	}
	if T > 1 {
		facts = append(facts, fact{T, 1})
	}
	return facts
}

// RunCell builds the program for the cell's compilation mode and runs
// it. Every error path is captured in CellResult.Err (a cell error is a
// finding, not an abort), except context cancellation, which propagates.
func RunCell(ctx context.Context, s *Spec, c Cell, lim Limits) (*CellResult, error) {
	lim = lim.withDefaults()
	res := &CellResult{Key: c.Key(), Yield: c.yieldMode()}
	p, err := BuildProgram(s, res.Yield)
	if err != nil {
		return nil, err // spec-level problem: every cell would fail identically
	}
	rec := &recorder{}
	var m *mem.Memory
	var ths []*core.Thread
	var cycles int64
	switch c.Machine {
	case "func":
		// cycles stays 0: the functional executor has no clock, and the
		// oracle never compares cycle counts across machines.
		m, ths, err = funcRun(ctx, p, s.Threads, c.Ordering, lim.MaxSteps, rec)
	case "uni", "ws":
		m, ths, cycles, err = runUni(ctx, p, s, c, lim, rec)
	case "mp":
		m, ths, cycles, err = runMP(ctx, p, s, c, lim, rec)
	default:
		return nil, fmt.Errorf("fuzz: unknown machine %q", c.Machine)
	}
	if err != nil {
		if guard.IsCancellation(err) || ctx.Err() != nil {
			return nil, err
		}
		res.Err = err.Error()
		return res, nil
	}
	res.MemHash = m.Hash()
	res.CleanHash = cleanHash(ths)
	res.ArchHash = archHash(res.MemHash, ths)
	res.Cycles = cycles
	res.Switches = rec.switches
	res.Chain = rec.chain
	return res, nil
}

// runUni executes the cell on a single multiple-context processor with
// the standard cache hierarchy; machine "ws" adds OS-scheduler cache and
// TLB interference at fixed slice boundaries (timing-only effects, so
// fast-forward pairs stay strictly comparable).
func runUni(ctx context.Context, p *prog.Program, s *Spec, c Cell, lim Limits, rec *recorder) (*mem.Memory, []*core.Thread, int64, error) {
	// build constructs one complete machine; Restore cells build a
	// second, identical one to restore the checkpoint into.
	build := func() (*cache.Hierarchy, *mem.Memory, *core.Processor, []*core.Thread, error) {
		ccfg := core.DefaultConfig(c.Scheme, c.Contexts)
		ccfg.NoFastForward = !c.FF
		params := cache.DefaultParams()
		params.Chaos = guard.Options{ChaosSeed: c.Chaos}.NewChaos()
		h, err := cache.NewHierarchy(params)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		fm := mem.New()
		p.LoadInit(fm)
		proc, err := core.NewProcessor(ccfg, h, fm)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		ths := make([]*core.Thread, c.Contexts)
		for i := range ths {
			ths[i] = core.NewThread(fmt.Sprintf("%s.t%d", p.Name, i), p)
			ths[i].SetIntReg(mp.TidReg, uint32(i))
			ths[i].SetIntReg(mp.NThreadsReg, uint32(c.Contexts))
			proc.BindThread(i, ths[i])
		}
		proc.SwitchWatch = func(now int64, ctx int) {
			rec.observe(fm, proc.ThreadAt(ctx), 0, ctx, now)
		}
		return h, fm, proc, ths, nil
	}
	h, fm, proc, ths, err := build()
	if err != nil {
		return nil, nil, 0, err
	}

	if c.Restore {
		return runUniForked(ctx, c, lim, s.Seed, build, fm, proc, ths, h)
	}
	if c.Machine == "ws" {
		// OS-scheduler interference at fixed cycle boundaries. The slice
		// is much shorter than the real scheduler's so short generated
		// programs still see several invocations.
		const slice = 8192
		rng := rand.New(rand.NewSource(experiments.DeriveSeed(s.Seed, 0x05c4ed)))
		inter := osmodel.InterferenceFor(c.Contexts)
		for proc.Now() < lim.MaxCycles && !proc.AllHalted() {
			if _, _, err := proc.RunGuardedCtx(ctx, slice, guard.Options{}); err != nil {
				return nil, nil, 0, err
			}
			if !proc.AllHalted() {
				h.DrainFills(proc.Now())
				h.SchedulerInterference(inter.ILines, inter.DLines, inter.TLBEntries, rng)
			}
		}
	} else {
		if _, _, err := proc.RunGuardedCtx(ctx, lim.MaxCycles, guard.Options{}); err != nil {
			return nil, nil, 0, err
		}
	}
	if !proc.AllHalted() {
		return nil, nil, 0, fmt.Errorf("did not halt within %d cycles", lim.MaxCycles)
	}
	cycles := int64(0)
	for _, th := range ths {
		if th.HaltedAt+1 > cycles {
			cycles = th.HaltedAt + 1
		}
	}
	return fm, ths, cycles, nil
}

// runUniForked is runUni's snapshot-fork path: run to a block boundary
// derived from the program seed, serialize every machine layer through
// the snapshot codec, restore into a freshly built twin machine, and
// finish the run there. The recorder spans both phases, so the cell's
// digest — cycles, switch chain, arch hash — must be indistinguishable
// from its unforked sibling's; any codec bug surfaces as a strict-group
// divergence in the oracle.
func runUniForked(ctx context.Context, c Cell, lim Limits, seed int64,
	build func() (*cache.Hierarchy, *mem.Memory, *core.Processor, []*core.Thread, error),
	fm *mem.Memory, proc *core.Processor, ths []*core.Thread, h *cache.Hierarchy,
) (*mem.Memory, []*core.Thread, int64, error) {
	k := experiments.DeriveSeed(seed, 0xb10c) % 512
	if k < 0 {
		k = -k
	}
	at := 64 * (k + 1)
	if at >= lim.MaxCycles {
		at = 64
	}
	// Phase 1: run the source machine to the boundary. Halting earlier
	// is fine — the codec then round-trips a finished machine.
	if _, _, err := proc.RunGuardedCtx(ctx, at, guard.Options{}); err != nil {
		return nil, nil, 0, err
	}
	w := snapshot.NewWriter()
	for _, th := range ths {
		th.SaveState(w)
	}
	proc.SaveState(w)
	h.SaveState(w)
	fm.SaveState(w)

	h2, fm2, proc2, ths2, err := build()
	if err != nil {
		return nil, nil, 0, err
	}
	r := snapshot.NewReader(w.Bytes())
	for _, th := range ths2 {
		th.RestoreState(r)
	}
	proc2.RestoreState(r)
	h2.RestoreState(r)
	fm2.RestoreState(r)
	if err := snapshot.Finish(r); err != nil {
		return nil, nil, 0, fmt.Errorf("restore at cycle %d: %w", at, err)
	}
	if got, want := proc2.MachineHash(), proc.MachineHash(); got != want {
		return nil, nil, 0, fmt.Errorf("restored machine hash %#x != source %#x at cycle %d", got, want, at)
	}

	// Phase 2: finish on the twin. The remaining budget keeps the total
	// identical to the unforked sibling's single run.
	if _, _, err := proc2.RunGuardedCtx(ctx, lim.MaxCycles-at, guard.Options{}); err != nil {
		return nil, nil, 0, err
	}
	if !proc2.AllHalted() {
		return nil, nil, 0, fmt.Errorf("did not halt within %d cycles", lim.MaxCycles)
	}
	cycles := int64(0)
	for _, th := range ths2 {
		if th.HaltedAt+1 > cycles {
			cycles = th.HaltedAt + 1
		}
	}
	return fm2, ths2, cycles, nil
}

// runMP executes the cell on the lockstep multiprocessor.
func runMP(ctx context.Context, p *prog.Program, s *Spec, c Cell, lim Limits, rec *recorder) (*mem.Memory, []*core.Thread, int64, error) {
	cfg := mp.DefaultConfig(c.Scheme, c.Contexts)
	cfg.Processors = c.Procs
	cfg.LimitCycles = lim.MaxCycles
	cfg.Guard = guard.Options{ChaosSeed: c.Chaos}
	ccfg := core.DefaultConfig(c.Scheme, c.Contexts)
	ccfg.NoFastForward = !c.FF
	cfg.Core = &ccfg
	cfg.SwitchWatch = func(proc *core.Processor, ctx int, now int64) {
		rec.observe(proc.FMem, proc.ThreadAt(ctx), proc.ID, ctx, now)
	}
	res, err := mp.RunCtx(ctx, p, cfg)
	if err != nil {
		return nil, nil, 0, err
	}
	if !res.Completed {
		reason := "cycle limit"
		if res.Diag != nil {
			reason = res.Diag.Reason
		}
		return nil, nil, 0, fmt.Errorf("did not complete within %d cycles: %s", lim.MaxCycles, reason)
	}
	return res.Mem, res.ThreadState, res.Cycles, nil
}
