package fuzz

// The functional executor: exact ISA semantics with zero timing model,
// multiplexed across threads by an explicit ordering policy. It is the
// fuzzer's semantic reference — every timing simulation of the same
// program must reach the same final memory. The instruction semantics
// mirror internal/core's functional evaluator (golden-tested against the
// independent reference interpreter in core/ref_test.go).

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/prog"
)

// Ordering is a context-multiplexing policy for the functional executor.
type Ordering struct {
	Kind string `json:"kind"`           // "seq", "rr", "every", "rand"
	X    int    `json:"x,omitempty"`    // "every": switch after X instructions
	Seed int64  `json:"seed,omitempty"` // "rand": xorshift seed for switch points
}

func (o Ordering) String() string {
	switch o.Kind {
	case "every":
		return fmt.Sprintf("every%d", o.X)
	case "rand":
		return fmt.Sprintf("rand%d", o.Seed)
	}
	return o.Kind
}

// funcRun executes program p with the given thread count under ordering
// ord. Context switches are reported to rec (the switching-away thread,
// with the step count standing in for the cycle). Returns the final
// memory and threads, or an error if any thread failed to halt within
// maxSteps total instructions.
func funcRun(ctx context.Context, p *prog.Program, threads int, ord Ordering, maxSteps int64, rec *recorder) (*mem.Memory, []*core.Thread, error) {
	m := mem.New()
	p.LoadInit(m)
	ths := make([]*core.Thread, threads)
	for i := range ths {
		ths[i] = core.NewThread(fmt.Sprintf("%s.t%d", p.Name, i), p)
		ths[i].SetIntReg(isa.R4, uint32(i))
		ths[i].SetIntReg(isa.R5, uint32(threads))
	}

	var xs uint64 = uint64(ord.Seed)*2685821657736338717 + 0x9E3779B97F4A7C15
	xrand := func() uint64 {
		xs ^= xs << 13
		xs ^= xs >> 7
		xs ^= xs << 17
		return xs
	}

	halted := 0
	cur := 0
	run := 0 // instructions the current thread has run since scheduled
	for step := int64(0); ; step++ {
		if step >= maxSteps {
			return nil, nil, fmt.Errorf("fuzz: ordering %s did not halt within %d steps", ord, maxSteps)
		}
		if step&4095 == 0 && ctx.Err() != nil {
			return nil, nil, ctx.Err()
		}
		th := ths[cur]
		forced, err := funcStep(th, m)
		if err != nil {
			return nil, nil, fmt.Errorf("fuzz: ordering %s thread %d: %w", ord, cur, err)
		}
		run++
		if th.Halted {
			halted++
			if halted == len(ths) {
				return m, ths, nil
			}
		}
		// Scheduling decision. BACKOFF/SWITCH force a re-evaluation in
		// every policy (they are the program's declared switch points);
		// a halted thread always yields.
		switchNow := forced || th.Halted
		switch ord.Kind {
		case "seq":
			// Run each thread to completion (valid only for single-phase
			// programs: a barrier would spin forever waiting for threads
			// that never get scheduled).
		case "rr":
			switchNow = true
		case "every":
			if run >= ord.X {
				switchNow = true
			}
		case "rand":
			if xrand()&7 == 0 {
				switchNow = true
			}
		default:
			return nil, nil, fmt.Errorf("fuzz: unknown ordering kind %q", ord.Kind)
		}
		if !switchNow {
			continue
		}
		next := cur
		if ord.Kind == "rand" && !th.Halted {
			// Uniform choice among runnable threads (current included).
			live := 0
			for _, t := range ths {
				if !t.Halted {
					live++
				}
			}
			pick := int(xrand()>>8) % live
			for i, t := range ths {
				if t.Halted {
					continue
				}
				if pick == 0 {
					next = i
					break
				}
				pick--
			}
		} else {
			// Next runnable thread after cur, wrapping.
			for i := 1; i <= len(ths); i++ {
				cand := (cur + i) % len(ths)
				if !ths[cand].Halted {
					next = cand
					break
				}
			}
		}
		if next != cur {
			rec.observe(m, th, 0, cur, step)
			cur = next
			run = 0
		}
	}
}

// funcStep executes one instruction on th. The bool result reports
// whether the instruction was an explicit yield (BACKOFF/SWITCH), which
// every ordering treats as a switch opportunity.
func funcStep(th *core.Thread, m *mem.Memory) (bool, error) {
	p := th.Prog
	if th.PC < 0 || th.PC >= len(p.Insts) {
		return false, fmt.Errorf("pc %d out of range", th.PC)
	}
	in := &p.Insts[th.PC]
	next := th.PC + 1
	ri := func(r isa.Reg) uint32 { return uint32(th.Regs[r]) }
	wi := func(r isa.Reg, v uint32) {
		if r != isa.R0 {
			th.Regs[r] = uint64(v)
		}
	}
	rf := func(r isa.Reg) float64 { return math.Float64frombits(th.Regs[r]) }
	wf := func(r isa.Reg, v float64) { th.Regs[r] = math.Float64bits(v) }
	var s, t uint32
	if in.Rs.Valid() && !in.Rs.IsFP() {
		s = ri(in.Rs)
	}
	if in.Rt.Valid() && !in.Rt.IsFP() {
		t = ri(in.Rt)
	}
	b2u := func(b bool) uint32 {
		if b {
			return 1
		}
		return 0
	}

	switch in.Op {
	case isa.NOP:
	case isa.BACKOFF, isa.SWITCH:
		th.PC = next
		return true, nil
	case isa.ADD:
		wi(in.Rd, s+t)
	case isa.ADDI:
		wi(in.Rd, s+uint32(in.Imm))
	case isa.SUB:
		wi(in.Rd, s-t)
	case isa.AND:
		wi(in.Rd, s&t)
	case isa.ANDI:
		wi(in.Rd, s&uint32(in.Imm)&0xFFFF)
	case isa.OR:
		wi(in.Rd, s|t)
	case isa.ORI:
		wi(in.Rd, s|uint32(in.Imm)&0xFFFF)
	case isa.XOR:
		wi(in.Rd, s^t)
	case isa.XORI:
		wi(in.Rd, s^uint32(in.Imm)&0xFFFF)
	case isa.SLT:
		wi(in.Rd, b2u(int32(s) < int32(t)))
	case isa.SLTI:
		wi(in.Rd, b2u(int32(s) < in.Imm))
	case isa.SLTU:
		wi(in.Rd, b2u(s < t))
	case isa.LUI:
		wi(in.Rd, uint32(in.Imm)<<16)
	case isa.SLL:
		wi(in.Rd, s<<(uint32(in.Imm)&31))
	case isa.SRL:
		wi(in.Rd, s>>(uint32(in.Imm)&31))
	case isa.SRA:
		wi(in.Rd, uint32(int32(s)>>(uint32(in.Imm)&31)))
	case isa.SLLV:
		wi(in.Rd, s<<(t&31))
	case isa.SRLV:
		wi(in.Rd, s>>(t&31))
	case isa.MUL:
		wi(in.Rd, s*t)
	case isa.DIV:
		if t == 0 {
			wi(in.Rd, 0)
		} else {
			wi(in.Rd, uint32(int32(s)/int32(t)))
		}
	case isa.REM:
		if t == 0 {
			wi(in.Rd, 0)
		} else {
			wi(in.Rd, uint32(int32(s)%int32(t)))
		}
	case isa.DIVU:
		if t == 0 {
			wi(in.Rd, 0)
		} else {
			wi(in.Rd, s/t)
		}
	case isa.LW:
		wi(in.Rd, m.LoadW(s+uint32(in.Imm)))
	case isa.SW:
		m.StoreW(s+uint32(in.Imm), t)
	case isa.FLD:
		th.Regs[in.Rd] = m.LoadD((s + uint32(in.Imm)) &^ 7)
	case isa.FSD:
		m.StoreD((s+uint32(in.Imm))&^7, th.Regs[in.Rt])
	case isa.TAS:
		wi(in.Rd, m.TestAndSet(s+uint32(in.Imm)))
	case isa.BEQ:
		if s == t {
			next = int(in.Target)
		}
	case isa.BNE:
		if s != t {
			next = int(in.Target)
		}
	case isa.BLEZ:
		if int32(s) <= 0 {
			next = int(in.Target)
		}
	case isa.BGTZ:
		if int32(s) > 0 {
			next = int(in.Target)
		}
	case isa.J:
		next = int(in.Target)
	case isa.JAL:
		wi(in.Rd, uint32(th.PC+1))
		next = int(in.Target)
	case isa.JR:
		next = int(s)
	case isa.FADD:
		wf(in.Rd, rf(in.Rs)+rf(in.Rt))
	case isa.FSUB:
		wf(in.Rd, rf(in.Rs)-rf(in.Rt))
	case isa.FMUL:
		wf(in.Rd, rf(in.Rs)*rf(in.Rt))
	case isa.FNEG:
		wf(in.Rd, -rf(in.Rs))
	case isa.FABS:
		wf(in.Rd, math.Abs(rf(in.Rs)))
	case isa.FCVTIW:
		wf(in.Rd, math.Trunc(rf(in.Rs)))
	case isa.FCMPLT:
		wi(in.Rd, b2u(rf(in.Rs) < rf(in.Rt)))
	case isa.FCMPLE:
		wi(in.Rd, b2u(rf(in.Rs) <= rf(in.Rt)))
	case isa.FDIVS, isa.FDIVD:
		wf(in.Rd, rf(in.Rs)/rf(in.Rt))
	case isa.FSQRT:
		wf(in.Rd, math.Sqrt(rf(in.Rs)))
	case isa.MTC1:
		wf(in.Rd, float64(int32(s)))
	case isa.MFC1:
		wi(in.Rd, uint32(int32(rf(in.Rs))))
	case isa.HALT:
		th.Halted = true
		return false, nil
	default:
		return false, fmt.Errorf("unhandled op %v at pc %d", in.Op, th.PC)
	}
	th.PC = next
	return false, nil
}
