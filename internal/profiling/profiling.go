// Package profiling wires the standard -cpuprofile/-memprofile pprof
// flags into the simulator commands, so hot-path regressions can be
// diagnosed on any grid run without code edits:
//
//	experiments -quick -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof cpu.out
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the parsed profile destinations.
type Flags struct {
	CPU *string
	Mem *string
}

// BindFlags registers -cpuprofile and -memprofile on fs.
func BindFlags(fs *flag.FlagSet) *Flags {
	return &Flags{
		CPU: fs.String("cpuprofile", "", "write a CPU profile to this file"),
		Mem: fs.String("memprofile", "", "write a heap profile to this file on exit"),
	}
}

// Start begins CPU profiling if requested and returns a stop function
// that finishes the CPU profile and writes the heap profile. Call the
// stop function on the command's success path (defers are skipped by
// os.Exit error paths; a profile of a failed run is not useful anyway).
func (f *Flags) Start() (stop func(), err error) {
	var cpuFile *os.File
	if *f.CPU != "" {
		cpuFile, err = os.Create(*f.CPU)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if *f.Mem != "" {
			mf, err := os.Create(*f.Mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
				return
			}
			defer mf.Close()
			runtime.GC() // settle allocations so the heap profile is stable
			if err := pprof.WriteHeapProfile(mf); err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
			}
		}
	}, nil
}
