package cache

import (
	"fmt"
	"slices"

	"repro/internal/guard"
)

// This file is the hierarchy's side of the simulation-hardening layer:
// structural invariant checking and outstanding-miss reporting for
// diagnostics.

// checkPlacement verifies a direct-mapped cache's tag array: every valid
// tag must map to the set it occupies. A violation means a fill or
// invalidation corrupted the placement function.
func checkPlacement(name string, c *Cache) error {
	for s, v := range c.valid {
		if v && c.tags[s]&(c.sets-1) != uint32(s) {
			return fmt.Errorf("%s: set %d holds line %#x, which maps to set %d",
				name, s, c.tags[s], c.tags[s]&(c.sets-1))
		}
	}
	return nil
}

// CheckInvariants verifies the hierarchy's structural sanity:
//
//   - every valid tag in L1I/L1D/L2 sits in the set it maps to;
//   - demand misses never exceed the configured MSHR count;
//   - the prefetch-buffer occupancy count matches the pending map;
//   - no line is simultaneously pending (in a miss register) and
//     resident in the data cache.
//
// Violations come back as *guard.SimError.
func (h *Hierarchy) CheckInvariants() error {
	fail := func(err error) error {
		return guard.NewSimError("cache.invariant", err)
	}
	for _, c := range []struct {
		name string
		c    *Cache
	}{{"L1I", h.L1I}, {"L1D", h.L1D}, {"L2", h.L2}} {
		if err := checkPlacement(c.name, c.c); err != nil {
			return fail(err)
		}
	}
	prefetches := 0
	for line, pf := range h.pending {
		if pf.prefetch {
			prefetches++
		}
		if h.L1D.Present(line << uint32(h.L1D.lineShift)) {
			return fail(fmt.Errorf("line %#x both pending and resident in L1D", line))
		}
	}
	if prefetches != h.prefetchOutstanding {
		return fail(fmt.Errorf("prefetch occupancy count %d, but %d prefetches pending",
			h.prefetchOutstanding, prefetches))
	}
	if demand := len(h.pending) - prefetches; demand > h.P.MSHRs {
		return fail(fmt.Errorf("%d demand misses outstanding with %d MSHRs", demand, h.P.MSHRs))
	}
	if h.prefetchOutstanding > prefetchBufEntries {
		return fail(fmt.Errorf("%d prefetches outstanding with %d buffer entries",
			h.prefetchOutstanding, prefetchBufEntries))
	}
	return nil
}

// OutstandingMisses reports the occupied miss registers, in ascending
// line order, for watchdog diagnostics.
func (h *Hierarchy) OutstandingMisses() []guard.MissState {
	lines := make([]uint32, 0, len(h.pending))
	for line := range h.pending {
		lines = append(lines, line)
	}
	slices.Sort(lines)
	out := make([]guard.MissState, 0, len(lines))
	for _, line := range lines {
		out = append(out, guard.MissState{
			Line:   line,
			Addr:   line << uint32(h.L1D.lineShift),
			FillAt: h.pending[line].fill,
		})
	}
	return out
}

var (
	_ guard.InvariantChecker = (*Hierarchy)(nil)
	_ guard.MissReporter     = (*Hierarchy)(nil)
)
