// Package cache implements the workstation memory hierarchy of paper §4.1:
// direct-mapped 64 KB primary instruction and data caches, a unified 1 MB
// direct-mapped secondary cache, and a four-way interleaved memory system
// behind a split-transaction bus. The data cache is lockup-free (a small
// number of MSHRs track outstanding misses); the instruction cache is
// blocking. A 64-entry data TLB models the "Data Cache/TLB" stall category.
//
// Caches here are timing-only: they record presence, dirtiness and port
// occupancy. All data values live in the functional memory.
package cache

import (
	"fmt"
	"math/rand"

	"repro/internal/guard"
)

// Params collects every hierarchy parameter. Defaults reproduce paper
// Tables 1 and 2.
type Params struct {
	LineSize int // bytes per line in all caches

	L1ISize int
	L1DSize int
	L2Size  int

	MSHRs int // outstanding primary data misses (lockup-free depth)

	// Unloaded latencies (Table 2), in cycles from the miss request.
	L2HitLatency  int // primary miss satisfied in secondary
	MemLatency    int // reply from memory
	LoadUseCycles int // primary hit: cycles until the value forwards (Table 3 load latency)

	// Occupancies (Table 1).
	L1DReadOcc  int
	L1DWriteOcc int
	L1DInvOcc   int
	L1DFillOcc  int
	L1IFillOcc  int // 8: the I-cache fetches two lines
	L2ReadOcc   int
	L2WriteOcc  int
	L2InvOcc    int
	L2FillOcc   int

	// Memory banks.
	NumBanks int
	BankOcc  int // cycles a bank stays busy per line access

	// Data TLB.
	TLBEntries int
	TLBPenalty int // refill cycles

	// Prefetch selects the hardware prefetcher (off by default; the
	// paper's machine has none).
	Prefetch PrefetchMode

	// Chaos, when non-nil, perturbs every secondary-cache, memory and TLB
	// latency by a seeded deterministic jitter (guard fault-injection
	// mode). Timing-only: architectural results must not change.
	Chaos *guard.Chaos
}

// DefaultParams returns the paper's workstation configuration.
func DefaultParams() Params {
	return Params{
		LineSize:      32,
		L1ISize:       64 << 10,
		L1DSize:       64 << 10,
		L2Size:        1 << 20,
		MSHRs:         4,
		L2HitLatency:  9,
		MemLatency:    34,
		LoadUseCycles: 3,
		L1DReadOcc:    1,
		L1DWriteOcc:   1,
		L1DInvOcc:     2,
		L1DFillOcc:    1,
		L1IFillOcc:    8,
		L2ReadOcc:     2,
		L2WriteOcc:    2,
		L2InvOcc:      4,
		L2FillOcc:     2,
		NumBanks:      4,
		BankOcc:       16,
		TLBEntries:    64,
		TLBPenalty:    25,
	}
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	switch {
	case p.LineSize <= 0 || p.LineSize&(p.LineSize-1) != 0:
		return fmt.Errorf("cache: line size %d not a positive power of two", p.LineSize)
	case p.L1DSize%p.LineSize != 0 || p.L1ISize%p.LineSize != 0 || p.L2Size%p.LineSize != 0:
		return fmt.Errorf("cache: sizes must be line multiples")
	case p.MSHRs < 1:
		return fmt.Errorf("cache: need at least one MSHR")
	case p.NumBanks < 1:
		return fmt.Errorf("cache: need at least one memory bank")
	case p.TLBEntries < 1 || p.TLBEntries&(p.TLBEntries-1) != 0:
		return fmt.Errorf("cache: TLB entries must be a power of two")
	}
	return nil
}

// Cache is a direct-mapped, timing-only cache. Lines are identified by
// their line address (byte address >> log2(lineSize)).
type Cache struct {
	lineShift uint
	sets      uint32
	tags      []uint32 // per set: the resident line address
	valid     []bool
	dirty     []bool
}

// NewCache returns a direct-mapped cache of size bytes with lineSize-byte
// lines. Size and lineSize must be powers of two.
func NewCache(size, lineSize int) *Cache {
	if size <= 0 || lineSize <= 0 || size%lineSize != 0 {
		panic("cache: invalid geometry")
	}
	sets := size / lineSize
	if sets&(sets-1) != 0 || lineSize&(lineSize-1) != 0 {
		panic("cache: geometry must be powers of two")
	}
	shift := uint(0)
	for 1<<shift != lineSize {
		shift++
	}
	return &Cache{
		lineShift: shift,
		sets:      uint32(sets),
		tags:      make([]uint32, sets),
		valid:     make([]bool, sets),
		dirty:     make([]bool, sets),
	}
}

// Line returns the line address of a byte address.
func (c *Cache) Line(addr uint32) uint32 { return addr >> c.lineShift }

func (c *Cache) set(line uint32) uint32 { return line & (c.sets - 1) }

// Sets returns the number of sets (lines) in the cache.
func (c *Cache) Sets() int { return int(c.sets) }

// Present reports whether the line containing addr is resident.
func (c *Cache) Present(addr uint32) bool {
	line := c.Line(addr)
	s := c.set(line)
	return c.valid[s] && c.tags[s] == line
}

// MarkDirty marks addr's line dirty; it must be resident.
func (c *Cache) MarkDirty(addr uint32) {
	line := c.Line(addr)
	s := c.set(line)
	if c.valid[s] && c.tags[s] == line {
		c.dirty[s] = true
	}
}

// Dirty reports whether addr's line is resident and dirty.
func (c *Cache) Dirty(addr uint32) bool {
	line := c.Line(addr)
	s := c.set(line)
	return c.valid[s] && c.tags[s] == line && c.dirty[s]
}

// Fill installs addr's line, returning the victim line address and whether
// it was dirty. hadVictim is false when the set was empty.
func (c *Cache) Fill(addr uint32, dirty bool) (victim uint32, victimDirty, hadVictim bool) {
	line := c.Line(addr)
	s := c.set(line)
	if c.valid[s] {
		if c.tags[s] == line {
			// Refill of a resident line: merge dirtiness, no victim.
			c.dirty[s] = c.dirty[s] || dirty
			return 0, false, false
		}
		victim, victimDirty, hadVictim = c.tags[s], c.dirty[s], true
	}
	c.tags[s] = line
	c.valid[s] = true
	c.dirty[s] = dirty
	return victim, victimDirty, hadVictim
}

// Invalidate drops addr's line if resident; it reports whether the line
// was present and whether it was dirty.
func (c *Cache) Invalidate(addr uint32) (present, dirty bool) {
	line := c.Line(addr)
	s := c.set(line)
	if c.valid[s] && c.tags[s] == line {
		present, dirty = true, c.dirty[s]
		c.valid[s] = false
		c.dirty[s] = false
	}
	return present, dirty
}

// DisplaceRandom invalidates n randomly chosen sets; it models the cache
// interference of an operating-system scheduler invocation (paper Table 6).
func (c *Cache) DisplaceRandom(n int, rng *rand.Rand) {
	for i := 0; i < n; i++ {
		s := uint32(rng.Intn(int(c.sets)))
		c.valid[s] = false
		c.dirty[s] = false
	}
}

// InvalidateAll empties the cache.
func (c *Cache) InvalidateAll() {
	for i := range c.valid {
		c.valid[i] = false
		c.dirty[i] = false
	}
}

// ResidentLines counts valid lines; used by tests.
func (c *Cache) ResidentLines() int {
	n := 0
	for _, v := range c.valid {
		if v {
			n++
		}
	}
	return n
}

// TLB is a direct-mapped translation buffer over 4 KiB pages. Like the
// caches it is timing-only: every address translates identity; the TLB
// just decides whether the translation costs a refill.
type TLB struct {
	mask uint32
	tags []uint32
	ok   []bool
}

// NewTLB returns a TLB with entries slots (a power of two).
func NewTLB(entries int) *TLB {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("cache: TLB entries must be a positive power of two")
	}
	return &TLB{mask: uint32(entries - 1), tags: make([]uint32, entries), ok: make([]bool, entries)}
}

// Lookup probes the TLB for addr's page, installing it on a miss, and
// reports whether the probe hit.
func (t *TLB) Lookup(addr uint32) bool {
	page := addr >> 12
	s := page & t.mask
	if t.ok[s] && t.tags[s] == page {
		return true
	}
	t.tags[s] = page
	t.ok[s] = true
	return false
}

// DisplaceRandom invalidates n random TLB entries (scheduler interference).
func (t *TLB) DisplaceRandom(n int, rng *rand.Rand) {
	for i := 0; i < n; i++ {
		t.ok[rng.Intn(len(t.ok))] = false
	}
}
