package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCacheGeometry(t *testing.T) {
	c := NewCache(64<<10, 32)
	if c.Sets() != 2048 {
		t.Errorf("64KB/32B cache has %d sets, want 2048", c.Sets())
	}
	if c.Line(0x1234) != 0x1234>>5 {
		t.Error("line address wrong")
	}
}

func TestCacheFillPresentInvalidate(t *testing.T) {
	c := NewCache(1024, 32) // 32 sets
	if c.Present(0x100) {
		t.Error("fresh cache should miss")
	}
	if _, _, had := c.Fill(0x100, false); had {
		t.Error("fill into empty set reported a victim")
	}
	if !c.Present(0x100) || !c.Present(0x11f) {
		t.Error("whole line should be present after fill")
	}
	if c.Present(0x120) {
		t.Error("next line should not be present")
	}
	present, dirty := c.Invalidate(0x100)
	if !present || dirty {
		t.Error("invalidate of clean resident line misreported")
	}
	if c.Present(0x100) {
		t.Error("line survived invalidate")
	}
}

func TestCacheConflictEviction(t *testing.T) {
	c := NewCache(1024, 32) // 32 sets: addresses 1024 apart conflict
	c.Fill(0x0, false)
	c.MarkDirty(0x0)
	victim, vd, had := c.Fill(0x400, false)
	if !had || !vd || victim != 0 {
		t.Errorf("conflict fill: victim=%v dirty=%v had=%v", victim, vd, had)
	}
	if c.Present(0x0) || !c.Present(0x400) {
		t.Error("wrong resident line after conflict")
	}
}

func TestCacheRefillSameLineKeepsDirty(t *testing.T) {
	c := NewCache(1024, 32)
	c.Fill(0x40, false)
	c.MarkDirty(0x40)
	if _, _, had := c.Fill(0x40, false); had {
		t.Error("refill of same line reported victim")
	}
	if !c.Dirty(0x40) {
		t.Error("refill cleared dirtiness")
	}
}

func TestDisplaceRandom(t *testing.T) {
	c := NewCache(1024, 32)
	for a := uint32(0); a < 1024; a += 32 {
		c.Fill(a, false)
	}
	before := c.ResidentLines()
	c.DisplaceRandom(16, rand.New(rand.NewSource(1)))
	after := c.ResidentLines()
	if after >= before {
		t.Errorf("displacement removed nothing (%d -> %d)", before, after)
	}
}

func TestTLB(t *testing.T) {
	tlb := NewTLB(64)
	if tlb.Lookup(0x1000) {
		t.Error("first lookup should miss")
	}
	if !tlb.Lookup(0x1ffc) {
		t.Error("same page should hit")
	}
	// 64 entries x 4KB pages: address 64 pages away conflicts.
	if tlb.Lookup(0x1000 + 64*4096) {
		t.Error("conflicting page should miss")
	}
	if tlb.Lookup(0x1000) {
		t.Error("original page should have been displaced")
	}
}

// Property: direct-mapped residency — after filling any sequence of
// addresses, each set holds exactly the last line filled into it.
func TestQuickDirectMappedInvariant(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := NewCache(4096, 32)
		last := make(map[uint32]uint32) // set -> line
		for _, a := range addrs {
			c.Fill(a, false)
			last[c.Line(a)&uint32(c.Sets()-1)] = c.Line(a)
		}
		for _, line := range last {
			if !c.Present(line << 5) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := DefaultParams()
	bad.LineSize = 24
	if bad.Validate() == nil {
		t.Error("non-power-of-two line size accepted")
	}
	bad = DefaultParams()
	bad.MSHRs = 0
	if bad.Validate() == nil {
		t.Error("zero MSHRs accepted")
	}
	bad = DefaultParams()
	bad.TLBEntries = 48
	if bad.Validate() == nil {
		t.Error("non-power-of-two TLB accepted")
	}
}
