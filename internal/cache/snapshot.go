package cache

import (
	"sort"

	"repro/internal/snapshot"
)

// This file serializes the workstation memory hierarchy for
// checkpoint/restore, and provides the timing-state Hash built on the
// same canonical byte encoding. Restore targets a hierarchy freshly
// built from the same Params (geometry is shape-checked); the chaos
// perturbation stream, when enabled, resumes at its recorded position
// so a forked run draws exactly the jitter an uninterrupted run would.

// Section tags for the cache layer.
const (
	sectionHierarchy = 0x43414348 // "CACH"
	sectionCache     = 0x43414331 // "CAC1"
	sectionTLB       = 0x544c4231 // "TLB1"
	sectionPrefetch  = 0x50524631 // "PRF1"
)

// SaveState serializes a direct-mapped cache's tag arrays. Exported
// because the coherence fabric serializes its per-node caches through
// the same encoding.
func (c *Cache) SaveState(w *snapshot.Writer) {
	w.Section(sectionCache)
	w.U32(c.sets)
	for _, v := range c.tags {
		w.U32(v)
	}
	for _, v := range c.valid {
		w.Bool(v)
	}
	for _, v := range c.dirty {
		w.Bool(v)
	}
}

// RestoreState overwrites the cache arrays; geometry must match.
func (c *Cache) RestoreState(r *snapshot.Reader) {
	r.Section(sectionCache)
	r.Expect("cache sets", int64(r.U32()), int64(c.sets))
	for i := range c.tags {
		c.tags[i] = r.U32()
	}
	for i := range c.valid {
		c.valid[i] = r.Bool()
	}
	for i := range c.dirty {
		c.dirty[i] = r.Bool()
	}
}

func (t *TLB) saveState(w *snapshot.Writer) {
	w.Section(sectionTLB)
	w.U32(t.mask)
	for _, v := range t.tags {
		w.U32(v)
	}
	for _, v := range t.ok {
		w.Bool(v)
	}
}

func (t *TLB) restoreState(r *snapshot.Reader) {
	r.Section(sectionTLB)
	r.Expect("TLB mask", int64(r.U32()), int64(t.mask))
	for i := range t.tags {
		t.tags[i] = r.U32()
	}
	for i := range t.ok {
		t.ok[i] = r.Bool()
	}
}

func (pf *prefetcher) saveState(w *snapshot.Writer) {
	w.Section(sectionPrefetch)
	w.U8(uint8(pf.mode))
	for _, e := range pf.rpt {
		w.U32(e.lastLine)
		w.U32(uint32(e.stride))
		w.U8(uint8(e.confidence))
	}
	lines := make([]uint32, 0, len(pf.issued))
	for line := range pf.issued {
		lines = append(lines, line)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	w.U32(uint32(len(lines)))
	for _, line := range lines {
		w.U32(line)
	}
}

func (pf *prefetcher) restoreState(r *snapshot.Reader) {
	r.Section(sectionPrefetch)
	r.Expect("prefetch mode", int64(r.U8()), int64(pf.mode))
	for i := range pf.rpt {
		pf.rpt[i].lastLine = r.U32()
		pf.rpt[i].stride = int32(r.U32())
		pf.rpt[i].confidence = int8(r.U8())
	}
	pf.issued = make(map[uint32]bool)
	n := r.U32()
	for i := uint32(0); i < n && r.Err() == nil; i++ {
		pf.issued[r.U32()] = true
	}
}

// SaveState serializes the hierarchy: cache and TLB arrays, the
// outstanding-miss registers and TLB holds (in ascending key order, so
// identical state always produces identical bytes), the prefetcher,
// the port/bank occupancy frontiers, the chaos stream position, and
// Stats. Geometry fields are written as shape checks.
func (h *Hierarchy) SaveState(w *snapshot.Writer) {
	w.Section(sectionHierarchy)
	w.Int(h.P.LineSize)
	w.Int(h.P.NumBanks)

	h.L1I.SaveState(w)
	h.L1D.SaveState(w)
	h.L2.SaveState(w)
	h.TLB.saveState(w)
	h.prefetch.saveState(w)

	lines := make([]uint32, 0, len(h.pending))
	for line := range h.pending {
		lines = append(lines, line)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	w.U32(uint32(len(lines)))
	for _, line := range lines {
		pf := h.pending[line]
		w.U32(line)
		w.I64(pf.fill)
		w.Bool(pf.prefetch)
	}
	w.Int(h.prefetchOutstanding)

	pages := make([]uint32, 0, len(h.tlbHold))
	for page := range h.tlbHold {
		pages = append(pages, page)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	w.U32(uint32(len(pages)))
	for _, page := range pages {
		w.U32(page)
		w.I64(h.tlbHold[page])
	}

	w.I64(h.l1dFree)
	w.I64(h.l2Free)
	for _, v := range h.bankFree {
		w.I64(v)
	}

	w.Bool(h.P.Chaos != nil)
	if h.P.Chaos != nil {
		w.I64(h.P.Chaos.Seed())
		w.I64(h.P.Chaos.Skew())
		state, draws := h.P.Chaos.SnapshotState()
		w.U64(state)
		w.I64(draws)
	}

	h.Stats.saveState(w)
}

// RestoreState overwrites the hierarchy's state from a snapshot. The
// hierarchy must have been built from the same Params (including the
// same chaos configuration, whose stream position is restored).
func (h *Hierarchy) RestoreState(r *snapshot.Reader) {
	r.Section(sectionHierarchy)
	r.Expect("line size", int64(r.Int()), int64(h.P.LineSize))
	r.Expect("memory banks", int64(r.Int()), int64(h.P.NumBanks))

	h.L1I.RestoreState(r)
	h.L1D.RestoreState(r)
	h.L2.RestoreState(r)
	h.TLB.restoreState(r)
	h.prefetch.restoreState(r)

	h.pending = make(map[uint32]pendingFill)
	n := r.U32()
	for i := uint32(0); i < n && r.Err() == nil; i++ {
		line := r.U32()
		h.pending[line] = pendingFill{fill: r.I64(), prefetch: r.Bool()}
	}
	h.prefetchOutstanding = r.Int()

	h.tlbHold = make(map[uint32]int64)
	n = r.U32()
	for i := uint32(0); i < n && r.Err() == nil; i++ {
		page := r.U32()
		h.tlbHold[page] = r.I64()
	}

	h.l1dFree = r.I64()
	h.l2Free = r.I64()
	for i := range h.bankFree {
		h.bankFree[i] = r.I64()
	}

	hadChaos := r.Bool()
	if r.Err() == nil {
		inSnap, inMachine := int64(0), int64(0)
		if hadChaos {
			inSnap = 1
		}
		if h.P.Chaos != nil {
			inMachine = 1
		}
		r.Expect("chaos presence", inSnap, inMachine)
	}
	if hadChaos && h.P.Chaos != nil {
		r.Expect("chaos seed", r.I64(), h.P.Chaos.Seed())
		r.Expect("chaos skew", r.I64(), h.P.Chaos.Skew())
		state := r.U64()
		draws := r.I64()
		if r.Err() == nil {
			h.P.Chaos.RestoreSnapshotState(state, draws)
		}
	}

	h.Stats.restoreState(r)
}

func (s *Stats) saveState(w *snapshot.Writer) {
	w.I64(s.DataAccesses)
	for _, v := range s.DataByClass {
		w.I64(v)
	}
	w.I64(s.InstFetches)
	w.I64(s.InstMisses)
	w.I64(s.Writebacks)
	w.I64(s.PrefetchesIssued)
	w.I64(s.PrefetchesUseful)
}

func (s *Stats) restoreState(r *snapshot.Reader) {
	s.DataAccesses = r.I64()
	for i := range s.DataByClass {
		s.DataByClass[i] = r.I64()
	}
	s.InstFetches = r.I64()
	s.InstMisses = r.I64()
	s.Writebacks = r.I64()
	s.PrefetchesIssued = r.I64()
	s.PrefetchesUseful = r.I64()
}

// Hash returns a deterministic digest of the hierarchy's complete
// timing state — cache and TLB tags, miss registers, prefetcher, port
// frontiers, chaos position, stats. It is the serialized snapshot's
// StateHash, so two hierarchies hash equal exactly when their
// checkpoints would be byte-identical. Used by the differential
// fuzzer's restore oracle, guarded-run diagnostics, and the
// snapshot-equivalence tests.
func (h *Hierarchy) Hash() uint64 {
	w := snapshot.NewWriter()
	h.SaveState(w)
	return snapshot.StateHash(w.Bytes())
}
