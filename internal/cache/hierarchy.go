package cache

import (
	"fmt"
	"math"
	"math/rand"
	"slices"

	"repro/internal/mem"
	"repro/internal/memsys"
	"repro/internal/metrics"
)

// Stats counts hierarchy events by miss class plus fetch traffic.
type Stats struct {
	DataAccesses int64
	DataByClass  [memsys.NumMissClasses]int64
	InstFetches  int64
	InstMisses   int64
	Writebacks   int64

	PrefetchesIssued int64
	PrefetchesUseful int64
}

// Hierarchy is the workstation memory system: split 64 KB primary caches,
// a unified 1 MB secondary cache, four interleaved memory banks, and a
// data TLB. It implements memsys.System.
type Hierarchy struct {
	P Params

	L1I *Cache
	L1D *Cache
	L2  *Cache
	TLB *TLB

	// Lockup-free machinery: outstanding L1D misses by line address.
	pending map[uint32]pendingFill

	// Hardware prefetcher (PrefetchOff by default).
	prefetch            *prefetcher
	prefetchOutstanding int

	// tlbHold protects just-refilled TLB entries until their faulting
	// access replays: without it, two contexts whose pages conflict in
	// the direct-mapped TLB can evict each other's refills forever.
	tlbHold map[uint32]int64 // page -> hold expiry

	// Port and bank occupancy frontiers.
	l1dFree  int64
	l2Free   int64
	bankFree []int64

	// obsSink, when non-nil, receives miss-start/miss-fill events. Every
	// emission happens inside an access (or a fixed-cycle drain), so the
	// stream is identical whether the core fast-forwards or steps.
	obsSink *metrics.Sink

	Stats Stats
}

// AttachMetrics registers the hierarchy's counters with the owning
// processor's registry and installs its event sink. All counters here are
// mutated only by this processor's own accesses, so they are safe to
// sample at per-processor sample points. Nil is a no-op.
func (h *Hierarchy) AttachMetrics(m *metrics.ProcMetrics) {
	if m == nil {
		return
	}
	h.obsSink = m.Sink
	reg := m.Reg
	reg.Register("cache/data-accesses", &h.Stats.DataAccesses)
	for c := 0; c < memsys.NumMissClasses; c++ {
		reg.Register("cache/data/"+memsys.MissClass(c).String(), &h.Stats.DataByClass[c])
	}
	reg.Register("cache/inst-fetches", &h.Stats.InstFetches)
	reg.Register("cache/inst-misses", &h.Stats.InstMisses)
	reg.Register("cache/writebacks", &h.Stats.Writebacks)
	reg.Register("cache/prefetches-issued", &h.Stats.PrefetchesIssued)
	reg.Register("cache/prefetches-useful", &h.Stats.PrefetchesUseful)
}

// NewHierarchy builds a hierarchy with parameters p.
func NewHierarchy(p Params) (*Hierarchy, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Hierarchy{
		P:        p,
		L1I:      NewCache(p.L1ISize, p.LineSize),
		L1D:      NewCache(p.L1DSize, p.LineSize),
		L2:       NewCache(p.L2Size, p.LineSize),
		TLB:      NewTLB(p.TLBEntries),
		pending:  make(map[uint32]pendingFill),
		tlbHold:  make(map[uint32]int64),
		bankFree: make([]int64, p.NumBanks),
		prefetch: newPrefetcher(p.Prefetch),
	}, nil
}

// MustNewHierarchy is NewHierarchy for default-style configs known valid.
func MustNewHierarchy(p Params) *Hierarchy {
	h, err := NewHierarchy(p)
	if err != nil {
		panic(fmt.Errorf("cache: MustNewHierarchy: %w", err))
	}
	return h
}

// fillHoldCycles is how long a completed fill is held in its miss register
// waiting for the faulting access to replay before it is installed
// unilaterally. Holding the data in the MSHR guarantees forward progress:
// the replayed reference is served from the fill buffer even if a
// conflicting fill would otherwise have evicted the line first (without
// this, two contexts whose lines share a direct-mapped set can evict each
// other's fills forever).
const fillHoldCycles = 256

// DrainFills installs every outstanding miss whose fill time has passed.
// The OS model calls this at slice boundaries so interference displacement
// sees settled state; the access path holds fresh fills for their faulting
// access instead (see fillHoldCycles).
func (h *Hierarchy) DrainFills(now int64) {
	h.installReady(now, 0)
}

// installReady installs every pending fill that is ready at now (shifted
// by grace), in ascending line order. Installs evict conflicting victims,
// so the order must not follow Go's randomized map iteration: a fixed
// order keeps whole-simulation results bit-reproducible run to run.
func (h *Hierarchy) installReady(now, grace int64) {
	var ready []uint32
	for line, pf := range h.pending {
		if pf.fill+grace <= now {
			ready = append(ready, line)
		}
	}
	slices.Sort(ready)
	for _, line := range ready {
		pf := h.pending[line]
		h.removePending(line, pf)
		h.installL1D(line)
		if h.obsSink != nil {
			h.obsSink.Emit(metrics.Event{
				Cycle: now, Kind: metrics.KindMissFill, Ctx: -1,
				Addr: line << uint32(h.L1D.lineShift), Arg: pf.fill,
			})
		}
	}
}

// removePending deletes a pending entry, maintaining the prefetch-buffer
// occupancy count.
func (h *Hierarchy) removePending(line uint32, pf pendingFill) {
	delete(h.pending, line)
	if pf.prefetch {
		h.prefetchOutstanding--
	}
}

// expireFills installs fills whose faulting access never returned (the OS
// switched the thread away mid-miss), freeing their miss registers.
func (h *Hierarchy) expireFills(now int64) {
	h.installReady(now, fillHoldCycles)
}

// NextCompletion implements memsys.Completer: the earliest pending fill
// (demand or prefetch) completing strictly after now, or math.MaxInt64
// when nothing is outstanding. The core's fast-forward engine uses it to
// bound bulk clock advances; fills themselves still install lazily on the
// next access, as always.
func (h *Hierarchy) NextCompletion(now int64) int64 {
	next := int64(math.MaxInt64)
	for _, pf := range h.pending {
		if pf.fill > now && pf.fill < next {
			next = pf.fill
		}
	}
	return next
}

// PullBasedTiming implements memsys.Completer: every state transition in
// the hierarchy (fill install, expiry, TLB hold cleanup, occupancy
// frontier advance, chaos draw) happens inside AccessData/FetchInst and
// depends only on the access cycle, so access-free regions may be skipped
// whole.
func (h *Hierarchy) PullBasedTiming() bool { return true }

func (h *Hierarchy) installL1D(line uint32) {
	addr := line << uint32(h.L1D.lineShift)
	if victim, vd, ok := h.L1D.Fill(addr, false); ok && vd {
		h.writeback(victim)
	}
}

// writeback charges a dirty-victim writeback to the L2 port (and, if the
// line misses in L2, to its memory bank). Writebacks are buffered, so they
// add occupancy but no latency to the access that evicted them.
func (h *Hierarchy) writeback(line uint32) {
	h.Stats.Writebacks++
	h.l2Free += int64(h.P.L2WriteOcc)
	addr := line << uint32(h.L1D.lineShift)
	if !h.L2.Present(addr) {
		b := int(line) % h.P.NumBanks
		h.bankFree[b] += int64(h.P.BankOcc)
	} else {
		h.L2.MarkDirty(addr)
	}
}

// l2Access charges a miss's trip to the secondary cache and, on a
// secondary miss, to the interleaved memory; it returns the fill time.
func (h *Hierarchy) l2Access(addr uint32, now int64) (fillAt int64, class memsys.MissClass) {
	start := now
	if h.l2Free > start {
		start = h.l2Free
	}
	h.l2Free = start + int64(h.P.L2ReadOcc)
	if h.L2.Present(addr) {
		return start + h.P.Chaos.Perturb(int64(h.P.L2HitLatency)), memsys.HitL2
	}
	line := h.L2.Line(addr)
	b := int(line) % h.P.NumBanks
	mstart := start
	if h.bankFree[b] > mstart {
		mstart = h.bankFree[b]
	}
	h.bankFree[b] = mstart + int64(h.P.BankOcc)
	fillAt = mstart + h.P.Chaos.Perturb(int64(h.P.MemLatency))
	// Install in L2; a dirty L2 victim goes back to its bank.
	if victim, vd, ok := h.L2.Fill(addr, false); ok && vd {
		vb := int(victim) % h.P.NumBanks
		h.bankFree[vb] += int64(h.P.BankOcc)
	}
	h.l2Free += int64(h.P.L2FillOcc)
	return fillAt, memsys.Memory
}

// AccessData implements memsys.DataMemory for loads, stores and atomics.
func (h *Hierarchy) AccessData(addr uint32, write bool, pc uint32, now int64) memsys.DataResult {
	h.Stats.DataAccesses++
	h.expireFills(now)

	// Address translation first: a TLB miss is a long-latency event of
	// its own (charged to the Data Cache/TLB category). The entry is
	// installed immediately and protected by a hold buffer so the replay
	// translates even if a conflicting refill displaced the entry.
	if !h.TLB.Lookup(addr) {
		page := addr >> mem.PageShift
		if exp, ok := h.tlbHold[page]; !ok || now > exp {
			if len(h.tlbHold) > 4*h.P.TLBEntries {
				for p, e := range h.tlbHold {
					if now > e {
						delete(h.tlbHold, p)
					}
				}
			}
			refill := h.P.Chaos.Perturb(int64(h.P.TLBPenalty))
			h.tlbHold[page] = now + refill + fillHoldCycles
			h.Stats.DataByClass[memsys.TLBMiss]++
			if h.obsSink != nil {
				h.obsSink.Emit(metrics.Event{
					Cycle: now, Kind: metrics.KindMissStart, Ctx: -1,
					Class: memsys.TLBMiss.String(), Addr: addr, PC: pc, Arg: now + refill,
				})
			}
			return memsys.DataResult{FillAt: now + refill, Class: memsys.TLBMiss}
		}
		// Refill in hold: the Lookup above reinstalled the entry; the
		// access proceeds as translated.
	}

	line := h.L1D.Line(addr)
	if pf, ok := h.pending[line]; ok && pf.fill <= now {
		// The replayed (or a merging) access arrives after the fill:
		// serve it from the miss register and install the line.
		h.removePending(line, pf)
		h.installL1D(line)
		h.notePrefetchUse(line)
		if h.obsSink != nil {
			h.obsSink.Emit(metrics.Event{
				Cycle: now, Kind: metrics.KindMissFill, Ctx: -1,
				Addr: line << uint32(h.L1D.lineShift), Arg: pf.fill,
			})
		}
	}

	if h.L1D.Present(addr) {
		occ := h.P.L1DReadOcc
		if write {
			occ = h.P.L1DWriteOcc
			h.L1D.MarkDirty(addr)
		}
		start := now
		if h.l1dFree > start {
			start = h.l1dFree
		}
		h.l1dFree = start + int64(occ)
		h.Stats.DataByClass[memsys.HitL1]++
		return memsys.DataResult{
			Hit:     true,
			ReadyAt: start + int64(h.P.LoadUseCycles),
			Class:   memsys.HitL1,
		}
	}

	if pf, ok := h.pending[line]; ok {
		// Merge into the outstanding miss for this line; a merge with an
		// in-flight prefetch means the prefetch was useful (it started
		// the fetch early).
		h.notePrefetchUse(line)
		return memsys.DataResult{FillAt: pf.fill, Class: memsys.MSHRFull}
	}
	if len(h.pending)-h.prefetchOutstanding >= h.P.MSHRs {
		// All demand miss registers busy: retry when the earliest frees.
		earliest := int64(1<<62 - 1)
		for _, pf := range h.pending {
			if pf.fill < earliest {
				earliest = pf.fill
			}
		}
		h.Stats.DataByClass[memsys.MSHRFull]++
		return memsys.DataResult{FillAt: earliest, Class: memsys.MSHRFull}
	}

	// Write-allocate: stores take the same miss path; the replayed store
	// marks the filled line dirty.
	fillAt, class := h.l2Access(addr, now)
	fillAt += int64(h.P.L1DFillOcc)
	h.pending[line] = pendingFill{fill: fillAt}
	h.Stats.DataByClass[class]++
	h.maybePrefetch(line, pc, now)
	if h.obsSink != nil {
		h.obsSink.Emit(metrics.Event{
			Cycle: now, Kind: metrics.KindMissStart, Ctx: -1,
			Class: class.String(), Addr: addr, PC: pc, Arg: fillAt,
		})
	}
	return memsys.DataResult{FillAt: fillAt, Class: class}
}

// FetchInst implements memsys.InstMemory. The I-cache is blocking: a miss
// returns the fill time and the caller stalls the processor until then.
// The I-cache fetches two lines per miss (Table 1), which is modeled by
// filling the next sequential line for free.
func (h *Hierarchy) FetchInst(addr uint32, now int64) (readyAt int64, miss bool) {
	h.Stats.InstFetches++
	if h.L1I.Present(addr) {
		return now, false
	}
	h.Stats.InstMisses++
	fillAt, _ := h.l2Access(addr, now)
	fillAt += int64(h.P.L1IFillOcc)
	h.L1I.Fill(addr, false)
	next := addr + uint32(h.P.LineSize)
	h.L1I.Fill(next, false)
	if !h.L2.Present(next) {
		// The prefetched line's L2/memory traffic is overlapped with the
		// demand line; charge occupancy only.
		h.l2Access(next, now)
	}
	return fillAt, true
}

// SchedulerInterference invalidates iLines instruction-cache lines, dLines
// data-cache lines and tlbEntries TLB slots at a scheduler invocation
// (paper Table 6 / Torrellas' IRIX measurements).
func (h *Hierarchy) SchedulerInterference(iLines, dLines, tlbEntries int, rng *rand.Rand) {
	h.L1I.DisplaceRandom(iLines, rng)
	h.L1D.DisplaceRandom(dLines, rng)
	h.TLB.DisplaceRandom(tlbEntries, rng)
}

var _ memsys.System = (*Hierarchy)(nil)

var _ memsys.Completer = (*Hierarchy)(nil)
