package cache

// Hardware prefetching: the paper's introduction names prefetching as the
// other major software-transparent latency-tolerance technique ([17],
// Mowry's scheme). This file adds two classic hardware prefetchers to the
// workstation hierarchy so the comparison the paper alludes to can
// actually be run (see experiments.PrefetchComparison):
//
//   - next-line (one-block-lookahead): on a demand miss, also fetch the
//     sequentially next line;
//   - stride: a reference-prediction table keyed by page detects constant
//     strides in the miss stream and runs one line ahead of it.
//
// Prefetches ride a dedicated buffer (they do not occupy the demand
// MSHRs) but pay full secondary-cache and memory-bank occupancy: the
// bandwidth they consume is real.

// PrefetchMode selects the hardware prefetcher.
type PrefetchMode uint8

// Prefetch modes.
const (
	PrefetchOff PrefetchMode = iota
	PrefetchNextLine
	PrefetchStride
)

// String returns the mode name.
func (m PrefetchMode) String() string {
	switch m {
	case PrefetchOff:
		return "off"
	case PrefetchNextLine:
		return "next-line"
	case PrefetchStride:
		return "stride"
	}
	return "prefetch(?)"
}

// prefetchBufEntries bounds outstanding prefetches (a small dedicated
// buffer beside the demand MSHRs).
const prefetchBufEntries = 8

// pendingFill is one outstanding line fetch.
type pendingFill struct {
	fill     int64
	prefetch bool
}

// strideEntry is one reference-prediction-table row.
type strideEntry struct {
	lastLine   uint32
	stride     int32
	confidence int8
}

// prefetcher holds the hierarchy's prefetch state.
type prefetcher struct {
	mode PrefetchMode
	// rpt is the stride reference-prediction table, direct-mapped by
	// page number.
	rpt [64]strideEntry
	// issued marks lines brought in by prefetch and not yet used, for
	// usefulness accounting.
	issued map[uint32]bool
}

func newPrefetcher(mode PrefetchMode) *prefetcher {
	return &prefetcher{mode: mode, issued: make(map[uint32]bool)}
}

// predict returns the line to prefetch after a demand miss to line by the
// instruction at pc, or (0, false).
func (pf *prefetcher) predict(line, pc uint32) (uint32, bool) {
	switch pf.mode {
	case PrefetchNextLine:
		return line + 1, true
	case PrefetchStride:
		// Reference prediction table indexed by the load/store's PC
		// (Chen & Baer): each memory instruction is its own stream.
		slot := &pf.rpt[(pc>>2)&63]
		stride := int32(line) - int32(slot.lastLine)
		if stride != 0 && stride == slot.stride {
			if slot.confidence < 4 {
				slot.confidence++
			}
		} else {
			slot.stride = stride
			slot.confidence = 0
		}
		slot.lastLine = line
		if slot.confidence >= 1 && slot.stride != 0 {
			// Run two strides ahead: a one-stride lookahead arrives too
			// late when the loop iterates faster than memory responds.
			return uint32(int32(line) + 2*slot.stride), true
		}
		return 0, false
	}
	return 0, false
}

// maybePrefetch issues a prefetch for the follower of a demand miss.
func (h *Hierarchy) maybePrefetch(missLine, pc uint32, now int64) {
	pf := h.prefetch
	if pf == nil || pf.mode == PrefetchOff {
		return
	}
	target, ok := pf.predict(missLine, pc)
	if !ok {
		return
	}
	addr := target << uint32(h.L1D.lineShift)
	if h.L1D.Present(addr) {
		return
	}
	if _, pending := h.pending[target]; pending {
		return
	}
	if h.prefetchOutstanding >= prefetchBufEntries {
		return
	}
	fillAt, _ := h.l2Access(addr, now)
	h.pending[target] = pendingFill{fill: fillAt + int64(h.P.L1DFillOcc), prefetch: true}
	h.prefetchOutstanding++
	pf.issued[target] = true
	h.Stats.PrefetchesIssued++
}

// notePrefetchUse records a demand access that found its line provided by
// a prefetch.
func (h *Hierarchy) notePrefetchUse(line uint32) {
	if h.prefetch == nil {
		return
	}
	if h.prefetch.issued[line] {
		delete(h.prefetch.issued, line)
		h.Stats.PrefetchesUseful++
	}
}
