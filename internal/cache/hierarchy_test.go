package cache

import (
	"math/rand"
	"testing"

	"repro/internal/memsys"
)

func newH(t *testing.T) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// warm replays an access until it hits (as the core's miss machinery
// does), returning the cycle after completion.
func warm(h *Hierarchy, addr uint32, now int64) int64 {
	for i := 0; i < 32; i++ {
		r := h.AccessData(addr, false, 0, now)
		if r.Hit {
			return now + 1
		}
		if r.FillAt > now {
			now = r.FillAt
		} else {
			now++
		}
	}
	panic("warm: access never hit")
}

func TestColdMissGoesToMemory(t *testing.T) {
	h := newH(t)
	// Touch a different line in the same page to install the TLB entry.
	now := warm(h, 0x1040, 0)
	r := h.AccessData(0x1000, false, 0, now)
	if r.Hit {
		t.Fatal("expected L1 miss after TLB fill")
	}
	if r.Class != memsys.Memory {
		t.Fatalf("class = %v, want memory", r.Class)
	}
	if lat := r.FillAt - now; lat < int64(h.P.MemLatency) || lat > int64(h.P.MemLatency)+4 {
		t.Errorf("memory fill latency = %d, want ~%d", lat, h.P.MemLatency)
	}
}

func TestTLBMissFirst(t *testing.T) {
	h := newH(t)
	r := h.AccessData(0x2000, false, 0, 100)
	if r.Class != memsys.TLBMiss {
		t.Fatalf("first touch class = %v, want tlb-miss", r.Class)
	}
	if r.FillAt != 100+int64(h.P.TLBPenalty) {
		t.Errorf("TLB refill at %d, want %d", r.FillAt, 100+int64(h.P.TLBPenalty))
	}
	// Replay after refill: TLB hits, proceeds to the cache.
	r = h.AccessData(0x2000, false, 0, r.FillAt)
	if r.Class == memsys.TLBMiss {
		t.Error("TLB entry not installed")
	}
}

func TestL1HitAfterFill(t *testing.T) {
	h := newH(t)
	now := warm(h, 0x3000, 0)
	now = warm(h, 0x3000, now)
	r := h.AccessData(0x3000, false, 0, now)
	if !r.Hit || r.Class != memsys.HitL1 {
		t.Fatalf("expected L1 hit, got %+v", r)
	}
	if r.ReadyAt != now+int64(h.P.LoadUseCycles) {
		t.Errorf("load-use ready at +%d, want +%d", r.ReadyAt-now, h.P.LoadUseCycles)
	}
}

func TestL2HitAfterL1Conflict(t *testing.T) {
	h := newH(t)
	a := uint32(0x10000)
	b := a + uint32(h.P.L1DSize) // conflicts in L1, not in L2
	now := warm(h, a, 0)
	now = warm(h, a, now)
	h.DrainFills(now)     // a installed in L1 and L2
	now = warm(h, b, now) // TLB for b
	now = warm(h, b, now)
	h.DrainFills(now) // b installed, evicting a from L1; both in L2
	r := h.AccessData(a, false, 0, now)
	if r.Hit {
		t.Fatal("a should have been evicted from L1")
	}
	if r.Class != memsys.HitL2 {
		t.Fatalf("class = %v, want l2-hit", r.Class)
	}
	if lat := r.FillAt - now; lat < int64(h.P.L2HitLatency) || lat > int64(h.P.L2HitLatency)+3 {
		t.Errorf("L2 fill latency = %d, want ~%d", lat, h.P.L2HitLatency)
	}
}

func TestMSHRMergeAndLimit(t *testing.T) {
	h := newH(t)
	// Install TLB entries first.
	now := int64(0)
	addrs := []uint32{0x100000, 0x101000, 0x102000, 0x103000, 0x104000}
	for _, a := range addrs {
		now = warm(h, a, now)
	}
	// Clear the caches so all accesses miss again.
	h.L1D.InvalidateAll()
	h.L2.InvalidateAll()

	r0 := h.AccessData(addrs[0], false, 0, now)
	if r0.Hit {
		t.Fatal("expected miss")
	}
	// Same line again: merged into the same MSHR, same fill time.
	rm := h.AccessData(addrs[0], false, 0, now+1)
	if rm.Hit || rm.FillAt != r0.FillAt {
		t.Errorf("merge fill = %d, want %d", rm.FillAt, r0.FillAt)
	}
	// Fill the remaining MSHRs.
	for _, a := range addrs[1:4] {
		if r := h.AccessData(a, false, 0, now+2); r.Hit {
			t.Fatal("expected miss")
		}
	}
	// Fifth distinct miss: all 4 MSHRs busy.
	r := h.AccessData(addrs[4], false, 0, now+3)
	if r.Hit || r.Class != memsys.MSHRFull {
		t.Fatalf("expected MSHR-full, got %+v", r)
	}
}

func TestBankContention(t *testing.T) {
	h := newH(t)
	// Two memory accesses mapping to the same bank back-to-back: the
	// second should be delayed by bank occupancy.
	lineBytes := uint32(h.P.LineSize)
	a := uint32(0x200000)
	b := a + lineBytes*uint32(h.P.NumBanks)*uint32(h.L1D.Sets()) // same bank, different L1 set? ensure different line, same bank
	// Simpler: same bank = line numbers congruent mod NumBanks.
	b = a + lineBytes*uint32(h.P.NumBanks)

	now := warm(h, a, 0) // TLB
	now = warm(h, b, now)
	h.DrainFills(now)
	h.L1D.InvalidateAll()
	h.L2.InvalidateAll()
	r1 := h.AccessData(a, false, 0, now)
	r2 := h.AccessData(b, false, 0, now)
	if r1.Class != memsys.Memory || r2.Class != memsys.Memory {
		t.Fatalf("classes = %v, %v", r1.Class, r2.Class)
	}
	if r2.FillAt < r1.FillAt+int64(h.P.BankOcc)-2 {
		t.Errorf("no bank contention: fills at %d and %d", r1.FillAt, r2.FillAt)
	}
}

func TestInstFetch(t *testing.T) {
	h := newH(t)
	ready, miss := h.FetchInst(0x8000, 50)
	if !miss {
		t.Fatal("cold I-fetch should miss")
	}
	if ready < 50+int64(h.P.MemLatency) {
		t.Errorf("I-miss ready at %d", ready)
	}
	// Same line and the prefetched next line now hit.
	if _, m := h.FetchInst(0x8004, ready); m {
		t.Error("same line should hit")
	}
	if _, m := h.FetchInst(0x8000+uint32(h.P.LineSize), ready); m {
		t.Error("prefetched next line should hit")
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	h := newH(t)
	a := uint32(0x30000)
	b := a + uint32(h.P.L1DSize)
	now := warm(h, a, 0)
	now = warm(h, a, now)
	r := h.AccessData(a, true, 0, now) // dirty the line
	if !r.Hit {
		t.Fatal("expected hit for store")
	}
	wbBefore := h.Stats.Writebacks
	now = warm(h, b, now+1) // installing b evicts dirty a
	h.DrainFills(now)
	if h.Stats.Writebacks != wbBefore+1 {
		t.Errorf("writebacks = %d, want %d", h.Stats.Writebacks, wbBefore+1)
	}
}

func TestSchedulerInterferenceReducesResidency(t *testing.T) {
	h := newH(t)
	now := int64(0)
	for a := uint32(0); a < 16384; a += 32 {
		now = warm(h, 0x40000+a, now)
	}
	h.DrainFills(now)
	before := h.L1D.ResidentLines()
	h.SchedulerInterference(500, 500, 8, rand.New(rand.NewSource(7)))
	if h.L1D.ResidentLines() >= before {
		t.Error("interference removed no data lines")
	}
}
