package cache

import (
	"testing"

	"repro/internal/memsys"
)

func newPH(t *testing.T, mode PrefetchMode) *Hierarchy {
	t.Helper()
	p := DefaultParams()
	p.Prefetch = mode
	h, err := NewHierarchy(p)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// sequential walk: with next-line prefetch, every second line should be
// covered by a prefetch.
func TestNextLinePrefetchCoversSequentialWalk(t *testing.T) {
	h := newPH(t, PrefetchNextLine)
	now := int64(0)
	for a := uint32(0x10000); a < 0x10000+256*32; a += 32 {
		now = warm(h, a, now)
	}
	if h.Stats.PrefetchesIssued < 100 {
		t.Errorf("prefetches issued = %d, want many on a sequential walk", h.Stats.PrefetchesIssued)
	}
	if h.Stats.PrefetchesUseful < h.Stats.PrefetchesIssued/2 {
		t.Errorf("useful = %d of %d issued; sequential walk should use most",
			h.Stats.PrefetchesUseful, h.Stats.PrefetchesIssued)
	}
}

// Strided walk: the stride prefetcher must lock onto a constant stride.
func TestStridePrefetchLocksOn(t *testing.T) {
	h := newPH(t, PrefetchStride)
	now := int64(0)
	const stride = 256 // bytes: 8 lines apart — next-line would miss this
	for i := 0; i < 128; i++ {
		now = warm(h, 0x40000+uint32(i*stride), now)
	}
	if h.Stats.PrefetchesIssued < 32 {
		t.Errorf("stride prefetches issued = %d", h.Stats.PrefetchesIssued)
	}
	if h.Stats.PrefetchesUseful < h.Stats.PrefetchesIssued/2 {
		t.Errorf("useful = %d of %d", h.Stats.PrefetchesUseful, h.Stats.PrefetchesIssued)
	}
}

// Random traffic: the stride prefetcher must stay quiet rather than waste
// bandwidth.
func TestStridePrefetchQuietOnRandom(t *testing.T) {
	h := newPH(t, PrefetchStride)
	now := int64(0)
	addr := uint32(0x50000)
	for i := 0; i < 128; i++ {
		addr = addr*1664525 + 1013904223
		now = warm(h, (0x50000+addr%(1<<20))&^31, now)
	}
	if h.Stats.PrefetchesIssued > 40 {
		t.Errorf("prefetches issued on random traffic = %d, want few", h.Stats.PrefetchesIssued)
	}
}

// Prefetches must not steal demand MSHRs.
func TestPrefetchDoesNotConsumeDemandMSHRs(t *testing.T) {
	h := newPH(t, PrefetchNextLine)
	// Touch pages first.
	now := int64(0)
	addrs := []uint32{0x100000, 0x101000, 0x102000, 0x103000}
	for _, a := range addrs {
		now = warm(h, a, now)
	}
	h.L1D.InvalidateAll()
	h.L2.InvalidateAll()
	// Issue 4 demand misses back-to-back; each also prefetches. If
	// prefetches consumed MSHRs, the 3rd or 4th demand would be rejected.
	for i, a := range addrs {
		r := h.AccessData(a, false, 0, now+int64(i))
		if r.Hit {
			t.Fatal("expected miss")
		}
		if r.Class == memsys.MSHRFull {
			t.Fatalf("demand miss %d rejected: prefetches are stealing MSHRs", i)
		}
	}
}

// Prefetching off: no prefetch stats move.
func TestPrefetchOff(t *testing.T) {
	h := newPH(t, PrefetchOff)
	now := int64(0)
	for a := uint32(0x10000); a < 0x10000+64*32; a += 32 {
		now = warm(h, a, now)
	}
	if h.Stats.PrefetchesIssued != 0 {
		t.Errorf("prefetches issued with prefetching off: %d", h.Stats.PrefetchesIssued)
	}
}

func TestPrefetchModeString(t *testing.T) {
	if PrefetchOff.String() != "off" || PrefetchNextLine.String() != "next-line" ||
		PrefetchStride.String() != "stride" {
		t.Error("mode names wrong")
	}
}
