package stats

import (
	"math"
	"strings"
	"testing"
)

func TestGeoMean(t *testing.T) {
	cases := []struct {
		in          []float64
		want        float64
		wantSkipped int
	}{
		{nil, 1, 0},
		{[]float64{2, 8}, 4, 0},
		{[]float64{1, 1, 1}, 1, 0},
		{[]float64{10}, 10, 0},
		// Regression: a zero (a failed cell recorded as 0.0) used to
		// contribute log(1e-9) and crush the mean of the healthy cells;
		// it must be skipped and counted instead.
		{[]float64{0, 4}, 4, 1},
		{[]float64{0, 2, 8, -3}, 4, 2},
		{[]float64{0, 0}, 1, 2},
		{[]float64{math.NaN(), 9}, 9, 1},
	}
	for _, c := range cases {
		got, skipped := GeoMean(c.in)
		if math.Abs(got-c.want) > 1e-9 || skipped != c.wantSkipped {
			t.Errorf("GeoMean(%v) = %v (skipped %d), want %v (skipped %d)",
				c.in, got, skipped, c.want, c.wantSkipped)
		}
	}
}

func TestTableAlignment(t *testing.T) {
	tab := NewTable("name", "value")
	tab.AddRow("a", "1")
	tab.AddRow("longer-name", "22")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	// All rows align on the same column width.
	if len(lines[2]) > len(lines[3])+3 && len(lines[3]) > len(lines[2])+3 {
		t.Errorf("rows misaligned:\n%s", out)
	}
	if !strings.Contains(lines[1], "----") {
		t.Error("missing separator row")
	}
}

func TestTableShortRow(t *testing.T) {
	tab := NewTable("a", "b", "c")
	tab.AddRow("x") // missing cells render empty
	if out := tab.String(); !strings.Contains(out, "x") {
		t.Error("short row dropped")
	}
}

// Regression: over-wide rows used to be silently truncated at render time
// (the doc claimed "dropped"); a reporting bug that misaligns a row against
// its header must be loud.
func TestTableOverWideRowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AddRow accepted a row wider than the header")
		}
	}()
	tab := NewTable("a", "b")
	tab.AddRow("1", "2", "3")
}

func TestBar(t *testing.T) {
	out := Bar(10, []float64{0.5, 0.3}, []rune{'A', 'B'})
	if len([]rune(out)) != 10 {
		t.Fatalf("bar width = %d", len(out))
	}
	if strings.Count(out, "A") != 5 || strings.Count(out, "B") != 3 {
		t.Errorf("bar = %q", out)
	}
	// Over-full fractions normalize instead of starving later segments:
	// the old per-segment rounding rendered {0.9, 0.9} as 9 A's and 1 B.
	out = Bar(10, []float64{0.9, 0.9}, []rune{'A', 'B'})
	if len([]rune(out)) != 10 {
		t.Errorf("overfull bar width = %d", len(out))
	}
	if strings.Count(out, "A") != 5 || strings.Count(out, "B") != 5 {
		t.Errorf("overfull bar = %q, want equal halves", out)
	}
}

// Adversarial fractions: many segments each rounding 0.5 up used to
// overflow the width budget and truncate the tail segments entirely.
func TestBarAdversarialFractions(t *testing.T) {
	fracs := []float64{0.25, 0.25, 0.25, 0.25}
	out := Bar(10, fracs, []rune{'A', 'B', 'C', 'D'})
	if len([]rune(out)) != 10 {
		t.Fatalf("bar width = %d", len(out))
	}
	// Every segment must be drawn; largest-remainder gives each at least
	// floor(2.5) = 2 cells and the total exactly 10.
	for _, r := range []string{"A", "B", "C", "D"} {
		if n := strings.Count(out, r); n < 2 || n > 3 {
			t.Errorf("segment %s drew %d cells in %q", r, n, out)
		}
	}
	if strings.Contains(out, " ") {
		t.Errorf("full bar has padding: %q", out)
	}

	// Negative and NaN fractions draw nothing and must not panic.
	out = Bar(8, []float64{-1, math.NaN(), 0.5}, []rune{'A', 'B', 'C'})
	if len([]rune(out)) != 8 || strings.Count(out, "C") != 4 ||
		strings.Contains(out, "A") || strings.Contains(out, "B") {
		t.Errorf("bar with junk fractions = %q", out)
	}
}

// Empty rune or fraction sets must render plain padding, not panic with a
// division by zero on runes[i%len(runes)].
func TestBarEmptyRunes(t *testing.T) {
	if out := Bar(5, []float64{0.5}, nil); out != "     " {
		t.Errorf("Bar with no runes = %q", out)
	}
	if out := Bar(5, nil, []rune{'A'}); out != "     " {
		t.Errorf("Bar with no fractions = %q", out)
	}
	if out := Bar(0, []float64{0.5}, []rune{'A'}); out != "" {
		t.Errorf("Bar with zero width = %q", out)
	}
}

func TestFormatters(t *testing.T) {
	if got := Pct(0.5); got != " 50.0%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Ratio(1.2345); got != "1.23" {
		t.Errorf("Ratio = %q", got)
	}
}
