package stats

import (
	"math"
	"strings"
	"testing"
)

func TestGeoMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 1},
		{[]float64{2, 8}, 4},
		{[]float64{1, 1, 1}, 1},
		{[]float64{10}, 10},
	}
	for _, c := range cases {
		if got := GeoMean(c.in); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("GeoMean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// Non-positive inputs must not blow up.
	if got := GeoMean([]float64{0, 4}); math.IsNaN(got) || math.IsInf(got, 0) {
		t.Errorf("GeoMean with zero = %v", got)
	}
}

func TestTableAlignment(t *testing.T) {
	tab := NewTable("name", "value")
	tab.AddRow("a", "1")
	tab.AddRow("longer-name", "22")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	// All rows align on the same column width.
	if len(lines[2]) > len(lines[3])+3 && len(lines[3]) > len(lines[2])+3 {
		t.Errorf("rows misaligned:\n%s", out)
	}
	if !strings.Contains(lines[1], "----") {
		t.Error("missing separator row")
	}
}

func TestTableShortRow(t *testing.T) {
	tab := NewTable("a", "b", "c")
	tab.AddRow("x") // missing cells render empty
	if out := tab.String(); !strings.Contains(out, "x") {
		t.Error("short row dropped")
	}
}

func TestBar(t *testing.T) {
	out := Bar(10, []float64{0.5, 0.3}, []rune{'A', 'B'})
	if len([]rune(out)) != 10 {
		t.Fatalf("bar width = %d", len(out))
	}
	if strings.Count(out, "A") != 5 || strings.Count(out, "B") != 3 {
		t.Errorf("bar = %q", out)
	}
	// Over-full fractions clamp to the width.
	out = Bar(10, []float64{0.9, 0.9}, []rune{'A', 'B'})
	if len([]rune(out)) != 10 {
		t.Errorf("overfull bar width = %d", len(out))
	}
}

func TestFormatters(t *testing.T) {
	if got := Pct(0.5); got != " 50.0%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Ratio(1.2345); got != "1.23" {
		t.Errorf("Ratio = %q", got)
	}
}
