// Package stats provides the small numeric and formatting helpers shared
// by the experiment harness: geometric means and fixed-width text tables
// with ASCII breakdown bars, in the spirit of the paper's tables and
// stacked-bar figures.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// GeoMean returns the geometric mean of the positive values in xs and the
// number of values it skipped. Non-positive (or NaN) entries are excluded
// rather than substituted: a cell that legitimately measured 0 — or a
// failed cell that slipped through as 0.0 — must not contribute log(ε) and
// crush the mean of the healthy cells. Empty or all-skipped input yields 1.
func GeoMean(xs []float64) (mean float64, skipped int) {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x <= 0 || math.IsNaN(x) {
			skipped++
			continue
		}
		sum += math.Log(x)
		n++
	}
	if n == 0 {
		return 1, skipped
	}
	return math.Exp(sum / float64(n)), skipped
}

// Table accumulates rows of cells and formats them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row. Rows may be narrower than the header (missing
// cells render empty) but never wider: an over-wide row means the caller
// lost a column header, and rendering would silently drop the extra data,
// so it panics instead.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.header) {
		panic(fmt.Sprintf("stats: AddRow got %d cells for a %d-column table", len(cells), len(t.header)))
	}
	t.rows = append(t.rows, cells)
}

// String renders the table.
func (t *Table) String() string {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i := range t.header {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Bar renders a stacked horizontal bar of the given width: each segment is
// a fraction in [0,1] drawn with its rune. Cells are apportioned by the
// largest-remainder method, so the drawn total always rounds the summed
// fractions correctly and no trailing segment is starved by earlier
// segments each rounding up (the old per-segment rounding could hand the
// first segments the whole bar). Fractions summing over 1 are normalized;
// negative or NaN fractions draw nothing.
func Bar(width int, fracs []float64, runes []rune) string {
	if width <= 0 {
		return ""
	}
	if len(runes) == 0 || len(fracs) == 0 {
		return strings.Repeat(" ", width)
	}
	total := 0.0
	clean := make([]float64, len(fracs))
	for i, f := range fracs {
		if f < 0 || math.IsNaN(f) {
			f = 0
		}
		clean[i] = f
		total += f
	}
	scale := float64(width)
	if total > 1 {
		scale /= total
	}
	cells := make([]int, len(clean))
	rems := make([]float64, len(clean))
	sumFloor, sumQuota := 0, 0.0
	for i, f := range clean {
		q := f * scale
		cells[i] = int(q)
		rems[i] = q - float64(cells[i])
		sumFloor += cells[i]
		sumQuota += q
	}
	target := int(sumQuota + 0.5)
	if target > width {
		target = width
	}
	for extra := target - sumFloor; extra > 0; extra-- {
		best := -1
		for i, r := range rems {
			if best < 0 || r > rems[best] {
				best = i
			}
		}
		cells[best]++
		rems[best] = -1
	}
	var b strings.Builder
	used := 0
	for i, n := range cells {
		for j := 0; j < n; j++ {
			b.WriteRune(runes[i%len(runes)])
		}
		used += n
	}
	for ; used < width; used++ {
		b.WriteByte(' ')
	}
	return b.String()
}

// Pct formats a fraction as a percentage.
func Pct(f float64) string { return fmt.Sprintf("%5.1f%%", 100*f) }

// Ratio formats a throughput/speedup ratio.
func Ratio(f float64) string { return fmt.Sprintf("%.2f", f) }
