// Package stats provides the small numeric and formatting helpers shared
// by the experiment harness: geometric means and fixed-width text tables
// with ASCII breakdown bars, in the spirit of the paper's tables and
// stacked-bar figures.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// GeoMean returns the geometric mean of xs (1.0 for empty input). Any
// non-positive value contributes as a tiny epsilon to keep the result
// defined.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			x = 1e-9
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Table accumulates rows of cells and formats them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells beyond the header width are dropped.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// String renders the table.
func (t *Table) String() string {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i := range t.header {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Bar renders a stacked horizontal bar of the given width: each segment is
// a fraction in [0,1] drawn with its rune. Fractions should sum to <= 1.
func Bar(width int, fracs []float64, runes []rune) string {
	var b strings.Builder
	used := 0
	for i, f := range fracs {
		n := int(f*float64(width) + 0.5)
		if used+n > width {
			n = width - used
		}
		for j := 0; j < n; j++ {
			b.WriteRune(runes[i%len(runes)])
		}
		used += n
	}
	for used < width {
		b.WriteByte(' ')
		used++
	}
	return b.String()
}

// Pct formats a fraction as a percentage.
func Pct(f float64) string { return fmt.Sprintf("%5.1f%%", 100*f) }

// Ratio formats a throughput/speedup ratio.
func Ratio(f float64) string { return fmt.Sprintf("%.2f", f) }
