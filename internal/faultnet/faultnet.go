// Package faultnet is the seeded network-fault layer for the
// distributed experiment service. A Transport wraps any
// http.RoundTripper and executes a deterministic Plan against the
// request stream flowing through it — dropped requests, delayed and
// duplicated deliveries, connection resets after the server processed
// the request, and truncated response bodies — which stresses exactly
// the machinery the coordinator claims makes the service safe under a
// lossy network: at-least-once dispatch, payload-hash dedup, lease
// expiry and redispatch, and the per-worker circuit breaker.
//
// Schedules are ordinal-based, not probabilistic: PlanFromSeed derives
// which request ordinal each fault class fires on as a pure function of
// the seed, so the same seed replays the same schedule and a failing
// schedule shrinks by zeroing fields. The package is a leaf: it imports
// only the standard library.
package faultnet

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync"
	"syscall"
	"time"
)

// FaultKind classifies one injected network failure.
type FaultKind int

const (
	// FaultDrop: the request is never forwarded; the caller sees a
	// transport error. The server never learns the request existed.
	FaultDrop FaultKind = iota
	// FaultDelay: the request is forwarded after a deterministic pause —
	// long enough to overlap lease TTLs, not long enough to stall a run.
	FaultDelay
	// FaultDup: the request is delivered to the server twice; the first
	// delivery's response is discarded, the second is returned. The
	// server must tolerate the duplicate.
	FaultDup
	// FaultReset: the request is forwarded and processed, but the
	// connection "resets" before the response arrives — the caller sees
	// a transport error for work the server actually did. The classic
	// at-least-once trap: the retry must dedup, not double-apply.
	FaultReset
	// FaultTruncate: the response starts arriving, then the body errors
	// after k bytes. The caller's read fails mid-decode and it must
	// retry as if the response never came.
	FaultTruncate
)

// String names the fault for schedules and reports.
func (k FaultKind) String() string {
	switch k {
	case FaultDrop:
		return "drop"
	case FaultDelay:
		return "delay"
	case FaultDup:
		return "duplicate"
	case FaultReset:
		return "reset"
	case FaultTruncate:
		return "truncation"
	default:
		return fmt.Sprintf("netfault(%d)", int(k))
	}
}

// NetFaultKinds lists every injectable network fault class, for
// coverage accounting.
var NetFaultKinds = []FaultKind{FaultDrop, FaultDelay, FaultDup, FaultReset, FaultTruncate}

// AllNetFaults is the classMask arming every network fault class.
const AllNetFaults = 1<<FaultDrop | 1<<FaultDelay | 1<<FaultDup | 1<<FaultReset | 1<<FaultTruncate

// Fault describes one injected failure, delivered to the OnFault hook.
type Fault struct {
	Kind    FaultKind
	Ordinal int64 // which request (1-based) through this transport fired
	URL     string
}

// InjectedError wraps the transport-shaped failure an injected fault
// returns, recognizable via errors.As and errors.Is(err, syscall.ECONNRESET).
type InjectedError struct {
	Fault Fault
	Err   error
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faultnet: injected %v on %s (request %d): %v", e.Fault.Kind, e.Fault.URL, e.Fault.Ordinal, e.Err)
}

func (e *InjectedError) Unwrap() error { return e.Err }

// Plan is one deterministic network-fault schedule: which request
// ordinal (1-based, per transport) each one-shot fault fires on; zero
// disables that class. When several classes name the same ordinal the
// lowest-numbered class wins and the others stay armed for nothing —
// PlanFromSeed avoids collisions, hand-built plans should too.
type Plan struct {
	DropAt     int64 `json:"dropAt,omitempty"`
	DelayAt    int64 `json:"delayAt,omitempty"`
	DupAt      int64 `json:"dupAt,omitempty"`
	ResetAt    int64 `json:"resetAt,omitempty"`
	TruncateAt int64 `json:"truncateAt,omitempty"`
	// Delay is how long FaultDelay pauses the request.
	Delay time.Duration `json:"delayNanos,omitempty"`
	// TruncateBytes is how much of the response body FaultTruncate lets
	// through before erroring.
	TruncateBytes int `json:"truncateBytes,omitempty"`
}

// Empty reports whether the plan injects nothing.
func (p Plan) Empty() bool {
	return p.DropAt == 0 && p.DelayAt == 0 && p.DupAt == 0 && p.ResetAt == 0 && p.TruncateAt == 0
}

// String renders the plan compactly for reports.
func (p Plan) String() string {
	if p.Empty() {
		return "net:none"
	}
	s := "net:"
	if p.DropAt > 0 {
		s += fmt.Sprintf("[drop@%d]", p.DropAt)
	}
	if p.DelayAt > 0 {
		s += fmt.Sprintf("[delay@%d %v]", p.DelayAt, p.Delay)
	}
	if p.DupAt > 0 {
		s += fmt.Sprintf("[duplicate@%d]", p.DupAt)
	}
	if p.ResetAt > 0 {
		s += fmt.Sprintf("[reset@%d]", p.ResetAt)
	}
	if p.TruncateAt > 0 {
		s += fmt.Sprintf("[truncation@%d after %dB]", p.TruncateAt, p.TruncateBytes)
	}
	return s
}

// splitmix64 is the repo-wide seeding PRNG (same constants as
// guard.Chaos, faultfs.PlanFromSeed and the pool's DeriveSeed).
func splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// PlanFromSeed derives a deterministic network schedule from a seed.
// classMask selects the armed classes (bit i = NetFaultKinds[i]); pass
// AllNetFaults for everything. Armed classes get distinct ordinals, so
// every armed fault actually fires if the request stream is long
// enough.
func PlanFromSeed(seed int64, classMask uint) Plan {
	st := uint64(seed) ^ 0x6e657477 // decorrelate from the disk layer's stream
	var p Plan
	used := map[int64]bool{}
	pick := func(span, base int64) int64 {
		for {
			n := int64(splitmix64(&st)%uint64(span)) + base
			if !used[n] {
				used[n] = true
				return n
			}
		}
	}
	if classMask&(1<<FaultDrop) != 0 {
		p.DropAt = pick(20, 2)
	}
	if classMask&(1<<FaultDelay) != 0 {
		p.DelayAt = pick(20, 2)
		p.Delay = time.Duration(splitmix64(&st)%40+10) * time.Millisecond
	}
	if classMask&(1<<FaultDup) != 0 {
		p.DupAt = pick(20, 2)
	}
	if classMask&(1<<FaultReset) != 0 {
		p.ResetAt = pick(20, 2)
	}
	if classMask&(1<<FaultTruncate) != 0 {
		p.TruncateAt = pick(20, 2)
		p.TruncateBytes = int(splitmix64(&st) % 64)
	}
	return p
}

// Transport wraps an http.RoundTripper and executes a Plan. The request
// ordinal counter is per transport, so each worker/client gets its own
// deterministic schedule. Faults are one-shot: each class fires at most
// once per transport lifetime.
type Transport struct {
	// Base handles the real round trips; nil means
	// http.DefaultTransport.
	Base http.RoundTripper
	// OnFault (optional) observes every fired fault.
	OnFault func(Fault)

	plan Plan

	mu       sync.Mutex
	requests int64
	fired    map[FaultKind]int64
}

// NewTransport wraps base with plan.
func NewTransport(base http.RoundTripper, plan Plan, onFault func(Fault)) *Transport {
	return &Transport{Base: base, OnFault: onFault, plan: plan, fired: map[FaultKind]int64{}}
}

// Fired returns how many faults of each class this transport executed.
func (t *Transport) Fired() map[FaultKind]int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[FaultKind]int64, len(t.fired))
	for k, v := range t.fired {
		out[k] = v
	}
	return out
}

func (t *Transport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

// decide consumes one request ordinal and returns the fault to execute,
// if any.
func (t *Transport) decide(url string) *Fault {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.requests++
	n := t.requests
	var kind FaultKind = -1
	switch n {
	case t.plan.DropAt:
		kind = FaultDrop
	case t.plan.DelayAt:
		kind = FaultDelay
	case t.plan.DupAt:
		kind = FaultDup
	case t.plan.ResetAt:
		kind = FaultReset
	case t.plan.TruncateAt:
		kind = FaultTruncate
	default:
		return nil
	}
	f := Fault{Kind: kind, Ordinal: n, URL: url}
	t.fired[kind]++
	hook := t.OnFault
	if hook != nil {
		t.mu.Unlock()
		hook(f)
		t.mu.Lock()
	}
	return &f
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	f := t.decide(req.URL.String())
	if f == nil {
		return t.base().RoundTrip(req)
	}
	switch f.Kind {
	case FaultDrop:
		// The server never sees it; drain the body like a transport would.
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		return nil, &InjectedError{Fault: *f, Err: syscall.ECONNREFUSED}

	case FaultDelay:
		select {
		case <-time.After(t.plan.Delay):
		case <-req.Context().Done():
			return nil, &InjectedError{Fault: *f, Err: req.Context().Err()}
		}
		return t.base().RoundTrip(req)

	case FaultDup:
		first, body, err := t.replayable(req)
		if err != nil {
			return nil, err
		}
		if resp, err := t.base().RoundTrip(first); err == nil {
			// First delivery processed; its response is lost on the floor.
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		second := req.Clone(req.Context())
		second.Body = io.NopCloser(bytes.NewReader(body))
		return t.base().RoundTrip(second)

	case FaultReset:
		resp, err := t.base().RoundTrip(req)
		if err != nil {
			return nil, err
		}
		// The server did the work; the caller never learns.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, &InjectedError{Fault: *f, Err: syscall.ECONNRESET}

	case FaultTruncate:
		resp, err := t.base().RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &truncatedBody{inner: resp.Body, remaining: t.plan.TruncateBytes, fault: *f}
		return resp, nil
	}
	return t.base().RoundTrip(req)
}

// replayable rebuilds req with an in-memory body so it can be sent
// twice.
func (t *Transport) replayable(req *http.Request) (*http.Request, []byte, error) {
	var body []byte
	if req.Body != nil {
		var err error
		body, err = io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, nil, err
		}
	}
	clone := req.Clone(req.Context())
	clone.Body = io.NopCloser(bytes.NewReader(body))
	return clone, body, nil
}

// truncatedBody delivers the first remaining bytes of the real body,
// then errors as a mid-stream connection loss.
type truncatedBody struct {
	inner     io.ReadCloser
	remaining int
	fault     Fault
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, &InjectedError{Fault: b.fault, Err: syscall.ECONNRESET}
	}
	if len(p) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.inner.Read(p)
	b.remaining -= n
	return n, err
}

func (b *truncatedBody) Close() error { return b.inner.Close() }
