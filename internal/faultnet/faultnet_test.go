package faultnet

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// echoServer counts deliveries and echoes each request body back.
func echoServer(t *testing.T) (*httptest.Server, *int64, *sync.Map) {
	t.Helper()
	var hits int64
	var bodies sync.Map // delivery ordinal -> body string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := atomic.AddInt64(&hits, 1)
		data, _ := io.ReadAll(r.Body)
		bodies.Store(n, string(data))
		io.WriteString(w, "echo:"+string(data))
	}))
	t.Cleanup(srv.Close)
	return srv, &hits, &bodies
}

func post(t *testing.T, c *http.Client, url, body string) (string, error) {
	t.Helper()
	resp, err := c.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return string(data), err
}

func TestTransportDrop(t *testing.T) {
	srv, hits, _ := echoServer(t)
	tr := NewTransport(nil, Plan{DropAt: 2}, nil)
	c := &http.Client{Transport: tr}

	if _, err := post(t, c, srv.URL, "one"); err != nil {
		t.Fatalf("request 1 faulted early: %v", err)
	}
	_, err := post(t, c, srv.URL, "two")
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Fault.Kind != FaultDrop {
		t.Fatalf("request 2 err = %v, want injected drop", err)
	}
	if got := atomic.LoadInt64(hits); got != 1 {
		t.Errorf("server saw %d deliveries, want 1 (drop must not forward)", got)
	}
	// One-shot: request 3 sails through.
	if _, err := post(t, c, srv.URL, "three"); err != nil {
		t.Errorf("request 3 after drop: %v", err)
	}
	if got := tr.Fired()[FaultDrop]; got != 1 {
		t.Errorf("fired[drop] = %d", got)
	}
}

func TestTransportDelayForwardsAfterPause(t *testing.T) {
	srv, hits, _ := echoServer(t)
	tr := NewTransport(nil, Plan{DelayAt: 1, Delay: 30 * time.Millisecond}, nil)
	c := &http.Client{Transport: tr}

	start := time.Now()
	out, err := post(t, c, srv.URL, "slow")
	if err != nil || out != "echo:slow" {
		t.Fatalf("delayed request = %q, %v", out, err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("request returned in %v, want >= 30ms", d)
	}
	if got := atomic.LoadInt64(hits); got != 1 {
		t.Errorf("deliveries = %d", got)
	}
}

func TestTransportDupDeliversTwice(t *testing.T) {
	srv, hits, bodies := echoServer(t)
	tr := NewTransport(nil, Plan{DupAt: 1}, nil)
	c := &http.Client{Transport: tr}

	out, err := post(t, c, srv.URL, "payload")
	if err != nil || out != "echo:payload" {
		t.Fatalf("dup request = %q, %v", out, err)
	}
	if got := atomic.LoadInt64(hits); got != 2 {
		t.Fatalf("server saw %d deliveries, want 2", got)
	}
	for n := int64(1); n <= 2; n++ {
		if b, _ := bodies.Load(n); b != "payload" {
			t.Errorf("delivery %d body = %v, want full payload", n, b)
		}
	}
}

func TestTransportResetAfterProcessing(t *testing.T) {
	srv, hits, _ := echoServer(t)
	tr := NewTransport(nil, Plan{ResetAt: 1}, nil)
	c := &http.Client{Transport: tr}

	_, err := post(t, c, srv.URL, "done-but-lost")
	if !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("err = %v, want injected ECONNRESET", err)
	}
	// The whole point: the server DID process it.
	if got := atomic.LoadInt64(hits); got != 1 {
		t.Errorf("server saw %d deliveries, want 1", got)
	}
}

func TestTransportTruncatesBody(t *testing.T) {
	srv, _, _ := echoServer(t)
	tr := NewTransport(nil, Plan{TruncateAt: 1, TruncateBytes: 4}, nil)
	c := &http.Client{Transport: tr}

	resp, err := c.Post(srv.URL, "text/plain", strings.NewReader("longish body"))
	if err != nil {
		t.Fatalf("truncation must fail the read, not the round trip: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("body read err = %v, want injected ECONNRESET", err)
	}
	if string(data) != "echo" {
		t.Errorf("bytes before truncation = %q, want first 4", data)
	}
}

func TestPlanFromSeedDeterministicAndCollisionFree(t *testing.T) {
	for seed := int64(1); seed < 100; seed++ {
		a := PlanFromSeed(seed, AllNetFaults)
		if b := PlanFromSeed(seed, AllNetFaults); a != b {
			t.Fatalf("seed %d: plans differ", seed)
		}
		ords := []int64{a.DropAt, a.DelayAt, a.DupAt, a.ResetAt, a.TruncateAt}
		seen := map[int64]bool{}
		for _, n := range ords {
			if n == 0 {
				t.Fatalf("seed %d: full mask left a class unarmed: %+v", seed, a)
			}
			if seen[n] {
				t.Fatalf("seed %d: ordinal collision in %+v", seed, a)
			}
			seen[n] = true
		}
		if a.Delay <= 0 {
			t.Fatalf("seed %d: delay class armed with no delay", seed)
		}
	}
	if !PlanFromSeed(5, 0).Empty() {
		t.Error("empty mask armed something")
	}
	only := PlanFromSeed(5, 1<<FaultReset)
	if only.ResetAt == 0 || only.DropAt != 0 || only.DupAt != 0 {
		t.Errorf("single-class mask produced %+v", only)
	}
}

// The OnFault hook sees every firing with its ordinal, and ordinals
// advance per transport (two transports with the same plan fire
// independently).
func TestTransportOnFaultAndIsolation(t *testing.T) {
	srv, _, _ := echoServer(t)
	var mu sync.Mutex
	var seen []Fault
	plan := Plan{DropAt: 2}
	trA := NewTransport(nil, plan, func(f Fault) { mu.Lock(); seen = append(seen, f); mu.Unlock() })
	trB := NewTransport(nil, plan, func(f Fault) { mu.Lock(); seen = append(seen, f); mu.Unlock() })
	cA := &http.Client{Transport: trA}
	cB := &http.Client{Transport: trB}

	post(t, cA, srv.URL, "a1")
	post(t, cB, srv.URL, "b1")
	post(t, cA, srv.URL, "a2") // fires on A
	post(t, cB, srv.URL, "b2") // fires on B
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 {
		t.Fatalf("hook saw %d faults, want 2: %v", len(seen), seen)
	}
	for _, f := range seen {
		if f.Kind != FaultDrop || f.Ordinal != 2 {
			t.Errorf("fault = %+v, want drop at ordinal 2", f)
		}
	}
}
