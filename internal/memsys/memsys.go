// Package memsys defines the timing interface between the processor core
// and a memory system. Two implementations exist: internal/cache (the
// workstation's two-level hierarchy with interleaved memory banks, paper
// §4.1) and internal/coherence (the multiprocessor's directory-based
// single-level hierarchy, paper §5.2).
//
// The memory systems in this repository are timing-only: all values live
// in the functional memory (internal/mem); caches track presence, dirtiness
// and occupancy to compute latencies.
package memsys

// MissClass classifies where a data access was satisfied. It drives both
// the statistics breakdown and the cause attribution of context
// unavailability.
type MissClass uint8

// Miss classes. The first group is the uniprocessor hierarchy (Table 2);
// the second group is the multiprocessor latency classes (Table 8).
const (
	HitL1    MissClass = iota
	HitL2              // primary miss satisfied by the secondary cache (9 cycles)
	Memory             // satisfied by main memory (34 cycles)
	TLBMiss            // data TLB refill
	MSHRFull           // structural: all miss registers busy, retry later

	LocalMem    // MP: home is this node's memory
	RemoteMem   // MP: home is another node's memory
	RemoteCache // MP: line was dirty in another node's cache

	NumMissClasses = iota
)

var missClassNames = [NumMissClasses]string{
	"l1-hit", "l2-hit", "memory", "tlb-miss", "mshr-full",
	"local", "remote", "remote-cache",
}

func (c MissClass) String() string {
	if int(c) < len(missClassNames) {
		return missClassNames[c]
	}
	return "miss(?)"
}

// DataResult is the outcome of a timing access to data memory.
type DataResult struct {
	// Hit reports whether the access completed without making the
	// context unavailable. For hits, ReadyAt is the cycle at which a
	// loaded value is available for forwarding.
	Hit     bool
	ReadyAt int64
	// For misses, FillAt is the cycle at which the line (or TLB entry)
	// is present and the faulting instruction may replay.
	FillAt int64
	Class  MissClass
}

// DataMemory is the timing interface for loads, stores and atomics.
type DataMemory interface {
	// AccessData performs a timing access at cycle now. write is true
	// for stores and atomic read-modify-writes. pc is the byte address
	// of the issuing instruction: reference-prediction hardware (the
	// stride prefetcher) indexes its tables by it; implementations may
	// ignore it.
	AccessData(addr uint32, write bool, pc uint32, now int64) DataResult
}

// InstMemory is the timing interface for instruction fetch. The I-cache is
// blocking (paper §4.1): on a miss the whole processor stalls until
// readyAt regardless of scheme.
type InstMemory interface {
	// FetchInst returns the cycle at which the instruction at addr is
	// available, and whether the fetch missed the I-cache.
	FetchInst(addr uint32, now int64) (readyAt int64, miss bool)
}

// System is a complete memory system as seen by one processor.
type System interface {
	DataMemory
	InstMemory
}

// IdealInstFetch is implemented by instruction memories whose FetchInst
// is pure: it always hits, returns readyAt == now, mutates no state and
// keeps no statistics (the multiprocessor models its I-cache as ideal).
// The core's fast-forward engine may then reason about the repeated
// re-fetches of a stalled instruction without performing them, which
// turns multi-cycle dependency-interlock and functional-unit stalls into
// skippable regions on single-context and blocked-scheme processors.
type IdealInstFetch interface {
	// InstFetchIsIdeal reports whether FetchInst is pure as defined above.
	InstFetchIsIdeal() bool
}

// Completer is implemented by memory systems that can report their
// earliest outstanding completion. The core's stall fast-forward engine
// consults it when deciding how far the clock may bulk-advance.
type Completer interface {
	// NextCompletion returns the cycle of the earliest in-flight fill
	// completing strictly after now, or math.MaxInt64 when nothing is in
	// flight.
	NextCompletion(now int64) int64

	// PullBasedTiming reports whether every observable state change in
	// this memory system happens inside AccessData/FetchInst calls — i.e.
	// a completed fill has no effect until the next access touches it
	// (lazy install), and no background machinery acts on its own clock.
	//
	// When true, the fast-forward engine may skip an access-free region
	// in one jump even if fills complete inside it: the completions are
	// already priced into the waiters' wake-up times (DataResult.FillAt
	// flows into context availability), and un-awaited completions are
	// invisible until the next access, which lands on the same cycle
	// either way. When false, the engine conservatively stops every skip
	// at NextCompletion, which is exact for any memory system at the cost
	// of shorter skips. Both systems in this repository are pull-based.
	PullBasedTiming() bool
}
