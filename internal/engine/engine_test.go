package engine_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/guard"
)

// fakeMachine is the minimal Advance/Halted/Progress implementation:
// the clock settles exactly at target (optionally stopping at haltAt),
// and progress accrues one unit per cycle until frozenAt.
type fakeMachine struct {
	now      int64
	haltAt   int64 // 0: never halts
	frozenAt int64 // 0: always progressing
	spans    [][2]int64
}

func (m *fakeMachine) advance(now, target int64) int64 {
	m.spans = append(m.spans, [2]int64{now, target})
	if m.haltAt > 0 && target > m.haltAt {
		target = m.haltAt
	}
	m.now = target
	return target
}

func (m *fakeMachine) halted() bool { return m.haltAt > 0 && m.now >= m.haltAt }

func (m *fakeMachine) progress() int64 {
	if m.frozenAt > 0 && m.now > m.frozenAt {
		return m.frozenAt
	}
	return m.now
}

// The LimitCycles/20 default truncates to zero for budgets under 20
// cycles, which ResolveWatchdog reads as "no default" — the regression
// the MinWatchdogWindow floor fixes.
func TestDefaultWatchdogWindowFloor(t *testing.T) {
	cases := []struct{ limit, want int64 }{
		{50_000_000, 2_500_000},
		{100_000, 5_000},
		{2_000, 100},
		{engine.MinWatchdogWindow * engine.DefaultWatchdogDivisor, engine.MinWatchdogWindow},
		{19, engine.MinWatchdogWindow}, // truncates to 0 without the floor
		{10, engine.MinWatchdogWindow},
		{1, engine.MinWatchdogWindow},
		{0, engine.MinWatchdogWindow},
	}
	for _, c := range cases {
		if got := engine.DefaultWatchdogWindow(c.limit); got != c.want {
			t.Errorf("DefaultWatchdogWindow(%d) = %d, want %d", c.limit, got, c.want)
		}
	}
	// The floor must still feed through ResolveWatchdog as a real
	// default: explicitly disabling wins, tiny budgets do not disarm.
	if got := (guard.Options{}).ResolveWatchdog(engine.DefaultWatchdogWindow(10)); got != engine.MinWatchdogWindow {
		t.Errorf("tiny budget resolved to window %d, want %d", got, engine.MinWatchdogWindow)
	}
	if got := (guard.Options{WatchdogWindow: -1}).ResolveWatchdog(engine.DefaultWatchdogWindow(10)); got != 0 {
		t.Errorf("explicit disable resolved to window %d, want 0", got)
	}
}

// A canceled context must stop the run within one block of the
// cancellation, with the drain hook fired at the same cycle the error
// reports.
func TestCancellationLatency(t *testing.T) {
	m := &fakeMachine{}
	ctx, cancel := context.WithCancel(context.Background())
	const cancelAt = 1000 // mid-block: not a multiple of BlockCycles
	var drainedAt int64 = -1
	e := &engine.Engine{
		Advance: func(now, target int64) int64 {
			settled := m.advance(now, target)
			if settled >= cancelAt {
				cancel()
			}
			return settled
		},
		OnCancel: func(now int64) { drainedAt = now },
	}
	halted, err := e.Run(ctx, 0, 1_000_000)
	if halted || err == nil {
		t.Fatalf("halted=%v err=%v, want cancellation error", halted, err)
	}
	se := guard.AsSimError(err)
	if se == nil || se.Op != guard.OpCanceled {
		t.Fatalf("err = %v, want %s SimError", err, guard.OpCanceled)
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("errors.Is(err, context.Canceled) = false")
	}
	if se.Cycle < cancelAt || se.Cycle >= cancelAt+engine.BlockCycles {
		t.Errorf("canceled at cycle %d, want within one block of %d", se.Cycle, cancelAt)
	}
	if drainedAt != se.Cycle {
		t.Errorf("drain hook at %d, error at %d", drainedAt, se.Cycle)
	}
	// The attached run was clamped to BlockCycles spans.
	for _, s := range m.spans {
		if s[1]-s[0] > engine.BlockCycles {
			t.Fatalf("attached span [%d,%d) exceeds one block", s[0], s[1])
		}
	}
}

// A detached, unguarded, unobserved run must be one Advance call over
// the whole span: the engine never constrains the fast-forward engine's
// bulk skips.
func TestDetachedRunIsOneSpan(t *testing.T) {
	m := &fakeMachine{}
	e := &engine.Engine{Advance: m.advance}
	if halted, err := e.Run(nil, 0, 1_000_000); halted || err != nil {
		t.Fatalf("halted=%v err=%v", halted, err)
	}
	if len(m.spans) != 1 || m.spans[0] != [2]int64{0, 1_000_000} {
		t.Fatalf("detached spans = %v, want one full-span call", m.spans)
	}
}

// The unified watchdog trip: one Reason wording, cycle and window from
// the engine, driver fields from Describe, counters updated.
func TestWatchdogTripShape(t *testing.T) {
	m := &fakeMachine{frozenAt: 500}
	e := &engine.Engine{
		Advance:    m.advance,
		Watchdog:   guard.NewWatchdog(1000),
		Progress:   m.progress,
		GuardEvery: 250,
		Describe: func(d *guard.Diagnostic) {
			d.Scheme = "fake"
			d.Notes = append(d.Notes, "described")
		},
	}
	halted, err := e.Run(nil, 0, 1_000_000)
	if halted || err == nil {
		t.Fatalf("halted=%v err=%v, want watchdog trip", halted, err)
	}
	se := guard.AsSimError(err)
	if se == nil || se.Op != guard.OpWatchdog {
		t.Fatalf("err = %v, want %s SimError", err, guard.OpWatchdog)
	}
	// Progress froze at 500; observations land at guard boundaries every
	// 250 cycles, so the last progress was seen at 500 and the window
	// elapses at 1500.
	if se.Cycle != 1500 {
		t.Errorf("tripped at cycle %d, want 1500", se.Cycle)
	}
	d := se.Diag
	if d == nil {
		t.Fatal("no diagnostic attached")
	}
	if !strings.Contains(d.Reason, "no useful instruction retired machine-wide") {
		t.Errorf("Reason = %q, want the unified machine-wide wording", d.Reason)
	}
	if d.Cycle != se.Cycle || d.Window != 1000 {
		t.Errorf("diag cycle/window = %d/%d, want %d/1000", d.Cycle, d.Window, se.Cycle)
	}
	if d.Scheme != "fake" || len(d.Notes) != 1 {
		t.Errorf("Describe fields missing: scheme=%q notes=%v", d.Scheme, d.Notes)
	}
	if e.Trips != 1 {
		t.Errorf("Trips = %d, want 1", e.Trips)
	}
	if e.Arms != 6 {
		// Boundaries at 250..1500: six observations, the sixth trips.
		t.Errorf("Arms = %d, want 6", e.Arms)
	}
}

// Guard boundaries with a lockstep grid (HaltEvery) land on the first
// block boundary at or past the due cycle, never splitting a block;
// without a grid they land exactly on the cadence, plus the span end
// when GuardAtEnd is set.
func TestGuardBoundarySchedule(t *testing.T) {
	var ends []int64
	m := &fakeMachine{}
	e := &engine.Engine{
		Advance:    m.advance,
		GuardEvery: 100,
		GuardAtEnd: true,
		BlockEnd:   func(now int64) { ends = append(ends, now) },
	}
	if _, err := e.Run(nil, 0, 350); err != nil {
		t.Fatal(err)
	}
	want := []int64{100, 200, 300, 350}
	if len(ends) != len(want) {
		t.Fatalf("boundaries = %v, want %v", ends, want)
	}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("boundaries = %v, want %v", ends, want)
		}
	}

	ends = nil
	m2 := &fakeMachine{}
	e2 := &engine.Engine{
		Advance:    m2.advance,
		Halted:     m2.halted,
		HaltEvery:  engine.BlockCycles,
		GuardEvery: 100,
		BlockEnd:   func(now int64) { ends = append(ends, now) },
	}
	if _, err := e2.Run(nil, 0, 350); err != nil {
		t.Fatal(err)
	}
	// Blocks run to full boundaries (the last overruns 350 to 384);
	// guard work fires at the first boundary ≥ each due cycle.
	want = []int64{128, 256, 384}
	if len(ends) != len(want) {
		t.Fatalf("lockstep boundaries = %v, want %v", ends, want)
	}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("lockstep boundaries = %v, want %v", ends, want)
		}
	}
	for _, s := range m2.spans {
		if s[0]%engine.BlockCycles != 0 || s[1]-s[0] != engine.BlockCycles {
			t.Fatalf("lockstep span [%d,%d) off the block grid", s[0], s[1])
		}
	}
}

// Cell samples are recorded at the cadence cycle even when the settled
// boundary has just passed it, and the cursor advances by exactly one
// period per sample.
func TestSampleSchedule(t *testing.T) {
	var samples []int64
	m := &fakeMachine{}
	e := &engine.Engine{
		Advance:     m.advance,
		Halted:      m.halted,
		HaltEvery:   engine.BlockCycles,
		Sample:      func(at int64) { samples = append(samples, at) },
		SampleEvery: 128,
	}
	if _, err := e.Run(nil, 0, 512); err != nil {
		t.Fatal(err)
	}
	want := []int64{128, 256, 384, 512}
	if len(samples) != len(want) {
		t.Fatalf("samples = %v, want %v", samples, want)
	}
	for i := range want {
		if samples[i] != want[i] {
			t.Fatalf("samples = %v, want %v", samples, want)
		}
	}
}

// A machine that halts mid-span reports halted immediately; an
// already-halted machine never advances.
func TestHaltDetection(t *testing.T) {
	m := &fakeMachine{haltAt: 700}
	e := &engine.Engine{Advance: m.advance, Halted: m.halted}
	halted, err := e.Run(nil, 0, 1_000_000)
	if !halted || err != nil {
		t.Fatalf("halted=%v err=%v", halted, err)
	}
	if m.now != 700 {
		t.Fatalf("settled at %d, want the halt cycle 700", m.now)
	}

	e2 := &engine.Engine{
		Advance: func(now, target int64) int64 { t.Fatal("advanced a halted machine"); return target },
		Halted:  func() bool { return true },
	}
	if halted, err := e2.Run(nil, 0, 100); !halted || err != nil {
		t.Fatalf("halted=%v err=%v", halted, err)
	}
}

// An invariant violation at a guard boundary aborts the run with the
// checker's error.
func TestInvariantViolationAborts(t *testing.T) {
	m := &fakeMachine{}
	boom := guard.NewSimError("fake.invariant", errors.New("broken"))
	e := &engine.Engine{
		Advance:    m.advance,
		GuardEvery: 100,
		Checkers:   []guard.InvariantChecker{checkerFunc(func() error { return boom })},
	}
	_, err := e.Run(nil, 0, 1_000)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the checker's error", err)
	}
	if m.now != 100 {
		t.Fatalf("aborted at %d, want the first guard boundary 100", m.now)
	}
}

type checkerFunc func() error

func (f checkerFunc) CheckInvariants() error { return f() }

// Guard cursors are absolute: resuming a span mid-schedule (the
// checkpoint restore path) observes the remaining boundaries at the
// exact cycles the uninterrupted run would.
func TestAbsoluteCursorsAcrossSpans(t *testing.T) {
	var ends []int64
	run := func(e *engine.Engine, spans [][2]int64) {
		for _, s := range spans {
			if _, err := e.Run(nil, s[0], s[1]); err != nil {
				t.Fatal(err)
			}
		}
	}
	m := &fakeMachine{}
	e := &engine.Engine{
		Advance:    m.advance,
		Halted:     m.halted,
		HaltEvery:  engine.BlockCycles,
		GuardEvery: 200,
		BlockEnd:   func(now int64) { ends = append(ends, now) },
	}
	run(e, [][2]int64{{0, 320}, {320, 640}})
	split := append([]int64(nil), ends...)

	ends = nil
	m2 := &fakeMachine{}
	e2 := &engine.Engine{
		Advance:    m2.advance,
		Halted:     m2.halted,
		HaltEvery:  engine.BlockCycles,
		GuardEvery: 200,
		BlockEnd:   func(now int64) { ends = append(ends, now) },
	}
	run(e2, [][2]int64{{0, 640}})
	if len(split) != len(ends) {
		t.Fatalf("split run boundaries %v != whole run %v", split, ends)
	}
	for i := range ends {
		if split[i] != ends[i] {
			t.Fatalf("split run boundaries %v != whole run %v", split, ends)
		}
	}
}
