package engine_test

// Golden byte-identity harness for the engine refactor: a grid of runs
// across all three drivers (core guarded runs, workstation slices, mp
// lockstep) × schemes × fast-forward ON/OFF × chaos × observability ×
// checkpoint/resume, digested to strings and pinned in
// testdata/golden.json. The file was captured from the pre-refactor
// drivers (commit 824d5ed, with each driver's hand-rolled block loop);
// the ported drivers must reproduce every digest byte-for-byte.
//
// Regenerate with UPDATE_ENGINE_GOLDEN=1 go test ./internal/engine
// -run TestEngineGolden — but an intentional regeneration is a
// simulation-behavior change and needs the same scrutiny as a timing
// change in the core.

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/guard"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/mp"
	"repro/internal/prog"
	"repro/internal/workstation"
)

const goldenPath = "testdata/golden.json"

// counterProg mirrors the mp package's counter test program: every
// thread increments a shared counter under a spin lock, then meets at a
// barrier and halts. Lock contention exercises the coherence fabric,
// fast-forward skip regions, and chaos perturbation.
func counterProg(reps int, yield prog.YieldMode) *prog.Program {
	b := prog.NewBuilder("counter", 0x1000, 0x4000_0000, 1<<20)
	b.SetYield(yield)
	lock := b.AllocLock()
	counter := b.Alloc(64, 64)
	bar := b.AllocBarrier()

	b.La(isa.R6, bar)
	b.Li(isa.R7, 0)
	b.La(isa.R16, lock)
	b.La(isa.R17, counter)
	b.Li(isa.R20, uint32(reps))
	b.Label("loop")
	b.LockAcquire(isa.R16, isa.R2)
	b.Lw(isa.R9, isa.R17, 0)
	b.Addi(isa.R9, isa.R9, 1)
	b.Sw(isa.R9, isa.R17, 0)
	b.LockRelease(isa.R16)
	b.Addi(isa.R20, isa.R20, -1)
	b.Bgtz(isa.R20, "loop")
	b.Barrier(isa.R6, isa.R5, isa.R7, isa.R2, isa.R3)
	b.Halt()
	return b.MustBuild()
}

// walkProg is the uniprocessor workload: a store/load walk over a 16 KB
// region with enough arithmetic between misses to give every scheme
// distinct timing.
func walkProg() *prog.Program {
	b := prog.NewBuilder("walk", 0x1000, 0x4000_0000, 1<<20)
	buf := b.Alloc(16*1024, 64)
	b.La(isa.R16, buf)
	b.Li(isa.R20, 2048) // words to touch
	b.Li(isa.R9, 1)
	b.Label("loop")
	b.Sw(isa.R9, isa.R16, 0)
	b.Lw(isa.R10, isa.R16, 0)
	b.Add(isa.R9, isa.R9, isa.R10)
	b.Addi(isa.R16, isa.R16, 8)
	b.Addi(isa.R20, isa.R20, -1)
	b.Bgtz(isa.R20, "loop")
	b.Halt()
	return b.MustBuild()
}

func f64(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func statsDigest(s *core.Stats) string {
	return fmt.Sprintf("cycles=%d slots=%v", s.Cycles, s.Slots)
}

// metricsDigest hashes the full JSONL export — series layout, sample
// cycles, counter values, and the event trace.
func metricsDigest(m *metrics.CellMetrics) string {
	if m == nil {
		return "nil"
	}
	var sb strings.Builder
	if err := metrics.WriteJSONL(&sb, m, "golden"); err != nil {
		return "err:" + err.Error()
	}
	return fmt.Sprintf("%x", sha256.Sum256([]byte(sb.String())))
}

func mpDigest(res *mp.Result) string {
	return fmt.Sprintf("cycles=%d completed=%v mem=%#x arch=%#x %s metrics=%s",
		res.Cycles, res.Completed, res.MemHash, res.ArchHash,
		statsDigest(&res.Stats), metricsDigest(res.Metrics))
}

func wsDigest(res *workstation.Result) string {
	var apps []string
	for _, a := range res.Apps {
		apps = append(apps, fmt.Sprintf("%s:%d/%d", a.Name, a.Retired, a.Devoted))
	}
	return fmt.Sprintf("tput=%s fair=%s %s apps=[%s] metrics=%s",
		f64(res.Throughput), f64(res.FairThroughput),
		statsDigest(&res.Stats), strings.Join(apps, " "), metricsDigest(res.Metrics))
}

func collect(t *testing.T) map[string]string {
	t.Helper()
	got := map[string]string{}

	// --- multiprocessor grid: schemes × fast-forward × chaos ---------
	mpProg := counterProg(8, prog.YieldBackoff)
	type sc struct {
		scheme core.Scheme
		ctxs   int
	}
	mpSchemes := []sc{
		{core.Single, 1}, {core.Blocked, 2}, {core.BlockedFast, 2},
		{core.Interleaved, 4}, {core.FineGrained, 4},
	}
	for _, s := range mpSchemes {
		for _, noFF := range []bool{false, true} {
			for _, chaos := range []int64{0, 7} {
				cfg := mp.DefaultConfig(s.scheme, s.ctxs)
				cfg.Processors = 2
				cfg.LimitCycles = 2_000_000
				cfg.Guard = guard.Options{ChaosSeed: chaos}
				ccfg := core.DefaultConfig(s.scheme, s.ctxs)
				ccfg.NoFastForward = noFF
				cfg.Core = &ccfg
				res, err := mp.Run(mpProg, cfg)
				if err != nil {
					t.Fatalf("mp %v noFF=%v chaos=%d: %v", s.scheme, noFF, chaos, err)
				}
				key := fmt.Sprintf("mp/%v/ctx%d/noFF=%v/chaos=%d", s.scheme, s.ctxs, noFF, chaos)
				got[key] = mpDigest(res)
			}
		}
	}

	// Instrumented mp cells: counter sampling + event trace, both run
	// modes — the cell series sample at block-rounded cadences and must
	// not depend on fast-forward.
	for _, noFF := range []bool{false, true} {
		cfg := mp.DefaultConfig(core.Interleaved, 4)
		cfg.Processors = 2
		cfg.LimitCycles = 2_000_000
		cfg.Obs = metrics.Options{SampleEvery: 500, Events: true}
		ccfg := core.DefaultConfig(core.Interleaved, 4)
		ccfg.NoFastForward = noFF
		cfg.Core = &ccfg
		res, err := mp.Run(mpProg, cfg)
		if err != nil {
			t.Fatalf("mp obs noFF=%v: %v", noFF, err)
		}
		got[fmt.Sprintf("mp/obs/noFF=%v", noFF)] = mpDigest(res)
	}

	// Guarded mp cell: invariant checks + tight watchdog cadence on a
	// healthy run must not change results (digest equals the plain cell's
	// digest modulo key).
	{
		cfg := mp.DefaultConfig(core.Interleaved, 4)
		cfg.Processors = 2
		cfg.LimitCycles = 2_000_000
		cfg.Guard = guard.Options{CheckInvariants: true, CheckEvery: 512}
		res, err := mp.Run(mpProg, cfg)
		if err != nil {
			t.Fatalf("mp guarded: %v", err)
		}
		got["mp/guarded/Interleaved/ctx4"] = mpDigest(res)
	}

	// mp checkpoint/resume: forked must equal scratch, and both are
	// pinned.
	{
		cfg := mp.DefaultConfig(core.Blocked, 2)
		cfg.Processors = 2
		cfg.LimitCycles = 2_000_000
		mpProg := counterProg(40, prog.YieldBackoff)
		ckpt, err := mp.CheckpointAtCtx(nil, mpProg, cfg, 640, "golden")
		if err != nil {
			t.Fatalf("mp checkpoint: %v", err)
		}
		res, err := mp.ResumeCtx(nil, mpProg, cfg, ckpt, "golden")
		if err != nil {
			t.Fatalf("mp resume: %v", err)
		}
		got["mp/resume/Blocked/ctx2"] = mpDigest(res)
		scratch, err := mp.Run(mpProg, cfg)
		if err != nil {
			t.Fatalf("mp scratch: %v", err)
		}
		if d := mpDigest(scratch); d != got["mp/resume/Blocked/ctx2"] {
			t.Errorf("mp fork-vs-scratch diverge:\nfork    %s\nscratch %s",
				got["mp/resume/Blocked/ctx2"], d)
		}
	}

	// --- workstation grid: schemes × fast-forward × chaos ------------
	kernels := func() []apps.Kernel {
		var ks []apps.Kernel
		for _, n := range []string{"cfft2d", "gmtry", "tomcatv", "vpenta"} {
			k, err := apps.Lookup(n)
			if err != nil {
				t.Fatal(err)
			}
			ks = append(ks, k)
		}
		return ks
	}()
	wsCfg := func(s core.Scheme, ctxs int, noFF bool, chaos int64) workstation.Config {
		cfg := workstation.DefaultConfig(s, ctxs)
		cfg.OS.SliceCycles = 10_000
		cfg.Guard = guard.Options{ChaosSeed: chaos}
		if noFF {
			ccfg := core.DefaultConfig(s, ctxs)
			ccfg.NoFastForward = true
			cfg.Core = &ccfg
		}
		return cfg
	}
	for _, s := range []sc{{core.Single, 1}, {core.Blocked, 2}, {core.Interleaved, 4}} {
		for _, noFF := range []bool{false, true} {
			for _, chaos := range []int64{0, 31} {
				res, err := workstation.Run(kernels, wsCfg(s.scheme, s.ctxs, noFF, chaos))
				if err != nil {
					t.Fatalf("ws %v noFF=%v chaos=%d: %v", s.scheme, noFF, chaos, err)
				}
				key := fmt.Sprintf("ws/%v/ctx%d/noFF=%v/chaos=%d", s.scheme, s.ctxs, noFF, chaos)
				got[key] = wsDigest(res)
			}
		}
	}

	// Instrumented workstation cell, with the watchdog armed so the
	// watchdog/arms counter series pins the guard-boundary schedule.
	{
		cfg := wsCfg(core.Interleaved, 4, false, 0)
		cfg.Guard.WatchdogWindow = 50_000
		cfg.Obs = metrics.Options{SampleEvery: 500, Events: true}
		res, err := workstation.Run(kernels, cfg)
		if err != nil {
			t.Fatalf("ws obs: %v", err)
		}
		got["ws/obs/Interleaved/ctx4"] = wsDigest(res)
	}

	// Guarded workstation cell: invariant checks on a healthy run.
	{
		cfg := wsCfg(core.Blocked, 2, false, 0)
		cfg.Guard.CheckInvariants = true
		cfg.Guard.CheckEvery = 512
		res, err := workstation.Run(kernels, cfg)
		if err != nil {
			t.Fatalf("ws guarded: %v", err)
		}
		got["ws/guarded/Blocked/ctx2"] = wsDigest(res)
	}

	// Workstation warm-up checkpoint → fork (the sensitivity-sweep
	// mechanism): forked must equal scratch, and both are pinned.
	{
		cfg := wsCfg(core.Blocked, 2, false, 0)
		ckpt, err := workstation.CheckpointWarmupCtx(nil, kernels, cfg, "golden")
		if err != nil {
			t.Fatalf("ws checkpoint: %v", err)
		}
		res, err := workstation.ResumeCtx(nil, kernels, cfg, ckpt, "golden")
		if err != nil {
			t.Fatalf("ws resume: %v", err)
		}
		got["ws/resume/Blocked/ctx2"] = wsDigest(res)
		scratch, err := workstation.Run(kernels, cfg)
		if err != nil {
			t.Fatalf("ws scratch: %v", err)
		}
		if d := wsDigest(scratch); d != got["ws/resume/Blocked/ctx2"] {
			t.Errorf("ws fork-vs-scratch diverge:\nfork    %s\nscratch %s",
				got["ws/resume/Blocked/ctx2"], d)
		}
	}

	// --- core guarded runs: schemes × fast-forward, plain and guarded -
	coreRun := func(s core.Scheme, ctxs int, noFF bool, opts guard.Options) string {
		params := cache.DefaultParams()
		h := cache.MustNewHierarchy(params)
		fm := mem.New()
		p := walkProg()
		p.LoadInit(fm)
		ccfg := core.DefaultConfig(s, ctxs)
		ccfg.NoFastForward = noFF
		proc := core.MustNewProcessor(ccfg, h, fm)
		for i := 0; i < ctxs; i++ {
			th := core.NewThread(fmt.Sprintf("t%d", i), p)
			th.SetIntReg(isa.R4, uint32(i))
			proc.BindThread(i, th)
		}
		ran, halted, err := proc.RunGuardedCtx(nil, 10_000_000, opts)
		if err != nil {
			t.Fatalf("core %v noFF=%v: %v", s, noFF, err)
		}
		return fmt.Sprintf("ran=%d halted=%v mem=%#x machine=%#x %s",
			ran, halted, fm.Hash(), proc.MachineHash(), statsDigest(&proc.Stats))
	}
	for _, s := range []sc{
		{core.Single, 1}, {core.Blocked, 2}, {core.BlockedFast, 2},
		{core.Interleaved, 4}, {core.FineGrained, 4},
	} {
		for _, noFF := range []bool{false, true} {
			key := fmt.Sprintf("core/%v/ctx%d/noFF=%v", s.scheme, s.ctxs, noFF)
			got[key] = coreRun(s.scheme, s.ctxs, noFF, guard.Options{})
		}
	}
	got["core/guarded/Interleaved/ctx4"] = coreRun(core.Interleaved, 4, false,
		guard.Options{CheckInvariants: true, CheckEvery: 128, WatchdogWindow: 100_000})

	return got
}

func TestEngineGolden(t *testing.T) {
	got := collect(t)

	if os.Getenv("UPDATE_ENGINE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden digests to %s", len(got), goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden file (regenerate with UPDATE_ENGINE_GOLDEN=1): %v", err)
	}
	var want map[string]string
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}

	keys := make([]string, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if got[k] != want[k] {
			t.Errorf("%s:\n got  %s\n want %s", k, got[k], want[k])
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("digest %s missing from golden file (regenerate)", k)
		}
	}
}
