// Package engine is the single block-stepping loop shared by every
// simulation driver: core's guarded uniprocessor runs, the workstation
// slice driver, and the multiprocessor lockstep driver.
//
// The paper's cycle-exact methodology rests on one invariant: a machine
// advances in fixed 64-cycle blocks, and every piece of harness
// bookkeeping — halt checks, watchdog observations, invariant checks,
// cancellation polls, metrics cell samples, checkpoint hooks — happens
// only at block boundaries, at the same absolute cycles regardless of
// how the span was chunked, fast-forwarded, or resumed from a
// checkpoint. That is what makes fast-forward ON vs OFF, forked vs
// scratch, and interrupted vs uninterrupted runs byte-identical.
// Implementing the loop once per driver let the copies drift
// (independently duplicated 64s, diverging watchdog reports, a
// truncated default window); this package is the one copy.
//
// The engine is specialized at construction, not per block: hooks left
// nil and cadences left zero are compiled out of the boundary schedule,
// so a detached, unobserved, unguarded run is a single Advance call
// over the whole span and the fast-forward engine's bulk skips stay
// unclamped. The hot per-cycle work stays inside the driver's Advance
// closure (the way mp's advancePlain/advanceObserved are selected once
// per run); the engine only decides where boundaries fall and what runs
// at each one.
package engine

import (
	"context"
	"fmt"

	"repro/internal/guard"
)

// BlockCycles is the lockstep block length: halt checks, watchdog
// observations, cancellation polls, metrics cell samples and checkpoint
// boundaries all land on multiples of it, so fast-forward ON vs OFF —
// and forked vs scratch — runs are byte-identical. Splitting a run into
// BlockCycles sub-chunks is cycle-exact (a chunked run is byte-identical
// to an unchunked one — pinned by the fast-forward golden tests), so an
// attached context costs one poll per block, never a timing change.
const BlockCycles = 64

// DefaultWatchdogDivisor sets the budgeted-run watchdog policy: the
// default window is LimitCycles/20, i.e. a wedged run is reported within
// 5% of its cycle budget instead of silently burning the rest.
const DefaultWatchdogDivisor = 20

// MinWatchdogWindow is the floor on the derived default window. Without
// it, budgets under DefaultWatchdogDivisor cycles truncate the division
// to zero, which ResolveWatchdog reads as "no default" — silently
// disarming the watchdog exactly when a window is cheapest to honor.
const MinWatchdogWindow = BlockCycles

// DefaultWatchdogWindow returns the default liveness window for a run
// bounded by limitCycles: limitCycles/DefaultWatchdogDivisor, clamped
// below to MinWatchdogWindow.
func DefaultWatchdogWindow(limitCycles int64) int64 {
	w := limitCycles / DefaultWatchdogDivisor
	if w < MinWatchdogWindow {
		w = MinWatchdogWindow
	}
	return w
}

// Engine drives one machine in blocks, running the fixed boundary
// sequence — metrics sample, halt check, cancellation poll, guard
// (checkpoint hook, watchdog, invariant checks) — at the cycles the
// configured cadences prescribe. The zero value of every optional field
// disables that boundary stream.
//
// Construct one per machine (or per guarded run), set the fields, and
// call Run; the cursor fields make cadences absolute, so a run resumed
// from a checkpoint observes the watchdog and samples cells at the
// exact cycles the uninterrupted run would.
type Engine struct {
	// Advance runs the machine over [now, target) and returns the cycle
	// it settled at. A driver whose machine can halt mid-span (core's
	// RunUntilHalted) may settle early on the halt cycle; every other
	// driver settles exactly at target.
	Advance func(now, target int64) int64

	// Halted reports whether every thread has halted; consulted at each
	// block boundary and — when HaltEvery is zero — once before the
	// first block. Nil means the machine cannot halt (the workstation
	// workload runs a fixed number of slices).
	Halted func() bool

	// HaltEvery, when positive, fixes every Advance span to that block
	// length and lets the final block overrun the end of the run to the
	// next boundary: the multiprocessor's lockstep grid, where a block
	// always runs to a full boundary so fast-forward ON and OFF settle
	// every processor at identical cycles. Zero coalesces a span up to
	// the next due boundary into one Advance call.
	HaltEvery int64

	// Watchdog, when non-nil, is observed at every guard boundary with
	// Progress(); a trip returns the unified guard.OpWatchdog SimError.
	Watchdog *guard.Watchdog
	// Progress feeds the watchdog: the machine-wide count of useful
	// (non-synchronization) issue slots. Required when Watchdog is set.
	Progress func() int64
	// Checkers are invariant checkers polled at every guard boundary, in
	// order; the first violation aborts the run.
	Checkers []guard.InvariantChecker
	// BlockEnd, when non-nil, runs first at every guard boundary — the
	// checkpoint hook (core.Processor.BlockHook): the machine is settled
	// on the block grid and safe to serialize.
	BlockEnd func(now int64)
	// GuardEvery is the guard-boundary cadence (guard.Options.
	// CheckCadence); boundaries fall at NextGuard, then every GuardEvery
	// cycles. With HaltEvery set, guard work lands on the first block
	// boundary at or past the due cycle instead of splitting a block.
	GuardEvery int64
	// GuardAtEnd additionally runs the guard sequence at the final
	// (possibly partial) boundary of the span, the way the chunked
	// uniprocessor drivers always have; the lockstep driver leaves it
	// false — its spans already end on whole blocks.
	GuardAtEnd bool
	// Describe, when non-nil, fills the driver-specific fields of a
	// watchdog trip diagnostic (Scheme, Procs, Lines, Notes,
	// MachineHash); the engine fills Reason, Cycle and Window.
	Describe func(d *guard.Diagnostic)

	// Sample, when SampleEvery is positive, samples cell-scope metrics
	// at the recorded cadence cycle (which the settled boundary may have
	// just passed). SampleEvery must be a multiple of the block length
	// when HaltEvery is set.
	Sample      func(at int64)
	SampleEvery int64

	// OnCancel, when non-nil, runs once when a cancellation poll fires —
	// the metrics drain-event emit — before the guard.OpCanceled error
	// is returned.
	OnCancel func(now int64)

	// NextGuard and NextSample are the absolute cycles the next guard
	// boundary and cell sample are due at. Zero (or a cycle at or before
	// the span start, for NextGuard) means "initialize from the span
	// start"; checkpoint restores set them to the saved cursors so the
	// resumed run replays the uninterrupted schedule.
	NextGuard  int64
	NextSample int64

	// Arms and Trips count watchdog observations and trips; drivers
	// register them as the "watchdog/arms" and "watchdog/trips" cell
	// counters.
	Arms, Trips int64
}

// Run advances the machine from cycle start until every thread halts or
// cycle end is reached, returning whether the machine halted. Cycle
// indices are absolute. The error paths are a watchdog trip or
// invariant violation at a guard boundary (both *guard.SimError), or —
// when ctx can be canceled — a guard.OpCanceled SimError within one
// block of the cancellation. A nil or background context skips
// cancellation entirely and never constrains Advance spans.
func (e *Engine) Run(ctx context.Context, start, end int64) (halted bool, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	done := ctx.Done() // nil for context.Background(): detached fast path

	// Specialize the boundary schedule once per span.
	guardOn := e.Watchdog != nil || e.BlockEnd != nil || len(e.Checkers) > 0
	if guardOn && e.NextGuard <= start {
		e.NextGuard = start + e.GuardEvery
	}
	sampleOn := e.SampleEvery > 0
	if sampleOn && e.NextSample <= start {
		e.NextSample = start + e.SampleEvery
	}

	// A machine whose Advance stops on the halt cycle reports an
	// already-halted machine before running anything; the lockstep grid
	// (HaltEvery > 0) instead always runs whole blocks and checks at
	// their boundaries.
	if e.Halted != nil && e.HaltEvery == 0 && e.Halted() {
		return true, nil
	}

	for now := start; now < end; {
		target := end
		if e.HaltEvery > 0 {
			// Whole blocks, even past end: lockstep rounding.
			target = now + e.HaltEvery
		} else {
			if guardOn && e.NextGuard < target {
				target = e.NextGuard
			}
			if sampleOn && e.NextSample < target {
				target = e.NextSample
			}
		}
		if done != nil {
			if next := now + BlockCycles; next < target {
				target = next
			}
		}

		now = e.Advance(now, target)

		// Boundary sequence. The sample precedes the halt check so the
		// final cell of a run that halts on a sample boundary is still
		// recorded; the halt check precedes the cancellation poll so a
		// finished machine is never reported canceled.
		if sampleOn && now >= e.NextSample {
			e.Sample(e.NextSample)
			e.NextSample += e.SampleEvery
		}
		if e.Halted != nil && e.Halted() {
			return true, nil
		}
		if done != nil {
			select {
			case <-done:
				if e.OnCancel != nil {
					e.OnCancel(now)
				}
				return false, guard.NewSimError(guard.OpCanceled, ctx.Err()).At(now)
			default:
			}
		}
		if guardOn && (now >= e.NextGuard || (e.GuardAtEnd && now >= end)) {
			e.NextGuard = now + e.GuardEvery
			if e.BlockEnd != nil {
				e.BlockEnd(now)
			}
			if e.Watchdog != nil {
				e.Arms++
				if e.Watchdog.Observe(now, e.Progress()) {
					e.Trips++
					return false, e.trip(now)
				}
			}
			for _, c := range e.Checkers {
				if err := c.CheckInvariants(); err != nil {
					return false, err
				}
			}
		}
	}
	return false, nil
}

// trip builds the unified watchdog report: one Reason wording, the trip
// cycle and window from the engine, driver-specific machine state from
// Describe.
func (e *Engine) trip(now int64) error {
	stalled := e.Watchdog.Stalled(now)
	d := &guard.Diagnostic{
		Reason: fmt.Sprintf("watchdog: no useful instruction retired machine-wide in %d cycles", stalled),
		Cycle:  now,
		Window: e.Watchdog.Window(),
	}
	if e.Describe != nil {
		e.Describe(d)
	}
	return guard.NewSimError(guard.OpWatchdog,
		fmt.Errorf("livelock/deadlock: no useful instruction retired machine-wide in %d cycles", stalled)).
		At(now).WithDiag(d)
}
