package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/guard"
)

// leaseOne leases exactly one cell for worker via the HTTP API and
// returns it.
func leaseOne(t *testing.T, base, worker string) Lease {
	t.Helper()
	cl := &Client{Base: base}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		var resp leaseResponse
		if err := cl.call(context.Background(), http.MethodPost, "/api/lease",
			leaseRequest{Worker: worker, Max: 1}, &resp); err != nil {
			t.Fatalf("lease: %v", err)
		}
		if len(resp.Leases) == 1 {
			return resp.Leases[0]
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("no lease granted within deadline")
	return Lease{}
}

func heartbeat(t *testing.T, base string, req heartbeatRequest) heartbeatResponse {
	t.Helper()
	var resp heartbeatResponse
	if err := (&Client{Base: base}).call(context.Background(), http.MethodPost, "/api/heartbeat", req, &resp); err != nil {
		t.Fatalf("heartbeat: %v", err)
	}
	return resp
}

// The stale-lease fencing satellite, part 1: a heartbeat renewal that
// arrives after the expiry sweep has reclaimed the lease must be
// rejected — even though the same cell has been re-leased (to anyone)
// in the meantime, the OLD lease ID must never renew the NEW lease.
func TestStaleHeartbeatRenewalRejected(t *testing.T) {
	c := newTestCoordinator(t, Config{
		LeaseTTL: 100 * time.Millisecond,
		Retry:    guard.Retry{Attempts: 10, Base: 5 * time.Millisecond, Cap: 20 * time.Millisecond, Seed: 1},
	})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	spec := JobSpec{Uni: quickUniSpec()}
	if _, _, err := (&Client{Base: srv.URL}).Submit(context.Background(), spec); err != nil {
		t.Fatal(err)
	}

	stale := leaseOne(t, srv.URL, "w1")
	// A prompt fenced renewal succeeds.
	if hb := heartbeat(t, srv.URL, heartbeatRequest{Worker: "w1", LeaseIDs: []int64{stale.LeaseID}}); hb.Renewed != 1 || len(hb.Expired) != 0 {
		t.Fatalf("live renewal = %+v, want 1 renewed", hb)
	}

	// Let the lease expire (the next request's sweep reclaims it), then
	// hand the cell to another worker.
	time.Sleep(150 * time.Millisecond)
	fresh := leaseOne(t, srv.URL, "w2")
	if fresh.LeaseID == stale.LeaseID {
		t.Fatalf("re-lease reused lease ID %d", stale.LeaseID)
	}

	// The late renewal from the fenced worker: rejected, reported.
	hb := heartbeat(t, srv.URL, heartbeatRequest{Worker: "w1", LeaseIDs: []int64{stale.LeaseID}})
	if hb.Renewed != 0 || len(hb.Expired) != 1 || hb.Expired[0] != stale.LeaseID {
		t.Fatalf("stale renewal = %+v, want 0 renewed + the stale ID expired", hb)
	}
	// And it must not have touched w2's lease: w2's own renewal works.
	if hb := heartbeat(t, srv.URL, heartbeatRequest{Worker: "w2", LeaseIDs: []int64{fresh.LeaseID}}); hb.Renewed != 1 {
		t.Fatalf("fresh renewal after stale attempt = %+v", hb)
	}

	// A fenced worker cannot renew the new lease ID either (wrong owner).
	if hb := heartbeat(t, srv.URL, heartbeatRequest{Worker: "w1", LeaseIDs: []int64{fresh.LeaseID}}); hb.Renewed != 0 {
		t.Fatalf("w1 renewed w2's lease: %+v", hb)
	}
}

// Part 2: the fenced worker's completion — computed under the expired
// lease, delivered after the cell was re-run — must dedup cleanly
// against the journaled record, not double-record.
func TestFencedWorkerCompletionDedups(t *testing.T) {
	c := newTestCoordinator(t, Config{
		LeaseTTL: 100 * time.Millisecond,
		Retry:    guard.Retry{Attempts: 10, Base: 5 * time.Millisecond, Cap: 20 * time.Millisecond, Seed: 1},
	})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	spec := JobSpec{Uni: quickUniSpec()}
	cl := &Client{Base: srv.URL}
	job, _, err := cl.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	stale := leaseOne(t, srv.URL, "w1")
	rec, err := experiments.RunUniCell(context.Background(), *spec.Uni, stale.Index)
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := json.Marshal(rec)

	// The lease expires; the redispatched cell completes via w2 first.
	// Other pending cells may lease out ahead of the expired one (its
	// redispatch backoff), so keep leasing until it comes around.
	time.Sleep(150 * time.Millisecond)
	var fresh Lease
	for i := 0; ; i++ {
		fresh = leaseOne(t, srv.URL, "w2")
		if fresh.Grid == stale.Grid && fresh.Index == stale.Index {
			break
		}
		if i > 10 {
			t.Fatalf("expired cell %s/%d never redispatched", stale.Grid, stale.Index)
		}
	}
	var resp completeResponse
	if err := cl.call(context.Background(), http.MethodPost, "/api/complete", completeRequest{
		Worker: "w2", Job: job, Grid: fresh.Grid, Index: fresh.Index, LeaseID: fresh.LeaseID, Record: payload,
	}, &resp); err != nil || resp.Status != "accepted" {
		t.Fatalf("w2 completion = %q, %v", resp.Status, err)
	}

	// The fenced worker's late report: same deterministic payload, so it
	// must be a duplicate, not a second record and not a mismatch.
	if err := cl.call(context.Background(), http.MethodPost, "/api/complete", completeRequest{
		Worker: "w1", Job: job, Grid: stale.Grid, Index: stale.Index, LeaseID: stale.LeaseID, Record: payload,
	}, &resp); err != nil || resp.Status != "duplicate" {
		t.Fatalf("fenced completion = %q, %v; want duplicate", resp.Status, err)
	}

	st, err := cl.Status(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 1 || st.Dupes != 1 || st.Mismatches != 0 {
		t.Fatalf("status after fenced dedup = %+v, want done 1, dupes 1, mismatches 0", st)
	}
}

// The complete-retry-forever satellite: a worker stuck re-reporting a
// record to a coordinator that keeps failing must unwind — goroutines
// and all — the moment its context is cancelled.
func TestWorkerCompleteRetryHonorsCancel(t *testing.T) {
	spec := JobSpec{Uni: quickUniSpec()}
	var completes atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/register", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("POST /api/lease", func(w http.ResponseWriter, r *http.Request) {
		// One lease, once; later polls get nothing.
		var req leaseRequest
		json.NewDecoder(r.Body).Decode(&req)
		var resp leaseResponse
		if completes.Load() == 0 && req.Worker == "stuck" {
			resp.Leases = []Lease{{Job: 1, Grid: experiments.GridWorkstation, Index: 0,
				LeaseID: 7, Attempt: 1, TTLMillis: 60_000, Spec: spec}}
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /api/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, heartbeatResponse{Renewed: 1})
	})
	mux.HandleFunc("POST /api/complete", func(w http.ResponseWriter, r *http.Request) {
		// Always retryable: the worker will loop here forever.
		completes.Add(1)
		httpError(w, http.StatusInternalServerError, "journal on fire")
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// A dedicated transport, so lingering keep-alive connections (server
	// goroutines, not worker leaks) can be torn down before counting.
	tr := &http.Transport{}
	defer tr.CloseIdleConnections()
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- NewWorker(WorkerConfig{Coordinator: srv.URL, Name: "stuck",
			PollInterval: 20 * time.Millisecond, Logf: t.Logf,
			HTTPClient: &http.Client{Transport: tr}}).Run(ctx)
	}()

	// Wait until the worker is demonstrably in the retry loop.
	deadline := time.Now().Add(10 * time.Second)
	for completes.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if completes.Load() < 3 {
		t.Fatal("worker never reached the complete-retry loop")
	}

	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Errorf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker.Run did not return after cancel — retry loop leaked")
	}

	// Every worker goroutine (lease loop, heartbeat, runLease, complete
	// retries) must drain; allow the runtime a moment to reap them.
	for time.Now().Before(deadline) {
		tr.CloseIdleConnections()
		if runtime.NumGoroutine() <= before+1 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after cancel — leak", before, runtime.NumGoroutine())
}
