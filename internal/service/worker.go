package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/guard"
)

// ErrFaultInjected is what Worker.Run returns after executing a
// scripted fault from its FaultPlan — the process-level analogue of a
// chaos perturbation. cmd/expworker maps it to its own exit code so the
// crash harness can tell an injected death from a real failure.
var ErrFaultInjected = errors.New("service: worker died by injected fault")

// WorkerConfig parameterizes a worker.
type WorkerConfig struct {
	// Coordinator is the job API base URL.
	Coordinator string
	// Name identifies the worker to the coordinator (lease ownership,
	// circuit breaker). Required.
	Name string
	// Slots bounds concurrently simulated cells; <= 0 means 1.
	Slots int
	// PollInterval is the idle re-poll spacing when the coordinator has
	// nothing to lease and no hint; <= 0 means 250ms.
	PollInterval time.Duration
	// Plan scripts process-level faults by execution ordinal (nil or
	// empty: none). The fault kinds are guard.FaultDieMidCell,
	// FaultDieBeforeAck and FaultHeartbeatStall.
	Plan *guard.FaultPlan
	// OnCell, when non-nil, is called at the start of every cell
	// execution (the chaos tests count executions per cell with it).
	OnCell func(job int, grid string, index int, attempt int)
	// Logf, when non-nil, receives worker events.
	Logf func(format string, args ...any)
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

// Worker leases cells, simulates them through the same
// experiments.RunUniCell / RunMPCell the in-process grids use — that
// single shared policy is what makes its records byte-identical to a
// local run's — and reports the records back, heartbeating its leases
// meanwhile.
type Worker struct {
	cfg    WorkerConfig
	client *Client

	execCount  atomic.Int64
	running    atomic.Int64
	ttlNanos   atomic.Int64 // last-seen lease TTL; paces heartbeats
	stallUntil atomic.Int64 // unix nanos; heartbeat-stall fault window

	killOnce sync.Once
	killed   chan struct{}
	faultMu  sync.Mutex
	fault    error

	leaseMu sync.Mutex
	leases  map[int64]bool // lease IDs currently being worked
}

// NewWorker builds a worker; Run does the work.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Slots <= 0 {
		cfg.Slots = 1
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 250 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Worker{
		cfg:    cfg,
		client: &Client{Base: cfg.Coordinator, HTTP: cfg.HTTPClient},
		killed: make(chan struct{}),
		leases: map[int64]bool{},
	}
}

// trackLease/untrackLease maintain the set of lease IDs the heartbeat
// fences its renewals to.
func (w *Worker) trackLease(id int64) {
	w.leaseMu.Lock()
	w.leases[id] = true
	w.leaseMu.Unlock()
}

func (w *Worker) untrackLease(id int64) {
	w.leaseMu.Lock()
	delete(w.leases, id)
	w.leaseMu.Unlock()
}

func (w *Worker) activeLeases() []int64 {
	w.leaseMu.Lock()
	defer w.leaseMu.Unlock()
	ids := make([]int64, 0, len(w.leases))
	for id := range w.leases {
		ids = append(ids, id)
	}
	return ids
}

// die executes an injected fault: the worker stops abruptly — no
// completion, no goodbye, heartbeats cease — exactly like a kill -9,
// except the test harness gets a typed error instead of a corpse.
func (w *Worker) die(reason string) {
	w.killOnce.Do(func() {
		w.faultMu.Lock()
		w.fault = fmt.Errorf("%w: %s", ErrFaultInjected, reason)
		w.faultMu.Unlock()
		w.cfg.Logf("worker %q dying: %s", w.cfg.Name, reason)
		close(w.killed)
	})
}

func (w *Worker) faultErr() error {
	w.faultMu.Lock()
	defer w.faultMu.Unlock()
	return w.fault
}

// stalled reports whether the heartbeat-stall fault window is open.
func (w *Worker) stalled() bool {
	return time.Now().UnixNano() < w.stallUntil.Load()
}

// Run registers, then leases and simulates cells until ctx is cancelled
// (returns ctx.Err()) or an injected fault kills the worker (returns
// ErrFaultInjected). Transport errors never kill it: a worker outlives
// coordinator restarts by construction, it just keeps retrying.
func (w *Worker) Run(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() {
		select {
		case <-w.killed:
			cancel()
		case <-ctx.Done():
		}
	}()

	if err := w.register(ctx); err != nil {
		return w.exitErr(ctx, err)
	}
	go w.heartbeatLoop(ctx)

	var wg sync.WaitGroup
	defer wg.Wait()
	for ctx.Err() == nil {
		free := w.cfg.Slots - int(w.running.Load())
		if free <= 0 {
			if !sleepCtx(ctx, 20*time.Millisecond) {
				break
			}
			continue
		}
		var resp leaseResponse
		err := w.client.call(ctx, http.MethodPost, "/api/lease",
			leaseRequest{Worker: w.cfg.Name, Max: free}, &resp)
		if err != nil {
			if ctx.Err() != nil {
				break
			}
			w.cfg.Logf("worker %q: lease: %v (retrying)", w.cfg.Name, err)
			if !sleepCtx(ctx, w.cfg.PollInterval) {
				break
			}
			continue
		}
		if len(resp.Leases) == 0 {
			wait := w.cfg.PollInterval
			if resp.RetryMillis > 0 {
				wait = time.Duration(resp.RetryMillis) * time.Millisecond
			}
			if !sleepCtx(ctx, wait) {
				break
			}
			continue
		}
		for _, l := range resp.Leases {
			w.ttlNanos.Store(l.TTLMillis * int64(time.Millisecond))
			w.running.Add(1)
			w.trackLease(l.LeaseID)
			wg.Add(1)
			go func(l Lease) {
				defer wg.Done()
				defer w.running.Add(-1)
				defer w.untrackLease(l.LeaseID)
				w.runLease(ctx, l)
			}(l)
		}
	}
	return w.exitErr(ctx, nil)
}

func (w *Worker) exitErr(ctx context.Context, err error) error {
	if ferr := w.faultErr(); ferr != nil {
		return ferr
	}
	if err != nil {
		return err
	}
	return ctx.Err()
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}

// register retries until the coordinator answers; a worker started
// before (or during a restart of) the coordinator just waits.
func (w *Worker) register(ctx context.Context) error {
	for {
		err := w.client.call(ctx, http.MethodPost, "/api/register",
			registerRequest{Worker: w.cfg.Name}, nil)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		w.cfg.Logf("worker %q: register: %v (retrying)", w.cfg.Name, err)
		if !sleepCtx(ctx, w.cfg.PollInterval) {
			return ctx.Err()
		}
	}
}

// heartbeatLoop renews the worker's leases at a third of the lease TTL,
// fenced to the lease IDs it is actually working — a renewal can never
// resurrect a lease the coordinator already swept or re-granted.
// During an injected heartbeat stall it deliberately skips renewals —
// the leases must expire for the fault to mean anything.
func (w *Worker) heartbeatLoop(ctx context.Context) {
	for {
		ttl := time.Duration(w.ttlNanos.Load())
		every := w.cfg.PollInterval
		if ttl > 0 {
			every = ttl / 3
		}
		if every < 10*time.Millisecond {
			every = 10 * time.Millisecond
		}
		if !sleepCtx(ctx, every) {
			return
		}
		if w.stalled() {
			continue
		}
		ids := w.activeLeases()
		if len(ids) == 0 {
			continue
		}
		var resp heartbeatResponse
		err := w.client.call(ctx, http.MethodPost, "/api/heartbeat",
			heartbeatRequest{Worker: w.cfg.Name, LeaseIDs: ids}, &resp)
		if err != nil && ctx.Err() == nil {
			w.cfg.Logf("worker %q: heartbeat: %v", w.cfg.Name, err)
		}
		if len(resp.Expired) > 0 {
			// Fenced: those cells now belong to someone else. Finishing the
			// simulation is harmless (dedup absorbs the report); the log line
			// is the observable.
			w.cfg.Logf("worker %q: fenced off %d expired lease(s): %v", w.cfg.Name, len(resp.Expired), resp.Expired)
		}
	}
}

// runLease simulates one leased cell and reports the record, weaving in
// the scripted fault for this execution ordinal, if any.
func (w *Worker) runLease(ctx context.Context, l Lease) {
	n := int(w.execCount.Add(1))
	kind := w.cfg.Plan.At(n)
	if w.cfg.OnCell != nil {
		w.cfg.OnCell(l.Job, l.Grid, l.Index, l.Attempt)
	}
	if kind == guard.FaultDieMidCell {
		// Die "while simulating": no result is ever produced and the
		// lease expires on its own.
		w.die(fmt.Sprintf("%v on execution %d (%s/%d attempt %d)", kind, n, l.Grid, l.Index, l.Attempt))
		return
	}
	if kind == guard.FaultHeartbeatStall {
		ttl := time.Duration(l.TTLMillis) * time.Millisecond
		w.stallUntil.Store(time.Now().Add(3 * ttl).UnixNano())
		w.cfg.Logf("worker %q: injecting %v on execution %d: heartbeats suppressed for %v",
			w.cfg.Name, kind, n, 3*ttl)
	}

	var payload []byte
	switch l.Grid {
	case experiments.GridWorkstation:
		if l.Spec.Uni == nil {
			w.cfg.Logf("worker %q: lease %d names the workstation grid but carries no uni config", w.cfg.Name, l.LeaseID)
			return
		}
		rec, err := experiments.RunUniCell(ctx, *l.Spec.Uni, l.Index)
		if err != nil {
			return // drained or bad index: say nothing, let the lease expire
		}
		payload, _ = json.Marshal(rec)
	case experiments.GridMultiprocessor:
		if l.Spec.MP == nil {
			w.cfg.Logf("worker %q: lease %d names the multiprocessor grid but carries no mp config", w.cfg.Name, l.LeaseID)
			return
		}
		rec, err := experiments.RunMPCell(ctx, *l.Spec.MP, l.Index)
		if err != nil {
			return
		}
		payload, _ = json.Marshal(rec)
	default:
		w.cfg.Logf("worker %q: lease %d names unknown grid %q", w.cfg.Name, l.LeaseID, l.Grid)
		return
	}

	switch kind {
	case guard.FaultDieBeforeAck:
		// The compute happened; the report never will. The lease expires
		// and the cell re-runs elsewhere — determinism makes the loss
		// invisible in the output.
		w.die(fmt.Sprintf("%v on execution %d (%s/%d attempt %d)", kind, n, l.Grid, l.Index, l.Attempt))
		return
	case guard.FaultHeartbeatStall:
		// Hold the result until the stall window closes — well past lease
		// expiry, so the cell has been redispatched — then report it late,
		// exercising the coordinator's dedup.
		for w.stalled() && ctx.Err() == nil {
			if !sleepCtx(ctx, 5*time.Millisecond) {
				return
			}
		}
	}
	w.complete(ctx, l, payload)
}

// complete reports the record, retrying transport errors and 5xx
// indefinitely — the journal-then-ack contract means an unacked record
// may or may not be durable, and re-reporting is always safe (dedup).
func (w *Worker) complete(ctx context.Context, l Lease, payload []byte) {
	req := completeRequest{Worker: w.cfg.Name, Job: l.Job, Grid: l.Grid,
		Index: l.Index, LeaseID: l.LeaseID, Record: payload}
	backoff := 50 * time.Millisecond
	for {
		var resp completeResponse
		err := w.client.call(ctx, http.MethodPost, "/api/complete", req, &resp)
		if err == nil {
			if resp.Status != "accepted" {
				w.cfg.Logf("worker %q: %s/%d report was a %s", w.cfg.Name, l.Grid, l.Index, resp.Status)
			}
			return
		}
		if ctx.Err() != nil || !retryable(err) {
			if ctx.Err() == nil {
				w.cfg.Logf("worker %q: %s/%d report rejected: %v", w.cfg.Name, l.Grid, l.Index, err)
			}
			return
		}
		w.cfg.Logf("worker %q: %s/%d report: %v (retrying)", w.cfg.Name, l.Grid, l.Index, err)
		if !sleepCtx(ctx, backoff) {
			return
		}
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}
